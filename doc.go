// Package streamdex is a from-scratch reproduction of "Distributed Data
// Streams Indexing using Content-based Routing Paradigm" (Bulut, Vitenberg,
// Singh — IPPS/IPDPS 2005): an adaptive, scalable middleware that indexes
// live data streams across a set of data centers by routing stream
// summaries over a Chord-style content-based routing substrate.
//
// # What it does
//
// Every data center sources sliding-window streams. Each window is
// normalized and summarized by its first few DFT coefficients, maintained
// incrementally in O(k) per arriving value. The summary's leading
// coefficient is mapped onto the DHT identifier ring (Eq. 6 of the paper),
// so similar content lands on the same or neighboring nodes; consecutive
// summaries are batched into MBRs to save bandwidth. Similarity queries
// (find streams within distance r of a pattern) are routed to the key
// range covering [q-r, q+r] and matched with a lower-bounding test that
// admits false positives but never false dismissals; candidates funnel to
// the range's middle node, which pushes aggregated responses to the
// client. Inner-product queries resolve the stream's source through a
// DHT-based location service and receive periodic values reconstructed
// from the retained coefficients.
//
// # Layout
//
// This root package is the stable public facade: a Cluster wraps the
// discrete-event simulation engine, the Chord overlay and the middleware
// into one object with a small API. The building blocks live under
// internal/ (sim, dht, chord, dsp, stream, summary, query, core, metrics,
// workload, experiments, baseline, adaptive, hierarchy) — see DESIGN.md
// for the system inventory and EXPERIMENTS.md for the reproduced
// evaluation.
//
// # Quickstart
//
//	cl, _ := streamdex.NewCluster(streamdex.ClusterOptions{Nodes: 16})
//	node := cl.Nodes()[0]
//	cl.AddStream(node, "temps", myGenerator, 200*time.Millisecond)
//	cl.Run(30 * time.Second)
//	id, _ := cl.SimilarityQuery(cl.Nodes()[3], pattern, 0.1, time.Minute)
//	cl.Run(10 * time.Second)
//	for _, m := range cl.Matches(id) { ... }
//
// Three runnable examples live under examples/ (quickstart, stockmonitor,
// sensornet, netmonitor) and the evaluation binaries under cmd/.
package streamdex
