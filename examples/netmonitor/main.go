// Netmonitor: the paper's network-monitoring scenario — "which links or
// routers in a network monitoring system have been experiencing
// significant fluctuations in the packet handling rate over the last 5
// minutes?" (§III-B.2).
//
//	go run ./examples/netmonitor
//
// Each data center aggregates the packet-rate stream of one router. Most
// routers carry smooth load; a few flap between congestion regimes. The
// example subscribes a sawtooth "fluctuation" pattern and a smooth
// baseline pattern and shows that the flapping routers match the former
// and the healthy ones the latter — plus a failure-injection epilogue
// where a data center crashes and monitoring continues.
package main

import (
	"fmt"
	"log"
	"time"

	"streamdex"
	"streamdex/internal/sim"
	"streamdex/internal/stream"
)

const window = 64

func main() {
	cluster, err := streamdex.NewCluster(streamdex.ClusterOptions{
		Nodes:         24,
		WindowSize:    window,
		BatchFactor:   4,
		FeatureDims:   4, // Re/Im of both retained coefficients
		Normalization: streamdex.Correlation,
		PushPeriod:    time.Second,
		Seed:          23,
		Churn:         true, // we will crash a node later
	})
	if err != nil {
		log.Fatal(err)
	}
	nodes := cluster.Nodes()
	rng := sim.NewRand(23)

	// 20 healthy routers: slowly varying load. 4 flapping routers:
	// square-wave regime changes every 16 samples.
	for i := 0; i < 20; i++ {
		gen := stream.NewHostLoad(rng.Fork(fmt.Sprintf("h%d", i)), 0.97, 0.03, 0.001)
		must(cluster.AddStreamPrefilled(nodes[i], fmt.Sprintf("router-%d", i), gen, 100*time.Millisecond))
	}
	for i := 20; i < 24; i++ {
		gen := flapper(rng.Fork(fmt.Sprintf("f%d", i)), 16)
		must(cluster.AddStreamPrefilled(nodes[i], fmt.Sprintf("flappy-%d", i), gen, 100*time.Millisecond))
	}

	cluster.Run(10 * time.Second)

	// The fluctuation pattern: a square wave with the flappers' period.
	pattern := make([]float64, window)
	for i := range pattern {
		if (i/16)%2 == 0 {
			pattern[i] = 1000
		} else {
			pattern[i] = 100
		}
	}
	flapQ, err := cluster.SimilarityQuery(nodes[1], pattern, 0.35, 40*time.Second)
	if err != nil {
		log.Fatal(err)
	}
	cluster.Run(10 * time.Second)

	matched := cluster.MatchedStreams(flapQ)
	fmt.Printf("routers matching the fluctuation pattern: %v\n", matched)
	flappy, healthy := 0, 0
	for _, sid := range matched {
		if len(sid) > 5 && sid[:5] == "flapp" {
			flappy++
		} else {
			healthy++
		}
	}
	fmt.Printf("  -> %d/4 flapping routers detected, %d healthy false positives\n", flappy, healthy)

	// Failure injection: crash the data center hosting router-0; the
	// overlay heals and the continuous query keeps reporting.
	fmt.Printf("\ncrashing data center %d; ring self-repairs...\n", nodes[0])
	cluster.FailNode(nodes[0])
	cluster.Run(15 * time.Second)
	after := cluster.MatchedStreams(flapQ)
	fmt.Printf("matches still flowing after the crash: %d distinct streams (%d data centers alive)\n",
		len(after), len(cluster.Nodes()))

	s := cluster.Stats()
	fmt.Printf("\ntraffic: %.2f msgs/node/s, drops during failure: %d\n",
		s.MessagesPerNodePerSecond, s.DroppedMessages)
}

// flapper alternates between a high and a low packet rate every `period`
// samples, with multiplicative jitter.
func flapper(rng *sim.Rand, period int) streamdex.Generator {
	t := 0
	return streamdex.GeneratorFunc(func() float64 {
		t++
		base := 100.0
		if (t/period)%2 == 0 {
			base = 1000
		}
		return base * (1 + rng.NormFloat64()*0.02)
	})
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
