// Replay: index recorded traces instead of live generators — the workflow
// for running the middleware over your own datasets.
//
//	go run ./examples/replay
//
// The example writes an S&P-style stock file and a host-load trace in the
// formats cmd/tracegen emits (and the paper's datasets used), reads them
// back through the parsers, replays them as streams on a Pastry-backed
// cluster, and answers a correlation-threshold query against them —
// demonstrating trace round-tripping, the second routing substrate, and
// the correlation API in one pass.
package main

import (
	"bytes"
	"fmt"
	"log"
	"time"

	"streamdex"
	"streamdex/internal/sim"
	"streamdex/internal/stream"
)

const window = 64

func main() {
	// 1. Produce trace files (in memory; tracegen writes the same bytes).
	tickers := []string{"INTC", "AAPL", "IBM", "MSFT"}
	market := stream.NewMarket(sim.NewRand(2005), tickers)
	var stockFile bytes.Buffer
	if err := stream.WriteRecords(&stockFile, market.Generate(400)); err != nil {
		log.Fatal(err)
	}
	var loadFile bytes.Buffer
	hl := stream.DefaultHostLoad(sim.NewRand(7))
	loadVals := make([]float64, 1000)
	for i := range loadVals {
		loadVals[i] = hl.Next()
	}
	if err := stream.WriteSeries(&loadFile, loadVals); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %d bytes of stock records and %d bytes of host-load trace\n",
		stockFile.Len(), loadFile.Len())

	// 2. Parse them back, exactly as a user would from disk.
	recs, err := stream.ReadRecords(&stockFile)
	if err != nil {
		log.Fatal(err)
	}
	loads, err := stream.ReadSeries(&loadFile)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Replay the traces as indexed streams — on the Pastry substrate,
	// to show the middleware is substrate-agnostic.
	cluster, err := streamdex.NewCluster(streamdex.ClusterOptions{
		Nodes:       12,
		WindowSize:  window,
		BatchFactor: 4,
		PushPeriod:  time.Second,
		Substrate:   "pastry",
		Seed:        3,
	})
	if err != nil {
		log.Fatal(err)
	}
	nodes := cluster.Nodes()
	for i, sym := range tickers {
		gen, err := stream.ReplayCloses(recs, sym)
		if err != nil {
			log.Fatal(err)
		}
		if err := cluster.AddStreamPrefilled(nodes[i], sym, gen, 100*time.Millisecond); err != nil {
			log.Fatal(err)
		}
	}
	if err := cluster.AddStreamPrefilled(nodes[6], "hostload", stream.NewReplay(loads, true), 100*time.Millisecond); err != nil {
		log.Fatal(err)
	}
	cluster.Run(10 * time.Second)

	// 4. Correlation query: which replayed streams track INTC at >= 0.95?
	window0 := make([]float64, window)
	probe, err := stream.ReplayCloses(recs, "INTC")
	if err != nil {
		log.Fatal(err)
	}
	for i := range window0 {
		window0[i] = probe.Next()
	}
	qid, err := cluster.CorrelationQuery(nodes[2], window0, 0.95, 20*time.Second)
	if err != nil {
		log.Fatal(err)
	}
	cluster.Run(12 * time.Second)

	fmt.Printf("\nstreams correlating with INTC's opening window at >= 0.95:\n")
	for _, m := range cluster.Matches(qid) {
		fmt.Printf("  %-9s correlation <= %.4f (lower-bound distance %.4f)\n",
			m.StreamID, m.CorrelationBound(), m.DistLB)
	}
	s := cluster.Stats()
	fmt.Printf("\ntraffic: %.2f msgs/node/s on the pastry substrate, %d summaries\n",
		s.MessagesPerNodePerSecond, s.MBRs)
}
