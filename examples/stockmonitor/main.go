// Stockmonitor: the paper's stock-market scenario end to end.
//
//	go run ./examples/stockmonitor
//
// A synthetic S&P-style market of 24 tickers (correlated geometric random
// walks) feeds one closing-price stream per data center. The example then
// answers the paper's two motivating stock queries:
//
//   - "Find all pairs of companies whose closing prices over the last
//     month correlate within a threshold" — a similarity query per ticker
//     in Correlation mode (§III-B.2).
//   - "What is the average closing price of INTC for the last month?" —
//     an inner-product query (§III-B.1).
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"streamdex"
	"streamdex/internal/sim"
	"streamdex/internal/stream"
)

func main() {
	const window = 64 // "a month" of intraday samples in this demo

	tickers := []string{
		"INTC", "AAPL", "IBM", "MSFT", "ORCL", "CSCO", "TXN", "AMD",
		"GE", "F", "GM", "BA", "CAT", "MMM", "HON", "UTX",
		"XOM", "CVX", "COP", "SLB", "KO", "PEP", "MCD", "WMT",
	}
	cluster, err := streamdex.NewCluster(streamdex.ClusterOptions{
		Nodes:         len(tickers),
		WindowSize:    window,
		BatchFactor:   5,
		Normalization: streamdex.Correlation,
		PushPeriod:    time.Second,
		Seed:          1997,
	})
	if err != nil {
		log.Fatal(err)
	}
	nodes := cluster.Nodes()

	market := stream.NewMarket(sim.NewRand(1997), tickers)
	for i := range tickers {
		gen := market.CloseGenerator(i)
		must(cluster.AddStreamPrefilled(nodes[i], tickers[i], gen, 150*time.Millisecond))
	}

	fmt.Println("indexing", len(tickers), "price streams...")
	cluster.Run(12 * time.Second)

	// Correlation scan: one similarity query per ticker, posed where the
	// ticker lives; matches are other tickers whose normalized price
	// windows sit within the radius.
	const radius = 0.35
	queries := make(map[string]streamdex.QueryID, len(tickers))
	for i, sym := range tickers {
		qid, err := cluster.SimilarityQueryToStream(nodes[i], sym, radius, 30*time.Second)
		if err != nil {
			log.Fatal(err)
		}
		queries[sym] = qid
	}
	cluster.Run(10 * time.Second)

	type pair struct{ a, b string }
	seen := map[pair]bool{}
	var pairs []pair
	for _, sym := range tickers {
		for _, other := range cluster.MatchedStreams(queries[sym]) {
			if other == sym {
				continue
			}
			p := pair{sym, other}
			if p.b < p.a {
				p.a, p.b = p.b, p.a
			}
			if !seen[p] {
				seen[p] = true
				pairs = append(pairs, p)
			}
		}
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].a != pairs[j].a {
			return pairs[i].a < pairs[j].a
		}
		return pairs[i].b < pairs[j].b
	})
	fmt.Printf("\ncorrelated pairs (radius %.2f): %d\n", radius, len(pairs))
	for _, p := range pairs {
		fmt.Printf("  %-5s ~ %-5s  (betas %.2f / %.2f)\n",
			p.a, p.b, market.Beta(indexOf(tickers, p.a)), market.Beta(indexOf(tickers, p.b)))
	}

	// Windowed average of INTC, answered from its DFT summary.
	avg, err := cluster.AverageQuery(nodes[5], "INTC", window/2, 8*time.Second)
	if err != nil {
		log.Fatal(err)
	}
	cluster.Run(6 * time.Second)
	vals := cluster.Values(avg)
	if len(vals) > 0 {
		fmt.Printf("\nINTC average closing price (last %d samples): %.2f (approximate, from %d pushes)\n",
			window/2, vals[len(vals)-1].Value, len(vals))
	}

	s := cluster.Stats()
	fmt.Printf("\ntraffic: %.2f msgs/node/s over %v\n", s.MessagesPerNodePerSecond, cluster.Now())
}

func indexOf(xs []string, x string) int {
	for i, v := range xs {
		if v == x {
			return i
		}
	}
	return -1
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
