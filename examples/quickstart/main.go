// Quickstart: build a small cluster, index a handful of streams, and run
// one similarity query and one inner-product query against them.
//
//	go run ./examples/quickstart
//
// The example plants two correlated streams among unrelated ones and shows
// that the similarity query finds exactly the correlated pair, plus a
// continuously pushed windowed average — the two query types of the paper
// (§III-B) through the public API.
package main

import (
	"fmt"
	"log"
	"time"

	"streamdex"
	"streamdex/internal/sim"
	"streamdex/internal/stream"
)

func main() {
	cluster, err := streamdex.NewCluster(streamdex.ClusterOptions{
		Nodes:       16,
		WindowSize:  64, // short windows so the demo warms up in seconds
		BatchFactor: 5,
		PushPeriod:  time.Second,
		Seed:        42,
	})
	if err != nil {
		log.Fatal(err)
	}
	nodes := cluster.Nodes()

	// Two streams driven by the same random walk (a shared underlying
	// phenomenon) and six independent ones.
	twinGen := func() streamdex.Generator {
		return stream.DefaultRandomWalk(sim.NewRand(7))
	}
	must(cluster.AddStreamPrefilled(nodes[0], "plant-A", twinGen(), 100*time.Millisecond))
	must(cluster.AddStreamPrefilled(nodes[5], "plant-B", twinGen(), 100*time.Millisecond))
	for i := 0; i < 6; i++ {
		gen := stream.DefaultRandomWalk(sim.NewRand(int64(100 + i)))
		must(cluster.AddStreamPrefilled(nodes[2*i%len(nodes)], fmt.Sprintf("noise-%d", i), gen, 100*time.Millisecond))
	}

	fmt.Println("warming up: streams produce values, summaries circulate...")
	cluster.Run(10 * time.Second)

	// Similarity query: "which streams currently look like plant-A?"
	// (posed at plant-A's own data center, which holds its live window)
	qid, err := cluster.SimilarityQueryToStream(nodes[0], "plant-A", 0.15, 30*time.Second)
	if err != nil {
		log.Fatal(err)
	}
	cluster.Run(10 * time.Second)

	// Reported matches are candidates: the feature distance lower-bounds
	// the true distance (no false dismissals, some false positives). The
	// planted twin shows up at distance ~0.
	best := map[string]float64{}
	for _, m := range cluster.Matches(qid) {
		if d, ok := best[m.StreamID]; !ok || m.DistLB < d {
			best[m.StreamID] = m.DistLB
		}
	}
	fmt.Printf("\nstreams similar to plant-A (radius 0.15):\n")
	for sid, d := range best {
		marker := ""
		if d < 0.01 {
			marker = "   <-- the planted twin (and the stream itself)"
		}
		fmt.Printf("  %-10s lower-bound distance %.3f%s\n", sid, d, marker)
	}

	// Inner-product query: the mean of plant-B's latest 16 values,
	// reconstructed from its DFT summary and pushed periodically.
	avg, err := cluster.AverageQuery(nodes[3], "plant-B", 16, 10*time.Second)
	if err != nil {
		log.Fatal(err)
	}
	cluster.Run(8 * time.Second)
	for i, v := range cluster.Values(avg) {
		fmt.Printf("plant-B avg(last 16) push %d at %v: %.2f (approximate)\n",
			i+1, time.Duration(v.At)*time.Microsecond, v.Value)
	}

	s := cluster.Stats()
	fmt.Printf("\ntraffic: %.2f msgs/node/s, %d summaries, %d queries, %d responses, %d drops\n",
		s.MessagesPerNodePerSecond, s.MBRs, s.Queries, s.Responses, s.DroppedMessages)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
