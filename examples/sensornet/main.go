// Sensornet: medical/environmental sensor monitoring with pattern
// subscriptions and threshold alarms.
//
//	go run ./examples/sensornet
//
// Temperature sensors feed data centers; a pattern database (a diurnal
// cycle and a rapid-oscillation "instability" pattern) is continuously
// monitored over the streams — "notifications are thrown whenever any of
// the patterns matches a recent segment of one or multiple streams"
// (§III-B.2). A weighted-average inner-product subscription implements the
// paper's medical example: "notify when the weighted average of last 20
// body temperature measurements of a patient exceeds a threshold value".
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"streamdex"
	"streamdex/internal/sim"
	"streamdex/internal/stream"
)

const window = 64

func main() {
	cluster, err := streamdex.NewCluster(streamdex.ClusterOptions{
		Nodes:         20,
		WindowSize:    window,
		BatchFactor:   3,
		FeatureDims:   4,                     // Re/Im of both retained coefficients: both sensor frequencies visible
		Normalization: streamdex.Correlation, // match shapes, not absolute levels
		PushPeriod:    time.Second,
		Seed:          11,
	})
	if err != nil {
		log.Fatal(err)
	}
	nodes := cluster.Nodes()
	rng := sim.NewRand(11)

	// 14 room sensors follow the same diurnal cycle (sine with period 64
	// = one window, so its energy sits in the first retained DFT
	// coefficient); patient monitor "ward-7" oscillates twice as fast
	// (period 32 -> second coefficient) on top of a fever level; 5
	// hallway sensors are flat noise with no coherent frequency content.
	for i := 0; i < 14; i++ {
		s := stream.NewSine(rng.Fork(fmt.Sprintf("n%d", i)), 3, 64, 21, 0.1)
		must(cluster.AddStreamPrefilled(nodes[i], fmt.Sprintf("room-%d", i), s, 120*time.Millisecond))
	}
	ward := stream.NewSine(rng.Fork("ward"), 1.5, 32, 39, 0.05)
	must(cluster.AddStreamPrefilled(nodes[14], "ward-7", ward, 120*time.Millisecond))
	for i := 15; i < 20; i++ {
		flat := constantGen(rng.Fork(fmt.Sprintf("c%d", i)), 19.5, 0.05)
		must(cluster.AddStreamPrefilled(nodes[i], fmt.Sprintf("hall-%d", i), flat, 120*time.Millisecond))
	}

	cluster.Run(8 * time.Second)

	// Pattern 1: the diurnal cycle (same shape the rooms follow; absolute
	// level is irrelevant under correlation matching).
	diurnal := sample(stream.NewSine(nil, 1, 64, 0, 0))
	q1, err := cluster.SimilarityQuery(nodes[3], diurnal, 0.35, 30*time.Second)
	if err != nil {
		log.Fatal(err)
	}

	// Pattern 2: rapid oscillation (period 32) — the instability shape.
	unstable := sample(stream.NewSine(nil, 1, 32, 0, 0))
	q2, err := cluster.SimilarityQuery(nodes[8], unstable, 0.35, 30*time.Second)
	if err != nil {
		log.Fatal(err)
	}

	// Threshold alarm: weighted average of the last 20 measurements of
	// ward-7, recent samples weighted higher.
	idx := make([]int, 20)
	w := make([]float64, 20)
	var wsum float64
	for i := range idx {
		idx[i] = window - 20 + i
		w[i] = float64(i + 1)
		wsum += w[i]
	}
	for i := range w {
		w[i] /= wsum
	}
	alarm, err := cluster.InnerProductQuery(nodes[2], "ward-7", idx, w, 20*time.Second)
	if err != nil {
		log.Fatal(err)
	}
	const threshold = 37.5
	fired := false
	cluster.OnInnerProduct(func(id streamdex.QueryID, v streamdex.IPValue) {
		if id == alarm && v.Value > threshold && !fired {
			fired = true
			fmt.Printf("ALARM: ward-7 weighted temperature %.2f exceeds %.1f at %v\n",
				v.Value, threshold, time.Duration(v.At)*time.Microsecond)
		}
	})

	cluster.Run(15 * time.Second)

	fmt.Printf("\ndiurnal pattern matched:     %v\n", sorted(cluster.MatchedStreams(q1)))
	fmt.Printf("instability pattern matched: %v\n", sorted(cluster.MatchedStreams(q2)))
	if !fired {
		fmt.Println("no alarm fired (ward-7 stayed under the threshold this run)")
	}
	s := cluster.Stats()
	fmt.Printf("\ntraffic: %.2f msgs/node/s, %d summaries indexed\n", s.MessagesPerNodePerSecond, s.MBRs)
}

// sample draws one window's worth of values from a generator.
func sample(g streamdex.Generator) []float64 {
	out := make([]float64, window)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}

// constantGen hovers around level with small noise.
func constantGen(rng *sim.Rand, level, noise float64) streamdex.Generator {
	return streamdex.GeneratorFunc(func() float64 {
		return level + rng.NormFloat64()*noise
	})
}

func sorted(xs []string) []string {
	sort.Strings(xs)
	return xs
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
