package koorde

// Control-plane message kinds of the Koorde machine and their wire codecs.
//
// The maintenance exchanges mirror Chord's — the ring substrate (successor
// lists, stabilize/notify, liveness pings) is identical; only the
// long-distance links differ — but they are distinct types with distinct
// tags: a Koorde cluster and a Chord cluster speak related yet different
// protocols, and a mixed cluster must fail loudly at decode, not converge
// by accident.
//
//   - KFindReq/KFindResp: locate the successor node of a key. Routed with
//     the de Bruijn rule (with greedy fallback); the node covering the key
//     answers the requester directly. Used by join and pointer repair.
//   - KStabReq/KStabResp: stabilize. The successor reports its predecessor
//     and successor list; the requester adopts a closer successor when one
//     appears and then notifies.
//   - KNotify: "I might be your predecessor."
//   - KPingReq/KPingResp: predecessor liveness probe.
//   - KDListReq/KDListResp: de Bruijn pointer repair. The node hosting
//     k·self reports its predecessor and successor list, from which the
//     requester rebuilds its pointer chain.

import (
	"fmt"

	"streamdex/internal/dht"
	"streamdex/internal/overlay"
	"streamdex/internal/wire"
)

// Ref is the substrate-neutral node reference (compared by ID; the live
// transport dials Addr).
type Ref = overlay.Ref

// ShiftNone marks a KFindReq carrying no de Bruijn walk state yet: the
// first node to route it anchors the walk from its own arc.
const ShiftNone uint8 = 0xff

// KFindReq asks the ring for the successor node of Target. It is routed
// as a stateful de Bruijn walk (TTL-bounded): I is the imaginary de
// Bruijn node the walk is forwarding toward and Shift the number of
// Target digits still to inject into it. The node hosting I injects the
// next digit (I ← k·I + digit, Shift ← Shift−1); at Shift zero I has
// become Target itself and the walk finishes along successors. Any hop
// whose own arc offers a strictly shorter alignment re-anchors the walk,
// which both starts fresh lookups and heals stale state. Whoever covers
// the target replies to ReplyTo with a KFindResp carrying the same Token.
type KFindReq struct {
	From    Ref // sending hop (identity + reply address)
	Token   uint64
	Target  dht.Key
	TTL     int
	ReplyTo Ref
	I       dht.Key // imaginary de Bruijn node the walk forwards toward
	Shift   uint8   // digits of Target still to inject; ShiftNone = unanchored
}

// KFindResp answers a KFindReq: Succ is the successor node of the
// requested target. Token matches the request; responses whose token is no
// longer pending are discarded as stale.
type KFindResp struct {
	From  Ref
	Token uint64
	Succ  Ref
}

// KStabReq asks the receiver — the sender's believed successor — for its
// predecessor and successor list. With Chain set it is instead the
// piggybacked de Bruijn repair probe: the receiver is the sender's chain
// head (its believed pred(k·self) host), Image carries k·self, and the
// receiver must answer with the same neighborhood shape but without
// treating the far-away requester as a predecessor candidate.
type KStabReq struct {
	From  Ref
	Chain bool
	Image dht.Key
}

// KStabResp is the successor's view: its predecessor (when known) and its
// successor list, from which the requester refreshes its own. Chain and
// Image echo the request so the requester can patch its pointer chain
// (Chain set) instead of its successor list.
type KStabResp struct {
	From     Ref
	HasPred  bool
	Pred     Ref
	SuccList []Ref
	Chain    bool
	Image    dht.Key
}

// KNotify tells the receiver the sender might be its predecessor.
type KNotify struct {
	From Ref
}

// KPingReq probes a neighbor for liveness.
type KPingReq struct {
	From Ref
}

// KPingResp answers a KPingReq.
type KPingResp struct {
	From Ref
}

// KDListReq asks the receiver — the node found to host k·self — for its
// neighborhood, so the sender can rebuild its de Bruijn pointer chain.
type KDListReq struct {
	From Ref
}

// KDListResp answers a KDListReq: the responder's predecessor (the true
// first de Bruijn pointer, pred(k·self)) and its successor list (the
// chain covering the image arc).
type KDListResp struct {
	From     Ref
	HasPred  bool
	Pred     Ref
	SuccList []Ref
}

// Packed payload codec tags. One byte on the wire after the envelope; both
// ends of a connection must agree, so these values are protocol, not
// implementation detail: never renumber, only append. Tags 1-9 belong to
// the middleware payloads, 16-22 to the Chord control plane, 23-29 to the
// continuous-query engine, 30-31 to load balancing; the Koorde control
// plane takes 32-40.
const (
	tagKFindReq uint8 = iota + 32
	tagKFindResp
	tagKStabReq
	tagKStabResp
	tagKNotify
	tagKPingReq
	tagKPingResp
	tagKDListReq
	tagKDListResp
)

func init() {
	wire.RegisterPackedPayload(tagKFindReq, KFindReq{}, codecFuncs{encKFindReq, decKFindReq})
	wire.RegisterPackedPayload(tagKFindResp, KFindResp{}, codecFuncs{encKFindResp, decKFindResp})
	wire.RegisterPackedPayload(tagKStabReq, KStabReq{}, codecFuncs{encKStabReq, decKStabReq})
	wire.RegisterPackedPayload(tagKStabResp, KStabResp{}, codecFuncs{encKStabResp, decKStabResp})
	wire.RegisterPackedPayload(tagKNotify, KNotify{}, codecFuncs{encKNotify, decKNotify})
	wire.RegisterPackedPayload(tagKPingReq, KPingReq{}, codecFuncs{encKPingReq, decKPingReq})
	wire.RegisterPackedPayload(tagKPingResp, KPingResp{}, codecFuncs{encKPingResp, decKPingResp})
	wire.RegisterPackedPayload(tagKDListReq, KDListReq{}, codecFuncs{encKDListReq, decKDListReq})
	wire.RegisterPackedPayload(tagKDListResp, KDListResp{}, codecFuncs{encKDListResp, decKDListResp})
	// Gob registration keeps the types usable nested inside third-party
	// payloads; framed control traffic always takes the packed path.
	wire.RegisterPayload(KFindReq{})
	wire.RegisterPayload(KFindResp{})
	wire.RegisterPayload(KStabReq{})
	wire.RegisterPayload(KStabResp{})
	wire.RegisterPayload(KNotify{})
	wire.RegisterPayload(KPingReq{})
	wire.RegisterPayload(KPingResp{})
	wire.RegisterPayload(KDListReq{})
	wire.RegisterPayload(KDListResp{})
}

// codecFuncs adapts an encode/decode function pair to wire.PayloadCodec.
type codecFuncs struct {
	enc func(dst []byte, p any) ([]byte, error)
	dec func(data []byte) (any, error)
}

func (c codecFuncs) Append(dst []byte, p any) ([]byte, error) { return c.enc(dst, p) }
func (c codecFuncs) Decode(data []byte) (any, error)          { return c.dec(data) }

func errType(want string, got any) error {
	return fmt.Errorf("koorde: codec for %s got %T", want, got)
}

// --- Ref: id(uvar) | addr(string) ---

func appendRef(dst []byte, r Ref) []byte {
	dst = wire.AppendUvarint(dst, uint64(r.ID))
	return wire.AppendString(dst, r.Addr)
}

func readRef(r *wire.Reader) Ref {
	id := dht.Key(r.Uvarint())
	addr := r.String()
	return Ref{ID: id, Addr: addr}
}

// appendNeighborhood / readNeighborhood pack the shared shape of
// KStabResp and KDListResp: hasPred(bool) | [pred(ref)] | count(uvar) |
// succ refs.
func appendNeighborhood(dst []byte, hasPred bool, pred Ref, succList []Ref) []byte {
	dst = wire.AppendBool(dst, hasPred)
	if hasPred {
		dst = appendRef(dst, pred)
	}
	dst = wire.AppendUvarint(dst, uint64(len(succList)))
	for _, s := range succList {
		dst = appendRef(dst, s)
	}
	return dst
}

func readNeighborhood(r *wire.Reader) (hasPred bool, pred Ref, succList []Ref) {
	hasPred = r.Bool()
	if hasPred {
		pred = readRef(r)
	}
	n := r.Uvarint()
	// Each ref is at least two bytes (one-byte id varint, zero-length
	// addr), so a count exceeding half the remaining bytes is corrupt.
	if n > uint64(r.Len())/2 {
		r.Failf("koorde: %d successor refs with %d bytes remaining", n, r.Len())
	}
	if r.Err() == nil && n > 0 {
		succList = make([]Ref, n)
		for i := range succList {
			succList[i] = readRef(r)
		}
	}
	return hasPred, pred, succList
}

// --- KFindReq: from(ref) | token(uvar) | target(uvar) | ttl(var) |
//     replyTo(ref) | i(uvar) | shift(uvar) ---

func encKFindReq(dst []byte, p any) ([]byte, error) {
	c, ok := p.(KFindReq)
	if !ok {
		return nil, errType("KFindReq", p)
	}
	dst = appendRef(dst, c.From)
	dst = wire.AppendUvarint(dst, c.Token)
	dst = wire.AppendUvarint(dst, uint64(c.Target))
	dst = wire.AppendVarint(dst, int64(c.TTL))
	dst = appendRef(dst, c.ReplyTo)
	dst = wire.AppendUvarint(dst, uint64(c.I))
	dst = wire.AppendUvarint(dst, uint64(c.Shift))
	return dst, nil
}

func decKFindReq(data []byte) (any, error) {
	r := wire.NewReader(data)
	var c KFindReq
	c.From = readRef(&r)
	c.Token = r.Uvarint()
	c.Target = dht.Key(r.Uvarint())
	c.TTL = int(r.Varint())
	c.ReplyTo = readRef(&r)
	c.I = dht.Key(r.Uvarint())
	c.Shift = uint8(r.Uvarint())
	if err := r.Done(); err != nil {
		return nil, err
	}
	return c, nil
}

// --- KFindResp: from(ref) | token(uvar) | succ(ref) ---

func encKFindResp(dst []byte, p any) ([]byte, error) {
	c, ok := p.(KFindResp)
	if !ok {
		return nil, errType("KFindResp", p)
	}
	dst = appendRef(dst, c.From)
	dst = wire.AppendUvarint(dst, c.Token)
	dst = appendRef(dst, c.Succ)
	return dst, nil
}

func decKFindResp(data []byte) (any, error) {
	r := wire.NewReader(data)
	var c KFindResp
	c.From = readRef(&r)
	c.Token = r.Uvarint()
	c.Succ = readRef(&r)
	if err := r.Done(); err != nil {
		return nil, err
	}
	return c, nil
}

// --- KStabReq: from(ref) | chain(bool) | [image(uvar)] ---

func encKStabReq(dst []byte, p any) ([]byte, error) {
	c, ok := p.(KStabReq)
	if !ok {
		return nil, errType("KStabReq", p)
	}
	dst = appendRef(dst, c.From)
	dst = wire.AppendBool(dst, c.Chain)
	if c.Chain {
		dst = wire.AppendUvarint(dst, uint64(c.Image))
	}
	return dst, nil
}

func decKStabReq(data []byte) (any, error) {
	r := wire.NewReader(data)
	c := KStabReq{From: readRef(&r)}
	c.Chain = r.Bool()
	if c.Chain {
		c.Image = dht.Key(r.Uvarint())
	}
	if err := r.Done(); err != nil {
		return nil, err
	}
	return c, nil
}

// --- KStabResp: from(ref) | neighborhood | chain(bool) | [image(uvar)] ---

func encKStabResp(dst []byte, p any) ([]byte, error) {
	c, ok := p.(KStabResp)
	if !ok {
		return nil, errType("KStabResp", p)
	}
	dst = appendRef(dst, c.From)
	dst = appendNeighborhood(dst, c.HasPred, c.Pred, c.SuccList)
	dst = wire.AppendBool(dst, c.Chain)
	if c.Chain {
		dst = wire.AppendUvarint(dst, uint64(c.Image))
	}
	return dst, nil
}

func decKStabResp(data []byte) (any, error) {
	r := wire.NewReader(data)
	var c KStabResp
	c.From = readRef(&r)
	c.HasPred, c.Pred, c.SuccList = readNeighborhood(&r)
	c.Chain = r.Bool()
	if c.Chain {
		c.Image = dht.Key(r.Uvarint())
	}
	if err := r.Done(); err != nil {
		return nil, err
	}
	return c, nil
}

// --- KNotify / KPingReq / KPingResp / KDListReq: from(ref) ---

func encKNotify(dst []byte, p any) ([]byte, error) {
	c, ok := p.(KNotify)
	if !ok {
		return nil, errType("KNotify", p)
	}
	return appendRef(dst, c.From), nil
}

func decKNotify(data []byte) (any, error) {
	r := wire.NewReader(data)
	c := KNotify{From: readRef(&r)}
	if err := r.Done(); err != nil {
		return nil, err
	}
	return c, nil
}

func encKPingReq(dst []byte, p any) ([]byte, error) {
	c, ok := p.(KPingReq)
	if !ok {
		return nil, errType("KPingReq", p)
	}
	return appendRef(dst, c.From), nil
}

func decKPingReq(data []byte) (any, error) {
	r := wire.NewReader(data)
	c := KPingReq{From: readRef(&r)}
	if err := r.Done(); err != nil {
		return nil, err
	}
	return c, nil
}

func encKPingResp(dst []byte, p any) ([]byte, error) {
	c, ok := p.(KPingResp)
	if !ok {
		return nil, errType("KPingResp", p)
	}
	return appendRef(dst, c.From), nil
}

func decKPingResp(data []byte) (any, error) {
	r := wire.NewReader(data)
	c := KPingResp{From: readRef(&r)}
	if err := r.Done(); err != nil {
		return nil, err
	}
	return c, nil
}

func encKDListReq(dst []byte, p any) ([]byte, error) {
	c, ok := p.(KDListReq)
	if !ok {
		return nil, errType("KDListReq", p)
	}
	return appendRef(dst, c.From), nil
}

func decKDListReq(data []byte) (any, error) {
	r := wire.NewReader(data)
	c := KDListReq{From: readRef(&r)}
	if err := r.Done(); err != nil {
		return nil, err
	}
	return c, nil
}

// --- KDListResp: from(ref) | neighborhood ---

func encKDListResp(dst []byte, p any) ([]byte, error) {
	c, ok := p.(KDListResp)
	if !ok {
		return nil, errType("KDListResp", p)
	}
	dst = appendRef(dst, c.From)
	return appendNeighborhood(dst, c.HasPred, c.Pred, c.SuccList), nil
}

func decKDListResp(data []byte) (any, error) {
	r := wire.NewReader(data)
	var c KDListResp
	c.From = readRef(&r)
	c.HasPred, c.Pred, c.SuccList = readNeighborhood(&r)
	if err := r.Done(); err != nil {
		return nil, err
	}
	return c, nil
}
