package koorde

import (
	"testing"

	"streamdex/internal/dht"
)

// TestSplitHeadsInvariants pins the arc-splitter contract the multicast
// layer relies on: either nil (plain delegation is fine) or at least two
// heads, the first of which is the arc's low end, the rest strictly
// clockwise inside (lo, hi], so the sub-ranges partition [lo, hi].
func TestSplitHeadsInvariants(t *testing.T) {
	space := dht.NewSpace(16)
	ids := uniformIDs(space, 256, 0x5eed)
	nodes := buildRing(space, ids, 8)
	arcs := []struct{ lo, hi dht.Key }{
		{0, space.Mask()},                            // full keyspace
		{ids[10] + 1, ids[200]},                      // wide arc
		{ids[250] + 1, ids[40]},                      // wrapped arc
		{ids[10] + 1, ids[12]},                       // narrow two-node arc
		{space.Wrap(ids[7] + 1), space.Wrap(ids[7])}, // whole-ring wrap
	}
	for _, self := range ids {
		m := nodes[self]
		for _, arc := range arcs {
			heads := m.SplitHeads(arc.lo, arc.hi)
			if heads == nil {
				continue
			}
			if len(heads) < 2 || len(heads) > Degree {
				t.Fatalf("node %d arc [%d,%d]: %d heads, want 2..%d", self, arc.lo, arc.hi, len(heads), Degree)
			}
			if heads[0] != arc.lo {
				t.Fatalf("node %d arc [%d,%d]: first head %d, want lo", self, arc.lo, arc.hi, heads[0])
			}
			prev := arc.lo
			for _, h := range heads[1:] {
				if !space.BetweenIncl(h, prev, arc.hi) {
					t.Fatalf("node %d arc [%d,%d]: head %d not clockwise inside (%d,%d]", self, arc.lo, arc.hi, h, prev, arc.hi)
				}
				prev = h
			}
		}
	}
	// An arc spanning only a handful of keys can never clear the
	// estimated-population threshold, whatever the local density reads.
	for _, self := range ids {
		if h := nodes[self].SplitHeads(ids[10]+1, ids[10]+4); h != nil {
			t.Fatalf("node %d split a four-key arc into %d heads", self, len(h))
		}
	}
}

// TestDigitHopWalkTerminates routes split legs hop by hop on a warm
// oracle ring: from any origin to any target head, iterating DigitHop
// must land on the target's ring predecessor (the node whose immediate
// successor covers it) within the de Bruijn digit budget plus the greedy
// slack — the property the multicast's per-leg depth bound rests on.
func TestDigitHopWalkTerminates(t *testing.T) {
	space := dht.NewSpace(16)
	ids := uniformIDs(space, 256, 0xca11)
	nodes := buildRing(space, ids, 8)
	maxHops := int(space.M)/digitBits + pointerWindow // digits + greedy slack
	targets := []dht.Key{ids[0], ids[77] + 3, ids[200] - 1, space.Mask()}
	for _, origin := range []dht.Key{ids[5], ids[100], ids[255]} {
		for _, target := range targets {
			at := origin
			img := at
			shift := ShiftNone
			hops := 0
			for {
				m := nodes[at]
				succ, ok := m.LiveSuccessor()
				if !ok {
					t.Fatalf("node %d lost its successor", at)
				}
				if space.BetweenIncl(target, at, succ.ID) {
					break // at is the target's ring predecessor
				}
				next, nimg, nshift, ok := m.DigitHop(target, img, shift)
				if !ok {
					t.Fatalf("DigitHop stuck at %d toward %d after %d hops", at, target, hops)
				}
				if next.ID == at {
					t.Fatalf("DigitHop self-loop at %d toward %d", at, target)
				}
				at, img, shift = next.ID, nimg, nshift
				if hops++; hops > maxHops {
					t.Fatalf("walk %d→%d exceeded %d hops", origin, target, maxHops)
				}
			}
			// The stop node's successor must be the oracle owner of target.
			owner := oracleOwner(ids, target)
			if succ, _ := nodes[at].LiveSuccessor(); succ.ID != owner && at != owner {
				t.Fatalf("walk %d→%d stopped at %d whose successor %d is not owner %d", origin, target, at, succ.ID, owner)
			}
		}
	}
}
