// Package koorde implements the Koorde control plane (Kaashoek & Karger,
// IPTPS 2003): a de Bruijn DHT embedded in the Chord identifier circle, as
// one pure, message-driven state machine behind the substrate-neutral
// overlay.Machine contract — the same contract the Chord machine
// (internal/chord/protocol) implements, driven unchanged by the
// discrete-event simulator and the live TCP transport.
//
// The ring substrate is deliberately identical to Chord's: successor
// lists, stabilize/notify, miss-based failure detection, predecessor
// pings. What changes is the long-distance routing state. Where Chord
// keeps m fingers (successor(self+2^i)) and takes ~½·log2(N) hops per
// lookup, Koorde keeps a constant-degree window of pointers around
// k·self (k = 2^digitBits) — node self's image under the degree-k
// de Bruijn graph — and routes by digit injection: each hop shifts
// digitBits bits of the target key into an imaginary de Bruijn address
// hosted on the current arc, taking ~log_k(N) + O(1) hops. At the paper's
// 500-node scale with k = 16 that is ~3 hops against Chord's ~5, with 18
// pointers per node against Chord's 32 fingers.
//
// Lookups (KFindReq) carry the de Bruijn walk state in the message, as in
// the paper: the imaginary node I being forwarded toward and the number
// of key digits still to inject. The node hosting I injects the next
// digit (I ← k·I + digit); whenever a hop's own arc offers a strictly
// shorter alignment it re-anchors the walk, which both starts fresh
// lookups and heals stale state, and makes the digit count monotonically
// decreasing — the walk provably terminates, with a TTL as backstop.
// The stateless data-plane NextHop (per-message routing of application
// traffic, where no walk state travels) is instead the monotone greedy
// closest-preceding step over the constant-degree state; stateless
// per-hop recomputation of the de Bruijn alignment can cycle after an
// undershoot hop, so it is reserved for the stateful lookup path.
//
// All methods must be called from the substrate's single event-loop
// context (the engine goroutine in simulation, the clock.Wall loop live);
// the machine does no locking of its own.
package koorde

import (
	"sort"
	"sync/atomic"

	"streamdex/internal/clock"
	"streamdex/internal/dht"
	"streamdex/internal/metrics"
	"streamdex/internal/overlay"
	"streamdex/internal/sim"
)

// MachineName is the registry key of the Koorde machine.
const MachineName = "koorde"

// digitBits is the number of key bits consumed per de Bruijn hop; the
// graph degree is 2^digitBits. 4 bits (degree 16) is the constant-degree
// sweet spot the Koorde paper suggests for O(log n / log log n) hops.
const digitBits = 4

// Degree is the de Bruijn graph degree k = 2^digitBits.
const Degree = 1 << digitBits

// pointerWindow is how many nodes the warm-start de Bruijn chain holds:
// pred(k·self) plus the clockwise successors covering the image arc
// (k·self, k·succ] — about Degree nodes on a balanced ring — with one
// spare.
const pointerWindow = Degree + 2

func init() {
	overlay.Register(overlay.Factory{
		Name:      MachineName,
		New:       newMachine,
		Longlinks: Longlinks,
	})
}

func newMachine(cfg overlay.Config, self Ref, clk clock.Clock, send func(to Ref, msg any)) overlay.Machine {
	return New(cfg, self, clk, send)
}

// Longlinks computes the perfect de Bruijn pointer chain for a warm
// start: the node preceding k·self, then the next pointerWindow-1 nodes
// clockwise — together they host the whole image arc of (self, succ]
// under digit injection, so every aligned hop finds its target in the
// chain.
func Longlinks(cfg overlay.Config, ring []dht.Key, self dht.Key) []Ref {
	n := len(ring)
	if n == 0 {
		return nil
	}
	target := cfg.Space.Wrap(self << digitBits)
	pos := sort.Search(n, func(i int) bool { return ring[i] >= target })
	if pos == n {
		pos = 0
	}
	out := make([]Ref, 0, pointerWindow)
	for k := 0; k < n && len(out) < pointerWindow; k++ {
		id := ring[((pos-1+k)%n+n)%n] // start at pred(k·self)
		if id == self {
			continue
		}
		// The window is at most pointerWindow entries: a linear scan
		// dedups without the per-call map the rebuild path used to pay.
		dup := false
		for _, have := range out {
			if have.ID == id {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		out = append(out, Ref{ID: id})
	}
	return out
}

// pendingFind tracks an outstanding successor lookup.
type pendingFind struct {
	onResp func(Ref)
	timer  clock.Timer
}

// joinState tracks an in-flight join attempt.
type joinState struct {
	bootstrap Ref
	token     uint64
	retry     clock.Ticker
	onJoined  func(Ref)
}

// Machine is one node's Koorde control-plane state machine.
type Machine struct {
	cfg   overlay.Config
	space dht.Space
	self  Ref
	clk   clock.Clock
	send  func(to Ref, msg any)

	// alive is the optional routing-time liveness filter; nil trusts the
	// message-learned state (the live transport's situation).
	alive func(dht.Key) bool

	// Ring state. debruijn is the pointer chain around k·self, kept in
	// clockwise order from pred(k·self).
	pred     *Ref
	succList []Ref
	debruijn []Ref

	// Miss accounting (identical to the Chord machine's).
	stabSeen   bool
	stabMisses int
	predSeen   bool
	predMisses int

	// Piggybacked chain-repair state. The chain head (debruijn[0], the
	// believed pred(k·self) host) is probed on the stabilize round with a
	// Chain-flagged KStabReq; misses rotate it out like a dead successor,
	// and chainDirty requests the full KDListReq rebuild fallback.
	anchorSeen    bool
	anchorProbing bool
	anchorMisses  int
	chainDirty    bool
	// chainScratch is the spare chain buffer: every rebuild or patch
	// writes into it and swaps it with debruijn, so steady-state repair
	// stays off the allocator.
	chainScratch []Ref
	// winScratch holds the responder's clockwise window while the patch
	// path brackets the image inside it.
	winScratch []Ref

	// Outstanding lookups.
	nextToken uint64
	pendFind  map[uint64]*pendingFind

	join *joinState

	tickers  []clock.Ticker
	phaseSet bool
	stabPh   sim.Time
	fixPh    sim.Time

	stopped bool

	stats metrics.Ring

	view atomic.Pointer[view]

	neighborWatch func()
}

// New builds a machine for self. send is invoked synchronously (from
// Handle and from timer callbacks) for every outgoing control message; the
// substrate adapter owns delivery. Defaults mirror the Chord machine's.
func New(cfg overlay.Config, self Ref, clk clock.Clock, send func(to Ref, msg any)) *Machine {
	if cfg.Space.M == 0 {
		panic("koorde: config without identifier space")
	}
	if clk == nil || send == nil {
		panic("koorde: machine without clock or send hook")
	}
	if cfg.SuccListLen <= 0 {
		cfg.SuccListLen = 8
	}
	if cfg.MissThreshold <= 0 {
		cfg.MissThreshold = 3
	}
	if cfg.FindTTL <= 0 {
		cfg.FindTTL = 64
	}
	if cfg.JoinRetryEvery <= 0 {
		if cfg.StabilizeEvery > 0 {
			cfg.JoinRetryEvery = cfg.StabilizeEvery
		} else {
			cfg.JoinRetryEvery = 500 * sim.Millisecond
		}
	}
	m := &Machine{
		stats:    metrics.Ring{Machine: MachineName},
		cfg:      cfg,
		space:    cfg.Space,
		self:     Ref{ID: cfg.Space.Wrap(self.ID), Addr: self.Addr},
		clk:      clk,
		send:     send,
		pendFind: make(map[uint64]*pendingFind),
	}
	m.publishView()
	return m
}

// SetAliveFilter installs the routing-time liveness filter (nil clears
// it). Only next-hop candidate selection consults it; the maintenance
// protocol never does.
func (m *Machine) SetAliveFilter(alive func(dht.Key) bool) { m.alive = alive }

// SetNeighborWatch installs (or clears, with nil) the neighborhood-change
// callback, fired in machine context when a published view carries a
// different predecessor or first successor than the previous one.
func (m *Machine) SetNeighborWatch(fn func()) { m.neighborWatch = fn }

// SetPhases fixes the initial delay of the two maintenance tickers.
// Call before StartMaintenance.
func (m *Machine) SetPhases(stabilize, repair sim.Time) {
	m.phaseSet = true
	m.stabPh, m.fixPh = stabilize, repair
}

// Name implements overlay.Machine.
func (m *Machine) Name() string { return MachineName }

// Self returns the machine's own ref.
func (m *Machine) Self() Ref { return m.self }

// Joined reports whether the machine has ring state (a successor list).
func (m *Machine) Joined() bool { return len(m.succList) > 0 }

// Stats returns a snapshot of the maintenance counters. FingerRepairs
// counts de Bruijn pointer-chain rebuilds that changed the chain.
func (m *Machine) Stats() metrics.Ring { return m.stats }

// --- Lifecycle ---

// Create bootstraps a brand-new one-node ring and starts maintenance.
func (m *Machine) Create() {
	if m.stopped {
		return
	}
	p := m.self
	m.pred = &p
	m.succList = []Ref{m.self}
	m.publishView()
	m.StartMaintenance()
}

// Join enters an existing ring through bootstrap, retrying unanswered
// lookups every JoinRetryEvery exactly like the Chord machine.
func (m *Machine) Join(bootstrap Ref, onJoined func(Ref)) {
	if m.stopped || m.Joined() || m.join != nil {
		return
	}
	m.join = &joinState{bootstrap: bootstrap, onJoined: onJoined}
	m.sendJoinFind()
	m.join.retry = m.clk.EveryAfter(m.cfg.JoinRetryEvery, m.cfg.JoinRetryEvery, m.retryJoin)
}

// AbandonJoin cancels an in-flight join attempt (caller-side timeout).
func (m *Machine) AbandonJoin() {
	j := m.join
	if j == nil {
		return
	}
	m.join = nil
	if j.retry != nil {
		j.retry.Stop()
	}
	m.cancelFind(j.token)
}

func (m *Machine) sendJoinFind() {
	j := m.join
	m.cancelFind(j.token)
	tok := m.newToken()
	pf := &pendingFind{onResp: m.completeJoin}
	pf.timer = m.clk.Schedule(m.findExpiry(), func() { delete(m.pendFind, tok) })
	m.pendFind[tok] = pf
	j.token = tok
	m.send(j.bootstrap, KFindReq{
		From: m.self, Token: tok, Target: m.self.ID, TTL: m.cfg.FindTTL,
		ReplyTo: m.self, Shift: ShiftNone,
	})
}

func (m *Machine) retryJoin() {
	if m.join == nil {
		return
	}
	if _, pending := m.pendFind[m.join.token]; pending {
		// The previous attempt is still inside its expiry window; retry
		// only once the lookup has provably expired (see the Chord machine
		// for the rationale).
		return
	}
	m.sendJoinFind()
}

func (m *Machine) completeJoin(succ Ref) {
	j := m.join
	if j == nil {
		return
	}
	m.join = nil
	if j.retry != nil {
		j.retry.Stop()
	}
	if succ.ID == m.self.ID {
		succ = m.self
	}
	m.succList = []Ref{succ}
	m.pred = nil
	m.publishView()
	m.StartMaintenance()
	if j.onJoined != nil {
		j.onJoined(succ)
	}
}

// StartMaintenance launches the periodic stabilize and pointer-repair
// tasks. Idempotent; a no-op when StabilizeEvery is zero.
func (m *Machine) StartMaintenance() {
	if m.stopped || len(m.tickers) > 0 || m.cfg.StabilizeEvery <= 0 {
		return
	}
	stabPh, fixPh := m.cfg.StabilizeEvery, m.cfg.FixFingersEvery
	if m.phaseSet {
		stabPh, fixPh = m.stabPh, m.fixPh
	}
	m.tickers = append(m.tickers, m.clk.EveryAfter(stabPh, m.cfg.StabilizeEvery, m.stabilizeTick))
	if m.cfg.FixFingersEvery > 0 {
		m.tickers = append(m.tickers, m.clk.EveryAfter(fixPh, m.cfg.FixFingersEvery, m.fixPointers))
	}
}

// Tick implements overlay.Machine: one stabilize round plus one pointer
// repair, synchronously.
func (m *Machine) Tick() {
	if m.stopped {
		return
	}
	m.stabilizeTick()
	m.fixPointers()
}

// Stop halts maintenance and cancels outstanding lookups; the machine
// ignores all further messages.
func (m *Machine) Stop() {
	m.stopped = true
	for _, t := range m.tickers {
		t.Stop()
	}
	m.tickers = nil
	for tok, pf := range m.pendFind {
		pf.timer.Cancel()
		delete(m.pendFind, tok)
	}
	if m.join != nil && m.join.retry != nil {
		m.join.retry.Stop()
	}
	m.join = nil
}

// --- Warm-start and splice mutators ---

// InstallRing overwrites the machine's ring state wholesale: predecessor
// (nil clears it), successor list, and — when longlinks is non-nil — the
// de Bruijn pointer chain.
func (m *Machine) InstallRing(pred *Ref, succList []Ref, longlinks []Ref) {
	if pred != nil {
		p := *pred
		m.pred = &p
	} else {
		m.pred = nil
	}
	m.succList = append(m.succList[:0], succList...)
	if longlinks != nil {
		m.debruijn = append(m.debruijn[:0], longlinks...)
	}
	m.publishView()
}

// AdoptPredecessor force-sets the predecessor (graceful-leave splice).
func (m *Machine) AdoptPredecessor(p Ref) {
	r := p
	m.pred = &r
	m.predSeen = true
	m.predMisses = 0
	m.publishView()
}

// ClearPredecessor force-clears the predecessor (graceful-leave splice).
func (m *Machine) ClearPredecessor() {
	m.pred = nil
	m.predMisses = 0
	m.publishView()
}

// AdoptSuccessors force-replaces the successor list (graceful-leave
// splice).
func (m *Machine) AdoptSuccessors(list []Ref) {
	m.succList = append(m.succList[:0], list...)
	m.stabMisses = 0
	m.publishView()
}

// --- Message handling ---

// Handle consumes one decoded control message.
func (m *Machine) Handle(msg any) {
	if m.stopped {
		return
	}
	switch c := msg.(type) {
	case KFindReq:
		m.handleFindReq(c)
	case KFindResp:
		m.handleFindResp(c)
	case KStabReq:
		m.handleStabReq(c)
	case KStabResp:
		m.handleStabResp(c)
	case KNotify:
		m.considerPredecessor(c.From)
	case KPingReq:
		m.send(c.From, KPingResp{From: m.self})
	case KPingResp:
		if m.pred != nil && c.From.ID == m.pred.ID {
			m.predSeen = true
		}
	case KDListReq:
		m.handleDListReq(c)
	case KDListResp:
		m.handleDListResp(c)
	}
	m.publishView()
}

// handleFindReq answers a successor lookup when the target falls on this
// node's arc, otherwise advances the stateful de Bruijn walk: inject
// digits while we host the imaginary node, re-anchor when our own arc
// aligns strictly closer, then forward toward the imaginary node (or,
// once every digit is spent, toward the target itself).
func (m *Machine) handleFindReq(c KFindReq) {
	if c.TTL <= 0 {
		m.stats.FindDrops++
		return
	}
	succ, ok := m.liveSuccessor()
	if !ok {
		return // not in a ring yet
	}
	if succ.ID == m.self.ID || m.space.BetweenIncl(c.Target, m.self.ID, succ.ID) {
		answer := succ
		if succ.ID == m.self.ID {
			answer = m.self
		}
		if c.ReplyTo.ID == m.self.ID {
			m.resolveFind(c.Token, answer)
			return
		}
		m.send(c.ReplyTo, KFindResp{From: m.self, Token: c.Token, Succ: answer})
		return
	}
	if c.TTL <= 1 {
		m.stats.FindDrops++
		return
	}
	// Inject digits for as long as the imaginary node sits on our arc.
	// (Bounded by Shift ≤ maxT; usually at most one digit per hop.)
	for c.Shift != ShiftNone && c.Shift > 0 && m.space.BetweenIncl(c.I, m.self.ID, succ.ID) {
		digit := (c.Target >> (digitBits * uint(c.Shift-1))) & (Degree - 1)
		c.I = m.space.Wrap(c.I<<digitBits | digit)
		c.Shift--
	}
	// Re-anchor when our arc aligns with the target in strictly fewer
	// digits than the carried walk still needs (ShiftNone compares
	// greater than any real digit count).
	if i1, left, ok := debruijnStep(m.space, m.self.ID, succ.ID, c.Target); ok && left < c.Shift {
		c.I, c.Shift = i1, left
	}
	goal := c.Target
	if c.Shift != ShiftNone && c.Shift > 0 {
		goal = c.I
	}
	next, ok := m.hopToward(goal, c.Target, succ)
	if !ok || next.ID == m.self.ID {
		m.stats.FindDrops++
		return
	}
	c.TTL--
	c.From = m.self
	m.send(next, c)
}

// hopToward picks the forwarding node for a walk headed at goal (an
// imaginary de Bruijn address or, once exhausted, the target): the
// closest known live node strictly before goal, then the greedy
// closest-preceding step toward the final target, then the successor.
func (m *Machine) hopToward(goal, target dht.Key, succ Ref) (Ref, bool) {
	if hop, ok := m.closestTo(goal); ok {
		return hop, true
	}
	if hop, ok := m.ClosestPreceding(target); ok {
		return hop, true
	}
	return succ, succ.ID != m.self.ID
}

func (m *Machine) handleFindResp(c KFindResp) {
	if !m.resolveFind(c.Token, c.Succ) {
		m.stats.StaleFindResps++
	}
}

func (m *Machine) resolveFind(tok uint64, succ Ref) bool {
	pf := m.pendFind[tok]
	if pf == nil {
		return false
	}
	delete(m.pendFind, tok)
	pf.timer.Cancel()
	pf.onResp(succ)
	return true
}

func (m *Machine) handleStabReq(c KStabReq) {
	resp := KStabResp{
		From: m.self, Chain: c.Chain, Image: c.Image,
		SuccList: append([]Ref(nil), m.succList...),
	}
	if m.pred != nil {
		resp.HasPred, resp.Pred = true, *m.pred
	}
	m.send(c.From, resp)
	if !c.Chain {
		// A chain probe comes from whoever we host the image for —
		// usually a far-away node that must not become our predecessor.
		m.considerPredecessor(c.From)
	}
}

func (m *Machine) handleStabResp(c KStabResp) {
	if c.Chain {
		m.handleChainResp(c)
		return
	}
	succ, ok := m.Successor()
	if !ok || c.From.ID != succ.ID {
		return // stale response from a node no longer our successor
	}
	m.stabSeen = true
	if c.HasPred && c.Pred.ID != m.self.ID && m.space.Between(c.Pred.ID, m.self.ID, succ.ID) {
		succ = c.Pred
	}
	list := make([]Ref, 0, m.cfg.SuccListLen)
	list = append(list, succ)
	for _, r := range c.SuccList {
		if r.ID == m.self.ID {
			break
		}
		dup := false
		for _, have := range list {
			if have.ID == r.ID {
				dup = true
				break
			}
		}
		if !dup {
			list = append(list, r)
		}
		if len(list) == m.cfg.SuccListLen {
			break
		}
	}
	m.succList = list
	m.send(succ, KNotify{From: m.self})
}

func (m *Machine) considerPredecessor(p Ref) {
	if p.ID == m.self.ID {
		return
	}
	if m.pred == nil || m.pred.ID == m.self.ID || m.space.Between(p.ID, m.pred.ID, m.self.ID) {
		r := p
		m.pred = &r
		m.predSeen = true
		m.predMisses = 0
	}
}

// handleChainResp patches the de Bruijn chain from the anchor's
// neighborhood, piggybacked on the stabilize round. The responder's
// window — predecessor, itself, successor list — is clockwise; the link
// of that window whose arc holds the image is the true chain head, and
// the window from there on is the fresh chain. When the image escaped
// the window entirely the ring moved too far for incremental patching
// and the full KDListReq rebuild takes over.
func (m *Machine) handleChainResp(c KStabResp) {
	if c.Image != m.space.Wrap(m.self.ID<<digitBits) {
		return // stale probe for an image we no longer chase
	}
	m.anchorSeen = true
	m.anchorMisses = 0
	win := m.winScratch[:0]
	if c.HasPred {
		win = append(win, c.Pred)
	}
	win = append(win, c.From)
	win = append(win, c.SuccList...)
	m.winScratch = win
	start := -1
	for i := 0; i+1 < len(win); i++ {
		if m.space.BetweenIncl(c.Image, win[i].ID, win[i+1].ID) {
			start = i
			break
		}
	}
	if start < 0 {
		// Divergence: the believed anchor no longer borders the image.
		m.chainDirty = true
		m.fixPointers()
		return
	}
	chain := m.chainScratch[:0]
	for _, r := range win[start:] {
		if r.ID == m.self.ID || len(chain) == pointerWindow {
			continue
		}
		dup := false
		for _, have := range chain {
			if have.ID == r.ID {
				dup = true
				break
			}
		}
		if !dup {
			chain = append(chain, r)
		}
	}
	if len(chain) == 0 {
		m.chainDirty = true
		m.fixPointers()
		return
	}
	if !refsEqual(m.debruijn, chain) {
		m.stats.FingerRepairs++
	}
	m.debruijn, m.chainScratch = chain, m.debruijn[:0]
}

// chainProbe piggybacks pointer repair on the stabilize round: account
// the previous probe, rotate out a dead anchor after MissThreshold
// silent rounds, then ask the current chain head for its neighborhood.
func (m *Machine) chainProbe() {
	if len(m.debruijn) == 0 {
		m.chainDirty = true
		m.anchorProbing = false
		return
	}
	if m.anchorProbing && !m.anchorSeen {
		m.anchorMisses++
		if m.anchorMisses >= m.cfg.MissThreshold {
			m.anchorMisses = 0
			m.debruijn = m.debruijn[1:]
			if len(m.debruijn) == 0 {
				m.chainDirty = true
				m.anchorProbing = false
				return
			}
		}
	}
	m.anchorSeen = false
	m.anchorProbing = true
	m.send(m.debruijn[0], KStabReq{
		From: m.self, Chain: true, Image: m.space.Wrap(m.self.ID << digitBits),
	})
}

// handleDListReq reports our neighborhood to a node rebuilding its
// de Bruijn pointer chain (we host its k·self).
func (m *Machine) handleDListReq(c KDListReq) {
	resp := KDListResp{From: m.self, SuccList: append([]Ref(nil), m.succList...)}
	if m.pred != nil {
		resp.HasPred, resp.Pred = true, *m.pred
	}
	m.send(c.From, resp)
}

// handleDListResp rebuilds the pointer chain from the k·self host's
// neighborhood: its predecessor (the true pred(k·self)), itself, then its
// successor list — clockwise coverage of the image arc.
func (m *Machine) handleDListResp(c KDListResp) {
	chain := m.chainScratch[:0]
	add := func(r Ref) {
		if r.ID == m.self.ID || len(chain) == pointerWindow {
			return
		}
		for _, have := range chain {
			if have.ID == r.ID {
				return
			}
		}
		chain = append(chain, r)
	}
	if c.HasPred {
		add(c.Pred)
	}
	add(c.From)
	for _, r := range c.SuccList {
		add(r)
	}
	if !refsEqual(m.debruijn, chain) {
		m.stats.FingerRepairs++
	}
	m.debruijn, m.chainScratch = chain, m.debruijn[:0]
	m.anchorMisses = 0
	m.anchorProbing = false
}

func refsEqual(a, b []Ref) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].ID != b[i].ID {
			return false
		}
	}
	return true
}

// --- Periodic maintenance ---

// stabilizeTick is byte-for-byte the Chord machine's round over the K*
// message types: account the previous round's (non-)responses, rotate or
// drop presumed-dead neighbors, then probe successor and predecessor.
func (m *Machine) stabilizeTick() {
	defer m.publishView()
	m.stats.StabilizeRounds++
	succ, ok := m.Successor()
	if ok && succ.ID != m.self.ID {
		if m.stabSeen {
			m.stabMisses = 0
		} else {
			m.stabMisses++
			m.stats.StabilizeMisses++
			if m.stabMisses >= m.cfg.MissThreshold {
				m.stabMisses = 0
				m.stats.SuccRotations++
				if len(m.succList) > 1 {
					m.succList = m.succList[1:]
				} else if m.pred != nil && m.pred.ID != m.self.ID {
					m.succList = []Ref{*m.pred}
				} else {
					m.succList = []Ref{m.self}
				}
				succ, _ = m.Successor()
			}
		}
	}
	m.stabSeen = false

	if m.pred != nil && m.pred.ID != m.self.ID {
		if m.predSeen {
			m.predMisses = 0
		} else {
			m.predMisses++
			if m.predMisses >= m.cfg.MissThreshold {
				m.pred = nil
				m.predMisses = 0
				m.stats.PredDrops++
			}
		}
	}
	m.predSeen = false

	if !ok {
		return // not in a ring yet (join still in flight)
	}
	if succ.ID == m.self.ID {
		if m.pred != nil && m.pred.ID != m.self.ID {
			m.succList = []Ref{*m.pred}
			succ = m.succList[0]
		} else {
			return // genuinely alone
		}
	}
	m.send(succ, KStabReq{From: m.self})
	if m.pred != nil && m.pred.ID != m.self.ID {
		m.send(*m.pred, KPingReq{From: m.self})
	}
	m.chainProbe()
}

// fixPointers is the chain-repair fallback: resolve the node hosting
// k·self with a full lookup, then ask it for its neighborhood
// (KDListReq). In steady state the piggybacked probe on the stabilize
// round keeps the chain fresh and this is a no-op; the full rebuild
// runs only while the chain is empty (fresh join, every pointer rotated
// out dead) or flagged dirty (the image escaped the anchor's window).
func (m *Machine) fixPointers() {
	if !m.Joined() {
		return
	}
	succ, _ := m.Successor()
	if succ.ID == m.self.ID {
		// Alone: the image arc is ours too; no pointers needed.
		m.debruijn = m.debruijn[:0]
		m.publishView()
		return
	}
	if len(m.debruijn) > 0 && !m.chainDirty {
		return
	}
	m.chainDirty = false
	target := m.space.Wrap(m.self.ID << digitBits)
	m.findSuccessor(target, func(host Ref) {
		if host.ID == m.self.ID {
			// We host k·self ourselves: the chain starts at our own
			// neighborhood.
			m.handleDListResp(KDListResp{
				From:     m.self,
				HasPred:  m.pred != nil,
				Pred:     derefOr(m.pred, m.self),
				SuccList: append([]Ref(nil), m.succList...),
			})
			m.publishView()
			return
		}
		m.send(host, KDListReq{From: m.self})
	})
	m.publishView()
}

func derefOr(p *Ref, def Ref) Ref {
	if p == nil {
		return def
	}
	return *p
}

// --- Lookups ---

// FindSuccessor resolves the successor node of key and calls onResp on
// the substrate's loop context. Unanswered lookups expire silently.
func (m *Machine) FindSuccessor(key dht.Key, onResp func(Ref)) {
	m.findSuccessor(m.space.Wrap(key), onResp)
}

func (m *Machine) findSuccessor(key dht.Key, onResp func(Ref)) uint64 {
	tok := m.newToken()
	pf := &pendingFind{onResp: onResp}
	pf.timer = m.clk.Schedule(m.findExpiry(), func() { delete(m.pendFind, tok) })
	m.pendFind[tok] = pf
	m.handleFindReq(KFindReq{
		From: m.self, Token: tok, Target: key, TTL: m.cfg.FindTTL,
		ReplyTo: m.self, Shift: ShiftNone,
	})
	return tok
}

func (m *Machine) cancelFind(tok uint64) {
	if pf := m.pendFind[tok]; pf != nil {
		delete(m.pendFind, tok)
		pf.timer.Cancel()
	}
}

func (m *Machine) newToken() uint64 {
	m.nextToken++
	return m.nextToken
}

func (m *Machine) findExpiry() sim.Time {
	p := m.cfg.StabilizeEvery
	if p <= 0 {
		p = m.cfg.JoinRetryEvery
	}
	return p * sim.Time(m.cfg.MissThreshold)
}

// --- Routing state accessors ---

// Successor returns the raw head of the successor list.
func (m *Machine) Successor() (Ref, bool) {
	if len(m.succList) == 0 {
		return Ref{}, false
	}
	return m.succList[0], true
}

// LiveSuccessor returns the first successor-list entry passing the alive
// filter.
func (m *Machine) LiveSuccessor() (Ref, bool) { return m.liveSuccessor() }

func (m *Machine) liveSuccessor() (Ref, bool) {
	for _, s := range m.succList {
		if m.alive == nil || m.alive(s.ID) {
			return s, true
		}
	}
	return Ref{}, false
}

// Predecessor returns the raw predecessor pointer.
func (m *Machine) Predecessor() (Ref, bool) {
	if m.pred == nil {
		return Ref{}, false
	}
	return *m.pred, true
}

// LivePredecessor returns the predecessor if known and passing the alive
// filter.
func (m *Machine) LivePredecessor() (Ref, bool) {
	if m.pred == nil || (m.alive != nil && !m.alive(m.pred.ID)) {
		return Ref{}, false
	}
	return *m.pred, true
}

// SuccessorList returns a copy of the successor list.
func (m *Machine) SuccessorList() []Ref {
	return append([]Ref(nil), m.succList...)
}

// DeBruijnList returns a copy of the de Bruijn pointer chain (for tests
// and the parity harness).
func (m *Machine) DeBruijnList() []Ref {
	return append([]Ref(nil), m.debruijn...)
}

// LonglinkCount implements overlay.Machine: installed de Bruijn pointers.
func (m *Machine) LonglinkCount() int { return len(m.debruijn) }

// EachRoutingEntry calls fn for every routing-state entry: the de Bruijn
// chain first, then the successor list. Entries may repeat; callers dedup.
func (m *Machine) EachRoutingEntry(fn func(Ref)) {
	for _, d := range m.debruijn {
		fn(d)
	}
	for _, s := range m.succList {
		fn(s)
	}
}

// Covers reports whether this node is the successor node of key: key in
// (pred, self].
func (m *Machine) Covers(key dht.Key) bool {
	if m.pred == nil {
		return key == m.self.ID
	}
	return m.space.BetweenIncl(key, m.pred.ID, m.self.ID)
}

// NextHop picks the forwarding target for key: the successor when key
// lies in (self, succ]; otherwise the greedy closest-preceding entry
// from the constant-degree routing state (de Bruijn chain + successor
// list). Per-message data-plane routing carries no walk state, and the
// de Bruijn alignment recomputed statelessly at each hop can cycle, so
// the stateful walk is reserved for KFindReq lookups; the greedy step is
// strictly clockwise and therefore always terminates.
func (m *Machine) NextHop(key dht.Key) (Ref, bool) {
	succ, ok := m.liveSuccessor()
	if !ok {
		return Ref{}, false
	}
	if m.space.BetweenIncl(key, m.self.ID, succ.ID) {
		return succ, true
	}
	if c, ok := m.ClosestPreceding(key); ok {
		return c, true
	}
	return succ, true
}

// ClosestPreceding returns the routing-state entry that most immediately
// precedes key — the greedy fallback step, hardened against entries
// rejected by the alive filter. Candidates are the de Bruijn chain and
// the successor list.
func (m *Machine) ClosestPreceding(key dht.Key) (Ref, bool) {
	best := Ref{}
	found := false
	consider := func(c Ref) {
		if c.ID == m.self.ID || (m.alive != nil && !m.alive(c.ID)) {
			return
		}
		if !m.space.Between(c.ID, m.self.ID, key) {
			return
		}
		if !found || m.space.Between(best.ID, m.self.ID, c.ID) {
			best, found = c, true
		}
	}
	for _, d := range m.debruijn {
		consider(d)
	}
	for _, s := range m.succList {
		consider(s)
	}
	return best, found
}

// splitLeafNodes is the sub-arc size (in estimated covered nodes) the
// multicast arc split aims for: small enough that the sub-arc fits the
// delegating predecessor's successor list, so each routed leg finishes
// in a single fan-out level.
const splitLeafNodes = 4

// SplitHeads implements overlay.ArcSplitter: partition [lo, hi] into up
// to Degree sub-arcs of about splitLeafNodes covered nodes each. The de
// Bruijn chain is one contiguous window near k·self, so unlike Chord
// fingers it cannot subdivide a distant arc; routing an independent leg
// toward each sub-arc head keeps the dissemination depth logarithmic
// where plain kid delegation degrades to a successor-list pipeline. The
// node count is estimated from the successor-list density — the only
// membership information a Koorde node holds.
func (m *Machine) SplitHeads(lo, hi dht.Key) []dht.Key {
	last := len(m.succList) - 1
	if last < 0 || m.succList[last].ID == m.self.ID {
		return nil
	}
	span := m.space.Distance(m.self.ID, m.succList[last].ID)
	gap := span / uint64(last+1)
	if gap == 0 {
		return nil
	}
	estN := m.space.Distance(lo, hi) / gap
	if estN <= uint64(2*m.cfg.SuccListLen) {
		// Shallow enough already: the kid delegation covers the arc in
		// one or two successor-list levels.
		return nil
	}
	s := (estN + splitLeafNodes - 1) / splitLeafNodes
	if s > Degree {
		s = Degree
	}
	if s < 2 {
		return nil
	}
	step := m.space.Distance(lo, hi) / s
	if step == 0 {
		return nil
	}
	heads := make([]dht.Key, 0, s)
	for j := uint64(0); j < s; j++ {
		heads = append(heads, m.space.Add(lo, step*j))
	}
	return heads
}

// DigitHop implements overlay.DigitRouter: one hop of the stateful
// de Bruijn walk for a routed data-plane leg, mirroring the KFindReq
// walk — inject digits while the imaginary address img sits on our arc,
// re-anchor when our own arc aligns in strictly fewer digits, then
// forward toward the imaginary node (or the target once every digit is
// spent). The walk state travels in the message (dht.Message.SplitImg /
// SplitShift), never in the machine.
func (m *Machine) DigitHop(target, img dht.Key, shift uint8) (Ref, dht.Key, uint8, bool) {
	succ, ok := m.liveSuccessor()
	if !ok || succ.ID == m.self.ID {
		return Ref{}, 0, 0, false
	}
	if m.space.BetweenIncl(target, m.self.ID, succ.ID) {
		return succ, img, shift, true
	}
	for shift != ShiftNone && shift > 0 && m.space.BetweenIncl(img, m.self.ID, succ.ID) {
		digit := (target >> (digitBits * uint(shift-1))) & (Degree - 1)
		img = m.space.Wrap(img<<digitBits | digit)
		shift--
	}
	if i1, left, ok := debruijnStep(m.space, m.self.ID, succ.ID, target); ok && left < shift {
		img, shift = i1, left
	}
	goal := target
	if shift != ShiftNone && shift > 0 {
		goal = img
	}
	next, ok := m.hopToward(goal, target, succ)
	if !ok || next.ID == m.self.ID {
		return Ref{}, 0, 0, false
	}
	return next, img, shift, true
}

// closestTo returns the best known live node in (self, i1) — the real
// node hosting (or most closely trailing) the imaginary address i1. The
// interval is open on both ends: the host of an imaginary address is its
// ring predecessor (i1 lies in (host, succ(host)]), so a real node
// sitting exactly at i1 is one step too far. Used only by the stateful
// lookup walk (hopToward).
func (m *Machine) closestTo(i1 dht.Key) (Ref, bool) {
	best := Ref{}
	bestDist := uint64(0)
	found := false
	consider := func(c Ref) {
		if m.alive != nil && !m.alive(c.ID) {
			return
		}
		if !m.space.Between(c.ID, m.self.ID, i1) {
			return
		}
		d := m.space.Distance(m.self.ID, c.ID)
		if !found || d > bestDist {
			best, bestDist, found = c, d, true
		}
	}
	for _, d := range m.debruijn {
		consider(d)
	}
	for _, s := range m.succList {
		consider(s)
	}
	return best, found
}

// debruijnStep anchors a de Bruijn walk on this node's arc: find the
// smallest t ≥ 1 such that some imaginary address i0 in (self, succ]
// agrees with the top b−digitBits·t bits of key (i0 ≡ key >> digitBits·t
// modulo 2^(b−digitBits·t)), inject the next digit of key, and return
// i1 = i0·2^digitBits + digit — the imaginary node the walk forwards
// toward — together with the number of key digits still left to inject
// after i1 (t−1). At t = 1, i1 is the key itself. Returns false only when
// the node has no arc (succ == self).
func debruijnStep(space dht.Space, self, succ, key dht.Key) (dht.Key, uint8, bool) {
	if succ == self {
		return 0, 0, false
	}
	b := uint(space.M)
	maxT := (b + digitBits - 1) / digitBits
	for t := uint(1); t <= maxT; t++ {
		shift := digitBits * t
		var i0 dht.Key
		if shift >= b {
			// No alignment constraint left: the first address of our arc.
			i0 = space.Add(self, 1)
		} else {
			low := b - shift
			mod := dht.Key(1) << low
			base := (key >> shift) & (mod - 1)
			// The first address > self in the right residue class.
			x := self&^(mod-1) | base
			if x <= self {
				x += mod
			}
			i0 = space.Wrap(x)
			if !space.BetweenIncl(i0, self, succ) {
				continue
			}
		}
		digit := (key >> (digitBits * (t - 1))) & (Degree - 1)
		return space.Wrap(i0<<digitBits | digit), uint8(t - 1), true
	}
	return 0, 0, false
}

// --- Published routing view -------------------------------------------------

// view is the immutable snapshot published for lock-free data-plane
// routing, mirroring the machine's unfiltered decisions.
type view struct {
	space    dht.Space
	self     Ref
	hasPred  bool
	pred     Ref
	succs    []Ref
	debruijn []Ref
}

func (m *Machine) publishView() {
	v := &view{space: m.space, self: m.self}
	if m.pred != nil {
		v.hasPred, v.pred = true, *m.pred
	}
	if len(m.succList) > 0 {
		v.succs = append(make([]Ref, 0, len(m.succList)), m.succList...)
	}
	if len(m.debruijn) > 0 {
		v.debruijn = append(make([]Ref, 0, len(m.debruijn)), m.debruijn...)
	}
	prev := m.view.Load()
	m.view.Store(v)
	if m.neighborWatch != nil && neighborhoodChanged(prev, v) {
		m.neighborWatch()
	}
}

func neighborhoodChanged(prev, cur *view) bool {
	if prev == nil {
		return cur.hasPred || len(cur.succs) > 0
	}
	if prev.hasPred != cur.hasPred || (cur.hasPred && prev.pred.ID != cur.pred.ID) {
		return true
	}
	ps, pok := prev.Successor()
	cs, cok := cur.Successor()
	return pok != cok || (cok && ps.ID != cs.ID)
}

// View returns the most recently published routing snapshot. Safe from
// any goroutine; never nil.
func (m *Machine) View() overlay.View { return m.view.Load() }

// Joined reports whether the snapshot has ring state.
func (v *view) Joined() bool { return len(v.succs) > 0 }

// Owner returns the node the snapshot belongs to.
func (v *view) Owner() Ref { return v.self }

// Successor returns the head of the successor list.
func (v *view) Successor() (Ref, bool) {
	if len(v.succs) == 0 {
		return Ref{}, false
	}
	return v.succs[0], true
}

// Predecessor returns the predecessor pointer.
func (v *view) Predecessor() (Ref, bool) { return v.pred, v.hasPred }

// SuccRefs returns the successor list (the snapshot's own slice; views
// are immutable, so callers must not mutate it).
func (v *view) SuccRefs() []Ref { return v.succs }

// Covers mirrors Machine.Covers.
func (v *view) Covers(key dht.Key) bool {
	if !v.hasPred {
		return key == v.self.ID
	}
	return v.space.BetweenIncl(key, v.pred.ID, v.self.ID)
}

// NextHop mirrors Machine.NextHop without an alive filter.
func (v *view) NextHop(key dht.Key) (Ref, bool) {
	succ, ok := v.Successor()
	if !ok {
		return Ref{}, false
	}
	if v.space.BetweenIncl(key, v.self.ID, succ.ID) {
		return succ, true
	}
	if c, ok := v.ClosestPreceding(key); ok {
		return c, true
	}
	return succ, true
}

// ClosestPreceding mirrors Machine.ClosestPreceding without an alive
// filter.
func (v *view) ClosestPreceding(key dht.Key) (Ref, bool) {
	best := Ref{}
	found := false
	consider := func(c Ref) {
		if c.ID == v.self.ID {
			return
		}
		if !v.space.Between(c.ID, v.self.ID, key) {
			return
		}
		if !found || v.space.Between(best.ID, v.self.ID, c.ID) {
			best, found = c, true
		}
	}
	for _, d := range v.debruijn {
		consider(d)
	}
	for _, s := range v.succs {
		consider(s)
	}
	return best, found
}

// Compile-time contract checks.
var (
	_ overlay.Machine     = (*Machine)(nil)
	_ overlay.View        = (*view)(nil)
	_ overlay.ArcSplitter = (*Machine)(nil)
	_ overlay.DigitRouter = (*Machine)(nil)
)

// The walk sentinel carried in split messages must agree with the lookup
// walk's: a non-zero array length here breaks the build if they drift.
var _ [1]struct{} = [1 + int(ShiftNone) - int(dht.SplitShiftNone)]struct{}{}
