package koorde

import (
	"sort"
	"testing"

	"streamdex/internal/clock"
	"streamdex/internal/dht"
	"streamdex/internal/overlay"
	"streamdex/internal/sim"
)

// lcg is the deterministic generator the repo's tests use for id/key
// draws that must not depend on math/rand's version.
type lcg uint64

func (r *lcg) next(n uint64) uint64 {
	*r = *r*6364136223846793005 + 1442695040888963407
	return uint64(*r>>33) % n
}

// uniformIDs draws n distinct identifiers in space.
func uniformIDs(space dht.Space, n int, seed uint64) []dht.Key {
	r := lcg(seed)
	seen := make(map[dht.Key]bool, n)
	ids := make([]dht.Key, 0, n)
	for len(ids) < n {
		id := dht.Key(r.next(1 << space.M))
		if !seen[id] {
			seen[id] = true
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// buildRing wires a warm oracle ring: every machine gets its true
// predecessor, successor chain and perfect de Bruijn pointer chain, with
// no maintenance running and a discarding send hook.
func buildRing(space dht.Space, ids []dht.Key, succLen int) map[dht.Key]*Machine {
	clk := clock.Virtual(sim.NewEngine())
	cfg := overlay.Config{Space: space, SuccListLen: succLen}
	n := len(ids)
	nodes := make(map[dht.Key]*Machine, n)
	for i, id := range ids {
		m := New(cfg, Ref{ID: id}, clk, func(Ref, any) {})
		pred := Ref{ID: ids[(i-1+n)%n]}
		succs := make([]Ref, 0, succLen)
		for k := 1; k <= succLen && k < n; k++ {
			succs = append(succs, Ref{ID: ids[(i+k)%n]})
		}
		m.InstallRing(&pred, succs, Longlinks(cfg, ids, id))
		nodes[id] = m
	}
	return nodes
}

func oracleOwner(ids []dht.Key, key dht.Key) dht.Key {
	at := sort.Search(len(ids), func(i int) bool { return ids[i] >= key })
	if at == len(ids) {
		at = 0
	}
	return ids[at]
}

// TestLonglinksWindow checks the warm-start pointer chain: it starts at
// the ring predecessor of k·self, never contains self, never repeats, and
// is capped at the pointer window.
func TestLonglinksWindow(t *testing.T) {
	space := dht.NewSpace(16)
	ids := uniformIDs(space, 128, 0x5eed)
	cfg := overlay.Config{Space: space}
	for _, self := range ids {
		chain := Longlinks(cfg, ids, self)
		if len(chain) == 0 || len(chain) > pointerWindow {
			t.Fatalf("node %d: chain length %d, want 1..%d", self, len(chain), pointerWindow)
		}
		seen := map[dht.Key]bool{}
		for _, r := range chain {
			if r.ID == self {
				t.Fatalf("node %d: chain contains self", self)
			}
			if seen[r.ID] {
				t.Fatalf("node %d: chain repeats %d", self, r.ID)
			}
			seen[r.ID] = true
		}
		// The head is the ring predecessor of k·self — or, when self is
		// that predecessor, the host of k·self itself (self is skipped).
		target := space.Wrap(self << digitBits)
		host := oracleOwner(ids, target)
		at := sort.Search(len(ids), func(i int) bool { return ids[i] >= host })
		wantHead := ids[(at-1+len(ids))%len(ids)]
		if wantHead == self {
			wantHead = host
		}
		if chain[0].ID != wantHead {
			t.Fatalf("node %d: chain head %d, want pred(k·self)=%d", self, chain[0].ID, wantHead)
		}
	}
}

// TestDebruijnStepAligned checks the hop computation against its
// contract: the returned imaginary address i1 embeds a member of the
// node's own arc shifted one digit, carrying the next digit of the key,
// and at the final alignment level i1 is the key itself.
func TestDebruijnStepAligned(t *testing.T) {
	space := dht.NewSpace(16)
	r := lcg(0xfeed)
	for trial := 0; trial < 2000; trial++ {
		self := dht.Key(r.next(1 << 16))
		succ := space.Add(self, 1+r.next(1<<12))
		key := dht.Key(r.next(1 << 16))
		if space.BetweenIncl(key, self, succ) || key == self {
			continue // succ-branch territory, debruijnStep not consulted
		}
		i1, left, ok := debruijnStep(space, self, succ, key)
		if !ok {
			t.Fatalf("no step for self=%d succ=%d key=%d", self, succ, key)
		}
		if left >= (16+digitBits-1)/digitBits {
			t.Fatalf("digits left %d out of range for self=%d succ=%d key=%d", left, self, succ, key)
		}
		// i1 = Wrap(i0<<4|digit) for some i0 in (self, succ] and some
		// digit of key: recover i0 by shifting back through every digit
		// position and demand at least one consistent witness.
		witness := false
		for tt := uint(1); tt <= (16+digitBits-1)/digitBits; tt++ {
			digit := (key >> (digitBits * (tt - 1))) & (Degree - 1)
			if i1&(Degree-1) != digit {
				continue
			}
			// Candidate i0s are the keys whose low 12 bits are i1>>4.
			for hi := dht.Key(0); hi < Degree; hi++ {
				i0 := hi<<(16-digitBits) | i1>>digitBits
				if space.BetweenIncl(i0, self, succ) {
					witness = true
				}
			}
		}
		if !witness {
			t.Fatalf("unaligned step: self=%d succ=%d key=%d i1=%d", self, succ, key, i1)
		}
	}
	// Final level: i0 = 0x1234 lies in (0x1200, 0x1fff], so any key with
	// key>>4 ≡ 0x234 (mod 2^12) aligns at t=1 and the hop target is the
	// key itself with no digits left; take key = 0x2347.
	self, succ := dht.Key(0x1200), dht.Key(0x1fff)
	i1, left, ok := debruijnStep(space, self, succ, 0x2347)
	if !ok || i1 != 0x2347 || left != 0 {
		t.Fatalf("level-1 step: got i1=%#x left=%d ok=%v, want key itself %#x left=0", i1, left, ok, 0x2347)
	}
}

// TestDataPlaneWalkTerminates routes stateless per-message walks across
// a warm 256-node ring: the greedy data-plane NextHop must be strictly
// monotone — every walk reaches exactly the oracle owner, bounded by the
// live node count, never cycling.
func TestDataPlaneWalkTerminates(t *testing.T) {
	space := dht.NewSpace(16)
	ids := uniformIDs(space, 256, 0x5eed)
	nodes := buildRing(space, ids, 8)

	r := lcg(0x9e3779b9)
	for trial := 0; trial < 2000; trial++ {
		cur := ids[r.next(uint64(len(ids)))]
		key := dht.Key(r.next(1 << 16))
		want := oracleOwner(ids, key)
		hops := 0
		for !nodes[cur].Covers(key) {
			next, ok := nodes[cur].NextHop(key)
			if !ok {
				t.Fatalf("trial %d: no hop at %d for key %d", trial, cur, key)
			}
			if next.ID == cur {
				t.Fatalf("trial %d: self-hop at %d for key %d", trial, cur, key)
			}
			cur = next.ID
			if hops++; hops > len(ids) {
				t.Fatalf("trial %d: walk for key %d did not terminate", trial, key)
			}
		}
		if cur != want {
			t.Fatalf("trial %d: key %d delivered to %d, oracle owner %d", trial, key, cur, want)
		}
	}
}

// TestLookupHopsOracleRing drives the stateful de Bruijn lookup walk
// (KFindReq with carried imaginary-node state) over a synchronously
// wired 256-node warm ring and demands the constant-degree advantage:
// every lookup resolves to the oracle owner, and the mean number of
// KFindReq forwards stays below Chord's ~½·log2(256) = 4 expectation.
func TestLookupHopsOracleRing(t *testing.T) {
	space := dht.NewSpace(16)
	ids := uniformIDs(space, 256, 0x5eed)

	clk := clock.Virtual(sim.NewEngine())
	cfg := overlay.Config{Space: space, SuccListLen: 8}
	nodes := make(map[dht.Key]*Machine, len(ids))
	forwards := 0
	send := func(to Ref, msg any) {
		if _, isFind := msg.(KFindReq); isFind {
			forwards++
		}
		if tgt := nodes[to.ID]; tgt != nil {
			tgt.Handle(msg)
		}
	}
	n := len(ids)
	for i, id := range ids {
		m := New(cfg, Ref{ID: id}, clk, send)
		pred := Ref{ID: ids[(i-1+n)%n]}
		succs := make([]Ref, 0, 8)
		for k := 1; k <= 8; k++ {
			succs = append(succs, Ref{ID: ids[(i+k)%n]})
		}
		m.InstallRing(&pred, succs, Longlinks(cfg, ids, id))
		nodes[id] = m
	}

	r := lcg(0x5eed9e37)
	const trials = 1000
	for trial := 0; trial < trials; trial++ {
		origin := ids[r.next(uint64(n))]
		key := dht.Key(r.next(1 << 16))
		want := oracleOwner(ids, key)
		var got Ref
		resolved := false
		nodes[origin].FindSuccessor(key, func(succ Ref) { got, resolved = succ, true })
		if !resolved {
			t.Fatalf("trial %d: lookup for key %d from %d did not resolve", trial, key, origin)
		}
		if got.ID != want {
			t.Fatalf("trial %d: lookup for key %d resolved to %d, oracle owner %d", trial, key, got.ID, want)
		}
	}
	mean := float64(forwards) / float64(trials)
	if mean >= 4.0 {
		t.Fatalf("mean lookup forwards %.2f on 256-node warm ring, want < 4 (de Bruijn advantage)", mean)
	}
	t.Logf("mean lookup forwards %.2f over %d lookups", mean, trials)
}

// TestViewMatchesMachine checks that the published lock-free snapshot
// makes the same unfiltered routing decisions as the machine.
func TestViewMatchesMachine(t *testing.T) {
	space := dht.NewSpace(16)
	ids := uniformIDs(space, 64, 0xabcd)
	nodes := buildRing(space, ids, 8)
	for _, id := range ids {
		m := nodes[id]
		v := m.View()
		if !v.Joined() || v.Owner().ID != id {
			t.Fatalf("node %d: view owner %v joined=%v", id, v.Owner(), v.Joined())
		}
		if p, _ := m.Predecessor(); func() dht.Key { r, _ := v.Predecessor(); return r.ID }() != p.ID {
			t.Fatalf("node %d: view predecessor mismatch", id)
		}
		for probe := 0; probe < 64; probe++ {
			key := dht.Key((probe * 1021) % (1 << 16))
			mh, mok := m.NextHop(key)
			vh, vok := v.NextHop(key)
			if mok != vok || mh.ID != vh.ID {
				t.Fatalf("node %d key %d: machine hop (%v,%v) view hop (%v,%v)", id, key, mh.ID, mok, vh.ID, vok)
			}
			if m.Covers(key) != v.Covers(key) {
				t.Fatalf("node %d key %d: covers mismatch", id, key)
			}
			mc, mcok := m.ClosestPreceding(key)
			vc, vcok := v.ClosestPreceding(key)
			if mcok != vcok || mc.ID != vc.ID {
				t.Fatalf("node %d key %d: closest-preceding mismatch", id, key)
			}
		}
	}
}
