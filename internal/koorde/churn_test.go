package koorde

import (
	"sort"
	"testing"

	"streamdex/internal/clock"
	"streamdex/internal/dht"
	"streamdex/internal/overlay"
	"streamdex/internal/sim"
)

// bus is the same minimal deterministic substrate the Chord machine's
// churn test uses: machines wired over a fixed-delay channel driven by
// the virtual clock, with crashed nodes silently eating deliveries.
type bus struct {
	eng   *sim.Engine
	clk   clock.Clock
	delay sim.Time
	cfg   overlay.Config
	nodes map[dht.Key]*Machine
	down  map[dht.Key]bool
}

func newBus(eng *sim.Engine, cfg overlay.Config, delay sim.Time) *bus {
	return &bus{
		eng:   eng,
		clk:   clock.Virtual(eng),
		delay: delay,
		cfg:   cfg,
		nodes: make(map[dht.Key]*Machine),
		down:  make(map[dht.Key]bool),
	}
}

func (b *bus) add(id dht.Key) *Machine {
	m := New(b.cfg, Ref{ID: id}, b.clk, func(to Ref, msg any) {
		tid := to.ID
		b.clk.Schedule(b.delay, func() {
			if tgt := b.nodes[tid]; tgt != nil && !b.down[tid] {
				tgt.Handle(msg)
			}
		})
	})
	m.SetAliveFilter(func(id dht.Key) bool { return b.nodes[id] != nil && !b.down[id] })
	b.nodes[id] = m
	return m
}

func (b *bus) leave(id dht.Key) {
	m := b.nodes[id]
	succ, okS := m.LiveSuccessor()
	pred, okP := m.LivePredecessor()
	if okS && succ.ID != id {
		s := b.nodes[succ.ID]
		if okP && pred.ID != id {
			s.AdoptPredecessor(pred)
			rest := []Ref{succ}
			for _, r := range m.SuccessorList() {
				if r.ID != id && r.ID != succ.ID {
					rest = append(rest, r)
				}
			}
			b.nodes[pred.ID].AdoptSuccessors(rest)
		} else {
			s.ClearPredecessor()
		}
	}
	m.Stop()
	b.down[id] = true
}

func (b *bus) crash(id dht.Key) {
	b.nodes[id].Stop()
	b.down[id] = true
}

func (b *bus) live() []dht.Key {
	var ids []dht.Key
	for id := range b.nodes {
		if !b.down[id] {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func (b *bus) oracleChain(id dht.Key, n int) []dht.Key {
	live := b.live()
	at := sort.Search(len(live), func(i int) bool { return live[i] > id })
	chain := make([]dht.Key, 0, n)
	for k := 0; k < n; k++ {
		chain = append(chain, live[(at+k)%len(live)])
	}
	return chain
}

// assertConverged demands the Chord-grade ring invariants (successor
// lists and predecessors exactly matching the live-membership oracle,
// every key covered exactly once) plus the Koorde-specific ones: every
// de Bruijn pointer names a live node, and every lookup routed purely
// through NextHop reaches the oracle owner within the de Bruijn hop
// bound.
func (b *bus) assertConverged(t *testing.T, when string) {
	t.Helper()
	live := b.live()
	want := b.cfg.SuccListLen
	if want > len(live)-1 {
		want = len(live) - 1
	}
	for _, id := range live {
		m := b.nodes[id]
		chain := b.oracleChain(id, want)
		got := m.SuccessorList()
		if len(got) != len(chain) {
			t.Fatalf("%s: node %d successor list %v, oracle %v", when, id, refIDs(got), chain)
		}
		for i, r := range got {
			if r.ID != chain[i] {
				t.Fatalf("%s: node %d successor list %v, oracle %v", when, id, refIDs(got), chain)
			}
		}
		at := sort.Search(len(live), func(i int) bool { return live[i] >= id })
		wantPred := live[(at-1+len(live))%len(live)]
		if p, ok := m.Predecessor(); !ok || p.ID != wantPred {
			t.Fatalf("%s: node %d predecessor %v (ok=%v), oracle %d", when, id, p, ok, wantPred)
		}
		for _, r := range m.DeBruijnList() {
			if b.nodes[r.ID] == nil || b.down[r.ID] {
				t.Fatalf("%s: node %d de Bruijn pointer names dead node %d", when, id, r.ID)
			}
		}
	}
	// Key ownership, exactly once, by the oracle's owner.
	var probes []dht.Key
	for i := 0; i < 64; i++ {
		probes = append(probes, dht.Key((i*997)%(1<<16)))
	}
	for _, id := range live {
		probes = append(probes, id, b.cfg.Space.Add(id, 1), b.cfg.Space.Add(id, 1<<16-1))
	}
	for _, key := range probes {
		owner := b.oracleChain(b.cfg.Space.Add(key, 1<<16-1), 1)[0]
		covered := 0
		for _, id := range live {
			if b.nodes[id].Covers(key) {
				covered++
				if id != owner {
					t.Fatalf("%s: key %d covered by %d, oracle owner %d", when, key, id, owner)
				}
			}
		}
		if covered != 1 {
			t.Fatalf("%s: key %d covered by %d nodes, want exactly 1 (owner %d)", when, key, covered, owner)
		}
	}
	// Routability: from every live node, every probe key must reach its
	// oracle owner hop by hop.
	for _, start := range live {
		for _, key := range probes {
			owner := b.oracleChain(b.cfg.Space.Add(key, 1<<16-1), 1)[0]
			cur := start
			hops := 0
			for !b.nodes[cur].Covers(key) {
				next, ok := b.nodes[cur].NextHop(key)
				if !ok || next.ID == cur {
					t.Fatalf("%s: walk from %d for key %d stuck at %d", when, start, key, cur)
				}
				cur = next.ID
				if hops++; hops > 24 {
					t.Fatalf("%s: walk from %d for key %d did not terminate", when, start, key)
				}
			}
			if cur != owner {
				t.Fatalf("%s: key %d from %d delivered to %d, oracle owner %d", when, key, start, cur, owner)
			}
		}
	}
}

func refIDs(rs []Ref) []dht.Key {
	ids := make([]dht.Key, len(rs))
	for i, r := range rs {
		ids[i] = r.ID
	}
	return ids
}

// TestKoordeChurnReconverges scripts the same churn scenario as the Chord
// machine's churn test — incremental joins, a graceful leave, two
// adjacent crashes, a late join — and asserts after each phase that both
// the ring substrate AND the de Bruijn pointer chains re-converge to the
// live-membership oracle, with every key still routable from every node.
// Runs under -race in CI.
func TestKoordeChurnReconverges(t *testing.T) {
	eng := sim.NewEngine()
	cfg := overlay.Config{
		Space:           dht.NewSpace(16),
		SuccListLen:     4,
		StabilizeEvery:  200 * sim.Millisecond,
		FixFingersEvery: 100 * sim.Millisecond,
	}
	b := newBus(eng, cfg, 50*sim.Millisecond)

	ids := []dht.Key{1000, 9000, 17000, 25000, 33000, 41000, 49000, 57000}
	b.add(ids[0]).Create()
	eng.RunFor(sim.Second)
	for _, id := range ids[1:] {
		b.add(id).Join(Ref{ID: ids[0]}, nil)
		eng.RunFor(2 * sim.Second)
	}
	eng.RunFor(5 * sim.Second)
	b.assertConverged(t, "after joins")

	b.leave(ids[2])
	eng.RunFor(5 * sim.Second)
	b.assertConverged(t, "after graceful leave")

	b.crash(ids[5])
	b.crash(ids[6])
	eng.RunFor(12 * sim.Second)
	b.assertConverged(t, "after adjacent crashes")

	b.add(21000).Join(Ref{ID: ids[7]}, nil)
	eng.RunFor(8 * sim.Second)
	b.assertConverged(t, "after late join")
}
