package koorde

import (
	"sort"
	"testing"

	"streamdex/internal/dht"
	"streamdex/internal/overlay"
)

// chainRespFor builds the Chain-flagged stabilize response the anchor of
// self would send: the anchor's oracle predecessor, itself, and its
// oracle successor list, echoing self's image.
func chainRespFor(space dht.Space, ids []dht.Key, self, anchor dht.Key, succLen int) KStabResp {
	n := len(ids)
	at := sort.Search(n, func(i int) bool { return ids[i] >= anchor })
	resp := KStabResp{
		From:  Ref{ID: anchor},
		Chain: true,
		Image: space.Wrap(self << digitBits),
	}
	resp.HasPred, resp.Pred = true, Ref{ID: ids[(at-1+n)%n]}
	for k := 1; k <= succLen && k < n; k++ {
		resp.SuccList = append(resp.SuccList, Ref{ID: ids[(at+k)%n]})
	}
	return resp
}

// TestChainPatchFromStabPiggyback feeds a node the Chain-flagged
// stabilize response of its anchor and checks the pointer chain is
// rebuilt to the anchor's clockwise window from the link bracketing the
// image — without any KDListReq round trip.
func TestChainPatchFromStabPiggyback(t *testing.T) {
	space := dht.NewSpace(16)
	ids := uniformIDs(space, 128, 0x5eed)
	nodes := buildRing(space, ids, 8)
	cfg := overlay.Config{Space: space}
	for _, self := range ids[:16] {
		m := nodes[self]
		anchor := m.DeBruijnList()[0].ID
		resp := chainRespFor(space, ids, self, anchor, 8)
		m.Handle(resp)
		chain := m.DeBruijnList()
		if len(chain) == 0 {
			t.Fatalf("node %d: empty chain after piggyback patch", self)
		}
		// The patch must agree with the warm-start oracle chain for as
		// many entries as the anchor's window could supply.
		oracle := Longlinks(cfg, ids, self)
		for i := range chain {
			if i >= len(oracle) || chain[i].ID != oracle[i].ID {
				t.Fatalf("node %d: patched chain %v diverges from oracle %v at %d",
					self, refIDs(chain), refIDs(oracle), i)
			}
			if chain[i].ID == self {
				t.Fatalf("node %d: patched chain contains self", self)
			}
		}
	}
}

// TestChainPatchDivergenceKeepsChain checks the incremental patch
// refuses a window that no longer brackets the image (the ring moved too
// far): the chain is left alone and the full-rebuild fallback is armed
// instead of splicing in unrelated pointers.
func TestChainPatchDivergenceKeepsChain(t *testing.T) {
	space := dht.NewSpace(16)
	ids := uniformIDs(space, 128, 0x5eed)
	nodes := buildRing(space, ids, 8)
	self := ids[3]
	m := nodes[self]
	before := m.DeBruijnList()
	// A window far from the image: the anchor 64 ring positions away.
	at := sort.Search(len(ids), func(i int) bool { return ids[i] >= before[0].ID })
	far := ids[(at+64)%len(ids)]
	resp := chainRespFor(space, ids, self, far, 8)
	resp.Image = space.Wrap(self << digitBits)
	m.Handle(resp)
	after := m.DeBruijnList()
	if len(after) != len(before) {
		t.Fatalf("divergent window rewrote the chain: %d -> %d entries", len(before), len(after))
	}
	for i := range after {
		if after[i].ID != before[i].ID {
			t.Fatalf("divergent window rewrote chain entry %d: %d -> %d", i, before[i].ID, after[i].ID)
		}
	}
}

// TestChainProbeSkipsPredecessorAdoption checks a Chain-flagged
// stabilize request does not make the far-away requester a predecessor
// candidate, while the plain stabilize request still does.
func TestChainProbeSkipsPredecessorAdoption(t *testing.T) {
	space := dht.NewSpace(16)
	ids := uniformIDs(space, 64, 0x5eed)
	nodes := buildRing(space, ids, 4)
	self := ids[10]
	m := nodes[self]
	pred, _ := m.Predecessor()
	// A requester strictly between the current predecessor and self would
	// be adopted by the plain path.
	closer := Ref{ID: space.Add(pred.ID, 1)}
	m.Handle(KStabReq{From: closer, Chain: true, Image: 1})
	if p, _ := m.Predecessor(); p.ID != pred.ID {
		t.Fatalf("chain probe adopted predecessor %d, want %d kept", p.ID, pred.ID)
	}
	m.Handle(KStabReq{From: closer})
	if p, _ := m.Predecessor(); p.ID != closer.ID {
		t.Fatalf("plain stabilize kept predecessor %d, want %d adopted", p.ID, closer.ID)
	}
}

// TestChainRepairAllocs is the alloc-regression guard of the satellite:
// the steady-state chain repair paths — the piggybacked patch and the
// full-rebuild KDListResp handler — must stay off the allocator once
// their scratch buffers are warm, and Longlinks must cost exactly its
// result slice (no per-call dedup map).
func TestChainRepairAllocs(t *testing.T) {
	space := dht.NewSpace(16)
	ids := uniformIDs(space, 128, 0x5eed)
	nodes := buildRing(space, ids, 8)
	self := ids[7]
	m := nodes[self]
	anchor := m.DeBruijnList()[0].ID
	stab := chainRespFor(space, ids, self, anchor, 8)
	dlist := KDListResp{
		From: stab.From, HasPred: stab.HasPred, Pred: stab.Pred,
		SuccList: stab.SuccList,
	}
	m.handleChainResp(stab)
	m.handleDListResp(dlist)
	if avg := testing.AllocsPerRun(100, func() { m.handleChainResp(stab) }); avg > 0 {
		t.Fatalf("piggybacked chain patch allocates %.1f/op, want 0", avg)
	}
	if avg := testing.AllocsPerRun(100, func() { m.handleDListResp(dlist) }); avg > 0 {
		t.Fatalf("KDListResp chain rebuild allocates %.1f/op, want 0", avg)
	}
	cfg := overlay.Config{Space: space}
	if avg := testing.AllocsPerRun(100, func() { Longlinks(cfg, ids, self) }); avg > 1 {
		t.Fatalf("Longlinks allocates %.1f/op, want just the result slice", avg)
	}
}

// TestSteadyStateSkipsFullRebuild checks fixPointers is a no-op while
// the chain is healthy: no lookup tokens are spent and no KDListReq
// leaves the node.
func TestSteadyStateSkipsFullRebuild(t *testing.T) {
	space := dht.NewSpace(16)
	ids := uniformIDs(space, 64, 0x5eed)
	nodes := buildRing(space, ids, 8)
	m := nodes[ids[0]]
	sent := 0
	m.send = func(Ref, any) { sent++ }
	m.fixPointers()
	if sent != 0 {
		t.Fatalf("healthy-chain fixPointers sent %d messages, want 0", sent)
	}
	// A dirty chain must trigger the full rebuild lookup again.
	m.chainDirty = true
	m.fixPointers()
	if sent == 0 {
		t.Fatalf("dirty-chain fixPointers sent nothing, want the rebuild lookup")
	}
}
