// Package baseline implements the two strawman designs the paper rejects
// in §IV-A, as quantitative comparators for the distributed index:
//
//   - Centralized: a single dedicated data center receives every stream
//     summary and answers every query. "Such server and the network in its
//     vicinity would have to handle dozens of thousands of messages every
//     second ... the dedicated data center becomes a single point of
//     failure."
//   - Flooding: every summary stays at its source; every similarity query
//     is flooded to the entire network, because "answering such queries
//     requires communication with every data center in the system".
//
// Both run on the same Chord substrate, simulation engine, stream pipeline
// and workload as the real middleware, so message counts are directly
// comparable (ablation A2 in DESIGN.md).
package baseline

import (
	"fmt"

	"streamdex/internal/chord"
	"streamdex/internal/dht"
	"streamdex/internal/dsp"
	"streamdex/internal/metrics"
	"streamdex/internal/query"
	"streamdex/internal/sim"
	"streamdex/internal/stream"
	"streamdex/internal/summary"
)

// Mode selects the strawman.
type Mode int

// Baseline modes.
const (
	// Centralized stores every summary at one dedicated center.
	Centralized Mode = iota
	// Flooding broadcasts every query to all nodes.
	Flooding
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case Centralized:
		return "centralized"
	case Flooding:
		return "flooding"
	default:
		return "unknown"
	}
}

// Message kinds (private protocol of the baselines).
const (
	kindSummary  dht.Kind = iota // summary update toward the center
	kindQuery                    // query (to the center, or flooded)
	kindResponse                 // periodic response to the client
)

// classifier maps baseline traffic onto the shared metric categories so
// reports can sit side by side with the middleware's.
type classifier struct{}

func (classifier) Classify(from dht.Key, msg *dht.Message) metrics.Category {
	origin := msg.Hops == 1 && from == msg.Src && msg.Dir == 0
	switch msg.Kind {
	case kindSummary:
		if origin {
			return metrics.MBRSource
		}
		return metrics.MBRTransit
	case kindQuery:
		switch {
		case msg.Dir != 0:
			return metrics.QueryRange
		case origin:
			return metrics.QueryInitial
		default:
			return metrics.QueryTransit
		}
	case kindResponse:
		if origin {
			return metrics.ResponseClient
		}
		return metrics.ResponseTransit
	default:
		return metrics.Other
	}
}

func (classifier) ClassifyHops(msg *dht.Message) metrics.HopClass {
	switch msg.Kind {
	case kindSummary:
		return metrics.HopMBR
	case kindQuery:
		if msg.Dir != 0 {
			return metrics.HopQueryInternal
		}
		return metrics.HopQuery
	case kindResponse:
		return metrics.HopResponse
	default:
		return metrics.HopOther
	}
}

// Config parameterizes a baseline run; it reuses the evaluation's workload
// constants.
type Config struct {
	Mode  Mode
	Nodes int

	WindowSize  int
	Coeffs      int
	FeatureDims int
	Beta        int

	PMin, PMax  sim.Time
	QueryGap    sim.Time
	QMin, QMax  sim.Time
	Radius      float64
	PushPeriod  sim.Time
	MBRLifespan sim.Time

	HopDelay        sim.Time
	Warmup, Measure sim.Time
	Seed            int64
}

// DefaultConfig mirrors workload.DefaultConfig for the baselines.
func DefaultConfig(mode Mode, nodes int) Config {
	return Config{
		Mode:        mode,
		Nodes:       nodes,
		WindowSize:  128,
		Coeffs:      3,
		FeatureDims: 3,
		Beta:        10,
		PMin:        150 * sim.Millisecond,
		PMax:        250 * sim.Millisecond,
		QueryGap:    500 * sim.Millisecond,
		QMin:        20 * sim.Second,
		QMax:        100 * sim.Second,
		Radius:      0.1,
		PushPeriod:  2 * sim.Second,
		MBRLifespan: 5 * sim.Second,
		HopDelay:    50 * sim.Millisecond,
		Warmup:      40 * sim.Second,
		Measure:     100 * sim.Second,
		Seed:        1,
	}
}

// node is one baseline data center.
type node struct {
	id  dht.Key
	sys *System

	sdft    *dsp.SlidingDFT
	batcher *summary.Batcher
	sid     string

	// Center state (centralized mode, only on the center node) and
	// local state (flooding mode, on every node).
	mbrs []*summary.MBR
	subs map[query.ID]*subState
}

type subState struct {
	q       *query.Similarity
	pending []query.Match
	seen    map[string]map[uint64]bool
}

// System is a running baseline deployment.
type System struct {
	cfg Config
	eng *sim.Engine
	net *chord.Network
	col *metrics.Collector
	ids []dht.Key

	nodes map[dht.Key]*node

	// centerKey routes all summaries and queries in centralized mode;
	// the center is its successor node.
	centerKey dht.Key

	nextID query.ID
}

// Build constructs a baseline system with one random-walk stream per node
// and the Poisson query process.
func Build(cfg Config) (*System, error) {
	if cfg.Nodes < 2 {
		return nil, fmt.Errorf("baseline: %d nodes", cfg.Nodes)
	}
	eng := sim.NewEngine()
	space := dht.NewSpace(32)
	net := chord.New(eng, chord.Config{Space: space, HopDelay: cfg.HopDelay, SuccListLen: 8})
	ids := chord.SortKeys(chord.UniformIDs(space, cfg.Nodes))
	net.BuildStable(ids, nil)

	s := &System{
		cfg:       cfg,
		eng:       eng,
		net:       net,
		col:       metrics.NewCollector(classifier{}),
		ids:       ids,
		nodes:     make(map[dht.Key]*node),
		centerKey: 0,
	}
	net.SetObserver(s.col)

	root := sim.NewRand(cfg.Seed)
	streamRng := root.Fork("streams")
	periodRng := root.Fork("periods")
	for i, id := range ids {
		n := &node{
			id:      id,
			sys:     s,
			sdft:    dsp.NewSlidingDFT(cfg.WindowSize, cfg.Coeffs),
			batcher: summary.NewBatcher(fmt.Sprintf("stream-%d", i), cfg.Beta),
			sid:     fmt.Sprintf("stream-%d", i),
			subs:    make(map[query.ID]*subState),
		}
		s.nodes[id] = n
		net.SetApp(id, n)
		gen := stream.DefaultRandomWalk(streamRng.Fork(fmt.Sprintf("walk-%d", i)))
		period := periodRng.UniformTime(cfg.PMin, cfg.PMax)
		eng.EveryAfter(periodRng.UniformTime(0, period), period, func() { n.streamTick(gen) })
		eng.EveryAfter(periodRng.UniformTime(0, cfg.PushPeriod), cfg.PushPeriod, n.periodTick)
	}

	queryRng := root.Fork("queries")
	eng.Poisson(queryRng, cfg.QueryGap, func() {
		origin := ids[queryRng.Intn(len(ids))]
		f := make(summary.Feature, cfg.FeatureDims)
		f[0] = queryRng.Uniform(-1, 1)
		for d := 1; d < len(f); d++ {
			f[d] = queryRng.Uniform(-0.3, 0.3)
		}
		s.postQuery(origin, f, queryRng.UniformTime(cfg.QMin, cfg.QMax))
	})
	return s, nil
}

// Execute runs warm-up and measurement, returning the traffic report.
func (s *System) Execute() *metrics.Report {
	s.eng.RunFor(s.cfg.Warmup)
	s.col.Reset(s.eng.Now())
	s.eng.RunFor(s.cfg.Measure)
	return s.col.Snapshot(s.eng.Now(), s.ids)
}

// streamTick advances the node's stream and emits summaries.
func (n *node) streamTick(gen stream.Generator) {
	n.sdft.Push(gen.Next())
	if !n.sdft.Full() {
		return
	}
	f := summary.FromCoeffs(n.sdft.NormalizedCoeffs(dsp.ZNorm), n.sys.cfg.FeatureDims, true)
	mbr := n.batcher.Add(f)
	if mbr == nil {
		return
	}
	now := n.sys.eng.Now()
	mbr.Created, mbr.Expiry = now, now+n.sys.cfg.MBRLifespan
	n.sys.col.CountEvent(metrics.EventMBR)
	switch n.sys.cfg.Mode {
	case Centralized:
		// Everything goes to the dedicated center.
		msg := &dht.Message{Kind: kindSummary, Payload: mbr}
		n.sys.net.Send(n.id, n.sys.centerKey, msg)
	case Flooding:
		// Summaries stay local.
		n.storeMBR(mbr)
	}
}

func (n *node) storeMBR(b *summary.MBR) {
	n.mbrs = append(n.mbrs, b)
	now := n.sys.eng.Now()
	for _, sub := range n.subs {
		if now >= sub.q.Expiry() {
			continue
		}
		if d := b.MinDist(sub.q.Feature); d <= sub.q.Radius {
			sub.add(query.Match{StreamID: b.StreamID, Seq: b.Seq, DistLB: d, FoundAt: now, Node: n.id})
		}
	}
}

func (st *subState) add(m query.Match) {
	seqs := st.seen[m.StreamID]
	if seqs == nil {
		seqs = make(map[uint64]bool)
		st.seen[m.StreamID] = seqs
	}
	if seqs[m.Seq] {
		return
	}
	seqs[m.Seq] = true
	st.pending = append(st.pending, m)
}

// postQuery launches a query per the mode.
func (s *System) postQuery(origin dht.Key, f summary.Feature, lifespan sim.Time) {
	s.nextID++
	q := &query.Similarity{
		ID: s.nextID, Origin: origin, Feature: f, Radius: s.cfg.Radius,
		Posted: s.eng.Now(), Lifespan: lifespan,
	}
	s.col.CountEvent(metrics.EventQuery)
	switch s.cfg.Mode {
	case Centralized:
		msg := &dht.Message{Kind: kindQuery, Payload: q}
		s.net.Send(origin, s.centerKey, msg)
	case Flooding:
		// Flood: a ring-wide range multicast starting at the origin's
		// own position — every node must learn the query.
		sp := s.net.Space()
		msg := &dht.Message{Kind: kindQuery, Payload: q}
		dht.SendRange(s.net, origin, sp.Add(origin, 1), origin, msg, dht.RangeSequential)
	}
}

// Deliver implements dht.App.
func (n *node) Deliver(self dht.Key, msg *dht.Message) {
	switch msg.Kind {
	case kindSummary:
		n.storeMBR(msg.Payload.(*summary.MBR))
	case kindQuery:
		q := msg.Payload.(*query.Similarity)
		now := n.sys.eng.Now()
		if now < q.Expiry() {
			if _, dup := n.subs[q.ID]; !dup {
				sub := &subState{q: q, seen: make(map[string]map[uint64]bool)}
				for _, b := range n.mbrs {
					if b.Expired(now) {
						continue
					}
					if d := b.MinDist(q.Feature); d <= q.Radius {
						sub.add(query.Match{StreamID: b.StreamID, Seq: b.Seq, DistLB: d, FoundAt: now, Node: n.id})
					}
				}
				n.subs[q.ID] = sub
			}
		}
		dht.ContinueRange(n.sys.net, self, msg)
	case kindResponse:
		// Client side: nothing to account beyond delivery.
	}
}

// periodTick sweeps expired state and pushes responses.
func (n *node) periodTick() {
	now := n.sys.eng.Now()
	kept := n.mbrs[:0]
	for _, b := range n.mbrs {
		if !b.Expired(now) {
			kept = append(kept, b)
		}
	}
	n.mbrs = kept
	for id, sub := range n.subs {
		if now >= sub.q.Expiry() {
			delete(n.subs, id)
			continue
		}
		// Each node holding the subscription pushes periodically to the
		// client: the center in centralized mode, every node in
		// flooding mode (the flooding design has no aggregation point).
		n.sys.col.CountEvent(metrics.EventResponse)
		pending := sub.pending
		sub.pending = nil
		msg := &dht.Message{Kind: kindResponse, Payload: pending}
		if sub.q.Origin == n.id {
			continue // local client
		}
		n.sys.net.Send(n.id, sub.q.Origin, msg)
	}
}
