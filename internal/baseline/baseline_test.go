package baseline

import (
	"testing"

	"streamdex/internal/metrics"
	"streamdex/internal/sim"
)

func fastConfig(mode Mode, nodes int) Config {
	cfg := DefaultConfig(mode, nodes)
	cfg.WindowSize = 32
	cfg.Beta = 5
	cfg.Warmup = 15 * sim.Second
	cfg.Measure = 30 * sim.Second
	return cfg
}

func TestModeString(t *testing.T) {
	if Centralized.String() != "centralized" || Flooding.String() != "flooding" || Mode(9).String() != "unknown" {
		t.Fatal("Mode.String mismatch")
	}
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build(Config{Nodes: 1}); err == nil {
		t.Fatal("1-node system accepted")
	}
}

func TestCentralizedHotspot(t *testing.T) {
	// The defining pathology: the center's load is far above the mean.
	cfg := fastConfig(Centralized, 24)
	s, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep := s.Execute()
	_, max := rep.MaxLoadNode()
	var sum float64
	for _, l := range rep.NodeLoad {
		sum += l
	}
	mean := sum / float64(len(rep.NodeLoad))
	if max < 4*mean {
		t.Fatalf("center load %.2f only %.1fx the mean %.2f; expected a hotspot", max, max/mean, mean)
	}
}

func TestFloodingQueryCostLinear(t *testing.T) {
	// Every query must reach all N nodes: the per-query message count is
	// at least N-1.
	cfg := fastConfig(Flooding, 24)
	s, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep := s.Execute()
	perQuery := rep.Overhead(metrics.QueryRange, metrics.EventQuery) +
		rep.Overhead(metrics.QueryInitial, metrics.EventQuery) +
		rep.Overhead(metrics.QueryTransit, metrics.EventQuery)
	if perQuery < float64(cfg.Nodes-1) {
		t.Fatalf("flooding sends %.1f query messages per query, want >= %d", perQuery, cfg.Nodes-1)
	}
}

func TestCentralizedSummariesReachCenter(t *testing.T) {
	cfg := fastConfig(Centralized, 12)
	s, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Execute()
	centerID, _ := s.net.OracleSuccessor(s.centerKey)
	center := s.nodes[centerID]
	if len(center.mbrs) == 0 {
		t.Fatal("center holds no summaries")
	}
	// Non-center nodes hold only their local pipeline output (none: in
	// centralized mode summaries are not stored locally).
	for id, n := range s.nodes {
		if id == centerID {
			continue
		}
		if len(n.mbrs) != 0 {
			t.Fatalf("node %d holds %d summaries in centralized mode", id, len(n.mbrs))
		}
	}
}

func TestFloodingKeepsSummariesLocal(t *testing.T) {
	cfg := fastConfig(Flooding, 12)
	s, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Execute()
	rep := s.col.Snapshot(s.eng.Now(), s.ids)
	if rep.TotalByCategory[metrics.MBRSource] != 0 || rep.TotalByCategory[metrics.MBRTransit] != 0 {
		t.Fatal("flooding mode sent summary messages")
	}
	local := 0
	for _, n := range s.nodes {
		local += len(n.mbrs)
	}
	if local == 0 {
		t.Fatal("no summaries stored locally")
	}
}

func TestBaselineDeterminism(t *testing.T) {
	run := func() [metrics.NumCategories]int64 {
		s, err := Build(fastConfig(Centralized, 10))
		if err != nil {
			t.Fatal(err)
		}
		return s.Execute().TotalByCategory
	}
	if run() != run() {
		t.Fatal("baseline runs are not deterministic")
	}
}
