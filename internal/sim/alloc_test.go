package sim

import "testing"

// TestScheduleStepZeroAllocs pins the hot-path allocation contract of the
// event queue: once the heap and timer-slot arrays have grown to their
// working size, Schedule+Step must not allocate. Events live inline in the
// heap slice and timer slots come off the free-list, so steady-state
// scheduling is churn-free no matter how many events flow through.
func TestScheduleStepZeroAllocs(t *testing.T) {
	eng := NewEngine()
	fn := func() {}
	// Warm up: grow events/slots/free to steady-state capacity.
	for i := 0; i < 64; i++ {
		eng.Schedule(Time(i), fn)
	}
	for eng.Step() {
	}

	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 32; i++ {
			eng.Schedule(Time(i), fn)
		}
		for eng.Step() {
		}
	})
	if allocs != 0 {
		t.Fatalf("Schedule+Step allocated %.1f objects per run, want 0", allocs)
	}
}

// TestCancelZeroAllocs: Timer is a value type; Cancel just flips a slot flag.
func TestCancelZeroAllocs(t *testing.T) {
	eng := NewEngine()
	fn := func() {}
	for i := 0; i < 64; i++ {
		eng.Schedule(Time(i), fn).Cancel()
	}
	for eng.Step() {
	}
	allocs := testing.AllocsPerRun(100, func() {
		tm := eng.Schedule(10, fn)
		tm.Cancel()
		for eng.Step() {
		}
	})
	if allocs != 0 {
		t.Fatalf("Schedule+Cancel allocated %.1f objects per run, want 0", allocs)
	}
}
