package sim

// Ticker drives a periodic process: fn runs every period until Stop is
// called or, if a horizon was set, until the horizon passes. The paper's
// evaluation is built almost entirely from such processes — streams produce
// a value every 150-250 ms, nodes exchange similarity information every
// NPER = 2 s, and stored state is swept on the same timers.
type Ticker struct {
	eng     *Engine
	period  Time
	fn      func()
	timer   Timer
	stopped bool
	until   Time // 0 means no horizon
	fires   uint64
}

// Every schedules fn to run every period, with the first firing after one
// full period. The period must be positive.
func (e *Engine) Every(period Time, fn func()) *Ticker {
	return e.EveryAfter(period, period, fn)
}

// EveryAfter schedules fn to first run after initial delay and then every
// period. A zero initial delay fires fn as the next event at the current
// instant. Staggering the initial delay across nodes avoids the lock-step
// artifacts a shared phase would create.
func (e *Engine) EveryAfter(initial, period Time, fn func()) *Ticker {
	if period <= 0 {
		panic("sim: non-positive ticker period")
	}
	t := &Ticker{eng: e, period: period, fn: fn}
	t.timer = e.Schedule(initial, t.tick)
	return t
}

// Until sets an absolute horizon after which the ticker stops rescheduling.
// A firing scheduled exactly at the horizon still runs. It returns the
// ticker for chaining.
func (t *Ticker) Until(horizon Time) *Ticker {
	t.until = horizon
	return t
}

// Fires returns how many times the ticker has fired.
func (t *Ticker) Fires() uint64 { return t.fires }

// Stop cancels the ticker; the callback will not run again.
func (t *Ticker) Stop() {
	if t.stopped {
		return
	}
	t.stopped = true
	t.timer.Cancel()
}

// Active reports whether the ticker will fire again.
func (t *Ticker) Active() bool { return !t.stopped && t.timer.Active() }

func (t *Ticker) tick() {
	if t.stopped {
		return
	}
	t.fires++
	t.fn()
	if t.stopped { // fn may stop its own ticker
		return
	}
	next := t.eng.Now() + t.period
	if t.until != 0 && next > t.until {
		t.stopped = true
		return
	}
	t.timer = t.eng.Schedule(t.period, t.tick)
}
