package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTimeUnits(t *testing.T) {
	if Second != 1_000_000*Microsecond {
		t.Fatalf("Second = %d us", int64(Second))
	}
	if got := (1500 * Millisecond).Seconds(); got != 1.5 {
		t.Fatalf("Seconds() = %v, want 1.5", got)
	}
	if got := (2500 * Microsecond).Millis(); got != 2.5 {
		t.Fatalf("Millis() = %v, want 2.5", got)
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{2 * Second, "2.000s"},
		{50 * Millisecond, "50.000ms"},
		{7 * Microsecond, "7us"},
		{-3 * Second, "-3.000s"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("%d.String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestScheduleOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Schedule(30*Millisecond, func() { order = append(order, 3) })
	e.Schedule(10*Millisecond, func() { order = append(order, 1) })
	e.Schedule(20*Millisecond, func() { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("execution order = %v", order)
	}
	if e.Now() != 30*Millisecond {
		t.Fatalf("final clock = %v", e.Now())
	}
}

func TestFIFOAtSameInstant(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(Millisecond, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-instant events out of FIFO order: %v", order)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	e := NewEngine()
	var hits []Time
	e.Schedule(Millisecond, func() {
		hits = append(hits, e.Now())
		e.Schedule(2*Millisecond, func() {
			hits = append(hits, e.Now())
		})
	})
	e.Run()
	if len(hits) != 2 || hits[0] != Millisecond || hits[1] != 3*Millisecond {
		t.Fatalf("hits = %v", hits)
	}
}

func TestZeroDelayRunsAtCurrentInstant(t *testing.T) {
	e := NewEngine()
	ran := false
	e.Schedule(5*Millisecond, func() {
		e.Schedule(0, func() {
			ran = true
			if e.Now() != 5*Millisecond {
				t.Errorf("zero-delay event at %v", e.Now())
			}
		})
	})
	e.Run()
	if !ran {
		t.Fatal("zero-delay event did not run")
	}
}

func TestNegativeDelayPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative delay")
		}
	}()
	NewEngine().Schedule(-1, func() {})
}

func TestScheduleInPastPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(10*Millisecond, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for past timestamp")
		}
	}()
	e.ScheduleAt(5*Millisecond, func() {})
}

func TestNilEventPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for nil fn")
		}
	}()
	NewEngine().Schedule(0, nil)
}

func TestTimerCancel(t *testing.T) {
	e := NewEngine()
	ran := false
	timer := e.Schedule(Millisecond, func() { ran = true })
	if !timer.Active() {
		t.Fatal("timer should be active before firing")
	}
	if !timer.Cancel() {
		t.Fatal("first Cancel should report true")
	}
	if timer.Cancel() {
		t.Fatal("second Cancel should report false")
	}
	e.Run()
	if ran {
		t.Fatal("cancelled event ran")
	}
	if timer.Active() {
		t.Fatal("cancelled timer reports active")
	}
}

func TestCancelAfterFire(t *testing.T) {
	e := NewEngine()
	timer := e.Schedule(Millisecond, func() {})
	e.Run()
	if timer.Active() {
		t.Fatal("fired timer reports active")
	}
	if timer.Cancel() {
		t.Fatal("Cancel after firing should report false")
	}
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	var fired []Time
	for _, d := range []Time{Millisecond, 2 * Millisecond, 3 * Millisecond} {
		d := d
		e.Schedule(d, func() { fired = append(fired, d) })
	}
	e.RunUntil(2 * Millisecond)
	if len(fired) != 2 {
		t.Fatalf("fired = %v, want exactly events <= 2ms (inclusive)", fired)
	}
	if e.Now() != 2*Millisecond {
		t.Fatalf("clock = %v, want 2ms", e.Now())
	}
	// The remaining event is still pending.
	if e.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", e.Pending())
	}
	e.RunFor(Millisecond)
	if len(fired) != 3 {
		t.Fatalf("fired after RunFor = %v", fired)
	}
}

func TestRunUntilAdvancesIdleClock(t *testing.T) {
	e := NewEngine()
	e.RunUntil(7 * Second)
	if e.Now() != 7*Second {
		t.Fatalf("idle clock = %v, want 7s", e.Now())
	}
}

func TestStopAbortsRun(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 1; i <= 10; i++ {
		e.Schedule(Time(i)*Millisecond, func() {
			count++
			if count == 3 {
				e.Stop()
			}
		})
	}
	e.Run()
	if count != 3 {
		t.Fatalf("events after Stop: count = %d, want 3", count)
	}
}

func TestExecutedAndPendingCounters(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 5; i++ {
		e.Schedule(Time(i+1)*Millisecond, func() {})
	}
	cancelled := e.Schedule(10*Millisecond, func() {})
	cancelled.Cancel()
	if e.Pending() != 5 {
		t.Fatalf("pending = %d, want 5", e.Pending())
	}
	e.Run()
	if e.Executed() != 5 {
		t.Fatalf("executed = %d, want 5", e.Executed())
	}
}

func TestTickerPeriodAndStop(t *testing.T) {
	e := NewEngine()
	var at []Time
	tick := e.Every(10*Millisecond, func() { at = append(at, e.Now()) })
	e.RunUntil(35 * Millisecond)
	tick.Stop()
	e.RunUntil(100 * Millisecond)
	want := []Time{10 * Millisecond, 20 * Millisecond, 30 * Millisecond}
	if len(at) != len(want) {
		t.Fatalf("firings = %v, want %v", at, want)
	}
	for i := range want {
		if at[i] != want[i] {
			t.Fatalf("firings = %v, want %v", at, want)
		}
	}
	if tick.Fires() != 3 {
		t.Fatalf("Fires() = %d", tick.Fires())
	}
	if tick.Active() {
		t.Fatal("stopped ticker reports active")
	}
}

func TestTickerInitialDelay(t *testing.T) {
	e := NewEngine()
	var first Time = -1
	e.EveryAfter(3*Millisecond, 10*Millisecond, func() {
		if first < 0 {
			first = e.Now()
		}
	})
	e.RunUntil(30 * Millisecond)
	if first != 3*Millisecond {
		t.Fatalf("first firing at %v, want 3ms", first)
	}
}

func TestTickerUntilHorizon(t *testing.T) {
	e := NewEngine()
	n := 0
	e.Every(10*Millisecond, func() { n++ }).Until(45 * Millisecond)
	e.Run()
	if n != 4 { // fires at 10,20,30,40; 50 > horizon
		t.Fatalf("firings = %d, want 4", n)
	}
}

func TestTickerStopsItselfFromCallback(t *testing.T) {
	e := NewEngine()
	n := 0
	var tk *Ticker
	tk = e.Every(Millisecond, func() {
		n++
		if n == 2 {
			tk.Stop()
		}
	})
	e.Run()
	if n != 2 {
		t.Fatalf("firings = %d, want 2", n)
	}
}

func TestTickerZeroPeriodPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewEngine().Every(0, func() {})
}

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 100; i++ {
		if a.Int63() != b.Int63() {
			t.Fatal("same seed produced different sequences")
		}
	}
}

func TestForkIndependence(t *testing.T) {
	// Forks labelled identically off identically seeded parents must agree,
	// and differently labelled forks must differ.
	a := NewRand(7).Fork("streams")
	b := NewRand(7).Fork("streams")
	c := NewRand(7).Fork("queries")
	same, diff := true, false
	for i := 0; i < 50; i++ {
		av := a.Int63()
		if av != b.Int63() {
			same = false
		}
		if av != c.Int63() {
			diff = true
		}
	}
	if !same {
		t.Fatal("identically labelled forks diverged")
	}
	if !diff {
		t.Fatal("differently labelled forks coincided")
	}
}

func TestUniformTimeBounds(t *testing.T) {
	r := NewRand(1)
	lo, hi := 150*Millisecond, 250*Millisecond
	for i := 0; i < 1000; i++ {
		d := r.UniformTime(lo, hi)
		if d < lo || d > hi {
			t.Fatalf("UniformTime out of bounds: %v", d)
		}
	}
	if r.UniformTime(lo, lo) != lo {
		t.Fatal("degenerate interval should return lo")
	}
}

func TestUniformTimeQuickBounds(t *testing.T) {
	r := NewRand(3)
	f := func(a, b uint32) bool {
		lo, hi := Time(a), Time(a)+Time(b)
		d := r.UniformTime(lo, hi)
		return d >= lo && d <= hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestExpTimeMean(t *testing.T) {
	r := NewRand(99)
	mean := 500 * Millisecond
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		sum += float64(r.ExpTime(mean))
	}
	got := sum / n
	if math.Abs(got-float64(mean)) > 0.05*float64(mean) {
		t.Fatalf("empirical mean %v, want ~%v", Time(got), mean)
	}
}

func TestPoissonProcessRate(t *testing.T) {
	e := NewEngine()
	r := NewRand(5)
	// Paper workload: 2 queries per second on average.
	p := e.Poisson(r, 500*Millisecond, func() {})
	e.RunUntil(200 * Second)
	p.Stop()
	got := float64(p.Fires()) / 200.0
	if got < 1.7 || got > 2.3 {
		t.Fatalf("Poisson rate = %.2f/s, want ~2/s", got)
	}
}

func TestPoissonStop(t *testing.T) {
	e := NewEngine()
	r := NewRand(6)
	n := 0
	var p *PoissonProc
	p = e.Poisson(r, 10*Millisecond, func() {
		n++
		if n == 5 {
			p.Stop()
		}
	})
	e.RunUntil(10 * Second)
	if n != 5 {
		t.Fatalf("arrivals after Stop: %d, want 5", n)
	}
}

func TestEngineDeterminismRegression(t *testing.T) {
	run := func() (uint64, Time) {
		e := NewEngine()
		r := NewRand(123)
		var last Time
		e.Poisson(r, 20*Millisecond, func() { last = e.Now() })
		e.Every(7*Millisecond, func() {}).Until(3 * Second)
		e.RunUntil(3 * Second)
		return e.Executed(), last
	}
	e1, l1 := run()
	e2, l2 := run()
	if e1 != e2 || l1 != l2 {
		t.Fatalf("non-deterministic run: (%d,%v) vs (%d,%v)", e1, l1, e2, l2)
	}
}
