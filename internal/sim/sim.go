// Package sim implements the discrete-event simulation engine that underlies
// the Chord network simulator and the stream-indexing middleware evaluation.
//
// The engine replays timed events on a virtual clock, mirroring the publicly
// available Chord simulator the paper links against: input events (new stream
// values, new client queries) and internal events (message hops, periodic
// maintenance) are all executed in virtual-time order.
//
// The event loop is strictly deterministic: events fire in (time, scheduling
// sequence) order, and all randomness is injected through explicitly seeded
// generators (see rand.go). Running the same configuration with the same seed
// therefore produces bit-identical simulation results, which the test suite
// relies on for regression checks. Parallelism belongs one level up: whole
// simulations are independent and are fanned out across goroutines by the
// experiment harness.
package sim

import (
	"container/heap"
	"fmt"
)

// Time is a virtual-time instant or duration, measured in microseconds since
// the start of the simulation. Microsecond resolution comfortably expresses
// every interval the paper's evaluation uses (50 ms hops, 150-250 ms stream
// periods, 2 s push periods, 5 s MBR lifespans) while leaving headroom for
// sub-millisecond experimentation.
type Time int64

// Convenient duration units for building Time values.
const (
	Microsecond Time = 1
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
	Minute           = 60 * Second
)

// Seconds reports t as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Millis reports t as a floating-point number of milliseconds.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

// String formats the time with adaptive units for logs and test failures.
func (t Time) String() string {
	switch {
	case t >= Second || t <= -Second:
		return fmt.Sprintf("%.3fs", t.Seconds())
	case t >= Millisecond || t <= -Millisecond:
		return fmt.Sprintf("%.3fms", t.Millis())
	default:
		return fmt.Sprintf("%dus", int64(t))
	}
}

// event is a single scheduled callback.
type event struct {
	at     Time
	seq    uint64 // tie-breaker: FIFO among events at the same instant
	fn     func()
	index  int // heap index, -1 once popped or cancelled
	cancel bool
}

// eventHeap orders events by (at, seq).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.index = len(*h)
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Engine is a single-threaded discrete-event executor. The zero value is not
// usable; construct with NewEngine. Engine methods must not be called
// concurrently: all model code runs inside event callbacks on one goroutine.
type Engine struct {
	now     Time
	seq     uint64
	events  eventHeap
	stopped bool
	// executed counts events that have run, for introspection and tests.
	executed uint64
}

// NewEngine returns an engine with the clock at zero and no pending events.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Executed returns the number of events executed so far.
func (e *Engine) Executed() uint64 { return e.executed }

// Pending returns the number of scheduled events not yet executed or
// cancelled. Cancelled events still in the heap are excluded.
func (e *Engine) Pending() int {
	n := 0
	for _, ev := range e.events {
		if !ev.cancel {
			n++
		}
	}
	return n
}

// Timer is a handle to a scheduled event that can be cancelled before firing.
type Timer struct {
	eng *Engine
	ev  *event
}

// Cancel prevents the event from firing. Cancelling an already-fired or
// already-cancelled timer is a no-op. It reports whether the event was
// actually descheduled by this call.
func (t *Timer) Cancel() bool {
	if t == nil || t.ev == nil || t.ev.cancel || t.ev.index == -1 {
		return false
	}
	t.ev.cancel = true
	return true
}

// Active reports whether the timer is still pending.
func (t *Timer) Active() bool {
	return t != nil && t.ev != nil && !t.ev.cancel && t.ev.index != -1
}

// Schedule runs fn after delay d (which may be zero but not negative).
// It returns a Timer that can cancel the callback.
func (e *Engine) Schedule(d Time, fn func()) *Timer {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return e.ScheduleAt(e.now+d, fn)
}

// ScheduleAt runs fn at absolute virtual time t, which must not be in the
// past.
func (e *Engine) ScheduleAt(t Time, fn func()) *Timer {
	if t < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", t, e.now))
	}
	if fn == nil {
		panic("sim: nil event function")
	}
	ev := &event{at: t, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.events, ev)
	return &Timer{eng: e, ev: ev}
}

// Step executes the single next event, advancing the clock to its timestamp.
// It reports false when no events remain.
func (e *Engine) Step() bool {
	for len(e.events) > 0 {
		ev := heap.Pop(&e.events).(*event)
		if ev.cancel {
			continue
		}
		e.now = ev.at
		e.executed++
		ev.fn()
		return true
	}
	return false
}

// Run executes events until the queue is empty or Stop is called.
func (e *Engine) Run() {
	e.stopped = false
	for !e.stopped && e.Step() {
	}
}

// RunUntil executes events with timestamps <= t and then sets the clock to t.
// Events scheduled exactly at t do run. Stop aborts the loop early.
func (e *Engine) RunUntil(t Time) {
	e.stopped = false
	for !e.stopped {
		next, ok := e.peek()
		if !ok || next > t {
			break
		}
		e.Step()
	}
	if !e.stopped && e.now < t {
		e.now = t
	}
}

// RunFor advances the simulation by duration d (see RunUntil).
func (e *Engine) RunFor(d Time) { e.RunUntil(e.now + d) }

// Stop aborts a Run/RunUntil in progress after the current event returns.
func (e *Engine) Stop() { e.stopped = true }

// peek returns the timestamp of the next non-cancelled event.
func (e *Engine) peek() (Time, bool) {
	for len(e.events) > 0 {
		if e.events[0].cancel {
			heap.Pop(&e.events)
			continue
		}
		return e.events[0].at, true
	}
	return 0, false
}
