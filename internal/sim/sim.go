// Package sim implements the discrete-event simulation engine that underlies
// the Chord network simulator and the stream-indexing middleware evaluation.
//
// The engine replays timed events on a virtual clock, mirroring the publicly
// available Chord simulator the paper links against: input events (new stream
// values, new client queries) and internal events (message hops, periodic
// maintenance) are all executed in virtual-time order.
//
// The event loop is strictly deterministic: events fire in (time, scheduling
// sequence) order, and all randomness is injected through explicitly seeded
// generators (see rand.go). Running the same configuration with the same seed
// therefore produces bit-identical simulation results, which the test suite
// relies on for regression checks. Parallelism belongs one level up: whole
// simulations are independent and are fanned out across goroutines by the
// experiment harness.
package sim

import (
	"fmt"
)

// Time is a virtual-time instant or duration, measured in microseconds since
// the start of the simulation. Microsecond resolution comfortably expresses
// every interval the paper's evaluation uses (50 ms hops, 150-250 ms stream
// periods, 2 s push periods, 5 s MBR lifespans) while leaving headroom for
// sub-millisecond experimentation.
type Time int64

// Convenient duration units for building Time values.
const (
	Microsecond Time = 1
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
	Minute           = 60 * Second
)

// Seconds reports t as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Millis reports t as a floating-point number of milliseconds.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

// String formats the time with adaptive units for logs and test failures.
func (t Time) String() string {
	switch {
	case t >= Second || t <= -Second:
		return fmt.Sprintf("%.3fs", t.Seconds())
	case t >= Millisecond || t <= -Millisecond:
		return fmt.Sprintf("%.3fms", t.Millis())
	default:
		return fmt.Sprintf("%dus", int64(t))
	}
}

// event is a single scheduled callback, stored inline in the engine's heap
// slice. No per-event heap allocation occurs: scheduling appends a value,
// firing copies it out.
type event struct {
	at   Time
	seq  uint64 // tie-breaker: FIFO among events at the same instant
	fn   func()
	slot int32 // free-list slot backing the cancellation handle
}

// less orders events by (at, seq); seq is unique, so the order is total and
// firing order is fully deterministic.
func (a *event) less(b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// timerSlot is the free-list record behind one Timer handle. The generation
// counter invalidates stale handles: it is bumped when the event leaves the
// heap, so a Timer whose generation no longer matches refers to an event
// that already fired (or was cancelled and collected).
type timerSlot struct {
	gen       uint32
	cancelled bool
}

// Engine is a single-threaded discrete-event executor. The zero value is not
// usable; construct with NewEngine. Engine methods must not be called
// concurrently: all model code runs inside event callbacks on one goroutine.
type Engine struct {
	now Time
	seq uint64
	// events is a 4-ary min-heap of inline event structs ordered by
	// (at, seq). A 4-ary layout halves the tree depth of a binary heap and
	// keeps the four children of a node on one cache line, which is where
	// a discrete-event simulator spends its bookkeeping time.
	events []event
	// slots and free implement the timer free-list; live counts pending
	// non-cancelled events.
	slots   []timerSlot
	free    []int32
	live    int
	stopped bool
	// executed counts events that have run, for introspection and tests.
	executed uint64
}

// NewEngine returns an engine with the clock at zero and no pending events.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Executed returns the number of events executed so far.
func (e *Engine) Executed() uint64 { return e.executed }

// Pending returns the number of scheduled events not yet executed or
// cancelled. Cancelled events still in the heap are excluded.
func (e *Engine) Pending() int { return e.live }

// Timer is a handle to a scheduled event that can be cancelled before
// firing. It is a small value; the zero Timer is inert (Cancel and Active
// return false).
type Timer struct {
	eng  *Engine
	slot int32
	gen  uint32
}

// Cancel prevents the event from firing. Cancelling an already-fired or
// already-cancelled timer is a no-op. It reports whether the event was
// actually descheduled by this call. The cancelled event stays in the heap
// and is discarded (and its slot recycled) when it reaches the front.
func (t Timer) Cancel() bool {
	if t.eng == nil {
		return false
	}
	s := &t.eng.slots[t.slot]
	if s.gen != t.gen || s.cancelled {
		return false
	}
	s.cancelled = true
	t.eng.live--
	return true
}

// Active reports whether the timer is still pending.
func (t Timer) Active() bool {
	if t.eng == nil {
		return false
	}
	s := &t.eng.slots[t.slot]
	return s.gen == t.gen && !s.cancelled
}

// Schedule runs fn after delay d (which may be zero but not negative).
// It returns a Timer that can cancel the callback.
func (e *Engine) Schedule(d Time, fn func()) Timer {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return e.ScheduleAt(e.now+d, fn)
}

// ScheduleAt runs fn at absolute virtual time t, which must not be in the
// past.
func (e *Engine) ScheduleAt(t Time, fn func()) Timer {
	if t < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", t, e.now))
	}
	if fn == nil {
		panic("sim: nil event function")
	}
	var slot int32
	if n := len(e.free); n > 0 {
		slot = e.free[n-1]
		e.free = e.free[:n-1]
	} else {
		e.slots = append(e.slots, timerSlot{gen: 1})
		slot = int32(len(e.slots) - 1)
	}
	gen := e.slots[slot].gen
	e.heapPush(event{at: t, seq: e.seq, fn: fn, slot: slot})
	e.seq++
	e.live++
	return Timer{eng: e, slot: slot, gen: gen}
}

// Step executes the single next event, advancing the clock to its timestamp.
// It reports false when no events remain.
func (e *Engine) Step() bool {
	for len(e.events) > 0 {
		ev := e.heapPop()
		cancelled := e.releaseSlot(ev.slot)
		if cancelled {
			continue
		}
		e.live--
		e.now = ev.at
		e.executed++
		ev.fn()
		return true
	}
	return false
}

// releaseSlot retires the slot of an event leaving the heap, invalidating
// outstanding handles, and reports whether the event had been cancelled.
func (e *Engine) releaseSlot(slot int32) bool {
	s := &e.slots[slot]
	cancelled := s.cancelled
	s.cancelled = false
	s.gen++
	e.free = append(e.free, slot)
	return cancelled
}

// Run executes events until the queue is empty or Stop is called.
func (e *Engine) Run() {
	e.stopped = false
	for !e.stopped && e.Step() {
	}
}

// RunUntil executes events with timestamps <= t and then sets the clock to t.
// Events scheduled exactly at t do run. Stop aborts the loop early.
func (e *Engine) RunUntil(t Time) {
	e.stopped = false
	for !e.stopped {
		next, ok := e.peek()
		if !ok || next > t {
			break
		}
		e.Step()
	}
	if !e.stopped && e.now < t {
		e.now = t
	}
}

// RunFor advances the simulation by duration d (see RunUntil).
func (e *Engine) RunFor(d Time) { e.RunUntil(e.now + d) }

// Stop aborts a Run/RunUntil in progress after the current event returns.
func (e *Engine) Stop() { e.stopped = true }

// peek returns the timestamp of the next non-cancelled event, discarding
// cancelled entries that have reached the front.
func (e *Engine) peek() (Time, bool) {
	for len(e.events) > 0 {
		if e.slots[e.events[0].slot].cancelled {
			ev := e.heapPop()
			e.releaseSlot(ev.slot)
			continue
		}
		return e.events[0].at, true
	}
	return 0, false
}

// --- 4-ary min-heap over inline events -------------------------------------

// heapPush appends ev and restores the heap order by sifting it up.
func (e *Engine) heapPush(ev event) {
	e.events = append(e.events, ev)
	h := e.events
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) >> 2
		if !ev.less(&h[p]) {
			break
		}
		h[i] = h[p]
		i = p
	}
	h[i] = ev
}

// heapPop removes and returns the minimum event.
func (e *Engine) heapPop() event {
	h := e.events
	root := h[0]
	n := len(h) - 1
	last := h[n]
	h[n] = event{} // drop the fn reference so the closure can be collected
	e.events = h[:n]
	if n > 0 {
		e.siftDown(last)
	}
	return root
}

// siftDown re-inserts ev starting from the root after a pop.
func (e *Engine) siftDown(ev event) {
	h := e.events
	n := len(h)
	i := 0
	for {
		c := i<<2 + 1
		if c >= n {
			break
		}
		m := c // index of the smallest child
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if h[j].less(&h[m]) {
				m = j
			}
		}
		if !h[m].less(&ev) {
			break
		}
		h[i] = h[m]
		i = m
	}
	h[i] = ev
}
