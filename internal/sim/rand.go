package sim

import (
	"math"
	"math/rand"
)

// Rand wraps math/rand with the distribution helpers the workload model
// needs: uniform durations for stream periods and query lifespans (Table I)
// and exponential inter-arrival gaps for the Poisson query process.
//
// Every simulation component draws from its own Rand forked off a root seed
// (see Fork), so adding or removing one component never perturbs the random
// sequence observed by another — a prerequisite for meaningful A/B
// experiments under a shared seed.
type Rand struct {
	*rand.Rand
}

// NewRand returns a deterministic generator for the given seed.
func NewRand(seed int64) *Rand {
	return &Rand{rand.New(rand.NewSource(seed))}
}

// Fork derives an independent generator labelled by name. The derivation is
// a stable string hash mixed into the parent seed, not a draw from the
// parent, so fork order does not matter.
func (r *Rand) Fork(name string) *Rand {
	return &Rand{rand.New(rand.NewSource(r.seedFor(name)))}
}

// ForkSeed derives a stable child seed labelled by name without allocating a
// generator.
func (r *Rand) seedFor(name string) int64 {
	// FNV-1a over the label, mixed with one draw-independent constant from
	// the parent's seed stream position. We take a single Int63 here; Fork
	// callers conventionally fork everything up front.
	h := uint64(14695981039346656037)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return int64(h>>1) ^ r.Int63()
}

// UniformTime draws a duration uniformly from [lo, hi]. It panics when
// hi < lo.
func (r *Rand) UniformTime(lo, hi Time) Time {
	if hi < lo {
		panic("sim: UniformTime with hi < lo")
	}
	if hi == lo {
		return lo
	}
	return lo + Time(r.Int63n(int64(hi-lo)+1))
}

// Uniform draws a float uniformly from [lo, hi).
func (r *Rand) Uniform(lo, hi float64) float64 {
	return lo + r.Float64()*(hi-lo)
}

// ExpTime draws an exponentially distributed duration with the given mean,
// the inter-arrival gap of a Poisson process with rate 1/mean. The result is
// clamped to at least one microsecond so a Poisson process always advances
// virtual time.
func (r *Rand) ExpTime(mean Time) Time {
	if mean <= 0 {
		panic("sim: ExpTime with non-positive mean")
	}
	d := Time(math.Round(r.ExpFloat64() * float64(mean)))
	if d < 1 {
		d = 1
	}
	return d
}

// Poisson starts a Poisson arrival process on the engine: fn fires at
// exponentially spaced instants with the given mean gap until the returned
// ticker-like handle is stopped. The first arrival is itself one
// exponential gap away.
func (e *Engine) Poisson(r *Rand, mean Time, fn func()) *PoissonProc {
	p := &PoissonProc{eng: e, rng: r, mean: mean, fn: fn}
	p.timer = e.Schedule(r.ExpTime(mean), p.fire)
	return p
}

// PoissonProc is a handle to a running Poisson arrival process.
type PoissonProc struct {
	eng     *Engine
	rng     *Rand
	mean    Time
	fn      func()
	timer   Timer
	stopped bool
	fires   uint64
}

// Fires returns the number of arrivals so far.
func (p *PoissonProc) Fires() uint64 { return p.fires }

// Stop halts the arrival process.
func (p *PoissonProc) Stop() {
	if p.stopped {
		return
	}
	p.stopped = true
	p.timer.Cancel()
}

func (p *PoissonProc) fire() {
	if p.stopped {
		return
	}
	p.fires++
	p.fn()
	if p.stopped {
		return
	}
	p.timer = p.eng.Schedule(p.rng.ExpTime(p.mean), p.fire)
}
