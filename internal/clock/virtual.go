package clock

import "streamdex/internal/sim"

// virtual adapts a *sim.Engine to the Clock interface. It is a zero-cost
// wrapper: sim.Timer and *sim.Ticker already satisfy Timer and Ticker, and
// scheduling order is exactly the engine's, so simulations behave (and
// reproduce) bit-identically to scheduling on the engine directly.
type virtual struct {
	eng *sim.Engine
}

// Virtual returns a Clock backed by the simulation engine.
func Virtual(eng *sim.Engine) Clock {
	if eng == nil {
		panic("clock: Virtual with nil engine")
	}
	return virtual{eng: eng}
}

// Now implements Clock.
func (v virtual) Now() sim.Time { return v.eng.Now() }

// Schedule implements Clock.
func (v virtual) Schedule(d sim.Time, fn func()) Timer { return v.eng.Schedule(d, fn) }

// EveryAfter implements Clock.
func (v virtual) EveryAfter(initial, period sim.Time, fn func()) Ticker {
	return v.eng.EveryAfter(initial, period, fn)
}

// Compile-time interface checks against the sim types.
var (
	_ Timer  = sim.Timer{}
	_ Ticker = (*sim.Ticker)(nil)
)
