// Package clock abstracts time and timers behind one small interface so the
// middleware and the Chord protocol logic run unchanged in two worlds:
//
//   - the discrete-event simulator (package sim), where time is virtual and
//     the whole system executes deterministically on one goroutine, and
//   - a real deployment (package transport / cmd/adidas-node), where time is
//     the wall clock and events arrive from sockets and OS timers.
//
// The unit of time stays sim.Time (microseconds): configuration values such
// as "stabilize every 500 ms" mean virtual milliseconds under the simulator
// and real milliseconds on hardware, without conversion at the call sites.
//
// Both implementations preserve the execution model the protocol code was
// written for: callbacks never run concurrently with each other. Virtual
// delegates to the single-threaded event engine; Wall serializes timer
// callbacks (and any externally posted work, e.g. decoded network frames)
// onto one run-loop goroutine.
package clock

import "streamdex/internal/sim"

// Timer is a handle to a scheduled one-shot callback. The sim.Timer value
// type implements it directly.
type Timer interface {
	// Cancel prevents the callback from firing; it reports whether this
	// call descheduled it (false if already fired or cancelled).
	Cancel() bool
	// Active reports whether the callback is still pending.
	Active() bool
}

// Ticker is a handle to a periodic callback. *sim.Ticker implements it
// directly.
type Ticker interface {
	// Stop cancels the ticker; the callback will not run again.
	Stop()
	// Active reports whether the ticker will fire again.
	Active() bool
	// Fires returns how many times the ticker has fired.
	Fires() uint64
}

// Clock is the scheduling surface the protocol layers depend on. All
// callbacks run serialized: an implementation never invokes two callbacks
// concurrently, so protocol state needs no locking.
type Clock interface {
	// Now returns the current time: virtual microseconds since simulation
	// start, or wall microseconds since the clock was created.
	Now() sim.Time
	// Schedule runs fn once after delay d (>= 0).
	Schedule(d sim.Time, fn func()) Timer
	// EveryAfter runs fn first after the initial delay and then every
	// period (> 0).
	EveryAfter(initial, period sim.Time, fn func()) Ticker
}

// Every schedules fn on c every period, first firing after one full period.
func Every(c Clock, period sim.Time, fn func()) Ticker {
	return c.EveryAfter(period, period, fn)
}
