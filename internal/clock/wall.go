package clock

import (
	"sync"
	"sync/atomic"
	"time"

	"streamdex/internal/sim"
)

// Wall is the real-time Clock: one sim.Time microsecond equals one wall
// microsecond. It owns a run loop — a single goroutine that executes every
// timer callback and every function handed to Post — so code written for
// the simulator's serialized execution model runs unchanged on it. The
// live transport posts decoded network frames into the same loop, which is
// what makes per-node protocol state lock-free in a real deployment.
type Wall struct {
	epoch time.Time

	tasks chan func()
	quit  chan struct{}
	done  chan struct{}

	closing  atomic.Bool
	quitOnce sync.Once

	// Post saturation counters (atomic; see LoopStats).
	posted       atomic.Int64
	highWater    atomic.Int64
	blockedPosts atomic.Int64
	blockedNs    atomic.Int64
}

// LoopStats is a snapshot of the run loop's task-queue health. The queue is
// 4096 deep and Post blocks silently when it is full; these counters make
// that saturation observable (surfaced by the node's STATS output through
// metrics.Loop).
type LoopStats struct {
	Posted       int64 // tasks ever enqueued
	Depth        int   // tasks queued right now
	HighWater    int   // max queue depth observed at enqueue time
	BlockedPosts int64 // Post calls that found the queue full and had to wait
	BlockedNs    int64 // total nanoseconds Post callers spent blocked
}

// LoopStats returns a snapshot of the queue counters. Safe from any
// goroutine.
func (w *Wall) LoopStats() LoopStats {
	return LoopStats{
		Posted:       w.posted.Load(),
		Depth:        len(w.tasks),
		HighWater:    int(w.highWater.Load()),
		BlockedPosts: w.blockedPosts.Load(),
		BlockedNs:    w.blockedNs.Load(),
	}
}

// noteEnqueued updates Posted and HighWater after a successful enqueue.
func (w *Wall) noteEnqueued() {
	w.posted.Add(1)
	depth := int64(len(w.tasks))
	for {
		hw := w.highWater.Load()
		if depth <= hw || w.highWater.CompareAndSwap(hw, depth) {
			return
		}
	}
}

// NewWall creates a wall clock and starts its run loop.
func NewWall() *Wall {
	w := &Wall{
		epoch: time.Now(),
		tasks: make(chan func(), 4096),
		quit:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	go w.loop()
	return w
}

func (w *Wall) loop() {
	defer close(w.done)
	for {
		select {
		case fn := <-w.tasks:
			fn()
		case <-w.quit:
			// Drain tasks already queued so Post callers blocked on a
			// full channel are released, then stop without running them.
			for {
				select {
				case <-w.tasks:
				default:
					return
				}
			}
		}
	}
}

// Now implements Clock: microseconds of wall time since the clock was
// created.
func (w *Wall) Now() sim.Time {
	return sim.Time(time.Since(w.epoch) / time.Microsecond)
}

// Duration converts a sim.Time span to a wall-clock duration.
func Duration(d sim.Time) time.Duration {
	return time.Duration(d) * time.Microsecond
}

// Post enqueues fn onto the run loop and returns immediately. It reports
// false (and drops fn) once the clock is closed. Post blocks only when the
// loop has fallen a full queue behind; it must not be called from inside a
// loop callback in that state, so loop callbacks should call fn directly
// instead of posting to themselves.
func (w *Wall) Post(fn func()) bool {
	if w.closing.Load() {
		return false
	}
	// Fast path: queue has room.
	select {
	case w.tasks <- fn:
		w.noteEnqueued()
		return true
	case <-w.quit:
		return false
	default:
	}
	// Queue full: count the stall and how long it lasts.
	w.blockedPosts.Add(1)
	start := time.Now()
	defer func() { w.blockedNs.Add(time.Since(start).Nanoseconds()) }()
	select {
	case w.tasks <- fn:
		w.noteEnqueued()
		return true
	case <-w.quit:
		return false
	}
}

// Do runs fn on the loop and waits for it to finish. After Close it runs
// fn inline (the loop is gone, so there is nothing to race with). It must
// not be called from inside a loop callback — call fn directly there.
func (w *Wall) Do(fn func()) {
	ran := make(chan struct{})
	if !w.Post(func() { fn(); close(ran) }) {
		fn()
		return
	}
	select {
	case <-ran:
	case <-w.done:
		// Closed while queued; the drain dropped the task.
	}
}

// Close stops the run loop and waits for it to exit. Pending and future
// callbacks are discarded. Close is idempotent.
func (w *Wall) Close() {
	w.closing.Store(true)
	w.quitOnce.Do(func() { close(w.quit) })
	<-w.done
}

// --- timers ----------------------------------------------------------------

const (
	timerPending int32 = iota
	timerFired
	timerCancelled
)

type wallTimer struct {
	w     *Wall
	state atomic.Int32
	t     *time.Timer
}

// Schedule implements Clock. The callback runs on the loop.
func (w *Wall) Schedule(d sim.Time, fn func()) Timer {
	if d < 0 {
		panic("clock: negative delay")
	}
	if fn == nil {
		panic("clock: nil timer function")
	}
	t := &wallTimer{w: w}
	t.t = time.AfterFunc(Duration(d), func() {
		w.Post(func() {
			if t.state.CompareAndSwap(timerPending, timerFired) {
				fn()
			}
		})
	})
	return t
}

// Cancel implements Timer.
func (t *wallTimer) Cancel() bool {
	if t.state.CompareAndSwap(timerPending, timerCancelled) {
		t.t.Stop()
		return true
	}
	return false
}

// Active implements Timer.
func (t *wallTimer) Active() bool { return t.state.Load() == timerPending }

type wallTicker struct {
	w      *Wall
	period sim.Time
	fn     func()

	stopped atomic.Bool
	fires   atomic.Uint64

	mu sync.Mutex
	t  *time.Timer
}

// EveryAfter implements Clock. The callback runs on the loop; as in the
// simulator, the next firing is scheduled only after the callback returns,
// so a slow callback delays the train instead of stacking up.
func (w *Wall) EveryAfter(initial, period sim.Time, fn func()) Ticker {
	if period <= 0 {
		panic("clock: non-positive ticker period")
	}
	if fn == nil {
		panic("clock: nil ticker function")
	}
	tk := &wallTicker{w: w, period: period, fn: fn}
	tk.arm(initial)
	return tk
}

func (tk *wallTicker) arm(d sim.Time) {
	tk.mu.Lock()
	defer tk.mu.Unlock()
	if tk.stopped.Load() {
		return
	}
	tk.t = time.AfterFunc(Duration(d), func() {
		tk.w.Post(tk.run)
	})
}

func (tk *wallTicker) run() {
	if tk.stopped.Load() {
		return
	}
	tk.fires.Add(1)
	tk.fn()
	if tk.stopped.Load() { // fn may stop its own ticker
		return
	}
	tk.arm(tk.period)
}

// Stop implements Ticker.
func (tk *wallTicker) Stop() {
	tk.stopped.Store(true)
	tk.mu.Lock()
	if tk.t != nil {
		tk.t.Stop()
	}
	tk.mu.Unlock()
}

// Active implements Ticker.
func (tk *wallTicker) Active() bool { return !tk.stopped.Load() }

// Fires implements Ticker.
func (tk *wallTicker) Fires() uint64 { return tk.fires.Load() }

// Compile-time interface checks.
var (
	_ Clock  = (*Wall)(nil)
	_ Timer  = (*wallTimer)(nil)
	_ Ticker = (*wallTicker)(nil)
)
