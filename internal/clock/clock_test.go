package clock

import (
	"sync/atomic"
	"testing"
	"time"

	"streamdex/internal/sim"
)

// TestVirtualDelegates checks that the virtual clock is a transparent view
// of the engine: same now, same firing order, working cancellation.
func TestVirtualDelegates(t *testing.T) {
	eng := sim.NewEngine()
	c := Virtual(eng)

	var order []int
	c.Schedule(20*sim.Millisecond, func() { order = append(order, 2) })
	c.Schedule(10*sim.Millisecond, func() { order = append(order, 1) })
	cancelled := c.Schedule(15*sim.Millisecond, func() { order = append(order, 99) })
	if !cancelled.Cancel() {
		t.Fatal("first Cancel should deschedule")
	}
	if cancelled.Cancel() {
		t.Fatal("second Cancel should be a no-op")
	}

	tk := Every(c, 5*sim.Millisecond, func() {})
	eng.RunUntil(22 * sim.Millisecond)
	tk.Stop()

	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("firing order %v, want [1 2]", order)
	}
	if got := tk.Fires(); got != 4 {
		t.Fatalf("ticker fired %d times in 22ms at 5ms period, want 4", got)
	}
	if c.Now() != eng.Now() {
		t.Fatalf("clock now %v != engine now %v", c.Now(), eng.Now())
	}
}

// TestWallSerializes posts work from many goroutines and checks that
// callbacks never overlap (the loop guarantee protocol code relies on).
func TestWallSerializes(t *testing.T) {
	w := NewWall()
	defer w.Close()

	var inside atomic.Int32
	var overlaps atomic.Int32
	var ran atomic.Int32
	const posts = 200
	for i := 0; i < posts; i++ {
		go w.Post(func() {
			if inside.Add(1) > 1 {
				overlaps.Add(1)
			}
			inside.Add(-1)
			ran.Add(1)
		})
	}
	deadline := time.Now().Add(5 * time.Second)
	for ran.Load() < posts && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if ran.Load() < posts {
		t.Fatalf("only %d/%d posted callbacks ran", ran.Load(), posts)
	}
	if overlaps.Load() != 0 {
		t.Fatalf("%d overlapping callbacks", overlaps.Load())
	}
}

// TestWallTimerAndTicker exercises scheduling, cancellation and periodic
// firing against real time.
func TestWallTimerAndTicker(t *testing.T) {
	w := NewWall()
	defer w.Close()

	fired := make(chan struct{})
	w.Schedule(time1ms(), func() { close(fired) })
	select {
	case <-fired:
	case <-time.After(5 * time.Second):
		t.Fatal("one-shot timer never fired")
	}

	var cancelledRan atomic.Bool
	tm := w.Schedule(50*sim.Millisecond, func() { cancelledRan.Store(true) })
	if !tm.Cancel() {
		t.Fatal("Cancel of pending timer should succeed")
	}
	if tm.Active() {
		t.Fatal("cancelled timer still active")
	}

	tick := make(chan struct{}, 64)
	tk := w.EveryAfter(0, time1ms(), func() { tick <- struct{}{} })
	for i := 0; i < 3; i++ {
		select {
		case <-tick:
		case <-time.After(5 * time.Second):
			t.Fatalf("ticker stalled after %d fires", i)
		}
	}
	tk.Stop()
	if tk.Active() {
		t.Fatal("stopped ticker still active")
	}
	if tk.Fires() < 3 {
		t.Fatalf("ticker fired %d times, want >= 3", tk.Fires())
	}

	time.Sleep(80 * time.Millisecond)
	if cancelledRan.Load() {
		t.Fatal("cancelled timer callback ran")
	}
}

// TestWallTickerStopsItself checks the sim.Ticker contract that fn may stop
// its own ticker.
func TestWallTickerStopsItself(t *testing.T) {
	w := NewWall()
	defer w.Close()

	done := make(chan uint64, 1)
	var tk Ticker
	w.Do(func() {
		tk = w.EveryAfter(0, time1ms(), func() {
			if tk.Fires() == 2 {
				tk.Stop()
				done <- tk.Fires()
			}
		})
	})
	select {
	case n := <-done:
		if n != 2 {
			t.Fatalf("self-stopped after %d fires, want 2", n)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("self-stopping ticker never stopped")
	}
	fires := tk.Fires()
	time.Sleep(20 * time.Millisecond)
	if tk.Fires() != fires {
		t.Fatal("ticker kept firing after stopping itself")
	}
}

// TestWallDoAndClose checks Do round-trips and that Close is idempotent and
// releases pending posts.
func TestWallDoAndClose(t *testing.T) {
	w := NewWall()
	v := 0
	w.Do(func() { v = 42 })
	if v != 42 {
		t.Fatalf("Do result %d, want 42", v)
	}
	if now := w.Now(); now < 0 {
		t.Fatalf("negative wall now %v", now)
	}
	w.Close()
	w.Close() // idempotent
	if w.Post(func() {}) {
		t.Fatal("Post after Close should report false")
	}
	// Do after close runs inline.
	v = 0
	w.Do(func() { v = 7 })
	if v != 7 {
		t.Fatal("Do after Close should run inline")
	}
}

// TestWallLoopStats drives the task queue to saturation and checks the
// Post counters: depth/high-water track enqueue pressure, and a Post that
// finds the queue full is counted with the nanoseconds it spent blocked.
func TestWallLoopStats(t *testing.T) {
	w := NewWall()
	defer w.Close()

	if s := w.LoopStats(); s.Posted != 0 || s.BlockedPosts != 0 || s.BlockedNs != 0 {
		t.Fatalf("fresh clock stats = %+v", s)
	}

	// Park the loop on a gated task so nothing drains.
	gate := make(chan struct{})
	parked := make(chan struct{})
	w.Post(func() { close(parked); <-gate })
	<-parked

	// Fill the queue to capacity without blocking.
	capacity := cap(w.tasks)
	for i := 0; i < capacity; i++ {
		w.Post(func() {})
	}
	s := w.LoopStats()
	if s.Posted != int64(capacity)+1 {
		t.Fatalf("Posted = %d, want %d", s.Posted, capacity+1)
	}
	if s.Depth != capacity || s.HighWater != capacity {
		t.Fatalf("Depth/HighWater = %d/%d, want %d/%d", s.Depth, s.HighWater, capacity, capacity)
	}
	if s.BlockedPosts != 0 {
		t.Fatalf("BlockedPosts = %d before saturation overflow", s.BlockedPosts)
	}

	// One more Post must block until the loop drains a slot.
	unblocked := make(chan struct{})
	go func() {
		w.Post(func() {})
		close(unblocked)
	}()
	deadline := time.After(2 * time.Second)
	for w.LoopStats().BlockedPosts == 0 {
		select {
		case <-deadline:
			t.Fatal("overflow Post was never counted as blocked")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	close(gate) // release the loop; the queue drains, unblocking the Post
	<-unblocked

	// BlockedNs is charged when the blocked Post completes.
	for w.LoopStats().BlockedNs == 0 {
		select {
		case <-deadline:
			t.Fatal("BlockedNs never charged")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	s = w.LoopStats()
	if s.BlockedPosts != 1 {
		t.Fatalf("BlockedPosts = %d, want 1", s.BlockedPosts)
	}
	if s.Posted != int64(capacity)+2 {
		t.Fatalf("Posted = %d, want %d", s.Posted, capacity+2)
	}
}

func time1ms() sim.Time { return sim.Millisecond }
