package wire_test

import (
	"reflect"
	"testing"

	"streamdex/internal/chord/protocol"
	"streamdex/internal/core"
	"streamdex/internal/cqe"
	"streamdex/internal/dht"
	"streamdex/internal/koorde"
	"streamdex/internal/query"
	"streamdex/internal/sim"
	"streamdex/internal/summary"
	"streamdex/internal/wire"
)

// ref builds a ring-control node reference with an address, as the live
// transport carries them.
func ref(id dht.Key) protocol.Ref {
	return protocol.Ref{ID: id, Addr: "127.0.0.1:7001"}
}

// mbr builds a non-trivial MBR with every field populated.
func mbr() *summary.MBR {
	b := summary.NewMBR("s-42", 7, summary.Feature{0.1, -0.2, 0.3, 0.05})
	b.Extend(summary.Feature{0.15, -0.1, 0.25, 0.0})
	b.Created = 1_000_000
	b.Expiry = 6_000_000
	return b
}

// sketch builds a windowed value sketch with every band populated, so the
// nested EH bucket encoding is exercised.
func sketch() *summary.Sketch {
	s := summary.NewSketch(5_000_000, 2, 3, 0, 90)
	for i := 0; i < 40; i++ {
		s.Add(sim.Time(i)*100_000, float64(i*2))
	}
	return s
}

func matches() []query.Match {
	return []query.Match{
		{StreamID: "s-1", Seq: 3, DistLB: 0.125, FoundAt: 2_500_000, Node: 17},
		{StreamID: "s-9", Seq: 11, DistLB: 0.0, FoundAt: 2_750_000, Node: 63},
	}
}

// roundTripCases covers every message payload kind of the middleware
// protocol, each with non-zero envelope metadata so the fixed header
// encoding is exercised too.
func roundTripCases() []*dht.Message {
	return []*dht.Message{
		{
			Kind: core.KindMBR, Key: 100, Src: 3, Hops: 4, SentAt: 1_234_567,
			RangeStart: 90, RangeEnd: 140, HasRange: true, Mode: dht.RangeTree, RangeTail: true,
			Payload: core.MBRUpdate{MBR: mbr()},
		},
		{
			Kind: core.KindQuery, Key: 200, Src: 5, Hops: 1, SentAt: 2_000_000,
			RangeStart: 180, RangeEnd: 260, HasRange: true, Mode: dht.RangeBidirectional, Dir: -1,
			Payload: core.SimQuery{
				Q: &query.Similarity{
					ID: 9, Origin: 5,
					Feature: summary.Feature{0.4, 0.1, -0.3, 0.2},
					Radius:  0.25, Posted: 1_900_000, Lifespan: 30_000_000,
				},
				MiddleKey: 220,
			},
		},
		{
			Kind: core.KindNotify, Key: 42, Src: 40, Hops: 2, SentAt: 3_100_000, Dir: 1,
			Payload: core.NotifyBatch{Items: []core.NotifyItem{
				{QueryID: 9, MiddleKey: 220, ClientKey: 5, Expiry: 31_900_000, Matches: matches()},
			}},
		},
		{
			Kind: core.KindResponse, Key: 5, Src: 220, Hops: 6, SentAt: 3_200_000,
			Payload: core.ResponseMsg{QueryID: 9, Matches: matches()},
		},
		{
			Kind: core.KindLocPut, Key: 77, Src: 12, Hops: 3, SentAt: 400_000,
			Payload: core.LocPut{StreamID: "s-42", Source: 12},
		},
		{
			Kind: core.KindLocGet, Key: 77, Src: 30, Hops: 2, SentAt: 500_000,
			Payload: core.LocGet{StreamID: "s-42", Requester: 30},
		},
		{
			Kind: core.KindLocReply, Key: 30, Src: 77, Hops: 5, SentAt: 600_000,
			Payload: core.LocReply{StreamID: "s-42", Source: 12, Found: true},
		},
		{
			Kind: core.KindIPSub, Key: 12, Src: 30, Hops: 4, SentAt: 700_000,
			Payload: core.IPSub{Q: &query.InnerProduct{
				ID: 21, Origin: 30, StreamID: "s-42",
				Index: []int{0, 3, 5}, Weights: []float64{1.0, -0.5, 0.25},
				Posted: 650_000, Lifespan: 20_000_000,
			}},
		},
		{
			Kind: core.KindIPResp, Key: 30, Src: 12, Hops: 4, SentAt: 800_000,
			Payload: core.IPResp{QueryID: 21, Value: query.IPValue{Value: 3.5, At: 790_000, Approx: true}},
		},
		// Continuous-query-engine kinds (PR 7).
		{
			Kind: core.KindSketch, Key: 50, Src: 7, Hops: 2, SentAt: 4_000_000,
			RangeStart: 40, RangeEnd: 80, HasRange: true, Mode: dht.RangeSequential, Dir: 1,
			Payload: core.SketchUpdate{
				StreamID: "s-42", Seq: 7, Expiry: 9_000_000, Lo: 0.12, Hi: 0.2, Sketch: sketch(),
			},
		},
		// A sketch-less update: the nil sketch is elided on the wire.
		{
			Kind: core.KindSketch, Key: 50, Src: 7, Hops: 1, SentAt: 4_100_000,
			Payload: core.SketchUpdate{StreamID: "s-43", Seq: 8, Expiry: 9_100_000, Lo: -0.3, Hi: -0.25},
		},
		{
			Kind: core.KindSub, Key: 60, Src: 5, Hops: 1, SentAt: 4_200_000,
			RangeStart: 55, RangeEnd: 75, HasRange: true, Mode: dht.RangeBidirectional, Dir: -1,
			Payload: core.SubMsg{P: &query.Predicate{
				ID: 31, Origin: 5,
				Lo: summary.Feature{-0.2, -0.1, 0.0, 0.1}, Hi: summary.Feature{0.2, 0.3, 0.4, 0.5},
				Posted: 4_000_000, Lifespan: 60_000_000,
			}},
		},
		{
			Kind: core.KindSub, Key: 60, Src: 5, Hops: 1, SentAt: 4_250_000,
			Payload: core.SubMsg{P: &query.Predicate{
				ID: 31, Origin: 5,
				Lo: summary.Feature{-0.2}, Hi: summary.Feature{0.2},
				Posted: 4_000_000, Lifespan: 60_000_000,
			}, Cancel: true},
		},
		{
			Kind: core.KindSubMatch, Key: 5, Src: 60, Hops: 3, SentAt: 4_300_000,
			Payload: core.SubMatchMsg{SubID: 31, Matches: matches()},
		},
		{
			Kind: core.KindAggQuery, Key: 70, Src: 5, Hops: 2, SentAt: 4_400_000,
			RangeStart: 65, RangeEnd: 85, HasRange: true, Mode: dht.RangeSequential,
			Payload: core.AggQueryMsg{Q: &query.Aggregate{
				ID: 33, Origin: 5, Lo: -0.4, Hi: 0.4, Posted: 4_300_000, Lifespan: 45_000_000,
			}},
		},
		{
			Kind: core.KindAggReply, Key: 5, Src: 70, Hops: 4, SentAt: 4_500_000,
			Payload: core.AggReplyMsg{QueryID: 33, Items: []core.StreamSketch{
				{StreamID: "s-1", Seq: 4, Sketch: sketch()},
				{StreamID: "s-9", Seq: 2, Sketch: sketch()},
			}},
		},
		{
			Kind: core.KindTopK, Key: 80, Src: 5, Hops: 1, SentAt: 4_600_000,
			RangeStart: 75, RangeEnd: 95, HasRange: true, Mode: dht.RangeTree,
			Payload: core.TopKMsg{Q: &query.TopK{
				ID: 35, Origin: 5, K: 3, Lo: -0.5, Hi: 0.5, Posted: 4_500_000, Lifespan: 50_000_000,
			}},
		},
		{
			Kind: core.KindTopKReport, Key: 5, Src: 80, Hops: 2, SentAt: 4_700_000,
			Payload: core.TopKReportMsg{QueryID: 35, Node: 80, Counts: []cqe.StreamCount{
				{StreamID: "s-1", Count: 12}, {StreamID: "s-9", Count: 4},
			}},
		},
		// Load-balancing kinds (PR 8): the replica tail walk and the
		// per-node load gossip.
		{
			Kind: core.KindReplica, Key: 90, Src: 50, Hops: 1, SentAt: 4_800_000,
			Payload: core.ReplicaMsg{MBR: mbr(), TTL: 2},
		},
		// An MBR-less replica frame: the nil MBR is elided on the wire.
		{
			Kind: core.KindReplica, Key: 90, Src: 50, Hops: 2, SentAt: 4_850_000,
			Payload: core.ReplicaMsg{TTL: 1},
		},
		{
			Kind: core.KindLoad, Key: 40, Src: 50, Hops: 1, SentAt: 4_900_000,
			Payload: core.LoadMsg{Loads: []float64{12.5, 3.25, 0}},
		},
		// An empty load report must round-trip too.
		{
			Kind: core.KindLoad, Key: 40, Src: 50, Hops: 1, SentAt: 4_950_000,
			Payload: core.LoadMsg{},
		},
		// Envelope-only frame: the routing layer may carry payload-less
		// control messages.
		{Kind: core.KindResponse, Key: 1, Src: 2, Hops: 1, SentAt: 1},
		// Ring-control messages (the unified Chord control plane): the same
		// packed payloads travel the simulator's event engine and the TCP
		// transport's control frames.
		{
			Kind: protocol.KindRing, Key: 200, Src: 100, Hops: 1, SentAt: 900_000,
			Payload: protocol.FindReq{From: ref(100), Token: 7, Target: 450, TTL: 63, ReplyTo: ref(100)},
		},
		{
			Kind: protocol.KindRing, Key: 100, Src: 300, Hops: 1, SentAt: 910_000,
			Payload: protocol.FindResp{From: ref(300), Token: 7, Succ: ref(500)},
		},
		{
			Kind: protocol.KindRing, Key: 500, Src: 100, Hops: 1, SentAt: 920_000,
			Payload: protocol.StabReq{From: ref(100)},
		},
		{
			Kind: protocol.KindRing, Key: 100, Src: 500, Hops: 1, SentAt: 930_000,
			Payload: protocol.StabResp{
				From: ref(500), HasPred: true, Pred: ref(100),
				SuccList: []protocol.Ref{ref(700), ref(900), ref(100)},
			},
		},
		// A predecessor-less StabResp (fresh ring) must round-trip too: the
		// Pred field is elided on the wire.
		{
			Kind: protocol.KindRing, Key: 100, Src: 500, Hops: 1, SentAt: 940_000,
			Payload: protocol.StabResp{From: ref(500), SuccList: []protocol.Ref{ref(700)}},
		},
		{
			Kind: protocol.KindRing, Key: 500, Src: 100, Hops: 1, SentAt: 950_000,
			Payload: protocol.Notify{From: ref(100)},
		},
		{
			Kind: protocol.KindRing, Key: 300, Src: 100, Hops: 1, SentAt: 960_000,
			Payload: protocol.PingReq{From: ref(100)},
		},
		{
			Kind: protocol.KindRing, Key: 100, Src: 300, Hops: 1, SentAt: 970_000,
			Payload: protocol.PingResp{From: ref(300)},
		},
		// Koorde control plane: same KindRing envelope, disjoint payload
		// tags. A KFindReq carries the de Bruijn walk state (I, Shift), so
		// all three walk phases must round-trip: unanchored (ShiftNone),
		// mid-walk, and digit-exhausted.
		{
			Kind: protocol.KindRing, Key: 200, Src: 100, Hops: 1, SentAt: 980_000,
			Payload: koorde.KFindReq{From: ref(100), Token: 11, Target: 450, TTL: 64,
				ReplyTo: ref(100), Shift: koorde.ShiftNone},
		},
		{
			Kind: protocol.KindRing, Key: 300, Src: 200, Hops: 2, SentAt: 981_000,
			Payload: koorde.KFindReq{From: ref(200), Token: 11, Target: 450, TTL: 62,
				ReplyTo: ref(100), I: 7_200, Shift: 2},
		},
		{
			Kind: protocol.KindRing, Key: 440, Src: 300, Hops: 3, SentAt: 982_000,
			Payload: koorde.KFindReq{From: ref(300), Token: 11, Target: 450, TTL: 60,
				ReplyTo: ref(100), I: 450, Shift: 0},
		},
		{
			Kind: protocol.KindRing, Key: 100, Src: 440, Hops: 1, SentAt: 983_000,
			Payload: koorde.KFindResp{From: ref(440), Token: 11, Succ: ref(500)},
		},
		{
			Kind: protocol.KindRing, Key: 500, Src: 100, Hops: 1, SentAt: 984_000,
			Payload: koorde.KStabReq{From: ref(100)},
		},
		// A chain probe: the stabilize request repurposed for piggybacked
		// pointer repair carries the Chain flag and the k·self image.
		{
			Kind: protocol.KindRing, Key: 500, Src: 100, Hops: 1, SentAt: 984_500,
			Payload: koorde.KStabReq{From: ref(100), Chain: true, Image: 1_600},
		},
		{
			Kind: protocol.KindRing, Key: 100, Src: 500, Hops: 1, SentAt: 985_000,
			Payload: koorde.KStabResp{
				From: ref(500), HasPred: true, Pred: ref(100),
				SuccList: []protocol.Ref{ref(700), ref(900), ref(100)},
			},
		},
		// The chain-probe reply echoes Chain and Image so the requester
		// patches its pointer chain instead of its successor list.
		{
			Kind: protocol.KindRing, Key: 100, Src: 500, Hops: 1, SentAt: 985_500,
			Payload: koorde.KStabResp{
				From: ref(500), HasPred: true, Pred: ref(100), Chain: true, Image: 1_600,
				SuccList: []protocol.Ref{ref(700), ref(900), ref(100)},
			},
		},
		// Predecessor-less KStabResp: the Pred field is elided on the wire.
		{
			Kind: protocol.KindRing, Key: 100, Src: 500, Hops: 1, SentAt: 986_000,
			Payload: koorde.KStabResp{From: ref(500), SuccList: []protocol.Ref{ref(700)}},
		},
		{
			Kind: protocol.KindRing, Key: 500, Src: 100, Hops: 1, SentAt: 987_000,
			Payload: koorde.KNotify{From: ref(100)},
		},
		{
			Kind: protocol.KindRing, Key: 300, Src: 100, Hops: 1, SentAt: 988_000,
			Payload: koorde.KPingReq{From: ref(100)},
		},
		{
			Kind: protocol.KindRing, Key: 100, Src: 300, Hops: 1, SentAt: 989_000,
			Payload: koorde.KPingResp{From: ref(300)},
		},
		{
			Kind: protocol.KindRing, Key: 700, Src: 100, Hops: 1, SentAt: 990_000,
			Payload: koorde.KDListReq{From: ref(100)},
		},
		{
			Kind: protocol.KindRing, Key: 100, Src: 700, Hops: 1, SentAt: 991_000,
			Payload: koorde.KDListResp{
				From: ref(700), HasPred: true, Pred: ref(500),
				SuccList: []protocol.Ref{ref(900), ref(100), ref(300)},
			},
		},
		{
			Kind: protocol.KindRing, Key: 100, Src: 700, Hops: 1, SentAt: 992_000,
			Payload: koorde.KDListResp{From: ref(700), SuccList: []protocol.Ref{ref(900)}},
		},
		// Split legs of a de Bruijn-aware tree multicast: the reserved
		// Mode==3 envelope encoding with the 9-byte walk-state extension.
		// All three walk phases: unanchored (ShiftNone), mid-walk, and
		// digit-exhausted; with and without a payload; tail and interior.
		{
			Kind: core.KindMBR, Key: 320, Src: 3, Hops: 2, SentAt: 5_000_000,
			RangeStart: 320, RangeEnd: 470, HasRange: true, Mode: dht.RangeTree,
			Split: true, SplitImg: 0, SplitShift: dht.SplitShiftNone,
			Payload: core.MBRUpdate{MBR: mbr()},
		},
		{
			Kind: core.KindMBR, Key: 480, Src: 3, Hops: 4, SentAt: 5_001_000,
			RangeStart: 480, RangeEnd: 630, HasRange: true, Mode: dht.RangeTree,
			Split: true, SplitImg: 7_777, SplitShift: 2,
			Payload: core.MBRUpdate{MBR: mbr()},
		},
		{
			Kind: core.KindSketch, Key: 640, Src: 3, Hops: 6, SentAt: 5_002_000,
			RangeStart: 640, RangeEnd: 800, HasRange: true, Mode: dht.RangeTree, RangeTail: true,
			Split: true, SplitImg: 790, SplitShift: 0,
			Payload: core.SketchUpdate{StreamID: "s-44", Seq: 9, Expiry: 9_200_000, Lo: 0.1, Hi: 0.3},
		},
		// A payload-less split leg: envelope plus extension, nothing else.
		{
			Kind: 240, Key: 640, Src: 3, Hops: 1, SentAt: 5_003_000,
			RangeStart: 640, RangeEnd: 800, HasRange: true, Mode: dht.RangeTree,
			Split: true, SplitImg: 655, SplitShift: 1,
		},
	}
}

func TestMarshalRoundTripAllKinds(t *testing.T) {
	for _, want := range roundTripCases() {
		frame, err := wire.Marshal(want)
		if err != nil {
			t.Fatalf("Marshal(kind %d): %v", want.Kind, err)
		}
		got, err := wire.Unmarshal(frame)
		if err != nil {
			t.Fatalf("Unmarshal(kind %d): %v", want.Kind, err)
		}
		// Bytes is recomputed on decode as the frame length; align the
		// expectation before the deep comparison.
		want.Bytes = len(frame)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("kind %d round trip:\n got %#v\nwant %#v", want.Kind, got, want)
		}
	}
}

func TestMarshalEnvelopeIsHeaderBytes(t *testing.T) {
	frame, err := wire.Marshal(&dht.Message{Kind: core.KindLocGet, Key: 1, Src: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(frame) != wire.HeaderBytes {
		t.Fatalf("payload-less frame is %d bytes, want HeaderBytes=%d", len(frame), wire.HeaderBytes)
	}
}

func TestUnmarshalRejectsMalformed(t *testing.T) {
	if _, err := wire.Unmarshal(make([]byte, wire.HeaderBytes-1)); err == nil {
		t.Error("short frame: want error")
	}
	frame, err := wire.Marshal(&dht.Message{Kind: core.KindLocGet, Key: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := wire.Unmarshal(append(frame, 0xff)); err == nil {
		t.Error("trailing bytes on payload-less frame: want error")
	}
	bad := &dht.Message{Kind: core.KindMBR, Dir: 2}
	if _, err := wire.Marshal(bad); err == nil {
		t.Error("out-of-range Dir: want error")
	}
	if _, err := wire.Marshal(&dht.Message{Kind: core.KindMBR, Mode: 3}); err == nil {
		t.Error("reserved Mode 3: want error")
	}
}

// TestSplitLegWireValidation pins the split-extension error surface: a
// split leg is only encodable inside a tree-mode range multicast, and a
// Mode==3 frame must carry both the range flag and the full 9-byte
// extension to decode.
func TestSplitLegWireValidation(t *testing.T) {
	if _, err := wire.Marshal(&dht.Message{Kind: 240, Split: true}); err == nil {
		t.Error("split leg without a range: want Marshal error")
	}
	if _, err := wire.Marshal(&dht.Message{
		Kind: 240, Split: true, HasRange: true, RangeStart: 1, RangeEnd: 9, Mode: dht.RangeSequential,
	}); err == nil {
		t.Error("split leg in sequential mode: want Marshal error")
	}
	frame, err := wire.Marshal(&dht.Message{
		Kind: 240, Key: 5, Src: 2, RangeStart: 1, RangeEnd: 9,
		HasRange: true, Mode: dht.RangeTree, Split: true, SplitImg: 7, SplitShift: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(frame) != wire.HeaderBytes+9 {
		t.Fatalf("payload-less split leg is %d bytes, want HeaderBytes+9=%d", len(frame), wire.HeaderBytes+9)
	}
	// Truncating the extension must be rejected, not mis-decoded.
	for cut := wire.HeaderBytes; cut < len(frame); cut++ {
		if _, err := wire.Unmarshal(frame[:cut]); err == nil {
			t.Errorf("split leg truncated to %d bytes: want error", cut)
		}
	}
	// Clearing the range flag while leaving the Mode bits at 3 must be
	// rejected: a split leg without a range is not a message.
	mangled := append([]byte(nil), frame...)
	mangled[33] &^= 1 // flagHasRange
	if _, err := wire.Unmarshal(mangled); err == nil {
		t.Error("mode-3 frame without the range flag: want error")
	}
}

func TestMarshalPreservesDirections(t *testing.T) {
	for _, dir := range []int{-1, 0, 1} {
		m := &dht.Message{Kind: core.KindNotify, Key: 9, Src: 8, Dir: dir}
		frame, err := wire.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		got, err := wire.Unmarshal(frame)
		if err != nil {
			t.Fatal(err)
		}
		if got.Dir != dir {
			t.Errorf("Dir %d round-tripped to %d", dir, got.Dir)
		}
	}
}
