package wire

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"

	"streamdex/internal/dht"
	"streamdex/internal/sim"
)

// Real framing for the live transport. A marshalled message is the fixed
// binary envelope (exactly HeaderBytes long, matching the size model the
// simulator has always charged) followed by the payload encoding: for
// types with a registered packed codec (packed.go) a one-byte codec tag
// plus the hand-packed bytes, otherwise the gob encoding of the payload
// box. The envelope is encoded by hand with encoding/binary so the
// header cost on real sockets is byte-for-byte the HeaderBytes constant
// the bandwidth evaluation assumes; registered payloads are likewise
// byte-for-byte what Sizeof charges.
//
// Envelope layout (big-endian):
//
//	off len field
//	  0   1 Kind
//	  1   8 Key
//	  9   8 Src
//	 17   8 RangeStart
//	 25   8 RangeEnd
//	 33   1 flags: bit0 HasRange, bit1 RangeTail, bit2 payload present,
//	          bits 3-4 Mode, bits 5-6 Dir (0/1/2 for 0/+1/-1),
//	          bit7 payload packed (codec v2) vs gob fallback
//	 34   3 Hops (unsigned, saturating)
//	 37   8 SentAt
//
// Mode has three real values (0-2); the reserved encoding 3 marks a
// tree-mode (Mode == RangeTree) split leg: the envelope is followed by a
// 9-byte split extension — SplitImg (8) and SplitShift (1) — before the
// payload encoding. Non-split frames carry no extension, so the historic
// layout (and every byte the bandwidth evaluation has ever charged) is
// unchanged.
//
// Bytes is not transmitted: the receiver recomputes it as len(frame), which
// is also what the sender's observer should charge.

const (
	flagHasRange  = 1 << 0
	flagRangeTail = 1 << 1
	flagPayload   = 1 << 2
	modeShift     = 3
	dirShift      = 5
	flagPacked    = 1 << 7
	maxHops       = 1<<24 - 1
)

// SplitExtBytes is the split-leg extension following the envelope when
// the Mode bits read 3: SplitImg (8) + SplitShift (1). Exported so byte
// accounting on top of Sizeof — a payload-only measure — can add the
// extension for split legs; receivers always charge len(frame) directly.
const SplitExtBytes = 9

// payloadBox wraps the message payload so gob encodes the dynamic type
// through a single interface-typed field. Payload types without a packed
// codec must be registered with RegisterPayload on both ends of a
// connection.
type payloadBox struct {
	P any
}

// RegisterPayload records a concrete payload type with gob so it can travel
// through Marshal/Unmarshal via the fallback path. It must be called
// (typically from an init function of the package defining the payloads)
// before any message carrying the type crosses a connection. Types with a
// packed codec (RegisterPackedPayload) never hit this path, but staying
// gob-registered too keeps them usable nested inside third-party payloads.
func RegisterPayload(v any) { gob.Register(v) }

// Marshal encodes a message into a freshly allocated self-contained frame
// body. Steady-state senders should prefer AppendMarshal with a reused
// buffer; Marshal remains for one-shot callers and tests.
func Marshal(msg *dht.Message) ([]byte, error) {
	return AppendMarshal(make([]byte, 0, HeaderBytes+64), msg)
}

// AppendMarshal appends the frame body for msg to dst and returns the
// extended slice: the fixed envelope followed by the payload encoding (if
// any). With a registered packed payload and sufficient capacity in dst it
// performs no allocations, which is what lets the transport run its encode
// path entirely out of a sync.Pool.
func AppendMarshal(dst []byte, msg *dht.Message) ([]byte, error) {
	var entry packedEntry
	packed := false
	if msg.Payload != nil {
		entry, packed = packedFor(msg.Payload)
	}

	var env [HeaderBytes]byte
	env[0] = byte(msg.Kind)
	binary.BigEndian.PutUint64(env[1:9], uint64(msg.Key))
	binary.BigEndian.PutUint64(env[9:17], uint64(msg.Src))
	binary.BigEndian.PutUint64(env[17:25], uint64(msg.RangeStart))
	binary.BigEndian.PutUint64(env[25:33], uint64(msg.RangeEnd))

	var flags byte
	if msg.HasRange {
		flags |= flagHasRange
	}
	if msg.RangeTail {
		flags |= flagRangeTail
	}
	if msg.Payload != nil {
		flags |= flagPayload
	}
	if packed {
		flags |= flagPacked
	}
	if msg.Mode < 0 || msg.Mode > 2 {
		// Mode 3 is the split-leg marker on the wire, never a real mode.
		return nil, fmt.Errorf("wire: range mode %d out of envelope bounds", msg.Mode)
	}
	flags |= byte(msg.Mode) << modeShift
	if msg.Split {
		if !msg.HasRange || msg.Mode != dht.RangeTree {
			return nil, fmt.Errorf("wire: split leg outside a tree-mode range multicast")
		}
		flags |= 3 << modeShift
	}
	switch msg.Dir {
	case 0:
	case 1:
		flags |= 1 << dirShift
	case -1:
		flags |= 2 << dirShift
	default:
		return nil, fmt.Errorf("wire: direction %d out of envelope bounds", msg.Dir)
	}
	env[33] = flags

	hops := msg.Hops
	if hops < 0 {
		return nil, fmt.Errorf("wire: negative hop count %d", hops)
	}
	if hops > maxHops {
		hops = maxHops
	}
	env[34] = byte(hops >> 16)
	env[35] = byte(hops >> 8)
	env[36] = byte(hops)
	binary.BigEndian.PutUint64(env[37:45], uint64(msg.SentAt))

	dst = append(dst, env[:]...)
	if msg.Split {
		var ext [SplitExtBytes]byte
		binary.BigEndian.PutUint64(ext[0:8], uint64(msg.SplitImg))
		ext[8] = msg.SplitShift
		dst = append(dst, ext[:]...)
	}
	switch {
	case msg.Payload == nil:
	case packed:
		dst = append(dst, entry.tag)
		var err error
		dst, err = entry.codec.Append(dst, msg.Payload)
		if err != nil {
			return nil, fmt.Errorf("wire: packing %T payload: %w", msg.Payload, err)
		}
	default:
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(payloadBox{P: msg.Payload}); err != nil {
			return nil, fmt.Errorf("wire: encoding %T payload: %w", msg.Payload, err)
		}
		dst = append(dst, buf.Bytes()...)
	}
	return dst, nil
}

// Unmarshal decodes a frame body produced by Marshal. The returned
// message's Bytes field is set to the frame length, so observers on the
// receiving side account exactly what crossed the socket. The frame slice
// is not retained: packed codecs and gob both copy what they keep, so
// callers may reuse the buffer for the next frame.
func Unmarshal(frame []byte) (*dht.Message, error) {
	return unmarshal(frame, nil)
}

// UnmarshalArena is Unmarshal carving the decoded message — and, for
// codecs implementing ArenaDecoder, its payload objects — out of the given
// arena. Wire behavior is identical; only where the copies live changes.
// The frame slice is still never aliased.
func UnmarshalArena(frame []byte, a *Arena) (*dht.Message, error) {
	return unmarshal(frame, a)
}

func unmarshal(frame []byte, a *Arena) (*dht.Message, error) {
	if len(frame) < HeaderBytes {
		return nil, fmt.Errorf("wire: frame of %d bytes, envelope needs %d", len(frame), HeaderBytes)
	}
	var msg *dht.Message
	if a != nil {
		msg = a.Msg()
	} else {
		msg = &dht.Message{}
	}
	*msg = dht.Message{
		Kind:       dht.Kind(frame[0]),
		Key:        dht.Key(binary.BigEndian.Uint64(frame[1:9])),
		Src:        dht.Key(binary.BigEndian.Uint64(frame[9:17])),
		RangeStart: dht.Key(binary.BigEndian.Uint64(frame[17:25])),
		RangeEnd:   dht.Key(binary.BigEndian.Uint64(frame[25:33])),
		Bytes:      len(frame),
	}
	flags := frame[33]
	msg.HasRange = flags&flagHasRange != 0
	msg.RangeTail = flags&flagRangeTail != 0
	msg.Mode = dht.RangeMode(flags >> modeShift & 3)
	if msg.Mode == 3 {
		// Reserved mode encoding: a tree-mode split leg with a trailing
		// extension.
		msg.Mode = dht.RangeTree
		msg.Split = true
		if !msg.HasRange {
			return nil, fmt.Errorf("wire: split leg without a range")
		}
	}
	switch flags >> dirShift & 3 {
	case 0:
		msg.Dir = 0
	case 1:
		msg.Dir = 1
	case 2:
		msg.Dir = -1
	default:
		return nil, fmt.Errorf("wire: reserved direction bits set")
	}
	msg.Hops = int(frame[34])<<16 | int(frame[35])<<8 | int(frame[36])
	msg.SentAt = sim.Time(binary.BigEndian.Uint64(frame[37:45]))

	hasPayload := flags&flagPayload != 0
	body := frame[HeaderBytes:]
	if msg.Split {
		if len(body) < SplitExtBytes {
			return nil, fmt.Errorf("wire: split leg frame of %d bytes, extension needs %d", len(frame), HeaderBytes+SplitExtBytes)
		}
		msg.SplitImg = dht.Key(binary.BigEndian.Uint64(body[0:8]))
		msg.SplitShift = body[8]
		body = body[SplitExtBytes:]
	}
	if !hasPayload {
		if flags&flagPacked != 0 {
			return nil, fmt.Errorf("wire: packed flag on a payload-less frame")
		}
		if len(body) != 0 {
			return nil, fmt.Errorf("wire: %d trailing bytes on a payload-less frame", len(body))
		}
		return msg, nil
	}
	if flags&flagPacked != 0 {
		if len(body) < 1 {
			return nil, fmt.Errorf("wire: packed payload without codec tag")
		}
		tag := body[0]
		codec := packedByTag[tag]
		if codec == nil {
			return nil, fmt.Errorf("wire: no codec registered for packed payload tag %d", tag)
		}
		var p any
		var err error
		if ad, ok := codec.(ArenaDecoder); ok && a != nil {
			p, err = ad.DecodeArena(body[1:], a)
		} else {
			p, err = codec.Decode(body[1:])
		}
		if err != nil {
			return nil, fmt.Errorf("wire: decoding packed payload of kind %d: %w", msg.Kind, err)
		}
		msg.Payload = p
		return msg, nil
	}
	var box payloadBox
	if err := gob.NewDecoder(bytes.NewReader(body)).Decode(&box); err != nil {
		return nil, fmt.Errorf("wire: decoding payload of kind %d: %w", msg.Kind, err)
	}
	msg.Payload = box.P
	return msg, nil
}
