package wire

// Zero-copy-oriented decode arenas.
//
// PR 4's codec retired the per-frame gob tax but still allocated every
// decoded object individually: a frame carrying an MBR costs a message, a
// rectangle, two corner slices and a stream-id string — five heap objects
// for ~100 bytes of payload, scattered across the heap exactly where the
// candidate walk wants locality. An Arena lets a decode loop (one per
// transport reader goroutine, i.e. keyed to the worker that owns the
// connection) carve those objects out of large chunks instead: a handful
// of bump-pointer increments per frame, one real allocation per chunk.
//
// Arenas are deliberately *not* recycled. Decoded payloads outlive their
// frame by design — MBRs sit in the store for a lifespan, queries for
// theirs — so a resettable arena would be a use-after-free factory. A
// chunk is carved strictly forward and abandoned to the garbage collector
// when full; the win is allocation amortization and locality (consecutive
// frames' floats land adjacent), not manual reclamation, so there is no
// lifetime hazard whatsoever: everything remains ordinary GC-managed
// memory.
//
// Stream identifiers repeat endlessly (every MBR of a stream carries the
// same id), so the arena also interns strings: the alloc-free
// map[string(bytes)] lookup makes the steady state for a known stream id
// zero-allocation and collapses millions of duplicate strings into one.

import (
	"encoding/binary"
	"math"
	"sync/atomic"

	"streamdex/internal/dht"
)

// arenaFloatChunk is the float64 chunk size (32 KiB). Large enough that a
// typical MBR frame (two k-dim corners) refills once per several hundred
// frames, small enough not to strand memory on idle connections.
const arenaFloatChunk = 4096

// arenaMsgChunk is the dht.Message slab size.
const arenaMsgChunk = 256

// arenaInternMax bounds the intern table; beyond it new strings are
// returned uninterned (still correct, just unamortized) so a hostile
// sender cannot grow the map without bound.
const arenaInternMax = 4096

// ArenaStats aggregates decode-arena activity across all arenas sharing
// it (a transport node passes one instance to every reader's arena). The
// hit rate — carves served from an existing chunk versus chunk refills,
// and intern hits versus misses — is the "are allocations amortized"
// health signal surfaced by the node's STATS output.
type ArenaStats struct {
	Carves       atomic.Int64 // allocations served by bump-pointer carving
	Refills      atomic.Int64 // fresh chunks handed to the GC to back carves
	InternHits   atomic.Int64 // stream-id lookups answered from the table
	InternMisses atomic.Int64 // stream-id lookups that had to copy
}

// ArenaStatsSnapshot is a plain-value copy of ArenaStats.
type ArenaStatsSnapshot struct {
	Carves, Refills, InternHits, InternMisses int64
}

// Load captures the current counter values.
func (s *ArenaStats) Load() ArenaStatsSnapshot {
	return ArenaStatsSnapshot{
		Carves:       s.Carves.Load(),
		Refills:      s.Refills.Load(),
		InternHits:   s.InternHits.Load(),
		InternMisses: s.InternMisses.Load(),
	}
}

// HitRate returns the fraction of carve requests served without a chunk
// allocation, 1.0 when nothing happened yet.
func (s ArenaStatsSnapshot) HitRate() float64 {
	if s.Carves == 0 {
		return 1
	}
	return 1 - float64(s.Refills)/float64(s.Carves)
}

// Arena is one decode arena. Not safe for concurrent use: each reader
// goroutine owns its own (stats may be shared; they are atomic).
type Arena struct {
	floats []float64
	msgs   []dht.Message
	intern map[string]string
	stats  *ArenaStats

	// Ext hangs a decoder-package-owned slab off the arena without wire
	// depending on it (package core keeps its MBR/query slabs here).
	Ext any
}

// NewArena returns an empty arena reporting into stats (which may be
// shared across arenas; nil means counters are kept privately).
func NewArena(stats *ArenaStats) *Arena {
	if stats == nil {
		stats = &ArenaStats{}
	}
	return &Arena{stats: stats, intern: make(map[string]string)}
}

// Stats returns the arena's stats sink (shared, atomic).
func (a *Arena) Stats() *ArenaStats { return a.stats }

// Float64s carves an n-element float64 slice. The slice is zeroed, exactly
// len n, and never reused or reclaimed by the arena.
func (a *Arena) Float64s(n int) []float64 {
	if n == 0 {
		return nil
	}
	a.stats.Carves.Add(1)
	if n > len(a.floats) {
		if n > arenaFloatChunk {
			// Oversized request: dedicated allocation, chunk untouched.
			a.stats.Refills.Add(1)
			return make([]float64, n)
		}
		a.floats = make([]float64, arenaFloatChunk)
		a.stats.Refills.Add(1)
	}
	out := a.floats[:n:n]
	a.floats = a.floats[n:]
	return out
}

// Msg carves one zeroed dht.Message.
func (a *Arena) Msg() *dht.Message {
	a.stats.Carves.Add(1)
	if len(a.msgs) == 0 {
		a.msgs = make([]dht.Message, arenaMsgChunk)
		a.stats.Refills.Add(1)
	}
	m := &a.msgs[0]
	a.msgs = a.msgs[1:]
	return m
}

// InternBytes returns b as a string, deduplicated through the arena's
// intern table: a repeated identifier costs zero allocations (the
// map[string(b)] lookup does not materialize the key). The returned
// string never aliases b.
func (a *Arena) InternBytes(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	if s, ok := a.intern[string(b)]; ok {
		a.stats.InternHits.Add(1)
		return s
	}
	a.stats.InternMisses.Add(1)
	s := string(b)
	if len(a.intern) < arenaInternMax {
		a.intern[s] = s
	}
	return s
}

// ArenaDecoder is the optional arena-aware side of a PayloadCodec: decode
// data carving result objects out of a. Implementations must uphold the
// same contract as Decode (consume exactly, never alias data) — the arena
// only changes where the copies live.
type ArenaDecoder interface {
	DecodeArena(data []byte, a *Arena) (any, error)
}

// --- arena-aware Reader primitives (byte-exact mirrors of packed.go) ---

// FloatsArena reads one AppendFloats value into arena-carved storage, nil
// for an empty count. Wire-compatible with Floats in every way.
func (r *Reader) FloatsArena(a *Arena) []float64 {
	n := r.Uvarint()
	if r.err != nil || n == 0 {
		return nil
	}
	if n > uint64(r.Len())/8 {
		r.Failf("wire: %d floats with %d bytes remaining", n, r.Len())
		return nil
	}
	out := a.Float64s(int(n))
	for i := range out {
		out[i] = math.Float64frombits(binary.BigEndian.Uint64(r.data[r.off:]))
		r.off += 8
	}
	return out
}

// StringArena reads one AppendString value through the arena's intern
// table. Wire-compatible with String; the result never aliases the input.
func (r *Reader) StringArena(a *Arena) string {
	n := r.Uvarint()
	if r.err != nil {
		return ""
	}
	if n > uint64(r.Len()) {
		r.Failf("wire: string of %d bytes with %d remaining", n, r.Len())
		return ""
	}
	s := a.InternBytes(r.data[r.off : r.off+int(n)])
	r.off += int(n)
	return s
}
