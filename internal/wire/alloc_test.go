package wire_test

import (
	"fmt"
	"testing"

	"streamdex/internal/wire"
)

// TestAppendMarshalZeroAllocs guards the live transport's encode hot path:
// with a reused destination buffer (the transport's sync.Pool-backed frame
// buffers), packing any registered payload kind must not allocate — no
// encoder state, no intermediate buffers, no boxing.
func TestAppendMarshalZeroAllocs(t *testing.T) {
	for _, msg := range roundTripCases() {
		dst := make([]byte, 0, 4096)
		// Warm once so the measurement never sees a capacity grow.
		var err error
		if dst, err = wire.AppendMarshal(dst[:0], msg); err != nil {
			t.Fatalf("AppendMarshal(kind %d): %v", msg.Kind, err)
		}
		allocs := testing.AllocsPerRun(100, func() {
			dst, err = wire.AppendMarshal(dst[:0], msg)
			if err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Errorf("AppendMarshal(kind %d, %T) allocated %.1f objects per run, want 0",
				msg.Kind, msg.Payload, allocs)
		}
	}
}

// TestSizeofZeroAllocsPacked guards the simulator's sizing hot path: every
// middleware send stamps wire.Sizeof, and for packed payload kinds the
// measurement must run entirely out of the pooled scratch buffer.
func TestSizeofZeroAllocsPacked(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool hits are randomized under -race; alloc count is nondeterministic")
	}
	for _, msg := range roundTripCases() {
		if msg.Payload == nil {
			continue
		}
		p := msg.Payload
		wire.Sizeof(p) // warm the scratch pool
		allocs := testing.AllocsPerRun(100, func() { wire.Sizeof(p) })
		if allocs != 0 {
			t.Errorf("Sizeof(%T) allocated %.1f objects per run, want 0", p, allocs)
		}
	}
}

// TestUnmarshalAllocBounds pins the decode side to its semantic floor: the
// message, the payload's own objects (structs, strings, slices) and
// nothing else — no decoder state, no reflection scratch, no intermediate
// copies. The bounds are the per-kind object counts of the roundTripCases
// fixtures; gob burns 10-40x more on the same frames (see
// BenchmarkPayloadDecode*). A regression that adds codec overhead trips
// the bound immediately.
func TestUnmarshalAllocBounds(t *testing.T) {
	// Max allocations per decoded frame, by payload type name. Counts are
	// for the specific fixture contents (e.g. the NotifyBatch fixture
	// carries one item with two matches).
	bounds := map[string]float64{
		"<nil>":            1, // the message itself
		"core.MBRUpdate":   5, // msg + MBR + streamID + lo + hi
		"core.SimQuery":    5, // msg + box + Similarity + feature (+1 slack)
		"core.NotifyBatch": 9, // msg + items + 2 matches' strings + matches + box (+2 slack)
		"core.ResponseMsg": 6, // msg + box + matches + 2 strings
		"core.LocPut":      3, // msg + box + string
		"core.LocGet":      3,
		"core.LocReply":    3,
		"core.IPSub":       5, // msg + InnerProduct + string + index + weights
		"core.IPResp":      2, // msg + box
		// Continuous-query-engine payloads. A decoded sketch costs the
		// Sketch struct, its band slice, and one EH plus one bucket slice
		// per band (the fixtures carry 3 populated bands).
		"core.SketchUpdate":  11, // msg + box + streamID + sketch objects (8)
		"core.SubMsg":        6,  // msg + box + Predicate + lo + hi (+1 slack)
		"core.SubMatchMsg":   7,  // msg + box + matches + 2 strings (+2 slack)
		"core.AggQueryMsg":   4,  // msg + box + Aggregate (+1 slack)
		"core.AggReplyMsg":   23, // msg + box + items + 2×(string + sketch objects)
		"core.TopKMsg":       4,  // msg + box + TopK (+1 slack)
		"core.TopKReportMsg": 6,  // msg + box + counts + 2 strings (+1 slack)
		// Load-balancing payloads: a replica frame decodes like an MBR
		// update plus its box; a load report is one float slice.
		"core.ReplicaMsg": 6, // msg + box + MBR + streamID + lo + hi
		"core.LoadMsg":    3, // msg + box + loads
		// Ring-control payloads: a Ref decodes to at most one string (its
		// address), everything else is inline.
		"protocol.FindReq":  4, // msg + box + 2 addr strings
		"protocol.FindResp": 4,
		"protocol.StabReq":  3, // msg + box + addr string
		"protocol.StabResp": 8, // msg + box + list + 5 addr strings (largest fixture)
		"protocol.Notify":   3,
		"protocol.PingReq":  3,
		"protocol.PingResp": 3,
		// Koorde ring-control payloads decode with the same cost model as
		// their Chord counterparts: the walk state in KFindReq is two
		// inline varints and allocates nothing extra.
		"koorde.KFindReq":   4, // msg + box + 2 addr strings
		"koorde.KFindResp":  4,
		"koorde.KStabReq":   3,
		"koorde.KStabResp":  8, // msg + box + list + 5 addr strings (largest fixture)
		"koorde.KNotify":    3,
		"koorde.KPingReq":   3,
		"koorde.KPingResp":  3,
		"koorde.KDListReq":  3,
		"koorde.KDListResp": 8,
	}
	for _, msg := range roundTripCases() {
		frame, err := wire.Marshal(msg)
		if err != nil {
			t.Fatalf("Marshal(kind %d): %v", msg.Kind, err)
		}
		name := "<nil>"
		if msg.Payload != nil {
			name = fmt.Sprintf("%T", msg.Payload)
		}
		bound, ok := bounds[name]
		if !ok {
			t.Fatalf("no alloc bound declared for payload %s", name)
		}
		allocs := testing.AllocsPerRun(100, func() {
			if _, err := wire.Unmarshal(frame); err != nil {
				t.Fatal(err)
			}
		})
		if allocs > bound {
			t.Errorf("Unmarshal(%s) allocated %.1f objects per run, bound %.0f", name, allocs, bound)
		}
	}
}
