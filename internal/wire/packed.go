package wire

// Wire codec v2: hand-packed payload encoding.
//
// PR 2's live transport paid gob tax on every frame — a fresh gob.Encoder
// per message re-serializes and re-transmits the type descriptors with
// every payload. Codec v2 replaces that with a registry of hand-packed
// binary codecs, one per payload kind, mirroring the envelope style the
// codec has always used for the 45-byte header: varints for counts, ids
// and timestamps, fixed 8-byte big-endian words for floats, length-
// prefixed strings. Gob remains only as a fallback for payload types
// without a registered codec, so third-party payloads still travel.
//
// Registration is expected to happen in init functions (package core
// registers all nine middleware payloads); lookups after init are
// lock-free reads of maps that are never mutated again.

import (
	"encoding/binary"
	"fmt"
	"math"
	"reflect"
	"sync"
)

// PayloadCodec encodes and decodes one concrete payload type.
//
// Append appends the packed encoding of payload to dst and returns the
// extended slice; it must not retain dst. Decode parses a payload from
// data; it must consume data exactly — trailing bytes are an error — and
// must not alias data in the returned value (the transport reuses its
// read buffer across frames).
type PayloadCodec interface {
	Append(dst []byte, payload any) ([]byte, error)
	Decode(data []byte) (any, error)
}

type packedEntry struct {
	tag   uint8
	codec PayloadCodec
}

var (
	packedMu     sync.Mutex
	packedByType = map[reflect.Type]packedEntry{}
	packedByTag  = map[uint8]PayloadCodec{}
	// packedTagOwner remembers which concrete type claimed each tag, so a
	// duplicate registration can name both colliders — a tag collision is
	// a cross-package coordination bug, and "tag 23 registered twice" is
	// undebuggable without knowing who holds it.
	packedTagOwner = map[uint8]reflect.Type{}
)

// RegisterPackedPayload records a hand-packed codec for the concrete type
// of prototype under the given non-zero tag. The tag travels in the frame
// (one byte after the envelope) and must be identical on both ends of a
// connection. Call from an init function, before any message flows;
// duplicate tags or types panic.
func RegisterPackedPayload(tag uint8, prototype any, codec PayloadCodec) {
	if tag == 0 {
		panic("wire: packed payload tag 0 is reserved")
	}
	if prototype == nil || codec == nil {
		panic("wire: registering nil packed payload")
	}
	t := reflect.TypeOf(prototype)
	packedMu.Lock()
	defer packedMu.Unlock()
	if _, dup := packedByTag[tag]; dup {
		panic(fmt.Sprintf("wire: packed payload tag %d registered by both %v and %v", tag, packedTagOwner[tag], t))
	}
	if prev, dup := packedByType[t]; dup {
		panic(fmt.Sprintf("wire: packed payload type %v registered twice (tags %d and %d)", t, prev.tag, tag))
	}
	packedByTag[tag] = codec
	packedTagOwner[tag] = t
	packedByType[t] = packedEntry{tag: tag, codec: codec}
}

// packedFor returns the registry entry for payload's concrete type.
func packedFor(payload any) (packedEntry, bool) {
	e, ok := packedByType[reflect.TypeOf(payload)]
	return e, ok
}

// --- append-side primitives ---

// AppendUvarint appends v in unsigned varint encoding.
func AppendUvarint(dst []byte, v uint64) []byte {
	return binary.AppendUvarint(dst, v)
}

// AppendVarint appends v in zig-zag signed varint encoding.
func AppendVarint(dst []byte, v int64) []byte {
	return binary.AppendVarint(dst, v)
}

// AppendFloat64 appends v as 8 fixed big-endian bytes (IEEE 754 bits).
func AppendFloat64(dst []byte, v float64) []byte {
	return binary.BigEndian.AppendUint64(dst, math.Float64bits(v))
}

// AppendBool appends one byte: 1 for true, 0 for false.
func AppendBool(dst []byte, v bool) []byte {
	if v {
		return append(dst, 1)
	}
	return append(dst, 0)
}

// AppendString appends a uvarint byte length followed by the bytes.
func AppendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// AppendFloats appends a uvarint element count followed by each element as
// a fixed 8-byte word.
func AppendFloats(dst []byte, v []float64) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(v)))
	for _, f := range v {
		dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(f))
	}
	return dst
}

// AppendInts appends a uvarint element count followed by each element as a
// signed varint.
func AppendInts(dst []byte, v []int) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(v)))
	for _, i := range v {
		dst = binary.AppendVarint(dst, int64(i))
	}
	return dst
}

// --- decode-side primitives ---

// Reader walks a packed payload with a sticky error: after the first
// malformed field every further read returns the zero value, so codecs can
// decode straight through and check Done once at the end. Every length
// read off the wire is validated against the remaining bytes before any
// allocation, so a corrupt frame cannot make a decoder allocate
// unboundedly.
type Reader struct {
	data []byte
	off  int
	err  error
}

// NewReader returns a Reader over data. The returned value is intended to
// live on the caller's stack; take its address to call the read methods.
func NewReader(data []byte) Reader {
	return Reader{data: data}
}

// Err returns the first decoding error, if any.
func (r *Reader) Err() error { return r.err }

// Len returns the number of unread bytes.
func (r *Reader) Len() int { return len(r.data) - r.off }

// Failf poisons the reader with a formatted error (no-op if one is
// already recorded). Codecs use it to reject semantic violations the
// primitive reads cannot see, e.g. an element count exceeding the bytes
// that could possibly back it.
func (r *Reader) Failf(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf(format, args...)
	}
}

// Done returns the recorded error, or an error if unread bytes remain — a
// packed payload must consume its region exactly.
func (r *Reader) Done() error {
	if r.err != nil {
		return r.err
	}
	if n := r.Len(); n != 0 {
		return fmt.Errorf("wire: %d trailing bytes after packed payload", n)
	}
	return nil
}

// Bool reads one AppendBool byte.
func (r *Reader) Bool() bool {
	if r.err != nil {
		return false
	}
	if r.Len() < 1 {
		r.Failf("wire: truncated bool")
		return false
	}
	b := r.data[r.off]
	r.off++
	if b > 1 {
		r.Failf("wire: bool byte %d", b)
		return false
	}
	return b == 1
}

// Uvarint reads one AppendUvarint value.
func (r *Reader) Uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.data[r.off:])
	if n <= 0 {
		r.Failf("wire: truncated or overlong uvarint")
		return 0
	}
	r.off += n
	return v
}

// Varint reads one AppendVarint value.
func (r *Reader) Varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.data[r.off:])
	if n <= 0 {
		r.Failf("wire: truncated or overlong varint")
		return 0
	}
	r.off += n
	return v
}

// Float64 reads one AppendFloat64 value.
func (r *Reader) Float64() float64 {
	if r.err != nil {
		return 0
	}
	if r.Len() < 8 {
		r.Failf("wire: truncated float64")
		return 0
	}
	v := math.Float64frombits(binary.BigEndian.Uint64(r.data[r.off:]))
	r.off += 8
	return v
}

// String reads one AppendString value. The result is a copy, never an
// alias of the underlying buffer.
func (r *Reader) String() string {
	n := r.Uvarint()
	if r.err != nil {
		return ""
	}
	if n > uint64(r.Len()) {
		r.Failf("wire: string of %d bytes with %d remaining", n, r.Len())
		return ""
	}
	s := string(r.data[r.off : r.off+int(n)])
	r.off += int(n)
	return s
}

// Floats reads one AppendFloats value, nil for an empty count.
func (r *Reader) Floats() []float64 {
	n := r.Uvarint()
	if r.err != nil || n == 0 {
		return nil
	}
	if n > uint64(r.Len())/8 {
		r.Failf("wire: %d floats with %d bytes remaining", n, r.Len())
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.BigEndian.Uint64(r.data[r.off:]))
		r.off += 8
	}
	return out
}

// Ints reads one AppendInts value, nil for an empty count.
func (r *Reader) Ints() []int {
	n := r.Uvarint()
	if r.err != nil || n == 0 {
		return nil
	}
	if n > uint64(r.Len()) {
		r.Failf("wire: %d ints with %d bytes remaining", n, r.Len())
		return nil
	}
	out := make([]int, n)
	for i := range out {
		out[i] = int(r.Varint())
	}
	if r.err != nil {
		return nil
	}
	return out
}
