// Package wire estimates on-the-wire message sizes so the evaluation can
// account *bandwidth*, not just message counts. The paper's §IV-G argues
// MBR batching "reduces the communication overhead"; messages alone
// understate the claim (an MBR is bigger than a single feature vector but
// replaces beta of them), so the bandwidth ablation (A8 in DESIGN.md)
// measures bytes.
//
// Sizes come from actually serializing the payload with encoding/gob plus
// a fixed per-message header covering the routing envelope (kind, key,
// source, hop metadata). gob's self-describing type preamble is amortized
// away in a long-running connection, so Sizeof subtracts it by encoding
// two copies and measuring the marginal size of the second.
package wire

import (
	"bytes"
	"encoding/gob"
	"fmt"
)

// HeaderBytes models the routing envelope carried by every message:
// kind (1) + destination key (8) + source (8) + range bounds (16) +
// flags/hops (4) + virtual timestamp (8).
const HeaderBytes = 45

// Sizeof returns the estimated wire size in bytes of a message carrying
// the given payload: HeaderBytes plus the marginal gob encoding of the
// payload. A nil payload costs only the header. Payload types must be
// gob-encodable (exported fields); errors indicate a programming mistake
// and panic.
func Sizeof(payload any) int {
	if payload == nil {
		return HeaderBytes
	}
	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf)
	if err := enc.Encode(payload); err != nil {
		panic(fmt.Sprintf("wire: unencodable payload %T: %v", payload, err))
	}
	first := buf.Len() // includes the type descriptor preamble
	if err := enc.Encode(payload); err != nil {
		panic(fmt.Sprintf("wire: unencodable payload %T: %v", payload, err))
	}
	marginal := buf.Len() - first
	if marginal <= 0 {
		marginal = first // degenerate tiny payloads
	}
	return HeaderBytes + marginal
}
