// Package wire estimates on-the-wire message sizes so the evaluation can
// account *bandwidth*, not just message counts. The paper's §IV-G argues
// MBR batching "reduces the communication overhead"; messages alone
// understate the claim (an MBR is bigger than a single feature vector but
// replaces beta of them), so the bandwidth ablation (A8 in DESIGN.md)
// measures bytes.
//
// Sizes come from actually serializing the payload plus a fixed
// per-message header covering the routing envelope (kind, key, source, hop
// metadata). Payload types with a registered packed codec (wire codec v2,
// packed.go) are charged their exact packed encoding — one tag byte plus
// the hand-packed bytes, byte-for-byte what Marshal puts on a socket, so
// live and simulated byte accounting can never drift. Types without a
// codec fall back to gob, whose self-describing type preamble is amortized
// away in a long-running connection, so the fallback reports only the
// marginal value encoding.
//
// Sizeof sits on the simulator's message hot path (every middleware send
// stamps its wire size). The packed path encodes into a pooled scratch
// buffer, so steady state is allocation-free. The gob fallback keeps a
// pool of warmed encoders per concrete payload type: the type-descriptor
// preamble — by far the expensive part, a reflective walk of the type
// graph — is paid once per type instead of once per message. gob emits
// descriptors from the static type on an encoder's first Encode, so a
// warmed encoder produces exactly the marginal value bytes on every later
// Encode, and the reported sizes are identical to encoding two copies on a
// fresh encoder and measuring the second.
package wire

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"reflect"
	"sync"
)

// HeaderBytes models the routing envelope carried by every message:
// kind (1) + destination key (8) + source (8) + range bounds (16) +
// flags/hops (4) + virtual timestamp (8).
const HeaderBytes = 45

// sizer is one warmed encoder: its stream has already carried the type
// descriptors of its dedicated payload type, so each further Encode
// appends only the value bytes.
type sizer struct {
	buf bytes.Buffer
	enc *gob.Encoder
}

// sizers maps reflect.Type to a *sync.Pool of warmed *sizer values. A pool
// per type keeps concurrent simulations (the experiment harness fans whole
// runs out across goroutines) from contending on one encoder.
var sizers sync.Map

// scratchBuf is a pooled encode buffer for packed size measurement.
type scratchBuf struct {
	b []byte
}

var scratchPool = sync.Pool{New: func() any { return new(scratchBuf) }}

// Sizeof returns the wire size in bytes of a message carrying the given
// payload: HeaderBytes plus the payload encoding — exact (tag byte plus
// packed bytes, equal to len(Marshal(msg))) for types with a registered
// packed codec, the marginal gob encoding otherwise. A nil payload costs
// only the header. Fallback payload types must be gob-encodable (exported
// fields); errors indicate a programming mistake and panic.
func Sizeof(payload any) int {
	if payload == nil {
		return HeaderBytes
	}
	if e, ok := packedFor(payload); ok {
		sb := scratchPool.Get().(*scratchBuf)
		b, err := e.codec.Append(sb.b[:0], payload)
		if err != nil {
			panic(fmt.Sprintf("wire: unpackable payload %T: %v", payload, err))
		}
		n := len(b)
		sb.b = b
		scratchPool.Put(sb)
		return HeaderBytes + 1 + n // codec tag byte + packed payload
	}
	t := reflect.TypeOf(payload)
	pv, ok := sizers.Load(t)
	if !ok {
		pv, _ = sizers.LoadOrStore(t, &sync.Pool{})
	}
	pool := pv.(*sync.Pool)
	s, _ := pool.Get().(*sizer)
	if s == nil {
		s = &sizer{}
		s.enc = gob.NewEncoder(&s.buf)
		// First encode of this type on this stream: swallow the
		// descriptor preamble (plus one value copy) so later encodes
		// measure only the marginal bytes.
		if err := s.enc.Encode(payload); err != nil {
			panic(fmt.Sprintf("wire: unencodable payload %T: %v", payload, err))
		}
	}
	s.buf.Reset()
	if err := s.enc.Encode(payload); err != nil {
		panic(fmt.Sprintf("wire: unencodable payload %T: %v", payload, err))
	}
	marginal := s.buf.Len()
	pool.Put(s)
	if marginal <= 0 {
		// Defensive: gob always emits at least a length byte.
		marginal = 1
	}
	return HeaderBytes + marginal
}
