// Package wire estimates on-the-wire message sizes so the evaluation can
// account *bandwidth*, not just message counts. The paper's §IV-G argues
// MBR batching "reduces the communication overhead"; messages alone
// understate the claim (an MBR is bigger than a single feature vector but
// replaces beta of them), so the bandwidth ablation (A8 in DESIGN.md)
// measures bytes.
//
// Sizes come from actually serializing the payload with encoding/gob plus
// a fixed per-message header covering the routing envelope (kind, key,
// source, hop metadata). gob's self-describing type preamble is amortized
// away in a long-running connection, so Sizeof reports only the marginal
// value encoding.
//
// Sizeof sits on the simulator's message hot path (every middleware send
// stamps its wire size), so it keeps a pool of warmed encoders per concrete
// payload type: the type-descriptor preamble — by far the expensive part,
// a reflective walk of the type graph — is paid once per type instead of
// once per message. gob emits descriptors from the static type on an
// encoder's first Encode, so a warmed encoder produces exactly the marginal
// value bytes on every later Encode, and the reported sizes are identical
// to encoding two copies on a fresh encoder and measuring the second.
package wire

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"reflect"
	"sync"
)

// HeaderBytes models the routing envelope carried by every message:
// kind (1) + destination key (8) + source (8) + range bounds (16) +
// flags/hops (4) + virtual timestamp (8).
const HeaderBytes = 45

// sizer is one warmed encoder: its stream has already carried the type
// descriptors of its dedicated payload type, so each further Encode
// appends only the value bytes.
type sizer struct {
	buf bytes.Buffer
	enc *gob.Encoder
}

// sizers maps reflect.Type to a *sync.Pool of warmed *sizer values. A pool
// per type keeps concurrent simulations (the experiment harness fans whole
// runs out across goroutines) from contending on one encoder.
var sizers sync.Map

// Sizeof returns the estimated wire size in bytes of a message carrying
// the given payload: HeaderBytes plus the marginal gob encoding of the
// payload. A nil payload costs only the header. Payload types must be
// gob-encodable (exported fields); errors indicate a programming mistake
// and panic.
func Sizeof(payload any) int {
	if payload == nil {
		return HeaderBytes
	}
	t := reflect.TypeOf(payload)
	pv, ok := sizers.Load(t)
	if !ok {
		pv, _ = sizers.LoadOrStore(t, &sync.Pool{})
	}
	pool := pv.(*sync.Pool)
	s, _ := pool.Get().(*sizer)
	if s == nil {
		s = &sizer{}
		s.enc = gob.NewEncoder(&s.buf)
		// First encode of this type on this stream: swallow the
		// descriptor preamble (plus one value copy) so later encodes
		// measure only the marginal bytes.
		if err := s.enc.Encode(payload); err != nil {
			panic(fmt.Sprintf("wire: unencodable payload %T: %v", payload, err))
		}
	}
	s.buf.Reset()
	if err := s.enc.Encode(payload); err != nil {
		panic(fmt.Sprintf("wire: unencodable payload %T: %v", payload, err))
	}
	marginal := s.buf.Len()
	pool.Put(s)
	if marginal <= 0 {
		// Defensive: gob always emits at least a length byte.
		marginal = 1
	}
	return HeaderBytes + marginal
}
