// Gob-vs-packed codec comparison. The gob baseline reproduces what PR 2
// shipped on the live data path: a fresh gob.Encoder/Decoder per message,
// which re-serializes the type descriptors with every payload — exactly
// the tax codec v2 removes. Run with:
//
//	go test -run '^$' -bench 'Marshal|Sizeof' -benchmem ./internal/wire
package wire_test

import (
	"bytes"
	"encoding/gob"
	"testing"

	"streamdex/internal/dht"
	"streamdex/internal/wire"
)

// gobBox mirrors the codec's internal payload box: gob encodes the dynamic
// payload type through one interface-typed field. Used here to measure the
// per-message cost of the retired gob payload path.
type gobBox struct {
	P any
}

// payloadCases returns the round-trip fixtures that actually carry a
// payload (the envelope-only frame would dilute a payload-codec
// comparison).
func payloadCases() []*dht.Message {
	var out []*dht.Message
	for _, m := range roundTripCases() {
		if m.Payload != nil {
			out = append(out, m)
		}
	}
	return out
}

// BenchmarkMarshalPacked measures the full live encode path — envelope +
// packed payload — into a reused buffer, i.e. the transport's steady
// state. Expect 0 allocs/op.
func BenchmarkMarshalPacked(b *testing.B) {
	cases := payloadCases()
	dst := make([]byte, 0, 4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, msg := range cases {
			var err error
			dst, err = wire.AppendMarshal(dst[:0], msg)
			if err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkMarshalGob is the PR 2 baseline for the same messages: envelope
// by hand, payload through a fresh gob encoder per message.
func BenchmarkMarshalGob(b *testing.B) {
	cases := payloadCases()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, msg := range cases {
			var buf bytes.Buffer
			buf.Grow(wire.HeaderBytes + 64)
			buf.Write(make([]byte, wire.HeaderBytes)) // envelope stand-in
			if err := gob.NewEncoder(&buf).Encode(gobBox{P: msg.Payload}); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkUnmarshalPacked measures the full live decode path over packed
// frames of every payload kind.
func BenchmarkUnmarshalPacked(b *testing.B) {
	var frames [][]byte
	for _, msg := range payloadCases() {
		frame, err := wire.Marshal(msg)
		if err != nil {
			b.Fatal(err)
		}
		frames = append(frames, frame)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, frame := range frames {
			if _, err := wire.Unmarshal(frame); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkUnmarshalGob is the PR 2 decode baseline: a fresh gob decoder
// per message over gob-encoded payload bodies.
func BenchmarkUnmarshalGob(b *testing.B) {
	var bodies [][]byte
	for _, msg := range payloadCases() {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(gobBox{P: msg.Payload}); err != nil {
			b.Fatal(err)
		}
		bodies = append(bodies, buf.Bytes())
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, body := range bodies {
			var box gobBox
			if err := gob.NewDecoder(bytes.NewReader(body)).Decode(&box); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkSizeofPacked measures the simulator's per-send sizing cost for
// a packed payload (pooled scratch encode; 0 allocs/op).
func BenchmarkSizeofPacked(b *testing.B) {
	p := payloadCases()[0].Payload
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wire.Sizeof(p)
	}
}
