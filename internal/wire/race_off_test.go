//go:build !race

package wire_test

// raceEnabled reports whether the race detector is active. Pool-backed
// zero-alloc guards are skipped under -race: the runtime deliberately
// randomizes sync.Pool hits there to widen race coverage, so pooled
// paths allocate nondeterministically.
const raceEnabled = false
