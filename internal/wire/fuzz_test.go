package wire_test

import (
	"bytes"
	"testing"

	"streamdex/internal/dht"
	"streamdex/internal/wire"
)

// FuzzUnmarshal hammers the frame decoder — envelope parsing, the packed
// payload codecs behind every registered tag, and the gob fallback — with
// mutated frames. The corpus seeds cover all nine middleware payload kinds
// and the ring-control payloads of every routing machine — the seven Chord
// types and the nine Koorde types, including all three de Bruijn walk
// phases of a KFindReq and the chain-probe piggyback of KStabReq/Resp —
// (via roundTripCases) plus the Mode==3 split-leg extension in all three
// walk phases and malformed shapes, so the fuzzer starts from every
// codec's happy path and mutates from there.
//
// Properties checked on any input the decoder accepts:
//   - re-marshalling the decoded message succeeds (a decoded message is
//     always encodable; Hops saturation is the one lossy envelope field,
//     and decoded values are always within range),
//   - decode∘encode is idempotent at the byte level after the first
//     normalization: re-marshalling the re-decoded frame reproduces it
//     bit for bit (byte comparison rather than DeepEqual so NaN float
//     payloads — whose bit patterns the codec preserves exactly — don't
//     trip NaN != NaN),
//   - the reported Bytes equals the frame length.
//
// Anything else must return an error — never panic, never over-allocate
// (the Reader validates every wire length against the remaining bytes
// before allocating).
func FuzzUnmarshal(f *testing.F) {
	for _, msg := range roundTripCases() {
		frame, err := wire.Marshal(msg)
		if err != nil {
			f.Fatalf("seed Marshal(kind %d): %v", msg.Kind, err)
		}
		f.Add(frame)
	}
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, wire.HeaderBytes+3))
	f.Add(make([]byte, wire.HeaderBytes-1))
	// A split leg with its extension truncated: the Mode==3 error path.
	splitFrame, err := wire.Marshal(&dht.Message{
		Kind: 240, Key: 5, Src: 2, RangeStart: 1, RangeEnd: 9,
		HasRange: true, Mode: dht.RangeTree, Split: true, SplitImg: 7, SplitShift: 3,
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(splitFrame[:wire.HeaderBytes+4])

	f.Fuzz(func(t *testing.T, frame []byte) {
		msg, err := wire.Unmarshal(frame)
		if err != nil {
			return // rejected is fine; panics and runaway allocs are not
		}
		if msg.Bytes != len(frame) {
			t.Fatalf("decoded Bytes=%d from a %d-byte frame", msg.Bytes, len(frame))
		}
		again, err := wire.Marshal(msg)
		if err != nil {
			t.Fatalf("re-marshal of accepted frame failed: %v", err)
		}
		msg2, err := wire.Unmarshal(again)
		if err != nil {
			t.Fatalf("re-unmarshal of re-marshalled frame failed: %v", err)
		}
		// The re-marshalled frame can differ from the original (a gob
		// original shrinks once its payload type has a packed codec), but
		// from the first re-marshal on, the frame is a fixed point.
		final, err := wire.Marshal(msg2)
		if err != nil {
			t.Fatalf("marshal of re-decoded message failed: %v", err)
		}
		if !bytes.Equal(again, final) {
			t.Fatalf("decode∘encode not idempotent:\nfirst  %x\nsecond %x", again, final)
		}
	})
}
