package wire_test

import (
	"testing"

	"streamdex/internal/wire"
)

// TestPackedSizeParity pins the invariant the bandwidth evaluation rests
// on: for every registered payload kind, the byte count the simulator is
// charged (wire.Sizeof, stamped on every middleware send) equals the byte
// count a live socket carries (len of the Marshal frame, which receivers
// recompute as Bytes). With the packed codecs this holds exactly — not via
// gob's marginal-encoding approximation — so live-vs-sim byte accounting
// can never silently drift.
func TestPackedSizeParity(t *testing.T) {
	for _, msg := range roundTripCases() {
		frame, err := wire.Marshal(msg)
		if err != nil {
			t.Fatalf("Marshal(kind %d): %v", msg.Kind, err)
		}
		got := wire.Sizeof(msg.Payload)
		if msg.Split {
			// Sizeof measures envelope + payload only; a split leg also
			// carries the walk-state extension, which receivers charge via
			// len(frame). Senders accounting from Sizeof must add it too.
			got += wire.SplitExtBytes
		}
		if want := len(frame); got != want {
			t.Errorf("kind %d payload %T: Sizeof charges %d B, live frame is %d B",
				msg.Kind, msg.Payload, got, want)
		}
	}
}

// TestAppendMarshalMatchesMarshal guards the two encode entry points
// against drifting apart: the pooled-buffer path the transport uses must
// produce byte-identical frames to the allocating one.
func TestAppendMarshalMatchesMarshal(t *testing.T) {
	for _, msg := range roundTripCases() {
		frame, err := wire.Marshal(msg)
		if err != nil {
			t.Fatalf("Marshal(kind %d): %v", msg.Kind, err)
		}
		appended, err := wire.AppendMarshal(make([]byte, 0, 16), msg)
		if err != nil {
			t.Fatalf("AppendMarshal(kind %d): %v", msg.Kind, err)
		}
		if string(frame) != string(appended) {
			t.Errorf("kind %d: Marshal and AppendMarshal frames differ", msg.Kind)
		}
	}
}
