package wire_test

import (
	"strings"
	"testing"

	"streamdex/internal/wire"
)

// Throwaway payload types for registry collision tests. High tags keep
// them clear of the real protocol allocations (core 1-15 data kinds use
// tags 1-9 and 23-29, ring control 16-22).
type packedProbeA struct{ X int }

type packedProbeB struct{ Y int }

type probeCodec struct{}

func (probeCodec) Append(dst []byte, payload any) ([]byte, error) { return dst, nil }
func (probeCodec) Decode(data []byte) (any, error)                { return packedProbeA{}, nil }

// TestRegisterPackedPayloadDuplicateTagNamesBoth: a tag collision is a
// cross-package coordination bug, so the panic must identify both
// claimants — the type already holding the tag and the type trying to
// take it — not just the tag number.
func TestRegisterPackedPayloadDuplicateTagNamesBoth(t *testing.T) {
	wire.RegisterPackedPayload(200, packedProbeA{}, probeCodec{})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("duplicate tag registration did not panic")
		}
		msg, ok := r.(string)
		if !ok {
			t.Fatalf("panic value %T, want string", r)
		}
		for _, want := range []string{"200", "packedProbeA", "packedProbeB"} {
			if !strings.Contains(msg, want) {
				t.Errorf("panic %q does not name %q", msg, want)
			}
		}
	}()
	wire.RegisterPackedPayload(200, packedProbeB{}, probeCodec{})
}

// TestRegisterPackedPayloadDuplicateTypePanics: re-registering the same
// concrete type under a different tag is equally a bug; the panic names
// the type and both tags.
func TestRegisterPackedPayloadDuplicateTypePanics(t *testing.T) {
	wire.RegisterPackedPayload(210, packedProbeB{}, probeCodec{})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("duplicate type registration did not panic")
		}
		msg, _ := r.(string)
		for _, want := range []string{"packedProbeB", "210", "211"} {
			if !strings.Contains(msg, want) {
				t.Errorf("panic %q does not name %q", msg, want)
			}
		}
	}()
	wire.RegisterPackedPayload(211, packedProbeB{}, probeCodec{})
}
