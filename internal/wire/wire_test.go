package wire

import (
	"testing"

	"streamdex/internal/summary"
)

type smallPayload struct {
	A int
	B string
}

type vectorPayload struct {
	Values []float64
}

func TestNilPayloadCostsHeaderOnly(t *testing.T) {
	if got := Sizeof(nil); got != HeaderBytes {
		t.Fatalf("Sizeof(nil) = %d, want %d", got, HeaderBytes)
	}
}

func TestSizeofGrowsWithContent(t *testing.T) {
	small := Sizeof(vectorPayload{Values: make([]float64, 3)})
	big := Sizeof(vectorPayload{Values: make([]float64, 100)})
	if big <= small {
		t.Fatalf("100 floats (%d B) not bigger than 3 floats (%d B)", big, small)
	}
	// 97 extra float64s should cost roughly 8 bytes each (gob packs
	// small-magnitude floats tighter; zeros compress to 1 byte).
	if big-small < 90 {
		t.Fatalf("marginal cost %d B for 97 extra floats", big-small)
	}
}

func TestSizeofDeterministic(t *testing.T) {
	p := smallPayload{A: 42, B: "hello"}
	if Sizeof(p) != Sizeof(p) {
		t.Fatal("Sizeof not deterministic")
	}
}

func TestSizeofMBRPayload(t *testing.T) {
	// An MBR's wire size must not depend on how many feature vectors it
	// aggregated — only two corner points travel. That is the §IV-G
	// saving.
	mk := func(count int) *summary.MBR {
		b := summary.NewMBR("stream-1", 7, summary.Feature{0.1, 0.2, 0.3})
		for i := 1; i < count; i++ {
			b.Extend(summary.Feature{0.1, 0.2, 0.3})
		}
		return b
	}
	s1 := Sizeof(mk(1))
	s50 := Sizeof(mk(50))
	if s1 != s50 {
		t.Fatalf("MBR size depends on batch count: %d vs %d", s1, s50)
	}
	if s1 <= HeaderBytes {
		t.Fatalf("MBR payload size %d suspiciously small", s1)
	}
}

func TestSizeofUnencodablePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unencodable payload")
		}
	}()
	Sizeof(func() {}) // functions cannot be gob-encoded
}
