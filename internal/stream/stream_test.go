package stream

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"streamdex/internal/sim"
)

func TestStreamValidate(t *testing.T) {
	gen := GeneratorFunc(func() float64 { return 1 })
	cases := []struct {
		s  Stream
		ok bool
	}{
		{Stream{ID: "s", Gen: gen, Period: sim.Second}, true},
		{Stream{ID: "", Gen: gen, Period: sim.Second}, false},
		{Stream{ID: "s", Gen: nil, Period: sim.Second}, false},
		{Stream{ID: "s", Gen: gen, Period: 0}, false},
	}
	for i, c := range cases {
		if err := c.s.Validate(); (err == nil) != c.ok {
			t.Errorf("case %d: Validate() = %v, ok=%v", i, err, c.ok)
		}
	}
}

func TestRandomWalkBounded(t *testing.T) {
	rng := sim.NewRand(1)
	w := NewRandomWalk(rng, 500, 10, 0, 1000)
	for i := 0; i < 100_000; i++ {
		v := w.Next()
		if v < 0 || v > 1000 {
			t.Fatalf("value %v escaped [0,1000] at step %d", v, i)
		}
	}
}

func TestRandomWalkStepBound(t *testing.T) {
	rng := sim.NewRand(2)
	w := NewRandomWalk(rng, 500, 1, 0, 1000)
	prev := w.Next()
	for i := 0; i < 10_000; i++ {
		v := w.Next()
		if math.Abs(v-prev) > 1+1e-12 {
			t.Fatalf("step %v exceeds bound 1", math.Abs(v-prev))
		}
		prev = v
	}
}

func TestRandomWalkValidation(t *testing.T) {
	rng := sim.NewRand(3)
	for _, fn := range []func(){
		func() { NewRandomWalk(rng, 0, 1, 5, 3) },   // hi <= lo
		func() { NewRandomWalk(rng, 0, 0, 0, 10) },  // step <= 0
		func() { NewRandomWalk(rng, 50, 1, 0, 10) }, // start outside
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestRandomWalkDeterministic(t *testing.T) {
	a := DefaultRandomWalk(sim.NewRand(7))
	b := DefaultRandomWalk(sim.NewRand(7))
	for i := 0; i < 100; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed produced different walks")
		}
	}
}

func TestHostLoadSmoothness(t *testing.T) {
	// The host-load trace must be smooth: the lag-1 autocorrelation of a
	// long sample should be very high, the property Fig. 3(b)'s locality
	// claim rests on.
	rng := sim.NewRand(4)
	h := DefaultHostLoad(rng)
	n := 20000
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = h.Next()
	}
	if autocorr1(xs) < 0.95 {
		t.Fatalf("lag-1 autocorrelation %.3f, want > 0.95", autocorr1(xs))
	}
	for _, v := range xs {
		if v < 0 {
			t.Fatal("host load went negative")
		}
	}
}

func autocorr1(xs []float64) float64 {
	n := len(xs)
	var mean float64
	for _, v := range xs {
		mean += v
	}
	mean /= float64(n)
	var num, den float64
	for i := 0; i < n-1; i++ {
		num += (xs[i] - mean) * (xs[i+1] - mean)
	}
	for _, v := range xs {
		den += (v - mean) * (v - mean)
	}
	return num / den
}

func TestHostLoadValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for phi >= 1")
		}
	}()
	NewHostLoad(sim.NewRand(1), 1.0, 0.1, 0.01)
}

func TestSinePeriodicity(t *testing.T) {
	s := NewSine(nil, 2, 32, 5, 0)
	first := make([]float64, 32)
	for i := range first {
		first[i] = s.Next()
	}
	for i := 0; i < 32; i++ {
		if math.Abs(s.Next()-first[i]) > 1e-9 {
			t.Fatalf("sine not periodic at sample %d", i)
		}
	}
	// Mean offset and amplitude.
	var lo, hi float64 = math.Inf(1), math.Inf(-1)
	for _, v := range first {
		lo, hi = math.Min(lo, v), math.Max(hi, v)
	}
	if math.Abs(hi-7) > 1e-6 || math.Abs(lo-3) > 1e-6 {
		t.Fatalf("sine range [%v,%v], want [3,7]", lo, hi)
	}
}

func TestRecordRoundTrip(t *testing.T) {
	rec := Record{Date: "19970812", Ticker: "INTC", Open: 95.5, High: 97.25, Low: 94.75, Close: 96.875, Volume: 12345678}
	parsed, err := ParseRecord(rec.String())
	if err != nil {
		t.Fatal(err)
	}
	if parsed != rec {
		t.Fatalf("round trip: %+v != %+v", parsed, rec)
	}
}

func TestParseRecordErrors(t *testing.T) {
	bad := []string{
		"19970812,INTC,95.5,97.25,94.75,96.875",          // 6 fields
		"19970812,INTC,xx,97.25,94.75,96.875,100",        // bad float
		"19970812,INTC,95.5,97.25,94.75,96.875,notanint", // bad volume
		"19970812,INTC,95.5,90.0,94.75,96.875,100",       // high < low
	}
	for _, line := range bad {
		if _, err := ParseRecord(line); err == nil {
			t.Errorf("ParseRecord(%q) succeeded, want error", line)
		}
	}
}

func TestWriteReadRecords(t *testing.T) {
	m := NewMarket(sim.NewRand(5), []string{"AAA", "BBB", "CCC"})
	recs := m.Generate(30)
	var buf bytes.Buffer
	if err := WriteRecords(&buf, recs); err != nil {
		t.Fatal(err)
	}
	back, err := ReadRecords(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(recs) {
		t.Fatalf("read %d records, wrote %d", len(back), len(recs))
	}
	for i := range recs {
		if back[i].Ticker != recs[i].Ticker || math.Abs(back[i].Close-recs[i].Close) > 1e-3 {
			t.Fatalf("record %d mismatch: %+v vs %+v", i, back[i], recs[i])
		}
	}
}

func TestReadRecordsSkipsCommentsAndBlanks(t *testing.T) {
	input := "# header\n\n19970812,INTC,95.5,97.25,94.75,96.875,100\n"
	recs, err := ReadRecords(strings.NewReader(input))
	if err != nil || len(recs) != 1 {
		t.Fatalf("recs=%v err=%v", recs, err)
	}
}

func TestClosesFiltersAndSorts(t *testing.T) {
	recs := []Record{
		{Date: "19970103", Ticker: "A", Close: 3, High: 1, Low: 0},
		{Date: "19970101", Ticker: "A", Close: 1, High: 1, Low: 0},
		{Date: "19970102", Ticker: "B", Close: 9, High: 1, Low: 0},
		{Date: "19970102", Ticker: "A", Close: 2, High: 1, Low: 0},
	}
	got := Closes(recs, "A")
	want := []float64{1, 2, 3}
	if len(got) != 3 || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Fatalf("Closes = %v, want %v", got, want)
	}
}

func TestMarketRecordsWellFormed(t *testing.T) {
	m := NewMarket(sim.NewRand(6), []string{"X", "Y"})
	f := func(daysRaw uint8) bool {
		days := int(daysRaw)%20 + 1
		for _, r := range m.Generate(days) {
			if r.High < r.Low || r.High < r.Close || r.Low > r.Close ||
				r.High < r.Open || r.Low > r.Open || r.Volume <= 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestMarketCorrelationStructure(t *testing.T) {
	// Stocks driven by the same market factor must correlate positively;
	// their correlation should clearly exceed what an idiosyncratic pair
	// of independent walks would show.
	m := NewMarket(sim.NewRand(8), []string{"A", "B"})
	days := 2000
	a := make([]float64, days)
	b := make([]float64, days)
	ga, gb := m.CloseGenerator(0), m.CloseGenerator(1)
	for i := 0; i < days; i++ {
		a[i] = ga.Next()
		b[i] = gb.Next()
	}
	// Correlate daily log returns.
	ra, rb := logReturns(a), logReturns(b)
	if c := corr(ra, rb); c < 0.3 {
		t.Fatalf("return correlation %.3f, want > 0.3 (shared market factor)", c)
	}
}

func logReturns(p []float64) []float64 {
	out := make([]float64, len(p)-1)
	for i := 1; i < len(p); i++ {
		out[i-1] = math.Log(p[i] / p[i-1])
	}
	return out
}

func corr(a, b []float64) float64 {
	n := float64(len(a))
	var ma, mb float64
	for i := range a {
		ma += a[i]
		mb += b[i]
	}
	ma, mb = ma/n, mb/n
	var num, da, db float64
	for i := range a {
		num += (a[i] - ma) * (b[i] - mb)
		da += (a[i] - ma) * (a[i] - ma)
		db += (b[i] - mb) * (b[i] - mb)
	}
	return num / math.Sqrt(da*db)
}

func TestCloseGeneratorsShareHistory(t *testing.T) {
	m := NewMarket(sim.NewRand(9), []string{"A", "B"})
	ga := m.CloseGenerator(0)
	// Run A far ahead, then read B: B must replay the same days.
	aVals := make([]float64, 10)
	for i := range aVals {
		aVals[i] = ga.Next()
	}
	gb := m.CloseGenerator(1)
	_ = gb.Next() // day 0 for B
	ga2 := m.CloseGenerator(0)
	for i := range aVals {
		if got := ga2.Next(); got != aVals[i] {
			t.Fatalf("history replay mismatch at day %d: %v vs %v", i, got, aVals[i])
		}
	}
}

func TestTradingDateFormat(t *testing.T) {
	if got := tradingDate(0); got != "19970101" {
		t.Fatalf("tradingDate(0) = %s", got)
	}
	if got := tradingDate(360); got != "19980101" {
		t.Fatalf("tradingDate(360) = %s", got)
	}
	m := NewMarket(sim.NewRand(10), []string{"A"})
	prev := ""
	for d := 0; d < 400; d++ {
		rec := m.Step()[0]
		if rec.Date <= prev {
			t.Fatalf("dates not strictly increasing: %s after %s", rec.Date, prev)
		}
		prev = rec.Date
	}
}
