// Package stream implements the paper's stream data model (§III-A) and the
// workload data sources of the evaluation (§V):
//
//   - bounded-range sliding-window streams,
//   - the synthetic random-walk generator ("the value at time t equals
//     x_{t-1} + delta with delta uniform"),
//   - an S&P500-style historical stock series generator plus a reader and
//     writer for the record layout the paper describes (date, ticker, open,
//     high, low, close, volume — one record per line),
//   - a CMU Host-Load-style trace generator used to demonstrate "Fourier
//     locality" (Fig. 3(b)).
//
// Real S&P500 files and the 1997 CMU host-load traces are not shipped with
// this reproduction; the generators synthesize statistically similar series
// that exercise the identical code paths (see DESIGN.md §5).
package stream

import (
	"fmt"
	"math"

	"streamdex/internal/sim"
)

// Generator produces successive stream values.
type Generator interface {
	// Next returns the next data point of the stream.
	Next() float64
}

// GeneratorFunc adapts a function to the Generator interface.
type GeneratorFunc func() float64

// Next calls f.
func (f GeneratorFunc) Next() float64 { return f() }

// Stream describes one registered data stream: an identifier, a value
// source and the period at which the source emits. In the evaluation each
// node is the source of exactly one stream and "a stream is simulated as a
// periodic process such that the period for each stream is chosen randomly
// in the range of 150-250 ms" (§V).
type Stream struct {
	ID     string
	Gen    Generator
	Period sim.Time
	// Prefill, when true, primes the registering data center's sliding
	// window with one window's worth of history drawn from Gen at
	// registration time — modelling a stream that existed before the
	// middleware was deployed, so summaries flow from the first period.
	Prefill bool
}

// Validate reports a configuration error, if any.
func (s *Stream) Validate() error {
	if s.ID == "" {
		return fmt.Errorf("stream: empty id")
	}
	if s.Gen == nil {
		return fmt.Errorf("stream %s: nil generator", s.ID)
	}
	if s.Period <= 0 {
		return fmt.Errorf("stream %s: non-positive period %v", s.ID, s.Period)
	}
	return nil
}

// RandomWalk is the paper's synthetic stream model: x_t = x_{t-1} + delta
// with delta uniform in [-step, +step], clamped to the bounded range
// [Lo, Hi] required by the data model of §III-A.
type RandomWalk struct {
	rng    *sim.Rand
	x      float64
	step   float64
	lo, hi float64
}

// NewRandomWalk creates a bounded random walk starting at start.
func NewRandomWalk(rng *sim.Rand, start, step, lo, hi float64) *RandomWalk {
	if hi <= lo {
		panic("stream: random walk with hi <= lo")
	}
	if step <= 0 {
		panic("stream: random walk with non-positive step")
	}
	if start < lo || start > hi {
		panic("stream: random walk start outside bounds")
	}
	return &RandomWalk{rng: rng, x: start, step: step, lo: lo, hi: hi}
}

// DefaultRandomWalk matches the evaluation's synthetic data: values start
// mid-range in [0, 1000] and move by uniform steps in [-1, 1].
func DefaultRandomWalk(rng *sim.Rand) *RandomWalk {
	return NewRandomWalk(rng, 500, 1, 0, 1000)
}

// Next implements Generator.
func (w *RandomWalk) Next() float64 {
	w.x += w.rng.Uniform(-w.step, w.step)
	if w.x < w.lo {
		w.x = 2*w.lo - w.x // reflect at the boundary
	}
	if w.x > w.hi {
		w.x = 2*w.hi - w.x
	}
	return w.x
}

// HostLoad generates a CPU-load-like trace: a mean-reverting AR(1) process
// with occasional regime shifts, mimicking the smooth-with-bursts character
// of the CMU host-load traces used for Fig. 3(b). Values are non-negative.
type HostLoad struct {
	rng   *sim.Rand
	level float64 // current regime mean
	x     float64
	phi   float64 // AR coefficient, close to 1 -> smooth
	noise float64
	shift float64 // per-step probability of a regime change
}

// NewHostLoad creates a host-load generator. phi in (0,1) controls
// smoothness; shiftProb is the per-step regime-change probability.
func NewHostLoad(rng *sim.Rand, phi, noise, shiftProb float64) *HostLoad {
	if phi <= 0 || phi >= 1 {
		panic("stream: host load phi outside (0,1)")
	}
	return &HostLoad{rng: rng, level: 1.0, x: 1.0, phi: phi, noise: noise, shift: shiftProb}
}

// DefaultHostLoad uses the smoothness regime under which consecutive
// feature vectors exhibit the strong temporal correlation of Fig. 3(b).
func DefaultHostLoad(rng *sim.Rand) *HostLoad {
	return NewHostLoad(rng, 0.98, 0.05, 0.002)
}

// Next implements Generator.
func (h *HostLoad) Next() float64 {
	if h.rng.Float64() < h.shift {
		h.level = h.rng.Uniform(0.2, 4.0)
	}
	h.x = h.phi*h.x + (1-h.phi)*h.level + h.rng.NormFloat64()*h.noise
	if h.x < 0 {
		h.x = 0
	}
	return h.x
}

// Sine generates a deterministic sinusoid with additive noise — the planted
// pattern used by integration tests and the sensor examples.
type Sine struct {
	rng              *sim.Rand
	t                int
	Amp, Period, Off float64
	Noise            float64
	Phase            float64
}

// NewSine creates a sinusoid generator with period in samples.
func NewSine(rng *sim.Rand, amp, period, offset, noise float64) *Sine {
	if period <= 0 {
		panic("stream: sine with non-positive period")
	}
	return &Sine{rng: rng, Amp: amp, Period: period, Off: offset, Noise: noise}
}

// Next implements Generator.
func (s *Sine) Next() float64 {
	v := s.Off + s.Amp*math.Sin(2*math.Pi*(float64(s.t)/s.Period)+s.Phase)
	s.t++
	if s.Noise > 0 && s.rng != nil {
		v += s.rng.NormFloat64() * s.Noise
	}
	return v
}
