package stream

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"

	"streamdex/internal/sim"
)

// S&P500-style stock data (paper §V).
//
// "S&P500 Stock Exchange Historical Data consists of data for different
// stocks. The file for a single stock contains one record per line of text
// corresponding to the data for that date. The record is arranged into
// fields representing the date, ticker, open, high, low, close, and volume
// for that day."
//
// The original archive is no longer available, so this package both
// generates statistically similar series (correlated geometric random
// walks, so correlation queries have real structure to find) and implements
// the record layout itself with a writer and parser, making file-based
// workflows work end to end.

// Record is one daily quote line.
type Record struct {
	Date   string // YYYYMMDD
	Ticker string
	Open   float64
	High   float64
	Low    float64
	Close  float64
	Volume int64
}

// String renders the record in the historical one-line format.
func (r Record) String() string {
	return fmt.Sprintf("%s,%s,%.4f,%.4f,%.4f,%.4f,%d",
		r.Date, r.Ticker, r.Open, r.High, r.Low, r.Close, r.Volume)
}

// ParseRecord parses one line of the stock file format.
func ParseRecord(line string) (Record, error) {
	fields := strings.Split(strings.TrimSpace(line), ",")
	if len(fields) != 7 {
		return Record{}, fmt.Errorf("stock record: %d fields, want 7: %q", len(fields), line)
	}
	var r Record
	r.Date = fields[0]
	r.Ticker = fields[1]
	var err error
	parse := func(i int) float64 {
		if err != nil {
			return 0
		}
		var v float64
		v, err = strconv.ParseFloat(fields[i], 64)
		return v
	}
	r.Open, r.High, r.Low, r.Close = parse(2), parse(3), parse(4), parse(5)
	if err == nil {
		r.Volume, err = strconv.ParseInt(fields[6], 10, 64)
	}
	if err != nil {
		return Record{}, fmt.Errorf("stock record %q: %v", line, err)
	}
	if r.High < r.Low {
		return Record{}, fmt.Errorf("stock record %q: high < low", line)
	}
	return r, nil
}

// WriteRecords writes records one per line.
func WriteRecords(w io.Writer, recs []Record) error {
	bw := bufio.NewWriter(w)
	for _, r := range recs {
		if _, err := fmt.Fprintln(bw, r.String()); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadRecords parses a whole stock file.
func ReadRecords(r io.Reader) ([]Record, error) {
	sc := bufio.NewScanner(r)
	var out []Record
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		rec, err := ParseRecord(line)
		if err != nil {
			return nil, err
		}
		out = append(out, rec)
	}
	return out, sc.Err()
}

// Closes extracts the closing-price series of one ticker in date order —
// the signal the examples and benchmarks index ("average closing price of
// Intel for the last month" is the paper's first motivating query).
func Closes(recs []Record, ticker string) []float64 {
	var mine []Record
	for _, r := range recs {
		if r.Ticker == ticker {
			mine = append(mine, r)
		}
	}
	sort.Slice(mine, func(i, j int) bool { return mine[i].Date < mine[j].Date })
	out := make([]float64, len(mine))
	for i, r := range mine {
		out[i] = r.Close
	}
	return out
}

// Market generates correlated daily series for a set of tickers. Each
// stock's log-return is beta * market_return + idiosyncratic noise, so
// pairs of stocks with similar betas genuinely correlate — giving the
// paper's correlation queries ("find all pairs of companies whose closing
// prices over the last month correlate within a threshold") structure to
// detect.
type Market struct {
	rng     *sim.Rand
	tickers []string
	beta    []float64
	price   []float64
	volBase []float64
	sigmaM  float64 // market volatility per day
	sigmaI  float64 // idiosyncratic volatility per day
	day     int
	// history caches per-day closing prices for CloseGenerator replay.
	history [][]float64
}

// NewMarket creates a market of len(tickers) stocks.
func NewMarket(rng *sim.Rand, tickers []string) *Market {
	if len(tickers) == 0 {
		panic("stream: market with no tickers")
	}
	m := &Market{
		rng:     rng,
		tickers: append([]string(nil), tickers...),
		beta:    make([]float64, len(tickers)),
		price:   make([]float64, len(tickers)),
		volBase: make([]float64, len(tickers)),
		sigmaM:  0.01,
		sigmaI:  0.008,
	}
	for i := range tickers {
		m.beta[i] = rng.Uniform(0.4, 1.6)
		m.price[i] = rng.Uniform(20, 300)
		m.volBase[i] = rng.Uniform(1e5, 5e6)
	}
	return m
}

// Step advances one trading day and returns the day's records.
func (m *Market) Step() []Record {
	marketRet := m.rng.NormFloat64() * m.sigmaM
	recs := make([]Record, len(m.tickers))
	date := tradingDate(m.day)
	for i := range m.tickers {
		ret := m.beta[i]*marketRet + m.rng.NormFloat64()*m.sigmaI
		open := m.price[i]
		close := open * math.Exp(ret)
		hi := math.Max(open, close) * (1 + math.Abs(m.rng.NormFloat64())*0.004)
		lo := math.Min(open, close) * (1 - math.Abs(m.rng.NormFloat64())*0.004)
		recs[i] = Record{
			Date:   date,
			Ticker: m.tickers[i],
			Open:   open,
			High:   hi,
			Low:    lo,
			Close:  close,
			Volume: int64(m.volBase[i] * (1 + math.Abs(ret)*50)),
		}
		m.price[i] = close
	}
	m.day++
	return recs
}

// Generate produces days' worth of records for all tickers.
func (m *Market) Generate(days int) []Record {
	out := make([]Record, 0, days*len(m.tickers))
	for d := 0; d < days; d++ {
		out = append(out, m.Step()...)
	}
	return out
}

// CloseGenerator returns a Generator producing the closing-price stream of
// ticker index i. All generators of one Market share its day history: a
// generator that runs ahead advances the market lazily, and the others
// replay the same days, so cross-ticker correlation is preserved no matter
// how the middleware interleaves the streams.
func (m *Market) CloseGenerator(i int) Generator {
	if i < 0 || i >= len(m.tickers) {
		panic("stream: ticker index out of range")
	}
	cursor := 0
	return GeneratorFunc(func() float64 {
		for cursor >= len(m.history) {
			recs := m.Step()
			closes := make([]float64, len(recs))
			for j, r := range recs {
				closes[j] = r.Close
			}
			m.history = append(m.history, closes)
		}
		v := m.history[cursor][i]
		cursor++
		return v
	})
}

// Tickers returns the market's ticker symbols.
func (m *Market) Tickers() []string {
	return append([]string(nil), m.tickers...)
}

// Beta returns the market sensitivity of ticker index i (exposed so tests
// can pick genuinely correlated pairs).
func (m *Market) Beta(i int) float64 { return m.beta[i] }

// tradingDate formats day counter d as a synthetic YYYYMMDD date starting
// 1997-01-01, skipping nothing (calendar realism is irrelevant to the
// index).
func tradingDate(d int) string {
	year := 1997 + d/360
	month := (d%360)/30 + 1
	day := d%30 + 1
	return fmt.Sprintf("%04d%02d%02d", year, month, day)
}
