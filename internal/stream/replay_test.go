package stream

import (
	"bytes"
	"strings"
	"testing"

	"streamdex/internal/sim"
)

func TestReplayHoldsLastValue(t *testing.T) {
	r := NewReplay([]float64{1, 2, 3}, false)
	got := []float64{r.Next(), r.Next(), r.Next(), r.Next(), r.Next()}
	want := []float64{1, 2, 3, 3, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestReplayLoops(t *testing.T) {
	r := NewReplay([]float64{1, 2}, true)
	got := []float64{r.Next(), r.Next(), r.Next(), r.Next()}
	want := []float64{1, 2, 1, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	if r.Len() != 2 {
		t.Fatalf("Len = %d", r.Len())
	}
}

func TestReplayEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewReplay(nil, false)
}

func TestSeriesRoundTrip(t *testing.T) {
	vals := []float64{1.5, -2.25, 0, 1e6}
	var buf bytes.Buffer
	if err := WriteSeries(&buf, vals); err != nil {
		t.Fatal(err)
	}
	back, err := ReadSeries(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(vals) {
		t.Fatalf("read %d values", len(back))
	}
	for i := range vals {
		if back[i] != vals[i] {
			t.Fatalf("value %d: %v != %v", i, back[i], vals[i])
		}
	}
}

func TestReadSeriesSkipsCommentsAndErrors(t *testing.T) {
	good := "# header\n\n1.0\n2.0\n"
	vals, err := ReadSeries(strings.NewReader(good))
	if err != nil || len(vals) != 2 {
		t.Fatalf("vals=%v err=%v", vals, err)
	}
	if _, err := ReadSeries(strings.NewReader("abc\n")); err == nil {
		t.Fatal("bad line accepted")
	}
	if _, err := ReadSeries(strings.NewReader("# only comments\n")); err == nil {
		t.Fatal("empty trace accepted")
	}
}

func TestReplayCloses(t *testing.T) {
	m := NewMarket(sim.NewRand(1), []string{"A", "B"})
	recs := m.Generate(5)
	r, err := ReplayCloses(recs, "B")
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 5 {
		t.Fatalf("Len = %d", r.Len())
	}
	if _, err := ReplayCloses(recs, "ZZZ"); err == nil {
		t.Fatal("unknown ticker accepted")
	}
}

func TestReplayThroughTracegenFormat(t *testing.T) {
	// End-to-end: generate a host-load trace in the tracegen format,
	// read it back, and replay it.
	g := DefaultHostLoad(sim.NewRand(9))
	orig := make([]float64, 100)
	for i := range orig {
		orig[i] = g.Next()
	}
	var buf bytes.Buffer
	if err := WriteSeries(&buf, orig); err != nil {
		t.Fatal(err)
	}
	vals, err := ReadSeries(&buf)
	if err != nil {
		t.Fatal(err)
	}
	r := NewReplay(vals, true)
	for i := 0; i < 100; i++ {
		if got := r.Next(); got < orig[i]-1e-6 || got > orig[i]+1e-6 {
			t.Fatalf("replay diverged at %d: %v vs %v", i, got, orig[i])
		}
	}
}
