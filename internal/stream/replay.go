package stream

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Replay generators feed recorded traces through the indexing pipeline —
// the counterpart of cmd/tracegen, closing the loop for users who want to
// index their own datasets (or the real S&P500 / CMU host-load files the
// paper used, once obtained).

// Replay replays a fixed series. After the series is exhausted it either
// loops (Loop true) or holds the last value forever, so a stream never
// runs dry mid-simulation.
type Replay struct {
	values []float64
	pos    int
	Loop   bool
}

// NewReplay creates a replay generator over a copy of values.
func NewReplay(values []float64, loop bool) *Replay {
	if len(values) == 0 {
		panic("stream: replay of empty series")
	}
	return &Replay{values: append([]float64(nil), values...), Loop: loop}
}

// Len returns the length of the underlying series.
func (r *Replay) Len() int { return len(r.values) }

// Next implements Generator.
func (r *Replay) Next() float64 {
	v := r.values[r.pos]
	if r.pos < len(r.values)-1 {
		r.pos++
	} else if r.Loop {
		r.pos = 0
	}
	return v
}

// ReadSeries parses a one-value-per-line trace (the tracegen hostload/walk
// format). Blank lines and '#' comments are skipped.
func ReadSeries(rd io.Reader) ([]float64, error) {
	sc := bufio.NewScanner(rd)
	var out []float64
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		v, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return nil, fmt.Errorf("stream: trace line %d: %v", line, err)
		}
		out = append(out, v)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("stream: empty trace")
	}
	return out, nil
}

// WriteSeries writes a one-value-per-line trace.
func WriteSeries(w io.Writer, values []float64) error {
	bw := bufio.NewWriter(w)
	for _, v := range values {
		if _, err := fmt.Fprintf(bw, "%.6f\n", v); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReplayCloses builds a replay generator over a ticker's closing prices
// from parsed stock records (see ReadRecords), looping so the simulated
// stream never ends.
func ReplayCloses(recs []Record, ticker string) (*Replay, error) {
	closes := Closes(recs, ticker)
	if len(closes) == 0 {
		return nil, fmt.Errorf("stream: no records for ticker %q", ticker)
	}
	return NewReplay(closes, true), nil
}
