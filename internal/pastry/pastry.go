// Package pastry implements a second content-based routing substrate — a
// simplified, Pastry-style prefix-routing overlay (Rowstron & Druschel,
// Middleware 2001) — behind the same dht.Substrate interface as package
// chord.
//
// The paper stresses that its middleware "relies on the standard
// distributed hashing table interface ... rather than on a particular
// implementation" and "can use virtually any P2P routing protocol" (CAN,
// Chord, Pastry, Tapestry). This package substantiates that claim: the
// complete middleware, workload and experiment stack runs unmodified on
// top of it (see the cross-substrate tests and the substrate-comparison
// ablation).
//
// Protocol sketch:
//
//   - Identifiers are interpreted as strings of base-2^b digits (b = 4,
//     hexadecimal).
//   - Each node keeps a routing table with one row per digit position:
//     row r holds, for every digit value d, some node that shares the
//     first r digits with the local node and has digit d at position r.
//   - Each node also keeps a leaf set: the L/2 closest ring successors and
//     L/2 closest predecessors, which both terminates routing exactly and
//     provides the neighbor primitives the range multicast needs.
//   - Routing to key k: if the local node covers k (successor-interval
//     semantics, so the middleware sees identical delivery rules on both
//     substrates), deliver; if k's successor lies within the leaf set,
//     hand over directly; otherwise forward along the routing-table entry
//     matching one more digit of k — falling back to the numerically
//     closest known node that still makes prefix progress.
//
// Routing therefore takes O(log_{2^b} N) hops — fewer, fatter strides than
// Chord's O(log2 N) fingers, which is exactly the contrast the substrate-
// comparison ablation measures. This implementation models a static
// deployment (BuildStable only): full membership dynamics live in package
// chord, which remains the reference substrate.
package pastry

import (
	"fmt"
	"sort"

	"streamdex/internal/clock"
	"streamdex/internal/dht"
	"streamdex/internal/sim"
)

// digitBits is b: identifiers are strings of base-2^b digits.
const digitBits = 4

// Config parameterizes the overlay.
type Config struct {
	// Space is the identifier universe (must match the middleware's).
	Space dht.Space
	// HopDelay is the per-hop network latency (50 ms in the evaluation).
	HopDelay sim.Time
	// LeafSize is the total leaf-set size; half on each ring side.
	LeafSize int
}

// DefaultConfig mirrors the evaluation's Chord configuration.
func DefaultConfig() Config {
	return Config{Space: dht.NewSpace(32), HopDelay: 50 * sim.Millisecond, LeafSize: 16}
}

// node is one overlay member.
type node struct {
	id  dht.Key
	net *Network
	app dht.App

	// succs/preds are the leaf set halves, nearest first.
	succs []dht.Key
	preds []dht.Key

	// table[r][d] is a node sharing r digits with id whose digit r is d;
	// zero value with ok=false means empty.
	table [][]tableEntry
}

type tableEntry struct {
	id dht.Key
	ok bool
}

// Network is the simulated overlay. It implements dht.Substrate.
type Network struct {
	clk   clock.Clock
	cfg   Config
	space dht.Space

	nodes  map[dht.Key]*node
	sorted []dht.Key

	obs dht.Observer

	dropped int64
	digits  int // number of digit positions = ceil(M / digitBits)
}

// New creates an empty overlay.
func New(eng *sim.Engine, cfg Config) *Network {
	if cfg.Space.M == 0 {
		panic("pastry: config without identifier space")
	}
	if cfg.LeafSize < 2 {
		cfg.LeafSize = 16
	}
	digits := (int(cfg.Space.M) + digitBits - 1) / digitBits
	return &Network{
		clk:    clock.Virtual(eng),
		cfg:    cfg,
		space:  cfg.Space,
		nodes:  make(map[dht.Key]*node),
		obs:    dht.NopObserver{},
		digits: digits,
	}
}

// BuildStable creates the overlay with perfect leaf sets and routing
// tables for the given identifiers.
func (net *Network) BuildStable(ids []dht.Key, apps []dht.App) {
	if len(ids) == 0 {
		panic("pastry: BuildStable with no nodes")
	}
	for i, id := range ids {
		id = net.space.Wrap(id)
		if _, dup := net.nodes[id]; dup {
			panic(fmt.Sprintf("pastry: duplicate node id %d", id))
		}
		var app dht.App = dht.AppFunc(func(dht.Key, *dht.Message) {})
		if apps != nil && apps[i] != nil {
			app = apps[i]
		}
		net.nodes[id] = &node{id: id, net: net, app: app}
		net.sorted = append(net.sorted, id)
	}
	sort.Slice(net.sorted, func(i, j int) bool { return net.sorted[i] < net.sorted[j] })
	for _, id := range net.sorted {
		net.wire(net.nodes[id])
	}
}

// wire fills a node's leaf set and routing table from global knowledge
// (the static-deployment equivalent of Pastry's join protocol).
func (net *Network) wire(n *node) {
	ring := net.sorted
	sz := len(ring)
	pos := sort.SearchInts(asInts(ring), int(n.id))
	half := net.cfg.LeafSize / 2
	n.succs = n.succs[:0]
	n.preds = n.preds[:0]
	for k := 1; k <= half && k < sz; k++ {
		n.succs = append(n.succs, ring[(pos+k)%sz])
		n.preds = append(n.preds, ring[(pos-k+sz)%sz])
	}
	// Routing table: for each prefix length r and digit d, pick the
	// ring-closest qualifying node (a deterministic stand-in for
	// Pastry's proximity heuristic).
	n.table = make([][]tableEntry, net.digits)
	for r := 0; r < net.digits; r++ {
		n.table[r] = make([]tableEntry, 1<<digitBits)
	}
	for _, other := range ring {
		if other == n.id {
			continue
		}
		r := net.sharedDigits(n.id, other)
		d := net.digit(other, r)
		e := &n.table[r][d]
		if !e.ok || net.space.Distance(n.id, other) < net.space.Distance(n.id, e.id) {
			e.id, e.ok = other, true
		}
	}
}

func asInts(ks []dht.Key) []int {
	out := make([]int, len(ks))
	for i, k := range ks {
		out[i] = int(k)
	}
	return out
}

// digit returns the r-th base-2^b digit of k, counting from the most
// significant end of the m-bit identifier.
func (net *Network) digit(k dht.Key, r int) int {
	shift := int(net.space.M) - (r+1)*digitBits
	if shift < 0 {
		// Final partial digit for M not divisible by digitBits.
		return int(k << uint(-shift) & (1<<digitBits - 1))
	}
	return int(k >> uint(shift) & (1<<digitBits - 1))
}

// sharedDigits returns the length of the common digit prefix of a and b.
func (net *Network) sharedDigits(a, b dht.Key) int {
	for r := 0; r < net.digits; r++ {
		if net.digit(a, r) != net.digit(b, r) {
			return r
		}
	}
	return net.digits
}

// --- dht.Substrate --------------------------------------------------------

// Space implements dht.Network.
func (net *Network) Space() dht.Space { return net.space }

// Clock implements dht.Substrate.
func (net *Network) Clock() clock.Clock { return net.clk }

// SetApp implements dht.Substrate.
func (net *Network) SetApp(id dht.Key, app dht.App) {
	n := net.nodes[id]
	if n == nil {
		panic(fmt.Sprintf("pastry: SetApp on unknown node %d", id))
	}
	n.app = app
}

// SetObserver implements dht.Substrate.
func (net *Network) SetObserver(o dht.Observer) {
	if o == nil {
		net.obs = dht.NopObserver{}
		return
	}
	net.obs = o
}

// NodeIDs implements dht.Substrate.
func (net *Network) NodeIDs() []dht.Key {
	out := make([]dht.Key, len(net.sorted))
	copy(out, net.sorted)
	return out
}

// Alive implements dht.Substrate (static overlay: every node is up).
func (net *Network) Alive(id dht.Key) bool {
	_, ok := net.nodes[id]
	return ok
}

// Dropped implements dht.Substrate.
func (net *Network) Dropped() int64 { return net.dropped }

// Covers implements dht.Network: successor-interval semantics, identical
// to Chord's, so the middleware behaves the same on both substrates.
func (net *Network) Covers(id dht.Key, key dht.Key) bool {
	n := net.nodes[id]
	if n == nil {
		return false
	}
	return n.covers(net.space.Wrap(key))
}

func (n *node) covers(key dht.Key) bool {
	if len(n.preds) == 0 {
		return true // single-node overlay
	}
	return n.net.space.BetweenIncl(key, n.preds[0], n.id)
}

// Send implements dht.Network.
func (net *Network) Send(from dht.Key, key dht.Key, msg *dht.Message) {
	msg.Src = from
	msg.Key = net.space.Wrap(key)
	msg.Hops = 0
	msg.SentAt = net.clk.Now()
	net.process(from, msg)
}

// Forward implements dht.Network.
func (net *Network) Forward(from dht.Key, key dht.Key, msg *dht.Message) {
	msg.Key = net.space.Wrap(key)
	net.process(from, msg)
}

// process executes one routing step at node `at`.
func (net *Network) process(at dht.Key, msg *dht.Message) {
	n := net.nodes[at]
	if n == nil {
		net.dropped++
		return
	}
	if n.covers(msg.Key) {
		net.obs.OnDeliver(at, msg)
		n.app.Deliver(at, msg)
		return
	}
	next, ok := n.nextHop(msg.Key)
	if !ok || next == at {
		net.dropped++
		return
	}
	net.transmit(at, next, msg, true)
}

// nextHop picks the forwarding target per the Pastry routing rule.
func (n *node) nextHop(key dht.Key) (dht.Key, bool) {
	sp := n.net.space
	// Leaf-set handover: if key's successor lies within the leaf arc,
	// route to it directly. The leaf set spans (preds[last], succs[last]]
	// around us.
	if len(n.succs) > 0 {
		// Is key covered by one of our successors?
		prev := n.id
		for _, s := range n.succs {
			if sp.BetweenIncl(key, prev, s) {
				return s, true
			}
			prev = s
		}
		// Or by us/our predecessor chain? covers() said no for us, so
		// check each predecessor's interval.
		if len(n.preds) > 0 {
			for i := 0; i < len(n.preds)-1; i++ {
				if sp.BetweenIncl(key, n.preds[i+1], n.preds[i]) {
					return n.preds[i], true
				}
			}
		}
	}
	// Prefix routing: the entry that extends the shared prefix by one
	// digit.
	r := n.net.sharedDigits(n.id, key)
	if r < n.net.digits {
		if e := n.table[r][n.net.digit(key, r)]; e.ok {
			return e.id, true
		}
	}
	// Rare fallback: among all known nodes, pick one strictly closer to
	// the key (numerically, on the ring) than we are; guarantees
	// progress like Pastry's rule.
	best, found := dht.Key(0), false
	myDist := ringAbs(sp, n.id, key)
	consider := func(c dht.Key) {
		if d := ringAbs(sp, c, key); d < myDist {
			if !found || d < ringAbs(sp, best, key) {
				best, found = c, true
			}
		}
	}
	for _, s := range n.succs {
		consider(s)
	}
	for _, p := range n.preds {
		consider(p)
	}
	for _, row := range n.table {
		for _, e := range row {
			if e.ok {
				consider(e.id)
			}
		}
	}
	return best, found
}

// ringAbs is the minimal circular distance between a and b.
func ringAbs(sp dht.Space, a, b dht.Key) uint64 {
	d1 := sp.Distance(a, b)
	d2 := sp.Distance(b, a)
	if d1 < d2 {
		return d1
	}
	return d2
}

// transmit delivers msg to `to` after the hop delay.
func (net *Network) transmit(from, to dht.Key, msg *dht.Message, route bool) {
	net.clk.Schedule(net.cfg.HopDelay, func() {
		n := net.nodes[to]
		if n == nil {
			net.dropped++
			return
		}
		msg.Hops++
		net.obs.OnTransmit(from, to, msg)
		if route {
			net.process(to, msg)
			return
		}
		net.obs.OnDeliver(to, msg)
		n.app.Deliver(to, msg)
	})
}

// SendToSuccessor implements dht.Network using the leaf set.
func (net *Network) SendToSuccessor(from dht.Key, msg *dht.Message) {
	n := net.nodes[from]
	if n == nil || len(n.succs) == 0 {
		net.dropped++
		return
	}
	net.transmit(from, n.succs[0], msg, false)
}

// SendToPredecessor implements dht.Network using the leaf set.
func (net *Network) SendToPredecessor(from dht.Key, msg *dht.Message) {
	n := net.nodes[from]
	if n == nil || len(n.preds) == 0 {
		net.dropped++
		return
	}
	net.transmit(from, n.preds[0], msg, false)
}

// OracleSuccessor returns the true successor of key (test oracle).
func (net *Network) OracleSuccessor(key dht.Key) (dht.Key, bool) {
	if len(net.sorted) == 0 {
		return 0, false
	}
	key = net.space.Wrap(key)
	i := sort.Search(len(net.sorted), func(i int) bool { return net.sorted[i] >= key })
	if i == len(net.sorted) {
		i = 0
	}
	return net.sorted[i], true
}

// Compile-time interface check.
var _ dht.Substrate = (*Network)(nil)

// DelegateRange implements dht.RangeDelegator: the same finger-tree range
// dissemination chord provides, built from the routing table and leaf set.
// Long-range table entries inside the remaining arc split it into subtrees,
// so wide-range multicast completes in logarithmic depth here too.
func (net *Network) DelegateRange(self dht.Key, msg *dht.Message) int {
	n := net.nodes[self]
	if n == nil {
		net.dropped++
		return 0
	}
	hi := msg.RangeEnd
	seen := make(map[dht.Key]bool)
	var kids []dht.Key
	consider := func(c dht.Key) {
		if c == self || seen[c] {
			return
		}
		if !net.space.BetweenIncl(c, self, hi) {
			return
		}
		seen[c] = true
		kids = append(kids, c)
	}
	for _, row := range n.table {
		for _, e := range row {
			if e.ok {
				consider(e.id)
			}
		}
	}
	for _, s := range n.succs {
		consider(s)
	}
	if len(kids) == 0 {
		if !msg.RangeTail {
			return 0
		}
		c := msg.Clone()
		c.Dir = +1
		net.SendToSuccessor(self, c)
		return 1
	}
	sort.Slice(kids, func(i, j int) bool {
		return net.space.Distance(self, kids[i]) < net.space.Distance(self, kids[j])
	})
	for j, kid := range kids {
		c := msg.Clone()
		c.Dir = +1
		if j+1 < len(kids) {
			c.RangeEnd = net.space.Add(kids[j+1], net.space.Size()-1)
			c.RangeTail = false
		}
		net.transmit(self, kid, c, false)
	}
	return len(kids)
}

// Compile-time check.
var _ dht.RangeDelegator = (*Network)(nil)
