package pastry

import (
	"math"
	"testing"
	"testing/quick"

	"streamdex/internal/chord"
	"streamdex/internal/dht"
	"streamdex/internal/sim"
)

func buildNet(t testing.TB, n int, m uint) (*sim.Engine, *Network, []dht.Key) {
	t.Helper()
	eng := sim.NewEngine()
	cfg := Config{Space: dht.NewSpace(m), HopDelay: sim.Millisecond, LeafSize: 8}
	net := New(eng, cfg)
	ids := chord.SortKeys(chord.UniformIDs(cfg.Space, n))
	net.BuildStable(ids, nil)
	return eng, net, ids
}

func TestDigits(t *testing.T) {
	net := New(sim.NewEngine(), Config{Space: dht.NewSpace(16), HopDelay: 0, LeafSize: 4})
	// 0xABCD: digits A, B, C, D from the most significant end.
	k := dht.Key(0xABCD)
	want := []int{0xA, 0xB, 0xC, 0xD}
	for r, w := range want {
		if got := net.digit(k, r); got != w {
			t.Fatalf("digit(%x, %d) = %x, want %x", k, r, got, w)
		}
	}
	if got := net.sharedDigits(0xABCD, 0xAB12); got != 2 {
		t.Fatalf("sharedDigits = %d, want 2", got)
	}
	if got := net.sharedDigits(0xABCD, 0xABCD); got != 4 {
		t.Fatalf("sharedDigits(self) = %d, want 4", got)
	}
}

func TestDigitsNonMultipleWidth(t *testing.T) {
	// m = 10: digits are 4+4+2 bits.
	net := New(sim.NewEngine(), Config{Space: dht.NewSpace(10), HopDelay: 0, LeafSize: 4})
	if net.digits != 3 {
		t.Fatalf("digits = %d, want 3", net.digits)
	}
	k := dht.Key(0b10_1100_0111) // 10 bits
	if got := net.digit(k, 0); got != 0b1011 {
		t.Fatalf("digit 0 = %b", got)
	}
	if got := net.digit(k, 1); got != 0b0001 {
		t.Fatalf("digit 1 = %b", got)
	}
}

func TestRoutingMatchesOracle(t *testing.T) {
	eng, net, ids := buildNet(t, 64, 16)
	delivered := map[dht.Key]dht.Key{}
	for _, id := range ids {
		net.SetApp(id, dht.AppFunc(func(self dht.Key, msg *dht.Message) {
			delivered[msg.Key] = self
		}))
	}
	rng := sim.NewRand(3)
	keys := make([]dht.Key, 400)
	for i := range keys {
		keys[i] = dht.Key(rng.Int63()) & net.Space().Mask()
		net.Send(ids[rng.Intn(len(ids))], keys[i], &dht.Message{})
	}
	eng.Run()
	for _, k := range keys {
		want, _ := net.OracleSuccessor(k)
		if delivered[k] != want {
			t.Fatalf("key %d delivered at %d, oracle %d", k, delivered[k], want)
		}
	}
	if net.Dropped() != 0 {
		t.Fatalf("dropped %d messages", net.Dropped())
	}
}

func TestRoutingMatchesOracleQuick(t *testing.T) {
	eng, net, ids := buildNet(t, 40, 20)
	var at dht.Key
	for _, id := range ids {
		net.SetApp(id, dht.AppFunc(func(self dht.Key, msg *dht.Message) { at = self }))
	}
	rng := sim.NewRand(4)
	f := func(raw uint32) bool {
		key := dht.Key(raw) & net.Space().Mask()
		net.Send(ids[rng.Intn(len(ids))], key, &dht.Message{})
		eng.Run()
		want, _ := net.OracleSuccessor(key)
		return at == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPrefixRoutingHopBound(t *testing.T) {
	// Pastry routes in O(log_16 N) hops: for 256 nodes that is ~2, far
	// below Chord's ~4. Allow slack for fallback steps.
	eng, net, ids := buildNet(t, 256, 32)
	var total, count int
	for _, id := range ids {
		net.SetApp(id, dht.AppFunc(func(self dht.Key, msg *dht.Message) {
			total += msg.Hops
			count++
		}))
	}
	rng := sim.NewRand(5)
	for i := 0; i < 1500; i++ {
		net.Send(ids[rng.Intn(len(ids))], dht.Key(rng.Int63())&net.Space().Mask(), &dht.Message{})
	}
	eng.Run()
	avg := float64(total) / float64(count)
	if avg > 3.5 {
		t.Fatalf("average hops = %.2f, want <= 3.5 (prefix routing, log16 256 = 2)", avg)
	}
	if avg < 0.5 {
		t.Fatalf("average hops = %.2f suspiciously low", avg)
	}
	if math.IsNaN(avg) {
		t.Fatal("no deliveries")
	}
}

func TestLeafNeighborPrimitives(t *testing.T) {
	eng, net, ids := buildNet(t, 16, 16)
	// The successor/predecessor of ids[3] on the sorted ring.
	var succAt, predAt dht.Key
	for _, id := range ids {
		id := id
		net.SetApp(id, dht.AppFunc(func(self dht.Key, msg *dht.Message) {
			switch msg.Kind {
			case 1:
				succAt = self
			case 2:
				predAt = self
			}
		}))
	}
	net.SendToSuccessor(ids[3], &dht.Message{Kind: 1})
	net.SendToPredecessor(ids[3], &dht.Message{Kind: 2})
	eng.Run()
	if succAt != ids[4] {
		t.Fatalf("successor send landed at %d, want %d", succAt, ids[4])
	}
	if predAt != ids[2] {
		t.Fatalf("predecessor send landed at %d, want %d", predAt, ids[2])
	}
}

func TestRangeMulticastOnPastry(t *testing.T) {
	eng, net, ids := buildNet(t, 32, 16)
	visited := map[dht.Key]int{}
	for _, id := range ids {
		net.SetApp(id, dht.AppFunc(func(self dht.Key, msg *dht.Message) {
			visited[self]++
			dht.ContinueRange(net, self, msg)
		}))
	}
	lo, hi := ids[5], ids[12]
	for _, mode := range []dht.RangeMode{dht.RangeSequential, dht.RangeBidirectional} {
		for k := range visited {
			delete(visited, k)
		}
		dht.SendRange(net, ids[0], lo, hi, &dht.Message{}, mode)
		eng.Run()
		if len(visited) != 8 { // ids[5..12]
			t.Fatalf("%v: visited %d nodes, want 8", mode, len(visited))
		}
		for id, c := range visited {
			if c != 1 {
				t.Fatalf("%v: node %d delivered %d times", mode, id, c)
			}
		}
	}
}

func TestCoversSemanticsMatchChord(t *testing.T) {
	// Both substrates must agree on which node covers a key.
	eng := sim.NewEngine()
	space := dht.NewSpace(16)
	ids := chord.SortKeys(chord.UniformIDs(space, 24))
	p := New(eng, Config{Space: space, HopDelay: 0, LeafSize: 8})
	p.BuildStable(ids, nil)
	c := chord.New(sim.NewEngine(), chord.Config{Space: space, HopDelay: 0, SuccListLen: 4})
	c.BuildStable(ids, nil)
	rng := sim.NewRand(6)
	for i := 0; i < 2000; i++ {
		key := dht.Key(rng.Int63()) & space.Mask()
		for _, id := range ids {
			if p.Covers(id, key) != c.Covers(id, key) {
				t.Fatalf("covers(%d, %d) disagrees between substrates", id, key)
			}
		}
	}
}

func TestObserverAndDrops(t *testing.T) {
	eng, net, ids := buildNet(t, 8, 16)
	trans := 0
	net.SetObserver(obsFunc{onT: func() { trans++ }})
	net.Send(ids[0], ids[4], &dht.Message{})
	eng.Run()
	if trans == 0 {
		t.Fatal("no transmissions observed")
	}
	// Sending from an unknown node drops.
	net.Send(12345, 0, &dht.Message{})
	eng.Run()
	if net.Dropped() == 0 {
		t.Fatal("expected a dropped message")
	}
}

type obsFunc struct{ onT func() }

func (o obsFunc) OnTransmit(from, to dht.Key, msg *dht.Message) { o.onT() }
func (o obsFunc) OnDeliver(at dht.Key, msg *dht.Message)        {}

func TestValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for empty space")
		}
	}()
	New(sim.NewEngine(), Config{})
}

func TestDuplicateIDPanics(t *testing.T) {
	eng := sim.NewEngine()
	net := New(eng, Config{Space: dht.NewSpace(8), HopDelay: 0, LeafSize: 4})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for duplicate id")
		}
	}()
	net.BuildStable([]dht.Key{5, 5}, nil)
}

func TestSingleNodeOverlay(t *testing.T) {
	eng := sim.NewEngine()
	net := New(eng, Config{Space: dht.NewSpace(8), HopDelay: 0, LeafSize: 4})
	net.BuildStable([]dht.Key{42}, nil)
	got := 0
	net.SetApp(42, dht.AppFunc(func(dht.Key, *dht.Message) { got++ }))
	for k := 0; k < 20; k++ {
		net.Send(42, dht.Key(k*13), &dht.Message{})
	}
	eng.Run()
	if got != 20 {
		t.Fatalf("delivered %d of 20", got)
	}
}

func TestTreeMulticastOnPastry(t *testing.T) {
	eng, net, ids := buildNet(t, 64, 20)
	visited := map[dht.Key]int{}
	for _, id := range ids {
		net.SetApp(id, dht.AppFunc(func(self dht.Key, msg *dht.Message) {
			visited[self]++
			dht.ContinueRange(net, self, msg)
		}))
	}
	dht.SendRange(net, ids[0], ids[8], ids[40], &dht.Message{}, dht.RangeTree)
	eng.Run()
	if len(visited) != 33 {
		t.Fatalf("tree multicast visited %d nodes, want 33", len(visited))
	}
	for id, c := range visited {
		if c != 1 {
			t.Fatalf("node %d delivered %d times", id, c)
		}
	}
}

func TestTreeFasterThanSequentialOnPastry(t *testing.T) {
	cfg := Config{Space: dht.NewSpace(20), HopDelay: 50 * sim.Millisecond, LeafSize: 8}
	ids := chord.SortKeys(chord.UniformIDs(cfg.Space, 128))
	run := func(mode dht.RangeMode) sim.Time {
		eng := sim.NewEngine()
		net := New(eng, cfg)
		net.BuildStable(ids, nil)
		var last sim.Time
		for _, id := range ids {
			net.SetApp(id, dht.AppFunc(func(self dht.Key, msg *dht.Message) {
				last = eng.Now()
				dht.ContinueRange(net, self, msg)
			}))
		}
		dht.SendRange(net, ids[0], ids[16], ids[79], &dht.Message{}, mode)
		eng.Run()
		return last
	}
	seq := run(dht.RangeSequential)
	tree := run(dht.RangeTree)
	if float64(tree) > 0.4*float64(seq) {
		t.Fatalf("pastry tree %v vs sequential %v: expected large speedup", tree, seq)
	}
}
