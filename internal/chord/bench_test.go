package chord

import (
	"testing"

	"streamdex/internal/dht"
	"streamdex/internal/sim"
)

// Micro-benchmarks for the routing substrate: ring construction, lookups
// and message routing throughput at evaluation scale.

func benchNet(b *testing.B, n int) (*sim.Engine, *Network, []dht.Key) {
	b.Helper()
	eng := sim.NewEngine()
	cfg := Config{Space: dht.NewSpace(32), HopDelay: 50 * sim.Millisecond, SuccListLen: 8}
	net := New(eng, cfg)
	ids := SortKeys(UniformIDs(cfg.Space, n))
	net.BuildStable(ids, nil)
	return eng, net, ids
}

func BenchmarkBuildStable500(b *testing.B) {
	cfg := Config{Space: dht.NewSpace(32), HopDelay: 50 * sim.Millisecond, SuccListLen: 8}
	ids := SortKeys(UniformIDs(cfg.Space, 500))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net := New(sim.NewEngine(), cfg)
		net.BuildStable(ids, nil)
	}
}

func BenchmarkLookup500(b *testing.B) {
	_, net, ids := benchNet(b, 500)
	rng := sim.NewRand(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		from := ids[rng.Intn(len(ids))]
		key := dht.Key(rng.Int63()) & net.Space().Mask()
		if _, ok := net.Lookup(from, key); !ok {
			b.Fatal("lookup failed")
		}
	}
}

func BenchmarkRouteMessage500(b *testing.B) {
	eng, net, ids := benchNet(b, 500)
	rng := sim.NewRand(2)
	delivered := 0
	for _, id := range ids {
		net.SetApp(id, dht.AppFunc(func(dht.Key, *dht.Message) { delivered++ }))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		from := ids[rng.Intn(len(ids))]
		key := dht.Key(rng.Int63()) & net.Space().Mask()
		net.Send(from, key, &dht.Message{})
	}
	eng.Run()
	if delivered != b.N {
		b.Fatalf("delivered %d of %d", delivered, b.N)
	}
}

func BenchmarkRangeMulticast64Nodes(b *testing.B) {
	space := dht.NewSpace(20)
	ids := EquidistantIDs(space, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng := sim.NewEngine()
		net := New(eng, Config{Space: space, HopDelay: sim.Millisecond, SuccListLen: 4})
		net.BuildStable(ids, nil)
		for _, id := range ids {
			net.SetApp(id, dht.AppFunc(func(self dht.Key, msg *dht.Message) {
				dht.ContinueRange(net, self, msg)
			}))
		}
		dht.SendRange(net, ids[0], ids[64], ids[127], &dht.Message{}, dht.RangeSequential)
		eng.Run()
	}
}

func BenchmarkStabilizationRound(b *testing.B) {
	eng := sim.NewEngine()
	cfg := Config{
		Space: dht.NewSpace(32), HopDelay: 50 * sim.Millisecond, SuccListLen: 8,
		StabilizeEvery: 500 * sim.Millisecond, FixFingersEvery: 250 * sim.Millisecond,
	}
	net := New(eng, cfg)
	net.BuildStable(SortKeys(UniformIDs(cfg.Space, 200)), nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.RunFor(500 * sim.Millisecond) // one full maintenance round for all nodes
	}
}
