package chord

import (
	"fmt"
	"testing"

	"streamdex/internal/dht"
	// Register the Koorde machine so Config.Machine can name it.
	_ "streamdex/internal/koorde"
	"streamdex/internal/sim"
)

// splitMachines are the registered ring machines the delegation
// regression cases run under. On Chord the tree mode splits over
// fingers; on Koorde wide arcs leave as routed split legs
// (overlay.ArcSplitter), so the same assertions exercise both paths.
var splitMachines = []string{"chord", "koorde"}

// splitModes are the multicast strategies every case runs: the
// sequential successor walk and the tree dissemination whose Koorde
// variant performs the de Bruijn-aware arc split.
var splitModes = []dht.RangeMode{dht.RangeSequential, dht.RangeTree}

// splitRing builds a warm 128-node ring on the named machine — large
// enough that a wide arc clears the Koorde split threshold (estimated
// nodes > 2x the successor list).
func splitRing(t *testing.T, machine string) (*sim.Engine, *Network, []dht.Key) {
	t.Helper()
	eng := sim.NewEngine()
	cfg := Config{Space: dht.NewSpace(16), HopDelay: 50 * sim.Millisecond, SuccListLen: 8, Machine: machine}
	net := New(eng, cfg)
	ids := SortKeys(UniformIDs(cfg.Space, 128))
	net.BuildStable(ids, nil)
	return eng, net, ids
}

// oracleCoverSet returns the exact membership-oracle answer to "which
// nodes cover a key in [lo, hi]": the owner of lo plus every identifier
// on the arc (lo, hi].
func oracleCoverSet(net *Network, ids []dht.Key, lo, hi dht.Key) map[dht.Key]bool {
	want := map[dht.Key]bool{}
	if o, ok := net.OracleSuccessor(lo); ok {
		want[o] = true
	}
	for _, id := range ids {
		if net.Space().BetweenIncl(id, net.Space().Add(lo, 1), hi) {
			want[id] = true
		}
	}
	return want
}

// runMulticast fires one SendRange and returns the per-node delivery
// counts once the engine drains.
func runMulticast(t *testing.T, eng *sim.Engine, net *Network, origin, lo, hi dht.Key, mode dht.RangeMode) map[dht.Key]int {
	t.Helper()
	visited := map[dht.Key]int{}
	for _, id := range net.NodeIDs() {
		net.SetApp(id, dht.AppFunc(func(self dht.Key, msg *dht.Message) {
			if msg.Split {
				t.Errorf("split bookkeeping leaked into a delivery at node %d", self)
			}
			visited[self]++
			dht.ContinueRange(net, self, msg)
		}))
	}
	dht.SendRange(net, origin, lo, hi, &dht.Message{Kind: 7}, mode)
	eng.Run()
	if d := net.Dropped(); d != 0 {
		t.Fatalf("%d messages dropped during the multicast", d)
	}
	return visited
}

// TestRangeMulticastExactlyOnceBothMachines drives a wide arc (about
// half the ring, well past the Koorde split threshold) through both
// machines and modes and checks delivery against the membership oracle:
// every covering node exactly once, nobody else.
func TestRangeMulticastExactlyOnceBothMachines(t *testing.T) {
	for _, machine := range splitMachines {
		for _, mode := range splitModes {
			t.Run(fmt.Sprintf("%s/%v", machine, mode), func(t *testing.T) {
				eng, net, ids := splitRing(t, machine)
				origin := ids[3]
				lo := net.Space().Add(ids[10], 1)
				hi := ids[74]
				visited := runMulticast(t, eng, net, origin, lo, hi, mode)
				want := oracleCoverSet(net, ids, lo, hi)
				for id := range want {
					if visited[id] != 1 {
						t.Fatalf("covering node %d delivered %d times, want exactly once", id, visited[id])
					}
				}
				for id, c := range visited {
					if !want[id] {
						t.Fatalf("node %d outside the range delivered %d times", id, c)
					}
				}
			})
		}
	}
}

// TestRangeMulticastWrappedArcBothMachines is the same oracle check on
// an arc wrapping through zero, the case where naive interval
// arithmetic (and a naive split-head partition) breaks first.
func TestRangeMulticastWrappedArcBothMachines(t *testing.T) {
	for _, machine := range splitMachines {
		for _, mode := range splitModes {
			t.Run(fmt.Sprintf("%s/%v", machine, mode), func(t *testing.T) {
				eng, net, ids := splitRing(t, machine)
				origin := ids[40]
				lo := net.Space().Add(ids[100], 1) // wraps: lo > hi
				hi := ids[50]
				visited := runMulticast(t, eng, net, origin, lo, hi, mode)
				want := oracleCoverSet(net, ids, lo, hi)
				for id := range want {
					if visited[id] != 1 {
						t.Fatalf("covering node %d delivered %d times, want exactly once", id, visited[id])
					}
				}
				for id, c := range visited {
					if !want[id] {
						t.Fatalf("node %d outside the wrapped range delivered %d times", id, c)
					}
				}
			})
		}
	}
}

// TestRangeMulticastFullRingBothMachines mirrors
// TestRangeMulticastFullRingAlignedBoundary on both machines: the
// degenerate [0, 2^m-1] arc whose boundaries share one interval. Every
// node must be reached; the boundary-holding node may see the message
// twice (delivery is idempotent by the store/registration dedup rules).
func TestRangeMulticastFullRingBothMachines(t *testing.T) {
	for _, machine := range splitMachines {
		for _, mode := range splitModes {
			t.Run(fmt.Sprintf("%s/%v", machine, mode), func(t *testing.T) {
				eng, net, _ := splitRing(t, machine)
				visited := runMulticast(t, eng, net, net.NodeIDs()[5], 0, net.Space().Mask(), mode)
				if len(visited) != net.Len() {
					t.Fatalf("visited %d nodes, want all %d", len(visited), net.Len())
				}
				total := 0
				for id, c := range visited {
					total += c
					if c > 2 {
						t.Fatalf("node %d delivered %d times", id, c)
					}
				}
				if total > net.Len()+2 {
					t.Fatalf("%d deliveries for %d nodes", total, net.Len())
				}
			})
		}
	}
}

// TestRangeMulticastSingleNodeBothMachines pins the degenerate range
// inside a single node's interval: one delivery, no stray legs.
func TestRangeMulticastSingleNodeBothMachines(t *testing.T) {
	for _, machine := range splitMachines {
		for _, mode := range splitModes {
			t.Run(fmt.Sprintf("%s/%v", machine, mode), func(t *testing.T) {
				eng, net, ids := splitRing(t, machine)
				lo := net.Space().Add(ids[20], 1)
				hi := net.Space().Add(ids[20], 2)
				if o, _ := net.OracleSuccessor(lo); o != ids[21] {
					t.Skipf("interval of %d too narrow for the probe keys", ids[21])
				}
				visited := runMulticast(t, eng, net, ids[5], lo, hi, mode)
				if len(visited) != 1 || visited[ids[21]] != 1 {
					t.Fatalf("visited %v, want exactly one delivery at %d", visited, ids[21])
				}
			})
		}
	}
}

// TestKoordeTreeMulticastShallower checks the point of the arc split:
// tree-mode dissemination on Koorde must beat its own sequential walk
// by a wide margin over a deep arc — without the split, the de Bruijn
// chain degrades the "tree" to a successor-list pipeline.
func TestKoordeTreeMulticastShallower(t *testing.T) {
	run := func(mode dht.RangeMode) sim.Time {
		eng, net, ids := splitRing(t, "koorde")
		var last sim.Time
		for _, id := range net.NodeIDs() {
			net.SetApp(id, dht.AppFunc(func(self dht.Key, msg *dht.Message) {
				last = eng.Now()
				dht.ContinueRange(net, self, msg)
			}))
		}
		lo := net.Space().Add(ids[10], 1)
		hi := ids[74]
		dht.SendRange(net, ids[10], lo, hi, &dht.Message{Kind: 7}, mode)
		eng.Run()
		return last
	}
	seq := run(dht.RangeSequential)
	tree := run(dht.RangeTree)
	if tree >= seq/2 {
		t.Fatalf("koorde tree multicast %v not well under half of sequential %v", tree, seq)
	}
}
