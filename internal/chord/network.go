package chord

import (
	"fmt"
	"sort"
	"strings"

	// Registers the default "chord" machine with the overlay registry.
	_ "streamdex/internal/chord/protocol"
	"streamdex/internal/clock"
	"streamdex/internal/dht"
	"streamdex/internal/overlay"
	"streamdex/internal/sim"
	"streamdex/internal/wire"
)

// Config carries the simulation and protocol parameters.
type Config struct {
	// Space is the identifier universe; the evaluation uses m = 32.
	Space dht.Space
	// HopDelay is the constant network latency per overlay hop. The Chord
	// simulator the paper links against "simulates a constant 50 ms delay
	// per hop when routing a message to the destination" (§V).
	HopDelay sim.Time
	// SuccListLen is the successor-list length for failure tolerance.
	SuccListLen int
	// StabilizeEvery is the period of the stabilize/notify maintenance
	// task. Zero disables periodic maintenance (useful for static
	// experiments where the ring is constructed perfectly up front, which
	// keeps the event count proportional to the measured traffic).
	StabilizeEvery sim.Time
	// FixFingersEvery is the period of the finger-repair task; one finger
	// is refreshed per firing. Defaults to StabilizeEvery when zero and
	// stabilization is enabled.
	FixFingersEvery sim.Time
	// Machine selects the routing machine from the overlay registry
	// ("chord", "koorde"). Empty means "chord", the historical default;
	// every other parameter applies unchanged to any machine.
	Machine string
}

// DefaultConfig returns the evaluation configuration: a 32-bit ring and the
// 50 ms per-hop delay, with periodic maintenance enabled.
func DefaultConfig() Config {
	return Config{
		Space:           dht.NewSpace(32),
		HopDelay:        50 * sim.Millisecond,
		SuccListLen:     8,
		StabilizeEvery:  500 * sim.Millisecond,
		FixFingersEvery: 250 * sim.Millisecond,
	}
}

// Network simulates a Chord overlay: it owns the nodes, routes data-plane
// messages hop by hop on the event engine, and reports traffic to the
// observer. It implements dht.Network. All timing goes through the clock
// abstraction (a virtual view of the engine), so the protocol logic is
// shared verbatim with clock-agnostic deployments.
type Network struct {
	clk   clock.Clock
	cfg   Config
	space dht.Space
	fac   overlay.Factory

	nodes map[dht.Key]*Node
	// aliveSorted caches the sorted identifiers of live nodes; it backs
	// the test oracle and perfect-ring construction, never routing.
	aliveSorted []dht.Key

	obs dht.Observer

	dropped int64
}

// New creates an empty overlay on the given engine. cfg.Space must be set.
func New(eng *sim.Engine, cfg Config) *Network {
	if cfg.Space.M == 0 {
		panic("chord: config without identifier space")
	}
	if cfg.HopDelay < 0 {
		panic("chord: negative hop delay")
	}
	if cfg.SuccListLen <= 0 {
		cfg.SuccListLen = 8
	}
	if cfg.StabilizeEvery > 0 && cfg.FixFingersEvery == 0 {
		cfg.FixFingersEvery = cfg.StabilizeEvery
	}
	if cfg.Machine == "" {
		cfg.Machine = "chord"
	}
	fac, ok := overlay.Lookup(cfg.Machine)
	if !ok {
		panic(fmt.Sprintf("chord: unknown routing machine %q (registered: %s)",
			cfg.Machine, strings.Join(overlay.Names(), ", ")))
	}
	return &Network{
		clk:   clock.Virtual(eng),
		cfg:   cfg,
		space: cfg.Space,
		fac:   fac,
		nodes: make(map[dht.Key]*Node),
		obs:   dht.NopObserver{},
	}
}

// SetObserver installs the traffic observer (nil restores the no-op).
func (net *Network) SetObserver(o dht.Observer) {
	if o == nil {
		net.obs = dht.NopObserver{}
		return
	}
	net.obs = o
}

// Clock implements dht.Substrate: the clock the overlay schedules on.
func (net *Network) Clock() clock.Clock { return net.clk }

// Space implements dht.Network.
func (net *Network) Space() dht.Space { return net.space }

// Config returns the network configuration.
func (net *Network) Config() Config { return net.cfg }

// Dropped returns the number of data-plane messages lost because no live
// next hop existed or a node failed with messages in flight toward it.
func (net *Network) Dropped() int64 { return net.dropped }

// Node returns the node with the given identifier, or nil.
func (net *Network) Node(id dht.Key) *Node { return net.nodes[id] }

// NodeIDs returns the identifiers of all live nodes in ring order.
func (net *Network) NodeIDs() []dht.Key {
	out := make([]dht.Key, len(net.aliveSorted))
	copy(out, net.aliveSorted)
	return out
}

// Len returns the number of live nodes.
func (net *Network) Len() int { return len(net.aliveSorted) }

func (net *Network) isAlive(id dht.Key) bool {
	n := net.nodes[id]
	return n != nil && n.alive
}

// Alive implements dht.Substrate.
func (net *Network) Alive(id dht.Key) bool { return net.isAlive(id) }

// addNode registers a fresh node object (not yet wired into the ring) and
// builds its routing machine on the shared event-engine clock.
func (net *Network) addNode(id dht.Key, app dht.App) *Node {
	id = net.space.Wrap(id)
	if _, exists := net.nodes[id]; exists {
		panic(fmt.Sprintf("chord: duplicate node id %d", id))
	}
	n := &Node{
		id:    id,
		net:   net,
		app:   app,
		alive: true,
	}
	n.m = net.fac.New(overlay.Config{
		Space:           net.space,
		SuccListLen:     net.cfg.SuccListLen,
		StabilizeEvery:  net.cfg.StabilizeEvery,
		FixFingersEvery: net.cfg.FixFingersEvery,
	}, overlay.Ref{ID: id}, net.clk, func(to overlay.Ref, payload any) {
		net.transmitControl(n, to, payload)
	})
	// Routing (not the maintenance protocol) may skip entries the
	// simulation knows are dead — the historical hardening of the
	// simulated data plane. Convergence itself stays purely message-driven.
	n.m.SetAliveFilter(net.isAlive)
	net.nodes[id] = n
	net.insertAlive(id)
	return n
}

// transmitControl delivers one control-plane message after the per-hop
// delay, charging the observer exactly like a data-plane transmission
// (wire.Sizeof bytes — what the message would cost on a socket). Messages
// toward dead nodes are silently lost; the sender's miss accounting is
// what notices, just as on a real network. Control losses do not count
// into Dropped, which tracks the data plane the evaluation measures.
func (net *Network) transmitControl(from *Node, to overlay.Ref, payload any) {
	msg := &dht.Message{
		Kind:   overlay.KindRing,
		Key:    to.ID,
		Src:    from.id,
		Bytes:  wire.Sizeof(payload),
		SentAt: net.clk.Now(),
	}
	net.clk.Schedule(net.cfg.HopDelay, func() {
		tgt := net.nodes[to.ID]
		if tgt == nil || !tgt.alive {
			return
		}
		msg.Hops = 1
		net.obs.OnTransmit(from.id, to.ID, msg)
		tgt.m.Handle(payload)
	})
}

func (net *Network) insertAlive(id dht.Key) {
	i := sort.Search(len(net.aliveSorted), func(i int) bool { return net.aliveSorted[i] >= id })
	net.aliveSorted = append(net.aliveSorted, 0)
	copy(net.aliveSorted[i+1:], net.aliveSorted[i:])
	net.aliveSorted[i] = id
}

func (net *Network) removeAlive(id dht.Key) {
	i := sort.Search(len(net.aliveSorted), func(i int) bool { return net.aliveSorted[i] >= id })
	if i < len(net.aliveSorted) && net.aliveSorted[i] == id {
		net.aliveSorted = append(net.aliveSorted[:i], net.aliveSorted[i+1:]...)
	}
}

// OracleSuccessor returns the true successor node of key given current live
// membership. It is the reference the protocol is tested against and the
// basis of perfect-ring construction; routing never consults it.
func (net *Network) OracleSuccessor(key dht.Key) (dht.Key, bool) {
	if len(net.aliveSorted) == 0 {
		return 0, false
	}
	key = net.space.Wrap(key)
	i := sort.Search(len(net.aliveSorted), func(i int) bool { return net.aliveSorted[i] >= key })
	if i == len(net.aliveSorted) {
		i = 0
	}
	return net.aliveSorted[i], true
}

// BuildStable creates len(ids) nodes and wires a perfect ring — correct
// successors, predecessors, successor lists and finger tables — in one
// step, the standard warm start for scalability experiments. Apps[i] is
// the application for ids[i]; a nil slice or nil entry installs a no-op app.
// When cfg.StabilizeEvery > 0 maintenance tickers are started with phases
// staggered across nodes.
func (net *Network) BuildStable(ids []dht.Key, apps []dht.App) {
	if len(ids) == 0 {
		panic("chord: BuildStable with no nodes")
	}
	for i, id := range ids {
		var app dht.App = dht.AppFunc(func(dht.Key, *dht.Message) {})
		if apps != nil && apps[i] != nil {
			app = apps[i]
		}
		net.addNode(id, app)
	}
	net.rewireAll()
	if net.cfg.StabilizeEvery > 0 {
		rng := sim.NewRand(0x5eed)
		for _, id := range net.aliveSorted {
			net.startMaintenance(net.nodes[id], rng)
		}
	}
}

// rewireAll rebuilds every live node's pointers from the oracle.
func (net *Network) rewireAll() {
	for _, id := range net.aliveSorted {
		net.rewireNode(net.nodes[id])
	}
}

func (net *Network) rewireNode(n *Node) {
	ring := net.aliveSorted
	sz := len(ring)
	pos := sort.Search(sz, func(i int) bool { return ring[i] >= n.id })
	if pos == sz || ring[pos] != n.id {
		panic("chord: rewire of unregistered node")
	}
	// Successor list.
	succList := make([]overlay.Ref, 0, net.cfg.SuccListLen)
	for k := 1; k <= net.cfg.SuccListLen && k < sz+1; k++ {
		s := ring[(pos+k)%sz]
		if s == n.id {
			break
		}
		succList = append(succList, overlay.Ref{ID: s})
	}
	if len(succList) == 0 {
		succList = append(succList, overlay.Ref{ID: n.id})
	}
	// Predecessor.
	pred := overlay.Ref{ID: ring[(pos-1+sz)%sz]}
	// Long-distance links (fingers on Chord, de Bruijn pointers on
	// Koorde), computed by the machine family's own warm-start rule.
	var longlinks []overlay.Ref
	if net.fac.Longlinks != nil {
		longlinks = net.fac.Longlinks(overlay.Config{Space: net.space, SuccListLen: net.cfg.SuccListLen}, ring, n.id)
	}
	n.m.InstallRing(&pred, succList, longlinks)
}

// SetApp replaces the application of an existing node (used by middleware
// construction, which needs node objects before apps exist).
func (net *Network) SetApp(id dht.Key, app dht.App) {
	n := net.nodes[id]
	if n == nil {
		panic(fmt.Sprintf("chord: SetApp on unknown node %d", id))
	}
	n.app = app
}

// WatchNeighbors implements dht.NeighborWatcher: fn fires on the event loop
// whenever the node's predecessor or first successor changes (the protocol
// machine publishes a view at every ring-state mutation).
func (net *Network) WatchNeighbors(id dht.Key, fn func()) {
	n := net.nodes[id]
	if n == nil {
		panic(fmt.Sprintf("chord: WatchNeighbors on unknown node %d", id))
	}
	n.m.SetNeighborWatch(fn)
}

// --- Data plane -----------------------------------------------------------

// Send implements dht.Network: it initializes bookkeeping and routes msg
// from node `from` to the node covering `key`. A tree-mode range
// multicast whose origin machine wants the arc split (overlay.ArcSplitter
// — Koorde, whose contiguous de Bruijn window cannot subdivide a distant
// arc) leaves as independent routed sub-range legs instead of one walk.
func (net *Network) Send(from dht.Key, key dht.Key, msg *dht.Message) {
	msg.Src = from
	msg.Key = net.space.Wrap(key)
	msg.Hops = 0
	msg.SentAt = net.clk.Now()
	if msg.HasRange && msg.Mode == dht.RangeTree && !msg.Split {
		if n := net.nodes[from]; n != nil && n.alive {
			if sp, ok := n.m.(overlay.ArcSplitter); ok {
				if heads := sp.SplitHeads(msg.RangeStart, msg.RangeEnd); len(heads) >= 2 {
					net.sendSplitLegs(from, msg, heads)
					return
				}
			}
		}
	}
	net.process(from, msg)
}

// splitTTL is the hop backstop of a split leg's stateful walk; past it
// the leg degrades to the greedy step, which is strictly clockwise and
// always terminates.
const splitTTL = 64

// sendSplitLegs fans a tree-mode ranged message out of `from` as one
// routed leg per sub-arc: leg j is addressed to heads[j] and carries the
// sub-range [heads[j], heads[j+1]-1] (the last leg keeps the original
// high boundary and the tail ownership). Every leg starts an unanchored
// stateful walk (dht.SplitShiftNone); exactly-once delivery holds
// because the sub-ranges partition the arc and each leg's delegation
// only ever reaches nodes inside its own sub-range.
func (net *Network) sendSplitLegs(from dht.Key, msg *dht.Message, heads []dht.Key) int {
	for j, h := range heads {
		c := msg.Clone()
		c.Key = h
		c.RangeStart = h
		if j+1 < len(heads) {
			c.RangeEnd = net.space.Add(heads[j+1], net.space.Size()-1)
			c.RangeTail = false
		}
		c.Split = true
		c.SplitImg = 0
		c.SplitShift = dht.SplitShiftNone
		net.process(from, c)
	}
	return len(heads)
}

// Forward implements dht.Network: it re-routes an in-flight message toward
// a new key, preserving cumulative hop count and origin.
func (net *Network) Forward(from dht.Key, key dht.Key, msg *dht.Message) {
	msg.Key = net.space.Wrap(key)
	net.process(from, msg)
}

// process executes one routing step at node `at`.
func (net *Network) process(at dht.Key, msg *dht.Message) {
	n := net.nodes[at]
	if n == nil || !n.alive {
		net.dropped++
		return
	}
	if n.covers(msg.Key) {
		clearSplit(msg)
		net.obs.OnDeliver(at, msg)
		n.app.Deliver(at, msg)
		return
	}
	if msg.Split {
		if succ, ok := n.liveSuccessor(); ok && succ != at && net.space.BetweenIncl(msg.Key, at, succ) {
			// The walk reached the sub-arc's ring predecessor: its
			// successor list spans the (deliberately small) sub-arc, so
			// fan out from here — one level shallower than first hopping
			// to the head's coverer and delegating there. This node is
			// before the sub-range and is not delivered itself.
			clearSplit(msg)
			net.DelegateRange(at, msg)
			return
		}
		if dr, ok := n.m.(overlay.DigitRouter); ok && msg.Hops < splitTTL {
			if next, img, shift, ok := dr.DigitHop(msg.Key, msg.SplitImg, msg.SplitShift); ok && next.ID != at {
				msg.SplitImg, msg.SplitShift = img, shift
				net.transmit(at, next.ID, msg, true)
				return
			}
		}
		// No digit router (or walk exhausted): the greedy step below
		// routes the leg; it is strictly clockwise and terminates.
	}
	next, ok := n.nextHop(msg.Key)
	if !ok || next == at {
		net.dropped++
		return
	}
	net.transmit(at, next, msg, true)
}

// clearSplit strips the routed-leg walk state before a message is
// delivered or delegated; applications never see split bookkeeping.
func clearSplit(msg *dht.Message) {
	if !msg.Split {
		return
	}
	msg.Split = false
	msg.SplitImg = 0
	msg.SplitShift = 0
}

// transmit delivers msg to `to` after the hop delay. When route is true the
// receiving node continues Chord routing; otherwise the message is for the
// neighbor itself and is delivered directly.
func (net *Network) transmit(from, to dht.Key, msg *dht.Message, route bool) {
	net.clk.Schedule(net.cfg.HopDelay, func() {
		if !net.isAlive(to) {
			net.dropped++
			return
		}
		msg.Hops++
		net.obs.OnTransmit(from, to, msg)
		if route {
			net.process(to, msg)
			return
		}
		n := net.nodes[to]
		net.obs.OnDeliver(to, msg)
		n.app.Deliver(to, msg)
	})
}

// SendToSuccessor implements dht.Network: one hop along the ring.
func (net *Network) SendToSuccessor(from dht.Key, msg *dht.Message) {
	n := net.nodes[from]
	if n == nil || !n.alive {
		net.dropped++
		return
	}
	succ, ok := n.liveSuccessor()
	if !ok || succ == from {
		net.dropped++
		return
	}
	net.transmit(from, succ, msg, false)
}

// SendToPredecessor implements dht.Network: one hop counter-clockwise.
func (net *Network) SendToPredecessor(from dht.Key, msg *dht.Message) {
	n := net.nodes[from]
	if n == nil || !n.alive {
		net.dropped++
		return
	}
	pred, ok := n.livePredecessor()
	if !ok || pred == from {
		net.dropped++
		return
	}
	net.transmit(from, pred, msg, false)
}

// Covers implements dht.Network.
func (net *Network) Covers(id dht.Key, key dht.Key) bool {
	n := net.nodes[id]
	return n != nil && n.alive && n.covers(net.space.Wrap(key))
}

// Successors implements dht.RingNeighbors: up to n live successors of id,
// nearest first, from the node's protocol successor list. The list stops
// at the first self-reference (a ring smaller than the list wraps around),
// so callers see each neighbor at most once.
func (net *Network) Successors(id dht.Key, n int) []dht.Key {
	nd := net.nodes[id]
	if nd == nil || !nd.alive || n <= 0 {
		return nil
	}
	out := make([]dht.Key, 0, n)
	for _, ref := range nd.m.SuccessorList() {
		if ref.ID == id {
			break
		}
		if !net.isAlive(ref.ID) {
			continue
		}
		out = append(out, ref.ID)
		if len(out) == n {
			break
		}
	}
	return out
}

// SendToNode implements dht.RingNeighbors: one direct traversal to a known
// ring neighbor, charged and delivered exactly like a successor hop.
func (net *Network) SendToNode(from, to dht.Key, msg *dht.Message) {
	n := net.nodes[from]
	if n == nil || !n.alive || from == to {
		net.dropped++
		return
	}
	net.transmit(from, to, msg, false)
}
