package protocol

import (
	"testing"

	"streamdex/internal/clock"
	"streamdex/internal/dht"
	"streamdex/internal/sim"
)

// capture records every (dest, message) pair a machine emits, standing in
// for a substrate adapter. Tests deliver replies by calling Handle directly,
// so every exchange is explicit and deterministic.
type capture struct {
	out []sent
}

type sent struct {
	to  Ref
	msg any
}

func (c *capture) send(to Ref, msg any) { c.out = append(c.out, sent{to, msg}) }

func (c *capture) findReqs() []FindReq {
	var reqs []FindReq
	for _, s := range c.out {
		if r, ok := s.msg.(FindReq); ok {
			reqs = append(reqs, r)
		}
	}
	return reqs
}

func (c *capture) reset() { c.out = c.out[:0] }

func newTestMachine(cfg Config, id dht.Key) (*Machine, *capture, *sim.Engine) {
	eng := sim.NewEngine()
	cap := &capture{}
	if cfg.Space.M == 0 {
		cfg.Space = dht.NewSpace(16)
	}
	m := New(cfg, Ref{ID: id}, clock.Virtual(eng), cap.send)
	return m, cap, eng
}

// TestJoinRetrySupersedesToken is the stale-token regression test: once a
// join lookup has been re-issued, a late answer to the superseded attempt
// must be counted stale and discarded — resolving it would install an
// outdated successor over the fresh answer.
func TestJoinRetrySupersedesToken(t *testing.T) {
	cfg := Config{
		SuccListLen:    4,
		StabilizeEvery: 100 * sim.Millisecond,
		JoinRetryEvery: 150 * sim.Millisecond,
		MissThreshold:  1, // lookup expiry = 100 ms, before the 150 ms retry
	}
	m, cap, eng := newTestMachine(cfg, 100)

	var joined []Ref
	m.Join(Ref{ID: 200}, func(succ Ref) { joined = append(joined, succ) })
	if reqs := cap.findReqs(); len(reqs) != 1 {
		t.Fatalf("join issued %d FindReqs, want 1", len(reqs))
	}
	tok1 := cap.findReqs()[0].Token

	// Past the expiry (100 ms) and the first retry (150 ms): a second
	// lookup with a fresh token must be on the wire.
	eng.RunFor(160 * sim.Millisecond)
	reqs := cap.findReqs()
	if len(reqs) != 2 {
		t.Fatalf("after expiry+retry: %d FindReqs, want 2", len(reqs))
	}
	tok2 := reqs[1].Token
	if tok2 == tok1 {
		t.Fatal("retry reused the superseded token")
	}

	// The fresh answer wins.
	m.Handle(FindResp{From: Ref{ID: 200}, Token: tok2, Succ: Ref{ID: 250}})
	if s, ok := m.Successor(); !ok || s.ID != 250 {
		t.Fatalf("successor after fresh answer = %v, want 250", s)
	}
	if len(joined) != 1 || joined[0].ID != 250 {
		t.Fatalf("onJoined calls = %v, want one with 250", joined)
	}

	// The late answer to the superseded attempt is stale: dropped, counted,
	// and must not disturb the installed successor.
	m.Handle(FindResp{From: Ref{ID: 200}, Token: tok1, Succ: Ref{ID: 999}})
	if s, _ := m.Successor(); s.ID != 250 {
		t.Fatalf("stale answer installed successor %d", s.ID)
	}
	if got := m.Stats().StaleFindResps; got != 1 {
		t.Fatalf("StaleFindResps = %d, want 1", got)
	}
	if len(joined) != 1 {
		t.Fatalf("stale answer re-triggered onJoined: %v", joined)
	}
}

// TestJoinRetryWaitsForExpiry pins the livelock fix: when the lookup round
// trip is slower than the retry period, the retry tick must NOT cancel the
// in-flight token (that would make every answer arrive stale, forever).
func TestJoinRetryWaitsForExpiry(t *testing.T) {
	cfg := Config{
		SuccListLen:    4,
		StabilizeEvery: 200 * sim.Millisecond, // expiry = 3 * 200 ms
		JoinRetryEvery: 50 * sim.Millisecond,  // much faster than the lookup
	}
	m, cap, eng := newTestMachine(cfg, 100)
	m.Join(Ref{ID: 200}, nil)
	tok1 := cap.findReqs()[0].Token

	// Several retry periods later — but still inside the expiry window —
	// the original token must be the only one issued.
	eng.RunFor(180 * sim.Millisecond)
	if reqs := cap.findReqs(); len(reqs) != 1 {
		t.Fatalf("retry cancelled an in-flight lookup: %d FindReqs", len(reqs))
	}
	// The slow answer still lands.
	m.Handle(FindResp{From: Ref{ID: 200}, Token: tok1, Succ: Ref{ID: 300}})
	if s, ok := m.Successor(); !ok || s.ID != 300 {
		t.Fatalf("slow answer rejected: successor=%v ok=%v", s, ok)
	}
	if got := m.Stats().StaleFindResps; got != 0 {
		t.Fatalf("StaleFindResps = %d, want 0", got)
	}
}

// TestFindReqTTLExhausted: a request arriving with no TTL budget is dropped
// outright — never answered, never forwarded.
func TestFindReqTTLExhausted(t *testing.T) {
	m, cap, _ := newTestMachine(Config{SuccListLen: 4}, 100)
	pred := Ref{ID: 50}
	m.InstallRing(&pred, []Ref{{ID: 200}}, nil)

	m.Handle(FindReq{From: Ref{ID: 400}, Token: 7, Target: 150, TTL: 0, ReplyTo: Ref{ID: 400}})
	if len(cap.out) != 0 {
		t.Fatalf("TTL=0 request produced sends: %v", cap.out)
	}
	// TTL=1 may still be *answered* (no forwarding involved) ...
	m.Handle(FindReq{From: Ref{ID: 400}, Token: 8, Target: 150, TTL: 1, ReplyTo: Ref{ID: 400}})
	if len(cap.out) != 1 {
		t.Fatalf("answerable TTL=1 request: %d sends, want 1", len(cap.out))
	}
	resp, ok := cap.out[0].msg.(FindResp)
	if !ok || resp.Succ.ID != 200 || cap.out[0].to.ID != 400 {
		t.Fatalf("bad answer: %+v to %v", cap.out[0].msg, cap.out[0].to)
	}
	cap.reset()
	// ... but a TTL=1 request that would need another hop is dropped.
	m.Handle(FindReq{From: Ref{ID: 400}, Token: 9, Target: 300, TTL: 1, ReplyTo: Ref{ID: 400}})
	if len(cap.out) != 0 {
		t.Fatalf("TTL=1 request was forwarded: %v", cap.out)
	}
	if got := m.Stats().FindDrops; got != 2 {
		t.Fatalf("FindDrops = %d, want 2", got)
	}
	// A forwardable request is relayed with the TTL decremented and the
	// hop-sender rewritten.
	m.Handle(FindReq{From: Ref{ID: 400}, Token: 10, Target: 300, TTL: 5, ReplyTo: Ref{ID: 400}})
	if len(cap.out) != 1 {
		t.Fatalf("forwardable request: %d sends, want 1", len(cap.out))
	}
	fwd := cap.out[0].msg.(FindReq)
	if fwd.TTL != 4 || fwd.From.ID != 100 || fwd.Target != 300 || fwd.ReplyTo.ID != 400 {
		t.Fatalf("bad forward: %+v", fwd)
	}
}

// TestMissRotation: unanswered stabilize rounds rotate the successor list
// and eventually drop an unresponsive predecessor, with every step counted.
func TestMissRotation(t *testing.T) {
	cfg := Config{
		SuccListLen:    4,
		StabilizeEvery: 100 * sim.Millisecond,
		MissThreshold:  2,
	}
	m, cap, eng := newTestMachine(cfg, 100)
	pred := Ref{ID: 50}
	m.InstallRing(&pred, []Ref{{ID: 200}, {ID: 300}}, nil)
	m.StartMaintenance()

	// Two silent rounds: the head is presumed dead and rotated out, and the
	// silent predecessor is cleared.
	eng.RunFor(250 * sim.Millisecond)
	if s, _ := m.Successor(); s.ID != 300 {
		t.Fatalf("successor after rotation = %d, want 300", s.ID)
	}
	if _, ok := m.Predecessor(); ok {
		t.Fatal("silent predecessor survived the miss threshold")
	}
	st := m.Stats()
	if st.SuccRotations != 1 || st.PredDrops != 1 || st.StabilizeMisses != 2 || st.StabilizeRounds != 2 {
		t.Fatalf("stats = %+v", st)
	}
	// The machine probes the rotated-in successor from then on.
	last := cap.out[len(cap.out)-1]
	if req, ok := last.msg.(StabReq); !ok || last.to.ID != 300 || req.From.ID != 100 {
		t.Fatalf("last send = %+v to %v, want StabReq to 300", last.msg, last.to)
	}
}

// TestStabilizeAdoptsCloserSuccessor: the successor's predecessor, when it
// lies between us and the successor, becomes the new successor (the core
// stabilize rule) and is notified.
func TestStabilizeAdoptsCloserSuccessor(t *testing.T) {
	m, cap, _ := newTestMachine(Config{SuccListLen: 4}, 100)
	m.InstallRing(nil, []Ref{{ID: 300}}, nil)

	m.Handle(StabResp{
		From:    Ref{ID: 300},
		HasPred: true,
		Pred:    Ref{ID: 200},
		SuccList: []Ref{
			{ID: 300}, {ID: 400},
		},
	})
	want := []dht.Key{200, 300, 400}
	got := m.SuccessorList()
	if len(got) != len(want) {
		t.Fatalf("successor list = %v, want ids %v", got, want)
	}
	for i, r := range got {
		if r.ID != want[i] {
			t.Fatalf("successor list = %v, want ids %v", got, want)
		}
	}
	last := cap.out[len(cap.out)-1]
	if _, ok := last.msg.(Notify); !ok || last.to.ID != 200 {
		t.Fatalf("last send = %+v to %v, want Notify to 200", last.msg, last.to)
	}
	// A StabResp from a node that is no longer the successor is ignored.
	m.Handle(StabResp{From: Ref{ID: 300}, SuccList: []Ref{{ID: 300}}})
	if s, _ := m.Successor(); s.ID != 200 {
		t.Fatalf("stale StabResp reinstalled %d", s.ID)
	}
}

// TestNotifyRule: a notify installs the sender as predecessor only when it
// improves on the current one.
func TestNotifyRule(t *testing.T) {
	m, _, _ := newTestMachine(Config{SuccListLen: 4}, 100)
	m.InstallRing(nil, []Ref{{ID: 300}}, nil)

	m.Handle(Notify{From: Ref{ID: 150}})
	if p, ok := m.Predecessor(); !ok || p.ID != 150 {
		t.Fatalf("first notify: pred=%v ok=%v", p, ok)
	}
	m.Handle(Notify{From: Ref{ID: 120}}) // not between (150, 100): keep
	if p, _ := m.Predecessor(); p.ID != 150 {
		t.Fatalf("farther notify replaced pred: %d", p.ID)
	}
	m.Handle(Notify{From: Ref{ID: 180}}) // between (150, 100): adopt
	if p, _ := m.Predecessor(); p.ID != 180 {
		t.Fatalf("closer notify ignored: %d", p.ID)
	}
}

// checkViewParity asserts the published View makes exactly the machine's
// routing decisions (the machines under test never install an alive
// filter, so unfiltered parity is the contract).
func checkViewParity(t *testing.T, m *Machine, keys []dht.Key) {
	t.Helper()
	v, _ := m.View().(*View)
	if v == nil {
		t.Fatal("machine never published a view")
	}
	if v.Self != m.Self() {
		t.Fatalf("view self = %+v, machine self = %+v", v.Self, m.Self())
	}
	if v.Joined() != m.Joined() {
		t.Fatalf("view joined = %v, machine joined = %v", v.Joined(), m.Joined())
	}
	mp, mok := m.Predecessor()
	vp, vok := v.Predecessor()
	if mok != vok || (mok && mp.ID != vp.ID) {
		t.Fatalf("view pred = %+v/%v, machine pred = %+v/%v", vp, vok, mp, mok)
	}
	ms, msok := m.Successor()
	vs, vsok := v.Successor()
	if msok != vsok || (msok && ms.ID != vs.ID) {
		t.Fatalf("view succ = %+v/%v, machine succ = %+v/%v", vs, vsok, ms, msok)
	}
	if got, want := len(v.Succs), len(m.SuccessorList()); got != want {
		t.Fatalf("view succ list len = %d, machine = %d", got, want)
	}
	if got, want := len(v.Fingers), m.FingerCount(); got != want {
		t.Fatalf("view fingers = %d, machine populated = %d", got, want)
	}
	for _, k := range keys {
		if gv, gm := v.Covers(k), m.Covers(k); gv != gm {
			t.Fatalf("Covers(%d): view %v, machine %v", k, gv, gm)
		}
		vh, vhok := v.NextHop(k)
		mh, mhok := m.NextHop(k)
		if vhok != mhok || (vhok && vh.ID != mh.ID) {
			t.Fatalf("NextHop(%d): view %+v/%v, machine %+v/%v", k, vh, vhok, mh, mhok)
		}
		vc, vcok := v.ClosestPreceding(k)
		mc, mcok := m.ClosestPreceding(k)
		if vcok != mcok || (vcok && vc.ID != mc.ID) {
			t.Fatalf("ClosestPreceding(%d): view %+v/%v, machine %+v/%v", k, vc, vcok, mc, mcok)
		}
	}
}

// TestViewMirrorsMachine drives a machine through its mutation surfaces —
// construction, warm start, stabilize adoption, notify, rotation, splices —
// and checks after each step that the lock-free View routes bit-for-bit
// like the machine's own accessors.
func TestViewMirrorsMachine(t *testing.T) {
	keys := []dht.Key{0, 1, 50, 99, 100, 101, 150, 200, 201, 299, 300, 400, 500, 65535}

	cfg := Config{
		SuccListLen:    4,
		StabilizeEvery: 100 * sim.Millisecond,
		MissThreshold:  2,
	}
	m, _, eng := newTestMachine(cfg, 100)
	checkViewParity(t, m, keys) // fresh, un-joined machine

	pred := Ref{ID: 50}
	m.InstallRing(&pred, []Ref{{ID: 200}, {ID: 300}}, []Ref{{ID: 200}, {ID: 200}, {ID: 300}})
	checkViewParity(t, m, keys)

	// Stabilize adoption rebuilds the successor list and finger[0].
	m.Handle(StabResp{
		From: Ref{ID: 200}, HasPred: true, Pred: Ref{ID: 150},
		SuccList: []Ref{{ID: 200}, {ID: 300}, {ID: 400}},
	})
	checkViewParity(t, m, keys)

	// Notify moves the predecessor.
	m.Handle(Notify{From: Ref{ID: 99}})
	checkViewParity(t, m, keys)

	// Silent rounds rotate the successor and drop the predecessor.
	m.StartMaintenance()
	eng.RunFor(250 * sim.Millisecond)
	checkViewParity(t, m, keys)

	// Graceful-leave splices.
	m.AdoptPredecessor(Ref{ID: 42})
	checkViewParity(t, m, keys)
	m.AdoptSuccessors([]Ref{{ID: 500}, {ID: 42}})
	checkViewParity(t, m, keys)
	m.ClearPredecessor()
	checkViewParity(t, m, keys)

	// Create on a fresh machine publishes the one-node ring.
	m2, _, _ := newTestMachine(Config{SuccListLen: 4}, 7)
	m2.Create()
	checkViewParity(t, m2, keys)
}
