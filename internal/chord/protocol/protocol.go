// Package protocol implements the Chord control plane — join, greedy
// find_successor routing with TTL, stabilize/notify, successor-list
// rotation, finger repair, predecessor liveness — as one pure,
// message-driven state machine shared verbatim by the discrete-event
// simulator (internal/chord) and the TCP transport (internal/transport).
//
// The machine is substrate-blind: it consumes decoded control messages
// (Handle) plus clock.Clock timers and emits (dest, message) pairs through
// a send hook. It knows nothing about sockets or the event engine — the
// simulator's adapter delivers sends after the per-hop delay through the
// engine, the transport's adapter frames them over TCP with the packed
// wire codec. Both substrates therefore make bit-for-bit the same ring
// decisions on the same message trace, which is exactly the property the
// paper's "runs on virtually any content-based routing implementation"
// claim needs: behavior observed in simulation is the behavior deployed.
//
// Failure detection is deadline-free: a stabilize round that brings no
// response before the next tick counts as a miss, and MissThreshold
// consecutive misses rotate the successor list (or clear the predecessor).
// Liveness short-cuts are available only through an optional alive filter
// used for *routing* candidate selection (the simulator wires its oracle
// in, matching its historical hardened routing); the maintenance protocol
// itself never consults it, so control-plane convergence is driven purely
// by messages on both substrates.
//
// All methods must be called from the substrate's single event-loop
// context (the engine goroutine in simulation, the clock.Wall loop live);
// the machine does no locking of its own.
package protocol

import (
	"sync/atomic"

	"streamdex/internal/clock"
	"streamdex/internal/dht"
	"streamdex/internal/metrics"
	"streamdex/internal/overlay"
	"streamdex/internal/sim"
)

// Config carries the protocol parameters.
type Config struct {
	// Space is the identifier universe.
	Space dht.Space
	// SuccListLen is the successor-list length (failure tolerance).
	// Defaults to 8.
	SuccListLen int
	// StabilizeEvery is the period of the stabilize/notify/ping maintenance
	// task. Zero disables periodic maintenance (the machine still answers
	// peers' messages).
	StabilizeEvery sim.Time
	// FixFingersEvery is the period of finger repair (one entry per
	// firing); zero disables fingers (routing falls back to successors).
	FixFingersEvery sim.Time
	// JoinRetryEvery is the period at which an unanswered join lookup is
	// re-issued. Each retry invalidates the previous lookup token, so a
	// late answer to a superseded attempt can never install a stale
	// successor. Defaults to StabilizeEvery, or 500 ms when maintenance is
	// disabled.
	JoinRetryEvery sim.Time
	// MissThreshold is how many consecutive unanswered maintenance rounds
	// a neighbor survives before being presumed dead. Defaults to 3.
	MissThreshold int
	// FindTTL bounds the greedy routing of a FindReq. Defaults to 64.
	FindTTL int
}

// pendingFind tracks an outstanding successor lookup.
type pendingFind struct {
	onResp func(Ref)
	timer  clock.Timer
}

// joinState tracks an in-flight join attempt.
type joinState struct {
	bootstrap Ref
	token     uint64
	retry     clock.Ticker
	onJoined  func(Ref)
}

// Machine is one node's Chord control-plane state machine.
type Machine struct {
	cfg   Config
	space dht.Space
	self  Ref
	clk   clock.Clock
	send  func(to Ref, msg any)

	// alive is the optional routing-time liveness filter; nil trusts the
	// message-learned state (the live transport's situation).
	alive func(dht.Key) bool

	// Ring state.
	pred       *Ref
	succList   []Ref
	finger     []Ref
	fingerOK   []bool
	fingerTok  []uint64 // outstanding repair lookup per entry (0 = none)
	nextFinger int

	// Miss accounting.
	stabSeen   bool
	stabMisses int
	predSeen   bool
	predMisses int

	// Outstanding lookups.
	nextToken uint64
	pendFind  map[uint64]*pendingFind

	join *joinState

	tickers  []clock.Ticker
	phaseSet bool
	stabPh   sim.Time
	fixPh    sim.Time

	stopped bool

	stats metrics.Ring

	// view is the last published routing snapshot (see View). The machine
	// republishes it whenever ring state may have changed; readers on other
	// goroutines load it wait-free.
	view atomic.Pointer[View]

	// neighborWatch, when set, is invoked (synchronously, in machine
	// context) after a view publication that changed the node's immediate
	// neighborhood — predecessor or first successor. It is the churn signal
	// standing continuous-query registrations re-home on.
	neighborWatch func()
}

// New builds a machine for self. send is invoked synchronously (from
// Handle and from timer callbacks) for every outgoing control message; the
// substrate adapter owns delivery.
func New(cfg Config, self Ref, clk clock.Clock, send func(to Ref, msg any)) *Machine {
	if cfg.Space.M == 0 {
		panic("protocol: config without identifier space")
	}
	if clk == nil || send == nil {
		panic("protocol: machine without clock or send hook")
	}
	if cfg.SuccListLen <= 0 {
		cfg.SuccListLen = 8
	}
	if cfg.MissThreshold <= 0 {
		cfg.MissThreshold = 3
	}
	if cfg.FindTTL <= 0 {
		cfg.FindTTL = 64
	}
	if cfg.JoinRetryEvery <= 0 {
		if cfg.StabilizeEvery > 0 {
			cfg.JoinRetryEvery = cfg.StabilizeEvery
		} else {
			cfg.JoinRetryEvery = 500 * sim.Millisecond
		}
	}
	bits := int(cfg.Space.M)
	m := &Machine{
		stats:     metrics.Ring{Machine: MachineName},
		cfg:       cfg,
		space:     cfg.Space,
		self:      Ref{ID: cfg.Space.Wrap(self.ID), Addr: self.Addr},
		clk:       clk,
		send:      send,
		finger:    make([]Ref, bits),
		fingerOK:  make([]bool, bits),
		fingerTok: make([]uint64, bits),
		pendFind:  make(map[uint64]*pendingFind),
	}
	m.publishView()
	return m
}

// SetAliveFilter installs the routing-time liveness filter (nil clears
// it). Only next-hop candidate selection consults it; the maintenance
// protocol never does, so filtered and unfiltered machines converge
// through the same message exchanges.
func (m *Machine) SetAliveFilter(alive func(dht.Key) bool) { m.alive = alive }

// SetNeighborWatch installs (or clears, with nil) the neighborhood-change
// callback. It fires in machine context — the substrate's event loop — every
// time a published view carries a different predecessor or first successor
// than the previous one, including the first publication that establishes
// them. Callbacks may send messages but must not re-enter the machine.
func (m *Machine) SetNeighborWatch(fn func()) { m.neighborWatch = fn }

// SetPhases fixes the initial delay of the two maintenance tickers
// (normally the full period). Substrates use it to stagger nodes so they
// do not stabilize in lock-step. Call before StartMaintenance.
func (m *Machine) SetPhases(stabilize, fixFingers sim.Time) {
	m.phaseSet = true
	m.stabPh, m.fixPh = stabilize, fixFingers
}

// Self returns the machine's own ref.
func (m *Machine) Self() Ref { return m.self }

// Joined reports whether the machine has ring state (a successor list).
func (m *Machine) Joined() bool { return len(m.succList) > 0 }

// Stats returns a snapshot of the maintenance counters.
func (m *Machine) Stats() metrics.Ring { return m.stats }

// --- Lifecycle ---

// Create bootstraps a brand-new one-node ring and starts maintenance.
func (m *Machine) Create() {
	if m.stopped {
		return
	}
	p := m.self
	m.pred = &p
	m.succList = []Ref{m.self}
	m.publishView()
	m.StartMaintenance()
}

// Join enters an existing ring through bootstrap: it asks the ring for
// the successor of its own identifier and, once answered, adopts it,
// starts maintenance and calls onJoined (which may be nil). Unanswered
// lookups are retried every JoinRetryEvery; each retry cancels the
// previous lookup token so a late FindResp to a superseded attempt is
// counted stale and discarded rather than installed.
func (m *Machine) Join(bootstrap Ref, onJoined func(Ref)) {
	if m.stopped || m.Joined() || m.join != nil {
		return
	}
	m.join = &joinState{bootstrap: bootstrap, onJoined: onJoined}
	m.sendJoinFind()
	m.join.retry = m.clk.EveryAfter(m.cfg.JoinRetryEvery, m.cfg.JoinRetryEvery, m.retryJoin)
}

// AbandonJoin cancels an in-flight join attempt (caller-side timeout).
func (m *Machine) AbandonJoin() {
	j := m.join
	if j == nil {
		return
	}
	m.join = nil
	if j.retry != nil {
		j.retry.Stop()
	}
	m.cancelFind(j.token)
}

// sendJoinFind issues (or re-issues) the join lookup toward the bootstrap
// node, superseding any previous attempt's token.
func (m *Machine) sendJoinFind() {
	j := m.join
	m.cancelFind(j.token)
	tok := m.newToken()
	pf := &pendingFind{onResp: m.completeJoin}
	pf.timer = m.clk.Schedule(m.findExpiry(), func() { delete(m.pendFind, tok) })
	m.pendFind[tok] = pf
	j.token = tok
	m.send(j.bootstrap, FindReq{
		From: m.self, Token: tok, Target: m.self.ID, TTL: m.cfg.FindTTL, ReplyTo: m.self,
	})
}

func (m *Machine) retryJoin() {
	if m.join == nil {
		return
	}
	if _, pending := m.pendFind[m.join.token]; pending {
		// The previous attempt is still inside its expiry window — its
		// answer may simply be several hops away. Re-issuing now would
		// cancel the token and turn every in-flight answer stale, which on
		// a slow path repeats forever (the retry period racing the lookup
		// round trip). Retry only once the lookup has provably expired.
		return
	}
	m.sendJoinFind()
}

// completeJoin adopts the successor the ring answered with.
func (m *Machine) completeJoin(succ Ref) {
	j := m.join
	if j == nil {
		return
	}
	m.join = nil
	if j.retry != nil {
		j.retry.Stop()
	}
	if succ.ID == m.self.ID {
		succ = m.self
	}
	m.succList = []Ref{succ}
	m.pred = nil
	m.publishView()
	m.StartMaintenance()
	if j.onJoined != nil {
		j.onJoined(succ)
	}
}

// StartMaintenance launches the periodic stabilize and fix-fingers tasks.
// Idempotent; a no-op when StabilizeEvery is zero.
func (m *Machine) StartMaintenance() {
	if m.stopped || len(m.tickers) > 0 || m.cfg.StabilizeEvery <= 0 {
		return
	}
	stabPh, fixPh := m.cfg.StabilizeEvery, m.cfg.FixFingersEvery
	if m.phaseSet {
		stabPh, fixPh = m.stabPh, m.fixPh
	}
	m.tickers = append(m.tickers, m.clk.EveryAfter(stabPh, m.cfg.StabilizeEvery, m.stabilizeTick))
	if m.cfg.FixFingersEvery > 0 {
		m.tickers = append(m.tickers, m.clk.EveryAfter(fixPh, m.cfg.FixFingersEvery, m.fixNextFinger))
	}
}

// Stop halts maintenance and cancels outstanding lookups; the machine
// ignores all further messages. Used for shutdown and crash simulation.
func (m *Machine) Stop() {
	m.stopped = true
	for _, t := range m.tickers {
		t.Stop()
	}
	m.tickers = nil
	for tok, pf := range m.pendFind {
		pf.timer.Cancel()
		delete(m.pendFind, tok)
	}
	if m.join != nil && m.join.retry != nil {
		m.join.retry.Stop()
	}
	m.join = nil
}

// --- Warm-start and splice mutators (simulator construction paths) ---

// InstallRing overwrites the machine's ring state wholesale: predecessor
// (nil clears it), successor list, and — when fingers is non-nil — the
// full finger table. The simulator's perfect-ring warm start (BuildStable)
// and the parity harness use it; the live protocol never does.
func (m *Machine) InstallRing(pred *Ref, succList []Ref, fingers []Ref) {
	if pred != nil {
		p := *pred
		m.pred = &p
	} else {
		m.pred = nil
	}
	m.succList = append(m.succList[:0], succList...)
	if fingers != nil {
		for i := range m.finger {
			if i < len(fingers) {
				m.finger[i] = fingers[i]
				m.fingerOK[i] = true
			} else {
				m.fingerOK[i] = false
			}
		}
	}
	m.publishView()
}

// AdoptPredecessor force-sets the predecessor (graceful-leave splice).
func (m *Machine) AdoptPredecessor(p Ref) {
	r := p
	m.pred = &r
	m.predSeen = true
	m.predMisses = 0
	m.publishView()
}

// ClearPredecessor force-clears the predecessor (graceful-leave splice).
func (m *Machine) ClearPredecessor() {
	m.pred = nil
	m.predMisses = 0
	m.publishView()
}

// AdoptSuccessors force-replaces the successor list (graceful-leave
// splice).
func (m *Machine) AdoptSuccessors(list []Ref) {
	m.succList = append(m.succList[:0], list...)
	m.stabMisses = 0
	m.publishView()
}

// --- Message handling ---

// Handle consumes one decoded control message. The substrate calls it
// after transport-level delivery (hop delay in simulation, socket read
// live).
func (m *Machine) Handle(msg any) {
	if m.stopped {
		return
	}
	switch c := msg.(type) {
	case FindReq:
		m.handleFindReq(c)
	case FindResp:
		m.handleFindResp(c)
	case StabReq:
		m.handleStabReq(c)
	case StabResp:
		m.handleStabResp(c)
	case Notify:
		m.considerPredecessor(c.From)
	case PingReq:
		m.send(c.From, PingResp{From: m.self})
	case PingResp:
		if m.pred != nil && c.From.ID == m.pred.ID {
			m.predSeen = true
		}
	}
	// Any handled message may have moved ring state (adopted successor,
	// new predecessor, resolved finger lookup); republish the snapshot.
	m.publishView()
}

// handleFindReq answers a successor lookup when this node covers the
// target, otherwise forwards it greedily toward the closest preceding
// routing entry.
func (m *Machine) handleFindReq(c FindReq) {
	if c.TTL <= 0 {
		// Exhausted (or corrupt) request: reject outright, never answer or
		// forward on borrowed time.
		m.stats.FindDrops++
		return
	}
	succ, ok := m.liveSuccessor()
	if !ok {
		return // not in a ring yet
	}
	// Standard Chord find_successor: if the target lies in (self, succ],
	// the successor is the answer.
	if succ.ID == m.self.ID || m.space.BetweenIncl(c.Target, m.self.ID, succ.ID) {
		answer := succ
		if succ.ID == m.self.ID {
			answer = m.self
		}
		if c.ReplyTo.ID == m.self.ID {
			// Local lookup resolved locally.
			m.resolveFind(c.Token, answer)
			return
		}
		m.send(c.ReplyTo, FindResp{From: m.self, Token: c.Token, Succ: answer})
		return
	}
	if c.TTL <= 1 {
		m.stats.FindDrops++
		return
	}
	next, ok := m.NextHop(c.Target)
	if !ok || next.ID == m.self.ID {
		m.stats.FindDrops++
		return
	}
	c.TTL--
	c.From = m.self
	m.send(next, c)
}

// handleFindResp resolves the matching pending lookup; responses whose
// token is gone (expired, superseded by a retry, duplicated) are stale
// and must be dropped — resolving them could install an outdated
// successor over a fresher answer.
func (m *Machine) handleFindResp(c FindResp) {
	if !m.resolveFind(c.Token, c.Succ) {
		m.stats.StaleFindResps++
	}
}

func (m *Machine) resolveFind(tok uint64, succ Ref) bool {
	pf := m.pendFind[tok]
	if pf == nil {
		return false
	}
	delete(m.pendFind, tok)
	pf.timer.Cancel()
	pf.onResp(succ)
	return true
}

// handleStabReq reports our predecessor and successor list back to the
// requester — who believes we are its successor, which makes it a
// predecessor candidate even before its explicit notify arrives.
func (m *Machine) handleStabReq(c StabReq) {
	resp := StabResp{From: m.self, SuccList: append([]Ref(nil), m.succList...)}
	if m.pred != nil {
		resp.HasPred, resp.Pred = true, *m.pred
	}
	m.send(c.From, resp)
	m.considerPredecessor(c.From)
}

// handleStabResp applies the successor's view: adopt a closer successor
// when its predecessor sits between us, refresh the successor list, then
// notify.
func (m *Machine) handleStabResp(c StabResp) {
	succ, ok := m.Successor()
	if !ok || c.From.ID != succ.ID {
		return // stale response from a node no longer our successor
	}
	m.stabSeen = true
	if c.HasPred && c.Pred.ID != m.self.ID && m.space.Between(c.Pred.ID, m.self.ID, succ.ID) {
		succ = c.Pred
	}
	// Rebuild the list: adopted successor first, then its successor list
	// with ourselves trimmed out.
	list := make([]Ref, 0, m.cfg.SuccListLen)
	list = append(list, succ)
	for _, r := range c.SuccList {
		if r.ID == m.self.ID {
			break
		}
		dup := false
		for _, have := range list {
			if have.ID == r.ID {
				dup = true
				break
			}
		}
		if !dup {
			list = append(list, r)
		}
		if len(list) == m.cfg.SuccListLen {
			break
		}
	}
	m.succList = list
	// finger[0] is the successor of self+1, i.e. the successor itself on a
	// converged ring: keep it hot without waiting for a repair cycle.
	if len(m.finger) > 0 && succ.ID != m.self.ID {
		m.finger[0] = succ
		m.fingerOK[0] = true
	}
	m.send(succ, Notify{From: m.self})
}

// considerPredecessor applies Chord's notify rule.
func (m *Machine) considerPredecessor(p Ref) {
	if p.ID == m.self.ID {
		return
	}
	if m.pred == nil || m.pred.ID == m.self.ID || m.space.Between(p.ID, m.pred.ID, m.self.ID) {
		r := p
		m.pred = &r
		m.predSeen = true
		m.predMisses = 0
	}
}

// --- Periodic maintenance ---

// stabilizeTick runs one maintenance round: account the previous round's
// (non-)responses, then probe the successor and the predecessor.
func (m *Machine) stabilizeTick() {
	// The tick can rotate the successor list or drop the predecessor on any
	// exit path, so republish unconditionally on the way out.
	defer m.publishView()
	m.stats.StabilizeRounds++
	// Successor accounting.
	succ, ok := m.Successor()
	if ok && succ.ID != m.self.ID {
		if m.stabSeen {
			m.stabMisses = 0
		} else {
			m.stabMisses++
			m.stats.StabilizeMisses++
			if m.stabMisses >= m.cfg.MissThreshold {
				// Presume the successor dead: rotate the list.
				m.stabMisses = 0
				m.stats.SuccRotations++
				if len(m.succList) > 1 {
					m.succList = m.succList[1:]
				} else if m.pred != nil && m.pred.ID != m.self.ID {
					m.succList = []Ref{*m.pred}
				} else {
					m.succList = []Ref{m.self}
				}
				succ, _ = m.Successor()
			}
		}
	}
	m.stabSeen = false

	// Predecessor accounting.
	if m.pred != nil && m.pred.ID != m.self.ID {
		if m.predSeen {
			m.predMisses = 0
		} else {
			m.predMisses++
			if m.predMisses >= m.cfg.MissThreshold {
				m.pred = nil
				m.predMisses = 0
				m.stats.PredDrops++
			}
		}
	}
	m.predSeen = false

	if !ok {
		return // not in a ring yet (join still in flight)
	}
	if succ.ID == m.self.ID {
		// Ring bootstrap: while the successor is still ourselves, the
		// first node that notified us becomes our successor — this is how
		// a one-node ring grows, per the Chord paper.
		if m.pred != nil && m.pred.ID != m.self.ID {
			m.succList = []Ref{*m.pred}
			succ = m.succList[0]
		} else {
			return // genuinely alone
		}
	}
	m.send(succ, StabReq{From: m.self})
	if m.pred != nil && m.pred.ID != m.self.ID {
		m.send(*m.pred, PingReq{From: m.self})
	}
}

// fixNextFinger refreshes one finger-table entry per firing, cycling
// through the table as Chord prescribes. A still-outstanding lookup for
// the same slot is superseded (its token cancelled) so a slow answer from
// a previous cycle can never overwrite a fresher one.
func (m *Machine) fixNextFinger() {
	if len(m.finger) == 0 || !m.Joined() {
		return
	}
	i := m.nextFinger
	m.nextFinger = (m.nextFinger + 1) % len(m.finger)
	if m.fingerTok[i] != 0 {
		m.cancelFind(m.fingerTok[i])
		m.fingerTok[i] = 0
	}
	target := m.space.Add(m.self.ID, 1<<uint(i))
	m.fingerTok[i] = m.findSuccessor(target, func(succ Ref) {
		m.fingerTok[i] = 0
		if !m.fingerOK[i] || m.finger[i].ID != succ.ID {
			m.stats.FingerRepairs++
		}
		m.finger[i] = succ
		m.fingerOK[i] = true
	})
	// A lookup the machine can answer itself resolves inline, mutating the
	// finger table before findSuccessor returns — republish either way.
	m.publishView()
}

// --- Lookups ---

// FindSuccessor resolves the successor node of key and calls onResp on
// the substrate's loop context. Unanswered lookups expire silently.
func (m *Machine) FindSuccessor(key dht.Key, onResp func(Ref)) {
	m.findSuccessor(m.space.Wrap(key), onResp)
}

func (m *Machine) findSuccessor(key dht.Key, onResp func(Ref)) uint64 {
	tok := m.newToken()
	pf := &pendingFind{onResp: onResp}
	pf.timer = m.clk.Schedule(m.findExpiry(), func() { delete(m.pendFind, tok) })
	m.pendFind[tok] = pf
	m.handleFindReq(FindReq{
		From: m.self, Token: tok, Target: key, TTL: m.cfg.FindTTL, ReplyTo: m.self,
	})
	return tok
}

// cancelFind forgets an outstanding lookup; a later answer carrying its
// token is then stale by construction.
func (m *Machine) cancelFind(tok uint64) {
	if pf := m.pendFind[tok]; pf != nil {
		delete(m.pendFind, tok)
		pf.timer.Cancel()
	}
}

func (m *Machine) newToken() uint64 {
	m.nextToken++
	return m.nextToken
}

// findExpiry is how long a pending lookup may stay unanswered.
func (m *Machine) findExpiry() sim.Time {
	p := m.cfg.StabilizeEvery
	if p <= 0 {
		p = m.cfg.JoinRetryEvery
	}
	return p * sim.Time(m.cfg.MissThreshold)
}

// --- Routing state accessors ---

// Successor returns the raw head of the successor list.
func (m *Machine) Successor() (Ref, bool) {
	if len(m.succList) == 0 {
		return Ref{}, false
	}
	return m.succList[0], true
}

// LiveSuccessor returns the first successor-list entry passing the alive
// filter (the raw head when no filter is installed).
func (m *Machine) LiveSuccessor() (Ref, bool) { return m.liveSuccessor() }

func (m *Machine) liveSuccessor() (Ref, bool) {
	for _, s := range m.succList {
		if m.alive == nil || m.alive(s.ID) {
			return s, true
		}
	}
	return Ref{}, false
}

// Predecessor returns the raw predecessor pointer.
func (m *Machine) Predecessor() (Ref, bool) {
	if m.pred == nil {
		return Ref{}, false
	}
	return *m.pred, true
}

// LivePredecessor returns the predecessor if known and passing the alive
// filter.
func (m *Machine) LivePredecessor() (Ref, bool) {
	if m.pred == nil || (m.alive != nil && !m.alive(m.pred.ID)) {
		return Ref{}, false
	}
	return *m.pred, true
}

// SuccessorList returns a copy of the successor list.
func (m *Machine) SuccessorList() []Ref {
	return append([]Ref(nil), m.succList...)
}

// Finger returns entry i of the finger table (the successor of
// self + 2^i) and whether it has been populated.
func (m *Machine) Finger(i int) (Ref, bool) {
	if i < 0 || i >= len(m.finger) || !m.fingerOK[i] {
		return Ref{}, false
	}
	return m.finger[i], true
}

// FingerCount returns the number of populated finger entries.
func (m *Machine) FingerCount() int {
	n := 0
	for _, ok := range m.fingerOK {
		if ok {
			n++
		}
	}
	return n
}

// EachRoutingEntry calls fn for every populated routing-state entry:
// finger-table entries first (ascending), then the successor list.
// Entries may repeat; callers dedup.
func (m *Machine) EachRoutingEntry(fn func(Ref)) {
	for i, ok := range m.fingerOK {
		if ok {
			fn(m.finger[i])
		}
	}
	for _, s := range m.succList {
		fn(s)
	}
}

// Covers reports whether this node is the successor node of key: key in
// (pred, self]. With no predecessor the node conservatively covers only
// its own identifier (routing passes other keys to a stabilized neighbor
// instead).
func (m *Machine) Covers(key dht.Key) bool {
	if m.pred == nil {
		return key == m.self.ID
	}
	return m.space.BetweenIncl(key, m.pred.ID, m.self.ID)
}

// NextHop picks the forwarding target for key, per Chord's routing rule:
// the successor when key lies in (self, succ], otherwise the closest
// preceding routing entry (fingers then successor list), alive-filtered.
func (m *Machine) NextHop(key dht.Key) (Ref, bool) {
	succ, ok := m.liveSuccessor()
	if !ok {
		return Ref{}, false
	}
	if m.space.BetweenIncl(key, m.self.ID, succ.ID) {
		return succ, true
	}
	if c, ok := m.ClosestPreceding(key); ok {
		return c, true
	}
	return succ, true
}

// ClosestPreceding returns the routing-state entry that most immediately
// precedes key — Chord's closest_preceding_finger, hardened against
// entries rejected by the alive filter.
func (m *Machine) ClosestPreceding(key dht.Key) (Ref, bool) {
	best := Ref{}
	found := false
	consider := func(c Ref) {
		if c.ID == m.self.ID || (m.alive != nil && !m.alive(c.ID)) {
			return
		}
		if !m.space.Between(c.ID, m.self.ID, key) {
			return
		}
		if !found || m.space.Between(best.ID, m.self.ID, c.ID) {
			best, found = c, true
		}
	}
	for i := len(m.finger) - 1; i >= 0; i-- {
		if m.fingerOK[i] {
			consider(m.finger[i])
		}
	}
	for _, s := range m.succList {
		consider(s)
	}
	return best, found
}

// --- Published routing view --------------------------------------------------

// View is an immutable snapshot of the machine's routing state — self,
// predecessor, successor list, populated fingers — published through an
// atomic pointer so goroutines outside the loop can make routing decisions
// (Covers, NextHop) wait-free. The live node's data-plane workers route
// decoded frames against it without posting to the control loop.
//
// The view deliberately omits the alive filter: only the simulator installs
// one, and the simulator never reads views (its event loop calls the
// machine directly). View routing therefore mirrors the machine's
// unfiltered behavior — exactly what the live transport runs.
type View struct {
	space dht.Space

	// Self is the owning node.
	Self Ref
	// Pred is the predecessor when HasPred.
	HasPred bool
	Pred    Ref
	// Succs is the successor list, nearest first. Empty until the node has
	// joined a ring.
	Succs []Ref
	// Fingers holds the populated finger-table entries in ascending slot
	// order (unpopulated slots are skipped).
	Fingers []Ref
}

// publishView snapshots the current ring state. Loop-only, like every other
// mutator.
func (m *Machine) publishView() {
	v := &View{space: m.space, Self: m.self}
	if m.pred != nil {
		v.HasPred, v.Pred = true, *m.pred
	}
	if len(m.succList) > 0 {
		v.Succs = append(make([]Ref, 0, len(m.succList)), m.succList...)
	}
	for i, ok := range m.fingerOK {
		if ok {
			v.Fingers = append(v.Fingers, m.finger[i])
		}
	}
	prev := m.view.Load()
	m.view.Store(v)
	if m.neighborWatch != nil && neighborhoodChanged(prev, v) {
		m.neighborWatch()
	}
}

// neighborhoodChanged reports whether the predecessor or first successor
// differs between two views.
func neighborhoodChanged(prev, cur *View) bool {
	if prev == nil {
		return cur.HasPred || len(cur.Succs) > 0
	}
	if prev.HasPred != cur.HasPred || (cur.HasPred && prev.Pred.ID != cur.Pred.ID) {
		return true
	}
	ps, pok := prev.Successor()
	cs, cok := cur.Successor()
	return pok != cok || (cok && ps.ID != cs.ID)
}

// View returns the most recently published routing snapshot. Safe from any
// goroutine; never nil. The static type is the substrate-neutral
// overlay.View; the dynamic type is always *View.
func (m *Machine) View() overlay.View { return m.view.Load() }

// Joined reports whether the snapshot has ring state.
func (v *View) Joined() bool { return len(v.Succs) > 0 }

// Owner returns the node the snapshot belongs to.
func (v *View) Owner() Ref { return v.Self }

// SuccRefs returns the successor list (the snapshot's own slice; views are
// immutable, so callers must not mutate it).
func (v *View) SuccRefs() []Ref { return v.Succs }

// Successor returns the head of the successor list.
func (v *View) Successor() (Ref, bool) {
	if len(v.Succs) == 0 {
		return Ref{}, false
	}
	return v.Succs[0], true
}

// Predecessor returns the predecessor pointer.
func (v *View) Predecessor() (Ref, bool) {
	return v.Pred, v.HasPred
}

// Covers mirrors Machine.Covers: key in (pred, self], or exactly self when
// no predecessor is known.
func (v *View) Covers(key dht.Key) bool {
	if !v.HasPred {
		return key == v.Self.ID
	}
	return v.space.BetweenIncl(key, v.Pred.ID, v.Self.ID)
}

// NextHop mirrors Machine.NextHop without an alive filter: the successor
// when key lies in (self, succ], otherwise the closest preceding routing
// entry, falling back to the successor.
func (v *View) NextHop(key dht.Key) (Ref, bool) {
	succ, ok := v.Successor()
	if !ok {
		return Ref{}, false
	}
	if v.space.BetweenIncl(key, v.Self.ID, succ.ID) {
		return succ, true
	}
	if c, ok := v.ClosestPreceding(key); ok {
		return c, true
	}
	return succ, true
}

// ClosestPreceding mirrors Machine.ClosestPreceding without an alive
// filter: fingers from the highest populated slot down, then the successor
// list.
func (v *View) ClosestPreceding(key dht.Key) (Ref, bool) {
	best := Ref{}
	found := false
	consider := func(c Ref) {
		if c.ID == v.Self.ID {
			return
		}
		if !v.space.Between(c.ID, v.Self.ID, key) {
			return
		}
		if !found || v.space.Between(best.ID, v.Self.ID, c.ID) {
			best, found = c, true
		}
	}
	for i := len(v.Fingers) - 1; i >= 0; i-- {
		consider(v.Fingers[i])
	}
	for _, s := range v.Succs {
		consider(s)
	}
	return best, found
}
