package protocol

// Registration of the Chord machine with the substrate-neutral overlay
// registry, plus the few adapter methods that complete overlay.Machine.
// The machine itself predates the registry; nothing here changes its
// behavior — the factory must construct exactly what the simulator and
// transport historically constructed by hand, so the golden figures stay
// bitwise identical.

import (
	"streamdex/internal/clock"
	"streamdex/internal/dht"
	"streamdex/internal/overlay"
)

// MachineName is the registry key of the Chord machine.
const MachineName = "chord"

func init() {
	overlay.Register(overlay.Factory{
		Name:      MachineName,
		New:       newMachine,
		Longlinks: Longlinks,
	})
}

func newMachine(cfg overlay.Config, self Ref, clk clock.Clock, send func(to Ref, msg any)) overlay.Machine {
	return New(Config{
		Space:           cfg.Space,
		SuccListLen:     cfg.SuccListLen,
		StabilizeEvery:  cfg.StabilizeEvery,
		FixFingersEvery: cfg.FixFingersEvery,
		JoinRetryEvery:  cfg.JoinRetryEvery,
		MissThreshold:   cfg.MissThreshold,
		FindTTL:         cfg.FindTTL,
	}, self, clk, send)
}

// Longlinks computes the perfect finger table for a warm start:
// finger[i] = successor(self + 2^i) over the sorted live ring. This is the
// historical BuildStable computation, hoisted behind the factory so the
// simulator stays substrate-blind.
func Longlinks(cfg overlay.Config, ring []dht.Key, self dht.Key) []Ref {
	fingers := make([]Ref, cfg.Space.M)
	for i := range fingers {
		target := cfg.Space.Add(self, 1<<uint(i))
		s, _ := overlay.SuccessorOnRing(cfg.Space, ring, target)
		fingers[i] = Ref{ID: s}
	}
	return fingers
}

// Name implements overlay.Machine.
func (m *Machine) Name() string { return MachineName }

// Tick implements overlay.Machine: one stabilize round plus one finger
// repair, synchronously (deterministic harnesses without tickers).
func (m *Machine) Tick() {
	if m.stopped {
		return
	}
	m.stabilizeTick()
	m.fixNextFinger()
}

// LonglinkCount implements overlay.Machine: populated finger entries.
func (m *Machine) LonglinkCount() int { return m.FingerCount() }
