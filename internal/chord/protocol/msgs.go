package protocol

// Control-plane message kinds and their wire codecs.
//
// Every ring-maintenance exchange is one of seven message types. The same
// Go values are what the state machine consumes (Machine.Handle) and what
// travels on the wire: the simulator delivers them through the event
// engine after the per-hop delay, the TCP transport frames them with the
// packed codec v2 — no gob union, no transport-private control record.
//
//   - FindReq/FindResp: locate the successor node of a key. The request is
//     greedily routed along the ring; the node covering the key answers the
//     requester directly. Used by join and finger repair.
//   - StabReq/StabResp: Chord's stabilize. The successor reports its
//     predecessor and successor list; the requester adopts a closer
//     successor when one appears and then notifies.
//   - Notify: "I might be your predecessor."
//   - PingReq/PingResp: predecessor liveness probe.

import (
	"fmt"

	"streamdex/internal/dht"
	"streamdex/internal/overlay"
	"streamdex/internal/wire"
)

// KindRing is the dht.Kind under which all ring-maintenance payloads
// travel — shared by every routing machine (see overlay.KindRing). The
// middleware's metrics classifier files it under the catch-all category,
// so maintenance traffic is observable and chargeable without perturbing
// the per-kind accounting of the paper's figures.
const KindRing = overlay.KindRing

// Ref identifies a remote node: its ring identifier plus a substrate
// address. The state machine compares refs by ID only; the simulator
// leaves Addr empty and routes by ID, the TCP transport dials Addr.
type Ref = overlay.Ref

// FindReq asks the ring for the successor node of Target. It is routed
// greedily (TTL-bounded); whoever covers the target replies to ReplyTo
// with a FindResp carrying the same Token.
type FindReq struct {
	From    Ref // sending hop (identity + reply address)
	Token   uint64
	Target  dht.Key
	TTL     int
	ReplyTo Ref
}

// FindResp answers a FindReq: Succ is the successor node of the requested
// target. Token matches the request; responses whose token is no longer
// pending (expired, superseded by a retry, or duplicated) are discarded.
type FindResp struct {
	From  Ref
	Token uint64
	Succ  Ref
}

// StabReq asks the receiver — the sender's believed successor — for its
// predecessor and successor list.
type StabReq struct {
	From Ref
}

// StabResp is the successor's view: its predecessor (when known) and its
// successor list, from which the requester refreshes its own.
type StabResp struct {
	From     Ref
	HasPred  bool
	Pred     Ref
	SuccList []Ref
}

// Notify tells the receiver the sender might be its predecessor.
type Notify struct {
	From Ref
}

// PingReq probes a neighbor for liveness.
type PingReq struct {
	From Ref
}

// PingResp answers a PingReq.
type PingResp struct {
	From Ref
}

// Packed payload codec tags. One byte on the wire after the envelope; both
// ends of a connection must agree, so these values are protocol, not
// implementation detail: never renumber, only append. Tags 1-9 belong to
// the middleware payloads (internal/core); the control plane starts at 16
// to leave the middleware headroom.
const (
	tagFindReq uint8 = iota + 16
	tagFindResp
	tagStabReq
	tagStabResp
	tagNotify
	tagPingReq
	tagPingResp
)

func init() {
	wire.RegisterPackedPayload(tagFindReq, FindReq{}, codecFuncs{encFindReq, decFindReq})
	wire.RegisterPackedPayload(tagFindResp, FindResp{}, codecFuncs{encFindResp, decFindResp})
	wire.RegisterPackedPayload(tagStabReq, StabReq{}, codecFuncs{encStabReq, decStabReq})
	wire.RegisterPackedPayload(tagStabResp, StabResp{}, codecFuncs{encStabResp, decStabResp})
	wire.RegisterPackedPayload(tagNotify, Notify{}, codecFuncs{encNotify, decNotify})
	wire.RegisterPackedPayload(tagPingReq, PingReq{}, codecFuncs{encPingReq, decPingReq})
	wire.RegisterPackedPayload(tagPingResp, PingResp{}, codecFuncs{encPingResp, decPingResp})
	// Gob registration keeps the types usable nested inside third-party
	// payloads; framed control traffic always takes the packed path.
	wire.RegisterPayload(FindReq{})
	wire.RegisterPayload(FindResp{})
	wire.RegisterPayload(StabReq{})
	wire.RegisterPayload(StabResp{})
	wire.RegisterPayload(Notify{})
	wire.RegisterPayload(PingReq{})
	wire.RegisterPayload(PingResp{})
}

// codecFuncs adapts an encode/decode function pair to wire.PayloadCodec.
type codecFuncs struct {
	enc func(dst []byte, p any) ([]byte, error)
	dec func(data []byte) (any, error)
}

func (c codecFuncs) Append(dst []byte, p any) ([]byte, error) { return c.enc(dst, p) }
func (c codecFuncs) Decode(data []byte) (any, error)          { return c.dec(data) }

func errType(want string, got any) error {
	return fmt.Errorf("protocol: codec for %s got %T", want, got)
}

// --- Ref: id(uvar) | addr(string) ---

func appendRef(dst []byte, r Ref) []byte {
	dst = wire.AppendUvarint(dst, uint64(r.ID))
	return wire.AppendString(dst, r.Addr)
}

func readRef(r *wire.Reader) Ref {
	id := dht.Key(r.Uvarint())
	addr := r.String()
	return Ref{ID: id, Addr: addr}
}

// --- FindReq: from(ref) | token(uvar) | target(uvar) | ttl(var) | replyTo(ref) ---

func encFindReq(dst []byte, p any) ([]byte, error) {
	c, ok := p.(FindReq)
	if !ok {
		return nil, errType("FindReq", p)
	}
	dst = appendRef(dst, c.From)
	dst = wire.AppendUvarint(dst, c.Token)
	dst = wire.AppendUvarint(dst, uint64(c.Target))
	dst = wire.AppendVarint(dst, int64(c.TTL))
	dst = appendRef(dst, c.ReplyTo)
	return dst, nil
}

func decFindReq(data []byte) (any, error) {
	r := wire.NewReader(data)
	var c FindReq
	c.From = readRef(&r)
	c.Token = r.Uvarint()
	c.Target = dht.Key(r.Uvarint())
	c.TTL = int(r.Varint())
	c.ReplyTo = readRef(&r)
	if err := r.Done(); err != nil {
		return nil, err
	}
	return c, nil
}

// --- FindResp: from(ref) | token(uvar) | succ(ref) ---

func encFindResp(dst []byte, p any) ([]byte, error) {
	c, ok := p.(FindResp)
	if !ok {
		return nil, errType("FindResp", p)
	}
	dst = appendRef(dst, c.From)
	dst = wire.AppendUvarint(dst, c.Token)
	dst = appendRef(dst, c.Succ)
	return dst, nil
}

func decFindResp(data []byte) (any, error) {
	r := wire.NewReader(data)
	var c FindResp
	c.From = readRef(&r)
	c.Token = r.Uvarint()
	c.Succ = readRef(&r)
	if err := r.Done(); err != nil {
		return nil, err
	}
	return c, nil
}

// --- StabReq: from(ref) ---

func encStabReq(dst []byte, p any) ([]byte, error) {
	c, ok := p.(StabReq)
	if !ok {
		return nil, errType("StabReq", p)
	}
	return appendRef(dst, c.From), nil
}

func decStabReq(data []byte) (any, error) {
	r := wire.NewReader(data)
	c := StabReq{From: readRef(&r)}
	if err := r.Done(); err != nil {
		return nil, err
	}
	return c, nil
}

// --- StabResp: from(ref) | hasPred(bool) | [pred(ref)] | count(uvar) | succ refs ---

func encStabResp(dst []byte, p any) ([]byte, error) {
	c, ok := p.(StabResp)
	if !ok {
		return nil, errType("StabResp", p)
	}
	dst = appendRef(dst, c.From)
	dst = wire.AppendBool(dst, c.HasPred)
	if c.HasPred {
		dst = appendRef(dst, c.Pred)
	}
	dst = wire.AppendUvarint(dst, uint64(len(c.SuccList)))
	for _, s := range c.SuccList {
		dst = appendRef(dst, s)
	}
	return dst, nil
}

func decStabResp(data []byte) (any, error) {
	r := wire.NewReader(data)
	var c StabResp
	c.From = readRef(&r)
	c.HasPred = r.Bool()
	if c.HasPred {
		c.Pred = readRef(&r)
	}
	n := r.Uvarint()
	// Each ref is at least two bytes (one-byte id varint, zero-length
	// addr), so a count exceeding half the remaining bytes is corrupt.
	if n > uint64(r.Len())/2 {
		r.Failf("protocol: %d successor refs with %d bytes remaining", n, r.Len())
	}
	if r.Err() == nil && n > 0 {
		c.SuccList = make([]Ref, n)
		for i := range c.SuccList {
			c.SuccList[i] = readRef(&r)
		}
	}
	if err := r.Done(); err != nil {
		return nil, err
	}
	return c, nil
}

// --- Notify / PingReq / PingResp: from(ref) ---

func encNotify(dst []byte, p any) ([]byte, error) {
	c, ok := p.(Notify)
	if !ok {
		return nil, errType("Notify", p)
	}
	return appendRef(dst, c.From), nil
}

func decNotify(data []byte) (any, error) {
	r := wire.NewReader(data)
	c := Notify{From: readRef(&r)}
	if err := r.Done(); err != nil {
		return nil, err
	}
	return c, nil
}

func encPingReq(dst []byte, p any) ([]byte, error) {
	c, ok := p.(PingReq)
	if !ok {
		return nil, errType("PingReq", p)
	}
	return appendRef(dst, c.From), nil
}

func decPingReq(data []byte) (any, error) {
	r := wire.NewReader(data)
	c := PingReq{From: readRef(&r)}
	if err := r.Done(); err != nil {
		return nil, err
	}
	return c, nil
}

func encPingResp(dst []byte, p any) ([]byte, error) {
	c, ok := p.(PingResp)
	if !ok {
		return nil, errType("PingResp", p)
	}
	return appendRef(dst, c.From), nil
}

func decPingResp(data []byte) (any, error) {
	r := wire.NewReader(data)
	c := PingResp{From: readRef(&r)}
	if err := r.Done(); err != nil {
		return nil, err
	}
	return c, nil
}
