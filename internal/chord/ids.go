package chord

import (
	"fmt"
	"sort"

	"streamdex/internal/dht"
)

// UniformIDs returns n distinct node identifiers obtained by consistent
// hashing of synthetic node names ("node-0", "node-1", ...), the way Chord
// assigns identifiers from IP addresses. Collisions — astronomically rare
// for m = 32 and n <= a few thousand — are resolved by re-labelling.
func UniformIDs(s dht.Space, n int) []dht.Key {
	if n <= 0 {
		panic("chord: UniformIDs with n <= 0")
	}
	seen := make(map[dht.Key]bool, n)
	out := make([]dht.Key, 0, n)
	for i := 0; len(out) < n; i++ {
		id := s.HashString(fmt.Sprintf("node-%d", i))
		if seen[id] {
			continue
		}
		seen[id] = true
		out = append(out, id)
	}
	return out
}

// EquidistantIDs returns n identifiers evenly spaced around the ring — the
// idealized placement used to isolate load-mapping effects from placement
// randomness in ablations.
func EquidistantIDs(s dht.Space, n int) []dht.Key {
	if n <= 0 {
		panic("chord: EquidistantIDs with n <= 0")
	}
	if uint64(n) > s.Size() {
		panic("chord: more nodes than identifiers")
	}
	out := make([]dht.Key, n)
	step := s.Size() / uint64(n)
	for i := range out {
		out[i] = dht.Key(uint64(i) * step)
	}
	return out
}

// SortKeys sorts identifiers ascending, in place, and returns the slice.
func SortKeys(ids []dht.Key) []dht.Key {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}
