package chord

import (
	"sort"

	"streamdex/internal/dht"
	"streamdex/internal/overlay"
)

// DelegateRange implements dht.RangeDelegator: tree-structured range
// dissemination over the machine's long-distance routing entries (in the
// style of structured-overlay broadcast), providing the "efficient native
// support of multicast to a range of keys" the paper identifies as the
// cure for the linear propagation delay of sequential range coverage
// (§IV-C, §VI-B).
//
// The node splits its remaining arc (self, RangeEnd] among its live
// routing entries inside the arc — Chord fingers or Koorde de Bruijn
// pointers, whatever EachRoutingEntry yields: each child receives the
// message together with a sub-range ending just before the next child,
// and recurses. Because the entries are spread across the arc, the
// dissemination depth stays logarithmic in the covered nodes while the
// total message count stays one per covered node — the same cost as the
// sequential walk at a fraction of the delay (measured by ablation A1).
func (net *Network) DelegateRange(self dht.Key, msg *dht.Message) int {
	n := net.nodes[self]
	if n == nil || !n.alive {
		net.dropped++
		return 0
	}
	hi := msg.RangeEnd
	// Machines whose routing entries cannot subdivide the remaining arc
	// (overlay.ArcSplitter — Koorde) re-split it into routed sub-range
	// legs instead; each leg's sub-arc is small enough to finish in one
	// successor-list fan-out, so depth stays logarithmic where the kid
	// walk below would degrade to a successor pipeline. Every split at
	// least halves the arc, so the recursion terminates.
	if sp, ok := n.m.(overlay.ArcSplitter); ok {
		if heads := sp.SplitHeads(net.space.Add(self, 1), hi); len(heads) >= 2 {
			return net.sendSplitLegs(self, msg, heads)
		}
	}
	// Collect the distinct live routing-state entries inside (self, hi].
	seen := make(map[dht.Key]bool)
	var kids []dht.Key
	n.m.EachRoutingEntry(func(r overlay.Ref) {
		c := r.ID
		if c == self || seen[c] || !net.isAlive(c) {
			return
		}
		if !net.space.BetweenIncl(c, self, hi) {
			return
		}
		seen[c] = true
		kids = append(kids, c)
	})
	if len(kids) == 0 {
		// No routing entry inside the arc. The keys left in (self, hi]
		// belong to the node succeeding them: reach it only on the
		// rightmost path — interior subtrees' parents already delivered
		// to the sibling that covers these keys.
		if !msg.RangeTail {
			return 0
		}
		c := msg.Clone()
		c.Dir = +1
		// Advance the covered-arc marker (see dht.ContinueRange) so a
		// range wrapping the whole ring terminates at the successor
		// instead of starting a second sequential lap.
		c.RangeStart = net.space.Add(self, 1)
		net.SendToSuccessor(self, c)
		return 1
	}
	// Ring order away from self: ascending clockwise distance.
	sort.Slice(kids, func(i, j int) bool {
		return net.space.Distance(self, kids[i]) < net.space.Distance(self, kids[j])
	})
	for j, kid := range kids {
		c := msg.Clone()
		c.Dir = +1
		c.RangeStart = net.space.Add(self, 1)
		if j+1 < len(kids) {
			// This child's subtree ends just before the next child and
			// never owns the tail.
			c.RangeEnd = net.space.Add(kids[j+1], net.space.Size()-1)
			c.RangeTail = false
		}
		// The last child inherits the parent's tail ownership (already
		// carried in the clone).
		net.transmit(self, kid, c, false)
	}
	return len(kids)
}

// Compile-time check.
var _ dht.RangeDelegator = (*Network)(nil)
