package chord

import (
	"testing"

	"streamdex/internal/dht"
	"streamdex/internal/sim"
)

func dynConfig(m uint) Config {
	return Config{
		Space:           dht.NewSpace(m),
		HopDelay:        5 * sim.Millisecond,
		SuccListLen:     4,
		StabilizeEvery:  100 * sim.Millisecond,
		FixFingersEvery: 50 * sim.Millisecond,
	}
}

// ringConsistent checks that every live node's successor and predecessor
// pointers agree with the oracle ring.
func ringConsistent(t *testing.T, net *Network) {
	t.Helper()
	ids := net.NodeIDs()
	sz := len(ids)
	for i, id := range ids {
		n := net.Node(id)
		wantSucc := ids[(i+1)%sz]
		if got := n.Successor(); got != wantSucc {
			t.Fatalf("node %d successor = %d, want %d", id, got, wantSucc)
		}
		wantPred := ids[(i-1+sz)%sz]
		if pred, ok := n.Predecessor(); !ok || pred != wantPred {
			t.Fatalf("node %d predecessor = %d (ok=%v), want %d", id, pred, ok, wantPred)
		}
	}
}

func TestIncrementalJoinStabilizes(t *testing.T) {
	eng := sim.NewEngine()
	net := New(eng, dynConfig(16))
	ids := UniformIDs(net.Space(), 24)
	net.CreateFirst(ids[0], nil)
	for _, id := range ids[1:] {
		if _, err := net.Join(id, nil, ids[0]); err != nil {
			t.Fatalf("join %d: %v", id, err)
		}
		eng.RunFor(400 * sim.Millisecond) // a few stabilization rounds
	}
	eng.RunFor(5 * sim.Second)
	ringConsistent(t, net)
}

func TestMassJoinThenStabilize(t *testing.T) {
	eng := sim.NewEngine()
	net := New(eng, dynConfig(16))
	ids := UniformIDs(net.Space(), 32)
	net.CreateFirst(ids[0], nil)
	// All nodes join nearly simultaneously through the same bootstrap.
	for _, id := range ids[1:] {
		if _, err := net.Join(id, nil, ids[0]); err != nil {
			t.Fatalf("join %d: %v", id, err)
		}
	}
	eng.RunFor(20 * sim.Second)
	ringConsistent(t, net)
}

func TestGracefulLeaveSplicesRing(t *testing.T) {
	eng := sim.NewEngine()
	net := New(eng, dynConfig(16))
	ids := SortKeys(UniformIDs(net.Space(), 16))
	net.BuildStable(ids, nil)
	// Remove every third node gracefully.
	for i := 0; i < len(ids); i += 3 {
		net.Leave(ids[i])
	}
	eng.RunFor(5 * sim.Second)
	ringConsistent(t, net)
}

func TestCrashFailureRepairs(t *testing.T) {
	eng := sim.NewEngine()
	net := New(eng, dynConfig(16))
	ids := SortKeys(UniformIDs(net.Space(), 20))
	net.BuildStable(ids, nil)
	// Crash 5 random-ish nodes abruptly: no splicing, neighbors must
	// detect the failure through stabilization.
	for _, i := range []int{1, 6, 7, 12, 19} {
		net.Fail(ids[i])
	}
	eng.RunFor(20 * sim.Second)
	ringConsistent(t, net)
	if net.Len() != 15 {
		t.Fatalf("live nodes = %d, want 15", net.Len())
	}
}

func TestRoutingWorksAfterChurn(t *testing.T) {
	eng := sim.NewEngine()
	net := New(eng, dynConfig(16))
	ids := SortKeys(UniformIDs(net.Space(), 20))
	net.BuildStable(ids, nil)
	net.Fail(ids[3])
	net.Fail(ids[11])
	net.Leave(ids[17])
	eng.RunFor(20 * sim.Second)

	delivered := map[dht.Key]dht.Key{}
	for _, id := range net.NodeIDs() {
		net.SetApp(id, dht.AppFunc(func(self dht.Key, msg *dht.Message) {
			delivered[msg.Key] = self
		}))
	}
	rng := sim.NewRand(21)
	keys := make([]dht.Key, 100)
	live := net.NodeIDs()
	for i := range keys {
		keys[i] = dht.Key(rng.Int63()) & net.Space().Mask()
		net.Send(live[rng.Intn(len(live))], keys[i], &dht.Message{})
	}
	eng.RunFor(30 * sim.Second)
	for _, k := range keys {
		want, _ := net.OracleSuccessor(k)
		if delivered[k] != want {
			t.Fatalf("post-churn: key %d delivered at %d, oracle %d", k, delivered[k], want)
		}
	}
}

func TestFingerTablesConvergeAfterJoin(t *testing.T) {
	eng := sim.NewEngine()
	net := New(eng, dynConfig(12))
	ids := UniformIDs(net.Space(), 12)
	net.CreateFirst(ids[0], nil)
	for _, id := range ids[1:] {
		if _, err := net.Join(id, nil, ids[0]); err != nil {
			t.Fatal(err)
		}
	}
	// Enough rounds for fix-fingers to cycle the whole table (m=12
	// entries at one per 50 ms -> 600 ms per full cycle).
	eng.RunFor(30 * sim.Second)
	for _, id := range net.NodeIDs() {
		n := net.Node(id)
		for i := 0; i < int(net.Space().M); i++ {
			got, ok := n.Finger(i)
			if !ok {
				t.Fatalf("node %d finger[%d] unpopulated", id, i)
			}
			want, _ := net.OracleSuccessor(net.Space().Add(id, 1<<uint(i)))
			if got != want {
				t.Fatalf("node %d finger[%d] = %d, want %d", id, i, got, want)
			}
		}
	}
}

func TestJoinRequiresLiveBootstrap(t *testing.T) {
	eng := sim.NewEngine()
	net := New(eng, dynConfig(12))
	ids := UniformIDs(net.Space(), 3)
	net.CreateFirst(ids[0], nil)
	net.Fail(ids[0])
	if _, err := net.Join(ids[1], nil, ids[0]); err == nil {
		t.Fatal("join through a dead bootstrap should fail")
	}
}

func TestSingleNodeRingCoversEverything(t *testing.T) {
	eng := sim.NewEngine()
	net := New(eng, dynConfig(12))
	id := net.Space().HashString("only")
	net.CreateFirst(id, nil)
	count := 0
	net.SetApp(id, dht.AppFunc(func(self dht.Key, msg *dht.Message) { count++ }))
	for k := uint64(0); k < 50; k++ {
		net.Send(id, dht.Key(k*81), &dht.Message{})
	}
	eng.RunFor(sim.Second)
	if count != 50 {
		t.Fatalf("single node delivered %d of 50 messages", count)
	}
}

func TestMessagesToFailedRegionRerouteAfterRepair(t *testing.T) {
	eng := sim.NewEngine()
	net := New(eng, dynConfig(16))
	ids := SortKeys(UniformIDs(net.Space(), 10))
	net.BuildStable(ids, nil)
	victim := ids[4]
	net.Fail(victim)
	eng.RunFor(20 * sim.Second) // let the ring heal

	// A key previously covered by the victim must now be delivered to the
	// victim's successor.
	key := victim // the node's own id was covered by it
	var deliveredAt dht.Key
	for _, id := range net.NodeIDs() {
		net.SetApp(id, dht.AppFunc(func(self dht.Key, msg *dht.Message) { deliveredAt = self }))
	}
	net.Send(ids[0], key, &dht.Message{})
	eng.RunFor(10 * sim.Second)
	want, _ := net.OracleSuccessor(key)
	if deliveredAt != want {
		t.Fatalf("key %d delivered at %d after repair, want %d", key, deliveredAt, want)
	}
}

func TestLeaveIsIdempotent(t *testing.T) {
	eng := sim.NewEngine()
	net := New(eng, dynConfig(12))
	ids := UniformIDs(net.Space(), 4)
	net.BuildStable(ids, nil)
	net.Leave(ids[0])
	net.Leave(ids[0]) // no-op
	net.Fail(ids[1])
	net.Fail(ids[1]) // no-op
	eng.RunFor(2 * sim.Second)
	if net.Len() != 2 {
		t.Fatalf("live = %d, want 2", net.Len())
	}
}
