// Package chord implements the Chord content-based routing protocol
// (Stoica et al., SIGCOMM 2001) as a discrete-event simulation, standing in
// for the publicly available Chord simulator the paper's prototype was
// linked against (§V).
//
// It provides:
//
//   - the identifier circle with consistent hashing (package dht),
//   - per-node finger tables giving O(log N) lookups (paper §II-B.1,
//     Fig. 1),
//   - successor lists and the join/stabilize/notify/fix-fingers maintenance
//     protocol, so nodes can join, leave gracefully, or crash while the ring
//     self-repairs,
//   - a simulated network that routes application messages hop by hop with
//     a constant per-hop delay (50 ms in the paper's configuration) and
//     reports every transmission and delivery to an observer for the
//     evaluation's message accounting.
//
// The control plane is the shared message-driven protocol state machine
// (internal/chord/protocol) — the same code the live TCP transport runs.
// The simulator's adapter delivers its control messages through the event
// engine with the per-hop delay, so maintenance traffic is observable and
// chargeable exactly like data traffic, and churn scenarios exercise the
// protocol that actually deploys.
package chord

import (
	"fmt"

	"streamdex/internal/chord/protocol"
	"streamdex/internal/dht"
	"streamdex/internal/metrics"
	"streamdex/internal/overlay"
)

// Node is one simulated overlay node (a data center / sensor proxy in the
// paper's architecture). Its ring state lives in the embedded routing
// machine; the Node itself carries only simulation plumbing.
type Node struct {
	id  dht.Key
	net *Network
	app dht.App

	alive bool

	// m is the node's control-plane state machine — the same code a live
	// transport node runs, driven here through the event engine. Which
	// machine family it is comes from Config.Machine.
	m overlay.Machine
}

// ID returns the node's ring identifier.
func (n *Node) ID() dht.Key { return n.id }

// Alive reports whether the node is up.
func (n *Node) Alive() bool { return n.alive }

// Machine exposes the node's control-plane state machine for tests and
// tools (e.g. the sim-vs-live parity harness).
func (n *Node) Machine() overlay.Machine { return n.m }

// Protocol exposes the Chord machine. It panics when the network runs a
// different substrate — callers that work on any machine use Machine.
func (n *Node) Protocol() *protocol.Machine { return n.m.(*protocol.Machine) }

// RingStats returns a snapshot of the node's control-plane maintenance
// counters — the same metrics a live transport node reports.
func (n *Node) RingStats() metrics.Ring { return n.m.Stats() }

// Successor returns the node's immediate successor pointer.
func (n *Node) Successor() dht.Key {
	if s, ok := n.m.Successor(); ok {
		return s.ID
	}
	return n.id
}

// Predecessor returns the predecessor pointer and whether it is known.
func (n *Node) Predecessor() (dht.Key, bool) {
	if p, ok := n.m.Predecessor(); ok {
		return p.ID, true
	}
	return 0, false
}

// Finger returns entry i of the Chord finger table (the successor of
// id + 2^i) and whether it has been populated. Chord-only, like Protocol.
func (n *Node) Finger(i int) (dht.Key, bool) {
	if f, ok := n.Protocol().Finger(i); ok {
		return f.ID, true
	}
	return 0, false
}

// covers reports whether this node is the successor node of key.
func (n *Node) covers(key dht.Key) bool { return n.m.Covers(key) }

// liveSuccessor returns the first live entry of the successor list.
func (n *Node) liveSuccessor() (dht.Key, bool) {
	if s, ok := n.m.LiveSuccessor(); ok {
		return s.ID, true
	}
	return 0, false
}

// livePredecessor returns the predecessor if known and live.
func (n *Node) livePredecessor() (dht.Key, bool) {
	if p, ok := n.m.LivePredecessor(); ok {
		return p.ID, true
	}
	return 0, false
}

// nextHop picks the forwarding target for a message addressed to key, per
// Chord's routing rule (Fig. 1(b)), hardened against failed entries via
// the network's liveness filter.
func (n *Node) nextHop(key dht.Key) (dht.Key, bool) {
	if next, ok := n.m.NextHop(key); ok {
		return next.ID, true
	}
	return 0, false
}

// String implements fmt.Stringer for diagnostics.
func (n *Node) String() string {
	return fmt.Sprintf("chord.Node(%d alive=%v succ=%d)", n.id, n.alive, n.Successor())
}
