// Package chord implements the Chord content-based routing protocol
// (Stoica et al., SIGCOMM 2001) as a discrete-event simulation, standing in
// for the publicly available Chord simulator the paper's prototype was
// linked against (§V).
//
// It provides:
//
//   - the identifier circle with consistent hashing (package dht),
//   - per-node finger tables giving O(log N) lookups (paper §II-B.1,
//     Fig. 1),
//   - successor lists and the join/stabilize/notify/fix-fingers maintenance
//     protocol, so nodes can join, leave gracefully, or crash while the ring
//     self-repairs,
//   - a simulated network that routes application messages hop by hop with
//     a constant per-hop delay (50 ms in the paper's configuration) and
//     reports every transmission and delivery to an observer for the
//     evaluation's message accounting.
//
// Control-plane maintenance (stabilization RPCs) reads peer state directly
// but only through liveness-checked accessors; the data plane — everything
// the paper measures — is fully event-driven and pays the per-hop delay.
package chord

import (
	"fmt"

	"streamdex/internal/clock"
	"streamdex/internal/dht"
)

// Node is one simulated Chord node (a data center / sensor proxy in the
// paper's architecture).
type Node struct {
	id  dht.Key
	net *Network
	app dht.App

	alive bool

	// pred is the ring predecessor; hasPred distinguishes "unknown".
	pred    dht.Key
	hasPred bool

	// succList[0] is the immediate successor; the tail provides failure
	// tolerance (Chord's successor-list technique).
	succList []dht.Key

	// finger[i] is the successor of id + 2^i (mod 2^m); fingerOK marks
	// entries that have been populated. finger[0] duplicates the
	// immediate successor.
	finger     []dht.Key
	fingerOK   []bool
	nextFinger int

	tickers []clock.Ticker
}

// ID returns the node's ring identifier.
func (n *Node) ID() dht.Key { return n.id }

// Alive reports whether the node is up.
func (n *Node) Alive() bool { return n.alive }

// Successor returns the node's immediate successor pointer.
func (n *Node) Successor() dht.Key {
	if len(n.succList) == 0 {
		return n.id
	}
	return n.succList[0]
}

// Predecessor returns the predecessor pointer and whether it is known.
func (n *Node) Predecessor() (dht.Key, bool) { return n.pred, n.hasPred }

// Finger returns entry i of the finger table (the successor of id + 2^i)
// and whether it has been populated.
func (n *Node) Finger(i int) (dht.Key, bool) {
	if i < 0 || i >= len(n.finger) {
		return 0, false
	}
	return n.finger[i], n.fingerOK[i]
}

// covers reports whether this node is the successor node of key, i.e.
// whether key lies in (predecessor, id]. A node with no known predecessor
// only covers its own identifier (conservative: routing will pass the
// message to a stabilized neighbor instead).
func (n *Node) covers(key dht.Key) bool {
	if !n.hasPred {
		return key == n.id
	}
	return n.net.space.BetweenIncl(key, n.pred, n.id)
}

// aliveSuccessor returns the first live entry of the successor list, or
// (0, false) if all known successors are down.
func (n *Node) aliveSuccessor() (dht.Key, bool) {
	for _, s := range n.succList {
		if n.net.isAlive(s) {
			return s, true
		}
	}
	return 0, false
}

// alivePredecessor returns the predecessor if known and live.
func (n *Node) alivePredecessor() (dht.Key, bool) {
	if n.hasPred && n.net.isAlive(n.pred) {
		return n.pred, true
	}
	return 0, false
}

// closestPrecedingAlive returns the live node from this node's routing
// state (fingers and successor list) that most immediately precedes key,
// or (0, false) when none precedes it. This is Chord's
// closest_preceding_finger, hardened against failed entries.
func (n *Node) closestPrecedingAlive(key dht.Key) (dht.Key, bool) {
	sp := n.net.space
	best := dht.Key(0)
	found := false
	consider := func(c dht.Key) {
		if c == n.id || !n.net.isAlive(c) {
			return
		}
		if !sp.Between(c, n.id, key) {
			return
		}
		if !found || sp.Between(best, n.id, c) {
			best, found = c, true
		}
	}
	for i := len(n.finger) - 1; i >= 0; i-- {
		if n.fingerOK[i] {
			consider(n.finger[i])
		}
	}
	for _, s := range n.succList {
		consider(s)
	}
	return best, found
}

// nextHop picks the forwarding target for a message addressed to key, per
// Chord's routing rule: if key lies between this node and its successor the
// successor is final; otherwise forward to the closest preceding live
// finger (Fig. 1(b)).
func (n *Node) nextHop(key dht.Key) (dht.Key, bool) {
	succ, ok := n.aliveSuccessor()
	if !ok {
		return 0, false
	}
	if n.net.space.BetweenIncl(key, n.id, succ) {
		return succ, true
	}
	if c, ok := n.closestPrecedingAlive(key); ok {
		return c, true
	}
	return succ, true
}

// String implements fmt.Stringer for diagnostics.
func (n *Node) String() string {
	return fmt.Sprintf("chord.Node(%d alive=%v succ=%d)", n.id, n.alive, n.Successor())
}
