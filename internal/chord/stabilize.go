package chord

import (
	"fmt"

	"streamdex/internal/dht"
	"streamdex/internal/sim"
)

// Membership and ring maintenance (paper §II-B.1; Stoica et al. §IV-E).
//
// Join, graceful leave and crash failures are modelled, together with the
// three periodic maintenance tasks of the Chord protocol:
//
//   - stabilize: ask the successor for its predecessor, adopt it when it
//     sits between us and the successor, then notify the successor of our
//     existence; also refresh the successor list from the successor's.
//   - fix fingers: refresh one finger-table entry per firing.
//   - check predecessor: clear the predecessor pointer when it has failed.
//
// Maintenance reads remote node state through liveness-checked accessors
// (a zero-latency control plane), which is the same simplification the
// original Chord simulator makes; every message the evaluation *measures*
// travels on the delayed data plane.

// maxLookupSteps bounds control-plane successor searches so a pathological
// half-stabilized ring cannot wedge the simulator.
const maxLookupSteps = 4096

// Join adds a new node to the overlay through a live bootstrap node and
// returns it. The node learns its successor immediately (the outcome of
// Chord's join lookup) and acquires its predecessor, successor list and
// fingers through subsequent stabilization rounds.
func (net *Network) Join(id dht.Key, app dht.App, bootstrap dht.Key) (*Node, error) {
	b := net.nodes[bootstrap]
	if b == nil || !b.alive {
		return nil, fmt.Errorf("chord: bootstrap node %d not alive", bootstrap)
	}
	if app == nil {
		app = dht.AppFunc(func(dht.Key, *dht.Message) {})
	}
	id = net.space.Wrap(id)
	succ, ok := net.findSuccessorFrom(b, id)
	if !ok {
		return nil, fmt.Errorf("chord: join lookup for %d failed", id)
	}
	n := net.addNode(id, app)
	n.succList = append(n.succList, succ)
	n.hasPred = false
	if net.cfg.StabilizeEvery > 0 {
		net.startMaintenance(n, sim.NewRand(int64(id)^0x9e3779b9))
	}
	return n, nil
}

// CreateFirst bootstraps a brand-new ring with a single node.
func (net *Network) CreateFirst(id dht.Key, app dht.App) *Node {
	if len(net.aliveSorted) != 0 {
		panic("chord: CreateFirst on a non-empty overlay")
	}
	if app == nil {
		app = dht.AppFunc(func(dht.Key, *dht.Message) {})
	}
	n := net.addNode(id, app)
	n.succList = append(n.succList, n.id)
	n.pred = n.id
	n.hasPred = true
	if net.cfg.StabilizeEvery > 0 {
		net.startMaintenance(n, sim.NewRand(int64(id)^0x9e3779b9))
	}
	return n
}

// Leave removes a node gracefully: it splices its neighbors together before
// departing, so the ring never observes a gap. Stored application state is
// soft (summaries and subscriptions expire), so no transfer is needed —
// exactly the paper's fault-tolerance stance.
func (net *Network) Leave(id dht.Key) {
	n := net.nodes[id]
	if n == nil || !n.alive {
		return
	}
	if succ, ok := n.aliveSuccessor(); ok && succ != id {
		s := net.nodes[succ]
		if pred, okP := n.alivePredecessor(); okP && pred != id {
			s.pred, s.hasPred = pred, true
			p := net.nodes[pred]
			// Splice the successor list of the predecessor.
			p.succList = append([]dht.Key{succ}, trimSelf(s.succList, pred, net.cfg.SuccListLen-1)...)
		} else {
			s.hasPred = false
		}
	}
	net.deactivate(n)
}

// Fail crashes a node abruptly: neighbors discover the failure only through
// their maintenance tasks, and in-flight messages addressed to it are lost.
func (net *Network) Fail(id dht.Key) {
	n := net.nodes[id]
	if n == nil || !n.alive {
		return
	}
	net.deactivate(n)
}

func (net *Network) deactivate(n *Node) {
	n.alive = false
	for _, t := range n.tickers {
		t.Stop()
	}
	n.tickers = nil
	net.removeAlive(n.id)
}

func trimSelf(list []dht.Key, self dht.Key, max int) []dht.Key {
	out := make([]dht.Key, 0, max)
	for _, k := range list {
		if k == self {
			break
		}
		out = append(out, k)
		if len(out) == max {
			break
		}
	}
	return out
}

// startMaintenance launches the periodic tasks with randomized phases so
// nodes do not stabilize in lock-step.
func (net *Network) startMaintenance(n *Node, rng *sim.Rand) {
	stab := net.clk.EveryAfter(rng.UniformTime(0, net.cfg.StabilizeEvery), net.cfg.StabilizeEvery, func() {
		n.stabilize()
		n.checkPredecessor()
	})
	fix := net.clk.EveryAfter(rng.UniformTime(0, net.cfg.FixFingersEvery), net.cfg.FixFingersEvery, func() {
		n.fixNextFinger()
	})
	n.tickers = append(n.tickers, stab, fix)
}

// stabilize implements Chord's n.stabilize(): learn about nodes that joined
// between us and our successor, and keep the successor list fresh.
func (n *Node) stabilize() {
	if !n.alive {
		return
	}
	succID, ok := n.aliveSuccessor()
	if !ok {
		// Every known successor failed; fall back to the predecessor or
		// to self (ring of one survivor).
		if pred, okP := n.alivePredecessor(); okP {
			n.succList = []dht.Key{pred}
		} else {
			n.succList = []dht.Key{n.id}
		}
		succID, _ = n.aliveSuccessor()
	}
	succ := n.net.nodes[succID]
	// Ask the successor for its predecessor and adopt it when it sits
	// between us and the successor. When the successor is still ourselves
	// (ring bootstrap), the interval (n, n) is the whole ring, so the
	// first node that notified us becomes our successor — this is how a
	// one-node ring grows, per the Chord paper.
	if x, ok := succ.alivePredecessor(); ok && x != n.id && n.net.space.Between(x, n.id, succID) {
		succID = x
		succ = n.net.nodes[succID]
	}
	if succID == n.id {
		// Genuinely alone: close the ring on ourselves.
		n.succList = []dht.Key{n.id}
		n.pred, n.hasPred = n.id, true
		n.finger[0], n.fingerOK[0] = n.id, true
		return
	}
	// Adopt successor and extend the list with the successor's own list.
	newList := append([]dht.Key{succID}, trimSelf(succ.succList, n.id, n.net.cfg.SuccListLen-1)...)
	n.succList = dedupKeys(newList, n.net.cfg.SuccListLen)
	n.finger[0], n.fingerOK[0] = succID, true
	succ.notify(n.id)
}

// notify implements Chord's n.notify(p): p believes it might be our
// predecessor.
func (n *Node) notify(p dht.Key) {
	if !n.alive || p == n.id {
		return
	}
	if pred, ok := n.alivePredecessor(); !ok || n.net.space.Between(p, pred, n.id) {
		n.pred, n.hasPred = p, true
	}
}

// checkPredecessor clears a failed predecessor pointer.
func (n *Node) checkPredecessor() {
	if n.hasPred && !n.net.isAlive(n.pred) {
		n.hasPred = false
	}
}

// fixNextFinger refreshes one finger-table entry per firing, cycling
// through the table as Chord prescribes.
func (n *Node) fixNextFinger() {
	if !n.alive {
		return
	}
	i := n.nextFinger
	n.nextFinger = (n.nextFinger + 1) % len(n.finger)
	target := n.net.space.Add(n.id, 1<<uint(i))
	if s, ok := n.net.findSuccessorFrom(n, target); ok {
		n.finger[i], n.fingerOK[i] = s, true
	} else {
		n.fingerOK[i] = false
	}
}

func dedupKeys(list []dht.Key, max int) []dht.Key {
	seen := make(map[dht.Key]bool, len(list))
	out := list[:0]
	for _, k := range list {
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, k)
		if len(out) == max {
			break
		}
	}
	return out
}

// findSuccessorFrom walks the overlay's routing state from `start` to find
// the successor node of key — the control-plane analogue of the data-plane
// routing in network.go, used by join and finger repair.
func (net *Network) findSuccessorFrom(start *Node, key dht.Key) (dht.Key, bool) {
	cur := start
	for steps := 0; steps < maxLookupSteps; steps++ {
		if !cur.alive {
			return 0, false
		}
		succ, ok := cur.aliveSuccessor()
		if !ok {
			return 0, false
		}
		if succ == cur.id {
			return cur.id, true
		}
		if net.space.BetweenIncl(key, cur.id, succ) {
			return succ, true
		}
		nxt, ok := cur.closestPrecedingAlive(key)
		if !ok || nxt == cur.id {
			// Degenerate routing state: crawl via the successor.
			nxt = succ
		}
		cur = net.nodes[nxt]
		if cur == nil {
			return 0, false
		}
	}
	return 0, false
}

// Lookup resolves the successor node of key starting from node `from`,
// returning the resolved node id and the number of control steps taken.
// It is exposed for tests and tools; the data plane routes messages instead.
func (net *Network) Lookup(from dht.Key, key dht.Key) (dht.Key, bool) {
	n := net.nodes[from]
	if n == nil || !n.alive {
		return 0, false
	}
	if n.covers(net.space.Wrap(key)) {
		return n.id, true
	}
	return net.findSuccessorFrom(n, net.space.Wrap(key))
}
