package chord

import (
	"fmt"

	"streamdex/internal/dht"
	"streamdex/internal/overlay"
	"streamdex/internal/sim"
)

// Membership operations (paper §II-B.1; Stoica et al. §IV-E).
//
// Join, graceful leave and crash failures are modelled. All periodic
// maintenance — stabilize/notify, fix-fingers, predecessor liveness —
// lives in the shared protocol state machine (internal/chord/protocol);
// the simulator only decides *when* messages arrive (after the per-hop
// delay, via transmitControl) and *which* nodes are reachable. The same
// machine, fed by TCP frames instead of engine events, runs the live
// transport, so churn behavior observed here is the deployed behavior.

// maxLookupSteps bounds control-plane successor searches so a pathological
// half-stabilized ring cannot wedge the simulator.
const maxLookupSteps = 4096

// Join adds a new node to the overlay through a live bootstrap node and
// returns it. The join lookup travels the ring as messages (paying the
// hop delay); the node adopts its successor when the answer arrives and
// acquires its predecessor, successor list and fingers through subsequent
// stabilization rounds.
func (net *Network) Join(id dht.Key, app dht.App, bootstrap dht.Key) (*Node, error) {
	b := net.nodes[bootstrap]
	if b == nil || !b.alive {
		return nil, fmt.Errorf("chord: bootstrap node %d not alive", bootstrap)
	}
	if app == nil {
		app = dht.AppFunc(func(dht.Key, *dht.Message) {})
	}
	id = net.space.Wrap(id)
	n := net.addNode(id, app)
	net.setPhases(n, sim.NewRand(int64(id)^0x9e3779b9))
	n.m.Join(overlay.Ref{ID: bootstrap}, nil)
	return n, nil
}

// CreateFirst bootstraps a brand-new ring with a single node.
func (net *Network) CreateFirst(id dht.Key, app dht.App) *Node {
	if len(net.aliveSorted) != 0 {
		panic("chord: CreateFirst on a non-empty overlay")
	}
	if app == nil {
		app = dht.AppFunc(func(dht.Key, *dht.Message) {})
	}
	n := net.addNode(id, app)
	net.setPhases(n, sim.NewRand(int64(net.space.Wrap(id))^0x9e3779b9))
	n.m.Create()
	return n
}

// Leave removes a node gracefully: it splices its neighbors together before
// departing, so the ring never observes a gap. Stored application state is
// soft (summaries and subscriptions expire), so no transfer is needed —
// exactly the paper's fault-tolerance stance.
func (net *Network) Leave(id dht.Key) {
	n := net.nodes[id]
	if n == nil || !n.alive {
		return
	}
	if succ, ok := n.m.LiveSuccessor(); ok && succ.ID != id {
		s := net.nodes[succ.ID]
		if pred, okP := n.m.LivePredecessor(); okP && pred.ID != id {
			s.m.AdoptPredecessor(pred)
			p := net.nodes[pred.ID]
			// Splice the successor list of the predecessor.
			list := append([]overlay.Ref{succ},
				trimSelfRefs(s.m.SuccessorList(), pred.ID, net.cfg.SuccListLen-1)...)
			p.m.AdoptSuccessors(list)
		} else {
			s.m.ClearPredecessor()
		}
	}
	net.deactivate(n)
}

// Fail crashes a node abruptly: neighbors discover the failure only through
// their maintenance tasks, and in-flight messages addressed to it are lost.
func (net *Network) Fail(id dht.Key) {
	n := net.nodes[id]
	if n == nil || !n.alive {
		return
	}
	net.deactivate(n)
}

func (net *Network) deactivate(n *Node) {
	n.alive = false
	n.m.Stop()
	net.removeAlive(n.id)
}

func trimSelfRefs(list []overlay.Ref, self dht.Key, max int) []overlay.Ref {
	out := make([]overlay.Ref, 0, max)
	for _, r := range list {
		if r.ID == self {
			break
		}
		out = append(out, r)
		if len(out) == max {
			break
		}
	}
	return out
}

// setPhases randomizes the machine's maintenance phases so nodes do not
// stabilize in lock-step.
func (net *Network) setPhases(n *Node, rng *sim.Rand) {
	if net.cfg.StabilizeEvery <= 0 {
		return
	}
	n.m.SetPhases(
		rng.UniformTime(0, net.cfg.StabilizeEvery),
		rng.UniformTime(0, net.cfg.FixFingersEvery),
	)
}

// startMaintenance launches the periodic protocol tasks with randomized
// phases (BuildStable's warm start shares one rng across nodes).
func (net *Network) startMaintenance(n *Node, rng *sim.Rand) {
	net.setPhases(n, rng)
	n.m.StartMaintenance()
}

// findSuccessorFrom walks the overlay's routing state from `start` to find
// the successor node of key — the control-plane analogue of the data-plane
// routing in network.go, used by Lookup.
func (net *Network) findSuccessorFrom(start *Node, key dht.Key) (dht.Key, bool) {
	cur := start
	for steps := 0; steps < maxLookupSteps; steps++ {
		if !cur.alive {
			return 0, false
		}
		succ, ok := cur.m.LiveSuccessor()
		if !ok {
			return 0, false
		}
		if succ.ID == cur.id {
			return cur.id, true
		}
		if net.space.BetweenIncl(key, cur.id, succ.ID) {
			return succ.ID, true
		}
		nxt, ok := cur.m.ClosestPreceding(key)
		if !ok || nxt.ID == cur.id {
			// Degenerate routing state: crawl via the successor.
			nxt = succ
		}
		cur = net.nodes[nxt.ID]
		if cur == nil {
			return 0, false
		}
	}
	return 0, false
}

// Lookup resolves the successor node of key starting from node `from`,
// returning the resolved node id and the number of control steps taken.
// It is exposed for tests and tools; the data plane routes messages instead.
func (net *Network) Lookup(from dht.Key, key dht.Key) (dht.Key, bool) {
	n := net.nodes[from]
	if n == nil || !n.alive {
		return 0, false
	}
	if n.covers(net.space.Wrap(key)) {
		return n.id, true
	}
	return net.findSuccessorFrom(n, net.space.Wrap(key))
}
