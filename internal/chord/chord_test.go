package chord

import (
	"math"
	"testing"
	"testing/quick"

	"streamdex/internal/dht"
	"streamdex/internal/sim"
)

// paperRing builds the 6-node ring of the paper's Figure 1:
// nodes {1, 8, 11, 14, 20, 23} on an m=5 identifier circle.
func paperRing(t *testing.T) (*sim.Engine, *Network) {
	t.Helper()
	eng := sim.NewEngine()
	cfg := Config{Space: dht.NewSpace(5), HopDelay: 50 * sim.Millisecond, SuccListLen: 3}
	net := New(eng, cfg)
	net.BuildStable([]dht.Key{1, 8, 11, 14, 20, 23}, nil)
	return eng, net
}

func TestPaperFigure1KeyAssignment(t *testing.T) {
	_, net := paperRing(t)
	// Keys 13, 17 and 26 are assigned to nodes 14, 20 and 1 (Fig. 1(a)).
	cases := map[dht.Key]dht.Key{13: 14, 17: 20, 26: 1}
	for key, want := range cases {
		got, ok := net.OracleSuccessor(key)
		if !ok || got != want {
			t.Errorf("successor(%d) = %d, want %d", key, got, want)
		}
	}
}

func TestPaperFigure1FingerTable(t *testing.T) {
	_, net := paperRing(t)
	// Finger table of node 8 (Fig. 1(a)): N8+1 -> 11, +2 -> 11, +4 -> 14,
	// +8 -> 20, +16 -> 1.
	want := []dht.Key{11, 11, 14, 20, 1}
	n := net.Node(8)
	for i, w := range want {
		got, ok := n.Finger(i)
		if !ok || got != w {
			t.Errorf("finger[%d] of node 8 = %d (ok=%v), want %d", i, got, ok, w)
		}
	}
}

func TestPaperFigure1Lookup(t *testing.T) {
	// Fig. 1(b): node 8 looks up key 25; the answer is node 1 (successor
	// of 25), reached via node 20 then node 23.
	eng, net := paperRing(t)
	var deliveredAt dht.Key
	var hops int
	net.SetApp(1, dht.AppFunc(func(self dht.Key, msg *dht.Message) {
		deliveredAt = self
		hops = msg.Hops
	}))
	net.Send(8, 25, &dht.Message{Kind: 1})
	eng.Run()
	if deliveredAt != 1 {
		t.Fatalf("lookup(25) from node 8 delivered at %d, want node 1", deliveredAt)
	}
	// 8 -> 20 -> 23 -> 1: three network traversals.
	if hops != 3 {
		t.Fatalf("hops = %d, want 3 (8->20->23->1)", hops)
	}
	if eng.Now() != 150*sim.Millisecond {
		t.Fatalf("delivery time = %v, want 150ms (3 hops x 50ms)", eng.Now())
	}
}

func TestLocalDeliveryZeroHops(t *testing.T) {
	eng, net := paperRing(t)
	var hops = -1
	net.SetApp(14, dht.AppFunc(func(self dht.Key, msg *dht.Message) { hops = msg.Hops }))
	net.Send(14, 13, &dht.Message{}) // node 14 covers key 13 itself
	eng.Run()
	if hops != 0 {
		t.Fatalf("local delivery hops = %d, want 0", hops)
	}
}

func TestRoutingMatchesOracleEverywhere(t *testing.T) {
	eng := sim.NewEngine()
	cfg := Config{Space: dht.NewSpace(16), HopDelay: sim.Millisecond, SuccListLen: 4}
	net := New(eng, cfg)
	ids := UniformIDs(cfg.Space, 64)
	net.BuildStable(ids, nil)

	delivered := make(map[dht.Key]dht.Key) // key -> node
	for _, id := range ids {
		id := id
		net.SetApp(id, dht.AppFunc(func(self dht.Key, msg *dht.Message) {
			delivered[msg.Key] = self
		}))
	}
	rng := sim.NewRand(11)
	keys := make([]dht.Key, 300)
	for i := range keys {
		keys[i] = dht.Key(rng.Int63()) & cfg.Space.Mask()
		from := ids[rng.Intn(len(ids))]
		net.Send(from, keys[i], &dht.Message{})
	}
	eng.Run()
	for _, k := range keys {
		want, _ := net.OracleSuccessor(k)
		if delivered[k] != want {
			t.Fatalf("key %d delivered at %d, oracle says %d", k, delivered[k], want)
		}
	}
	if net.Dropped() != 0 {
		t.Fatalf("dropped %d messages on a stable ring", net.Dropped())
	}
}

func TestLookupHopsLogarithmic(t *testing.T) {
	// The average route length in an N-node Chord ring is ~(1/2)log2 N.
	// Check 256 nodes stay well under log2 N = 8 and above 1.
	eng := sim.NewEngine()
	cfg := Config{Space: dht.NewSpace(24), HopDelay: 0, SuccListLen: 4}
	net := New(eng, cfg)
	ids := UniformIDs(cfg.Space, 256)
	net.BuildStable(ids, nil)
	var totalHops, n int
	for _, id := range ids {
		net.SetApp(id, dht.AppFunc(func(self dht.Key, msg *dht.Message) {
			totalHops += msg.Hops
			n++
		}))
	}
	rng := sim.NewRand(7)
	for i := 0; i < 2000; i++ {
		net.Send(ids[rng.Intn(len(ids))], dht.Key(rng.Int63())&cfg.Space.Mask(), &dht.Message{})
	}
	eng.Run()
	avg := float64(totalHops) / float64(n)
	if avg < 1.5 || avg > 8 {
		t.Fatalf("average hops = %.2f for 256 nodes, want within (1.5, 8) ~ (1/2)log2 N", avg)
	}
	if math.Abs(avg-4) > 2 {
		t.Logf("note: avg hops %.2f deviates from theoretical 4", avg)
	}
}

func TestLookupControlPlaneMatchesOracle(t *testing.T) {
	eng := sim.NewEngine()
	cfg := Config{Space: dht.NewSpace(16), HopDelay: sim.Millisecond, SuccListLen: 4}
	net := New(eng, cfg)
	ids := UniformIDs(cfg.Space, 40)
	net.BuildStable(ids, nil)
	f := func(k uint16, pick uint8) bool {
		key := dht.Key(k) & cfg.Space.Mask()
		from := ids[int(pick)%len(ids)]
		got, ok := net.Lookup(from, key)
		want, _ := net.OracleSuccessor(key)
		return ok && got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestSendToNeighbors(t *testing.T) {
	eng, net := paperRing(t)
	var succGot, predGot dht.Key
	net.SetApp(11, dht.AppFunc(func(self dht.Key, msg *dht.Message) { succGot = self }))
	net.SetApp(23, dht.AppFunc(func(self dht.Key, msg *dht.Message) { predGot = self }))
	net.SendToSuccessor(8, &dht.Message{Hops: 2})
	net.SendToPredecessor(1, &dht.Message{})
	eng.Run()
	if succGot != 11 {
		t.Fatalf("successor send landed at %d, want 11", succGot)
	}
	if predGot != 23 {
		t.Fatalf("predecessor send landed at %d, want 23", predGot)
	}
}

func TestNeighborSendPreservesCumulativeHops(t *testing.T) {
	eng, net := paperRing(t)
	var hops int
	net.SetApp(11, dht.AppFunc(func(self dht.Key, msg *dht.Message) { hops = msg.Hops }))
	net.SendToSuccessor(8, &dht.Message{Hops: 5})
	eng.Run()
	if hops != 6 {
		t.Fatalf("cumulative hops = %d, want 6", hops)
	}
}

func TestRangeMulticastSequential(t *testing.T) {
	eng, net := paperRing(t)
	var visited []dht.Key
	for _, id := range net.NodeIDs() {
		id := id
		net.SetApp(id, dht.AppFunc(func(self dht.Key, msg *dht.Message) {
			visited = append(visited, self)
			dht.ContinueRange(net, self, msg)
		}))
	}
	// Paper §IV-C: a message sent to range [10, 19] must reach nodes 11,
	// 14 and 20.
	dht.SendRange(net, 1, 10, 19, &dht.Message{Kind: 2}, dht.RangeSequential)
	eng.Run()
	want := []dht.Key{11, 14, 20}
	if len(visited) != len(want) {
		t.Fatalf("visited %v, want %v", visited, want)
	}
	for i, w := range want {
		if visited[i] != w {
			t.Fatalf("visited %v, want %v (in ring order)", visited, want)
		}
	}
}

func TestRangeMulticastBidirectional(t *testing.T) {
	eng, net := paperRing(t)
	visited := map[dht.Key]bool{}
	var order []dht.Key
	for _, id := range net.NodeIDs() {
		id := id
		net.SetApp(id, dht.AppFunc(func(self dht.Key, msg *dht.Message) {
			if visited[self] {
				t.Errorf("node %d delivered twice", self)
			}
			visited[self] = true
			order = append(order, self)
			dht.ContinueRange(net, self, msg)
		}))
	}
	dht.SendRange(net, 1, 10, 19, &dht.Message{Kind: 2}, dht.RangeBidirectional)
	eng.Run()
	if len(visited) != 3 || !visited[11] || !visited[14] || !visited[20] {
		t.Fatalf("visited %v, want {11,14,20}", order)
	}
	// Middle key of [10,19] is 14 -> node 14 first, then both neighbors.
	if order[0] != 14 {
		t.Fatalf("first delivery at %d, want middle node 14", order[0])
	}
}

func TestRangeMulticastSingleNodeRange(t *testing.T) {
	eng, net := paperRing(t)
	count := 0
	for _, id := range net.NodeIDs() {
		net.SetApp(id, dht.AppFunc(func(self dht.Key, msg *dht.Message) {
			count++
			dht.ContinueRange(net, self, msg)
		}))
	}
	dht.SendRange(net, 8, 12, 13, &dht.Message{}, dht.RangeSequential)
	eng.Run()
	if count != 1 {
		t.Fatalf("deliveries = %d, want 1 (range within one node)", count)
	}
}

func TestRangeMulticastWholeRing(t *testing.T) {
	eng, net := paperRing(t)
	visited := map[dht.Key]int{}
	for _, id := range net.NodeIDs() {
		net.SetApp(id, dht.AppFunc(func(self dht.Key, msg *dht.Message) {
			visited[self]++
			dht.ContinueRange(net, self, msg)
		}))
	}
	// Range covering (almost) the whole ring: [2, 1] wraps all the way.
	dht.SendRange(net, 8, 2, 1, &dht.Message{}, dht.RangeSequential)
	eng.Run()
	if len(visited) != net.Len() {
		t.Fatalf("visited %d nodes, want all %d", len(visited), net.Len())
	}
	for id, c := range visited {
		if c != 1 {
			t.Fatalf("node %d delivered %d times", id, c)
		}
	}
}

// TestRangeMulticastFullRingAlignedBoundary covers the degenerate arc the
// continuous-query operators produce for an unbounded coordinate range
// (mapper.Range clamps to [0, 2^m-1]): both boundaries fall inside the
// SAME node's interval — the one wrapping through zero — so a stop
// condition of "this node covers the high boundary" would end the walk at
// its very first node. Every node must still be reached; the boundary
// node may legitimately see the message twice (delivery is idempotent).
func TestRangeMulticastFullRingAlignedBoundary(t *testing.T) {
	for _, mode := range []dht.RangeMode{dht.RangeSequential, dht.RangeBidirectional, dht.RangeTree} {
		eng, net := paperRing(t)
		visited := map[dht.Key]int{}
		for _, id := range net.NodeIDs() {
			net.SetApp(id, dht.AppFunc(func(self dht.Key, msg *dht.Message) {
				visited[self]++
				dht.ContinueRange(net, self, msg)
			}))
		}
		// [0, 31] on the m=5 ring: node 1 covers (23, 1] and therefore
		// holds both boundaries.
		dht.SendRange(net, 8, 0, 31, &dht.Message{}, mode)
		eng.Run()
		if len(visited) != net.Len() {
			t.Fatalf("%v: visited %d nodes, want all %d", mode, len(visited), net.Len())
		}
		total := 0
		for id, c := range visited {
			total += c
			if c > 2 {
				t.Fatalf("%v: node %d delivered %d times", mode, id, c)
			}
		}
		if total > net.Len()+2 {
			t.Fatalf("%v: %d deliveries for %d nodes", mode, total, net.Len())
		}
	}
}

func TestBidirectionalHalvesPropagationTime(t *testing.T) {
	eng := sim.NewEngine()
	cfg := Config{Space: dht.NewSpace(16), HopDelay: 50 * sim.Millisecond, SuccListLen: 4}
	net := New(eng, cfg)
	ids := EquidistantIDs(cfg.Space, 64)
	net.BuildStable(ids, nil)

	run := func(mode dht.RangeMode) sim.Time {
		e := sim.NewEngine()
		n := New(e, cfg)
		n.BuildStable(ids, nil)
		var last sim.Time
		for _, id := range n.NodeIDs() {
			n.SetApp(id, dht.AppFunc(func(self dht.Key, msg *dht.Message) {
				last = e.Now()
				dht.ContinueRange(n, self, msg)
			}))
		}
		// A wide range covering ~32 nodes.
		lo := ids[10]
		hi := ids[42]
		dht.SendRange(n, ids[0], lo, hi+1, &dht.Message{}, mode)
		e.Run()
		return last
	}
	seq := run(dht.RangeSequential)
	bidi := run(dht.RangeBidirectional)
	if bidi >= seq {
		t.Fatalf("bidirectional (%v) not faster than sequential (%v)", bidi, seq)
	}
	// Should be roughly half (plus the initial routed leg).
	if float64(bidi) > 0.75*float64(seq) {
		t.Fatalf("bidirectional %v vs sequential %v: expected near-halving", bidi, seq)
	}
}

func TestUniformIDsDistinctAndSorted(t *testing.T) {
	s := dht.NewSpace(32)
	ids := UniformIDs(s, 500)
	if len(ids) != 500 {
		t.Fatalf("got %d ids", len(ids))
	}
	seen := map[dht.Key]bool{}
	for _, id := range ids {
		if seen[id] {
			t.Fatal("duplicate id")
		}
		seen[id] = true
	}
	sorted := SortKeys(append([]dht.Key(nil), ids...))
	for i := 1; i < len(sorted); i++ {
		if sorted[i-1] >= sorted[i] {
			t.Fatal("SortKeys did not sort strictly")
		}
	}
}

func TestEquidistantIDs(t *testing.T) {
	s := dht.NewSpace(8)
	ids := EquidistantIDs(s, 4)
	want := []dht.Key{0, 64, 128, 192}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("ids = %v, want %v", ids, want)
		}
	}
}

func TestObserverSeesEveryTransmission(t *testing.T) {
	eng, net := paperRing(t)
	type ev struct{ from, to dht.Key }
	var transmissions []ev
	var deliveries []dht.Key
	net.SetObserver(observerFuncs{
		onTransmit: func(from, to dht.Key, msg *dht.Message) {
			transmissions = append(transmissions, ev{from, to})
		},
		onDeliver: func(at dht.Key, msg *dht.Message) { deliveries = append(deliveries, at) },
	})
	net.Send(8, 25, &dht.Message{})
	eng.Run()
	want := []ev{{8, 20}, {20, 23}, {23, 1}}
	if len(transmissions) != len(want) {
		t.Fatalf("transmissions = %v, want %v", transmissions, want)
	}
	for i := range want {
		if transmissions[i] != want[i] {
			t.Fatalf("transmissions = %v, want %v", transmissions, want)
		}
	}
	if len(deliveries) != 1 || deliveries[0] != 1 {
		t.Fatalf("deliveries = %v, want [1]", deliveries)
	}
}

type observerFuncs struct {
	onTransmit func(from, to dht.Key, msg *dht.Message)
	onDeliver  func(at dht.Key, msg *dht.Message)
}

func (o observerFuncs) OnTransmit(from, to dht.Key, msg *dht.Message) {
	if o.onTransmit != nil {
		o.onTransmit(from, to, msg)
	}
}

func (o observerFuncs) OnDeliver(at dht.Key, msg *dht.Message) {
	if o.onDeliver != nil {
		o.onDeliver(at, msg)
	}
}

func TestDuplicateNodePanics(t *testing.T) {
	eng := sim.NewEngine()
	net := New(eng, Config{Space: dht.NewSpace(5), SuccListLen: 2})
	net.BuildStable([]dht.Key{1, 8}, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate id")
		}
	}()
	net.addNode(8, nil)
}

func TestRangeMulticastTreeCoversExactly(t *testing.T) {
	eng := sim.NewEngine()
	cfg := Config{Space: dht.NewSpace(16), HopDelay: 50 * sim.Millisecond, SuccListLen: 4}
	net := New(eng, cfg)
	ids := EquidistantIDs(cfg.Space, 64)
	net.BuildStable(ids, nil)
	visited := map[dht.Key]int{}
	for _, id := range net.NodeIDs() {
		net.SetApp(id, dht.AppFunc(func(self dht.Key, msg *dht.Message) {
			visited[self]++
			dht.ContinueRange(net, self, msg)
		}))
	}
	// Cover nodes ids[10]..ids[42] exactly, like the A1 setup.
	dht.SendRange(net, ids[0], ids[10], ids[42], &dht.Message{}, dht.RangeTree)
	eng.Run()
	if len(visited) != 33 {
		t.Fatalf("tree multicast visited %d nodes, want 33", len(visited))
	}
	for id, c := range visited {
		if c != 1 {
			t.Fatalf("node %d delivered %d times (duplicates in tree)", id, c)
		}
	}
	for i := 10; i <= 42; i++ {
		if visited[ids[i]] != 1 {
			t.Fatalf("node ids[%d] missed by tree multicast", i)
		}
	}
}

func TestTreeMulticastFasterThanSequential(t *testing.T) {
	cfg := Config{Space: dht.NewSpace(16), HopDelay: 50 * sim.Millisecond, SuccListLen: 4}
	ids := EquidistantIDs(cfg.Space, 128)
	run := func(mode dht.RangeMode) (last sim.Time, msgs int) {
		eng := sim.NewEngine()
		net := New(eng, cfg)
		net.BuildStable(ids, nil)
		net.SetObserver(observerFuncs{onTransmit: func(from, to dht.Key, msg *dht.Message) { msgs++ }})
		for _, id := range net.NodeIDs() {
			net.SetApp(id, dht.AppFunc(func(self dht.Key, msg *dht.Message) {
				last = eng.Now()
				dht.ContinueRange(net, self, msg)
			}))
		}
		dht.SendRange(net, ids[0], ids[16], ids[79], &dht.Message{}, mode) // 64 nodes
		eng.Run()
		return last, msgs
	}
	seqDelay, seqMsgs := run(dht.RangeSequential)
	treeDelay, treeMsgs := run(dht.RangeTree)
	// 64 covered nodes: sequential needs ~64 serial hops; the finger
	// tree should finish in O(log 64) levels.
	if float64(treeDelay) > 0.35*float64(seqDelay) {
		t.Fatalf("tree %v vs sequential %v: expected large speedup", treeDelay, seqDelay)
	}
	// Message cost stays comparable (one delivery per covered node plus
	// the routed approach leg).
	if treeMsgs > seqMsgs+8 {
		t.Fatalf("tree sent %d msgs vs sequential %d", treeMsgs, seqMsgs)
	}
}

func TestTreeFallsBackWithoutDelegator(t *testing.T) {
	// The mock-free check: pastry (no DelegateRange) must still cover
	// the full range sequentially; verified in the pastry tests. Here we
	// assert the chord path sets Mode correctly on continuation legs.
	eng, net := paperRing(t)
	var modes []dht.RangeMode
	for _, id := range net.NodeIDs() {
		net.SetApp(id, dht.AppFunc(func(self dht.Key, msg *dht.Message) {
			modes = append(modes, msg.Mode)
			dht.ContinueRange(net, self, msg)
		}))
	}
	dht.SendRange(net, 1, 10, 19, &dht.Message{}, dht.RangeTree)
	eng.Run()
	if len(modes) != 3 {
		t.Fatalf("visited %d nodes, want 3", len(modes))
	}
	for _, m := range modes {
		if m != dht.RangeTree {
			t.Fatalf("mode not preserved on continuation: %v", m)
		}
	}
}
