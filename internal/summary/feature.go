// Package summary implements the feature extraction and content-to-key
// mapping at the heart of the distributed index (paper §IV-B, §IV-G):
//
//   - Feature vectors: the first DFT coefficients of a normalized stream
//     window, unpacked into real coordinates of the unit feature space.
//   - The mapping function h (Eq. 6) that scales a feature coordinate from
//     [-1, +1] onto the m-bit Chord identifier ring, so that summaries with
//     similar content map to the same or neighboring data centers.
//   - Minimum bounding rectangles (MBRs) that batch consecutive feature
//     vectors (§IV-G), exploiting the strong temporal correlation between
//     successive summaries ("Fourier locality", Fig. 3(b)) to cut
//     communication.
package summary

import (
	"fmt"
	"math"

	"streamdex/internal/dht"
)

// Feature is a point in the k-dimensional unit feature space. Coordinates
// unpack the retained complex DFT coefficients of the normalized window as
// [Re X_1, Im X_1, Re X_2, Im X_2, ...] (for z-normalized streams the DC
// coefficient X_0 is identically zero and is skipped; for unit-normalized
// streams it is kept first). Each coordinate lies in [-1, +1] because the
// normalized window has unit energy.
type Feature []float64

// FromCoeffs unpacks complex coefficients into a feature vector with the
// given number of real dimensions. skipDC drops the first coefficient
// (z-normalized streams). It panics when the coefficients cannot fill the
// requested dimensionality.
func FromCoeffs(coeffs []complex128, dims int, skipDC bool) Feature {
	if skipDC {
		if len(coeffs) == 0 {
			panic("summary: no coefficients")
		}
		coeffs = coeffs[1:]
	}
	if dims <= 0 || dims > 2*len(coeffs) {
		panic(fmt.Sprintf("summary: %d dims from %d coefficients", dims, len(coeffs)))
	}
	f := make(Feature, dims)
	for i := 0; i < dims; i++ {
		c := coeffs[i/2]
		if i%2 == 0 {
			f[i] = real(c)
		} else {
			f[i] = imag(c)
		}
	}
	return f
}

// Clone returns an independent copy.
func (f Feature) Clone() Feature {
	return append(Feature(nil), f...)
}

// Dist returns the Euclidean distance to g (same dimensionality).
func (f Feature) Dist(g Feature) float64 {
	if len(f) != len(g) {
		panic("summary: feature dimensionality mismatch")
	}
	var d float64
	for i := range f {
		diff := f[i] - g[i]
		d += diff * diff
	}
	return math.Sqrt(d)
}

// Routing returns the routing coordinate — the first feature dimension,
// the real part of the first retained coefficient, which §IV-B designates
// as the value the mapping function h hashes.
func (f Feature) Routing() float64 {
	if len(f) == 0 {
		panic("summary: empty feature")
	}
	return f[0]
}

// Valid reports whether every coordinate is finite and within the unit
// bound (with a small numerical allowance).
func (f Feature) Valid() bool {
	for _, v := range f {
		if math.IsNaN(v) || math.IsInf(v, 0) || v < -1-1e-9 || v > 1+1e-9 {
			return false
		}
	}
	return true
}

// Mapper implements the mapping function h of Eq. 6, scaling a feature
// value x in [-1, +1] onto the identifier ring:
//
//	h(x) = floor((x + 1) / 2 * 2^m)
//
// with the result clamped to 2^m - 1 so that x = +1 maps to the highest
// identifier rather than wrapping to 0 (the paper maps -1, 0, +1 to 0,
// 2^(m-1) and 2^m - 1). Inputs outside [-1, +1] (possible only through
// query radii extending past the space) are clamped first, so key ranges
// built from [q - r, q + r] never wrap around the ring.
type Mapper struct {
	space dht.Space
}

// NewMapper creates a mapper onto the given identifier space.
func NewMapper(space dht.Space) Mapper { return Mapper{space: space} }

// Space returns the identifier space the mapper targets.
func (m Mapper) Space() dht.Space { return m.space }

// Key maps a feature vector to its ring identifier via the routing
// coordinate.
func (m Mapper) Key(f Feature) dht.Key { return m.KeyOf(f.Routing()) }

// KeyOf maps a single feature value to a ring identifier per Eq. 6.
func (m Mapper) KeyOf(x float64) dht.Key {
	if math.IsNaN(x) {
		panic("summary: NaN feature value")
	}
	if x < -1 {
		x = -1
	}
	if x > 1 {
		x = 1
	}
	scaled := (x + 1) / 2 * float64(m.space.Size())
	k := uint64(scaled)
	if k >= m.space.Size() {
		k = m.space.Size() - 1
	}
	return dht.Key(k)
}

// Range maps a feature interval [lo, hi] to the ring key range
// [KeyOf(lo), KeyOf(hi)]. Since KeyOf is monotone and clamped, the result
// is a proper (non-wrapping) arc.
func (m Mapper) Range(lo, hi float64) (dht.Key, dht.Key) {
	if hi < lo {
		panic(fmt.Sprintf("summary: inverted feature range [%v,%v]", lo, hi))
	}
	return m.KeyOf(lo), m.KeyOf(hi)
}

// QueryRange maps a similarity query with routing coordinate q and radius r
// to the key range covering [q - r, q + r] (paper Eq. 8: any candidate's
// first coefficient must lie within r of the query's).
func (m Mapper) QueryRange(q, r float64) (dht.Key, dht.Key) {
	if r < 0 {
		panic("summary: negative query radius")
	}
	return m.Range(q-r, q+r)
}
