package summary

import (
	"fmt"
	"math"
	"math/bits"
	"sort"

	"streamdex/internal/sim"
)

// This file implements the ECM-style windowed sketches the continuous-query
// engine maintains next to the DFT summaries (Papapetrou et al.,
// "Sketch-based Querying of Distributed Sliding-Window Data Streams"): an
// exponential histogram (EH) estimating the number of items in a sliding
// time window, and a bank of EHs over value sub-ranges that additionally
// yields approximate quantiles. Both support the approximate merge the
// distributed aggregation path relies on: covering nodes ship their
// per-stream sketches to the querying node, which merges them.

// EHBucket is one exponential-histogram bucket: Size items whose newest
// arrival was at End.
type EHBucket struct {
	End  sim.Time
	Size uint64
}

// EH is an exponential histogram over a sliding time window (Datar et al.):
// item arrivals are folded into exponentially growing buckets, keeping at
// most K+1 buckets per size class, so the in-window count is estimated
// within a relative error of about 1/K from O(K log n) buckets.
//
// The zero value is not usable; construct with NewEH. EH is not
// goroutine-safe; callers serialize access (the middleware guards each
// stream's sketch with the stream mutex).
type EH struct {
	// Window is the sliding-window span the estimate covers.
	Window sim.Time
	// K is the error parameter: at most K+1 buckets per size class.
	K int
	// Buckets is the canonical bucket list, oldest first.
	Buckets []EHBucket
}

// NewEH returns an empty exponential histogram.
func NewEH(window sim.Time, k int) *EH {
	if window <= 0 || k < 1 {
		panic(fmt.Sprintf("summary: EH with window %d, k %d", window, k))
	}
	return &EH{Window: window, K: k}
}

// Add records one item arriving at time now (non-decreasing across calls).
func (h *EH) Add(now sim.Time) {
	h.expire(now)
	h.Buckets = append(h.Buckets, EHBucket{End: now, Size: 1})
	h.compact()
}

// expire drops buckets whose newest item already left the window.
func (h *EH) expire(now sim.Time) {
	cut := now - h.Window
	i := 0
	for i < len(h.Buckets) && h.Buckets[i].End < cut {
		i++
	}
	if i > 0 {
		h.Buckets = append(h.Buckets[:0], h.Buckets[i:]...)
	}
}

// sizeClass buckets sizes by floor(log2): after merges bucket sizes are not
// always powers of two, so the K+1 invariant is enforced per class.
func sizeClass(size uint64) int { return bits.Len64(size) - 1 }

// compact restores the invariant of at most K+1 buckets per size class by
// merging the two oldest buckets of an over-full class, cascading upward.
func (h *EH) compact() {
	for {
		merged := false
		// Find the smallest over-full class and merge its two oldest.
		counts := make(map[int]int, 8)
		first := make(map[int]int, 8) // class -> oldest index
		for i, b := range h.Buckets {
			c := sizeClass(b.Size)
			if counts[c] == 0 {
				first[c] = i
			}
			counts[c]++
		}
		classes := make([]int, 0, len(counts))
		for c := range counts {
			classes = append(classes, c)
		}
		sort.Ints(classes)
		for _, c := range classes {
			if counts[c] <= h.K+1 {
				continue
			}
			// Merge the class's two oldest buckets (they are adjacent in
			// the list restricted to the class, but not necessarily in the
			// full list after an approximate merge).
			i := first[c]
			j := i + 1
			for j < len(h.Buckets) && sizeClass(h.Buckets[j].Size) != c {
				j++
			}
			h.Buckets[j].Size += h.Buckets[i].Size
			h.Buckets = append(h.Buckets[:i], h.Buckets[i+1:]...)
			merged = true
			break
		}
		if !merged {
			return
		}
	}
}

// Estimate returns the approximate number of items in (now-Window, now]:
// the full size of every bucket but the oldest, plus half the oldest
// (which may straddle the window boundary).
func (h *EH) Estimate(now sim.Time) uint64 {
	cut := now - h.Window
	var total uint64
	oldest := uint64(0)
	seen := false
	for _, b := range h.Buckets {
		if b.End < cut {
			continue
		}
		total += b.Size
		if !seen {
			oldest = b.Size
			seen = true
		}
	}
	if !seen {
		return 0
	}
	if total == oldest {
		// A single live bucket: report it fully (its End is in-window and
		// halving would zero out singletons).
		return total
	}
	return total - oldest + (oldest+1)/2
}

// Merge folds o's buckets into h (the ECM approximate merge): bucket lists
// are interleaved by end time and re-compacted. The merged estimate keeps
// the per-sketch error bounds only approximately — exactly the trade the
// distributed aggregation accepts.
func (h *EH) Merge(o *EH) {
	if o == nil || len(o.Buckets) == 0 {
		return
	}
	h.Buckets = append(h.Buckets, o.Buckets...)
	sort.SliceStable(h.Buckets, func(i, j int) bool { return h.Buckets[i].End < h.Buckets[j].End })
	h.compact()
}

// Clone returns an independent copy.
func (h *EH) Clone() *EH {
	c := &EH{Window: h.Window, K: h.K}
	c.Buckets = append([]EHBucket(nil), h.Buckets...)
	return c
}

// Sketch is the per-stream windowed sketch: a bank of Bands exponential
// histograms, one per equal-width value sub-range of [Lo, Hi]. The bank
// estimates the number of in-window items (Count) and, from the cumulative
// band counts, approximate quantiles of the in-window value distribution.
type Sketch struct {
	// Window and K parameterize every band histogram.
	Window sim.Time
	K      int
	// Lo and Hi delimit the value range; values outside are clamped into
	// the edge bands.
	Lo, Hi float64
	// Bands holds one EH per value sub-range, low to high.
	Bands []*EH
}

// NewSketch returns an empty sketch with bands equal-width sub-ranges of
// [lo, hi).
func NewSketch(window sim.Time, k, bands int, lo, hi float64) *Sketch {
	if bands < 1 || !(lo < hi) {
		panic(fmt.Sprintf("summary: sketch with %d bands over [%g, %g)", bands, lo, hi))
	}
	s := &Sketch{Window: window, K: k, Lo: lo, Hi: hi, Bands: make([]*EH, bands)}
	for i := range s.Bands {
		s.Bands[i] = NewEH(window, k)
	}
	return s
}

// bandOf maps a value to its band index, clamping out-of-range values.
func (s *Sketch) bandOf(v float64) int {
	if math.IsNaN(v) || v <= s.Lo {
		return 0
	}
	if v >= s.Hi {
		return len(s.Bands) - 1
	}
	i := int(float64(len(s.Bands)) * (v - s.Lo) / (s.Hi - s.Lo))
	if i >= len(s.Bands) {
		i = len(s.Bands) - 1
	}
	return i
}

// Add records one stream value arriving at time now.
func (s *Sketch) Add(now sim.Time, v float64) {
	s.Bands[s.bandOf(v)].Add(now)
}

// Count estimates the number of items in the sliding window at time now.
func (s *Sketch) Count(now sim.Time) uint64 {
	var total uint64
	for _, h := range s.Bands {
		total += h.Estimate(now)
	}
	return total
}

// Quantile estimates the phi-quantile (phi in [0, 1]) of the in-window
// value distribution at time now, returning the midpoint of the band the
// cumulative count crosses phi in. With no in-window items it returns Lo.
func (s *Sketch) Quantile(now sim.Time, phi float64) float64 {
	total := s.Count(now)
	if total == 0 {
		return s.Lo
	}
	if phi < 0 {
		phi = 0
	}
	if phi > 1 {
		phi = 1
	}
	target := phi * float64(total)
	width := (s.Hi - s.Lo) / float64(len(s.Bands))
	cum := 0.0
	for i, h := range s.Bands {
		cum += float64(h.Estimate(now))
		if cum >= target {
			return s.Lo + (float64(i)+0.5)*width
		}
	}
	return s.Hi - width/2
}

// Congruent reports whether o has the same shape (window, K, range, band
// count), the precondition for Merge.
func (s *Sketch) Congruent(o *Sketch) bool {
	return o != nil && s.Window == o.Window && s.K == o.K &&
		s.Lo == o.Lo && s.Hi == o.Hi && len(s.Bands) == len(o.Bands)
}

// Merge folds o into s band by band (approximate merge). Incongruent
// sketches are rejected with an error so a malformed remote report cannot
// corrupt the fold.
func (s *Sketch) Merge(o *Sketch) error {
	if !s.Congruent(o) {
		return fmt.Errorf("summary: merging incongruent sketches")
	}
	for i, h := range s.Bands {
		h.Merge(o.Bands[i])
	}
	return nil
}

// Clone returns an independent deep copy.
func (s *Sketch) Clone() *Sketch {
	c := &Sketch{Window: s.Window, K: s.K, Lo: s.Lo, Hi: s.Hi, Bands: make([]*EH, len(s.Bands))}
	for i, h := range s.Bands {
		c.Bands[i] = h.Clone()
	}
	return c
}

// Validate reports a structurally broken sketch (a decoded remote report
// is validated before entering a fold).
func (s *Sketch) Validate() error {
	if s.Window <= 0 || s.K < 1 {
		return fmt.Errorf("summary: sketch window %d, k %d", s.Window, s.K)
	}
	if len(s.Bands) < 1 {
		return fmt.Errorf("summary: sketch without bands")
	}
	if !(s.Lo < s.Hi) {
		return fmt.Errorf("summary: sketch value range [%g, %g)", s.Lo, s.Hi)
	}
	for _, h := range s.Bands {
		if h == nil {
			return fmt.Errorf("summary: sketch with nil band")
		}
	}
	return nil
}
