package summary

import (
	"fmt"
	"math"

	"streamdex/internal/dht"
	"streamdex/internal/sim"
)

// MBR is a minimum bounding rectangle in the k-dimensional feature space
// (paper §IV-G): the unit of communication between data centers. Instead of
// propagating each of the beta consecutive feature vectors of a stream
// individually, the source groups them into one MBR and routes that,
// exploiting the temporal correlation of successive summaries.
//
// An MBR is specified by two corner points Lo and Hi such that
// Lo[d] <= f[d] <= Hi[d] for every contained feature f and dimension d
// (Eq. 10).
type MBR struct {
	Lo, Hi Feature

	// StreamID identifies the summarized stream; Seq orders the MBRs of
	// one stream.
	StreamID string
	Seq      uint64

	// Count is how many feature vectors the MBR aggregates.
	Count int

	// Created and Expiry delimit the MBR's lifespan at storing nodes:
	// "every MBR ... is stored at nodes only for a certain life span
	// after which it is removed" (§V, BSPAN = 5 s).
	Created sim.Time
	Expiry  sim.Time
}

// NewMBR starts an MBR from a first feature vector.
func NewMBR(streamID string, seq uint64, f Feature) *MBR {
	return &MBR{
		Lo:       f.Clone(),
		Hi:       f.Clone(),
		StreamID: streamID,
		Seq:      seq,
		Count:    1,
	}
}

// Extend grows the rectangle to contain f.
func (b *MBR) Extend(f Feature) {
	if len(f) != len(b.Lo) {
		panic("summary: extending MBR with mismatched dimensionality")
	}
	for d := range f {
		if f[d] < b.Lo[d] {
			b.Lo[d] = f[d]
		}
		if f[d] > b.Hi[d] {
			b.Hi[d] = f[d]
		}
	}
	b.Count++
}

// Contains reports whether f lies inside the rectangle.
func (b *MBR) Contains(f Feature) bool {
	if len(f) != len(b.Lo) {
		return false
	}
	for d := range f {
		if f[d] < b.Lo[d] || f[d] > b.Hi[d] {
			return false
		}
	}
	return true
}

// MinDist returns the minimum Euclidean distance from point q to the
// rectangle (zero when q is inside). Because every contained feature is at
// least this far from q, MinDist(q) <= r is the no-false-dismissal
// candidate test for a similarity query with radius r.
func (b *MBR) MinDist(q Feature) float64 {
	if len(q) != len(b.Lo) {
		panic("summary: MinDist with mismatched dimensionality")
	}
	var sum float64
	for d := range q {
		switch {
		case q[d] < b.Lo[d]:
			diff := b.Lo[d] - q[d]
			sum += diff * diff
		case q[d] > b.Hi[d]:
			diff := q[d] - b.Hi[d]
			sum += diff * diff
		}
	}
	return math.Sqrt(sum)
}

// Center returns the rectangle's center point.
func (b *MBR) Center() Feature {
	c := make(Feature, len(b.Lo))
	for d := range c {
		c[d] = (b.Lo[d] + b.Hi[d]) / 2
	}
	return c
}

// Volume returns the rectangle's volume (product of side lengths); a
// degenerate rectangle has volume zero.
func (b *MBR) Volume() float64 {
	v := 1.0
	for d := range b.Lo {
		v *= b.Hi[d] - b.Lo[d]
	}
	return v
}

// MaxSide returns the longest side length — the precision measure the
// adaptive batching extension controls.
func (b *MBR) MaxSide() float64 {
	var m float64
	for d := range b.Lo {
		if s := b.Hi[d] - b.Lo[d]; s > m {
			m = s
		}
	}
	return m
}

// KeyRange maps the MBR's routing-coordinate extent [Lo[0], Hi[0]] to the
// ring arc the rectangle must be replicated over: every node that succeeds
// a key in [h(L_1), h(H_1)] stores a copy, so no similarity query routed by
// content can miss it (§IV-G).
func (b *MBR) KeyRange(m Mapper) (dht.Key, dht.Key) {
	return m.Range(b.Lo[0], b.Hi[0])
}

// Expired reports whether the MBR's lifespan has passed at time now.
func (b *MBR) Expired(now sim.Time) bool {
	return b.Expiry != 0 && now >= b.Expiry
}

// String implements fmt.Stringer for diagnostics.
func (b *MBR) String() string {
	return fmt.Sprintf("MBR(%s#%d count=%d lo=%v hi=%v)", b.StreamID, b.Seq, b.Count, b.Lo, b.Hi)
}

// Batcher accumulates consecutive feature vectors of one stream into MBRs
// of beta vectors each (§IV-G: "we group every beta of the feature vectors
// into an MBR and route this MBR instead of propagating individual feature
// vectors").
type Batcher struct {
	streamID string
	beta     int
	seq      uint64
	cur      *MBR
	// curTarget freezes the factor the in-progress MBR was started with,
	// so SetBeta only affects subsequent batches.
	curTarget int
}

// NewBatcher creates a batcher with batching factor beta >= 1.
func NewBatcher(streamID string, beta int) *Batcher {
	if beta < 1 {
		panic("summary: batching factor < 1")
	}
	return &Batcher{streamID: streamID, beta: beta}
}

// Beta returns the current batching factor.
func (bt *Batcher) Beta() int { return bt.beta }

// SetBeta adjusts the batching factor for subsequent MBRs (used by the
// adaptive-precision extension, §VI-A). The MBR currently being built is
// finished at its original factor.
func (bt *Batcher) SetBeta(beta int) {
	if beta < 1 {
		panic("summary: batching factor < 1")
	}
	bt.beta = beta
}

// Add folds the next feature vector in; when the batch is complete it
// returns the finished MBR (and starts a fresh one), otherwise nil.
func (bt *Batcher) Add(f Feature) *MBR {
	if bt.cur == nil {
		bt.cur = NewMBR(bt.streamID, bt.seq, f)
		bt.curTarget = bt.beta
		bt.seq++
	} else {
		bt.cur.Extend(f)
	}
	if bt.cur.Count >= bt.curTarget {
		done := bt.cur
		bt.cur = nil
		return done
	}
	return nil
}

// Flush returns the in-progress MBR (possibly containing fewer than beta
// vectors), or nil when empty.
func (bt *Batcher) Flush() *MBR {
	done := bt.cur
	bt.cur = nil
	return done
}
