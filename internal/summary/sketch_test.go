package summary

import (
	"math"
	"testing"

	"streamdex/internal/sim"
)

func TestEHExactSmallCounts(t *testing.T) {
	h := NewEH(100*sim.Second, 4)
	now := sim.Time(0)
	for i := 0; i < 5; i++ {
		now += sim.Second
		h.Add(now)
	}
	if got := h.Estimate(now); got != 5 {
		t.Fatalf("estimate %d after 5 adds, want 5 (few buckets stay exact)", got)
	}
}

func TestEHRelativeErrorBound(t *testing.T) {
	const n = 2000
	h := NewEH(sim.Time(n)*sim.Second, 4)
	now := sim.Time(0)
	for i := 0; i < n; i++ {
		now += sim.Second
		h.Add(now)
	}
	got := float64(h.Estimate(now))
	if err := math.Abs(got-n) / n; err > 0.5 {
		t.Fatalf("estimate %g for true count %d: relative error %.2f too large", got, n, err)
	}
	// Bucket count stays logarithmic.
	if len(h.Buckets) > (h.K+2)*16 {
		t.Fatalf("%d buckets retained for %d items", len(h.Buckets), n)
	}
}

func TestEHWindowExpiry(t *testing.T) {
	h := NewEH(10*sim.Second, 4)
	for i := 1; i <= 100; i++ {
		h.Add(sim.Time(i) * sim.Second)
	}
	// Jump far past the window: everything must age out.
	if got := h.Estimate(1000 * sim.Second); got != 0 {
		t.Fatalf("estimate %d long after the window emptied, want 0", got)
	}
}

func TestEHMergeApproximatesSum(t *testing.T) {
	w := 1000 * sim.Second
	a, b := NewEH(w, 4), NewEH(w, 4)
	now := sim.Time(0)
	for i := 0; i < 300; i++ {
		now += sim.Second
		a.Add(now)
		b.Add(now)
	}
	a.Merge(b)
	got := float64(a.Estimate(now))
	if err := math.Abs(got-600) / 600; err > 0.5 {
		t.Fatalf("merged estimate %g for true count 600: relative error %.2f", got, err)
	}
}

func TestSketchCountAndQuantile(t *testing.T) {
	s := NewSketch(1000*sim.Second, 4, 10, 0, 100)
	now := sim.Time(0)
	// Uniform spread 0..99: median should land near 50.
	for i := 0; i < 400; i++ {
		now += sim.Second
		s.Add(now, float64(i%100))
	}
	count := float64(s.Count(now))
	if math.Abs(count-400)/400 > 0.5 {
		t.Fatalf("count %g, want ~400", count)
	}
	med := s.Quantile(now, 0.5)
	if med < 25 || med > 75 {
		t.Fatalf("median %g for uniform 0..99", med)
	}
	if q := s.Quantile(now, 0); q < 0 || q > 20 {
		t.Fatalf("0-quantile %g", q)
	}
	if q := s.Quantile(now, 1); q < 80 || q > 100 {
		t.Fatalf("1-quantile %g", q)
	}
}

func TestSketchClampsOutOfRange(t *testing.T) {
	s := NewSketch(100*sim.Second, 4, 4, 0, 10)
	s.Add(sim.Second, -5)
	s.Add(sim.Second, 15)
	s.Add(sim.Second, math.NaN())
	if got := s.Count(sim.Second); got != 3 {
		t.Fatalf("count %d after clamped adds, want 3", got)
	}
}

func TestSketchMergeRejectsIncongruent(t *testing.T) {
	a := NewSketch(100*sim.Second, 4, 4, 0, 10)
	b := NewSketch(100*sim.Second, 4, 8, 0, 10)
	if err := a.Merge(b); err == nil {
		t.Fatal("merging incongruent sketches succeeded")
	}
	c := a.Clone()
	if err := a.Merge(c); err != nil {
		t.Fatalf("merging congruent clone: %v", err)
	}
}

func TestSketchCloneIsIndependent(t *testing.T) {
	a := NewSketch(100*sim.Second, 4, 4, 0, 10)
	a.Add(sim.Second, 5)
	b := a.Clone()
	b.Add(2*sim.Second, 5)
	if ac, bc := a.Count(2*sim.Second), b.Count(2*sim.Second); ac != 1 || bc != 2 {
		t.Fatalf("clone not independent: a=%d b=%d", ac, bc)
	}
}

func TestSketchValidate(t *testing.T) {
	good := NewSketch(100*sim.Second, 4, 4, 0, 10)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid sketch rejected: %v", err)
	}
	bad := &Sketch{Window: 100, K: 4, Lo: 10, Hi: 0, Bands: good.Bands}
	if err := bad.Validate(); err == nil {
		t.Fatal("inverted value range accepted")
	}
	bad2 := &Sketch{Window: 100, K: 4, Lo: 0, Hi: 10, Bands: []*EH{nil}}
	if err := bad2.Validate(); err == nil {
		t.Fatal("nil band accepted")
	}
}
