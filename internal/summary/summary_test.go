package summary

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"streamdex/internal/dht"
	"streamdex/internal/dsp"
	"streamdex/internal/sim"
)

func TestFromCoeffsPacking(t *testing.T) {
	coeffs := []complex128{1 + 2i, 3 + 4i, 5 + 6i}
	f := FromCoeffs(coeffs, 3, false)
	want := Feature{1, 2, 3}
	for i := range want {
		if f[i] != want[i] {
			t.Fatalf("f = %v, want %v", f, want)
		}
	}
	z := FromCoeffs(coeffs, 4, true) // skip DC
	wantZ := Feature{3, 4, 5, 6}
	for i := range wantZ {
		if z[i] != wantZ[i] {
			t.Fatalf("z = %v, want %v", z, wantZ)
		}
	}
}

func TestFromCoeffsValidation(t *testing.T) {
	for _, fn := range []func(){
		func() { FromCoeffs(nil, 1, false) },
		func() { FromCoeffs([]complex128{1}, 3, false) },
		func() { FromCoeffs([]complex128{1}, 1, true) },
		func() { FromCoeffs([]complex128{1}, 0, false) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestFeatureDistAndClone(t *testing.T) {
	a := Feature{0, 0}
	b := Feature{3, 4}
	if a.Dist(b) != 5 {
		t.Fatalf("Dist = %v", a.Dist(b))
	}
	c := b.Clone()
	c[0] = 99
	if b[0] != 3 {
		t.Fatal("Clone aliases")
	}
}

func TestFeatureValid(t *testing.T) {
	if !(Feature{0.5, -1, 1}).Valid() {
		t.Fatal("valid feature rejected")
	}
	if (Feature{1.5}).Valid() || (Feature{math.NaN()}).Valid() || (Feature{math.Inf(1)}).Valid() {
		t.Fatal("invalid feature accepted")
	}
}

func TestMapperEquation6(t *testing.T) {
	// Paper: with the Eq. 6 scaling, -1, 0 and +1 map to 0, 2^(m-1) and
	// 2^m - 1.
	m := NewMapper(dht.NewSpace(5))
	if got := m.KeyOf(-1); got != 0 {
		t.Fatalf("h(-1) = %d, want 0", got)
	}
	if got := m.KeyOf(0); got != 16 {
		t.Fatalf("h(0) = %d, want 16", got)
	}
	if got := m.KeyOf(1); got != 31 {
		t.Fatalf("h(+1) = %d, want 31", got)
	}
}

func TestMapperPaperExample(t *testing.T) {
	// §IV-B: the feature vector X = [0.40 0.09] maps to key 22 on the
	// m=5 ring of Figure 2: floor((0.40+1)/2 * 32) = 22.
	m := NewMapper(dht.NewSpace(5))
	f := Feature{0.40, 0.09}
	if got := m.Key(f); got != 22 {
		t.Fatalf("h([0.40 0.09]) = %d, want 22", got)
	}
	// And Y = [0.42 0.11] from the same figure also hashes to 22,
	// illustrating that similar content maps to the same data center.
	if got := m.Key(Feature{0.42, 0.11}); got != 22 {
		t.Fatalf("h([0.42 0.11]) = %d, want 22", got)
	}
}

func TestMapperFigure3Example(t *testing.T) {
	// §IV-E / Fig. 3(a): query X = [-0.08 0.12] with radius 0.29 spans
	// boundaries -0.37 and 0.21, hashing to keys 10 and 19 on the m=5
	// ring.
	m := NewMapper(dht.NewSpace(5))
	lo, hi := m.QueryRange(-0.08, 0.29)
	if lo != 10 || hi != 19 {
		t.Fatalf("query range keys = [%d,%d], want [10,19]", lo, hi)
	}
}

func TestMapperMonotoneProperty(t *testing.T) {
	m := NewMapper(dht.NewSpace(32))
	f := func(a, b float64) bool {
		a = math.Mod(a, 1)
		b = math.Mod(b, 1)
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		if a > b {
			a, b = b, a
		}
		return m.KeyOf(a) <= m.KeyOf(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestMapperClampsOutOfRange(t *testing.T) {
	m := NewMapper(dht.NewSpace(8))
	if m.KeyOf(-5) != 0 {
		t.Fatal("below -1 should clamp to key 0")
	}
	if m.KeyOf(5) != 255 {
		t.Fatal("above +1 should clamp to the top key")
	}
	lo, hi := m.QueryRange(0.95, 0.2)
	if hi != 255 || lo > hi {
		t.Fatalf("clamped range [%d,%d] invalid", lo, hi)
	}
}

func TestMapperUniformLoadProperty(t *testing.T) {
	// Under the paper's uniformity assumption (§IV-B), uniformly
	// distributed feature values must spread keys roughly evenly across
	// the ring: check quartile counts.
	m := NewMapper(dht.NewSpace(32))
	rng := rand.New(rand.NewSource(42))
	quarter := uint64(1) << 30
	counts := make([]int, 4)
	n := 40000
	for i := 0; i < n; i++ {
		k := uint64(m.KeyOf(rng.Float64()*2 - 1))
		counts[k/quarter]++
	}
	for q, c := range counts {
		ratio := float64(c) / float64(n)
		if math.Abs(ratio-0.25) > 0.02 {
			t.Fatalf("quartile %d holds %.3f of keys, want ~0.25", q, ratio)
		}
	}
}

func TestRangeValidation(t *testing.T) {
	m := NewMapper(dht.NewSpace(8))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for inverted range")
		}
	}()
	m.Range(0.5, 0.2)
}

func TestNegativeRadiusPanics(t *testing.T) {
	m := NewMapper(dht.NewSpace(8))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.QueryRange(0, -0.1)
}

func TestMBRExtendContains(t *testing.T) {
	b := NewMBR("s1", 0, Feature{0.1, 0.2})
	b.Extend(Feature{0.3, -0.1})
	b.Extend(Feature{0.2, 0.0})
	if b.Count != 3 {
		t.Fatalf("Count = %d", b.Count)
	}
	if !b.Contains(Feature{0.2, 0.1}) {
		t.Fatal("interior point not contained")
	}
	if b.Contains(Feature{0.4, 0.0}) {
		t.Fatal("exterior point contained")
	}
	if b.Lo[0] != 0.1 || b.Lo[1] != -0.1 || b.Hi[0] != 0.3 || b.Hi[1] != 0.2 {
		t.Fatalf("bounds lo=%v hi=%v", b.Lo, b.Hi)
	}
}

func TestMBRMinDist(t *testing.T) {
	b := NewMBR("s", 0, Feature{0, 0})
	b.Extend(Feature{1, 1})
	if d := b.MinDist(Feature{0.5, 0.5}); d != 0 {
		t.Fatalf("inside MinDist = %v", d)
	}
	if d := b.MinDist(Feature{2, 1}); d != 1 {
		t.Fatalf("MinDist = %v, want 1", d)
	}
	if d := b.MinDist(Feature{2, 2}); math.Abs(d-math.Sqrt2) > 1e-12 {
		t.Fatalf("corner MinDist = %v, want sqrt(2)", d)
	}
}

// Property: MinDist lower-bounds the distance to every contained point
// (the no-false-dismissal axiom of the index).
func TestMinDistLowerBoundsContainedPoints(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		dims := 3
		pts := make([]Feature, 5)
		for i := range pts {
			pts[i] = make(Feature, dims)
			for d := range pts[i] {
				pts[i][d] = r.Float64()*2 - 1
			}
		}
		b := NewMBR("s", 0, pts[0])
		for _, p := range pts[1:] {
			b.Extend(p)
		}
		q := make(Feature, dims)
		for d := range q {
			q[d] = r.Float64()*4 - 2
		}
		md := b.MinDist(q)
		for _, p := range pts {
			if !b.Contains(p) {
				return false
			}
			if md > q.Dist(p)+1e-12 {
				return false
			}
		}
		_ = rng
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestMBRGeometryHelpers(t *testing.T) {
	b := NewMBR("s", 0, Feature{0, 0})
	b.Extend(Feature{0.4, 0.2})
	c := b.Center()
	if c[0] != 0.2 || c[1] != 0.1 {
		t.Fatalf("Center = %v", c)
	}
	if math.Abs(b.Volume()-0.08) > 1e-12 {
		t.Fatalf("Volume = %v", b.Volume())
	}
	if math.Abs(b.MaxSide()-0.4) > 1e-12 {
		t.Fatalf("MaxSide = %v", b.MaxSide())
	}
}

func TestMBRKeyRangePaperExample(t *testing.T) {
	// §IV-G / Fig. 4: the MBR with low coordinate 0.09 and high
	// coordinate 0.21 in the first dimension hashes to keys 17 and 19 on
	// the m=5 ring, so it is replicated on nodes 20 (and any other
	// successor in [17,19]).
	m := NewMapper(dht.NewSpace(5))
	b := NewMBR("s", 0, Feature{0.09, 0.12})
	b.Extend(Feature{0.21, 0.40})
	lo, hi := b.KeyRange(m)
	if lo != 17 || hi != 19 {
		t.Fatalf("MBR key range = [%d,%d], want [17,19]", lo, hi)
	}
}

func TestMBRExpiry(t *testing.T) {
	b := NewMBR("s", 0, Feature{0})
	b.Expiry = 5 * sim.Second
	if b.Expired(4 * sim.Second) {
		t.Fatal("expired early")
	}
	if !b.Expired(5 * sim.Second) {
		t.Fatal("not expired at deadline")
	}
	b2 := NewMBR("s", 0, Feature{0})
	if b2.Expired(100 * sim.Second) {
		t.Fatal("zero expiry must mean no expiry")
	}
}

func TestBatcherProducesEveryBeta(t *testing.T) {
	bt := NewBatcher("s", 3)
	var done []*MBR
	for i := 0; i < 10; i++ {
		if b := bt.Add(Feature{float64(i) / 10}); b != nil {
			done = append(done, b)
		}
	}
	if len(done) != 3 {
		t.Fatalf("MBRs = %d, want 3", len(done))
	}
	for i, b := range done {
		if b.Count != 3 {
			t.Fatalf("MBR %d count = %d", i, b.Count)
		}
		if b.Seq != uint64(i) {
			t.Fatalf("MBR %d seq = %d", i, b.Seq)
		}
	}
	last := bt.Flush()
	if last == nil || last.Count != 1 {
		t.Fatalf("Flush = %v", last)
	}
	if bt.Flush() != nil {
		t.Fatal("second Flush should be nil")
	}
}

func TestBatcherBoundsCoverAllFeatures(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	bt := NewBatcher("s", 5)
	var feats []Feature
	var out *MBR
	for out == nil {
		f := Feature{rng.Float64()*2 - 1, rng.Float64()*2 - 1}
		feats = append(feats, f)
		out = bt.Add(f)
	}
	for _, f := range feats {
		if !out.Contains(f) {
			t.Fatalf("MBR %v does not contain %v", out, f)
		}
	}
}

func TestBatcherSetBeta(t *testing.T) {
	bt := NewBatcher("s", 2)
	bt.Add(Feature{0})
	bt.SetBeta(4)
	if b := bt.Add(Feature{0.1}); b == nil {
		t.Fatal("in-progress MBR should finish at original factor")
	}
	// Next batch uses the new factor.
	for i := 0; i < 3; i++ {
		if b := bt.Add(Feature{0}); b != nil {
			t.Fatal("finished early under new factor")
		}
	}
	if b := bt.Add(Feature{0}); b == nil || b.Count != 4 {
		t.Fatal("new factor not honored")
	}
}

func TestBatcherValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewBatcher("s", 0)
}

func TestEndToEndFeatureFromSlidingDFT(t *testing.T) {
	// Pipeline check: stream window -> sliding DFT -> normalized
	// coefficients -> feature -> key, all within bounds.
	s := dsp.NewSlidingDFT(32, 4)
	rng := rand.New(rand.NewSource(3))
	m := NewMapper(dht.NewSpace(32))
	x := 0.0
	for i := 0; i < 200; i++ {
		x += rng.NormFloat64()
		s.Push(x)
		if !s.Full() {
			continue
		}
		f := FromCoeffs(s.NormalizedCoeffs(dsp.ZNorm), 3, true)
		if !f.Valid() {
			t.Fatalf("invalid feature %v at step %d", f, i)
		}
		k := m.Key(f)
		if uint64(k) >= m.Space().Size() {
			t.Fatalf("key %d outside space", k)
		}
	}
}
