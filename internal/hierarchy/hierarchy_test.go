package hierarchy

import (
	"math"
	"testing"

	"streamdex/internal/sim"
)

func TestIntervalBasics(t *testing.T) {
	iv := Interval{Lo: -0.2, Hi: 0.4}
	if !iv.Contains(0) || iv.Contains(0.5) {
		t.Fatal("Contains broken")
	}
	if !iv.Intersects(Interval{Lo: 0.3, Hi: 0.9}) {
		t.Fatal("overlap not detected")
	}
	if iv.Intersects(Interval{Lo: 0.5, Hi: 0.9}) {
		t.Fatal("disjoint intervals intersect")
	}
	if math.Abs(iv.Width()-0.6) > 1e-12 {
		t.Fatalf("Width = %v", iv.Width())
	}
	w := iv.Widen(0.1)
	if math.Abs(w.Lo+0.3) > 1e-12 || math.Abs(w.Hi-0.5) > 1e-12 {
		t.Fatalf("Widen = %+v", w)
	}
	if !w.ContainsInterval(iv) {
		t.Fatal("widened interval must contain original")
	}
}

func TestEmptyIntervalUnion(t *testing.T) {
	if !Empty.IsEmpty() {
		t.Fatal("Empty not empty")
	}
	iv := Interval{Lo: 0, Hi: 1}
	if Empty.Union(iv) != iv || iv.Union(Empty) != iv {
		t.Fatal("union with empty broken")
	}
	u := Interval{Lo: 0, Hi: 1}.Union(Interval{Lo: 2, Hi: 3})
	if u.Lo != 0 || u.Hi != 3 {
		t.Fatalf("union = %+v", u)
	}
}

func TestHierarchyShape(t *testing.T) {
	h := New(64, Config{ClusterSize: 4, Epsilon: 0.01})
	// 64 leaves, clusters of 4: member layers hold 64, 16, 4 and 1
	// (root) members.
	if h.Levels() != 4 {
		t.Fatalf("Levels = %d, want 4 (64 -> 16 -> 4 -> 1)", h.Levels())
	}
	if h.Leaves() != 64 {
		t.Fatalf("Leaves = %d", h.Leaves())
	}
}

func TestHierarchyValidation(t *testing.T) {
	for _, fn := range []func(){
		func() { New(0, DefaultConfig()) },
		func() { New(8, Config{ClusterSize: 1}) },
		func() { New(8, Config{ClusterSize: 4, Epsilon: -1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestUpdatePropagatesToRoot(t *testing.T) {
	h := New(64, Config{ClusterSize: 4, Epsilon: 0.01})
	msgs := h.Update(37, Interval{Lo: 0.1, Hi: 0.2})
	// First report from a non-leader leaf must climb every level:
	// leaf 37 -> leader of its L0 cluster -> L1 leader -> L2 leader.
	if msgs == 0 {
		t.Fatal("first update sent no messages")
	}
	if msgs > h.Levels() {
		t.Fatalf("msgs = %d exceeds levels %d", msgs, h.Levels())
	}
}

func TestUpdateSuppression(t *testing.T) {
	h := New(64, Config{ClusterSize: 4, Epsilon: 0.05})
	h.Update(10, Interval{Lo: 0.10, Hi: 0.20})
	// A tiny drift stays inside the widened reported box: no messages.
	if msgs := h.Update(10, Interval{Lo: 0.11, Hi: 0.21}); msgs != 0 {
		t.Fatalf("suppressed update sent %d messages", msgs)
	}
	// A large jump escapes and propagates again.
	if msgs := h.Update(10, Interval{Lo: 0.8, Hi: 0.9}); msgs == 0 {
		t.Fatal("escaping update sent no messages")
	}
}

func TestQueryNoFalseDismissals(t *testing.T) {
	h := New(32, Config{ClusterSize: 4, Epsilon: 0.02})
	// Give every leaf a box around its nominal position.
	for i := 0; i < 32; i++ {
		center := -1 + 2*(float64(i)+0.5)/32
		h.Update(i, Interval{Lo: center - 0.01, Hi: center + 0.01})
	}
	q := Interval{Lo: -0.3, Hi: 0.3}
	res := h.Query(5, q)
	found := map[int]bool{}
	for _, l := range res.Leaves {
		found[l] = true
	}
	for i := 0; i < 32; i++ {
		center := -1 + 2*(float64(i)+0.5)/32
		box := Interval{Lo: center - 0.01, Hi: center + 0.01}
		if box.Intersects(q) && !found[i] {
			t.Fatalf("leaf %d intersects query but was not returned (false dismissal)", i)
		}
	}
}

func TestQueryClimbDependsOnWidth(t *testing.T) {
	h := New(256, Config{ClusterSize: 4, Epsilon: 0.01})
	for i := 0; i < 256; i++ {
		center := -1 + 2*(float64(i)+0.5)/256
		h.Update(i, Interval{Lo: center, Hi: center})
	}
	// Enter at the leaf whose coverage sits at the query's center, so
	// the climb measures interest-volume width rather than distance.
	narrow := h.Query(128, Interval{Lo: 0.001, Hi: 0.011})
	wide := h.Query(128, Interval{Lo: -0.8, Hi: 0.8})
	if narrow.ClimbLevels >= wide.ClimbLevels {
		t.Fatalf("narrow climbed %d, wide climbed %d", narrow.ClimbLevels, wide.ClimbLevels)
	}
}

func TestHierarchyBeatsFlatForWideQueries(t *testing.T) {
	n := 512
	h := New(n, Config{ClusterSize: 4, Epsilon: 0.01})
	for i := 0; i < n; i++ {
		center := -1 + 2*(float64(i)+0.5)/float64(n)
		h.Update(i, Interval{Lo: center - 0.002, Hi: center + 0.002})
	}
	// A wide query (r = 0.4 -> covers ~40% of nodes) should need far
	// fewer messages hierarchically... no: it still must reach all
	// candidate leaves. The saving is in the climb replacing the long
	// sequential walk when the query only needs aggregated summaries.
	// Here we measure candidate discovery cost: hierarchy pays
	// climb + fan-out only into intersecting subtrees, flat pays the
	// full range walk. For a *selective* wide query (few intersecting
	// leaves because boxes are sparse), hierarchy wins.
	sparse := New(n, Config{ClusterSize: 4, Epsilon: 0.01})
	for i := 0; i < n; i += 16 { // only 1/16 of nodes hold data
		center := -1 + 2*(float64(i)+0.5)/float64(n)
		sparse.Update(i, Interval{Lo: center - 0.002, Hi: center + 0.002})
	}
	q := Interval{Lo: -0.4, Hi: 0.4}
	res := sparse.Query(3, q)
	flat := FlatCost(n, q)
	if res.Msgs >= flat {
		t.Fatalf("hierarchy %d msgs, flat %d: expected hierarchy to win on sparse wide queries", res.Msgs, flat)
	}
	if len(res.Leaves) == 0 {
		t.Fatal("no candidates found")
	}
}

func TestFlatCostScalesLinearly(t *testing.T) {
	q := Interval{Lo: -0.1, Hi: 0.1} // 10% of the ring
	c100 := FlatCost(100, q)
	c500 := FlatCost(500, q)
	if c500 <= c100 {
		t.Fatal("flat cost must grow with N")
	}
	if c500 < 40 || c500 > 60 {
		t.Fatalf("FlatCost(500, 10%%) = %d, want ~50 + route", c500)
	}
}

func TestQueryCountersAccumulate(t *testing.T) {
	h := New(64, DefaultConfig())
	for i := 0; i < 64; i++ {
		center := -1 + 2*(float64(i)+0.5)/64
		h.Update(i, Interval{Lo: center, Hi: center})
	}
	before := h.QueryMsgs
	h.Query(0, Interval{Lo: -0.5, Hi: 0.5})
	if h.QueryMsgs <= before {
		t.Fatal("query counter did not advance")
	}
	if h.UpdateMsgs == 0 {
		t.Fatal("update counter did not advance")
	}
	_ = sim.Second // keep the sim import meaningful for future timing additions
}

func TestSingleLeafHierarchy(t *testing.T) {
	h := New(1, DefaultConfig())
	h.Update(0, Interval{Lo: 0, Hi: 0.1})
	res := h.Query(0, Interval{Lo: -1, Hi: 1})
	if len(res.Leaves) != 1 || res.Leaves[0] != 0 {
		t.Fatalf("single-leaf query = %+v", res)
	}
}
