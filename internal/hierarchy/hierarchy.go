// Package hierarchy implements the paper's second future-work extension
// (§VI-B): a hierarchical feature-space partitioning for queries with
// varying selectivity.
//
// Wide similarity queries stress the flat design: a query of radius r
// covers a fraction ~r of the ring, so the range multicast touches ~r*N
// nodes. The paper proposes organizing data centers into a hierarchy of
// clusters (as in application-layer multicast [4]): bottom-level clusters
// of a small constant size elect leaders, leaders cluster recursively, and
// each leader aggregates the summaries of its subtree. A query whose
// interest volume exceeds what the receiving center covers climbs the
// leader chain until the covered feature volume suffices, then descends
// only into children whose aggregates intersect the query.
//
// The paper also sketches the consistency refinement: a center reporting to
// its leader widens the reported bounding box by a precision slack, so
// upper levels need updates only when a child's true box escapes the
// reported one — "nodes at the upper levels of the hierarchy need to be
// updated less frequently at the expense of having less precise
// information".
//
// The model here works on the one-dimensional routing coordinate (the
// feature axis the flat index maps onto the ring), which is exactly the
// dimension on which flat range multicast pays its linear cost; the
// aggregate of a subtree is therefore an interval.
package hierarchy

import (
	"fmt"
	"math"
)

// Interval is a closed interval on the feature axis [-1, +1].
type Interval struct {
	Lo, Hi float64
}

// Contains reports whether x lies inside the interval.
func (iv Interval) Contains(x float64) bool { return x >= iv.Lo && x <= iv.Hi }

// ContainsInterval reports whether other lies fully inside.
func (iv Interval) ContainsInterval(other Interval) bool {
	return iv.Lo <= other.Lo && other.Hi <= iv.Hi
}

// Intersects reports whether the intervals overlap.
func (iv Interval) Intersects(other Interval) bool {
	return iv.Lo <= other.Hi && other.Lo <= iv.Hi
}

// Width returns the interval length.
func (iv Interval) Width() float64 { return iv.Hi - iv.Lo }

// Widen returns the interval expanded by eps on both sides.
func (iv Interval) Widen(eps float64) Interval {
	return Interval{Lo: iv.Lo - eps, Hi: iv.Hi + eps}
}

// Empty is the canonical empty interval.
var Empty = Interval{Lo: math.Inf(1), Hi: math.Inf(-1)}

// IsEmpty reports whether the interval holds no points.
func (iv Interval) IsEmpty() bool { return iv.Lo > iv.Hi }

// Union returns the smallest interval containing both.
func (iv Interval) Union(other Interval) Interval {
	if iv.IsEmpty() {
		return other
	}
	if other.IsEmpty() {
		return iv
	}
	return Interval{Lo: math.Min(iv.Lo, other.Lo), Hi: math.Max(iv.Hi, other.Hi)}
}

// Config parameterizes the hierarchy.
type Config struct {
	// ClusterSize is the constant size of bottom-level clusters (and of
	// leader clusters at every level above).
	ClusterSize int
	// Epsilon is the per-level widening applied to reported boxes: the
	// precision slack that suppresses upward updates.
	Epsilon float64
}

// DefaultConfig uses clusters of 4 and a 0.02 slack.
func DefaultConfig() Config { return Config{ClusterSize: 4, Epsilon: 0.02} }

// Hierarchy is the cluster tree over n data centers (identified by their
// ring-order index 0..n-1).
type Hierarchy struct {
	cfg Config
	n   int

	// reported[l][i] is the box node i of level l last reported to its
	// level-l leader (widened), indexed by member position. Level 0
	// members are the leaves; level l+1 members are level-l leaders.
	// leaders[l][c] is the member index (at level l) leading cluster c.
	levels int
	// boxAt[l][j]: current aggregate box of member j at level l (for
	// leaves, their true summary box).
	boxAt [][]Interval
	// reportedAt[l][j]: the widened box member j last pushed to its
	// leader.
	reportedAt [][]Interval

	// Counters.
	UpdateMsgs int64
	QueryMsgs  int64
}

// New builds the hierarchy for n leaves.
func New(n int, cfg Config) *Hierarchy {
	if n < 1 {
		panic("hierarchy: no leaves")
	}
	if cfg.ClusterSize < 2 {
		panic("hierarchy: cluster size < 2")
	}
	if cfg.Epsilon < 0 {
		panic("hierarchy: negative epsilon")
	}
	h := &Hierarchy{cfg: cfg, n: n}
	// Members at level 0 are the n leaves; each level has
	// ceil(members/ClusterSize) clusters whose leaders form the next
	// level, up to and including a single-member root level.
	members := n
	for {
		h.boxAt = append(h.boxAt, emptyBoxes(members))
		h.reportedAt = append(h.reportedAt, emptyBoxes(members))
		if members == 1 {
			break
		}
		members = (members + cfg.ClusterSize - 1) / cfg.ClusterSize
	}
	h.levels = len(h.boxAt)
	return h
}

// coverageOf returns the feature-axis interval the subtree of member j at
// level l is responsible for: leaves are laid out in ring order over
// [-1, +1], and a level-l subtree spans ClusterSize^l consecutive leaves.
func (h *Hierarchy) coverageOf(level, member int) Interval {
	span := 1
	for i := 0; i < level; i++ {
		span *= h.cfg.ClusterSize
	}
	lo := member * span
	hi := lo + span
	if hi > h.n {
		hi = h.n
	}
	return Interval{
		Lo: -1 + 2*float64(lo)/float64(h.n),
		Hi: -1 + 2*float64(hi)/float64(h.n),
	}
}

func emptyBoxes(n int) []Interval {
	out := make([]Interval, n)
	for i := range out {
		out[i] = Empty
	}
	return out
}

// Levels returns the number of levels below the root.
func (h *Hierarchy) Levels() int { return h.levels }

// Leaves returns the leaf count.
func (h *Hierarchy) Leaves() int { return h.n }

// clusterOf returns the cluster index of member j.
func (h *Hierarchy) clusterOf(j int) int { return j / h.cfg.ClusterSize }

// leaderOf returns the leader's member index for cluster c (its first
// member).
func (h *Hierarchy) leaderOf(c int) int { return c * h.cfg.ClusterSize }

// membersAt returns the member count at level l.
func (h *Hierarchy) membersAt(l int) int { return len(h.boxAt[l]) }

// Update installs the current summary box of a leaf and propagates it up
// the leader chain, suppressing levels whose reported (widened) box still
// contains the new aggregate. It returns the number of upward messages
// sent.
func (h *Hierarchy) Update(leaf int, box Interval) int {
	if leaf < 0 || leaf >= h.n {
		panic(fmt.Sprintf("hierarchy: leaf %d of %d", leaf, h.n))
	}
	msgs := 0
	h.boxAt[0][leaf] = box
	member := leaf
	for l := 0; l < h.levels; l++ {
		cluster := h.clusterOf(member)
		// The member reports to its leader when its aggregate escapes
		// the box it last reported.
		cur := h.boxAt[l][member]
		if h.reportedAt[l][member].ContainsInterval(cur) {
			break // suppressed: nothing above needs to change
		}
		widened := cur.Widen(h.cfg.Epsilon * float64(l+1))
		h.reportedAt[l][member] = widened
		// Leaders do not message themselves; a leader whose own box
		// changed still recomputes its aggregate below.
		if member != h.leaderOf(cluster) {
			msgs++
		}
		if l+1 >= h.levels {
			break
		}
		// Recompute the leader's aggregate at the next level: union of
		// the reported boxes of its cluster members.
		agg := Empty
		lo := cluster * h.cfg.ClusterSize
		hi := lo + h.cfg.ClusterSize
		if hi > h.membersAt(l) {
			hi = h.membersAt(l)
		}
		for j := lo; j < hi; j++ {
			agg = agg.Union(h.reportedAt[l][j])
		}
		h.boxAt[l+1][cluster] = agg
		member = cluster
	}
	h.UpdateMsgs += int64(msgs)
	return msgs
}

// QueryResult summarizes one hierarchical query execution.
type QueryResult struct {
	// Msgs is the total number of messages (upward climb + downward
	// fan-out).
	Msgs int
	// ClimbLevels is how far the query climbed before its volume fit.
	ClimbLevels int
	// Leaves are the leaf indices whose summaries are candidate matches.
	Leaves []int
}

// Query executes a similarity query with the given feature interval,
// entering at the given leaf. The query climbs until the subtree coverage
// width is at least the query width (or the root is reached), then
// descends into children whose reported boxes intersect the interval.
func (h *Hierarchy) Query(enter int, q Interval) QueryResult {
	if enter < 0 || enter >= h.n {
		panic("hierarchy: bad entry leaf")
	}
	res := QueryResult{}
	// Clamp the interest volume to the feature space so the root always
	// covers it.
	if q.Lo < -1 {
		q.Lo = -1
	}
	if q.Hi > 1 {
		q.Hi = 1
	}
	// Climb: forward to the next-level leader until the subtree's
	// covered feature space contains the whole interest volume — "this
	// process recursively proceeds until we reach the root of the
	// hierarchy" (§VI-B).
	level := 0
	member := enter
	for level < h.levels-1 && !h.coverageOf(level, member).ContainsInterval(q) {
		cluster := h.clusterOf(member)
		if member != h.leaderOf(cluster) {
			res.Msgs++ // forward to the cluster leader
		}
		member = cluster
		level++
	}
	res.ClimbLevels = level
	// Descend from (level, member) into intersecting children.
	res.Leaves = h.descend(level, member, q, &res.Msgs)
	h.QueryMsgs += int64(res.Msgs)
	return res
}

// descend recursively visits children whose reported boxes intersect q.
func (h *Hierarchy) descend(level, member int, q Interval, msgs *int) []int {
	if level == 0 {
		if h.boxAt[0][member].Intersects(q) {
			return []int{member}
		}
		return nil
	}
	var out []int
	lo := member * h.cfg.ClusterSize
	hi := lo + h.cfg.ClusterSize
	if hi > h.membersAt(level-1) {
		hi = h.membersAt(level - 1)
	}
	for j := lo; j < hi; j++ {
		if !h.reportedAt[level-1][j].Intersects(q) {
			continue
		}
		// One message per child contacted. The first member of the
		// cluster is the leader itself (the same data center the query
		// already sits on), so descending into it is free.
		if j != member*h.cfg.ClusterSize {
			*msgs++
		}
		out = append(out, h.descend(level-1, j, q, msgs)...)
	}
	return out
}

// FlatCost estimates the message cost of the same query under the flat
// design of §IV: an O(log2 N) routed leg to reach the range plus one
// continuation message per additional covered node (sequential multicast).
func FlatCost(n int, q Interval) int {
	frac := q.Width() / 2
	if frac > 1 {
		frac = 1
	}
	covered := int(frac * float64(n))
	if covered < 1 {
		covered = 1
	}
	route := int(math.Ceil(math.Log2(float64(n)) / 2))
	if route < 1 {
		route = 1
	}
	return route + covered - 1
}
