package dht

import (
	"testing"
)

// mockNet is a minimal in-memory Network over a fixed sorted ring,
// delivering synchronously — it unit-tests the range-multicast logic
// against the interface contract alone, independent of any routing
// protocol implementation.
type mockNet struct {
	space Space
	ring  []Key // sorted
	apps  map[Key]App

	transmissions int
}

func newMockNet(m uint, ring []Key) *mockNet {
	n := &mockNet{space: NewSpace(m), ring: ring, apps: make(map[Key]App)}
	return n
}

func (n *mockNet) Space() Space { return n.space }

func (n *mockNet) successorOf(key Key) Key {
	for _, id := range n.ring {
		if id >= key {
			return id
		}
	}
	return n.ring[0]
}

func (n *mockNet) position(id Key) int {
	for i, r := range n.ring {
		if r == id {
			return i
		}
	}
	panic("mock: unknown node")
}

func (n *mockNet) Send(from Key, key Key, msg *Message) {
	msg.Src = from
	msg.Key = n.space.Wrap(key)
	dst := n.successorOf(msg.Key)
	if dst != from {
		n.transmissions++
		msg.Hops++
	}
	n.deliver(dst, msg)
}

func (n *mockNet) Forward(from Key, key Key, msg *Message) { n.Send(from, key, msg) }

func (n *mockNet) SendToSuccessor(from Key, msg *Message) {
	n.transmissions++
	msg.Hops++
	n.deliver(n.ring[(n.position(from)+1)%len(n.ring)], msg)
}

func (n *mockNet) SendToPredecessor(from Key, msg *Message) {
	n.transmissions++
	msg.Hops++
	n.deliver(n.ring[(n.position(from)-1+len(n.ring))%len(n.ring)], msg)
}

func (n *mockNet) Covers(id Key, key Key) bool {
	return n.successorOf(n.space.Wrap(key)) == id
}

func (n *mockNet) deliver(at Key, msg *Message) {
	if app := n.apps[at]; app != nil {
		app.Deliver(at, msg)
	}
}

func TestSendRangeSequentialOnMock(t *testing.T) {
	net := newMockNet(8, []Key{10, 50, 100, 150, 200, 250})
	var visited []Key
	for _, id := range net.ring {
		net.apps[id] = AppFunc(func(self Key, msg *Message) {
			visited = append(visited, self)
			ContinueRange(net, self, msg)
		})
	}
	SendRange(net, 10, 60, 180, &Message{}, RangeSequential)
	want := []Key{100, 150, 200}
	if len(visited) != len(want) {
		t.Fatalf("visited %v, want %v", visited, want)
	}
	for i := range want {
		if visited[i] != want[i] {
			t.Fatalf("visited %v, want %v", visited, want)
		}
	}
}

func TestSendRangeBidirectionalOnMock(t *testing.T) {
	net := newMockNet(8, []Key{10, 50, 100, 150, 200, 250})
	var order []Key
	for _, id := range net.ring {
		net.apps[id] = AppFunc(func(self Key, msg *Message) {
			order = append(order, self)
			ContinueRange(net, self, msg)
		})
	}
	SendRange(net, 10, 60, 220, &Message{}, RangeBidirectional)
	// Midpoint of [60,220] = 140 -> successor 150 delivers first, then
	// spreads to 100 and 200, then 250 (covers 220).
	if order[0] != 150 {
		t.Fatalf("first delivery at %d, want middle node 150", order[0])
	}
	seen := map[Key]bool{}
	for _, id := range order {
		if seen[id] {
			t.Fatalf("duplicate delivery at %d", id)
		}
		seen[id] = true
	}
	for _, want := range []Key{100, 150, 200, 250} {
		if !seen[want] {
			t.Fatalf("node %d missed; order %v", want, order)
		}
	}
	if len(order) != 4 {
		t.Fatalf("visited %v", order)
	}
}

func TestContinueRangeNoopForPlainMessages(t *testing.T) {
	net := newMockNet(8, []Key{10, 200})
	if legs := ContinueRange(net, 10, &Message{}); legs != 0 {
		t.Fatalf("plain message produced %d legs", legs)
	}
}

func TestSendRangeUnknownModePanics(t *testing.T) {
	net := newMockNet(8, []Key{10, 200})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	SendRange(net, 10, 0, 100, &Message{}, RangeMode(9))
}

func TestHashBytesAndNopObserver(t *testing.T) {
	s := NewSpace(16)
	if s.HashBytes([]byte("x")) != s.HashString("x") {
		t.Fatal("HashBytes != HashString")
	}
	var o NopObserver
	o.OnTransmit(1, 2, &Message{})
	o.OnDeliver(1, &Message{})
}

// collectVisits wires every ring node to record deliveries and continue
// the multicast, returning the shared visit log.
func collectVisits(net *mockNet) *[]Key {
	visited := &[]Key{}
	for _, id := range net.ring {
		net.apps[id] = AppFunc(func(self Key, msg *Message) {
			*visited = append(*visited, self)
			ContinueRange(net, self, msg)
		})
	}
	return visited
}

func assertVisitedSet(t *testing.T, visited []Key, want []Key) {
	t.Helper()
	seen := map[Key]bool{}
	for _, id := range visited {
		if seen[id] {
			t.Fatalf("duplicate delivery at %d; visits %v", id, visited)
		}
		seen[id] = true
	}
	if len(visited) != len(want) {
		t.Fatalf("visited %v, want set %v", visited, want)
	}
	for _, id := range want {
		if !seen[id] {
			t.Fatalf("node %d missed; visits %v", id, visited)
		}
	}
}

// A single-node ring covers every key itself: the multicast must deliver
// exactly once and terminate without any continuation leg, in both modes.
func TestSendRangeSingleNodeRing(t *testing.T) {
	for _, mode := range []RangeMode{RangeSequential, RangeBidirectional} {
		net := newMockNet(8, []Key{42})
		visited := collectVisits(net)
		SendRange(net, 42, 100, 200, &Message{}, mode)
		assertVisitedSet(t, *visited, []Key{42})
		if net.transmissions != 0 {
			t.Fatalf("%v: %d transmissions on a one-node ring, want 0", mode, net.transmissions)
		}
	}
}

// A range wrapping the origin of the identifier circle ([240, 30] on an
// 8-bit ring) must reach every node whose interval intersects either side
// of the wrap, exactly once.
func TestSendRangeWrappedAcrossOrigin(t *testing.T) {
	want := []Key{250, 10, 50}
	for _, mode := range []RangeMode{RangeSequential, RangeBidirectional} {
		net := newMockNet(8, []Key{10, 50, 100, 150, 200, 250})
		visited := collectVisits(net)
		SendRange(net, 100, 240, 30, &Message{}, mode)
		assertVisitedSet(t, *visited, want)
	}
}

// A degenerate single-key range (lo == hi) is delivered to exactly the one
// covering node; no continuation leg may fire in either mode.
func TestSendRangeSingleKey(t *testing.T) {
	for _, mode := range []RangeMode{RangeSequential, RangeBidirectional} {
		net := newMockNet(8, []Key{10, 50, 100, 150, 200, 250})
		visited := collectVisits(net)
		SendRange(net, 10, 120, 120, &Message{}, mode)
		assertVisitedSet(t, *visited, []Key{150})
		if net.transmissions != 1 {
			t.Fatalf("%v: %d transmissions for a single-key range, want 1 (the routed leg)", mode, net.transmissions)
		}
	}
}

// The same wrapped range must also work when the originating node itself
// lies inside the range (the continuation must still stop at the boundary
// and not lap the ring).
func TestSendRangeWrappedFromInsideNode(t *testing.T) {
	for _, mode := range []RangeMode{RangeSequential, RangeBidirectional} {
		net := newMockNet(8, []Key{10, 50, 100, 150, 200, 250})
		visited := collectVisits(net)
		SendRange(net, 250, 240, 30, &Message{}, mode)
		assertVisitedSet(t, *visited, []Key{250, 10, 50})
	}
}
