package dht

// Pool is a bounded worker pool a substrate exposes to the application so
// data-plane work (MBR matching, query evaluation, sliding-DFT advances)
// can run off the node's serialized control loop. Implementations must be
// safe for use from any goroutine.
type Pool interface {
	// Submit enqueues fn and blocks while the pool's queue is full —
	// blocking the producer (e.g. a socket read loop) is the backpressure
	// policy. It reports false when the pool is closed (fn is dropped).
	Submit(fn func()) bool
	// TrySubmit enqueues fn only if a queue slot is immediately free,
	// reporting whether it did. Callers that must not block (the control
	// loop itself) use it and run fn inline on false.
	TrySubmit(fn func()) bool
	// Workers returns the pool's worker-goroutine count.
	Workers() int
}

// PoolProvider is implemented by substrates that own a data-plane worker
// pool. The middleware type-asserts for it at attach time; substrates
// without one (the simulator) simply don't implement it and the
// application stays loop-confined.
type PoolProvider interface {
	DataPool() Pool
}

// ConcurrentApp is an App that can absorb *data* messages on arbitrary
// pool goroutines. A substrate with a worker pool type-asserts for it and
// calls DeliverData from workers; control messages and apps that do not
// implement it keep the classic loop-serialized Deliver path.
type ConcurrentApp interface {
	App
	// DeliverData handles msg on the calling goroutine if the message kind
	// is safe for concurrent handling, reporting whether it did. On false
	// the substrate must fall back to posting Deliver onto its loop.
	DeliverData(self Key, msg *Message) bool
}
