// Package dht defines the content-based routing abstraction the middleware
// is written against: an m-bit circular key space, a message model, and the
// standard interface virtually all content-based routing schemes share
// (paper §II-B) —
//
//   - send: route a message to the node covering a key,
//   - join/leave: membership operations,
//   - deliver: the application upcall on message arrival.
//
// The paper's middleware deliberately depends only on this interface (plus
// the ability to address a node's ring successor and predecessor, used to
// build range multicast, §IV-C) rather than on Chord specifically, so that
// it ports to CAN, Pastry or Tapestry. Package chord provides the simulated
// implementation used by the evaluation.
package dht

import (
	"crypto/sha1"
	"encoding/binary"
	"fmt"
)

// Key is an identifier on the ring: both node identifiers and content keys
// live in the same m-bit universe, the defining trait of consistent hashing.
// Only the low Space.M bits are meaningful.
type Key uint64

// Space describes an m-bit circular identifier space (the "Chord ring",
// identifiers ordered modulo 2^m).
type Space struct {
	// M is the number of identifier bits, 1 <= M <= 63. The paper's
	// examples use m = 5; the evaluation configuration uses m = 32.
	M uint
}

// NewSpace returns an identifier space with m bits, panicking on an invalid
// width (the simulator treats a bad configuration as a programming error).
func NewSpace(m uint) Space {
	if m < 1 || m > 63 {
		panic(fmt.Sprintf("dht: invalid identifier width m=%d", m))
	}
	return Space{M: m}
}

// Size returns 2^m, the number of identifiers.
func (s Space) Size() uint64 { return 1 << s.M }

// Mask returns 2^m - 1.
func (s Space) Mask() Key { return Key(s.Size() - 1) }

// Wrap reduces k modulo 2^m.
func (s Space) Wrap(k Key) Key { return k & s.Mask() }

// Add returns (k + d) mod 2^m; d may exceed the space size.
func (s Space) Add(k Key, d uint64) Key { return s.Wrap(k + Key(d)) }

// Between reports whether x lies in the circular open interval (a, b).
// When a == b the interval is the whole ring minus {a}, matching Chord's
// treatment of a single-node ring.
func (s Space) Between(x, a, b Key) bool {
	x, a, b = s.Wrap(x), s.Wrap(a), s.Wrap(b)
	if a < b {
		return a < x && x < b
	}
	return x > a || x < b
}

// BetweenIncl reports whether x lies in the circular half-open interval
// (a, b]. This is the "covers" test: the successor node of key k is the
// first node n with k in (predecessor(n), n].
func (s Space) BetweenIncl(x, a, b Key) bool {
	x, a, b = s.Wrap(x), s.Wrap(a), s.Wrap(b)
	if x == b {
		return true
	}
	return s.Between(x, a, b)
}

// Distance returns the clockwise distance from a to b, i.e. the number of
// identifier steps needed to reach b from a moving in increasing-id
// direction.
func (s Space) Distance(a, b Key) uint64 {
	a, b = s.Wrap(a), s.Wrap(b)
	if b >= a {
		return uint64(b - a)
	}
	return s.Size() - uint64(a-b)
}

// Midpoint returns the key halfway along the clockwise arc from lo to hi.
// The middle node of a query range (paper §IV-F) covers this key.
func (s Space) Midpoint(lo, hi Key) Key {
	return s.Add(lo, s.Distance(lo, hi)/2)
}

// HashString maps an arbitrary string (node name, stream identifier) to a
// key using SHA-1 truncated to m bits, exactly as Chord assigns identifiers
// with consistent hashing (paper §II-B.1; SHA-1 per FIPS 180-1 [1]).
func (s Space) HashString(v string) Key {
	sum := sha1.Sum([]byte(v))
	return s.Wrap(Key(binary.BigEndian.Uint64(sum[:8])))
}

// HashBytes is HashString for raw bytes.
func (s Space) HashBytes(v []byte) Key {
	sum := sha1.Sum(v)
	return s.Wrap(Key(binary.BigEndian.Uint64(sum[:8])))
}
