package dht

import (
	"testing"
	"testing/quick"
)

func TestNewSpaceValidation(t *testing.T) {
	for _, m := range []uint{0, 64, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewSpace(%d) did not panic", m)
				}
			}()
			NewSpace(m)
		}()
	}
	s := NewSpace(5)
	if s.Size() != 32 || s.Mask() != 31 {
		t.Fatalf("m=5: size=%d mask=%d", s.Size(), s.Mask())
	}
}

func TestWrapAdd(t *testing.T) {
	s := NewSpace(5)
	if got := s.Wrap(33); got != 1 {
		t.Fatalf("Wrap(33) = %d", got)
	}
	if got := s.Add(30, 5); got != 3 {
		t.Fatalf("Add(30,5) = %d", got)
	}
	if got := s.Add(3, 64); got != 3 {
		t.Fatalf("Add(3,64) = %d, want 3 (two full turns)", got)
	}
}

func TestBetween(t *testing.T) {
	s := NewSpace(5)
	cases := []struct {
		x, a, b Key
		want    bool
	}{
		{5, 3, 8, true},
		{3, 3, 8, false},  // open at a
		{8, 3, 8, false},  // open at b
		{30, 28, 2, true}, // wraps
		{1, 28, 2, true},  // wraps
		{5, 28, 2, false},
		{10, 7, 7, true}, // a==b: whole ring minus {a}
		{7, 7, 7, false},
	}
	for _, c := range cases {
		if got := s.Between(c.x, c.a, c.b); got != c.want {
			t.Errorf("Between(%d,%d,%d) = %v, want %v", c.x, c.a, c.b, got, c.want)
		}
	}
}

func TestBetweenIncl(t *testing.T) {
	s := NewSpace(5)
	if !s.BetweenIncl(8, 3, 8) {
		t.Fatal("b must be included")
	}
	if s.BetweenIncl(3, 3, 8) {
		t.Fatal("a must be excluded")
	}
	// Paper Fig. 1(a): key 26 is assigned to node 1 on a ring with nodes
	// {1, 8, 11, 14, 20, 23}: 26 in (23, 1].
	if !s.BetweenIncl(26, 23, 1) {
		t.Fatal("key 26 should belong to node 1 (successor after 23)")
	}
}

func TestDistance(t *testing.T) {
	s := NewSpace(5)
	if got := s.Distance(3, 8); got != 5 {
		t.Fatalf("Distance(3,8) = %d", got)
	}
	if got := s.Distance(30, 2); got != 4 {
		t.Fatalf("Distance(30,2) = %d", got)
	}
	if got := s.Distance(7, 7); got != 0 {
		t.Fatalf("Distance(7,7) = %d", got)
	}
}

func TestMidpoint(t *testing.T) {
	s := NewSpace(5)
	if got := s.Midpoint(4, 10); got != 7 {
		t.Fatalf("Midpoint(4,10) = %d", got)
	}
	if got := s.Midpoint(30, 4); got != 1 {
		t.Fatalf("Midpoint(30,4) = %d (wrapping arc)", got)
	}
}

func TestHashStringStableAndInRange(t *testing.T) {
	s := NewSpace(32)
	a, b := s.HashString("stream-7"), s.HashString("stream-7")
	if a != b {
		t.Fatal("hash not deterministic")
	}
	if a > s.Mask() {
		t.Fatal("hash exceeds mask")
	}
	if s.HashString("stream-7") == s.HashString("stream-8") {
		t.Fatal("suspicious collision between adjacent labels")
	}
	if s.HashBytes([]byte("stream-7")) != a {
		t.Fatal("HashBytes disagrees with HashString")
	}
}

// Property: Between relates to clockwise distance: x in (a,b) iff
// 0 < dist(a,x) < dist(a,b) (for a != b).
func TestBetweenDistanceProperty(t *testing.T) {
	s := NewSpace(16)
	f := func(x, a, b uint16) bool {
		xk, ak, bk := Key(x), Key(a), Key(b)
		if ak == bk {
			return true
		}
		got := s.Between(xk, ak, bk)
		want := s.Distance(ak, xk) > 0 && s.Distance(ak, xk) < s.Distance(ak, bk)
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: exactly one of x in (a,b], x in (b,a], or a==b and x==a... —
// more simply, for a != b, (a,b] and (b,a] partition the ring.
func TestIntervalPartitionProperty(t *testing.T) {
	s := NewSpace(16)
	f := func(x, a, b uint16) bool {
		xk, ak, bk := Key(x), Key(a), Key(b)
		if ak == bk {
			return true
		}
		in1 := s.BetweenIncl(xk, ak, bk)
		in2 := s.BetweenIncl(xk, bk, ak)
		return in1 != in2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: Distance(a,b) + Distance(b,a) == Size (mod the a==b case).
func TestDistanceAntisymmetryProperty(t *testing.T) {
	s := NewSpace(16)
	f := func(a, b uint16) bool {
		ak, bk := Key(a), Key(b)
		if ak == bk {
			return s.Distance(ak, bk) == 0
		}
		return s.Distance(ak, bk)+s.Distance(bk, ak) == s.Size()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: Midpoint lies within the closed arc and splits it near-evenly.
func TestMidpointProperty(t *testing.T) {
	s := NewSpace(16)
	f := func(a, b uint16) bool {
		ak, bk := Key(a), Key(b)
		m := s.Midpoint(ak, bk)
		d1, d2 := s.Distance(ak, m), s.Distance(m, bk)
		return d1+d2 == s.Distance(ak, bk) && (d1 == d2 || d1+1 == d2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestMessageClone(t *testing.T) {
	m := &Message{Kind: 3, Key: 9, Payload: "p", Hops: 4, HasRange: true, RangeEnd: 12}
	c := m.Clone()
	c.Hops = 99
	c.Dir = 1
	if m.Hops != 4 || m.Dir != 0 {
		t.Fatal("clone aliases original")
	}
	if c.Payload != m.Payload {
		t.Fatal("clone should share payload")
	}
}

func TestAppFunc(t *testing.T) {
	var gotSelf Key
	var gotMsg *Message
	f := AppFunc(func(self Key, msg *Message) { gotSelf, gotMsg = self, msg })
	m := &Message{Kind: 1}
	f.Deliver(5, m)
	if gotSelf != 5 || gotMsg != m {
		t.Fatal("AppFunc did not forward arguments")
	}
}

func TestRangeModeString(t *testing.T) {
	if RangeSequential.String() != "sequential" || RangeBidirectional.String() != "bidirectional" {
		t.Fatal("RangeMode.String mismatch")
	}
	if RangeMode(9).String() != "unknown" {
		t.Fatal("unknown mode string")
	}
}
