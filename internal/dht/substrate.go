package dht

import "streamdex/internal/clock"

// Substrate is the full contract the middleware needs from a content-based
// routing implementation: the message-plane Network operations plus
// deployment plumbing (application attachment, traffic observation,
// membership introspection).
//
// The paper's middleware "relies on the standard distributed hashing table
// interface provided by content-based routing schemes rather than on a
// particular implementation", so that it can run "on top of virtually any
// existing content-based routing implementation". This interface is that
// boundary: package chord provides the primary simulated implementation
// (with full join/leave/failure dynamics), package pastry a second,
// prefix-routing one that demonstrates the portability claim, and package
// transport a live TCP implementation where every node is a real process.
type Substrate interface {
	Network

	// Clock returns the clock the overlay schedules on: virtual time under
	// the simulator, wall time in a live deployment. The middleware runs
	// all of its periodic processes on it.
	Clock() clock.Clock
	// SetApp installs the application upcall for a node.
	SetApp(id Key, app App)
	// SetObserver installs the traffic observer (nil resets to no-op).
	SetObserver(o Observer)
	// NodeIDs returns the live node identifiers in ring order.
	NodeIDs() []Key
	// Alive reports whether the node is up.
	Alive(id Key) bool
	// Dropped returns the number of data-plane messages lost so far.
	Dropped() int64
}

// NeighborWatcher is optionally implemented by substrates that can report
// ring-neighborhood changes (predecessor or first successor of a node
// moved) — the churn signal the continuous-query engine re-homes standing
// registrations on. The callback runs on the substrate's serialized loop
// and may send messages.
type NeighborWatcher interface {
	WatchNeighbors(id Key, fn func())
}
