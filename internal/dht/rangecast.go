package dht

// Range multicast (paper §IV-C).
//
// The middleware frequently sends one logical message to *all* nodes whose
// interval intersects a key range [lo, hi] — MBR replication (§IV-G) and
// similarity-query dissemination (§IV-E) both do. No popular content-based
// routing scheme natively multicasts to a key range, so the paper layers it
// on the one primitive every scheme has: sending to a ring neighbor.
//
//   - Sequential: route to the lowest key; every covering node delivers
//     locally and forwards to its successor until the whole range is
//     covered. One message per covered node, but propagation is sequential,
//     which hurts wide ranges in large systems (shown in Fig. 8).
//   - Bidirectional: route to the middle key; the middle node forwards to
//     both its successor and predecessor, roughly halving the delay. Needs
//     predecessor support from the substrate (§IV-C, §VI).

// SendRange initiates a range multicast of msg over the circular key arc
// from lo clockwise to hi. The message is delivered to every node covering
// a key in [lo, hi]; each receiving application must call ContinueRange to
// keep the propagation going.
func SendRange(net Network, from Key, lo, hi Key, msg *Message, mode RangeMode) {
	s := net.Space()
	msg.HasRange = true
	msg.RangeStart = s.Wrap(lo)
	msg.RangeEnd = s.Wrap(hi)
	msg.Dir = 0
	switch mode {
	case RangeSequential, RangeTree:
		msg.Mode = mode
		msg.RangeTail = mode == RangeTree
		net.Send(from, msg.RangeStart, msg)
	case RangeBidirectional:
		msg.Mode = RangeBidirectional
		net.Send(from, s.Midpoint(msg.RangeStart, msg.RangeEnd), msg)
	default:
		panic("dht: unknown range mode")
	}
}

// ContinueRange propagates a just-delivered ranged message to the remaining
// covering nodes and returns the number of continuation legs sent (0, 1, or
// 2). Applications call it from Deliver after processing the message
// locally; it is a no-op for non-ranged messages.
func ContinueRange(net Network, self Key, msg *Message) int {
	if !msg.HasRange {
		return 0
	}
	s := net.Space()
	// The clockwise walk is done once the high boundary lies inside the
	// arc covered so far, [RangeStart, self]. "Covers(self, RangeEnd)"
	// alone is not a sufficient stop condition: on a range wrapping
	// (nearly) the whole ring the node covering the low boundary holds
	// the high boundary in its interval too, and the walk would end at
	// its first node with everything in between unvisited. Each hop
	// therefore advances RangeStart past the sender's interval so the
	// covered arc is explicit. (The last node may be delivered twice on a
	// full-circle range; delivery is idempotent everywhere by the
	// store/registration dedup rules.)
	doneHigh := s.Distance(msg.RangeStart, msg.RangeEnd) <= s.Distance(msg.RangeStart, self)
	// Tree dissemination: delegate the remaining arc to the node's
	// long-range links when the substrate supports it.
	if msg.Mode == RangeTree && !doneHigh {
		if d, ok := net.(RangeDelegator); ok {
			return d.DelegateRange(self, msg)
		}
		// Fallback: sequential walk.
	}
	legs := 0
	// Walk toward the high boundary unless the arc is already covered.
	if msg.Dir >= 0 && !doneHigh {
		c := msg.Clone()
		c.Dir = +1
		c.RangeStart = s.Add(self, 1)
		net.SendToSuccessor(self, c)
		legs++
	}
	// Walk toward the low boundary (bidirectional mode only). The node
	// covering the low boundary is by definition the last one that holds
	// any key of the range, so the walk stops there.
	if msg.Mode == RangeBidirectional && msg.Dir <= 0 && !net.Covers(self, msg.RangeStart) {
		c := msg.Clone()
		c.Dir = -1
		net.SendToPredecessor(self, c)
		legs++
	}
	return legs
}

// ContinueRangeStrided is ContinueRange for a replica-aware walk: instead
// of visiting every covering node, the continuation jumps `stride` nodes
// ahead, so a range replicated at each node's next stride-1 successors is
// still fully observed while touching only ~1/stride of the coverers.
//
// Coverage argument: the walk lands on nodes n_o, n_{o+stride},
// n_{o+2*stride}, ... of the covering sequence (o < stride is the caller's
// starting offset). An MBR stored at n_i is replicated on
// n_i..n_{i+stride-1}, so every window of stride consecutive coverers
// contains one landing and every stored MBR is seen exactly once. The walk
// stops at the first landing whose interval contains the high boundary —
// by the same RangeStart-advancing rule as the sequential walk — which is
// at or past the last natural coverer, so no window is skipped.
//
// Falls back to ContinueRange when stride <= 1, the message is not a
// sequential-mode forward walk, or the substrate lacks RingNeighbors.
// Returns the number of continuation legs sent (0 or 1).
func ContinueRangeStrided(net Network, self Key, msg *Message, stride int) int {
	if stride <= 1 || !msg.HasRange || msg.Mode != RangeSequential || msg.Dir < 0 {
		return ContinueRange(net, self, msg)
	}
	rn, ok := net.(RingNeighbors)
	if !ok {
		return ContinueRange(net, self, msg)
	}
	s := net.Space()
	doneHigh := s.Distance(msg.RangeStart, msg.RangeEnd) <= s.Distance(msg.RangeStart, self)
	if doneHigh {
		return 0
	}
	succs := rn.Successors(self, stride)
	if len(succs) < stride {
		// Ring smaller than the stride (or truncated list): the plain
		// successor walk is always safe.
		return ContinueRange(net, self, msg)
	}
	c := msg.Clone()
	c.Dir = +1
	// Advance the covered arc past self only — the skipped nodes' arc is
	// then part of [RangeStart, landing] at the next stop-rule check, so a
	// range ending inside a skipped interval still terminates the walk at
	// the first landing past it.
	c.RangeStart = s.Add(self, 1)
	rn.SendToNode(self, succs[stride-1], c)
	return 1
}
