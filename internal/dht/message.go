package dht

import "streamdex/internal/sim"

// Kind is an application-assigned message type. The middleware's kinds
// (MBR update, similarity query, response, ...) are defined in package core;
// the routing layer treats Kind opaquely but surfaces it to observers so the
// evaluation can break traffic into the exact components of the paper's
// figures 6-8.
type Kind uint8

// Message is a routed datagram. A message is sent "not to a specific data
// center but rather to the key to which the summary maps"; the routing
// substrate delivers it to the node covering Key.
type Message struct {
	Kind    Kind
	Key     Key // destination key
	Payload any

	// Src is the identifier of the originating node.
	Src Key
	// Bytes is the message's estimated wire size (envelope + payload),
	// set by the application at construction so observers can account
	// bandwidth as well as message counts. Zero means "unsized".
	Bytes int
	// SentAt is the virtual time the origin handed the message to the
	// network.
	SentAt sim.Time
	// Hops counts network traversals so far. It is cumulative across
	// range-multicast continuation legs, matching how the paper reports
	// "the number of hops each message traverses before reaching the
	// destination and being processed" (Fig. 8).
	Hops int

	// RangeEnd, when RangeHi is true, marks the highest key of a range
	// multicast in progress; delivery continues along successor pointers
	// until the covering node's interval contains RangeEnd (§IV-C).
	// For the bidirectional mode RangeStart marks the low boundary walked
	// toward via predecessor pointers.
	RangeStart Key
	RangeEnd   Key
	HasRange   bool
	// Mode records the multicast strategy the range was initiated with.
	Mode RangeMode
	// RangeTail marks the rightmost path of a tree dissemination: only
	// its holder may take the final successor hop past the last in-range
	// node to reach the node covering the high boundary. Interior
	// subtrees stop at their sibling boundary (the sibling itself was
	// delivered by the common parent).
	RangeTail bool
	// Dir records which way a bidirectional continuation leg is walking:
	// +1 toward the successor, -1 toward the predecessor, 0 for the
	// initial routed leg.
	Dir int

	// Split marks a routed sub-range head of an arc-split tree multicast:
	// the message is in flight toward the node preceding Key, which fans
	// the sub-range [RangeStart, RangeEnd] out of its successor list
	// instead of walking it. SplitImg and SplitShift carry the routing
	// machine's stateful walk (the imaginary de Bruijn address and the
	// digits left to inject on Koorde); substrates without a DigitRouter
	// machine route split legs greedily. All three fields are cleared
	// before the message is delivered or delegated.
	Split      bool
	SplitImg   Key
	SplitShift uint8
}

// SplitShiftNone is the SplitShift sentinel for "walk not anchored yet":
// the first DigitRouter hop computes the alignment. It matches the
// ShiftNone sentinel of the Koorde lookup walk.
const SplitShiftNone uint8 = 0xff

// Clone returns a shallow copy (Payload is shared). Range-multicast
// forwarding clones the delivered message for the continuation leg so hop
// accounting of the two legs cannot alias.
func (m *Message) Clone() *Message {
	c := *m
	return &c
}

// RangeMode selects how a message addressed to a range of keys is spread
// over the covering nodes (§IV-C).
type RangeMode int

const (
	// RangeSequential sends to the lowest key in the range; each covering
	// node delivers locally and forwards to its successor until the range
	// is exhausted. Message-efficient but the propagation is completely
	// sequential.
	RangeSequential RangeMode = iota
	// RangeBidirectional sends to the middle key of the range; the middle
	// node forwards both to its successor and to its predecessor, halving
	// the worst-case propagation delay. Requires predecessor support from
	// the routing substrate.
	RangeBidirectional
	// RangeTree sends to the lowest key and then splits the remaining
	// range among the covering node's long-distance links (Chord
	// fingers), recursively — the "efficient native support of multicast
	// to a range of keys" the paper calls for in §IV-C/§VI-B. Delay
	// drops from linear to logarithmic in the number of covered nodes at
	// the same message cost. Substrates without long links (see
	// RangeDelegator) degrade gracefully to sequential propagation.
	RangeTree
)

// String implements fmt.Stringer for test output.
func (m RangeMode) String() string {
	switch m {
	case RangeSequential:
		return "sequential"
	case RangeBidirectional:
		return "bidirectional"
	case RangeTree:
		return "tree"
	default:
		return "unknown"
	}
}

// RangeDelegator is implemented by substrates whose nodes hold
// long-distance links (Chord fingers, Pastry routing tables) usable to
// split a range multicast into a dissemination tree.
type RangeDelegator interface {
	// DelegateRange forwards copies of the just-delivered ranged message
	// from self toward the rest of its range (self, msg.RangeEnd],
	// partitioning the arc among self's long-range neighbors. It returns
	// the number of legs sent.
	DelegateRange(self Key, msg *Message) int
}

// RingNeighbors is optionally implemented by substrates that expose a
// node's successor list beyond the immediate successor and can transmit a
// message directly to a known ring neighbor (one traversal, no routing).
// Replica-aware query dissemination uses it to stride over the covering
// range and to hand a point query to the replica chosen by the read
// balancer; substrates without it degrade to the plain sequential walk.
type RingNeighbors interface {
	// Successors returns up to n live successors of id, nearest first.
	// The slice may be shorter than n (small rings, partial lists) and
	// must not be retained by the caller past the current upcall.
	Successors(id Key, n int) []Key
	// SendToNode transmits msg one traversal from `from` directly to the
	// ring neighbor `to`, preserving cumulative hop count. `to` must have
	// been obtained from Successors; unknown targets may be dropped.
	SendToNode(from, to Key, msg *Message)
}

// App is the application upcall: the routing layer invokes Deliver on the
// node covering the destination key ("deliver operation that invokes an
// application upcall upon message delivery").
type App interface {
	Deliver(self Key, msg *Message)
}

// AppFunc adapts a function to the App interface.
type AppFunc func(self Key, msg *Message)

// Deliver calls f(self, msg).
func (f AppFunc) Deliver(self Key, msg *Message) { f(self, msg) }

// Network is the routing interface the middleware depends on. It is the
// common send/join/leave/deliver interface of content-based routing schemes
// extended with the two neighbor primitives needed for range multicast.
type Network interface {
	// Space exposes the identifier universe.
	Space() Space
	// Send routes msg from the node identified by from to the node
	// covering key. Hops/SentAt bookkeeping is initialised here.
	Send(from Key, key Key, msg *Message)
	// Forward continues routing a message already in flight (used by
	// nodes that receive a ranged message and must pass a continuation
	// leg along). Hop count is preserved and keeps accumulating.
	Forward(from Key, key Key, msg *Message)
	// SendToSuccessor transmits msg one hop to from's current ring
	// successor, preserving cumulative hop count.
	SendToSuccessor(from Key, msg *Message)
	// SendToPredecessor transmits msg one hop to from's current ring
	// predecessor, preserving cumulative hop count.
	SendToPredecessor(from Key, msg *Message)
	// Covers reports whether node id covers key, i.e. whether id is the
	// successor node of key in the current ring.
	Covers(id Key, key Key) bool
}

// Observer receives traffic callbacks for accounting. All methods are
// invoked synchronously from the event loop.
type Observer interface {
	// OnTransmit fires once per network traversal of a message: node
	// `from` sends to node `to`. The message's Hops has already been set
	// to the value after this traversal.
	OnTransmit(from, to Key, msg *Message)
	// OnDeliver fires when the covering node processes the message.
	OnDeliver(at Key, msg *Message)
}

// NopObserver discards all events; it is the default observer.
type NopObserver struct{}

// OnTransmit implements Observer.
func (NopObserver) OnTransmit(from, to Key, msg *Message) {}

// OnDeliver implements Observer.
func (NopObserver) OnDeliver(at Key, msg *Message) {}
