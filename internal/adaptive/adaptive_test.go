package adaptive

import (
	"testing"

	"streamdex/internal/dsp"
	"streamdex/internal/sim"
	"streamdex/internal/stream"
	"streamdex/internal/summary"
)

func TestControllerValidation(t *testing.T) {
	for _, fn := range []func(){
		func() { NewController(0, 10, 0.1) },
		func() { NewController(5, 4, 0.1) },
		func() { NewController(1, 10, 0) },
		func() { TargetForRadius(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestTargetForRadius(t *testing.T) {
	if TargetForRadius(0.2) != 0.1 {
		t.Fatal("target should be half the radius")
	}
}

func wideMBR(side float64) *summary.MBR {
	b := summary.NewMBR("s", 0, summary.Feature{0, 0})
	b.Extend(summary.Feature{side, side / 2})
	return b
}

func TestControllerShrinksOnWideMBR(t *testing.T) {
	c := NewController(1, 64, 0.1)
	c.beta = 32
	got := c.Observe(wideMBR(0.5))
	if got != 16 {
		t.Fatalf("beta after wide MBR = %d, want 16 (halved)", got)
	}
	// Repeated wide MBRs floor at min.
	for i := 0; i < 10; i++ {
		got = c.Observe(wideMBR(0.5))
	}
	if got != 1 {
		t.Fatalf("beta floored at %d, want 1", got)
	}
}

func TestControllerGrowsOnTightMBR(t *testing.T) {
	c := NewController(1, 8, 0.1)
	var got int
	for i := 0; i < 20; i++ {
		got = c.Observe(wideMBR(0.01))
	}
	if got != 8 {
		t.Fatalf("beta capped at %d, want 8", got)
	}
}

func TestControllerHoldsInDeadBand(t *testing.T) {
	c := NewController(1, 64, 0.1)
	c.beta = 10
	// Side in [target/2, target]: neither grow nor shrink.
	if got := c.Observe(wideMBR(0.07)); got != 10 {
		t.Fatalf("beta moved to %d inside dead band", got)
	}
}

func TestAdaptiveBatcherTracksVolatility(t *testing.T) {
	// A calm regime should settle on a larger factor than a volatile one.
	run := func(step float64) float64 {
		rng := sim.NewRand(42)
		walk := stream.NewRandomWalk(rng, 500, step, 0, 1000)
		sd := newFeatureSource(walk)
		ctl := NewController(1, 64, 0.05)
		bt := NewBatcher("s", ctl)
		var sum, n float64
		for i := 0; i < 6000; i++ {
			f := sd.next()
			if f == nil {
				continue
			}
			if bt.Add(f) != nil {
				sum += float64(bt.Beta())
				n++
			}
		}
		if n == 0 {
			t.Fatal("no MBRs produced")
		}
		return sum / n
	}
	calm := run(0.2)
	volatile := run(20)
	if calm <= volatile {
		t.Fatalf("calm avg beta %.1f <= volatile %.1f; adaptation not working", calm, volatile)
	}
}

// featureSource turns a generator into a feature stream via the standard
// pipeline (32-point windows, z-normalization, 3 feature dims).
type featureSource struct {
	gen  stream.Generator
	sdft *dsp.SlidingDFT
}

func newFeatureSource(gen stream.Generator) *featureSource {
	return &featureSource{gen: gen, sdft: dsp.NewSlidingDFT(32, 3)}
}

// next returns the current feature, or nil while the window is filling.
func (f *featureSource) next() summary.Feature {
	f.sdft.Push(f.gen.Next())
	if !f.sdft.Full() {
		return nil
	}
	return summary.FromCoeffs(f.sdft.NormalizedCoeffs(dsp.ZNorm), 3, true)
}

func TestAdaptiveBatcherMBRsRespectBounds(t *testing.T) {
	rng := sim.NewRand(7)
	walk := stream.DefaultRandomWalk(rng)
	src := newFeatureSource(walk)
	ctl := NewController(2, 16, 0.05)
	bt := NewBatcher("s", ctl)
	for i := 0; i < 4000; i++ {
		f := src.next()
		if f == nil {
			continue
		}
		if b := bt.Add(f); b != nil {
			if b.Count < 2 || b.Count > 16 {
				t.Fatalf("MBR count %d outside [2,16]", b.Count)
			}
		}
	}
	if left := bt.Flush(); left != nil && left.Count > 16 {
		t.Fatalf("flushed MBR count %d", left.Count)
	}
}
