// Package adaptive implements the paper's first future-work extension
// (§VI-A): adaptive precision setting for MBRs.
//
// Grouping every beta feature vectors into an MBR is a data-independent
// reduction: a fixed beta produces tight rectangles on calm streams and
// huge, imprecise rectangles on volatile ones. Following the adaptive
// interval-caching idea of Olston et al. [20] that the paper proposes to
// adopt, the controller here adjusts the batching factor per stream so the
// rectangle's extent tracks a target precision:
//
//   - when a finished MBR is wider than the target, the factor shrinks
//     multiplicatively (precision recovers quickly);
//   - when it is comfortably tighter than the target, the factor grows
//     additively (bandwidth is reclaimed cautiously).
//
// The target is naturally tied to the query radius: a rectangle much wider
// than the radius makes nearly every query a candidate match (false
// positives), while one much tighter wastes update messages.
package adaptive

import (
	"fmt"

	"streamdex/internal/summary"
)

// Controller adapts the MBR batching factor of one stream.
type Controller struct {
	min, max int
	target   float64
	// grow is the additive increase per tight MBR; shrink the
	// multiplicative decrease factor per wide MBR.
	grow   int
	shrink float64

	beta int
}

// NewController creates a controller bounded to [min, max] aiming for MBRs
// whose longest side stays near target.
func NewController(min, max int, target float64) *Controller {
	if min < 1 || max < min {
		panic(fmt.Sprintf("adaptive: invalid factor bounds [%d,%d]", min, max))
	}
	if target <= 0 {
		panic("adaptive: non-positive precision target")
	}
	return &Controller{
		min:    min,
		max:    max,
		target: target,
		grow:   1,
		shrink: 0.5,
		beta:   min,
	}
}

// TargetForRadius returns the standard precision target for a workload
// whose similarity queries use the given radius: half the radius, so an
// MBR's own extent cannot dominate the candidate test.
func TargetForRadius(radius float64) float64 {
	if radius <= 0 {
		panic("adaptive: non-positive radius")
	}
	return radius / 2
}

// Beta returns the current batching factor.
func (c *Controller) Beta() int { return c.beta }

// Observe feeds back a finished MBR and returns the factor to use for the
// next batch.
func (c *Controller) Observe(b *summary.MBR) int {
	side := b.MaxSide()
	switch {
	case side > c.target:
		c.beta = int(float64(c.beta) * c.shrink)
		if c.beta < c.min {
			c.beta = c.min
		}
	case side < 0.5*c.target:
		c.beta += c.grow
		if c.beta > c.max {
			c.beta = c.max
		}
	}
	return c.beta
}

// Batcher couples a summary.Batcher with a Controller: every finished MBR
// adjusts the factor of the next batch.
type Batcher struct {
	inner *summary.Batcher
	ctl   *Controller
}

// NewBatcher creates an adaptive batcher for the stream.
func NewBatcher(streamID string, ctl *Controller) *Batcher {
	return &Batcher{inner: summary.NewBatcher(streamID, ctl.Beta()), ctl: ctl}
}

// Add folds a feature vector in, returning a finished MBR or nil; finished
// MBRs drive the adaptation.
func (b *Batcher) Add(f summary.Feature) *summary.MBR {
	done := b.inner.Add(f)
	if done != nil {
		b.inner.SetBeta(b.ctl.Observe(done))
	}
	return done
}

// Flush returns any in-progress MBR.
func (b *Batcher) Flush() *summary.MBR { return b.inner.Flush() }

// Beta returns the factor the next batch will use.
func (b *Batcher) Beta() int { return b.inner.Beta() }
