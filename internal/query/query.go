// Package query defines the two continuous query categories of the paper's
// stream query model (§III-B): inner-product queries and similarity queries
// (correlation and subsequence), together with their result types.
//
// Queries are continuous: "posed once, and run for a certain period of time
// called lifespan".
package query

import (
	"fmt"

	"streamdex/internal/dht"
	"streamdex/internal/dsp"
	"streamdex/internal/sim"
	"streamdex/internal/summary"
)

// ID identifies one posted query within a middleware instance.
type ID uint64

// Similarity is a continuous similarity query, formally the triplet
// (Q, epsilon, Delta): all stream (sub)sequences within Euclidean distance
// epsilon of the normalized query sequence Q are reported during Delta time
// units (§III-B.2).
type Similarity struct {
	ID ID
	// Origin is the node where the client posed the query and to which
	// responses flow.
	Origin dht.Key
	// Feature is the query sequence's feature vector in the unit feature
	// space (extracted exactly like stream summaries).
	Feature summary.Feature
	// Radius is the similarity threshold epsilon.
	Radius float64
	// Norm records the normalization the query targets: ZNorm for
	// correlation queries, UnitNorm for subsequence/pattern queries.
	Norm dsp.Mode
	// Posted and Lifespan delimit the query's activity window.
	Posted   sim.Time
	Lifespan sim.Time
}

// Expiry returns the instant the query stops being active.
func (q *Similarity) Expiry() sim.Time { return q.Posted + q.Lifespan }

// Validate reports a malformed query.
func (q *Similarity) Validate() error {
	if len(q.Feature) == 0 {
		return fmt.Errorf("similarity query %d: empty feature", q.ID)
	}
	if !q.Feature.Valid() {
		return fmt.Errorf("similarity query %d: feature outside unit space: %v", q.ID, q.Feature)
	}
	if q.Radius < 0 {
		return fmt.Errorf("similarity query %d: negative radius", q.ID)
	}
	if q.Lifespan <= 0 {
		return fmt.Errorf("similarity query %d: non-positive lifespan", q.ID)
	}
	return nil
}

// InnerProduct is a continuous inner-product query, formally the quadruple
// (sid, I, W, Delta): sid names the stream, I indexes the data items of
// interest within the stream's sliding window (0 = oldest), W holds the
// corresponding weights, and Delta is the lifespan (§III-B.1). Point and
// range queries are expressible in this form.
type InnerProduct struct {
	ID       ID
	Origin   dht.Key
	StreamID string
	Index    []int
	Weights  []float64
	Posted   sim.Time
	Lifespan sim.Time
}

// Expiry returns the instant the query stops being active.
func (q *InnerProduct) Expiry() sim.Time { return q.Posted + q.Lifespan }

// Validate reports a malformed query.
func (q *InnerProduct) Validate() error {
	if q.StreamID == "" {
		return fmt.Errorf("inner-product query %d: empty stream id", q.ID)
	}
	if len(q.Index) == 0 || len(q.Index) != len(q.Weights) {
		return fmt.Errorf("inner-product query %d: index/weight vectors of lengths %d/%d",
			q.ID, len(q.Index), len(q.Weights))
	}
	for _, i := range q.Index {
		if i < 0 {
			return fmt.Errorf("inner-product query %d: negative index %d", q.ID, i)
		}
	}
	if q.Lifespan <= 0 {
		return fmt.Errorf("inner-product query %d: non-positive lifespan", q.ID)
	}
	return nil
}

// Average returns an inner-product query computing the arithmetic mean of
// the window's last n values — "what is the average closing price of Intel
// for the last month?" is AveragE over a month-long window.
func Average(sid string, windowSize, n int, lifespan sim.Time) *InnerProduct {
	if n <= 0 || n > windowSize {
		panic("query: average over invalid span")
	}
	idx := make([]int, n)
	w := make([]float64, n)
	for i := 0; i < n; i++ {
		idx[i] = windowSize - n + i // the most recent n items
		w[i] = 1 / float64(n)
	}
	return &InnerProduct{StreamID: sid, Index: idx, Weights: w, Lifespan: lifespan}
}

// Point returns an inner-product query selecting the single value at window
// position i.
func Point(sid string, i int, lifespan sim.Time) *InnerProduct {
	return &InnerProduct{StreamID: sid, Index: []int{i}, Weights: []float64{1}, Lifespan: lifespan}
}

// RangeSum returns an inner-product query summing the window positions
// [from, to) — the paper's "simple point and range queries can be
// expressed as inner product queries".
func RangeSum(sid string, from, to int, lifespan sim.Time) *InnerProduct {
	if from < 0 || to <= from {
		panic("query: invalid range")
	}
	idx := make([]int, to-from)
	w := make([]float64, to-from)
	for i := range idx {
		idx[i] = from + i
		w[i] = 1
	}
	return &InnerProduct{StreamID: sid, Index: idx, Weights: w, Lifespan: lifespan}
}

// Weighted returns an inner-product query with explicit decay weights over
// the most recent n values, newest weighted heaviest — the paper's
// "weighted average of last 20 body temperature measurements" alarm shape.
// decay in (0, 1] is the per-step multiplier going back in time; weights
// are normalized to sum to 1.
func Weighted(sid string, windowSize, n int, decay float64, lifespan sim.Time) *InnerProduct {
	if n <= 0 || n > windowSize {
		panic("query: weighted span outside window")
	}
	if decay <= 0 || decay > 1 {
		panic("query: decay outside (0, 1]")
	}
	idx := make([]int, n)
	w := make([]float64, n)
	weight := 1.0
	var sum float64
	for i := n - 1; i >= 0; i-- {
		idx[i] = windowSize - n + i
		w[i] = weight
		sum += weight
		weight *= decay
	}
	for i := range w {
		w[i] /= sum
	}
	return &InnerProduct{StreamID: sid, Index: idx, Weights: w, Lifespan: lifespan}
}

// Match is one similarity candidate: a stored MBR of a stream whose minimum
// distance to the query feature is within the radius. Because the feature
// distance lower-bounds the true distance (Eq. 9), matches form a superset
// with false positives but no false dismissals.
type Match struct {
	StreamID string
	Seq      uint64
	// DistLB is the lower bound on the true distance (the MINDIST in
	// feature space).
	DistLB float64
	// FoundAt is the virtual time the candidate was detected at the
	// storing node.
	FoundAt sim.Time
	// Node is the data center that detected the candidate.
	Node dht.Key
}

// IPValue is one periodic inner-product result push.
type IPValue struct {
	Value float64
	At    sim.Time
	// Approx reports that the value was reconstructed from the retained
	// DFT coefficients rather than the raw window (always true in the
	// middleware; ground-truth checks compute the exact value locally).
	Approx bool
}
