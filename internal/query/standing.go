// Standing-query shapes served by the continuous-query engine: pub/sub
// predicates, windowed aggregates, and top-k monitors. Like the paper's two
// query categories they are continuous — posed once, active for a lifespan —
// and they are disseminated over the key range their content maps to, so
// the covering nodes of the MBR index serve them without extra routing
// state.
package query

import (
	"fmt"

	"streamdex/internal/dht"
	"streamdex/internal/sim"
	"streamdex/internal/summary"
)

// Predicate is a standing pub/sub subscription: every MBR whose rectangle
// intersects [Lo, Hi] during the lifespan is reported to the subscriber
// (Chen et al.'s predicate subscriptions mapped onto the feature space).
type Predicate struct {
	ID     ID
	Origin dht.Key
	// Lo and Hi are the corner points of the subscribed feature-space
	// rectangle.
	Lo, Hi summary.Feature
	// Posted and Lifespan delimit the subscription's activity window.
	Posted   sim.Time
	Lifespan sim.Time
}

// Expiry returns the instant the subscription stops being active.
func (p *Predicate) Expiry() sim.Time { return p.Posted + p.Lifespan }

// KeyRange returns the key range the subscription is disseminated over:
// the image of its routing-coordinate extent under the mapping function.
func (p *Predicate) KeyRange(m summary.Mapper) (lo, hi dht.Key) {
	return m.Range(p.Lo[0], p.Hi[0])
}

// Overlaps reports whether an MBR given by its corner points intersects the
// subscribed rectangle.
func (p *Predicate) Overlaps(lo, hi summary.Feature) bool {
	if len(lo) != len(p.Lo) {
		return false
	}
	for d := range p.Lo {
		if hi[d] < p.Lo[d] || lo[d] > p.Hi[d] {
			return false
		}
	}
	return true
}

// Validate reports a malformed subscription.
func (p *Predicate) Validate() error {
	if len(p.Lo) == 0 || len(p.Lo) != len(p.Hi) {
		return fmt.Errorf("predicate %d: corner dims %d/%d", p.ID, len(p.Lo), len(p.Hi))
	}
	for d := range p.Lo {
		if p.Lo[d] > p.Hi[d] {
			return fmt.Errorf("predicate %d: inverted rectangle in dim %d", p.ID, d)
		}
	}
	if p.Lifespan <= 0 {
		return fmt.Errorf("predicate %d: non-positive lifespan", p.ID)
	}
	return nil
}

// Aggregate is a continuous windowed-aggregate query over the streams whose
// routing coordinate falls in [Lo, Hi]: every covering node pushes its
// per-stream window sketches to the origin each push period, where they are
// deduplicated and merged into count/quantile estimates.
type Aggregate struct {
	ID     ID
	Origin dht.Key
	// Lo and Hi delimit the monitored routing-coordinate range in the
	// unit feature space.
	Lo, Hi   float64
	Posted   sim.Time
	Lifespan sim.Time
}

// Expiry returns the instant the query stops being active.
func (q *Aggregate) Expiry() sim.Time { return q.Posted + q.Lifespan }

// Validate reports a malformed query.
func (q *Aggregate) Validate() error {
	if q.Lo > q.Hi {
		return fmt.Errorf("aggregate %d: inverted range [%g, %g]", q.ID, q.Lo, q.Hi)
	}
	if q.Lifespan <= 0 {
		return fmt.Errorf("aggregate %d: non-positive lifespan", q.ID)
	}
	return nil
}

// TopK is a continuous top-k monitor: covering nodes count how often each
// stream publishes an MBR into the monitored routing-coordinate range and
// push their frequency tables to the origin, which maintains the global
// top-k by summing per-node counts.
type TopK struct {
	ID     ID
	Origin dht.Key
	// K is how many streams the client wants ranked.
	K int
	// Lo and Hi delimit the monitored routing-coordinate range.
	Lo, Hi   float64
	Posted   sim.Time
	Lifespan sim.Time
}

// Expiry returns the instant the monitor stops being active.
func (q *TopK) Expiry() sim.Time { return q.Posted + q.Lifespan }

// Validate reports a malformed monitor.
func (q *TopK) Validate() error {
	if q.K < 1 {
		return fmt.Errorf("top-k %d: k = %d", q.ID, q.K)
	}
	if q.Lo > q.Hi {
		return fmt.Errorf("top-k %d: inverted range [%g, %g]", q.ID, q.Lo, q.Hi)
	}
	if q.Lifespan <= 0 {
		return fmt.Errorf("top-k %d: non-positive lifespan", q.ID)
	}
	return nil
}
