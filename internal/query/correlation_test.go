package query

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCorrelationDistanceRoundTrip(t *testing.T) {
	f := func(raw uint8) bool {
		minCorr := float64(raw)/255*1.99 - 0.99 // (-0.99, 1.0]
		r := RadiusForCorrelation(minCorr)
		back := CorrelationFromDistance(r)
		return math.Abs(back-minCorr) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestCorrelationKnownValues(t *testing.T) {
	if got := CorrelationFromDistance(0); got != 1 {
		t.Fatalf("identical series: corr = %v", got)
	}
	if got := CorrelationFromDistance(math.Sqrt2); math.Abs(got) > 1e-12 {
		t.Fatalf("orthogonal series: corr = %v", got)
	}
	if got := CorrelationFromDistance(2); got != -1 {
		t.Fatalf("opposite series: corr = %v", got)
	}
	if got := RadiusForCorrelation(1); got != 0 {
		t.Fatalf("corr 1 needs radius %v", got)
	}
}

func TestRadiusForCorrelationValidation(t *testing.T) {
	for _, c := range []float64{-1, -1.5, 1.1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("threshold %v accepted", c)
				}
			}()
			RadiusForCorrelation(c)
		}()
	}
}

func TestCorrelationIdentityOnRealSeries(t *testing.T) {
	// Verify corr = 1 - d^2/2 numerically on z-normalized random series.
	rng := rand.New(rand.NewSource(1))
	n := 64
	x, y := make([]float64, n), make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
		y[i] = 0.6*x[i] + 0.4*rng.NormFloat64()
	}
	zx, zy := znorm(x), znorm(y)
	var dot, dsq float64
	for i := range zx {
		dot += zx[i] * zy[i]
		diff := zx[i] - zy[i]
		dsq += diff * diff
	}
	if math.Abs(CorrelationFromDistance(math.Sqrt(dsq))-dot) > 1e-12 {
		t.Fatalf("identity violated: corr %v vs 1-d^2/2 %v", dot, CorrelationFromDistance(math.Sqrt(dsq)))
	}
}

func znorm(x []float64) []float64 {
	var mean float64
	for _, v := range x {
		mean += v
	}
	mean /= float64(len(x))
	var norm float64
	for _, v := range x {
		norm += (v - mean) * (v - mean)
	}
	norm = math.Sqrt(norm)
	out := make([]float64, len(x))
	for i, v := range x {
		out[i] = (v - mean) / norm
	}
	return out
}

func TestMatchCorrelationBound(t *testing.T) {
	m := Match{DistLB: 0.2}
	if got := m.CorrelationBound(); math.Abs(got-0.98) > 1e-12 {
		t.Fatalf("bound = %v, want 0.98", got)
	}
}
