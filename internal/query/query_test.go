package query

import (
	"math"
	"testing"

	"streamdex/internal/dsp"
	"streamdex/internal/sim"
	"streamdex/internal/summary"
)

func TestSimilarityValidate(t *testing.T) {
	good := &Similarity{ID: 1, Feature: summary.Feature{0.1, 0.2}, Radius: 0.1, Norm: dsp.ZNorm, Lifespan: sim.Second}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid query rejected: %v", err)
	}
	bad := []*Similarity{
		{Feature: nil, Radius: 0.1, Lifespan: sim.Second},
		{Feature: summary.Feature{2}, Radius: 0.1, Lifespan: sim.Second},
		{Feature: summary.Feature{0}, Radius: -1, Lifespan: sim.Second},
		{Feature: summary.Feature{0}, Radius: 0.1, Lifespan: 0},
	}
	for i, q := range bad {
		if err := q.Validate(); err == nil {
			t.Errorf("bad query %d accepted", i)
		}
	}
}

func TestSimilarityExpiry(t *testing.T) {
	q := &Similarity{Posted: 10 * sim.Second, Lifespan: 20 * sim.Second}
	if q.Expiry() != 30*sim.Second {
		t.Fatalf("Expiry = %v", q.Expiry())
	}
}

func TestInnerProductValidate(t *testing.T) {
	good := &InnerProduct{ID: 1, StreamID: "s", Index: []int{0, 1}, Weights: []float64{0.5, 0.5}, Lifespan: sim.Second}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid query rejected: %v", err)
	}
	bad := []*InnerProduct{
		{StreamID: "", Index: []int{0}, Weights: []float64{1}, Lifespan: sim.Second},
		{StreamID: "s", Index: nil, Weights: nil, Lifespan: sim.Second},
		{StreamID: "s", Index: []int{0}, Weights: []float64{1, 2}, Lifespan: sim.Second},
		{StreamID: "s", Index: []int{-1}, Weights: []float64{1}, Lifespan: sim.Second},
		{StreamID: "s", Index: []int{0}, Weights: []float64{1}, Lifespan: 0},
	}
	for i, q := range bad {
		if err := q.Validate(); err == nil {
			t.Errorf("bad query %d accepted", i)
		}
	}
}

func TestAverageBuilder(t *testing.T) {
	q := Average("intc", 128, 30, sim.Minute)
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(q.Index) != 30 {
		t.Fatalf("len(Index) = %d", len(q.Index))
	}
	if q.Index[0] != 98 || q.Index[29] != 127 {
		t.Fatalf("Index spans [%d,%d], want [98,127]", q.Index[0], q.Index[29])
	}
	var sum float64
	for _, w := range q.Weights {
		sum += w
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("weights sum to %v", sum)
	}
}

func TestAverageValidation(t *testing.T) {
	for _, n := range []int{0, 129} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Average with n=%d did not panic", n)
				}
			}()
			Average("s", 128, n, sim.Second)
		}()
	}
}

func TestRangeSumBuilder(t *testing.T) {
	q := RangeSum("s", 10, 14, sim.Second)
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(q.Index) != 4 || q.Index[0] != 10 || q.Index[3] != 13 {
		t.Fatalf("Index = %v", q.Index)
	}
	for _, w := range q.Weights {
		if w != 1 {
			t.Fatalf("Weights = %v", q.Weights)
		}
	}
	for _, fn := range []func(){
		func() { RangeSum("s", -1, 3, sim.Second) },
		func() { RangeSum("s", 5, 5, sim.Second) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestWeightedBuilder(t *testing.T) {
	q := Weighted("s", 128, 20, 0.9, sim.Second)
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(q.Index) != 20 || q.Index[0] != 108 || q.Index[19] != 127 {
		t.Fatalf("Index spans [%d,%d]", q.Index[0], q.Index[19])
	}
	var sum float64
	for _, w := range q.Weights {
		sum += w
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("weights sum to %v", sum)
	}
	// Newest value weighted heaviest.
	if q.Weights[19] <= q.Weights[0] {
		t.Fatalf("weights not increasing toward the newest: %v ... %v", q.Weights[0], q.Weights[19])
	}
	for _, fn := range []func(){
		func() { Weighted("s", 10, 11, 0.9, sim.Second) },
		func() { Weighted("s", 10, 0, 0.9, sim.Second) },
		func() { Weighted("s", 10, 5, 0, sim.Second) },
		func() { Weighted("s", 10, 5, 1.5, sim.Second) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestPointBuilder(t *testing.T) {
	q := Point("s", 5, sim.Second)
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(q.Index) != 1 || q.Index[0] != 5 || q.Weights[0] != 1 {
		t.Fatalf("Point = %+v", q)
	}
}
