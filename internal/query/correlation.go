package query

import (
	"fmt"
	"math"
)

// Correlation <-> distance conversions (paper §III-B.2 / [28]).
//
// For z-normalized series x and y (zero mean, unit L2 norm), the Pearson
// correlation equals their inner product, and
//
//	||x - y||^2 = 2 - 2*corr(x, y)   =>   corr = 1 - d^2/2.
//
// A similarity query with radius epsilon therefore answers "find all
// streams correlating with the pattern at least 1 - epsilon^2/2" — the
// exact reduction the paper uses for correlation queries.

// CorrelationFromDistance converts a Euclidean distance between
// z-normalized series to the corresponding correlation coefficient.
func CorrelationFromDistance(d float64) float64 {
	return 1 - d*d/2
}

// RadiusForCorrelation converts a minimum correlation threshold in
// (-1, 1] to the similarity radius that captures exactly the streams
// meeting it.
func RadiusForCorrelation(minCorr float64) float64 {
	if minCorr <= -1 || minCorr > 1 {
		panic(fmt.Sprintf("query: correlation threshold %v outside (-1, 1]", minCorr))
	}
	return math.Sqrt(2 * (1 - minCorr))
}

// CorrelationBound returns the *upper* bound on this match's correlation
// implied by its feature-space lower-bound distance: the true distance is
// at least DistLB, so the true correlation is at most this value. (Being
// a candidate guarantees nothing more until the exact series are
// compared; the bound is what the index can assert without them.)
func (m Match) CorrelationBound() float64 {
	return CorrelationFromDistance(m.DistLB)
}
