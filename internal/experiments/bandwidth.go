package experiments

import (
	"fmt"

	"streamdex/internal/metrics"
	"streamdex/internal/workload"
)

// --- Ablation A8: update bandwidth — individual features vs. MBR batching --

// BandwidthRow reports the communication volume of one batching factor.
// Beta = 1 is the alternative §IV-G rejects: "if every new value generated
// by the stream caused updated summary information to be sent to a remote
// data center, this would incur high bandwidth consumption".
type BandwidthRow struct {
	Beta int
	// MBRMsgs is the per-node, per-second rate of MBR-related messages
	// (source + range + transit).
	MBRMsgs float64
	// MBRBytes is the per-node, per-second wire volume of those messages.
	MBRBytes float64
	// TotalBytes is the per-node, per-second wire volume of all traffic.
	TotalBytes float64
}

// Bandwidth measures the wire-volume effect of MBR batching by running the
// Table I workload with different batching factors and accounting actual
// serialized message sizes.
func Bandwidth(nodes int, betas []int, base workload.Config, workers int) ([]BandwidthRow, error) {
	type res struct {
		row BandwidthRow
		err error
	}
	jobs := make([]func() res, len(betas))
	for i, beta := range betas {
		beta := beta
		cfg := base
		cfg.Nodes = nodes
		cfg.Core.Beta = beta
		jobs[i] = func() res {
			rep, err := workload.RunOnce(cfg)
			if err != nil {
				return res{err: err}
			}
			secs := rep.Duration.Seconds()
			perNode := func(v int64) float64 { return float64(v) * 2 / secs / float64(rep.Nodes) }
			mbrBytes := perNode(rep.BytesByCategory[metrics.MBRSource] +
				rep.BytesByCategory[metrics.MBRRange] +
				rep.BytesByCategory[metrics.MBRTransit])
			mbrMsgs := rep.LoadByCategory[metrics.MBRSource] +
				rep.LoadByCategory[metrics.MBRRange] +
				rep.LoadByCategory[metrics.MBRTransit]
			return res{row: BandwidthRow{
				Beta:       beta,
				MBRMsgs:    mbrMsgs,
				MBRBytes:   mbrBytes,
				TotalBytes: rep.BandwidthPerNode,
			}}
		}
	}
	rows := make([]BandwidthRow, len(betas))
	for i, r := range Parallel(workers, jobs) {
		if r.err != nil {
			return nil, r.err
		}
		rows[i] = r.row
	}
	return rows, nil
}

// AblationBandwidth renders the A8 table.
func AblationBandwidth(nodes int, rows []BandwidthRow) *Table {
	t := NewTable(fmt.Sprintf("Ablation A8: update bandwidth vs. batching factor (%d nodes, serialized sizes)", nodes),
		"beta", "MBR-msgs/node/s", "MBR-bytes/node/s", "total-bytes/node/s")
	for _, r := range rows {
		t.AddRow(r.Beta, r.MBRMsgs, fmt.Sprintf("%.0f", r.MBRBytes), fmt.Sprintf("%.0f", r.TotalBytes))
	}
	t.AddNote("beta = 1 propagates every feature vector individually — the design §IV-G rejects for its")
	t.AddNote("bandwidth cost; batching sends two corner points per beta features, cutting volume ~beta-fold")
	return t
}
