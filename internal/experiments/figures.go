package experiments

import (
	"fmt"
	"math"

	"streamdex/internal/dsp"
	"streamdex/internal/metrics"
	"streamdex/internal/sim"
	"streamdex/internal/stream"
	"streamdex/internal/summary"
	"streamdex/internal/workload"
)

// PaperSizes are the system sizes of the paper's scalability experiments.
var PaperSizes = []int{50, 100, 200, 300, 500}

// OverheadSizes are the sizes of the message-overhead figures (Fig. 7).
var OverheadSizes = []int{50, 100, 200, 300}

// Sweep runs the Table I workload at every size (one simulation per size,
// in parallel across workers) and returns the per-size traffic reports.
func Sweep(sizes []int, base workload.Config, workers int) ([]*metrics.Report, error) {
	jobs := make([]func() sweepResult, len(sizes))
	for i, n := range sizes {
		cfg := base
		cfg.Nodes = n
		jobs[i] = func() sweepResult {
			rep, err := workload.RunOnce(cfg)
			return sweepResult{rep, err}
		}
	}
	results := Parallel(workers, jobs)
	out := make([]*metrics.Report, len(sizes))
	for i, r := range results {
		if r.err != nil {
			return nil, fmt.Errorf("experiments: size %d: %w", sizes[i], r.err)
		}
		out[i] = r.rep
	}
	return out, nil
}

type sweepResult struct {
	rep *metrics.Report
	err error
}

// --- Table I ---------------------------------------------------------------

// TableI renders the workload parameter table exactly as the paper lists
// it.
func TableI() *Table {
	cfg := workload.DefaultConfig(200)
	t := NewTable("Table I: parameters used in different experiments",
		"PMIN", "PMAX", "BSPAN", "QRATE", "QMIN", "QMAX", "NPER")
	t.AddRow(
		fmt.Sprintf("%.0fms", cfg.PMin.Millis()),
		fmt.Sprintf("%.0fms", cfg.PMax.Millis()),
		fmt.Sprintf("%.0fms", cfg.Core.MBRLifespan.Millis()),
		fmt.Sprintf("%dq/sec", int(1/cfg.QueryGap.Seconds())),
		fmt.Sprintf("%.0fsec", cfg.QMin.Seconds()),
		fmt.Sprintf("%.0fsec", cfg.QMax.Seconds()),
		fmt.Sprintf("%.0fsec", cfg.Core.PushPeriod.Seconds()),
	)
	return t
}

// --- Figure 3(b): Fourier locality ------------------------------------------

// LocalityResult quantifies the temporal correlation of consecutive
// feature vectors on a host-load trace.
type LocalityResult struct {
	// ConsecutiveMean is the mean feature-space distance between
	// summaries computed one time unit apart.
	ConsecutiveMean float64
	// RandomMean is the mean distance between random summary pairs of
	// the same trace.
	RandomMean float64
	// Ratio = ConsecutiveMean / RandomMean; << 1 is "Fourier locality".
	Ratio float64
	// Points holds sample feature vectors (1st coeff, Re 2nd, Im 2nd)
	// for scatter plotting.
	Points []summary.Feature
}

// FourierLocality reproduces the Fig. 3(b) analysis on a synthetic
// host-load trace: windows of size w summarized by dims feature
// coordinates; samples consecutive summaries over the trace.
func FourierLocality(w, dims, samples int, seed int64) LocalityResult {
	rng := sim.NewRand(seed)
	gen := stream.DefaultHostLoad(rng.Fork("hostload"))
	sdft := dsp.NewSlidingDFT(w, dims/2+2)
	var feats []summary.Feature
	for len(feats) < samples {
		sdft.Push(gen.Next())
		if !sdft.Full() {
			continue
		}
		feats = append(feats, summary.FromCoeffs(sdft.NormalizedCoeffs(dsp.ZNorm), dims, true))
	}
	var consec float64
	for i := 1; i < len(feats); i++ {
		consec += feats[i].Dist(feats[i-1])
	}
	consec /= float64(len(feats) - 1)
	var random float64
	pairRng := rng.Fork("pairs")
	pairs := len(feats)
	for i := 0; i < pairs; i++ {
		a := pairRng.Intn(len(feats))
		b := pairRng.Intn(len(feats))
		random += feats[a].Dist(feats[b])
	}
	random /= float64(pairs)
	ratio := math.Inf(1)
	if random > 0 {
		ratio = consec / random
	}
	step := len(feats) / 64
	if step < 1 {
		step = 1
	}
	var pts []summary.Feature
	for i := 0; i < len(feats); i += step {
		pts = append(pts, feats[i])
	}
	return LocalityResult{ConsecutiveMean: consec, RandomMean: random, Ratio: ratio, Points: pts}
}

// Fig3b renders the locality analysis.
func Fig3b(w, dims, samples int, seed int64) *Table {
	r := FourierLocality(w, dims, samples, seed)
	t := NewTable("Figure 3(b): locality of summaries computed on a host-load trace",
		"consecutive-dist", "random-pair-dist", "ratio")
	t.AddRow(fmt.Sprintf("%.5f", r.ConsecutiveMean), fmt.Sprintf("%.5f", r.RandomMean), fmt.Sprintf("%.4f", r.Ratio))
	t.AddNote("ratio << 1 confirms the strong temporal correlation (\"Fourier locality\") that MBR batching exploits")
	t.AddNote("%d sample feature points retained for scatter plotting (1st coeff, Re/Im of 2nd)", len(r.Points))
	return t
}

// --- Figure 6(a): average load per node --------------------------------------

// LoadRow is one point of Fig. 6(a): the seven load components at one
// system size, in messages per node per second.
type LoadRow struct {
	Nodes              int
	MBRs               float64 // a) MBRs originated by stream sources
	MBRsInternal       float64 // b) MBR key range spanning multiple nodes
	MBRsInTransit      float64 // c) MBR messages forwarded by intermediate nodes
	Queries            float64 // d) all query messages
	Responses          float64 // e) responses from the notifying node to the client
	ResponsesInternal  float64 // f) neighbor information exchange
	ResponsesInTransit float64 // g) responses forwarded by intermediate nodes
	Total              float64
}

// loadRow extracts a Fig. 6(a) row from a traffic report.
func loadRow(nodes int, rep *metrics.Report) LoadRow {
	lc := rep.LoadByCategory
	row := LoadRow{
		Nodes:              nodes,
		MBRs:               lc[metrics.MBRSource],
		MBRsInternal:       lc[metrics.MBRRange],
		MBRsInTransit:      lc[metrics.MBRTransit],
		Queries:            lc[metrics.QueryInitial] + lc[metrics.QueryRange] + lc[metrics.QueryTransit],
		Responses:          lc[metrics.ResponseClient],
		ResponsesInternal:  lc[metrics.NeighborNotify],
		ResponsesInTransit: lc[metrics.ResponseTransit],
	}
	row.Total = row.MBRs + row.MBRsInternal + row.MBRsInTransit + row.Queries +
		row.Responses + row.ResponsesInternal + row.ResponsesInTransit
	return row
}

// LoadVsNodes reproduces Fig. 6(a): the average per-node message load per
// second, broken into the figure's seven components, for each system size.
func LoadVsNodes(sizes []int, base workload.Config, workers int) ([]LoadRow, error) {
	reps, err := Sweep(sizes, base, workers)
	if err != nil {
		return nil, err
	}
	rows := make([]LoadRow, len(sizes))
	for i, rep := range reps {
		rows[i] = loadRow(sizes[i], rep)
	}
	return rows, nil
}

// Fig6a renders the load table.
func Fig6a(rows []LoadRow) *Table {
	t := NewTable("Figure 6(a): average load of messages on a node (per second)",
		"nodes", "MBRs", "MBRs-internal", "MBRs-transit", "queries",
		"responses", "responses-internal", "responses-transit", "total")
	for _, r := range rows {
		t.AddRow(r.Nodes, r.MBRs, r.MBRsInternal, r.MBRsInTransit, r.Queries,
			r.Responses, r.ResponsesInternal, r.ResponsesInTransit, r.Total)
	}
	t.AddNote("expected shape: only MBRs-transit grows with N (logarithmically, overlay routing);")
	t.AddNote("responses to clients decrease ~1/N; source MBR rate and neighbor exchange stay constant")
	return t
}

// --- Figure 6(b): load distribution -------------------------------------------

// Distribution is the Fig. 6(b) histogram of per-node load.
type Distribution struct {
	Nodes     int
	Bounds    []float64
	Counts    []int
	Quantiles []float64 // p50, p90, p99, max
}

// LoadDistribution reproduces Fig. 6(b) at one size (the paper uses 200
// nodes).
func LoadDistribution(nodes, buckets int, base workload.Config) (Distribution, error) {
	cfg := base
	cfg.Nodes = nodes
	rep, err := workload.RunOnce(cfg)
	if err != nil {
		return Distribution{}, err
	}
	bounds, counts := rep.LoadDistribution(buckets)
	qs := rep.LoadQuantiles(0.5, 0.9, 0.99, 1)
	return Distribution{Nodes: nodes, Bounds: bounds, Counts: counts, Quantiles: qs}, nil
}

// Fig6b renders the histogram.
func Fig6b(d Distribution) *Table {
	t := NewTable(fmt.Sprintf("Figure 6(b): distribution of load across %d nodes", d.Nodes),
		"load<=msgs/s", "nodes")
	for i := range d.Bounds {
		t.AddRow(fmt.Sprintf("%.2f", d.Bounds[i]), d.Counts[i])
	}
	t.AddNote("p50=%.2f p90=%.2f p99=%.2f max=%.2f — not heavy-tailed: the load is distributed evenly",
		d.Quantiles[0], d.Quantiles[1], d.Quantiles[2], d.Quantiles[3])
	return t
}

// --- Figure 7: message overhead per input event -------------------------------

// OverheadRow is one point of Fig. 7: extra messages the system sends per
// input event of the relevant type.
type OverheadRow struct {
	Nodes             int
	MBRMessages       float64 // MBR range continuation per MBR event
	MBRInTransit      float64 // MBR transit per MBR event
	QueryMessages     float64 // query range continuation per query event
	QueryInTransit    float64 // query transit per query event
	ResponseMessages  float64 // neighbor similarity exchange per response event
	ResponseInTransit float64 // response transit per response event
}

func overheadRow(nodes int, rep *metrics.Report) OverheadRow {
	return OverheadRow{
		Nodes:             nodes,
		MBRMessages:       rep.Overhead(metrics.MBRRange, metrics.EventMBR),
		MBRInTransit:      rep.Overhead(metrics.MBRTransit, metrics.EventMBR),
		QueryMessages:     rep.Overhead(metrics.QueryRange, metrics.EventQuery),
		QueryInTransit:    rep.Overhead(metrics.QueryTransit, metrics.EventQuery),
		ResponseMessages:  rep.Overhead(metrics.NeighborNotify, metrics.EventResponse),
		ResponseInTransit: rep.Overhead(metrics.ResponseTransit, metrics.EventResponse),
	}
}

// Overhead reproduces Fig. 7 at the given radius (0.1 for 7(a), 0.2 for
// 7(b)).
func Overhead(sizes []int, base workload.Config, radius float64, workers int) ([]OverheadRow, error) {
	cfg := base
	cfg.Radius = radius
	reps, err := Sweep(sizes, cfg, workers)
	if err != nil {
		return nil, err
	}
	rows := make([]OverheadRow, len(sizes))
	for i, rep := range reps {
		rows[i] = overheadRow(sizes[i], rep)
	}
	return rows, nil
}

// Fig7 renders an overhead table.
func Fig7(label string, radius float64, rows []OverheadRow) *Table {
	t := NewTable(fmt.Sprintf("Figure 7(%s): message overhead, query radius=%.1f", label, radius),
		"nodes", "MBR-msgs", "MBR-in-transit", "query-msgs", "query-in-transit",
		"response-msgs", "response-in-transit")
	for _, r := range rows {
		t.AddRow(r.Nodes, r.MBRMessages, r.MBRInTransit, r.QueryMessages, r.QueryInTransit,
			r.ResponseMessages, r.ResponseInTransit)
	}
	t.AddNote("expected shape: query-msgs (range coverage) grows linearly with N and ~doubles from r=0.1 to r=0.2;")
	t.AddNote("transit components grow O(log N); all others stay near-constant")
	return t
}

// --- Figure 8: hops per message ------------------------------------------------

// HopsRow is one point of Fig. 8: the average number of hops a message of
// each class traverses before being processed.
type HopsRow struct {
	Nodes         int
	MBR           float64
	MBRInternal   float64
	Query         float64
	QueryInternal float64
	Response      float64
}

func hopsRow(nodes int, rep *metrics.Report) HopsRow {
	return HopsRow{
		Nodes:         nodes,
		MBR:           rep.HopMean[metrics.HopMBR],
		MBRInternal:   rep.HopMean[metrics.HopMBRInternal],
		Query:         rep.HopMean[metrics.HopQuery],
		QueryInternal: rep.HopMean[metrics.HopQueryInternal],
		Response:      rep.HopMean[metrics.HopResponse],
	}
}

// Hops reproduces Fig. 8 across system sizes.
func Hops(sizes []int, base workload.Config, workers int) ([]HopsRow, error) {
	reps, err := Sweep(sizes, base, workers)
	if err != nil {
		return nil, err
	}
	rows := make([]HopsRow, len(sizes))
	for i, rep := range reps {
		rows[i] = hopsRow(sizes[i], rep)
	}
	return rows, nil
}

// Fig8 renders the hop table.
func Fig8(rows []HopsRow) *Table {
	t := NewTable("Figure 8: average number of hops traversed by a request",
		"nodes", "MBR", "internal-MBR", "query", "internal-query", "response")
	for _, r := range rows {
		t.AddRow(r.Nodes, r.MBR, r.MBRInternal, r.Query, r.QueryInternal, r.Response)
	}
	t.AddNote("expected shape: routed classes grow O(log N); internal-query grows linearly (sequential range")
	t.AddNote("coverage) and dominates — the motivation for the efficient range routing of §VI-B")
	return t
}

// FullEvaluation runs one sweep and extracts Fig. 6(a), Fig. 7 (at the
// sweep's radius) and Fig. 8 from the same reports — the cheapest way to
// regenerate the whole evaluation.
func FullEvaluation(sizes []int, base workload.Config, workers int) ([]LoadRow, []OverheadRow, []HopsRow, error) {
	reps, err := Sweep(sizes, base, workers)
	if err != nil {
		return nil, nil, nil, err
	}
	loads := make([]LoadRow, len(sizes))
	overheads := make([]OverheadRow, len(sizes))
	hops := make([]HopsRow, len(sizes))
	for i, rep := range reps {
		loads[i] = loadRow(sizes[i], rep)
		overheads[i] = overheadRow(sizes[i], rep)
		hops[i] = hopsRow(sizes[i], rep)
	}
	return loads, overheads, hops, nil
}
