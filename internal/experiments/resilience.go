package experiments

import (
	"fmt"

	"streamdex/internal/metrics"
	"streamdex/internal/sim"
	"streamdex/internal/workload"
)

// --- Ablation A6: resilience under node failures ----------------------------

// ResilienceRow reports one failure scenario.
type ResilienceRow struct {
	Nodes     int
	Failed    int
	Dropped   int64   // messages lost during detection + repair
	Responses float64 // response pushes per second during the measured interval
	MBRs      float64 // MBR events per second (index keeps being fed)
}

// Resilience quantifies the paper's adaptivity claim: "the underlying
// communication stratum accommodates dynamic changes such as data center
// failures ... without the need to temporarily block the normal system
// operation". It runs the Table I workload, crashes `fail` random nodes
// shortly after warm-up, and measures whether summaries and responses keep
// flowing while the ring self-repairs.
func Resilience(nodes int, failCounts []int, base workload.Config, workers int) ([]ResilienceRow, error) {
	type res struct {
		row ResilienceRow
		err error
	}
	jobs := make([]func() res, len(failCounts))
	for i, fc := range failCounts {
		fc := fc
		cfg := base
		cfg.Nodes = nodes
		if fc > 0 {
			cfg.FailAt = 5 * sim.Second
			cfg.FailCount = fc
		}
		jobs[i] = func() res {
			r, err := workload.Build(cfg)
			if err != nil {
				return res{err: err}
			}
			rep := r.Execute()
			secs := rep.Duration.Seconds()
			return res{row: ResilienceRow{
				Nodes:     nodes,
				Failed:    len(r.Failed),
				Dropped:   r.Net.Dropped(),
				Responses: float64(rep.Events[metrics.EventResponse]) / secs,
				MBRs:      float64(rep.Events[metrics.EventMBR]) / secs,
			}}
		}
	}
	rows := make([]ResilienceRow, len(failCounts))
	for i, r := range Parallel(workers, jobs) {
		if r.err != nil {
			return nil, r.err
		}
		rows[i] = r.row
	}
	return rows, nil
}

// AblationResilience renders the A6 table.
func AblationResilience(rows []ResilienceRow) *Table {
	t := NewTable(fmt.Sprintf("Ablation A6: service continuity under node failures (%d nodes)", rows[0].Nodes),
		"failed-nodes", "dropped-msgs", "responses/s", "MBRs/s")
	for _, r := range rows {
		t.AddRow(r.Failed, fmt.Sprint(r.Dropped), r.Responses, r.MBRs)
	}
	t.AddNote("failures cost a bounded burst of dropped messages while stabilization repairs the ring;")
	t.AddNote("summary publication and query responses continue throughout (soft state regenerates)")
	return t
}

// --- Ablation A7: routing-substrate comparison -------------------------------

// SubstrateRow compares the middleware on two routing substrates.
type SubstrateRow struct {
	Nodes     int
	Substrate string
	MBRHops   float64
	QueryHops float64
	TotalLoad float64
}

// Substrates runs the identical Table I workload on the Chord substrate
// and the Pastry-style prefix-routing substrate — the paper's portability
// claim, measured: delivery outcomes agree (asserted by the core tests)
// while routing costs differ with each protocol's stride.
func Substrates(sizes []int, base workload.Config, workers int) ([]SubstrateRow, error) {
	type res struct {
		row SubstrateRow
		err error
	}
	var jobs []func() res
	for _, n := range sizes {
		for _, sub := range []string{"chord", "pastry"} {
			n, sub := n, sub
			cfg := base
			cfg.Nodes = n
			cfg.Substrate = sub
			jobs = append(jobs, func() res {
				rep, err := workload.RunOnce(cfg)
				if err != nil {
					return res{err: err}
				}
				return res{row: SubstrateRow{
					Nodes:     n,
					Substrate: sub,
					MBRHops:   rep.HopMean[metrics.HopMBR],
					QueryHops: rep.HopMean[metrics.HopQuery],
					TotalLoad: rep.TotalLoad,
				}}
			})
		}
	}
	var rows []SubstrateRow
	for _, r := range Parallel(workers, jobs) {
		if r.err != nil {
			return nil, r.err
		}
		rows = append(rows, r.row)
	}
	return rows, nil
}

// AblationSubstrates renders the A7 table.
func AblationSubstrates(rows []SubstrateRow) *Table {
	t := NewTable("Ablation A7: Chord vs. Pastry-style prefix routing under the same middleware",
		"nodes", "substrate", "MBR-hops", "query-hops", "total-load/s")
	for _, r := range rows {
		t.AddRow(r.Nodes, r.Substrate, r.MBRHops, r.QueryHops, r.TotalLoad)
	}
	t.AddNote("identical query semantics on both substrates (portability, §II-B); prefix routing takes")
	t.AddNote("O(log_16 N) strides vs. Chord's O(log_2 N) fingers, so routed hops and transit load drop")
	return t
}
