// Package experiments regenerates every table and figure of the paper's
// evaluation (§V) plus the ablations of DESIGN.md: it builds the workloads,
// runs the simulations (in parallel across parameter sweeps), and renders
// the same rows and series the paper reports.
package experiments

import (
	"fmt"
	"strings"
)

// Table is a simple aligned ASCII table used by every experiment's output.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
	Notes   []string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; values are formatted with %v, floats with 3
// decimals.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// AddNote appends a free-form footnote line.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "# %s\n", n)
	}
	return b.String()
}
