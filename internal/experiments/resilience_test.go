package experiments

import (
	"strings"
	"testing"
)

func TestResilienceAblation(t *testing.T) {
	rows, err := Resilience(20, []int{0, 2, 4}, fastBase(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatal("row count")
	}
	clean, light, heavy := rows[0], rows[1], rows[2]
	if clean.Failed != 0 || light.Failed != 2 || heavy.Failed > 4 || heavy.Failed < 3 {
		t.Fatalf("failure counts off: %+v", rows)
	}
	if clean.Dropped != 0 {
		t.Fatalf("clean run dropped %d messages", clean.Dropped)
	}
	if light.Dropped == 0 {
		t.Fatal("failures caused no drops (suspicious: nothing was in flight?)")
	}
	// Service continues: responses and MBRs keep flowing after failures,
	// within 2x of the clean run's rate per surviving node.
	if heavy.Responses <= 0 || heavy.MBRs <= 0 {
		t.Fatalf("service stopped after failures: %+v", heavy)
	}
	survivingFrac := float64(20-heavy.Failed) / 20
	if heavy.MBRs < 0.5*clean.MBRs*survivingFrac {
		t.Fatalf("MBR rate collapsed: %.1f vs clean %.1f", heavy.MBRs, clean.MBRs)
	}
	if !strings.Contains(AblationResilience(rows).String(), "Ablation A6") {
		t.Fatal("A6 table missing title")
	}
}

func TestSubstrateAblation(t *testing.T) {
	rows, err := Substrates([]int{32}, fastBase(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatal("row count")
	}
	byName := map[string]SubstrateRow{}
	for _, r := range rows {
		byName[r.Substrate] = r
	}
	ch, pa := byName["chord"], byName["pastry"]
	if ch.MBRHops <= 0 || pa.MBRHops <= 0 {
		t.Fatalf("missing hop data: %+v", rows)
	}
	// Prefix routing takes wider strides: fewer routed hops than Chord.
	if pa.MBRHops >= ch.MBRHops {
		t.Fatalf("pastry MBR hops %.2f not below chord %.2f", pa.MBRHops, ch.MBRHops)
	}
	if !strings.Contains(AblationSubstrates(rows).String(), "Ablation A7") {
		t.Fatal("A7 table missing title")
	}
}

func TestBandwidthAblation(t *testing.T) {
	rows, err := Bandwidth(24, []int{1, 5, 25}, fastBase(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatal("row count")
	}
	// Batching must cut both message rate and byte volume monotonically.
	for i := 1; i < len(rows); i++ {
		if rows[i].MBRMsgs >= rows[i-1].MBRMsgs {
			t.Fatalf("messages not decreasing with beta: %+v", rows)
		}
		if rows[i].MBRBytes >= rows[i-1].MBRBytes {
			t.Fatalf("bytes not decreasing with beta: %+v", rows)
		}
	}
	// The saving is substantial: beta=25 uses far less than half the
	// bandwidth of individual propagation.
	if rows[2].MBRBytes > 0.5*rows[0].MBRBytes {
		t.Fatalf("beta=25 bytes %.0f not well below beta=1 bytes %.0f", rows[2].MBRBytes, rows[0].MBRBytes)
	}
	if rows[0].TotalBytes <= 0 {
		t.Fatal("no bandwidth recorded")
	}
	if !strings.Contains(AblationBandwidth(24, rows).String(), "Ablation A8") {
		t.Fatal("A8 table missing title")
	}
}

func TestTreeHopsAblation(t *testing.T) {
	rows, err := TreeHops([]int{16, 64}, fastBase(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatal("row count")
	}
	small, big := rows[0], rows[1]
	// Sequential internal hops grow with N; tree hops must grow much
	// slower (the linear-vs-logarithmic contrast of §VI-B) and sit below
	// sequential at the larger size.
	if big.SeqQueryInternal <= small.SeqQueryInternal {
		t.Fatalf("sequential internal hops did not grow: %+v", rows)
	}
	if big.TreeQueryInternal >= big.SeqQueryInternal {
		t.Fatalf("tree internal hops %.2f not below sequential %.2f",
			big.TreeQueryInternal, big.SeqQueryInternal)
	}
	seqGrowth := big.SeqQueryInternal - small.SeqQueryInternal
	treeGrowth := big.TreeQueryInternal - small.TreeQueryInternal
	if treeGrowth > 0.6*seqGrowth {
		t.Fatalf("tree hop growth %.2f not well below sequential growth %.2f", treeGrowth, seqGrowth)
	}
	if !strings.Contains(AblationTreeHops(rows).String(), "Ablation A9") {
		t.Fatal("A9 table missing title")
	}
}
