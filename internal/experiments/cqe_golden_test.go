package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"streamdex/internal/sim"
)

// cqeLines runs the scaled-down operator workload and formats every field
// at full precision, mirroring figureLines: any bitwise divergence in the
// operator data plane (sketch publication, subscription matching, top-k
// reporting) shows up as a golden diff.
func cqeLines(t *testing.T, workers int) []string {
	t.Helper()
	cfg := goldenConfig()
	cfg.Ops = true
	cfg.OpsGap = 1 * sim.Second
	rows, err := CQELoad([]int{12, 20}, cfg, workers)
	if err != nil {
		t.Fatalf("CQELoad: %v", err)
	}
	var lines []string
	for _, r := range rows {
		lines = append(lines, fmt.Sprintf(
			"cqe n=%d sketch=%.17g sub=%.17g topk=%.17g sketchMsgs=%d subMsgs=%d topkMsgs=%d",
			r.Nodes, r.Sketch, r.Subscription, r.TopK,
			r.SketchMsgs, r.SubMsgs, r.TopKMsgs))
	}
	return lines
}

// TestCQERowsGolden pins the operator-workload figure rows for a fixed
// seed, the continuous-query analogue of TestFigureRowsGolden. The golden
// also proves the operators generate traffic at all: a row of zeros would
// mean registrations never reach covering nodes.
func TestCQERowsGolden(t *testing.T) {
	lines := cqeLines(t, 1)
	for _, l := range lines {
		if strings.Contains(l, "sketchMsgs=0") || strings.Contains(l, "subMsgs=0") ||
			strings.Contains(l, "topkMsgs=0") {
			t.Fatalf("operator class generated no traffic: %s", l)
		}
	}
	got := strings.Join(lines, "\n") + "\n"
	path := filepath.Join("testdata", "cqe_rows.golden")
	if *updateGolden {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d lines)", path, strings.Count(got, "\n"))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Fatalf("cqe rows diverged from golden:\n%s", diffLines(string(want), got))
	}
}

// TestCQESerialParallelDeterminism: sweeping the operator workload across
// the worker pool must not change any row.
func TestCQESerialParallelDeterminism(t *testing.T) {
	serial := cqeLines(t, 1)
	parallel := cqeLines(t, 4)
	if len(serial) != len(parallel) {
		t.Fatalf("row counts differ: serial=%d parallel=%d", len(serial), len(parallel))
	}
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Errorf("row %d differs:\nserial:   %s\nparallel: %s", i, serial[i], parallel[i])
		}
	}
}
