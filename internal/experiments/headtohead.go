package experiments

// Head-to-head routing-machine comparison: the same simulated substrate,
// the same identifier placement, the same workload — once per registered
// ring machine. Where ablation A7 (Substrates) compares the middleware on
// Chord vs. the Pastry-style strawman, this experiment compares the two
// registered control-plane machines (Chord's finger routing vs. Koorde's
// de Bruijn walk) on the three axes the substrate-neutral refactor is
// supposed to leave machine-specific:
//
//   - lookup cost: control-plane request forwards per resolved
//     FindSuccessor on a warm ring (maintenance off, so every observed
//     KindRing transmission belongs to a lookup),
//   - maintenance bandwidth: KindRing bytes per node per second with the
//     periodic stabilize/repair tasks running,
//   - range-multicast dissemination: transmissions and virtual time to
//     the last delivery of a tree-mode SendRange, whose fan-out set is
//     the machine's own routing entries (fingers vs. de Bruijn chain).
//
// Koorde's claim (Kaashoek & Karger, IPTPS 2003) is fewer lookup hops per
// routing-table entry: degree-16 de Bruijn links resolve in ~log16(N)
// digit injections against Chord's ~½log2(N) finger strides. The BENCH_7
// gate in scripts/ci.sh holds this experiment to that claim at the
// paper's largest size.

import (
	"fmt"
	"sort"

	"streamdex/internal/chord"
	"streamdex/internal/dht"
	// Register the Koorde machine so Config.Machine can name it.
	_ "streamdex/internal/koorde"
	"streamdex/internal/overlay"
	"streamdex/internal/sim"
)

// HeadToHeadMachines are the ring machines the head-to-head runs, in
// report order. Chord first: it is the baseline the gate compares against.
var HeadToHeadMachines = []string{"chord", "koorde"}

// HeadToHeadRow is one (size, machine) measurement.
type HeadToHeadRow struct {
	Nodes   int
	Machine string
	// Lookups is the number of FindSuccessor calls measured; every one
	// resolved to the membership oracle's owner (enforced, not sampled).
	Lookups int
	// LookupMeanHops / LookupP99Hops count control-plane request forwards
	// per lookup (the response transmission is excluded).
	LookupMeanHops float64
	LookupP99Hops  float64
	// MaintBytesPerNodeSec is KindRing bytes per node per virtual second
	// with periodic maintenance running on a converged ring.
	MaintBytesPerNodeSec float64
	// MulticastMsgs / MulticastLastMs are per tree-mode range multicast
	// over one eighth of the keyspace: transmissions used, and virtual
	// milliseconds from send to the last delivery.
	MulticastMsgs   float64
	MulticastLastMs float64
	// Longlinks is the mean long-distance routing entries per node
	// (fingers on Chord, de Bruijn chain on Koorde) — the table-size side
	// of the hops-per-state trade.
	Longlinks float64
	// ChurnRepairBytesPerNodeSec is KindRing bytes per surviving node per
	// virtual second while the ring reconverges after one tenth of the
	// nodes crash simultaneously — the repair-traffic side of the
	// piggybacked pointer-repair trade.
	ChurnRepairBytesPerNodeSec float64
	// ChurnLookupOK is the fraction of lookups issued during that
	// convergence window that resolved to the live membership oracle's
	// owner within their step of the window.
	ChurnLookupOK float64
}

// ringObserver counts control-plane traffic and data-plane deliveries.
type ringObserver struct {
	now       func() sim.Time
	probeKind dht.Kind

	ringMsgs  int64
	ringBytes int64

	probeMsgs int64
	delivered int64
	lastAt    sim.Time
}

func (o *ringObserver) OnTransmit(from, to dht.Key, msg *dht.Message) {
	switch msg.Kind {
	case overlay.KindRing:
		o.ringMsgs++
		o.ringBytes += int64(msg.Bytes)
	case o.probeKind:
		o.probeMsgs++
	}
}

func (o *ringObserver) OnDeliver(at dht.Key, msg *dht.Message) {
	if msg.Kind == o.probeKind {
		o.delivered++
		o.lastAt = o.now()
	}
}

// headToHeadProbe tags the multicast probe messages; any kind unused by
// the middleware works, the simulator routes on the envelope alone.
const headToHeadProbe dht.Kind = 240

// headToHeadLookups is the default per-row lookup count.
const headToHeadLookups = 512

// HeadToHead measures every machine in HeadToHeadMachines at every size,
// all rows deterministic for a fixed seed. lookups <= 0 selects the
// default count.
func HeadToHead(sizes []int, seed int64, lookups, workers int) ([]HeadToHeadRow, error) {
	if lookups <= 0 {
		lookups = headToHeadLookups
	}
	type res struct {
		row HeadToHeadRow
		err error
	}
	var jobs []func() res
	for _, n := range sizes {
		for _, machine := range HeadToHeadMachines {
			n, machine := n, machine
			jobs = append(jobs, func() res {
				row, err := headToHeadOne(n, machine, seed, lookups)
				return res{row: row, err: err}
			})
		}
	}
	var rows []HeadToHeadRow
	for _, r := range Parallel(workers, jobs) {
		if r.err != nil {
			return nil, r.err
		}
		rows = append(rows, r.row)
	}
	return rows, nil
}

// headToHeadOne runs the three phases for one (size, machine) pair. Each
// phase builds its own engine so measurements cannot bleed into each
// other: lookups and multicasts run with maintenance off (every control
// transmission is attributable), bandwidth runs with maintenance on.
func headToHeadOne(n int, machine string, seed int64, lookups int) (HeadToHeadRow, error) {
	space := dht.NewSpace(32)
	ids := chord.SortKeys(chord.UniformIDs(space, n))
	row := HeadToHeadRow{Nodes: n, Machine: machine, Lookups: lookups}

	quiet := chord.Config{Space: space, HopDelay: 50 * sim.Millisecond, SuccListLen: 8, Machine: machine}

	// Phase 1: lookup hops on a warm, quiescent ring. Each lookup runs to
	// completion (the engine drains between calls), so the transmission
	// delta is exactly that lookup's forwards plus its one response.
	{
		eng := sim.NewEngine()
		net := chord.New(eng, quiet)
		obs := &ringObserver{now: eng.Now, probeKind: headToHeadProbe}
		net.SetObserver(obs)
		net.BuildStable(ids, nil)

		var links int64
		for _, id := range ids {
			links += int64(net.Node(id).Machine().LonglinkCount())
		}
		row.Longlinks = float64(links) / float64(n)

		rng := uint64(seed)*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d
		next := func() uint64 {
			rng = rng*6364136223846793005 + 1442695040888963407
			return rng >> 11
		}
		hops := make([]float64, 0, lookups)
		for i := 0; i < lookups; i++ {
			origin := ids[next()%uint64(n)]
			target := space.Wrap(dht.Key(next()))
			before := obs.ringMsgs
			resolved := false
			var got dht.Key
			net.Node(origin).Machine().FindSuccessor(target, func(s overlay.Ref) {
				resolved = true
				got = s.ID
			})
			eng.Run()
			if !resolved {
				return row, fmt.Errorf("%s/%d nodes: lookup %d from %d for key %d did not resolve", machine, n, i, origin, target)
			}
			want, _ := net.OracleSuccessor(target)
			if got != want {
				return row, fmt.Errorf("%s/%d nodes: lookup for key %d resolved to %d, oracle owner is %d", machine, n, target, got, want)
			}
			// The delta includes the single response transmission — except
			// when the origin covered the key itself and answered locally.
			delta := obs.ringMsgs - before
			if delta > 0 {
				delta--
			}
			hops = append(hops, float64(delta))
		}
		row.LookupMeanHops = mean(hops)
		row.LookupP99Hops = percentile(hops, 0.99)
	}

	// Phase 2: maintenance bandwidth with the periodic tasks running.
	{
		cfg := quiet
		cfg.StabilizeEvery = 500 * sim.Millisecond
		cfg.FixFingersEvery = 250 * sim.Millisecond
		eng := sim.NewEngine()
		net := chord.New(eng, cfg)
		obs := &ringObserver{now: eng.Now, probeKind: headToHeadProbe}
		net.SetObserver(obs)
		net.BuildStable(ids, nil)

		eng.RunUntil(5 * sim.Second) // settle the staggered tickers
		base := obs.ringBytes
		const window = 20 * sim.Second
		eng.RunFor(window)
		row.MaintBytesPerNodeSec = float64(obs.ringBytes-base) / float64(n) / (float64(window) / float64(sim.Second))
	}

	// Phase 3: tree-mode range multicast over one eighth of the keyspace,
	// averaged over several origins.
	{
		eng := sim.NewEngine()
		net := chord.New(eng, quiet)
		obs := &ringObserver{now: eng.Now, probeKind: headToHeadProbe}
		net.SetObserver(obs)
		// Every node keeps the dissemination going, as the middleware's
		// Deliver does; the tree fan-out set is the machine's own routing
		// entries via the substrate's RangeDelegator.
		apps := make([]dht.App, len(ids))
		for i := range apps {
			apps[i] = dht.AppFunc(func(at dht.Key, msg *dht.Message) {
				dht.ContinueRange(net, at, msg)
			})
		}
		net.BuildStable(ids, apps)

		const casts = 8
		span := space.Size()/8 - 1
		var msgs, lastMs float64
		for c := 0; c < casts; c++ {
			origin := ids[(c*len(ids))/casts]
			lo := space.Add(origin, 1)
			hi := space.Add(lo, span)
			preMsgs, preDeliv := obs.probeMsgs, obs.delivered
			t0 := eng.Now()
			dht.SendRange(net, origin, lo, hi, &dht.Message{Kind: headToHeadProbe}, dht.RangeTree)
			eng.Run()
			if obs.delivered == preDeliv {
				return row, fmt.Errorf("%s/%d nodes: multicast from %d delivered nothing", machine, n, origin)
			}
			msgs += float64(obs.probeMsgs - preMsgs)
			lastMs += float64(obs.lastAt-t0) / float64(sim.Millisecond)
		}
		row.MulticastMsgs = msgs / casts
		row.MulticastLastMs = lastMs / casts
	}

	// Phase 4: scripted churn. One tenth of the ring crashes at once on a
	// converged, maintained ring; the convergence window then measures the
	// machine's repair traffic and its lookup availability while pointers
	// heal. Lookups interleave with the repair tasks in virtual time, so a
	// machine that floods repairs or one that leaves its chain stale both
	// show up — the first in bytes, the second in failed lookups.
	{
		cfg := quiet
		cfg.StabilizeEvery = 500 * sim.Millisecond
		cfg.FixFingersEvery = 250 * sim.Millisecond
		eng := sim.NewEngine()
		net := chord.New(eng, cfg)
		obs := &ringObserver{now: eng.Now, probeKind: headToHeadProbe}
		net.SetObserver(obs)
		net.BuildStable(ids, nil)
		eng.RunUntil(5 * sim.Second) // settle the staggered tickers

		alive := make([]dht.Key, 0, len(ids))
		for i, id := range ids {
			if i%10 == 5 {
				net.Fail(id)
			} else {
				alive = append(alive, id)
			}
		}
		base := obs.ringBytes
		rng := uint64(seed)*0x9e3779b97f4a7c15 + 0x7f4a7c159e3779b9
		next := func() uint64 {
			rng = rng*6364136223846793005 + 1442695040888963407
			return rng >> 11
		}
		const (
			churnWindow  = 20 * sim.Second
			churnLookups = 32
		)
		ok := 0
		for i := 0; i < churnLookups; i++ {
			origin := alive[next()%uint64(len(alive))]
			target := space.Wrap(dht.Key(next()))
			resolved := false
			var got dht.Key
			net.Node(origin).Machine().FindSuccessor(target, func(s overlay.Ref) {
				resolved = true
				got = s.ID
			})
			// Let the lookup race the repair traffic for its slice of the
			// window; 625 ms of virtual time is a dozen 50 ms hops, so a
			// lookup that cannot finish is an availability failure too.
			eng.RunFor(churnWindow / churnLookups)
			want, _ := net.OracleSuccessor(target)
			if resolved && got == want {
				ok++
			}
		}
		secs := float64(churnWindow) / float64(sim.Second)
		row.ChurnRepairBytesPerNodeSec = float64(obs.ringBytes-base) / float64(len(alive)) / secs
		row.ChurnLookupOK = float64(ok) / churnLookups
	}
	return row, nil
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// percentile returns the p-quantile (0 < p <= 1) by nearest-rank on a
// copy of xs.
func percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	i := int(float64(len(sorted))*p+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// HeadToHeadTable renders the comparison for the -exp text mode.
func HeadToHeadTable(rows []HeadToHeadRow) *Table {
	t := NewTable("Routing machines head to head: Chord fingers vs. Koorde de Bruijn walk",
		"nodes", "machine", "lookup-hops", "p99", "longlinks", "maint-B/node/s", "mcast-msgs", "mcast-last-ms",
		"churn-B/node/s", "churn-lookup-ok")
	for _, r := range rows {
		t.AddRow(r.Nodes, r.Machine, r.LookupMeanHops, r.LookupP99Hops, r.Longlinks,
			r.MaintBytesPerNodeSec, r.MulticastMsgs, r.MulticastLastMs,
			r.ChurnRepairBytesPerNodeSec, r.ChurnLookupOK)
	}
	t.AddNote("lookup-hops counts control-plane request forwards per resolved FindSuccessor on a warm ring;")
	t.AddNote("Koorde resolves in ~log16(N) digit injections vs. Chord's ~log2(N)/2 finger strides, at")
	t.AddNote("similar long-link state; both machines run the identical stabilize/notify ring substrate.")
	t.AddNote("churn columns: repair bytes and lookup availability while the ring reconverges after a")
	t.AddNote("simultaneous crash of one tenth of the nodes")
	return t
}
