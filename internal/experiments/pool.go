package experiments

import (
	"runtime"
	"sync"
)

// Parallel executes jobs concurrently on up to workers goroutines (default
// GOMAXPROCS when workers <= 0) and returns their results in job order.
// Each simulation is single-threaded and deterministic; sweeps over system
// sizes or parameters are embarrassingly parallel, so this is where the
// harness uses the machine's cores.
func Parallel[T any](workers int, jobs []func() T) []T {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	results := make([]T, len(jobs))
	if workers <= 1 {
		for i, job := range jobs {
			results[i] = job()
		}
		return results
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				results[i] = jobs[i]()
			}
		}()
	}
	for i := range jobs {
		next <- i
	}
	close(next)
	wg.Wait()
	return results
}
