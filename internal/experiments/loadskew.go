package experiments

// The load-skew experiment: the Table I workload with Zipf(1.1) query
// targeting — a handful of hot coordinates receive most of the queries, so
// the nodes covering their key ranges melt while the rest of the ring
// idles. The experiment contrasts the plain system with the balanced one
// (virtual nodes + covering-range replication + power-of-two-choices read
// fan-out) at each system size and reports the per-physical-node load
// spread: mean, p99, max, the Gini coefficient, and the headline p99/mean
// ratio before vs after.

import (
	"fmt"
	"sort"

	"streamdex/internal/metrics"
	"streamdex/internal/workload"
)

// DefaultSkew is the Zipf exponent of the worst-case workload (s ≈ 1.1,
// the slope of measured web-object popularity curves).
const DefaultSkew = 1.1

// Balancing knobs used by the "on" arm of the experiment.
const (
	// SkewVNodes is the virtual-node count per physical node.
	SkewVNodes = 4
	// SkewReplicas is the covering-range replication factor.
	SkewReplicas = 3
)

// SkewRow is the per-node load spread at one system size and one
// machinery setting.
type SkewRow struct {
	Nodes    int
	VNodes   int
	Replicas int
	// Mean, P99 and Max are per-physical-node message rates (msgs/s);
	// with virtual nodes a physical node's rate is the sum over its ring
	// positions.
	Mean float64
	P99  float64
	Max  float64
	// Gini is the Gini coefficient of the physical-node load vector
	// (0 = perfectly even, →1 = one node carries everything).
	Gini float64
	// Ratio is P99/Mean — the headline imbalance number.
	Ratio float64
}

// physLoads folds the per-ring-id load report onto physical nodes using
// the run's id→owner map and returns one rate per physical node.
func physLoads(run *workload.Run, rep *metrics.Report) []float64 {
	loads := make([]float64, run.Cfg.Nodes)
	for id, l := range rep.NodeLoad {
		if phys, ok := run.PhysOf[id]; ok {
			loads[phys] += l
		}
	}
	return loads
}

// skewStats summarizes a physical-node load vector.
func skewStats(loads []float64) (mean, p99, max float64) {
	if len(loads) == 0 {
		return 0, 0, 0
	}
	sorted := append([]float64(nil), loads...)
	sort.Float64s(sorted)
	sum := 0.0
	for _, l := range sorted {
		sum += l
	}
	mean = sum / float64(len(sorted))
	p99 = sorted[int(0.99*float64(len(sorted)-1))]
	max = sorted[len(sorted)-1]
	return mean, p99, max
}

// skewRun executes the Zipf workload once and reduces it to a SkewRow.
func skewRun(cfg workload.Config) (SkewRow, error) {
	run, err := workload.Build(cfg)
	if err != nil {
		return SkewRow{}, err
	}
	rep := run.Execute()
	loads := physLoads(run, rep)
	mean, p99, max := skewStats(loads)
	row := SkewRow{
		Nodes:    cfg.Nodes,
		VNodes:   cfg.VNodes,
		Replicas: cfg.Core.Replicas,
		Mean:     mean,
		P99:      p99,
		Max:      max,
		Gini:     metrics.Gini(loads),
	}
	if mean > 0 {
		row.Ratio = p99 / mean
	}
	return row, nil
}

// LoadSkew sweeps the Zipf(s) workload over the given sizes, once with the
// balancing machinery off (plain ring) and once with it on (SkewVNodes
// virtual nodes per physical node, SkewReplicas-way covering-range
// replication with read fan-out). The base configuration's Skew is forced;
// everything else is taken as given. Rows come back interleaved: for each
// size, the "off" row first, then the "on" row.
func LoadSkew(sizes []int, base workload.Config, skew float64, workers int) ([]SkewRow, error) {
	type arm struct {
		size int
		on   bool
	}
	arms := make([]arm, 0, 2*len(sizes))
	for _, n := range sizes {
		arms = append(arms, arm{n, false}, arm{n, true})
	}
	jobs := make([]func() skewResult, len(arms))
	for i, a := range arms {
		cfg := base
		cfg.Nodes = a.size
		cfg.Skew = skew
		if a.on {
			cfg.VNodes = SkewVNodes
			cfg.Core.Replicas = SkewReplicas
		} else {
			cfg.VNodes = 0
			cfg.Core.Replicas = 0
		}
		jobs[i] = func() skewResult {
			row, err := skewRun(cfg)
			return skewResult{row, err}
		}
	}
	results := Parallel(workers, jobs)
	rows := make([]SkewRow, len(arms))
	for i, r := range results {
		if r.err != nil {
			return nil, fmt.Errorf("experiments: loadskew size %d: %w", arms[i].size, r.err)
		}
		rows[i] = r.row
	}
	return rows, nil
}

type skewResult struct {
	row SkewRow
	err error
}

// FigLoadSkew renders the load-skew table.
func FigLoadSkew(skew float64, rows []SkewRow) *Table {
	t := NewTable(fmt.Sprintf("Load skew: per-node load spread under Zipf(%.1f) query targeting", skew),
		"nodes", "vnodes", "replicas", "mean", "p99", "max", "gini", "p99/mean")
	for _, r := range rows {
		t.AddRow(r.Nodes, r.VNodes, r.Replicas, r.Mean, r.P99, r.Max, r.Gini, r.Ratio)
	}
	t.AddNote("rows alternate machinery off/on per size; the headline is the p99/mean drop at 500 nodes")
	t.AddNote("expected shape: plain ring p99/mean grows with N (hot ranges cover a shrinking node")
	t.AddNote("fraction); vnodes + %d-way replication with p2c reads holds p99 <= 2x mean", SkewReplicas)
	return t
}
