package experiments

import (
	"fmt"

	"streamdex/internal/adaptive"
	"streamdex/internal/baseline"
	"streamdex/internal/chord"
	"streamdex/internal/dht"
	"streamdex/internal/dsp"
	"streamdex/internal/hierarchy"
	"streamdex/internal/metrics"
	"streamdex/internal/sim"
	"streamdex/internal/stream"
	"streamdex/internal/summary"
	"streamdex/internal/workload"
)

// --- Ablation A1: sequential vs. bidirectional range multicast (§IV-C) -----

// MulticastRow compares the two range-multicast strategies for one range
// width.
type MulticastRow struct {
	RangeNodes int
	SeqDelay   sim.Time
	BidiDelay  sim.Time
	TreeDelay  sim.Time
	SeqMsgs    int
	BidiMsgs   int
	TreeMsgs   int
}

// RangeMulticast measures completion delay (time until the last covered
// node delivers) and message count of both strategies on an n-node ring
// of the named routing machine with 50 ms hops, for each requested range
// width (in covered nodes). The machine matters for the tree mode: its
// fan-out set is the machine's own routing entries, and on Koorde wide
// arcs leave as routed split legs. An empty machine name means Chord.
func RangeMulticast(machine string, n int, widths []int) []MulticastRow {
	space := dht.NewSpace(20)
	ids := chord.EquidistantIDs(space, n)
	rows := make([]MulticastRow, 0, len(widths))
	run := func(width int, mode dht.RangeMode) (sim.Time, int) {
		eng := sim.NewEngine()
		net := chord.New(eng, chord.Config{Space: space, HopDelay: 50 * sim.Millisecond, SuccListLen: 4, Machine: machine})
		net.BuildStable(ids, nil)
		var last sim.Time
		msgs := 0
		net.SetObserver(countObserver{onTransmit: func() { msgs++ }})
		for _, id := range net.NodeIDs() {
			net.SetApp(id, dht.AppFunc(func(self dht.Key, msg *dht.Message) {
				last = eng.Now()
				dht.ContinueRange(net, self, msg)
			}))
		}
		// Cover exactly `width` nodes starting away from the sender.
		lo := ids[n/4]
		hi := ids[(n/4+width-1)%n]
		dht.SendRange(net, ids[0], lo, hi, &dht.Message{}, mode)
		eng.Run()
		return last, msgs
	}
	for _, w := range widths {
		if w < 1 || w > n {
			panic(fmt.Sprintf("experiments: range width %d on %d nodes", w, n))
		}
		sd, sm := run(w, dht.RangeSequential)
		bd, bm := run(w, dht.RangeBidirectional)
		td, tm := run(w, dht.RangeTree)
		rows = append(rows, MulticastRow{
			RangeNodes: w,
			SeqDelay:   sd, BidiDelay: bd, TreeDelay: td,
			SeqMsgs: sm, BidiMsgs: bm, TreeMsgs: tm,
		})
	}
	return rows
}

// machineLabel names the ring machine a table ran on; the empty default
// is Chord, matching chord.Config.
func machineLabel(machine string) string {
	if machine == "" {
		return "chord"
	}
	return machine
}

type countObserver struct {
	onTransmit func()
}

func (o countObserver) OnTransmit(from, to dht.Key, msg *dht.Message) { o.onTransmit() }
func (o countObserver) OnDeliver(at dht.Key, msg *dht.Message)        {}

// AblationMulticast renders the A1 comparison for the named machine.
func AblationMulticast(machine string, n int, widths []int) *Table {
	t := NewTable(fmt.Sprintf("Ablation A1: range multicast on %d %s nodes (50 ms/hop)", n, machineLabel(machine)),
		"range-nodes", "seq-delay", "bidi-delay", "tree-delay", "seq-msgs", "bidi-msgs", "tree-msgs")
	for _, r := range RangeMulticast(machine, n, widths) {
		t.AddRow(r.RangeNodes, r.SeqDelay.String(), r.BidiDelay.String(), r.TreeDelay.String(),
			r.SeqMsgs, r.BidiMsgs, r.TreeMsgs)
	}
	t.AddNote("bidirectional propagation roughly halves wide-range delay at equal message cost (§IV-C);")
	t.AddNote("finger-tree dissemination makes it logarithmic — the native range multicast §VI-B calls for")
	return t
}

// --- Ablation A2: distributed index vs. centralized vs. flooding (§IV-A) ---

// BaselineRow compares the three designs at one system size.
type BaselineRow struct {
	Nodes     int
	Design    string
	MeanLoad  float64
	MaxLoad   float64
	Imbalance float64 // max / mean
	QueryMsgs float64 // query-related messages per query event
}

// Baselines runs the distributed middleware and both strawmen on the same
// workload.
func Baselines(sizes []int, base workload.Config, workers int) ([]BaselineRow, error) {
	var rows []BaselineRow
	type job struct {
		row BaselineRow
		err error
	}
	var jobs []func() job
	for _, n := range sizes {
		n := n
		cfg := base
		cfg.Nodes = n
		jobs = append(jobs, func() job {
			rep, err := workload.RunOnce(cfg)
			if err != nil {
				return job{err: err}
			}
			return job{row: baselineRow(n, "distributed", rep)}
		})
		for _, mode := range []baseline.Mode{baseline.Centralized, baseline.Flooding} {
			mode := mode
			jobs = append(jobs, func() job {
				bcfg := baseline.DefaultConfig(mode, n)
				bcfg.WindowSize = cfg.Core.WindowSize
				bcfg.Beta = cfg.Core.Beta
				bcfg.Warmup, bcfg.Measure = cfg.Warmup, cfg.Measure
				bcfg.Radius = cfg.Radius
				bcfg.Seed = cfg.Seed
				sys, err := baseline.Build(bcfg)
				if err != nil {
					return job{err: err}
				}
				return job{row: baselineRow(n, mode.String(), sys.Execute())}
			})
		}
	}
	for _, res := range Parallel(workers, jobs) {
		if res.err != nil {
			return nil, res.err
		}
		rows = append(rows, res.row)
	}
	return rows, nil
}

func baselineRow(n int, design string, rep *metrics.Report) BaselineRow {
	var sum float64
	for _, l := range rep.NodeLoad {
		sum += l
	}
	mean := sum / float64(len(rep.NodeLoad))
	_, max := rep.MaxLoadNode()
	imb := 0.0
	if mean > 0 {
		imb = max / mean
	}
	qm := rep.Overhead(metrics.QueryInitial, metrics.EventQuery) +
		rep.Overhead(metrics.QueryRange, metrics.EventQuery) +
		rep.Overhead(metrics.QueryTransit, metrics.EventQuery)
	return BaselineRow{Nodes: n, Design: design, MeanLoad: mean, MaxLoad: max, Imbalance: imb, QueryMsgs: qm}
}

// AblationBaselines renders the A2 comparison.
func AblationBaselines(rows []BaselineRow) *Table {
	t := NewTable("Ablation A2: distributed index vs. centralized vs. flooding",
		"nodes", "design", "mean-load/s", "max-load/s", "imbalance", "query-msgs/query")
	for _, r := range rows {
		t.AddRow(r.Nodes, r.Design, r.MeanLoad, r.MaxLoad, r.Imbalance, r.QueryMsgs)
	}
	t.AddNote("centralized: max-load explodes with N (hotspot, single point of failure);")
	t.AddNote("flooding: query cost ~N; distributed: balanced load, query cost ~r*N + log N")
	return t
}

// --- Ablation A3: MBR batching factor sweep (§IV-G) -------------------------

// BatchRow reports the bandwidth/precision trade-off of one batching
// factor.
type BatchRow struct {
	Beta          int
	MBRsPerSecond float64 // update messages per stream per second
	AvgSide       float64 // mean longest MBR side (precision)
	FalsePositive float64 // fraction of candidate matches that fail the exact test
}

// BatchSweep measures, for each batching factor, the stream's MBR rate and
// the false-positive rate of the candidate test against random similarity
// probes. Smaller beta means more update messages but tighter rectangles.
func BatchSweep(betas []int, radius float64, seed int64) []BatchRow {
	const (
		window  = 128
		dims    = 3
		steps   = 20000
		period  = 200 * sim.Millisecond
		queries = 400
	)
	rows := make([]BatchRow, 0, len(betas))
	for _, beta := range betas {
		rng := sim.NewRand(seed)
		gen := stream.DefaultRandomWalk(rng.Fork("walk"))
		sdft := dsp.NewSlidingDFT(window, dims/2+2)
		bt := summary.NewBatcher("s", beta)
		var mbrs []*summary.MBR
		var feats [][]summary.Feature // features inside each MBR
		var cur []summary.Feature
		var sideSum float64
		for i := 0; i < steps; i++ {
			sdft.Push(gen.Next())
			if !sdft.Full() {
				continue
			}
			f := summary.FromCoeffs(sdft.NormalizedCoeffs(dsp.ZNorm), dims, true)
			cur = append(cur, f)
			if b := bt.Add(f); b != nil {
				mbrs = append(mbrs, b)
				feats = append(feats, cur)
				cur = nil
				sideSum += b.MaxSide()
			}
		}
		if len(mbrs) == 0 {
			panic("experiments: batch sweep produced no MBRs")
		}
		// Probe with random query points; a candidate is a false
		// positive when no contained feature is truly within radius.
		qRng := rng.Fork("probes")
		candidates, falsePos := 0, 0
		for i := 0; i < queries; i++ {
			q := make(summary.Feature, dims)
			q[0] = qRng.Uniform(-1, 1)
			for d := 1; d < dims; d++ {
				q[d] = qRng.Uniform(-0.3, 0.3)
			}
			for mi, b := range mbrs {
				if b.MinDist(q) > radius {
					continue
				}
				candidates++
				real := false
				for _, f := range feats[mi] {
					if f.Dist(q) <= radius {
						real = true
						break
					}
				}
				if !real {
					falsePos++
				}
			}
		}
		fp := 0.0
		if candidates > 0 {
			fp = float64(falsePos) / float64(candidates)
		}
		rows = append(rows, BatchRow{
			Beta:          beta,
			MBRsPerSecond: 1 / (float64(beta) * period.Seconds()),
			AvgSide:       sideSum / float64(len(mbrs)),
			FalsePositive: fp,
		})
	}
	return rows
}

// AblationBatch renders the A3 sweep.
func AblationBatch(rows []BatchRow, radius float64) *Table {
	t := NewTable(fmt.Sprintf("Ablation A3: MBR batching factor sweep (radius=%.2f)", radius),
		"beta", "MBRs/s per stream", "avg-side", "false-positive-rate")
	for _, r := range rows {
		t.AddRow(r.Beta, r.MBRsPerSecond, fmt.Sprintf("%.4f", r.AvgSide), fmt.Sprintf("%.3f", r.FalsePositive))
	}
	t.AddNote("larger beta cuts update bandwidth linearly but widens rectangles, raising false positives (§IV-G)")
	return t
}

// --- Ablation A4: fixed vs. adaptive MBR precision (§VI-A) ------------------

// AdaptiveRow compares one strategy on a regime-switching stream.
type AdaptiveRow struct {
	Strategy string
	MBRCount int
	AvgSide  float64
	WideMBRs int // rectangles wider than the precision target
}

// AdaptiveComparison runs two fixed-factor batchers (loose and tight) and
// the adaptive controller over the same regime-switching stream: a stable
// periodic signal (features nearly static), then a volatile random walk
// (features drifting fast), then the stable regime again.
func AdaptiveComparison(fixedBeta int, radius float64, seed int64) []AdaptiveRow {
	const (
		window = 256
		dims   = 3
		phase  = 8000
	)
	target := adaptive.TargetForRadius(radius)
	makeGen := func() func(i int) float64 {
		rng := sim.NewRand(seed)
		calm := stream.NewSine(rng.Fork("calm"), 3, 32, 500, 0.2)
		wild := stream.NewRandomWalk(rng.Fork("wild"), 500, 5, 0, 1000)
		return func(i int) float64 {
			if i/phase == 1 { // middle phase is volatile
				return wild.Next()
			}
			return calm.Next()
		}
	}
	type batcher interface {
		Add(summary.Feature) *summary.MBR
	}
	run := func(name string, bt batcher) AdaptiveRow {
		gen := makeGen()
		sdft := dsp.NewSlidingDFT(window, dims/2+2)
		row := AdaptiveRow{Strategy: name}
		var sideSum float64
		for i := 0; i < 3*phase; i++ {
			sdft.Push(gen(i))
			if !sdft.Full() {
				continue
			}
			f := summary.FromCoeffs(sdft.NormalizedCoeffs(dsp.ZNorm), dims, true)
			if b := bt.Add(f); b != nil {
				row.MBRCount++
				sideSum += b.MaxSide()
				if b.MaxSide() > target {
					row.WideMBRs++
				}
			}
		}
		if row.MBRCount > 0 {
			row.AvgSide = sideSum / float64(row.MBRCount)
		}
		return row
	}
	loose := run(fmt.Sprintf("fixed beta=%d", fixedBeta), summary.NewBatcher("s", fixedBeta))
	tight := run("fixed beta=2", summary.NewBatcher("s", 2))
	ctl := adaptive.NewController(1, 4*fixedBeta, target)
	adapt := run("adaptive", adaptive.NewBatcher("s", ctl))
	return []AdaptiveRow{loose, tight, adapt}
}

// AblationAdaptive renders the A4 comparison. The machine names the ring
// substrate the MBR updates would travel: the batching decision itself is
// overlay-independent, but each MBR sent costs that machine's per-lookup
// hops, so the row counts read against the named machine's transit price.
func AblationAdaptive(machine string, rows []AdaptiveRow, radius float64) *Table {
	t := NewTable(fmt.Sprintf("Ablation A4: fixed vs. adaptive MBR precision (radius=%.2f, %s substrate)",
		radius, machineLabel(machine)),
		"strategy", "MBRs-sent", "avg-side", "over-target-MBRs")
	for _, r := range rows {
		t.AddRow(r.Strategy, r.MBRCount, fmt.Sprintf("%.4f", r.AvgSide), r.WideMBRs)
	}
	t.AddNote("the adaptive controller keeps rectangles near the precision target across regimes (§VI-A),")
	t.AddNote("spending updates in the volatile phase and saving them in calm phases; each MBR sent")
	t.AddNote(fmt.Sprintf("costs one %s routed update on the wire", machineLabel(machine)))
	return t
}

// --- Ablation A5: flat range multicast vs. cluster-leader hierarchy (§VI-B) -

// HierarchyRow compares the two designs for one query radius.
type HierarchyRow struct {
	Radius          float64
	FlatMsgs        int
	HierMsgs        int
	HierClimb       int
	CandidateLeaves int
}

// HierarchyComparison measures candidate-discovery cost for increasingly
// wide queries on n data centers of which only every k-th holds summaries
// near its position (sparse occupancy, the regime the hierarchy targets).
func HierarchyComparison(n int, radii []float64, sparsity int) []HierarchyRow {
	h := hierarchy.New(n, hierarchy.DefaultConfig())
	for i := 0; i < n; i += sparsity {
		center := -1 + 2*(float64(i)+0.5)/float64(n)
		h.Update(i, hierarchy.Interval{Lo: center - 0.005, Hi: center + 0.005})
	}
	rows := make([]HierarchyRow, 0, len(radii))
	for _, r := range radii {
		q := hierarchy.Interval{Lo: -r, Hi: r}
		res := h.Query(n/3, q)
		rows = append(rows, HierarchyRow{
			Radius:          r,
			FlatMsgs:        hierarchy.FlatCost(n, q),
			HierMsgs:        res.Msgs,
			HierClimb:       res.ClimbLevels,
			CandidateLeaves: len(res.Leaves),
		})
	}
	return rows
}

// AblationHierarchy renders the A5 comparison. The machine names the ring
// the flat multicast and the hierarchy's climb/fan-out messages travel:
// both columns count overlay-logical messages, so the named machine sets
// the per-message routing price the comparison is read against.
func AblationHierarchy(machine string, n int, rows []HierarchyRow) *Table {
	t := NewTable(fmt.Sprintf("Ablation A5: flat multicast vs. cluster-leader hierarchy (%d %s nodes)",
		n, machineLabel(machine)),
		"radius", "flat-msgs", "hierarchy-msgs", "climb-levels", "candidate-leaves")
	for _, r := range rows {
		t.AddRow(fmt.Sprintf("%.2f", r.Radius), r.FlatMsgs, r.HierMsgs, r.HierClimb, r.CandidateLeaves)
	}
	t.AddNote("flat cost grows linearly with the radius; the hierarchy pays a logarithmic climb plus")
	t.AddNote("fan-out only into subtrees that actually hold candidates (§VI-B); message counts are")
	t.AddNote(fmt.Sprintf("overlay-logical — each one routes over the %s ring", machineLabel(machine)))
	return t
}
