package experiments

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"streamdex/internal/sim"
	"streamdex/internal/workload"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// goldenConfig is a scaled-down Table I workload used by the determinism
// regression tests. The exact values matter only in that they must never
// change: the golden file was generated from the pre-optimization engine,
// store and DFT implementations, so a diff against it proves the optimized
// hot paths are bitwise-compatible (same seed -> same figure rows).
func goldenConfig() workload.Config {
	cfg := workload.DefaultConfig(0)
	cfg.Seed = 7
	cfg.Warmup = 5 * sim.Second
	cfg.Measure = 10 * sim.Second
	return cfg
}

// figureLines regenerates a representative slice of the paper's evaluation
// (Fig. 6(a), Fig. 7, Fig. 8 rows, the Fourier-locality analysis and the
// serialized-bandwidth ablation) and formats every floating-point field at
// full precision, so any bitwise divergence shows up.
func figureLines(t *testing.T, workers int) []string {
	t.Helper()
	cfg := goldenConfig()
	sizes := []int{12, 20}
	loads, overheads, hops, err := FullEvaluation(sizes, cfg, workers)
	if err != nil {
		t.Fatalf("FullEvaluation: %v", err)
	}
	var lines []string
	add := func(format string, args ...any) {
		lines = append(lines, fmt.Sprintf(format, args...))
	}
	for _, r := range loads {
		add("fig6a n=%d mbr=%.17g mbrInt=%.17g mbrTransit=%.17g q=%.17g resp=%.17g respInt=%.17g respTransit=%.17g total=%.17g",
			r.Nodes, r.MBRs, r.MBRsInternal, r.MBRsInTransit, r.Queries,
			r.Responses, r.ResponsesInternal, r.ResponsesInTransit, r.Total)
	}
	for _, r := range overheads {
		add("fig7 n=%d mbr=%.17g mbrT=%.17g q=%.17g qT=%.17g resp=%.17g respT=%.17g",
			r.Nodes, r.MBRMessages, r.MBRInTransit, r.QueryMessages,
			r.QueryInTransit, r.ResponseMessages, r.ResponseInTransit)
	}
	for _, r := range hops {
		add("fig8 n=%d mbr=%.17g mbrInt=%.17g q=%.17g qInt=%.17g resp=%.17g",
			r.Nodes, r.MBR, r.MBRInternal, r.Query, r.QueryInternal, r.Response)
	}
	loc := FourierLocality(64, 3, 2000, cfg.Seed)
	add("fig3b consec=%.17g random=%.17g ratio=%.17g", loc.ConsecutiveMean, loc.RandomMean, loc.Ratio)
	bw, err := Bandwidth(12, []int{1, 5}, cfg, workers)
	if err != nil {
		t.Fatalf("Bandwidth: %v", err)
	}
	for _, r := range bw {
		add("bandwidth beta=%d msgs=%.17g mbrBytes=%.17g totalBytes=%.17g",
			r.Beta, r.MBRMsgs, r.MBRBytes, r.TotalBytes)
	}
	return lines
}

// TestFigureRowsGolden pins the figure rows of a fixed-seed evaluation to a
// golden file generated before the hot-path optimizations (typed event
// queue, indexed MBR store, split-state sliding DFT, cached wire sizing).
// Any implementation change that alters simulation results — event
// ordering, candidate sets, DFT coefficients, message sizes — fails here.
func TestFigureRowsGolden(t *testing.T) {
	got := strings.Join(figureLines(t, 1), "\n") + "\n"
	path := filepath.Join("testdata", "figure_rows.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d lines)", path, strings.Count(got, "\n"))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Fatalf("figure rows diverged from pre-optimization golden:\n%s",
			diffLines(string(want), got))
	}
}

// TestSerialParallelDeterminism verifies that fanning simulations out
// across the worker pool cannot change any figure row: the same seeds must
// yield bitwise-identical results whether the sweep runs on one goroutine
// or several (guards both event-queue ordering and the pool).
func TestSerialParallelDeterminism(t *testing.T) {
	serial := figureLines(t, 1)
	parallel := figureLines(t, 4)
	if len(serial) != len(parallel) {
		t.Fatalf("row counts differ: serial=%d parallel=%d", len(serial), len(parallel))
	}
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Errorf("row %d differs:\nserial:   %s\nparallel: %s", i, serial[i], parallel[i])
		}
	}
}

// diffLines renders a minimal line diff for golden mismatches.
func diffLines(want, got string) string {
	ws, gs := strings.Split(want, "\n"), strings.Split(got, "\n")
	var b strings.Builder
	n := len(ws)
	if len(gs) > n {
		n = len(gs)
	}
	for i := 0; i < n; i++ {
		var w, g string
		if i < len(ws) {
			w = ws[i]
		}
		if i < len(gs) {
			g = gs[i]
		}
		if w != g {
			fmt.Fprintf(&b, "line %d:\n  want: %s\n  got:  %s\n", i+1, w, g)
		}
	}
	return b.String()
}
