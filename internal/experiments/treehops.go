package experiments

import (
	"streamdex/internal/dht"
	"streamdex/internal/metrics"
	"streamdex/internal/workload"
)

// --- Ablation A9: Fig. 8 revisited with tree dissemination (§VI-B) ----------

// TreeHopsRow compares the slowest message class of Fig. 8 — internal
// query propagation — under sequential range coverage and under
// finger-tree dissemination.
type TreeHopsRow struct {
	Nodes             int
	SeqQueryInternal  float64
	TreeQueryInternal float64
	SeqMBRInternal    float64
	TreeMBRInternal   float64
}

// TreeHops reruns the Fig. 8 measurement with both range-multicast
// strategies. The paper: "for systems with very large numbers of nodes,
// this might result in long time lags ... The way to alleviate this
// problem is to use an efficient scheme for range-based routing" — this
// experiment quantifies exactly that fix.
func TreeHops(sizes []int, base workload.Config, workers int) ([]TreeHopsRow, error) {
	type res struct {
		nodes int
		mode  dht.RangeMode
		rep   *metrics.Report
		err   error
	}
	var jobs []func() res
	for _, n := range sizes {
		for _, mode := range []dht.RangeMode{dht.RangeSequential, dht.RangeTree} {
			n, mode := n, mode
			cfg := base
			cfg.Nodes = n
			cfg.Core.RangeMode = mode
			jobs = append(jobs, func() res {
				rep, err := workload.RunOnce(cfg)
				return res{nodes: n, mode: mode, rep: rep, err: err}
			})
		}
	}
	results := Parallel(workers, jobs)
	byNode := map[int]*TreeHopsRow{}
	var rows []TreeHopsRow
	for _, n := range sizes {
		byNode[n] = &TreeHopsRow{Nodes: n}
	}
	for _, r := range results {
		if r.err != nil {
			return nil, r.err
		}
		row := byNode[r.nodes]
		switch r.mode {
		case dht.RangeSequential:
			row.SeqQueryInternal = r.rep.HopMean[metrics.HopQueryInternal]
			row.SeqMBRInternal = r.rep.HopMean[metrics.HopMBRInternal]
		case dht.RangeTree:
			row.TreeQueryInternal = r.rep.HopMean[metrics.HopQueryInternal]
			row.TreeMBRInternal = r.rep.HopMean[metrics.HopMBRInternal]
		}
	}
	for _, n := range sizes {
		rows = append(rows, *byNode[n])
	}
	return rows, nil
}

// AblationTreeHops renders the A9 table.
func AblationTreeHops(rows []TreeHopsRow) *Table {
	t := NewTable("Ablation A9: internal-message hops, sequential walk vs. finger-tree dissemination",
		"nodes", "query-internal(seq)", "query-internal(tree)", "MBR-internal(seq)", "MBR-internal(tree)")
	for _, r := range rows {
		t.AddRow(r.Nodes, r.SeqQueryInternal, r.TreeQueryInternal, r.SeqMBRInternal, r.TreeMBRInternal)
	}
	t.AddNote("sequential internal-query hops grow linearly with N (Fig. 8's bottleneck); the finger tree")
	t.AddNote("delivers the same range in O(log N) levels — the efficient range routing of §VI-B")
	return t
}
