package experiments

// The continuous-query-engine experiment: the Table I workload with the
// operator workload enabled (standing subscriptions, windowed aggregates,
// top-k monitors arriving as a Poisson process) swept over system sizes.
// The interesting quantity mirrors Fig. 6(a): per-node, per-second message
// load of each operator's traffic class, which should stay flat as the
// system grows — operator state is spread over the ring by the same
// content-based placement the index uses.

import (
	"streamdex/internal/metrics"
	"streamdex/internal/workload"
)

// CQERow is the operator-traffic summary at one system size.
type CQERow struct {
	Nodes int
	// Per-node per-second message load by operator class.
	Sketch, Subscription, TopK float64
	// Raw transmissions over the measurement interval.
	SketchMsgs, SubMsgs, TopKMsgs int64
}

// CQELoad sweeps the operator workload over the given sizes. The base
// configuration's Ops flag is forced on; everything else (rates, seeds,
// intervals) is taken as given so goldens stay reproducible.
func CQELoad(sizes []int, base workload.Config, workers int) ([]CQERow, error) {
	base.Ops = true
	reps, err := Sweep(sizes, base, workers)
	if err != nil {
		return nil, err
	}
	rows := make([]CQERow, len(sizes))
	for i, rep := range reps {
		rows[i] = CQERow{
			Nodes:        sizes[i],
			Sketch:       rep.LoadByCategory[metrics.Sketch],
			Subscription: rep.LoadByCategory[metrics.Subscription],
			TopK:         rep.LoadByCategory[metrics.TopKFreq],
			SketchMsgs:   rep.TotalByCategory[metrics.Sketch],
			SubMsgs:      rep.TotalByCategory[metrics.Subscription],
			TopKMsgs:     rep.TotalByCategory[metrics.TopKFreq],
		}
	}
	return rows, nil
}

// FigCQE renders the operator-load table.
func FigCQE(rows []CQERow) *Table {
	t := NewTable("Continuous-query engine: average operator load on a node (per second)",
		"nodes", "sketch", "subscription", "top-k",
		"sketch-msgs", "sub-msgs", "topk-msgs")
	for _, r := range rows {
		t.AddRow(r.Nodes, r.Sketch, r.Subscription, r.TopK,
			r.SketchMsgs, r.SubMsgs, r.TopKMsgs)
	}
	t.AddNote("expected shape: per-node operator load stays flat as N grows — registrations")
	t.AddNote("multicast only over the key range their predicate maps to, reports unicast to the origin")
	return t
}
