package experiments

import (
	"strings"
	"testing"

	"streamdex/internal/sim"
	"streamdex/internal/workload"
)

// fastBase returns a scaled-down Table I workload for test speed.
func fastBase() workload.Config {
	cfg := workload.DefaultConfig(0)
	cfg.Core.WindowSize = 32
	cfg.Core.Beta = 5
	cfg.Warmup = 15 * sim.Second
	cfg.Measure = 30 * sim.Second
	return cfg
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Title", "a", "bb")
	tb.AddRow(1, 2.5)
	tb.AddRow("xyz", "w")
	tb.AddNote("note %d", 7)
	s := tb.String()
	for _, want := range []string{"Title", "a", "bb", "2.500", "xyz", "# note 7", "--"} {
		if !strings.Contains(s, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, s)
		}
	}
}

func TestParallelOrderAndCompleteness(t *testing.T) {
	jobs := make([]func() int, 50)
	for i := range jobs {
		i := i
		jobs[i] = func() int { return i * i }
	}
	for _, workers := range []int{0, 1, 4, 100} {
		got := Parallel(workers, jobs)
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: result[%d] = %d", workers, i, v)
			}
		}
	}
}

func TestTableIValues(t *testing.T) {
	s := TableI().String()
	for _, want := range []string{"150ms", "250ms", "5000ms", "2q/sec", "20sec", "100sec", "2sec"} {
		if !strings.Contains(s, want) {
			t.Fatalf("Table I missing %q:\n%s", want, s)
		}
	}
}

func TestFourierLocality(t *testing.T) {
	r := FourierLocality(64, 3, 3000, 7)
	if r.Ratio >= 0.5 {
		t.Fatalf("locality ratio = %.3f, want << 1 (consecutive summaries must cluster)", r.Ratio)
	}
	if r.ConsecutiveMean <= 0 || r.RandomMean <= 0 {
		t.Fatal("degenerate distances")
	}
	if len(r.Points) == 0 {
		t.Fatal("no scatter points")
	}
	for _, p := range r.Points {
		if !p.Valid() {
			t.Fatalf("invalid scatter point %v", p)
		}
	}
}

func TestLoadVsNodesShape(t *testing.T) {
	sizes := []int{16, 48}
	rows, err := LoadVsNodes(sizes, fastBase(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	small, big := rows[0], rows[1]
	// MBR transit grows with N (overlay routing is O(log N)).
	if big.MBRsInTransit <= small.MBRsInTransit {
		t.Fatalf("MBR transit did not grow: %.3f -> %.3f", small.MBRsInTransit, big.MBRsInTransit)
	}
	// Responses to clients shrink per node (constant total over more
	// nodes).
	if big.Responses >= small.Responses {
		t.Fatalf("response load did not shrink per node: %.3f -> %.3f", small.Responses, big.Responses)
	}
	// MBR source rate is per-stream and constant.
	ratio := big.MBRs / small.MBRs
	if ratio < 0.7 || ratio > 1.3 {
		t.Fatalf("MBR source rate not constant: %.3f -> %.3f", small.MBRs, big.MBRs)
	}
	if small.Total <= 0 || big.Total <= 0 {
		t.Fatal("zero totals")
	}
	// Rendering sanity.
	if !strings.Contains(Fig6a(rows).String(), "Figure 6(a)") {
		t.Fatal("Fig6a table missing title")
	}
}

func TestLoadDistributionLightTailed(t *testing.T) {
	d, err := LoadDistribution(48, 8, fastBase())
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, c := range d.Counts {
		total += c
	}
	if total != 48 {
		t.Fatalf("histogram covers %d nodes, want 48", total)
	}
	// Not heavy-tailed: the max load is within a small factor of the
	// median.
	if d.Quantiles[3] > 5*d.Quantiles[0] {
		t.Fatalf("heavy tail: median %.2f, max %.2f", d.Quantiles[0], d.Quantiles[3])
	}
	if !strings.Contains(Fig6b(d).String(), "distribution of load") {
		t.Fatal("Fig6b table missing title")
	}
}

func TestOverheadRadiusDoubling(t *testing.T) {
	sizes := []int{48}
	base := fastBase()
	r1, err := Overhead(sizes, base, 0.1, 2)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Overhead(sizes, base, 0.2, 2)
	if err != nil {
		t.Fatal(err)
	}
	// A twice bigger query radius spans roughly twice as many nodes
	// (paper: "the most significant difference here is in an even higher
	// number of query messages").
	ratio := r2[0].QueryMessages / r1[0].QueryMessages
	if ratio < 1.5 || ratio > 2.8 {
		t.Fatalf("query-range overhead ratio r=0.2/r=0.1 = %.2f, want ~2", ratio)
	}
	if !strings.Contains(Fig7("a", 0.1, r1).String(), "radius=0.1") {
		t.Fatal("Fig7 table missing radius")
	}
}

func TestOverheadQueryRangeLinearInN(t *testing.T) {
	rows, err := Overhead([]int{16, 48}, fastBase(), 0.1, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Tripling N should roughly triple the covered range.
	ratio := rows[1].QueryMessages / rows[0].QueryMessages
	if ratio < 2 || ratio > 4.5 {
		t.Fatalf("query-range overhead 16->48 nodes scaled by %.2f, want ~3", ratio)
	}
}

func TestHopsShape(t *testing.T) {
	rows, err := Hops([]int{16, 48}, fastBase(), 2)
	if err != nil {
		t.Fatal(err)
	}
	small, big := rows[0], rows[1]
	// Routed MBR hops grow slowly (O(log N)); internal query hops grow
	// linearly and dominate at scale.
	if big.MBR <= 0 || big.Query <= 0 {
		t.Fatal("zero hop means")
	}
	if big.QueryInternal <= small.QueryInternal {
		t.Fatalf("internal query hops did not grow: %.2f -> %.2f", small.QueryInternal, big.QueryInternal)
	}
	if big.QueryInternal <= big.MBR {
		t.Fatalf("internal query hops (%.2f) should dominate routed MBR hops (%.2f) at 48 nodes",
			big.QueryInternal, big.MBR)
	}
	if !strings.Contains(Fig8(rows).String(), "Figure 8") {
		t.Fatal("Fig8 table missing title")
	}
}

func TestFullEvaluationSharesSweep(t *testing.T) {
	loads, overheads, hops, err := FullEvaluation([]int{16}, fastBase(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(loads) != 1 || len(overheads) != 1 || len(hops) != 1 {
		t.Fatal("wrong row counts")
	}
	if loads[0].Nodes != 16 || overheads[0].Nodes != 16 || hops[0].Nodes != 16 {
		t.Fatal("size mismatch")
	}
}

func TestRangeMulticastAblation(t *testing.T) {
	rows := RangeMulticast("", 64, []int{2, 16, 32})
	if len(rows) != 3 {
		t.Fatal("row count")
	}
	for _, r := range rows {
		if r.SeqMsgs == 0 || r.BidiMsgs == 0 {
			t.Fatalf("no messages for width %d", r.RangeNodes)
		}
	}
	// For wide ranges bidirectional must be clearly faster.
	wide := rows[2]
	if float64(wide.BidiDelay) > 0.8*float64(wide.SeqDelay) {
		t.Fatalf("bidirectional %v vs sequential %v on 32-node range", wide.BidiDelay, wide.SeqDelay)
	}
	// Message counts comparable (within one extra leg).
	if wide.BidiMsgs > wide.SeqMsgs+2 {
		t.Fatalf("bidirectional costs %d msgs vs %d sequential", wide.BidiMsgs, wide.SeqMsgs)
	}
	if !strings.Contains(AblationMulticast("", 64, []int{2}).String(), "Ablation A1") {
		t.Fatal("A1 table missing title")
	}
}

func TestBaselinesAblation(t *testing.T) {
	base := fastBase()
	rows, err := Baselines([]int{24}, base, 3)
	if err != nil {
		t.Fatal(err)
	}
	byDesign := map[string]BaselineRow{}
	for _, r := range rows {
		byDesign[r.Design] = r
	}
	dist, cent, flood := byDesign["distributed"], byDesign["centralized"], byDesign["flooding"]
	if cent.Imbalance <= 2*dist.Imbalance {
		t.Fatalf("centralized imbalance %.1f not clearly worse than distributed %.1f",
			cent.Imbalance, dist.Imbalance)
	}
	if flood.QueryMsgs <= dist.QueryMsgs {
		t.Fatalf("flooding query cost %.1f not above distributed %.1f", flood.QueryMsgs, dist.QueryMsgs)
	}
	if !strings.Contains(AblationBaselines(rows).String(), "Ablation A2") {
		t.Fatal("A2 table missing title")
	}
}

func TestBatchSweepTradeoff(t *testing.T) {
	rows := BatchSweep([]int{1, 10, 50}, 0.1, 3)
	if len(rows) != 3 {
		t.Fatal("row count")
	}
	// Bandwidth falls with beta.
	if !(rows[0].MBRsPerSecond > rows[1].MBRsPerSecond && rows[1].MBRsPerSecond > rows[2].MBRsPerSecond) {
		t.Fatalf("MBR rate not decreasing: %+v", rows)
	}
	// Rectangle extent grows with beta.
	if !(rows[0].AvgSide <= rows[1].AvgSide && rows[1].AvgSide <= rows[2].AvgSide) {
		t.Fatalf("avg side not increasing: %+v", rows)
	}
	// False positives grow with beta (wider rectangles).
	if rows[2].FalsePositive < rows[0].FalsePositive {
		t.Fatalf("false positives fell with beta: %+v", rows)
	}
	if !strings.Contains(AblationBatch(rows, 0.1).String(), "Ablation A3") {
		t.Fatal("A3 table missing title")
	}
}

func TestAdaptiveAblation(t *testing.T) {
	rows := AdaptiveComparison(32, 0.1, 5)
	if len(rows) != 3 {
		t.Fatal("row count")
	}
	loose, tight, adapt := rows[0], rows[1], rows[2]
	if loose.MBRCount == 0 || tight.MBRCount == 0 || adapt.MBRCount == 0 {
		t.Fatal("no MBRs produced")
	}
	// Precision: the adaptive strategy keeps far fewer over-target
	// rectangles than the loose fixed baseline.
	looseBad := float64(loose.WideMBRs) / float64(loose.MBRCount)
	adaptBad := float64(adapt.WideMBRs) / float64(adapt.MBRCount)
	if adaptBad >= looseBad {
		t.Fatalf("adaptive over-target fraction %.2f not below loose fixed %.2f", adaptBad, looseBad)
	}
	// Bandwidth: it sends fewer updates than the tight fixed baseline
	// (it only pays for precision when the stream is volatile).
	if adapt.MBRCount >= tight.MBRCount {
		t.Fatalf("adaptive sent %d MBRs, not below tight fixed %d", adapt.MBRCount, tight.MBRCount)
	}
	if !strings.Contains(AblationAdaptive("", rows, 0.1).String(), "Ablation A4") {
		t.Fatal("A4 table missing title")
	}
}

func TestHierarchyAblation(t *testing.T) {
	rows := HierarchyComparison(512, []float64{0.05, 0.2, 0.4, 0.8}, 16)
	if len(rows) != 4 {
		t.Fatal("row count")
	}
	// Flat cost grows with the radius.
	if rows[3].FlatMsgs <= rows[0].FlatMsgs {
		t.Fatal("flat cost not growing with radius")
	}
	// For the widest query the hierarchy wins on this sparse population.
	if rows[3].HierMsgs >= rows[3].FlatMsgs {
		t.Fatalf("hierarchy %d msgs vs flat %d for radius 0.8", rows[3].HierMsgs, rows[3].FlatMsgs)
	}
	if !strings.Contains(AblationHierarchy("", 512, rows).String(), "Ablation A5") {
		t.Fatal("A5 table missing title")
	}
}
