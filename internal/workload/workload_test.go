package workload

import (
	"testing"

	"streamdex/internal/metrics"
	"streamdex/internal/sim"
)

// smallConfig shrinks everything for fast tests.
func smallConfig(nodes int) Config {
	cfg := DefaultConfig(nodes)
	cfg.Warmup = 20 * sim.Second
	cfg.Measure = 30 * sim.Second
	cfg.Core.WindowSize = 32
	cfg.Core.Coeffs = 3
	cfg.Core.FeatureDims = 3
	cfg.Core.Beta = 5
	return cfg
}

func TestValidate(t *testing.T) {
	if err := DefaultConfig(50).Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []func(c *Config){
		func(c *Config) { c.Nodes = 1 },
		func(c *Config) { c.PMin = 0 },
		func(c *Config) { c.PMax = c.PMin - 1 },
		func(c *Config) { c.QueryGap = 0 },
		func(c *Config) { c.QMin = 0 },
		func(c *Config) { c.QMax = c.QMin - 1 },
		func(c *Config) { c.Radius = -1 },
		func(c *Config) { c.Radius = 2 },
		func(c *Config) { c.Measure = 0 },
		func(c *Config) { c.Core.Beta = 0 },
	}
	for i, mut := range bad {
		c := DefaultConfig(50)
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestTableIDefaults(t *testing.T) {
	c := DefaultConfig(100)
	if c.PMin != 150*sim.Millisecond || c.PMax != 250*sim.Millisecond {
		t.Fatal("PMIN/PMAX do not match Table I")
	}
	if c.QueryGap != 500*sim.Millisecond {
		t.Fatal("QRATE does not match Table I (2 q/s)")
	}
	if c.QMin != 20*sim.Second || c.QMax != 100*sim.Second {
		t.Fatal("QMIN/QMAX do not match Table I")
	}
	if c.Core.MBRLifespan != 5*sim.Second {
		t.Fatal("BSPAN does not match Table I")
	}
	if c.Core.PushPeriod != 2*sim.Second {
		t.Fatal("NPER does not match Table I")
	}
	if c.HopDelay != 50*sim.Millisecond {
		t.Fatal("hop delay does not match the Chord simulator's 50 ms")
	}
}

func TestSmallRunProducesAllTrafficClasses(t *testing.T) {
	cfg := smallConfig(20)
	rep, err := RunOnce(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Nodes != 20 {
		t.Fatalf("nodes = %d", rep.Nodes)
	}
	for _, cat := range []metrics.Category{
		metrics.MBRSource, metrics.MBRTransit,
		metrics.QueryInitial, metrics.ResponseClient, metrics.NeighborNotify,
	} {
		if rep.TotalByCategory[cat] == 0 {
			t.Errorf("no traffic in category %v", cat)
		}
	}
	if rep.Events[metrics.EventMBR] == 0 || rep.Events[metrics.EventQuery] == 0 || rep.Events[metrics.EventResponse] == 0 {
		t.Fatalf("missing input events: %v", rep.Events)
	}
	if rep.TotalLoad <= 0 {
		t.Fatal("zero total load")
	}
}

func TestMBREventRateMatchesBatching(t *testing.T) {
	// Each node produces one feature per period (~200 ms) and one MBR
	// per Beta features: expected MBR rate per node ~ 1/(Beta * period).
	cfg := smallConfig(16)
	rep, err := RunOnce(cfg)
	if err != nil {
		t.Fatal(err)
	}
	secs := rep.Duration.Seconds()
	perNode := float64(rep.Events[metrics.EventMBR]) / secs / float64(cfg.Nodes)
	// Period mean 200 ms, Beta 5 -> 1 MBR per second per node.
	if perNode < 0.7 || perNode > 1.3 {
		t.Fatalf("MBR rate per node = %.2f/s, want ~1.0", perNode)
	}
}

func TestQueryRateMatchesPoisson(t *testing.T) {
	cfg := smallConfig(16)
	rep, err := RunOnce(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rate := float64(rep.Events[metrics.EventQuery]) / rep.Duration.Seconds()
	if rate < 1.2 || rate > 2.8 {
		t.Fatalf("query rate = %.2f/s, want ~2/s", rate)
	}
}

func TestNoDroppedMessagesOnStableRing(t *testing.T) {
	cfg := smallConfig(16)
	r, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r.Execute()
	if r.Net.Dropped() != 0 {
		t.Fatalf("dropped %d messages on a stable ring", r.Net.Dropped())
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	cfg := smallConfig(12)
	rep1, err := RunOnce(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := RunOnce(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep1.TotalByCategory != rep2.TotalByCategory {
		t.Fatalf("non-deterministic totals:\n%v\n%v", rep1.TotalByCategory, rep2.TotalByCategory)
	}
	if rep1.Events != rep2.Events {
		t.Fatalf("non-deterministic events: %v vs %v", rep1.Events, rep2.Events)
	}
}

func TestSeedChangesOutcome(t *testing.T) {
	cfg := smallConfig(12)
	rep1, err := RunOnce(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Seed = 99
	rep2, err := RunOnce(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep1.TotalByCategory == rep2.TotalByCategory {
		t.Fatal("different seeds produced identical traffic (suspicious)")
	}
}

func TestEquidistantPlacement(t *testing.T) {
	cfg := smallConfig(12)
	cfg.Equidistant = true
	rep, err := RunOnce(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalLoad <= 0 {
		t.Fatal("no traffic under equidistant placement")
	}
}

func TestPastrySubstrateRun(t *testing.T) {
	cfg := smallConfig(16)
	cfg.Substrate = "pastry"
	rep, err := RunOnce(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalLoad <= 0 {
		t.Fatal("no traffic on pastry substrate")
	}
	// Routed hops on pastry (prefix strides) stay below chord's.
	cfg2 := smallConfig(16)
	rep2, err := RunOnce(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if rep.HopMean[metrics.HopMBR] >= rep2.HopMean[metrics.HopMBR] {
		t.Fatalf("pastry MBR hops %.2f not below chord %.2f",
			rep.HopMean[metrics.HopMBR], rep2.HopMean[metrics.HopMBR])
	}
}

func TestFailureInjection(t *testing.T) {
	cfg := smallConfig(16)
	cfg.FailAt = 3 * sim.Second
	cfg.FailCount = 3
	r, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep := r.Execute()
	if len(r.Failed) != 3 {
		t.Fatalf("failed %d nodes, want 3", len(r.Failed))
	}
	if r.Net.Dropped() == 0 {
		t.Fatal("failure injection caused no drops (nothing in flight?)")
	}
	// Per-survivor MBR production continues.
	if rep.Events[metrics.EventMBR] == 0 {
		t.Fatal("no MBR events after failures")
	}
}

func TestSubstrateAndFailureValidation(t *testing.T) {
	cfg := smallConfig(8)
	cfg.Substrate = "bogus"
	if err := cfg.Validate(); err == nil {
		t.Fatal("bogus substrate accepted")
	}
	cfg = smallConfig(8)
	cfg.Substrate = "pastry"
	cfg.FailAt = sim.Second
	cfg.FailCount = 1
	if err := cfg.Validate(); err == nil {
		t.Fatal("failure injection on pastry accepted")
	}
	cfg = smallConfig(8)
	cfg.FailAt = sim.Second
	cfg.FailCount = 0
	if err := cfg.Validate(); err == nil {
		t.Fatal("FailAt without FailCount accepted")
	}
}

func TestStopHaltsQueries(t *testing.T) {
	cfg := smallConfig(8)
	r, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r.Eng.RunFor(10 * sim.Second)
	n := r.Queries()
	r.Stop()
	r.Eng.RunFor(10 * sim.Second)
	if r.Queries() != n {
		t.Fatalf("queries kept arriving after Stop: %d -> %d", n, r.Queries())
	}
}
