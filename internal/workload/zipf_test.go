package workload

import (
	"math"
	"testing"

	"streamdex/internal/sim"
)

// TestZipfSlope draws a large sample and fits the log-log rank-frequency
// line: for P(r) ∝ r^-s the slope over the well-populated head ranks must
// come back ≈ -s.
func TestZipfSlope(t *testing.T) {
	const (
		s       = 1.1
		ranks   = 1024
		samples = 400000
	)
	z := NewZipf(s, ranks)
	rng := sim.NewRand(7)
	counts := make([]int, ranks+1)
	for i := 0; i < samples; i++ {
		r := z.Sample(rng)
		if r < 1 || r > ranks {
			t.Fatalf("sample %d out of [1, %d]", r, ranks)
		}
		counts[r]++
	}
	// Least-squares fit of log(count) vs log(rank) over the head, where
	// every rank has enough mass for the log to be stable.
	var n, sx, sy, sxx, sxy float64
	for r := 1; r <= 64; r++ {
		if counts[r] == 0 {
			t.Fatalf("head rank %d drew no samples", r)
		}
		x := math.Log(float64(r))
		y := math.Log(float64(counts[r]))
		n++
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
	}
	slope := (n*sxy - sx*sy) / (n*sxx - sx*sx)
	if math.Abs(slope+s) > 0.1 {
		t.Fatalf("fitted rank-frequency slope %.3f, want about %.1f", slope, -s)
	}
}

// TestZipfDeterminism: two samplers with the same parameters driven by
// identically seeded rngs must produce identical sequences, and the
// sampler itself must hold no hidden state.
func TestZipfDeterminism(t *testing.T) {
	a, b := NewZipf(1.1, 512), NewZipf(1.1, 512)
	ra, rb := sim.NewRand(42), sim.NewRand(42)
	for i := 0; i < 10000; i++ {
		if sa, sb := a.Sample(ra), b.Sample(rb); sa != sb {
			t.Fatalf("sample %d diverged: %d vs %d", i, sa, sb)
		}
	}
}

// TestZipfCoordRange: every rank must map to a routing coordinate
// strictly inside the stream feature range, and distinct head ranks must
// not collide (the golden-ratio scramble is injective over small sets).
func TestZipfCoordRange(t *testing.T) {
	z := NewZipf(1.1, DefaultSkewRanks)
	seen := make(map[float64]int)
	for r := 1; r <= z.Ranks(); r++ {
		c := z.Coord(r)
		if c < -1 || c >= 1 {
			t.Fatalf("rank %d coordinate %v outside [-1, 1)", r, c)
		}
		if prev, dup := seen[c]; dup {
			t.Fatalf("ranks %d and %d map to the same coordinate %v", prev, r, c)
		}
		seen[c] = r
	}
}
