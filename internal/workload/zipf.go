package workload

// Zipf query targeting for the load-skew experiment: query routing
// coordinates are drawn from a fixed set of ranked hot spots whose
// frequencies follow a power law P(rank) ∝ rank^-s — the classic
// millions-of-users popularity curve (s ≈ 1.1 for web-object traces).
// Because the paper's mapping h is locality-preserving, a popular
// coordinate concentrates query traffic on the few nodes covering its key
// range; this sampler makes that worst case reproducible.

import (
	"math"
	"sort"

	"streamdex/internal/sim"
)

// DefaultSkewRanks is the hot-target set size when Config.SkewRanks is 0.
const DefaultSkewRanks = 1024

// Zipf samples ranks 1..N with P(r) ∝ r^-s by inversion over the
// precomputed cumulative distribution. Sampling costs one uniform draw
// plus a binary search, and two samplers built with the same parameters
// are identical — determinism under seed is inherited entirely from the
// caller's rng.
type Zipf struct {
	s   float64
	cum []float64 // cum[i] = P(rank <= i+1), cum[N-1] == 1
}

// NewZipf builds a sampler over ranks 1..ranks with exponent s > 0.
func NewZipf(s float64, ranks int) *Zipf {
	if s <= 0 || ranks < 1 {
		panic("workload: Zipf needs s > 0 and ranks >= 1")
	}
	cum := make([]float64, ranks)
	total := 0.0
	for r := 1; r <= ranks; r++ {
		total += math.Pow(float64(r), -s)
		cum[r-1] = total
	}
	for i := range cum {
		cum[i] /= total
	}
	cum[ranks-1] = 1 // guard against rounding
	return &Zipf{s: s, cum: cum}
}

// Ranks returns the size of the hot-target set.
func (z *Zipf) Ranks() int { return len(z.cum) }

// Sample draws one rank in [1, Ranks] using a single uniform variate from
// rng.
func (z *Zipf) Sample(rng *sim.Rand) int {
	u := rng.Uniform(0, 1)
	return 1 + sort.SearchFloat64s(z.cum, u)
}

// Coord maps a rank to its routing coordinate in (-1, 1). The golden-ratio
// scramble spreads consecutive ranks maximally apart on the coordinate
// axis, so the hottest targets do not cluster on adjacent nodes and the
// skew stresses independent ring regions — the hardest case for purely
// local balancing.
func (z *Zipf) Coord(rank int) float64 {
	const phi = 0.6180339887498949 // 1/golden ratio
	_, frac := math.Modf(float64(rank) * phi)
	return 2*frac - 1
}
