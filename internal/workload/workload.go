// Package workload drives full-system simulations with the evaluation
// configuration of the paper (§V, Table I):
//
//	PMIN  150 ms   minimum stream period
//	PMAX  250 ms   maximum stream period
//	BSPAN 5000 ms  MBR lifespan
//	QRATE 2 q/s    Poisson query arrival rate
//	QMIN  20 s     minimum query lifespan
//	QMAX  100 s    maximum query lifespan
//	NPER  2 s      period of responses and neighbor exchanges
//
// Every node is the source of exactly one stream; every query is issued by
// a random node; query features are drawn uniformly; the default query
// radius is 0.1 (0.2 for the Fig. 7(b) variant).
package workload

import (
	"fmt"
	"strings"

	"streamdex/internal/chord"
	"streamdex/internal/core"
	"streamdex/internal/dht"
	_ "streamdex/internal/koorde" // register the koorde routing machine
	"streamdex/internal/metrics"
	"streamdex/internal/overlay"
	"streamdex/internal/pastry"
	"streamdex/internal/sim"
	"streamdex/internal/stream"
	"streamdex/internal/summary"
)

// Config is the full workload and runtime configuration.
type Config struct {
	// Nodes is the system size; the paper sweeps 50..500.
	Nodes int

	// PMin/PMax bound the per-stream period (Table I: 150-250 ms).
	PMin, PMax sim.Time
	// QueryRate is the Poisson arrival rate of similarity queries
	// (Table I: 2 q/s), expressed as the mean gap = 1/rate.
	QueryGap sim.Time
	// QMin/QMax bound query lifespans (Table I: 20-100 s).
	QMin, QMax sim.Time
	// Radius is the similarity query radius (0.1 for most experiments).
	Radius float64

	// Warmup runs before counters reset; Measure is the accounted
	// interval.
	Warmup, Measure sim.Time

	// HopDelay is the simulated per-hop latency (50 ms).
	HopDelay sim.Time

	// Core carries the middleware parameters (window, coefficients,
	// batching, BSPAN, NPER, range-multicast mode).
	Core core.Config

	// Seed drives every random choice in the run.
	Seed int64

	// Placement selects node placement: false = consistent hashing
	// (default), true = idealized equidistant identifiers.
	Equidistant bool

	// Substrate selects the routing layer: any machine registered with
	// internal/overlay — "chord" (default) or "koorde" — or "pastry",
	// which is a separate substrate rather than a ring machine. The
	// middleware runs unmodified on all of them (§II-B: the solution
	// "can use virtually any P2P routing protocol").
	Substrate string

	// FailAt, when positive, crashes FailCount random nodes at that
	// instant (after warm-up) — the resilience experiment. Requires the
	// chord substrate with maintenance, which is enabled automatically.
	FailAt    sim.Time
	FailCount int

	// Ops enables the continuous-query-engine workload riding alongside
	// the similarity queries: standing subscriptions, windowed
	// aggregates and top-k monitors arrive as one Poisson process (mean
	// gap OpsGap), round-robin across the three operator kinds.
	// Subscriptions use random feature boxes, aggregates and top-k
	// monitors random sub-ranges of the stream value / feature space.
	// Implies per-stream sketches.
	Ops    bool
	OpsGap sim.Time

	// VNodes is the number of ring positions each physical node owns
	// (virtual nodes). Every position is a full overlay node; streams and
	// query origins attach to one primary position per physical node, and
	// Run.PhysOf maps every ring id back to its physical owner so load
	// reports can be aggregated per machine. Values <= 1 reproduce the
	// historical one-id-per-node runs exactly.
	VNodes int

	// Skew, when positive, switches query targeting from uniform to a
	// Zipf(Skew) rank-frequency distribution over SkewRanks hot routing
	// coordinates — the skewed millions-of-users workload of the loadskew
	// experiment. Zero (the default) keeps the Table I uniform draws,
	// bitwise unchanged.
	Skew float64
	// SkewRanks is the number of distinct hot targets (default 1024).
	SkewRanks int
}

// DefaultConfig returns the Table I workload at the given system size.
func DefaultConfig(nodes int) Config {
	return Config{
		Nodes:    nodes,
		PMin:     150 * sim.Millisecond,
		PMax:     250 * sim.Millisecond,
		QueryGap: 500 * sim.Millisecond, // 2 queries per second
		QMin:     20 * sim.Second,
		QMax:     100 * sim.Second,
		Radius:   0.1,
		Warmup:   40 * sim.Second,
		Measure:  100 * sim.Second,
		HopDelay: 50 * sim.Millisecond,
		Core:     core.DefaultConfig(),
		Seed:     1,
		OpsGap:   2 * sim.Second,
	}
}

// Validate reports a configuration error.
func (c Config) Validate() error {
	if c.Nodes < 2 {
		return fmt.Errorf("workload: %d nodes", c.Nodes)
	}
	if c.PMin <= 0 || c.PMax < c.PMin {
		return fmt.Errorf("workload: stream period bounds [%v,%v]", c.PMin, c.PMax)
	}
	if c.QueryGap <= 0 {
		return fmt.Errorf("workload: non-positive query gap")
	}
	if c.QMin <= 0 || c.QMax < c.QMin {
		return fmt.Errorf("workload: query lifespan bounds [%v,%v]", c.QMin, c.QMax)
	}
	if c.Radius < 0 || c.Radius > 1 {
		return fmt.Errorf("workload: radius %v", c.Radius)
	}
	if c.Warmup < 0 || c.Measure <= 0 {
		return fmt.Errorf("workload: warmup/measure intervals")
	}
	switch c.Substrate {
	case "", "pastry":
	default:
		if _, ok := overlay.Lookup(c.Substrate); !ok {
			return fmt.Errorf("workload: unknown substrate %q (registered machines: %s; also: pastry)",
				c.Substrate, strings.Join(overlay.Names(), ", "))
		}
	}
	if c.FailAt > 0 && c.Substrate == "pastry" {
		return fmt.Errorf("workload: failure injection requires a ring substrate with maintenance")
	}
	if c.FailAt > 0 && c.FailCount <= 0 {
		return fmt.Errorf("workload: FailAt set without FailCount")
	}
	if c.Ops && c.OpsGap <= 0 {
		return fmt.Errorf("workload: Ops set with non-positive OpsGap")
	}
	if c.VNodes < 0 {
		return fmt.Errorf("workload: negative virtual-node count %d", c.VNodes)
	}
	if c.Skew < 0 {
		return fmt.Errorf("workload: negative skew exponent %v", c.Skew)
	}
	if c.SkewRanks < 0 {
		return fmt.Errorf("workload: negative skew rank count %d", c.SkewRanks)
	}
	return c.Core.Validate()
}

// Run is a fully constructed simulation ready to execute.
type Run struct {
	Cfg Config
	Eng *sim.Engine
	Net dht.Substrate
	MW  *core.Middleware
	IDs []dht.Key

	// Primaries holds one ring id per physical node (sorted): the
	// position its stream attaches to and queries originate from. Equal
	// to IDs when VNodes <= 1.
	Primaries []dht.Key
	// PhysOf maps every ring id to its physical node index [0, Nodes).
	PhysOf map[dht.Key]int

	// Failed lists the nodes crashed by the failure-injection schedule.
	Failed []dht.Key

	queries *sim.PoissonProc
	ops     *sim.PoissonProc
}

// Build constructs the overlay, middleware, streams and query process, but
// does not execute anything yet.
func Build(cfg Config) (*Run, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg.Core.Seed = cfg.Seed
	if cfg.Ops {
		cfg.Core.Sketches = true // aggregates need the windowed sketches
	}
	eng := sim.NewEngine()
	vn := cfg.VNodes
	if vn < 1 {
		vn = 1
	}
	total := cfg.Nodes * vn
	// Physical ownership is assigned in generation order, round-robin, so
	// each physical node's vn ring positions interleave around the ring;
	// the first Nodes generated ids become the primaries (stream homes and
	// query origins). With vn == 1 every id is its own primary and the
	// construction reduces bitwise to the historical one.
	physOf := make(map[dht.Key]int, total)
	primaries := make([]dht.Key, cfg.Nodes)
	var ids []dht.Key
	if cfg.Equidistant {
		ids = chord.EquidistantIDs(cfg.Core.Space, total)
		for i, id := range ids {
			if i < cfg.Nodes {
				primaries[i] = id
			}
			physOf[id] = i % cfg.Nodes
		}
	} else {
		raw := chord.UniformIDs(cfg.Core.Space, total)
		for i, id := range raw {
			if i < cfg.Nodes {
				primaries[i] = id
			}
			physOf[id] = i % cfg.Nodes
		}
		ids = chord.SortKeys(raw)
	}
	chord.SortKeys(primaries)
	var net dht.Substrate
	var chordNet *chord.Network
	switch cfg.Substrate {
	default: // any registered ring machine over the generic substrate
		ccfg := chord.Config{
			Space:       cfg.Core.Space,
			HopDelay:    cfg.HopDelay,
			SuccListLen: 8,
			Machine:     cfg.Substrate,
			// Static experiments run without maintenance so every
			// simulated event is accounted traffic; failure injection
			// turns the self-repair protocol on.
		}
		if cfg.FailAt > 0 {
			ccfg.StabilizeEvery = 250 * sim.Millisecond
			ccfg.FixFingersEvery = 125 * sim.Millisecond
		}
		chordNet = chord.New(eng, ccfg)
		chordNet.BuildStable(ids, nil)
		net = chordNet
	case "pastry":
		pn := pastry.New(eng, pastry.Config{
			Space:    cfg.Core.Space,
			HopDelay: cfg.HopDelay,
			LeafSize: 16,
		})
		pn.BuildStable(ids, nil)
		net = pn
	}
	mw, err := core.New(net, cfg.Core)
	if err != nil {
		return nil, err
	}

	root := sim.NewRand(cfg.Seed)
	streamRng := root.Fork("streams")
	periodRng := root.Fork("periods")
	// One stream per physical node (§V: "each node is a source of exactly
	// one stream"), attached to its primary ring position.
	for i, id := range primaries {
		gen := stream.DefaultRandomWalk(streamRng.Fork(fmt.Sprintf("walk-%d", i)))
		st := stream.Stream{
			ID:      fmt.Sprintf("stream-%d", i),
			Gen:     gen,
			Period:  periodRng.UniformTime(cfg.PMin, cfg.PMax),
			Prefill: true, // streams predate the deployment (§V warm-up)
		}
		if err := mw.DataCenter(id).RegisterStream(st); err != nil {
			return nil, err
		}
	}

	r := &Run{Cfg: cfg, Eng: eng, Net: net, MW: mw, IDs: ids, Primaries: primaries, PhysOf: physOf}

	// Failure injection: crash FailCount random nodes at warm-up +
	// FailAt; the ring repairs itself through stabilization while the
	// workload keeps running.
	if cfg.FailAt > 0 {
		failRng := root.Fork("failures")
		eng.ScheduleAt(cfg.Warmup+cfg.FailAt, func() {
			for i := 0; i < cfg.FailCount; i++ {
				victims := chordNet.NodeIDs()
				if len(victims) <= 2 {
					break
				}
				v := victims[failRng.Intn(len(victims))]
				chordNet.Fail(v)
				r.Failed = append(r.Failed, v)
			}
		})
	}

	// Query process: Poisson arrivals at random physical nodes with
	// uniform lifespans. The routing coordinate is uniform by default; a
	// positive Skew draws it from a Zipf rank-frequency distribution over
	// a fixed set of hot coordinates instead.
	var zipf *Zipf
	if cfg.Skew > 0 {
		ranks := cfg.SkewRanks
		if ranks <= 0 {
			ranks = DefaultSkewRanks
		}
		zipf = NewZipf(cfg.Skew, ranks)
	}
	queryRng := root.Fork("queries")
	r.queries = eng.Poisson(queryRng, cfg.QueryGap, func() {
		origin := primaries[queryRng.Intn(len(primaries))]
		f := make(summary.Feature, cfg.Core.FeatureDims)
		if zipf != nil {
			f[0] = zipf.Coord(zipf.Sample(queryRng))
		} else {
			f[0] = queryRng.Uniform(-1, 1)
		}
		for d := 1; d < len(f); d++ {
			f[d] = queryRng.Uniform(-0.3, 0.3)
		}
		life := queryRng.UniformTime(cfg.QMin, cfg.QMax)
		// Post errors cannot occur for well-formed generated queries.
		if _, err := mw.PostSimilarity(origin, f, cfg.Radius, life); err != nil {
			panic(fmt.Sprintf("workload: generated query rejected: %v", err))
		}
	})

	// Continuous-query operators: one Poisson process, round-robin over
	// subscription / aggregate / top-k so every operator kind sees
	// arrivals at a third of the rate.
	if cfg.Ops {
		opsRng := root.Fork("ops")
		dims := cfg.Core.FeatureDims
		kind := 0
		r.ops = eng.Poisson(opsRng, cfg.OpsGap, func() {
			origin := primaries[opsRng.Intn(len(primaries))]
			life := opsRng.UniformTime(cfg.QMin, cfg.QMax)
			var err error
			switch kind % 3 {
			case 0:
				// Random feature box: center anywhere in the normalized
				// coefficient range, half-width 0.05-0.3 per dimension.
				lo := make(summary.Feature, dims)
				hi := make(summary.Feature, dims)
				for d := range lo {
					c := opsRng.Uniform(-1, 1)
					w := opsRng.Uniform(0.05, 0.3)
					lo[d], hi[d] = c-w, c+w
				}
				_, err = mw.PostSubscription(origin, lo, hi, life)
			case 1:
				// Random routing-coordinate sub-range: sketches are
				// replicated over their MBR's coordinate range, so the
				// query range lives in the same normalized space.
				lo := opsRng.Uniform(-1, 0.7)
				_, err = mw.PostAggregate(origin, lo, lo+opsRng.Uniform(0.1, 0.3), life)
			case 2:
				// Random feature sub-range for the frequency monitor.
				lo := opsRng.Uniform(-1, 0.5)
				_, err = mw.PostTopK(origin, 1+opsRng.Intn(5), lo, lo+opsRng.Uniform(0.2, 0.5), life)
			}
			if err != nil {
				panic(fmt.Sprintf("workload: generated operator rejected: %v", err))
			}
			kind++
		})
	}
	return r, nil
}

// Execute runs warm-up, resets the collector, runs the measurement
// interval and returns the traffic report.
func (r *Run) Execute() *metrics.Report {
	r.Eng.RunFor(r.Cfg.Warmup)
	r.MW.Collector().Reset(r.Eng.Now())
	r.Eng.RunFor(r.Cfg.Measure)
	rep := r.MW.Collector().Snapshot(r.Eng.Now(), r.IDs)
	rep.EngineEvents = r.Eng.Executed()
	return rep
}

// Stop halts the query arrival process (used when a caller wants to keep
// simulating without new queries).
func (r *Run) Stop() {
	r.queries.Stop()
	if r.ops != nil {
		r.ops.Stop()
	}
}

// Queries returns the number of queries posted so far.
func (r *Run) Queries() uint64 { return r.queries.Fires() }

// CQEOps returns the number of continuous-query operators posted so far
// (zero when the Ops workload is disabled).
func (r *Run) CQEOps() uint64 {
	if r.ops == nil {
		return 0
	}
	return r.ops.Fires()
}

// RunOnce builds and executes a workload in one call.
func RunOnce(cfg Config) (*metrics.Report, error) {
	r, err := Build(cfg)
	if err != nil {
		return nil, err
	}
	return r.Execute(), nil
}
