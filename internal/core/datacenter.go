package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"streamdex/internal/clock"
	"streamdex/internal/cqe"
	"streamdex/internal/dht"
	"streamdex/internal/dsp"
	"streamdex/internal/metrics"
	"streamdex/internal/query"
	"streamdex/internal/sim"
	"streamdex/internal/stream"
	"streamdex/internal/summary"
)

// DataCenter is the middleware instance running on one overlay node — a
// sensor proxy / base station in the paper's architecture. It implements
// dht.App.
//
// Concurrency: under the simulator every method runs on the single event
// loop and the locks below are uncontended formality. On the live
// transport the node's worker pool calls the *data plane* concurrently —
// DeliverData for MBR publishes and query evaluations, ingest closures for
// stream ticks — while everything else (notify absorption, aggregators,
// the location service, response pushes) stays confined to the run loop.
// The shared state those two planes touch is the sharded store (internally
// locked), the subscription table (subMu), each subscription's detection
// state (simSub.mu) and each local stream's summary pipeline
// (localStream.mu).
type DataCenter struct {
	id dht.Key
	mw *Middleware

	// streams this node is the source of. The map itself is loop-confined
	// (registration and lookups); each stream's pipeline state is guarded
	// by its own mutex for pool ingest.
	streams map[string]*localStream

	// store is the index partition: MBRs this node covers by content.
	store *Store

	// subs are the similarity subscriptions whose key range covers this
	// node, guarded by subMu: workers register subscriptions and match new
	// MBRs against them while the loop sweeps and flushes.
	subMu sync.RWMutex
	subs  map[query.ID]*simSub

	// aggs are the queries for which this node is the middle node.
	// Loop-confined: aggregation is control-plane work (notify absorption,
	// periodic response pushes).
	aggs map[query.ID]*aggregator

	// ipSubs are inner-product subscriptions on local streams.
	ipSubs map[query.ID]*ipSubState

	// locTable is this node's partition of the location service
	// (stream id -> source node for ids hashing here); locCache caches
	// resolutions this node obtained as a client ("remembers the mapping
	// so that next time it does not need to retrieve it").
	locTable map[string]dht.Key
	locCache map[string]dht.Key
	// pendingIP holds inner-product queries awaiting location
	// resolution.
	pendingIP map[string][]*query.InnerProduct

	// relay buffers notify items received from neighbors, to be moved
	// one further ring hop toward their middle node on the next period.
	relay []NotifyItem

	// matchScratch recycles candidate-walk buffers. Each walk takes its
	// own, so concurrent query evaluations never share the old single
	// dc.scratch slice.
	matchScratch sync.Pool

	// pool is the substrate's data-plane executor (nil under the
	// simulator); poster posts worker-discovered control work — aggregator
	// installation — back to the loop.
	pool   dht.Pool
	poster interface{ Post(func()) bool }

	// engine is the continuous-query operator registry all non-MBR
	// message kinds dispatch through; the typed references let the
	// middleware reach operator-specific entry points (registration,
	// sketch publication) without downcasts.
	engine *cqe.Engine
	opSim  *simOp
	opIP   *ipOp
	opSub  *subOp
	opAgg  *aggOp
	opTopK *topkOp
	opRep  *repOp

	// delivered counts every data-plane upcall at this node; the replica
	// operator samples it per push period into the load rate it gossips.
	delivered atomic.Int64

	// Admission control (Config.AdmitRate > 0): a token bucket charged one
	// token per MBR/replica store operation. admitShed counts sheds for
	// metrics.DataPlane.
	admitMu     sync.Mutex
	admitTokens float64
	admitLast   sim.Time
	admitSeeded bool
	admitShed   atomic.Int64

	ticker clock.Ticker
}

// localStream is one stream this data center sources. mu guards the
// summary pipeline (generator, sliding DFT, batcher): pool ingest advances
// it while the loop reads windows, features and coefficients.
type localStream struct {
	st stream.Stream

	mu      sync.Mutex
	sdft    *dsp.SlidingDFT
	batcher *summary.Batcher
	// sketch is the stream's windowed value sketch (nil unless
	// Config.Sketches), advanced by ingest and snapshotted at each MBR
	// publication.
	sketch *summary.Sketch

	ticker clock.Ticker
}

func newDataCenter(id dht.Key, mw *Middleware) *DataCenter {
	// A substrate without a data-plane pool (the simulator) runs every
	// store access on one goroutine, so it gets the exclusive in-place
	// store — no copy-on-write churn in virtual-time runs. Substrates that
	// can run data frames concurrently (the live transport, even when
	// configured to serialize) get lock-free published snapshots.
	store := NewStore()
	if _, ok := mw.net.(dht.PoolProvider); ok {
		store = NewShardedStore(mw.cfg.StoreShards)
	}
	dc := &DataCenter{
		id:        id,
		mw:        mw,
		streams:   make(map[string]*localStream),
		store:     store,
		subs:      make(map[query.ID]*simSub),
		aggs:      make(map[query.ID]*aggregator),
		ipSubs:    make(map[query.ID]*ipSubState),
		locTable:  make(map[string]dht.Key),
		locCache:  make(map[string]dht.Key),
		pendingIP: make(map[string][]*query.InnerProduct),
	}
	dc.engine = newEngine(dc)
	return dc
}

// ID returns the data center's overlay identifier.
func (dc *DataCenter) ID() dht.Key { return dc.id }

// Store exposes the index partition (read-mostly; used by tests and the
// hierarchy extension).
func (dc *DataCenter) Store() *Store { return dc.store }

// SubCount returns the number of similarity subscriptions registered here.
// Safe from any goroutine.
func (dc *DataCenter) SubCount() int {
	dc.subMu.RLock()
	defer dc.subMu.RUnlock()
	return len(dc.subs)
}

// HasAggregator reports whether this node is the middle node of the query.
func (dc *DataCenter) HasAggregator(id query.ID) bool {
	_, ok := dc.aggs[id]
	return ok
}

// StreamIDs lists the streams sourced here.
func (dc *DataCenter) StreamIDs() []string {
	out := make([]string, 0, len(dc.streams))
	for sid := range dc.streams {
		out = append(out, sid)
	}
	return out
}

// StreamWindow returns a copy of the stream's current raw window (ground
// truth for tests), or nil when unknown or not yet full.
func (dc *DataCenter) StreamWindow(sid string) []float64 {
	ls := dc.streams[sid]
	if ls == nil {
		return nil
	}
	ls.mu.Lock()
	defer ls.mu.Unlock()
	if !ls.sdft.Full() {
		return nil
	}
	return ls.sdft.Window()
}

// StreamFeature returns the stream's current feature vector, or nil before
// the window fills.
func (dc *DataCenter) StreamFeature(sid string) summary.Feature {
	ls := dc.streams[sid]
	if ls == nil {
		return nil
	}
	ls.mu.Lock()
	defer ls.mu.Unlock()
	if !ls.sdft.Full() {
		return nil
	}
	cfg := dc.mw.cfg
	return summary.FromCoeffs(ls.sdft.NormalizedCoeffs(cfg.Norm), cfg.FeatureDims, cfg.skipDC())
}

// alive reports whether the underlying overlay node is up.
func (dc *DataCenter) alive() bool {
	return dc.mw.net.Alive(dc.id)
}

// RegisterStream makes this data center the source of st: new values are
// summarized incrementally on the stream's period, batched into MBRs and
// routed by content; the (sid -> source) pair is "put" into the location
// service at h2(sid) (§IV-D).
func (dc *DataCenter) RegisterStream(st stream.Stream) error {
	if err := st.Validate(); err != nil {
		return err
	}
	if _, dup := dc.streams[st.ID]; dup {
		return fmt.Errorf("core: stream %q already registered at node %d", st.ID, dc.id)
	}
	cfg := dc.mw.cfg
	ls := &localStream{
		st:      st,
		sdft:    dsp.NewSlidingDFT(cfg.WindowSize, cfg.Coeffs),
		batcher: summary.NewBatcher(st.ID, cfg.Beta),
	}
	if cfg.Sketches {
		window, k, bands, lo, hi := cfg.sketchParams()
		ls.sketch = summary.NewSketch(window, k, bands, lo, hi)
	}
	dc.streams[st.ID] = ls
	if st.Prefill {
		// Prime the window with pre-deployment history; summaries are
		// not published for it (the index starts at the first live
		// value), but the first live value immediately yields a
		// feature. The window advances by a full window's worth of
		// points here, so the batch push path amortizes the transform
		// bookkeeping.
		hist := make([]float64, cfg.WindowSize)
		for i := range hist {
			hist[i] = st.Gen.Next()
		}
		ls.sdft.PushBatch(hist)
	}
	phase := dc.mw.rng.UniformTime(0, st.Period)
	ls.ticker = dc.mw.clk.EveryAfter(phase, st.Period, func() { dc.streamTick(ls) })

	// Location-service registration.
	key := dc.mw.locKey(st.ID)
	msg := sized(&dht.Message{Kind: KindLocPut, Payload: LocPut{StreamID: st.ID, Source: dc.id}})
	dc.mw.net.Send(dc.id, key, msg)
	return nil
}

// streamTick fires on the loop once per stream period. With a data-plane
// pool the summary advance runs on a worker (multi-stream ingest becomes
// parallel); without one — or when the pool is momentarily full — it runs
// inline, exactly the historical path.
func (dc *DataCenter) streamTick(ls *localStream) {
	if !dc.alive() {
		ls.ticker.Stop()
		return
	}
	if dc.pool != nil && dc.pool.TrySubmit(func() { dc.ingest(ls) }) {
		return
	}
	dc.ingest(ls)
}

// ingest advances one stream by one value: generator, sliding DFT, batcher,
// and — when a batch closes — MBR publication. The per-stream mutex keeps
// ingest, inner-product reconstruction and test reads coherent; publishMBR
// runs outside it (it takes the store and subscription locks).
func (dc *DataCenter) ingest(ls *localStream) {
	cfg := dc.mw.cfg
	ls.mu.Lock()
	v := ls.st.Gen.Next()
	ls.sdft.Push(v)
	if ls.sketch != nil {
		ls.sketch.Add(dc.mw.clk.Now(), v)
	}
	if !ls.sdft.Full() {
		ls.mu.Unlock()
		return
	}
	f := summary.FromCoeffs(ls.sdft.NormalizedCoeffs(cfg.Norm), cfg.FeatureDims, cfg.skipDC())
	mbr := ls.batcher.Add(f)
	var sk *summary.Sketch
	if mbr != nil && ls.sketch != nil {
		sk = ls.sketch.Clone()
	}
	ls.mu.Unlock()
	if mbr != nil {
		dc.publishMBR(mbr)
		if sk != nil {
			dc.opAgg.publishLocal(ls.st.ID, mbr, sk)
		}
	}
}

// publishMBR stamps, stores, matches and routes a finished MBR by content
// (§IV-G): it is replicated at every node that succeeds a key in
// [h(L1), h(H1)].
func (dc *DataCenter) publishMBR(b *summary.MBR) {
	now := dc.mw.clk.Now()
	b.Created = now
	b.Expiry = now + dc.mw.cfg.MBRLifespan
	dc.mw.col.CountEvent(metrics.EventMBR)

	// The summary is also stored locally (§IV-A) and fanned out to the
	// operators registered on this node (similarity matching, predicate
	// subscriptions, frequency monitors).
	dc.store.Put(b)
	dc.engine.OnMBR(dc, b)
	if dc.mw.cfg.Replicas > 1 {
		// Remember the live summary for periodic republish: replica sets
		// re-home after churn within one push period.
		dc.opRep.noteLocal(b)
	}

	lo, hi := b.KeyRange(dc.mw.mapper)
	msg := sized(&dht.Message{Kind: KindMBR, Payload: MBRUpdate{MBR: b}})
	dht.SendRange(dc.mw.net, dc.id, lo, hi, msg, dc.mw.cfg.RangeMode)
}

// matchNewMBR tests a just-arrived MBR against every registered
// subscription. Runs under the subscription read lock so it can execute on
// any number of workers at once; simSub.add serializes per subscription.
func (dc *DataCenter) matchNewMBR(b *summary.MBR) {
	now := dc.mw.clk.Now()
	dc.subMu.RLock()
	defer dc.subMu.RUnlock()
	for _, sub := range dc.subs {
		if now >= sub.q.Expiry() {
			continue
		}
		if d, ok := MatchMBR(b, sub.q.Feature, sub.q.Radius); ok {
			sub.add(query.Match{
				StreamID: b.StreamID,
				Seq:      b.Seq,
				DistLB:   d,
				FoundAt:  now,
				Node:     dc.id,
			})
		}
	}
}

// Deliver implements dht.App: the application upcall of the content-based
// routing substrate, on the substrate's loop. KindMBR — the index write
// path every operator observes — is handled natively; every other kind
// dispatches through the operator registry.
func (dc *DataCenter) Deliver(self dht.Key, msg *dht.Message) {
	dc.delivered.Add(1)
	if msg.Kind == KindMBR {
		dc.onMBR(msg)
		return
	}
	if !dc.engine.Deliver(dc, msg) {
		dc.mw.unclassified++
	}
}

// DeliverData implements dht.ConcurrentApp: the data-plane upcall a
// substrate's worker pool makes. MBR publishes are absorbed natively;
// each operator decides which of its kinds are worker-safe. Anything
// declined reports false and the substrate posts Deliver onto its loop.
func (dc *DataCenter) DeliverData(self dht.Key, msg *dht.Message) bool {
	dc.delivered.Add(1)
	if msg.Kind == KindMBR {
		dc.onMBR(msg)
		return true
	}
	return dc.engine.DeliverData(dc, msg)
}

// onMBR stores a replicated summary, matches it, and keeps the range
// multicast going. Safe on loop and workers alike: the store and the
// subscription table carry their own locks, and range continuation on the
// live transport routes against the lock-free ring view.
func (dc *DataCenter) onMBR(msg *dht.Message) {
	b := msg.Payload.(MBRUpdate).MBR
	live := !b.Expired(dc.mw.clk.Now())
	if live && dc.admit() {
		dc.store.Put(b)
		dc.engine.OnMBR(dc, b)
	}
	legs := dht.ContinueRange(dc.mw.net, dc.id, msg)
	// Replica tail: the last natural coverer of a sequential-mode range
	// (no forward continuation left) walks the summary down Replicas-1
	// further successors, so every stored MBR is held by R ring-adjacent
	// nodes and the strided query walk sees it (§ DESIGN.md 15).
	if live && legs == 0 && dc.mw.cfg.Replicas > 1 &&
		msg.Mode == dht.RangeSequential && msg.Dir >= 0 {
		dc.opRep.sendTail(b)
	}
}

// admit charges the admission token bucket for one data-plane store
// operation. Always true with admission control off (the default). Sheds
// are counted, never blocked on: soft state repairs itself on the next
// republish cycle.
func (dc *DataCenter) admit() bool {
	cfg := dc.mw.cfg
	if cfg.AdmitRate <= 0 {
		return true
	}
	now := dc.mw.clk.Now()
	dc.admitMu.Lock()
	if !dc.admitSeeded {
		dc.admitTokens = cfg.AdmitBurst
		dc.admitLast = now
		dc.admitSeeded = true
	}
	if now > dc.admitLast {
		dc.admitTokens += cfg.AdmitRate * (float64(now-dc.admitLast) / float64(sim.Second))
		if dc.admitTokens > cfg.AdmitBurst {
			dc.admitTokens = cfg.AdmitBurst
		}
		dc.admitLast = now
	}
	if dc.admitTokens >= 1 {
		dc.admitTokens--
		dc.admitMu.Unlock()
		return true
	}
	dc.admitMu.Unlock()
	dc.admitShed.Add(1)
	return false
}

// AdmitShedCount returns the number of ingest operations shed by admission
// control since node start. Safe from any goroutine.
func (dc *DataCenter) AdmitShedCount() int64 { return dc.admitShed.Load() }

// handleQuery registers a similarity subscription at a covering node, scans
// the local index for immediate candidates, installs the aggregator when
// this node covers the middle key, and continues the range multicast.
// onLoop distinguishes the serialized path (simulator, pool-less node) from
// a pool worker.
//
// Ordering fence: the subscription is registered *before* the store walk,
// and publishers insert into the store *before* matching subscriptions
// (publishMBR/onMBR). Any MBR concurrent with this query is therefore seen
// at least once — by the walk if its Put completed first, by the
// publisher's matchNewMBR otherwise (which finds the already-registered
// subscription) — and at most counted once, since simSub.add deduplicates
// by (stream, seq). The QUERY candidate-set semantics are exactly the
// serialized ones.
func (dc *DataCenter) handleQuery(msg *dht.Message, onLoop bool) {
	p := msg.Payload.(SimQuery)
	r := dc.mw.cfg.Replicas
	// Replica-aware read balancing: the first coverer of a query range
	// picks one of the R replicas by power-of-two-choices over the
	// gossiped load view and hands the query — middle key rewritten to the
	// chosen node so registration, aggregation and response pushes all
	// move with it — directly to that ring neighbor. A rewritten middle
	// key equal to the receiving node's own id marks the choice as already
	// made, so the handoff is applied at most once.
	if r > 1 && msg.Dir == 0 && msg.Mode == dht.RangeSequential && p.MiddleKey != dc.id {
		if rn, ok := dc.mw.net.(dht.RingNeighbors); ok {
			if off := dc.opRep.pickOffset(uint64(p.Q.ID)); off > 0 {
				if succs := rn.Successors(dc.id, off); len(succs) >= off {
					target := succs[off-1]
					c := msg.Clone()
					c.Payload = SimQuery{Q: p.Q, MiddleKey: target}
					rn.SendToNode(dc.id, target, sized(c))
					return
				}
			}
			// Offset 0 (or a successor list too short to jump): this node
			// is the chosen replica and aggregates locally.
			p = SimQuery{Q: p.Q, MiddleKey: dc.id}
			msg.Payload = p
			sized(msg)
		}
	}
	now := dc.mw.clk.Now()
	if now < p.Q.Expiry() {
		dc.subMu.Lock()
		sub := dc.subs[p.Q.ID]
		fresh := sub == nil
		if fresh {
			sub = newSimSub(p.Q, p.MiddleKey)
			dc.subs[p.Q.ID] = sub
		}
		dc.subMu.Unlock()
		if fresh {
			scratch, _ := dc.matchScratch.Get().(*[]query.Match)
			if scratch == nil {
				scratch = new([]query.Match)
			}
			*scratch = dc.store.AppendCandidates((*scratch)[:0], p.Q.Feature, p.Q.Radius, now, dc.id)
			sub.addAll(*scratch)
			dc.matchScratch.Put(scratch)
			if dc.mw.net.Covers(dc.id, p.MiddleKey) {
				if onLoop {
					dc.installAggregator(p.Q.ID, p.Q.Origin, p.Q.Expiry())
				} else {
					// Aggregators are loop state; a worker hands the
					// installation back. If the post races shutdown, the
					// adaptive path in absorbOrRelay re-creates the
					// aggregator from the first notify item.
					dc.poster.Post(func() { dc.installAggregator(p.Q.ID, p.Q.Origin, p.Q.Expiry()) })
				}
			}
		}
	}
	if r > 1 {
		// Replicated deployment: stride over the covering range — each
		// landing holds the skipped nodes' summaries as replicas.
		dht.ContinueRangeStrided(dc.mw.net, dc.id, msg, r)
		return
	}
	dht.ContinueRange(dc.mw.net, dc.id, msg)
}

// installAggregator makes this node the middle node of the query. Loop
// context.
func (dc *DataCenter) installAggregator(id query.ID, client dht.Key, expiry sim.Time) {
	if _, ok := dc.aggs[id]; !ok {
		dc.aggs[id] = newAggregator(id, client, expiry)
	}
}

// onNotify absorbs items destined for this node's aggregators and buffers
// the rest for the next relay period.
func (dc *DataCenter) onNotify(msg *dht.Message) {
	p := msg.Payload.(NotifyBatch)
	for _, item := range p.Items {
		dc.absorbOrRelay(item)
	}
}

func (dc *DataCenter) absorbOrRelay(item NotifyItem) {
	now := dc.mw.clk.Now()
	if now >= sim.Time(item.Expiry) {
		return // stale query: drop
	}
	if dc.mw.net.Covers(dc.id, item.MiddleKey) {
		agg := dc.aggs[item.QueryID]
		if agg == nil {
			// Ring ownership shifted (churn): adopt the aggregation
			// duty; the item carries everything needed.
			agg = newAggregator(item.QueryID, item.ClientKey, sim.Time(item.Expiry))
			dc.aggs[item.QueryID] = agg
		}
		agg.absorb(item.Matches)
		return
	}
	dc.relay = append(dc.relay, item)
}

// onLocGet answers a location-service lookup.
func (dc *DataCenter) onLocGet(msg *dht.Message) {
	p := msg.Payload.(LocGet)
	src, found := dc.locTable[p.StreamID]
	reply := sized(&dht.Message{Kind: KindLocReply, Payload: LocReply{StreamID: p.StreamID, Source: src, Found: found}})
	dc.mw.net.Send(dc.id, p.Requester, reply)
}

// onLocReply caches the resolution and dispatches the inner-product
// queries that were waiting for it.
func (dc *DataCenter) onLocReply(msg *dht.Message) {
	p := msg.Payload.(LocReply)
	waiting := dc.pendingIP[p.StreamID]
	delete(dc.pendingIP, p.StreamID)
	if !p.Found {
		dc.mw.failIP(waiting)
		return
	}
	dc.locCache[p.StreamID] = p.Source
	for _, q := range waiting {
		dc.sendIPSub(p.Source, q)
	}
}

func (dc *DataCenter) sendIPSub(source dht.Key, q *query.InnerProduct) {
	// A subscription on a locally sourced stream needs no network trip.
	if source == dc.id {
		dc.registerIPSub(q)
		return
	}
	msg := sized(&dht.Message{Kind: KindIPSub, Payload: IPSub{Q: q}})
	dc.mw.net.Send(dc.id, source, msg)
}

// onIPSub registers an inner-product subscription at the stream source.
func (dc *DataCenter) onIPSub(msg *dht.Message) {
	dc.registerIPSub(msg.Payload.(IPSub).Q)
}

func (dc *DataCenter) registerIPSub(q *query.InnerProduct) {
	if _, local := dc.streams[q.StreamID]; !local {
		dc.mw.failIP([]*query.InnerProduct{q})
		return
	}
	dc.ipSubs[q.ID] = &ipSubState{q: q}
}

// startTicker launches the periodic push/sweep process (NPER).
func (dc *DataCenter) startTicker() {
	period := dc.mw.cfg.PushPeriod
	phase := dc.mw.rng.UniformTime(0, period)
	dc.ticker = dc.mw.clk.EveryAfter(phase, period, dc.periodTick)
}

// periodTick runs once per push period: sweep the store, then run every
// operator's periodic slice — sweeping its soft state, funneling
// similarity information one hop toward middle nodes, pushing aggregated
// responses, inner-product values, subscription matches, sketch reports
// and frequency tables, and refreshing standing registrations.
func (dc *DataCenter) periodTick() {
	if !dc.alive() {
		dc.ticker.Stop()
		return
	}
	now := dc.mw.clk.Now()
	dc.store.Sweep(now)
	dc.engine.Tick(dc, now)
}

// flushNotifies sends at most one KindNotify per ring direction, carrying
// the aggregated similarity information of all local subscriptions plus
// relayed items, one hop toward the respective middle nodes (§IV-F). The
// periodic per-direction message is sent whenever the node participates in
// at least one query range in that direction, matching the constant
// neighbor-exchange load component of Fig. 6(a).
func (dc *DataCenter) flushNotifies(now sim.Time) {
	var toSucc, toPred []NotifyItem
	dirSucc, dirPred := false, false

	bucket := func(item NotifyItem) {
		if dc.toSuccessor(item.MiddleKey) {
			toSucc = append(toSucc, item)
		} else {
			toPred = append(toPred, item)
		}
	}

	for _, item := range dc.relay {
		if now >= sim.Time(item.Expiry) {
			continue
		}
		bucket(item)
	}
	dc.relay = nil

	// The read lock keeps worker-side registrations out of the iteration;
	// per-subscription pending sets drain through their own mutex.
	dc.subMu.RLock()
	for id, sub := range dc.subs {
		if now >= sub.q.Expiry() {
			continue
		}
		pending := sub.takePending()
		if dc.mw.net.Covers(dc.id, sub.middleKey) {
			// This node is the middle node: its own candidates go
			// straight into the aggregator.
			if agg := dc.aggs[id]; agg != nil {
				agg.absorb(pending)
			}
			continue
		}
		// Participating in the range keeps the periodic heartbeat
		// flowing in this direction even with nothing detected.
		if dc.toSuccessor(sub.middleKey) {
			dirSucc = true
		} else {
			dirPred = true
		}
		if len(pending) == 0 {
			continue
		}
		bucket(NotifyItem{
			QueryID:   id,
			MiddleKey: sub.middleKey,
			ClientKey: sub.q.Origin,
			Expiry:    int64(sub.q.Expiry()),
			Matches:   pending,
		})
	}
	dc.subMu.RUnlock()

	if len(toSucc) > 0 || dirSucc {
		msg := sized(&dht.Message{Kind: KindNotify, Src: dc.id, SentAt: now, Payload: NotifyBatch{Items: toSucc}})
		dc.mw.net.SendToSuccessor(dc.id, msg)
	}
	if len(toPred) > 0 || dirPred {
		msg := sized(&dht.Message{Kind: KindNotify, Src: dc.id, SentAt: now, Payload: NotifyBatch{Items: toPred}})
		dc.mw.net.SendToPredecessor(dc.id, msg)
	}
}

// toSuccessor reports whether the middle key is reached faster clockwise.
func (dc *DataCenter) toSuccessor(middle dht.Key) bool {
	sp := dc.mw.net.Space()
	return sp.Distance(dc.id, middle) <= sp.Distance(middle, dc.id)
}

// pushResponses sends each aggregator's periodic response to its client —
// one message per active query per period, so the total response rate is
// linearly proportional to the number of queries (§V).
func (dc *DataCenter) pushResponses(now sim.Time) {
	for id, agg := range dc.aggs {
		if now >= agg.expiry {
			continue
		}
		dc.mw.col.CountEvent(metrics.EventResponse)
		payload := ResponseMsg{QueryID: id, Matches: agg.takePending()}
		if agg.client == dc.id {
			// Client co-located with the middle node: local delivery.
			dc.mw.deliverSimilarity(dc.id, payload)
			continue
		}
		msg := sized(&dht.Message{Kind: KindResponse, Payload: payload})
		dc.mw.net.Send(dc.id, agg.client, msg)
	}
}

// pushInnerProducts reconstructs each subscribed stream from its retained
// coefficients (inverse transform, Eq. 7) and pushes the weighted inner
// product to the client (§IV-D).
func (dc *DataCenter) pushInnerProducts(now sim.Time) {
	for id, st := range dc.ipSubs {
		ls := dc.streams[st.q.StreamID]
		if ls == nil {
			continue
		}
		// Hold the stream lock through reconstruction: Coeffs returns live
		// pipeline state a pool ingest may be advancing.
		ls.mu.Lock()
		if !ls.sdft.Full() {
			ls.mu.Unlock()
			continue
		}
		approx := dsp.Reconstruct(ls.sdft.Coeffs(), dc.mw.cfg.WindowSize)
		ls.mu.Unlock()
		var v float64
		for j, idx := range st.q.Index {
			if idx >= len(approx) {
				continue // window shorter than the index vector assumes
			}
			v += st.q.Weights[j] * approx[idx]
		}
		payload := IPResp{QueryID: id, Value: query.IPValue{Value: v, At: now, Approx: true}}
		if st.q.Origin == dc.id {
			dc.mw.deliverIP(dc.id, payload)
			continue
		}
		msg := sized(&dht.Message{Kind: KindIPResp, Payload: payload})
		dc.mw.net.Send(dc.id, st.q.Origin, msg)
	}
}
