package core

import (
	"fmt"
	"testing"

	"streamdex/internal/dht"
	"streamdex/internal/query"
	"streamdex/internal/sim"
	"streamdex/internal/summary"
	"streamdex/internal/wire"
)

// renderPayload stringifies a payload through its pointees, so two decodes
// compare by content rather than by pointer identity.
func renderPayload(p any) string {
	switch v := p.(type) {
	case MBRUpdate:
		if v.MBR == nil {
			return "MBRUpdate{nil}"
		}
		return fmt.Sprintf("MBRUpdate{%+v}", *v.MBR)
	case SimQuery:
		if v.Q == nil {
			return fmt.Sprintf("SimQuery{middle=%d nil}", v.MiddleKey)
		}
		return fmt.Sprintf("SimQuery{middle=%d %+v}", v.MiddleKey, *v.Q)
	}
	return fmt.Sprintf("%+v", p)
}

// TestArenaDecodeMatchesPlainDecode: the arena path must be a pure
// placement optimization — for every data-plane payload kind, decoding a
// frame through UnmarshalArena yields a message semantically identical to
// the plain Unmarshal result, and the decoded objects never alias the
// frame buffer.
func TestArenaDecodeMatchesPlainDecode(t *testing.T) {
	payloads := []any{
		MBRUpdate{MBR: &summary.MBR{
			Lo: summary.Feature{0.1, -0.2, 0.3}, Hi: summary.Feature{0.2, -0.1, 0.4},
			StreamID: "stream-7", Seq: 42, Count: 25, Created: 100, Expiry: 5_000_100,
		}},
		MBRUpdate{},
		SimQuery{MiddleKey: 99, Q: &query.Similarity{
			ID: 3, Origin: 17, Feature: summary.Feature{0.5, 0.6}, Radius: 0.25,
			Posted: 7, Lifespan: 1000,
		}},
		SimQuery{MiddleKey: 12},
	}
	a := wire.NewArena(nil)
	for i, p := range payloads {
		msg := &dht.Message{Kind: KindMBR, Key: 5, Src: 6, Payload: p, SentAt: sim.Time(i)}
		frame, err := wire.Marshal(msg)
		if err != nil {
			t.Fatalf("payload %d: marshal: %v", i, err)
		}
		plain, err := wire.Unmarshal(frame)
		if err != nil {
			t.Fatalf("payload %d: plain unmarshal: %v", i, err)
		}
		arena, err := wire.UnmarshalArena(frame, a)
		if err != nil {
			t.Fatalf("payload %d: arena unmarshal: %v", i, err)
		}
		if got, want := renderPayload(arena.Payload), renderPayload(plain.Payload); got != want {
			t.Fatalf("payload %d diverged:\nplain %s\narena %s", i, want, got)
		}
		if plain.Kind != arena.Kind || plain.Key != arena.Key || plain.Src != arena.Src ||
			plain.Bytes != arena.Bytes || plain.SentAt != arena.SentAt {
			t.Fatalf("payload %d: envelopes diverged:\nplain %+v\narena %+v", i, plain, arena)
		}
		// Corrupt the frame: decoded objects must be unaffected (no alias).
		before := renderPayload(arena.Payload)
		for j := wire.HeaderBytes; j < len(frame); j++ {
			frame[j] = 0xFF
		}
		if after := renderPayload(arena.Payload); after != before {
			t.Fatalf("payload %d aliases the frame buffer:\nbefore %s\nafter  %s", i, before, after)
		}
	}
}

// TestArenaDecodeInternsStreamIDs: repeated stream ids must collapse to
// one shared string via the arena's intern table.
func TestArenaDecodeInternsStreamIDs(t *testing.T) {
	a := wire.NewArena(nil)
	var ids []string
	for i := 0; i < 3; i++ {
		b := &summary.MBR{Lo: summary.Feature{0.1}, Hi: summary.Feature{0.2},
			StreamID: "same-stream", Seq: uint64(i)}
		frame, err := wire.Marshal(&dht.Message{Kind: KindMBR, Payload: MBRUpdate{MBR: b}})
		if err != nil {
			t.Fatal(err)
		}
		msg, err := wire.UnmarshalArena(frame, a)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, msg.Payload.(MBRUpdate).MBR.StreamID)
	}
	st := a.Stats().Load()
	if st.InternHits < 2 {
		t.Fatalf("intern hits = %d, want >= 2 (stats %+v)", st.InternHits, st)
	}
	for _, id := range ids {
		if id != "same-stream" {
			t.Fatalf("interned id corrupted: %q", id)
		}
	}
}

// TestArenaDecodeZeroAllocAmortized is the decode-path alloc guard: with a
// warm arena, decoding an MBR frame must cost (amortized) well under one
// heap allocation — chunk refills happen once per hundreds of frames, and
// everything else is bump-pointer carving. The plain path costs ~5 objects
// per frame; the budget below fails if the arena path regresses toward it.
func TestArenaDecodeZeroAllocAmortized(t *testing.T) {
	b := &summary.MBR{
		Lo: summary.Feature{0.1, -0.2, 0.3}, Hi: summary.Feature{0.2, -0.1, 0.4},
		StreamID: "alloc-guard-stream", Seq: 1, Count: 25, Created: 0, Expiry: 5_000_000,
	}
	frame, err := wire.Marshal(&dht.Message{Kind: KindMBR, Payload: MBRUpdate{MBR: b}})
	if err != nil {
		t.Fatal(err)
	}
	a := wire.NewArena(nil)
	// Warm: populate the intern table and the first chunks.
	for i := 0; i < 10; i++ {
		if _, err := wire.UnmarshalArena(frame, a); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(2000, func() {
		if _, err := wire.UnmarshalArena(frame, a); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0.25 {
		t.Fatalf("arena decode allocates %.3f objects per frame, want amortized < 0.25", allocs)
	}
}
