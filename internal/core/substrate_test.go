package core

import (
	"testing"

	"streamdex/internal/chord"
	"streamdex/internal/dht"
	"streamdex/internal/pastry"
	"streamdex/internal/sim"
	"streamdex/internal/stream"
	"streamdex/internal/summary"
)

// The middleware must run unmodified on any dht.Substrate — the paper's
// portability claim (§II-B). These tests execute the same end-to-end
// scenario on the Pastry-style substrate that middleware_test.go runs on
// Chord.

func pastryCluster(t *testing.T, n int, cfg Config) (*sim.Engine, *pastry.Network, *Middleware, []dht.Key) {
	t.Helper()
	eng := sim.NewEngine()
	net := pastry.New(eng, pastry.Config{Space: cfg.Space, HopDelay: 50 * sim.Millisecond, LeafSize: 8})
	ids := chord.SortKeys(chord.UniformIDs(cfg.Space, n))
	net.BuildStable(ids, nil)
	mw, err := New(net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return eng, net, mw, ids
}

func TestPlantedSimilarityOnPastry(t *testing.T) {
	cfg := testConfig()
	eng, net, mw, ids := pastryCluster(t, 12, cfg)

	twinA := stream.Stream{ID: "twinA", Gen: stream.DefaultRandomWalk(sim.NewRand(777)), Period: 100 * sim.Millisecond}
	twinB := stream.Stream{ID: "twinB", Gen: stream.DefaultRandomWalk(sim.NewRand(777)), Period: 100 * sim.Millisecond}
	if err := mw.DataCenter(ids[0]).RegisterStream(twinA); err != nil {
		t.Fatal(err)
	}
	if err := mw.DataCenter(ids[5]).RegisterStream(twinB); err != nil {
		t.Fatal(err)
	}
	eng.RunFor(15 * sim.Second)

	f := mw.DataCenter(ids[0]).StreamFeature("twinA")
	if f == nil {
		t.Fatal("twinA feature not ready")
	}
	qid, err := mw.PostSimilarity(ids[9], f, 0.15, 30*sim.Second)
	if err != nil {
		t.Fatal(err)
	}
	eng.RunFor(15 * sim.Second)

	matched := map[string]bool{}
	for _, sid := range mw.MatchedStreams(qid) {
		matched[sid] = true
	}
	if !matched["twinB"] || !matched["twinA"] {
		t.Fatalf("twins not matched on pastry substrate: %v", mw.MatchedStreams(qid))
	}
	if net.Dropped() != 0 {
		t.Fatalf("dropped %d messages on a stable pastry overlay", net.Dropped())
	}
}

func TestInnerProductOnPastry(t *testing.T) {
	cfg := testConfig()
	eng, _, mw, ids := pastryCluster(t, 10, cfg)
	st := stream.Stream{ID: "prices", Gen: stream.DefaultRandomWalk(sim.NewRand(3)), Period: 100 * sim.Millisecond}
	if err := mw.DataCenter(ids[2]).RegisterStream(st); err != nil {
		t.Fatal(err)
	}
	eng.RunFor(8 * sim.Second)
	qid, err := mw.PostInnerProduct(ids[7], "prices", []int{0, 1}, []float64{0.5, 0.5}, 8*sim.Second)
	if err != nil {
		t.Fatal(err)
	}
	eng.RunFor(6 * sim.Second)
	if len(mw.InnerProductValues(qid)) == 0 {
		t.Fatal("no inner-product values via pastry location service")
	}
}

func TestSameResultsAcrossSubstrates(t *testing.T) {
	// The set of matched streams for a planted query must agree between
	// substrates: routing differs, delivery semantics do not.
	run := func(build func(cfg Config) (*sim.Engine, dht.Substrate, *Middleware, []dht.Key)) map[string]bool {
		cfg := testConfig()
		eng, _, mw, ids := build(cfg)
		for i, id := range ids {
			st := stream.Stream{
				ID:     streamName(i),
				Gen:    stream.DefaultRandomWalk(sim.NewRand(int64(100 + i))),
				Period: 100 * sim.Millisecond,
			}
			if err := mw.DataCenter(id).RegisterStream(st); err != nil {
				t.Fatal(err)
			}
		}
		eng.RunFor(12 * sim.Second)
		qid, err := mw.PostSimilarity(ids[0], summary.Feature{0, 0, 0}, 0.35, 15*sim.Second)
		if err != nil {
			t.Fatal(err)
		}
		eng.RunFor(12 * sim.Second)
		out := map[string]bool{}
		for _, sid := range mw.MatchedStreams(qid) {
			out[sid] = true
		}
		return out
	}

	chordMatches := run(func(cfg Config) (*sim.Engine, dht.Substrate, *Middleware, []dht.Key) {
		eng, net, mw, ids := testClusterBare(t, 10, cfg)
		return eng, net, mw, ids
	})
	pastryMatches := run(func(cfg Config) (*sim.Engine, dht.Substrate, *Middleware, []dht.Key) {
		eng, net, mw, ids := pastryCluster(t, 10, cfg)
		return eng, net, mw, ids
	})
	if len(chordMatches) == 0 {
		t.Skip("no matches this seed")
	}
	for sid := range chordMatches {
		if !pastryMatches[sid] {
			t.Errorf("stream %s matched on chord but not pastry", sid)
		}
	}
	for sid := range pastryMatches {
		if !chordMatches[sid] {
			t.Errorf("stream %s matched on pastry but not chord", sid)
		}
	}
}

// testClusterBare builds a chord-backed middleware without streams.
func testClusterBare(t *testing.T, n int, cfg Config) (*sim.Engine, *chord.Network, *Middleware, []dht.Key) {
	t.Helper()
	eng := sim.NewEngine()
	net := chord.New(eng, chord.Config{Space: cfg.Space, HopDelay: 50 * sim.Millisecond, SuccListLen: 4})
	ids := chord.SortKeys(chord.UniformIDs(cfg.Space, n))
	net.BuildStable(ids, nil)
	mw, err := New(net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return eng, net, mw, ids
}
