package core

// Payload types of the continuous-query-engine kinds (KindSketch …
// KindTopKReport). Registered with the wire codec like the original nine so
// the live transport carries them; hand-packed codecs live in
// cqe_codec.go.

import (
	"streamdex/internal/cqe"
	"streamdex/internal/dht"
	"streamdex/internal/query"
	"streamdex/internal/summary"
	"streamdex/internal/wire"
)

func init() {
	wire.RegisterPayload(SketchUpdate{})
	wire.RegisterPayload(SubMsg{})
	wire.RegisterPayload(SubMatchMsg{})
	wire.RegisterPayload(AggQueryMsg{})
	wire.RegisterPayload(AggReplyMsg{})
	wire.RegisterPayload(TopKMsg{})
	wire.RegisterPayload(TopKReportMsg{})
}

// SketchUpdate is the payload of KindSketch: a stream's current windowed
// sketch, replicated over the key range of the MBR it was published with so
// the same covering nodes hold summary and sketch.
type SketchUpdate struct {
	StreamID string
	// Seq orders a stream's sketch publications (the sequence number of
	// the MBR the sketch rode along with); folds keep the latest.
	Seq uint64
	// Expiry bounds the sketch's soft-state lifetime at holding nodes.
	Expiry int64 // sim.Time; kept numeric so the payload stays flat
	// Lo and Hi record the routing-coordinate extent the sketch was
	// published under, so holding nodes can answer range-restricted
	// aggregate queries without re-deriving it.
	Lo, Hi float64
	Sketch *summary.Sketch
}

// SubMsg is the payload of KindSub: a standing predicate registration, or
// its cancellation.
type SubMsg struct {
	P      *query.Predicate
	Cancel bool
}

// SubMatchMsg is the payload of KindSubMatch: matches a covering node
// detected for one subscription, pushed to the subscriber.
type SubMatchMsg struct {
	SubID   query.ID
	Matches []query.Match
}

// AggQueryMsg is the payload of KindAggQuery.
type AggQueryMsg struct {
	Q *query.Aggregate
}

// StreamSketch is one per-stream item of an aggregate report.
type StreamSketch struct {
	StreamID string
	Seq      uint64
	Sketch   *summary.Sketch
}

// AggReplyMsg is the payload of KindAggReply: the sketches a covering node
// holds for the queried range. The querying node deduplicates per stream by
// highest sequence before merging (range replication stores each stream's
// sketch on several nodes).
type AggReplyMsg struct {
	QueryID query.ID
	Items   []StreamSketch
}

// TopKMsg is the payload of KindTopK.
type TopKMsg struct {
	Q *query.TopK
}

// TopKReportMsg is the payload of KindTopKReport: one covering node's
// cumulative frequency table for a monitor. Reports replace the node's
// previous table at the origin, so retransmissions never double-count.
type TopKReportMsg struct {
	QueryID query.ID
	Node    dht.Key
	Counts  []cqe.StreamCount
}
