package core

// The DataCenter side of the continuous-query engine: the cqe.Host
// implementation operators talk to the substrate through, and the engine
// construction that registers the built-in operators. Adding an operator
// means writing one op_*.go file and one newEngine line — DataCenter's
// dispatch never changes.

import (
	"streamdex/internal/cqe"
	"streamdex/internal/dht"
	"streamdex/internal/sim"
)

// Compile-time check: DataCenter is the engine's host.
var _ cqe.Host = (*DataCenter)(nil)

// Now implements cqe.Host.
func (dc *DataCenter) Now() sim.Time { return dc.mw.clk.Now() }

// Covers implements cqe.Host: whether this node currently owns the key.
func (dc *DataCenter) Covers(key dht.Key) bool { return dc.mw.net.Covers(dc.id, key) }

// Send implements cqe.Host, stamping the wire size like every middleware
// transmission.
func (dc *DataCenter) Send(to dht.Key, msg *dht.Message) {
	dc.mw.net.Send(dc.id, to, sized(msg))
}

// SendRange implements cqe.Host: range multicast in the configured mode.
func (dc *DataCenter) SendRange(lo, hi dht.Key, msg *dht.Message) {
	dht.SendRange(dc.mw.net, dc.id, lo, hi, sized(msg), dc.mw.cfg.RangeMode)
}

// ContinueRange implements cqe.Host.
func (dc *DataCenter) ContinueRange(msg *dht.Message) int {
	return dht.ContinueRange(dc.mw.net, dc.id, msg)
}

// PostToLoop implements cqe.Host. Without a poster (the simulator, where
// everything already runs on the loop) the closure runs inline.
func (dc *DataCenter) PostToLoop(fn func()) {
	if dc.poster != nil && dc.poster.Post(fn) {
		return
	}
	fn()
}

// newEngine builds this data center's operator registry. Registration
// order is the Tick/OnMBR fan-out order and is part of the simulator's
// deterministic schedule: similarity and inner-product first (the
// historical periodTick order), then the PR-7 operators, then the replica
// operator last — with Config.Replicas at its default its hooks are inert
// no-ops, keeping the historical schedule intact.
func newEngine(dc *DataCenter) *cqe.Engine {
	e := cqe.NewEngine()
	dc.opSim = &simOp{dc: dc}
	dc.opIP = &ipOp{dc: dc}
	dc.opSub = newSubOp(dc)
	dc.opAgg = newAggOp(dc)
	dc.opTopK = newTopKOp(dc)
	dc.opRep = newRepOp(dc)
	e.Register(dc.opSim)
	e.Register(dc.opIP)
	e.Register(dc.opSub)
	e.Register(dc.opAgg)
	e.Register(dc.opTopK)
	e.Register(dc.opRep)
	return e
}
