package core

// topkOp implements distributed top-k maintenance over publication
// frequencies: a monitor registers at every node covering a
// routing-coordinate range; each covering node counts the MBR
// publications landing in the range — counting a publication only at the
// single node owning the key of its low coordinate, so range replication
// never double-counts — and pushes its cumulative frequency table to the
// monitoring node every period. Tables replace the node's previous report
// at the origin (cqe.TopKTable), so retransmissions after churn are
// idempotent; the origin's top-k is the sum across reporting nodes.

import (
	"sort"
	"sync"
	"sync/atomic"

	"streamdex/internal/cqe"
	"streamdex/internal/dht"
	"streamdex/internal/query"
	"streamdex/internal/sim"
	"streamdex/internal/summary"
)

// topkMonitor is one registered frequency monitor at a covering node.
type topkMonitor struct {
	q *query.TopK

	mu     sync.Mutex
	counts map[string]uint64
}

type topkOp struct {
	dc *DataCenter

	// mu guards mons: workers register monitors and count publications
	// while the loop sweeps and reports; n short-circuits the per-MBR hook
	// when no monitor is registered.
	mu   sync.RWMutex
	mons map[query.ID]*topkMonitor
	n    atomic.Int32

	// mine are the monitors this node originated. Loop-confined.
	mine map[query.ID]*query.TopK
}

func newTopKOp(dc *DataCenter) *topkOp {
	return &topkOp{
		dc:   dc,
		mons: make(map[query.ID]*topkMonitor),
		mine: make(map[query.ID]*query.TopK),
	}
}

// Name implements cqe.Operator.
func (o *topkOp) Name() string { return "top-k" }

// Kinds implements cqe.Operator.
func (o *topkOp) Kinds() []dht.Kind { return []dht.Kind{KindTopK, KindTopKReport} }

// Deliver implements cqe.Operator (loop context).
func (o *topkOp) Deliver(h cqe.Host, msg *dht.Message) {
	switch msg.Kind {
	case KindTopK:
		o.onTopK(h, msg)
	case KindTopKReport:
		o.dc.mw.deliverTopKReport(msg.Payload.(TopKReportMsg))
	}
}

// DeliverData implements cqe.Operator: monitor registration is
// worker-safe (own lock); report folding is loop state.
func (o *topkOp) DeliverData(h cqe.Host, msg *dht.Message) bool {
	if msg.Kind == KindTopK {
		o.onTopK(h, msg)
		return true
	}
	return false
}

// onTopK registers a monitor and keeps the range multicast going.
// Counting starts at registration — frequency monitors observe the
// publication stream, not the stored history.
func (o *topkOp) onTopK(h cqe.Host, msg *dht.Message) {
	p := msg.Payload.(TopKMsg)
	if q := p.Q; q != nil && h.Now() < q.Expiry() {
		o.mu.Lock()
		if _, known := o.mons[q.ID]; !known {
			o.mons[q.ID] = &topkMonitor{q: q, counts: make(map[string]uint64)}
			o.n.Store(int32(len(o.mons)))
		}
		o.mu.Unlock()
	}
	h.ContinueRange(msg)
}

// OnMBR implements cqe.Operator: count the publication at exactly one
// node — the owner of the key of its low routing coordinate — for every
// monitor whose range contains that coordinate.
func (o *topkOp) OnMBR(h cqe.Host, b *summary.MBR) {
	if o.n.Load() == 0 {
		return
	}
	v := b.Lo[0]
	if !h.Covers(o.dc.mw.mapper.KeyOf(v)) {
		return
	}
	now := h.Now()
	o.mu.RLock()
	defer o.mu.RUnlock()
	for _, mon := range o.mons {
		if now >= mon.q.Expiry() || v < mon.q.Lo || v > mon.q.Hi {
			continue
		}
		mon.mu.Lock()
		mon.counts[b.StreamID]++
		mon.mu.Unlock()
	}
}

// Tick implements cqe.Operator: sweep expired monitors, push the
// cumulative frequency tables, and refresh this node's own monitors.
func (o *topkOp) Tick(h cqe.Host, now sim.Time) {
	type push struct {
		origin dht.Key
		p      TopKReportMsg
	}
	var pushes []push
	o.mu.Lock()
	for id, mon := range o.mons {
		if now >= mon.q.Expiry() {
			delete(o.mons, id)
			continue
		}
		mon.mu.Lock()
		if len(mon.counts) == 0 {
			mon.mu.Unlock()
			continue
		}
		counts := make([]cqe.StreamCount, 0, len(mon.counts))
		for sid, c := range mon.counts {
			counts = append(counts, cqe.StreamCount{StreamID: sid, Count: c})
		}
		mon.mu.Unlock()
		sort.Slice(counts, func(i, j int) bool { return counts[i].StreamID < counts[j].StreamID })
		pushes = append(pushes, push{mon.q.Origin, TopKReportMsg{QueryID: id, Node: o.dc.id, Counts: counts}})
	}
	o.n.Store(int32(len(o.mons)))
	o.mu.Unlock()
	for _, ps := range pushes {
		if ps.origin == o.dc.id {
			o.dc.mw.deliverTopKReport(ps.p)
			continue
		}
		h.Send(ps.origin, &dht.Message{Kind: KindTopKReport, Payload: ps.p})
	}
	for id, q := range o.mine {
		if now >= q.Expiry() {
			delete(o.mine, id)
			continue
		}
		o.multicast(h, q)
	}
}

// OnRingChange implements cqe.Operator: re-home immediately.
func (o *topkOp) OnRingChange(h cqe.Host) {
	now := h.Now()
	for _, q := range o.mine {
		if now < q.Expiry() {
			o.multicast(h, q)
		}
	}
}

func (o *topkOp) multicast(h cqe.Host, q *query.TopK) {
	lo, hi := o.dc.mw.mapper.Range(q.Lo, q.Hi)
	h.SendRange(lo, hi, &dht.Message{Kind: KindTopK, Payload: TopKMsg{Q: q}})
}

// register originates a frequency monitor from this node.
func (o *topkOp) register(h cqe.Host, q *query.TopK) {
	o.mine[q.ID] = q
	o.multicast(h, q)
}
