package core

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"streamdex/internal/query"
	"streamdex/internal/sim"
	"streamdex/internal/summary"
)

// TestSnapshotPutVisibleImmediately pins the publication fence the
// data-plane correctness argument rests on: Put publishes the new snapshot
// before returning, so a candidate walk that starts after Put returns must
// see the entry — even from the same goroutine, even while other
// goroutines are putting and sweeping concurrently.
func TestSnapshotPutVisibleImmediately(t *testing.T) {
	s := NewShardedStore(4)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			dst := make([]query.Match, 0, 8)
			for i := 0; i < 300; i++ {
				l1 := rng.Float64()*2 - 1
				b := mbrAt(fmt.Sprintf("w%d", w), uint64(i),
					summary.Feature{l1, 0}, summary.Feature{l1 + 0.01, 0.1}, 0)
				s.Put(b)
				q := summary.Feature{l1, 0.05}
				dst = s.AppendCandidates(dst[:0], q, 0.06, 0, 1)
				found := false
				for _, m := range dst {
					if m.StreamID == b.StreamID && m.Seq == b.Seq {
						found = true
						break
					}
				}
				if !found {
					t.Errorf("writer %d: entry %d not visible immediately after Put", w, i)
					return
				}
				if i%50 == 49 {
					s.Sweep(0)
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestSnapshotConcurrentIngestExpiryMatch is the randomized snapshot
// publication test: writers ingest entries with mid-run expiries, a
// sweeper expires them, and readers walk candidates the whole time, all
// under -race in CI. Readers check walk-level invariants in flight (every
// match corresponds to a real put, epochs never run backwards), and the
// final surviving state is compared against a sequential single-shard
// oracle fed the same entries.
func TestSnapshotConcurrentIngestExpiryMatch(t *testing.T) {
	const (
		writers   = 4
		perWriter = 400
		readers   = 3
	)
	s := NewShardedStore(8)

	entries := make([][]*summary.MBR, writers)
	valid := make(map[string]map[uint64]bool)
	for w := range entries {
		rng := rand.New(rand.NewSource(int64(7000 + w)))
		entries[w] = make([]*summary.MBR, perWriter)
		sid := fmt.Sprintf("snap%d", w)
		valid[sid] = make(map[uint64]bool)
		for i := range entries[w] {
			l1 := rng.Float64()*2 - 1
			width := rng.Float64() * 0.1
			expiry := sim.Time(0)
			if rng.Intn(3) == 0 {
				expiry = sim.Time(1 + rng.Intn(50))
			}
			entries[w][i] = mbrAt(sid, uint64(i),
				summary.Feature{l1, 0}, summary.Feature{l1 + width, 0.1}, expiry)
			valid[sid][uint64(i)] = true
		}
	}

	var stop atomic.Bool
	var writeWG, readWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		writeWG.Add(1)
		go func(w int) {
			defer writeWG.Done()
			for i, b := range entries[w] {
				s.Put(b)
				if i%97 == 96 {
					s.Sweep(sim.Time(i / 8))
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		readWG.Add(1)
		go func(r int) {
			defer readWG.Done()
			rng := rand.New(rand.NewSource(int64(7900 + r)))
			dst := make([]query.Match, 0, 256)
			lastEpoch := make([]uint64, s.Shards())
			for !stop.Load() {
				q := summary.Feature{rng.Float64()*2 - 1, 0.05}
				now := sim.Time(rng.Intn(60))
				dst = s.AppendCandidates(dst[:0], q, 0.2, now, 1)
				for _, m := range dst {
					if !valid[m.StreamID][m.Seq] {
						t.Errorf("match (%s,%d) does not correspond to any put entry", m.StreamID, m.Seq)
						return
					}
					if m.FoundAt != now || m.Node != 1 {
						t.Errorf("match metadata torn: %+v", m)
						return
					}
				}
				for i := range lastEpoch {
					e := s.ShardEpoch(i)
					if e < lastEpoch[i] {
						t.Errorf("shard %d epoch ran backwards: %d -> %d", i, lastEpoch[i], e)
						return
					}
					lastEpoch[i] = e
				}
			}
		}(r)
	}
	writeWG.Wait()
	stop.Store(true)
	readWG.Wait()

	oracle := NewStore()
	for _, batch := range entries {
		for _, b := range batch {
			oracle.Put(b)
		}
	}
	const now = 100 * sim.Time(1)
	oracle.Sweep(now)
	s.Sweep(now)
	if got, want := s.Len(), oracle.Len(); got != want {
		t.Fatalf("after concurrent run: %d entries, oracle has %d", got, want)
	}
	for trial := 0; trial < 60; trial++ {
		q := summary.Feature{float64(trial)/30 - 1, 0.05}
		got := s.Candidates(q, 0.15, now, 1)
		want := oracle.Candidates(q, 0.15, now, 1)
		sortMatches(got)
		sortMatches(want)
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("trial %d: candidate sets diverged:\n%v\n%v", trial, got, want)
		}
	}
	st := s.SnapStats()
	if st.Epochs == 0 || st.CowCopied == 0 {
		t.Fatalf("snapshot counters never moved: %+v", st)
	}
}

// TestSnapshotStaleReadIsImmutable is the stale-epoch regression test: a
// snapshot pointer captured before a burst of mutations must keep
// describing exactly the state it was published with. This guards the
// in-place tail-append invariant — a writer may extend the shared tail
// backing past a published snapshot's length, but must never write inside
// it. A bug there would show up here as the stale walk seeing entries (or
// corner coordinates) from the future.
func TestSnapshotStaleReadIsImmutable(t *testing.T) {
	s := NewShardedStore(1)
	for i := 0; i < 10; i++ {
		l1 := float64(i) * 0.01
		s.Put(mbrAt("old", uint64(i), summary.Feature{l1, 0}, summary.Feature{l1 + 0.005, 0.1}, 0))
	}
	sh := &s.shards[0]
	stale := sh.snap.Load()
	staleEpoch := stale.epoch
	wantLen := len(stale.lo1) + len(stale.tLo1)
	if wantLen != 10 {
		t.Fatalf("stale snapshot holds %d entries, want 10", wantLen)
	}
	q := summary.Feature{0.04, 0.05}
	wantMatches, _, _ := stale.appendCandidates(nil, 0, q, q[0], 0.1, 0, 1)

	// Mutate heavily: more puts into the same band (in-place tail appends
	// and merges), an expiring entry plus a walk to trigger compaction,
	// and a sweep.
	for i := 0; i < 200; i++ {
		l1 := float64(i%20) * 0.005
		s.Put(mbrAt("new", uint64(i), summary.Feature{l1, 0}, summary.Feature{l1 + 0.005, 0.1}, 0))
	}
	s.Put(mbrAt("dying", 0, summary.Feature{0.04, 0}, summary.Feature{0.05, 0.1}, sim.Second))
	s.Candidates(q, 0.1, 2*sim.Second, 1) // sees the expired entry -> compacts
	s.Sweep(2 * sim.Second)

	if e := sh.snap.Load().epoch; e <= staleEpoch {
		t.Fatalf("epoch did not advance under mutation: %d -> %d", staleEpoch, e)
	}
	if got := len(stale.lo1) + len(stale.tLo1); got != wantLen {
		t.Fatalf("stale snapshot length changed under mutation: %d -> %d", wantLen, got)
	}
	gotMatches, _, _ := stale.appendCandidates(nil, 0, q, q[0], 0.1, 0, 1)
	sortMatches(wantMatches)
	sortMatches(gotMatches)
	if fmt.Sprint(gotMatches) != fmt.Sprint(wantMatches) {
		t.Fatalf("stale snapshot walk changed under mutation:\nbefore %v\nafter  %v", wantMatches, gotMatches)
	}
	for _, m := range gotMatches {
		if m.StreamID != "old" {
			t.Fatalf("stale walk surfaced an entry from the future: %+v", m)
		}
	}
}

// TestSnapshotEpochAndCowCounters sanity-checks the SnapStats surface the
// node exposes over STATS: every Put publishes (epoch bump), merges happen
// every tailMax inserts on the live store, while the exclusive simulator
// store inserts in place — no merges, no COW, no tail.
func TestSnapshotEpochAndCowCounters(t *testing.T) {
	live := NewShardedStore(1)
	// A merge fires on the put that finds the tail full: after
	// 2*tailMax+2 puts exactly two tails have filled and merged.
	n := 2*storeTailMax + 2
	for i := 0; i < n; i++ {
		live.Put(mbrAt("s", uint64(i), summary.Feature{0.1}, summary.Feature{0.2}, 0))
	}
	st := live.SnapStats()
	if st.Epochs != int64(n) {
		t.Fatalf("live Epochs = %d, want %d", st.Epochs, n)
	}
	if st.Merges != 2 {
		t.Fatalf("live Merges = %d, want 2 (one per full tail)", st.Merges)
	}

	simStore := NewStore()
	for i := 0; i < 5; i++ {
		simStore.Put(mbrAt("s", uint64(i), summary.Feature{0.1}, summary.Feature{0.2}, 0))
	}
	st = simStore.SnapStats()
	if st.Epochs != 5 {
		t.Fatalf("sim Epochs = %d, want 5 (one per Put)", st.Epochs)
	}
	if st.Merges != 0 || st.CowCopied != 0 {
		t.Fatalf("sim store copied on write (merges %d, cow %d); exclusive mode must insert in place", st.Merges, st.CowCopied)
	}
	if n := len(simStore.shards[0].snap.Load().tLo1); n != 0 {
		t.Fatalf("sim store deferred %d entries to a tail; order fidelity requires none", n)
	}
}
