package core

// Hand-packed wire codecs for the continuous-query-engine payload kinds.
// Tags continue after the ring control tags (16-22); like the original nine
// they are protocol: never renumber, only append.

import (
	"fmt"

	"streamdex/internal/cqe"
	"streamdex/internal/dht"
	"streamdex/internal/query"
	"streamdex/internal/sim"
	"streamdex/internal/summary"
	"streamdex/internal/wire"
)

const (
	tagSketchUpdate uint8 = iota + 23
	tagSubMsg
	tagSubMatchMsg
	tagAggQueryMsg
	tagAggReplyMsg
	tagTopKMsg
	tagTopKReportMsg
)

func init() {
	wire.RegisterPackedPayload(tagSketchUpdate, SketchUpdate{}, codecFuncs{enc: encSketchUpdate, dec: decSketchUpdate})
	wire.RegisterPackedPayload(tagSubMsg, SubMsg{}, codecFuncs{enc: encSubMsg, dec: decSubMsg})
	wire.RegisterPackedPayload(tagSubMatchMsg, SubMatchMsg{}, codecFuncs{enc: encSubMatchMsg, dec: decSubMatchMsg})
	wire.RegisterPackedPayload(tagAggQueryMsg, AggQueryMsg{}, codecFuncs{enc: encAggQueryMsg, dec: decAggQueryMsg})
	wire.RegisterPackedPayload(tagAggReplyMsg, AggReplyMsg{}, codecFuncs{enc: encAggReplyMsg, dec: decAggReplyMsg})
	wire.RegisterPackedPayload(tagTopKMsg, TopKMsg{}, codecFuncs{enc: encTopKMsg, dec: decTopKMsg})
	wire.RegisterPackedPayload(tagTopKReportMsg, TopKReportMsg{}, codecFuncs{enc: encTopKReportMsg, dec: decTopKReportMsg})
}

// --- sketch, shared by KindSketch and KindAggReply ---
// present(bool) | window(var) | k(uvar) | lo(f64) | hi(f64) | bands(uvar),
// then per band: buckets(uvar), then per bucket: end(var) | size(uvar)

func appendSketch(dst []byte, s *summary.Sketch) []byte {
	if s == nil {
		return wire.AppendBool(dst, false)
	}
	dst = wire.AppendBool(dst, true)
	dst = wire.AppendVarint(dst, int64(s.Window))
	dst = wire.AppendUvarint(dst, uint64(s.K))
	dst = wire.AppendFloat64(dst, s.Lo)
	dst = wire.AppendFloat64(dst, s.Hi)
	dst = wire.AppendUvarint(dst, uint64(len(s.Bands)))
	for _, h := range s.Bands {
		dst = wire.AppendUvarint(dst, uint64(len(h.Buckets)))
		for _, b := range h.Buckets {
			dst = wire.AppendVarint(dst, int64(b.End))
			dst = wire.AppendUvarint(dst, b.Size)
		}
	}
	return dst
}

func readSketch(r *wire.Reader) *summary.Sketch {
	if !r.Bool() {
		return nil
	}
	s := &summary.Sketch{
		Window: sim.Time(r.Varint()),
		K:      int(r.Uvarint()),
		Lo:     r.Float64(),
		Hi:     r.Float64(),
	}
	nb := r.Uvarint()
	if r.Err() != nil {
		return nil
	}
	// Every band costs at least its bucket-count byte; reject a corrupt
	// count before allocating.
	if nb > uint64(r.Len()) {
		r.Failf("core: sketch with %d bands, %d bytes remaining", nb, r.Len())
		return nil
	}
	s.Bands = make([]*summary.EH, nb)
	for i := range s.Bands {
		h := &summary.EH{Window: s.Window, K: s.K}
		nbk := r.Uvarint()
		if r.Err() != nil {
			return nil
		}
		if nbk > uint64(r.Len()) {
			r.Failf("core: sketch band with %d buckets, %d bytes remaining", nbk, r.Len())
			return nil
		}
		if nbk > 0 {
			h.Buckets = make([]summary.EHBucket, nbk)
			for j := range h.Buckets {
				h.Buckets[j].End = sim.Time(r.Varint())
				h.Buckets[j].Size = r.Uvarint()
			}
		}
		s.Bands[i] = h
	}
	if r.Err() != nil {
		return nil
	}
	return s
}

// --- KindSketch: SketchUpdate ---
// streamID | seq(uvar) | expiry(var) | lo(f64) | hi(f64) | sketch

func encSketchUpdate(dst []byte, p any) ([]byte, error) {
	u, ok := p.(SketchUpdate)
	if !ok {
		return nil, errType("SketchUpdate", p)
	}
	dst = wire.AppendString(dst, u.StreamID)
	dst = wire.AppendUvarint(dst, u.Seq)
	dst = wire.AppendVarint(dst, u.Expiry)
	dst = wire.AppendFloat64(dst, u.Lo)
	dst = wire.AppendFloat64(dst, u.Hi)
	return appendSketch(dst, u.Sketch), nil
}

func decSketchUpdate(data []byte) (any, error) {
	r := wire.NewReader(data)
	u := SketchUpdate{}
	u.StreamID = r.String()
	u.Seq = r.Uvarint()
	u.Expiry = r.Varint()
	u.Lo = r.Float64()
	u.Hi = r.Float64()
	u.Sketch = readSketch(&r)
	if err := r.Done(); err != nil {
		return nil, err
	}
	return u, nil
}

// --- KindSub: SubMsg ---
// cancel(bool) | present(bool) | id(uvar) | origin(uvar) | lo(floats) |
// hi(floats) | posted(var) | lifespan(var)

func encSubMsg(dst []byte, p any) ([]byte, error) {
	u, ok := p.(SubMsg)
	if !ok {
		return nil, errType("SubMsg", p)
	}
	dst = wire.AppendBool(dst, u.Cancel)
	if u.P == nil {
		return wire.AppendBool(dst, false), nil
	}
	q := u.P
	dst = wire.AppendBool(dst, true)
	dst = wire.AppendUvarint(dst, uint64(q.ID))
	dst = wire.AppendUvarint(dst, uint64(q.Origin))
	dst = wire.AppendFloats(dst, q.Lo)
	dst = wire.AppendFloats(dst, q.Hi)
	dst = wire.AppendVarint(dst, int64(q.Posted))
	dst = wire.AppendVarint(dst, int64(q.Lifespan))
	return dst, nil
}

func decSubMsg(data []byte) (any, error) {
	r := wire.NewReader(data)
	u := SubMsg{Cancel: r.Bool()}
	if !r.Bool() {
		if err := r.Done(); err != nil {
			return nil, err
		}
		return u, nil
	}
	q := &query.Predicate{}
	q.ID = query.ID(r.Uvarint())
	q.Origin = dht.Key(r.Uvarint())
	q.Lo = summary.Feature(r.Floats())
	q.Hi = summary.Feature(r.Floats())
	q.Posted = sim.Time(r.Varint())
	q.Lifespan = sim.Time(r.Varint())
	if err := r.Done(); err != nil {
		return nil, err
	}
	if len(q.Lo) != len(q.Hi) {
		return nil, fmt.Errorf("core: predicate with %d-dim lo, %d-dim hi", len(q.Lo), len(q.Hi))
	}
	u.P = q
	return u, nil
}

// --- KindSubMatch: SubMatchMsg ---
// subID(uvar) | matches

func encSubMatchMsg(dst []byte, p any) ([]byte, error) {
	u, ok := p.(SubMatchMsg)
	if !ok {
		return nil, errType("SubMatchMsg", p)
	}
	dst = wire.AppendUvarint(dst, uint64(u.SubID))
	return appendMatches(dst, u.Matches), nil
}

func decSubMatchMsg(data []byte) (any, error) {
	r := wire.NewReader(data)
	u := SubMatchMsg{SubID: query.ID(r.Uvarint())}
	u.Matches = readMatches(&r)
	if err := r.Done(); err != nil {
		return nil, err
	}
	return u, nil
}

// --- KindAggQuery: AggQueryMsg ---
// present(bool) | id(uvar) | origin(uvar) | lo(f64) | hi(f64) |
// posted(var) | lifespan(var)

func encAggQueryMsg(dst []byte, p any) ([]byte, error) {
	u, ok := p.(AggQueryMsg)
	if !ok {
		return nil, errType("AggQueryMsg", p)
	}
	if u.Q == nil {
		return wire.AppendBool(dst, false), nil
	}
	q := u.Q
	dst = wire.AppendBool(dst, true)
	dst = wire.AppendUvarint(dst, uint64(q.ID))
	dst = wire.AppendUvarint(dst, uint64(q.Origin))
	dst = wire.AppendFloat64(dst, q.Lo)
	dst = wire.AppendFloat64(dst, q.Hi)
	dst = wire.AppendVarint(dst, int64(q.Posted))
	dst = wire.AppendVarint(dst, int64(q.Lifespan))
	return dst, nil
}

func decAggQueryMsg(data []byte) (any, error) {
	r := wire.NewReader(data)
	if !r.Bool() {
		if err := r.Done(); err != nil {
			return nil, err
		}
		return AggQueryMsg{}, nil
	}
	q := &query.Aggregate{}
	q.ID = query.ID(r.Uvarint())
	q.Origin = dht.Key(r.Uvarint())
	q.Lo = r.Float64()
	q.Hi = r.Float64()
	q.Posted = sim.Time(r.Varint())
	q.Lifespan = sim.Time(r.Varint())
	if err := r.Done(); err != nil {
		return nil, err
	}
	return AggQueryMsg{Q: q}, nil
}

// --- KindAggReply: AggReplyMsg ---
// queryID(uvar) | count(uvar), then per item: streamID | seq(uvar) | sketch

func encAggReplyMsg(dst []byte, p any) ([]byte, error) {
	u, ok := p.(AggReplyMsg)
	if !ok {
		return nil, errType("AggReplyMsg", p)
	}
	dst = wire.AppendUvarint(dst, uint64(u.QueryID))
	dst = wire.AppendUvarint(dst, uint64(len(u.Items)))
	for i := range u.Items {
		it := &u.Items[i]
		dst = wire.AppendString(dst, it.StreamID)
		dst = wire.AppendUvarint(dst, it.Seq)
		dst = appendSketch(dst, it.Sketch)
	}
	return dst, nil
}

func decAggReplyMsg(data []byte) (any, error) {
	r := wire.NewReader(data)
	u := AggReplyMsg{QueryID: query.ID(r.Uvarint())}
	n := r.Uvarint()
	if r.Err() == nil && n > 0 {
		if n > uint64(r.Len()) {
			r.Failf("core: %d report items with %d bytes remaining", n, r.Len())
		} else {
			u.Items = make([]StreamSketch, n)
			for i := range u.Items {
				it := &u.Items[i]
				it.StreamID = r.String()
				it.Seq = r.Uvarint()
				it.Sketch = readSketch(&r)
			}
		}
	}
	if err := r.Done(); err != nil {
		return nil, err
	}
	return u, nil
}

// --- KindTopK: TopKMsg ---
// present(bool) | id(uvar) | origin(uvar) | k(uvar) | lo(f64) | hi(f64) |
// posted(var) | lifespan(var)

func encTopKMsg(dst []byte, p any) ([]byte, error) {
	u, ok := p.(TopKMsg)
	if !ok {
		return nil, errType("TopKMsg", p)
	}
	if u.Q == nil {
		return wire.AppendBool(dst, false), nil
	}
	q := u.Q
	dst = wire.AppendBool(dst, true)
	dst = wire.AppendUvarint(dst, uint64(q.ID))
	dst = wire.AppendUvarint(dst, uint64(q.Origin))
	dst = wire.AppendUvarint(dst, uint64(q.K))
	dst = wire.AppendFloat64(dst, q.Lo)
	dst = wire.AppendFloat64(dst, q.Hi)
	dst = wire.AppendVarint(dst, int64(q.Posted))
	dst = wire.AppendVarint(dst, int64(q.Lifespan))
	return dst, nil
}

func decTopKMsg(data []byte) (any, error) {
	r := wire.NewReader(data)
	if !r.Bool() {
		if err := r.Done(); err != nil {
			return nil, err
		}
		return TopKMsg{}, nil
	}
	q := &query.TopK{}
	q.ID = query.ID(r.Uvarint())
	q.Origin = dht.Key(r.Uvarint())
	q.K = int(r.Uvarint())
	q.Lo = r.Float64()
	q.Hi = r.Float64()
	q.Posted = sim.Time(r.Varint())
	q.Lifespan = sim.Time(r.Varint())
	if err := r.Done(); err != nil {
		return nil, err
	}
	return TopKMsg{Q: q}, nil
}

// --- KindTopKReport: TopKReportMsg ---
// queryID(uvar) | node(uvar) | count(uvar), then per entry:
// streamID | count(uvar)

func encTopKReportMsg(dst []byte, p any) ([]byte, error) {
	u, ok := p.(TopKReportMsg)
	if !ok {
		return nil, errType("TopKReportMsg", p)
	}
	dst = wire.AppendUvarint(dst, uint64(u.QueryID))
	dst = wire.AppendUvarint(dst, uint64(u.Node))
	dst = wire.AppendUvarint(dst, uint64(len(u.Counts)))
	for i := range u.Counts {
		dst = wire.AppendString(dst, u.Counts[i].StreamID)
		dst = wire.AppendUvarint(dst, u.Counts[i].Count)
	}
	return dst, nil
}

func decTopKReportMsg(data []byte) (any, error) {
	r := wire.NewReader(data)
	u := TopKReportMsg{QueryID: query.ID(r.Uvarint()), Node: dht.Key(r.Uvarint())}
	n := r.Uvarint()
	if r.Err() == nil && n > 0 {
		if n > uint64(r.Len()) {
			r.Failf("core: %d frequency entries with %d bytes remaining", n, r.Len())
		} else {
			u.Counts = make([]cqe.StreamCount, n)
			for i := range u.Counts {
				u.Counts[i].StreamID = r.String()
				u.Counts[i].Count = r.Uvarint()
			}
		}
	}
	if err := r.Done(); err != nil {
		return nil, err
	}
	return u, nil
}
