package core

import (
	"streamdex/internal/dht"
	"streamdex/internal/metrics"
	"streamdex/internal/query"
	"streamdex/internal/summary"
	"streamdex/internal/wire"
)

// Message kinds of the middleware protocol.
const (
	// KindMBR replicates a stream's MBR summary over its key range
	// ("put" in DHT terms, §IV-B/G).
	KindMBR dht.Kind = iota
	// KindQuery disseminates a similarity query over its key range
	// ("get", §IV-E).
	KindQuery
	// KindNotify carries detected-similarity information one ring hop
	// toward a query's middle node (§IV-F).
	KindNotify
	// KindResponse carries aggregated results from a middle node to the
	// client that posed the query (§IV-F).
	KindResponse
	// KindLocPut registers a (stream id -> source node) pair at the
	// location-service node h2(sid) (§IV-D).
	KindLocPut
	// KindLocGet asks the location-service node to resolve a stream id.
	KindLocGet
	// KindLocReply returns the resolution to the requester.
	KindLocReply
	// KindIPSub delivers an inner-product subscription to the stream's
	// source node.
	KindIPSub
	// KindIPResp carries a periodic inner-product value to the client.
	KindIPResp

	// Continuous-query-engine kinds (PR 7). Appended after the original
	// nine; codec tags for them start at 23 (after the ring tags 16-22).

	// KindSketch replicates a stream's windowed sketch over the key range
	// of the MBR it rides along with.
	KindSketch
	// KindSub registers (or cancels) a standing pub/sub predicate at the
	// nodes covering its key range.
	KindSub
	// KindSubMatch pushes predicate matches from a covering node to the
	// subscriber as data-plane frames.
	KindSubMatch
	// KindAggQuery registers a windowed-aggregate query at the nodes
	// covering its key range.
	KindAggQuery
	// KindAggReply carries a covering node's per-stream sketch report to
	// the querying node, where reports are deduplicated and merged.
	KindAggReply
	// KindTopK registers a top-k frequency monitor at the nodes covering
	// its key range.
	KindTopK
	// KindTopKReport carries a covering node's cumulative frequency table
	// to the monitoring node.
	KindTopKReport

	// Load-balancing kinds (PR 8). Codec tags 30-31.

	// KindReplica walks an MBR copy down the covering node's successor
	// tail so the summary is held at up to Config.Replicas ring-adjacent
	// nodes (hot-range read replication).
	KindReplica
	// KindLoad gossips a node's recent data-plane message rate (and the
	// rates it learned from its own successors) one hop to its ring
	// predecessor, feeding the power-of-two-choices read balancer.
	KindLoad
)

// Payload types carried by the messages above. Every type is registered
// with the wire codec so the live transport can gob-encode them through
// dht.Message's interface-typed Payload field.

func init() {
	wire.RegisterPayload(MBRUpdate{})
	wire.RegisterPayload(SimQuery{})
	wire.RegisterPayload(NotifyBatch{})
	wire.RegisterPayload(ResponseMsg{})
	wire.RegisterPayload(LocPut{})
	wire.RegisterPayload(LocGet{})
	wire.RegisterPayload(LocReply{})
	wire.RegisterPayload(IPSub{})
	wire.RegisterPayload(IPResp{})
	wire.RegisterPayload(ReplicaMsg{})
	wire.RegisterPayload(LoadMsg{})
}

// MBRUpdate is the payload of KindMBR.
type MBRUpdate struct {
	MBR *summary.MBR
}

// SimQuery is the payload of KindQuery. MiddleKey is precomputed by the
// origin so every covering node agrees on the aggregation point.
type SimQuery struct {
	Q         *query.Similarity
	MiddleKey dht.Key
}

// NotifyItem carries the candidates a node collected for one query, moving
// one ring hop per push period toward the query's middle node.
type NotifyItem struct {
	QueryID   query.ID
	MiddleKey dht.Key
	ClientKey dht.Key
	Expiry    int64 // sim.Time; kept numeric so the payload stays flat
	Matches   []query.Match
}

// NotifyBatch is the payload of KindNotify: all items traveling in the
// same ring direction, aggregated ("these messages contain aggregated
// similarities for all queries that the node knows about").
type NotifyBatch struct {
	Items []NotifyItem
}

// ResponseMsg is the payload of KindResponse.
type ResponseMsg struct {
	QueryID query.ID
	Matches []query.Match // may be empty: periodic "no new similarities"
}

// LocPut is the payload of KindLocPut.
type LocPut struct {
	StreamID string
	Source   dht.Key
}

// LocGet is the payload of KindLocGet.
type LocGet struct {
	StreamID  string
	Requester dht.Key
}

// LocReply is the payload of KindLocReply.
type LocReply struct {
	StreamID string
	Source   dht.Key
	Found    bool
}

// IPSub is the payload of KindIPSub.
type IPSub struct {
	Q *query.InnerProduct
}

// IPResp is the payload of KindIPResp.
type IPResp struct {
	QueryID query.ID
	Value   query.IPValue
}

// ReplicaMsg is the payload of KindReplica: an MBR copy walking the
// covering node's successor tail. TTL counts the remaining hops; the
// receiver stores the copy and forwards with TTL-1 while TTL > 1.
type ReplicaMsg struct {
	MBR *summary.MBR
	TTL int
}

// LoadMsg is the payload of KindLoad. Loads[0] is the sender's own
// data-plane message rate (messages/s) over the last push period;
// Loads[i] is the rate the sender learned for its i-th successor, i
// periods stale. The receiver (the sender's predecessor) shifts the
// vector into its successor-load table.
type LoadMsg struct {
	Loads []float64
}

// classifier maps middleware messages onto the evaluation's traffic
// categories and hop classes. It implements metrics.Classifier.
type classifier struct{}

// Classify implements metrics.Classifier. Continuation legs of a range
// multicast carry Dir != 0; the first transmission of a routed message has
// Hops == 1 and leaves the origin.
func (classifier) Classify(from dht.Key, msg *dht.Message) metrics.Category {
	origin := msg.Hops == 1 && from == msg.Src && msg.Dir == 0
	switch msg.Kind {
	case KindMBR:
		switch {
		case msg.Dir != 0:
			return metrics.MBRRange
		case origin:
			return metrics.MBRSource
		default:
			return metrics.MBRTransit
		}
	case KindQuery:
		switch {
		case msg.Dir != 0:
			return metrics.QueryRange
		case origin:
			return metrics.QueryInitial
		default:
			return metrics.QueryTransit
		}
	case KindNotify:
		return metrics.NeighborNotify
	case KindResponse:
		if origin {
			return metrics.ResponseClient
		}
		return metrics.ResponseTransit
	case KindLocPut, KindLocGet, KindLocReply:
		return metrics.Location
	case KindIPSub, KindIPResp:
		return metrics.InnerProduct
	case KindSketch, KindAggQuery, KindAggReply:
		return metrics.Sketch
	case KindSub, KindSubMatch:
		return metrics.Subscription
	case KindTopK, KindTopKReport:
		return metrics.TopKFreq
	case KindReplica:
		return metrics.Replica
	case KindLoad:
		return metrics.LoadReport
	default:
		return metrics.Other
	}
}

// ClassifyHops implements metrics.Classifier, grouping deliveries into the
// five classes of Fig. 8.
func (classifier) ClassifyHops(msg *dht.Message) metrics.HopClass {
	switch msg.Kind {
	case KindMBR:
		if msg.Dir != 0 {
			return metrics.HopMBRInternal
		}
		return metrics.HopMBR
	case KindQuery:
		if msg.Dir != 0 {
			return metrics.HopQueryInternal
		}
		return metrics.HopQuery
	case KindResponse, KindIPResp:
		return metrics.HopResponse
	default:
		return metrics.HopOther
	}
}

// sized stamps a message with its estimated wire size (envelope +
// payload) so traffic observers can account bandwidth (§IV-G's actual
// claim is about communication volume, not message counts).
func sized(msg *dht.Message) *dht.Message {
	msg.Bytes = wire.Sizeof(msg.Payload)
	return msg
}
