package core

import (
	"fmt"

	"streamdex/internal/clock"
	"streamdex/internal/cqe"
	"streamdex/internal/dht"
	"streamdex/internal/dsp"
	"streamdex/internal/metrics"
	"streamdex/internal/query"
	"streamdex/internal/sim"
	"streamdex/internal/summary"
)

// Middleware is one deployment of the distributed stream index: it owns a
// DataCenter per overlay node, the content-to-key mapper, the traffic
// collector, and the client-facing query API (the paper's "application
// view", Fig. 5).
type Middleware struct {
	cfg    Config
	clk    clock.Clock
	net    dht.Substrate
	mapper summary.Mapper
	col    *metrics.Collector
	rng    *sim.Rand

	dcs map[dht.Key]*DataCenter

	nextQueryID query.ID

	// Client-side result tracking.
	simMatches  map[query.ID][]query.Match
	simSeen     map[query.ID]map[string]map[uint64]bool
	simResponse map[query.ID]int
	ipValues    map[query.ID][]query.IPValue
	ipFailed    map[query.ID]bool

	// Continuous-query-engine client state: subscription detections
	// (deduplicated like similarity results), aggregate sketch folds, and
	// top-k report tables.
	subMatches map[query.ID][]query.Match
	subSeen    map[query.ID]map[string]map[uint64]bool
	aggFolds   map[query.ID]*cqe.SketchFold
	topkTables map[query.ID]*cqe.TopKTable
	topkK      map[query.ID]int

	// OnSimilarity, when non-nil, is invoked at each response delivery
	// with the newly reported matches (possibly none).
	OnSimilarity func(id query.ID, matches []query.Match)
	// OnInnerProduct, when non-nil, is invoked at each periodic value
	// push.
	OnInnerProduct func(id query.ID, v query.IPValue)

	unclassified int64
}

// New attaches the middleware to every live node of an existing overlay —
// any dht.Substrate implementation (simulated Chord, Pastry-style, or the
// live TCP transport). All periodic processes are scheduled on the
// substrate's clock, so the same code runs in virtual and wall time. The
// collector is installed as the network's traffic observer.
func New(net dht.Substrate, cfg Config) (*Middleware, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Space != net.Space() {
		return nil, fmt.Errorf("core: middleware space m=%d differs from overlay m=%d", cfg.Space.M, net.Space().M)
	}
	mw := &Middleware{
		cfg:         cfg,
		clk:         net.Clock(),
		net:         net,
		mapper:      summary.NewMapper(cfg.Space),
		col:         metrics.NewCollector(classifier{}),
		rng:         sim.NewRand(cfg.Seed).Fork("middleware"),
		dcs:         make(map[dht.Key]*DataCenter),
		simMatches:  make(map[query.ID][]query.Match),
		simSeen:     make(map[query.ID]map[string]map[uint64]bool),
		simResponse: make(map[query.ID]int),
		ipValues:    make(map[query.ID][]query.IPValue),
		ipFailed:    make(map[query.ID]bool),
		subMatches:  make(map[query.ID][]query.Match),
		subSeen:     make(map[query.ID]map[string]map[uint64]bool),
		aggFolds:    make(map[query.ID]*cqe.SketchFold),
		topkTables:  make(map[query.ID]*cqe.TopKTable),
		topkK:       make(map[query.ID]int),
	}
	net.SetObserver(mw.col)
	for _, id := range net.NodeIDs() {
		mw.AttachNode(id)
	}
	return mw, nil
}

// AttachNode creates (or returns) the DataCenter for an overlay node —
// called automatically for nodes present at construction, and manually
// after later joins.
func (mw *Middleware) AttachNode(id dht.Key) *DataCenter {
	if dc, ok := mw.dcs[id]; ok {
		return dc
	}
	dc := newDataCenter(id, mw)
	// A substrate with a data-plane worker pool (the live transport) gets
	// the concurrent paths: DeliverData upcalls, pooled ingest, and a way
	// to post worker-discovered control work back to the loop. The
	// simulator implements neither interface and stays fully serialized.
	if pp, ok := mw.net.(dht.PoolProvider); ok {
		if pool := pp.DataPool(); pool != nil {
			if poster, ok := mw.clk.(interface{ Post(func()) bool }); ok {
				dc.pool, dc.poster = pool, poster
			}
		}
	}
	mw.dcs[id] = dc
	mw.net.SetApp(id, dc)
	// Substrates that report neighborhood changes drive the engine's
	// eager churn re-registration; everywhere else the periodic refresh
	// in each operator's Tick re-homes standing registrations within one
	// push period.
	if nw, ok := mw.net.(dht.NeighborWatcher); ok {
		nw.WatchNeighbors(id, func() { dc.engine.OnRingChange(dc) })
	}
	dc.startTicker()
	return dc
}

// DataCenter returns the middleware instance on node id, or nil.
func (mw *Middleware) DataCenter(id dht.Key) *DataCenter { return mw.dcs[id] }

// Config returns the middleware configuration.
func (mw *Middleware) Config() Config { return mw.cfg }

// Collector exposes the traffic statistics collector.
func (mw *Middleware) Collector() *metrics.Collector { return mw.col }

// Mapper exposes the content-to-key mapping function h.
func (mw *Middleware) Mapper() summary.Mapper { return mw.mapper }

// Clock returns the clock the middleware schedules on.
func (mw *Middleware) Clock() clock.Clock { return mw.clk }

// Network returns the routing substrate.
func (mw *Middleware) Network() dht.Substrate { return mw.net }

// locKey is h2: the location-service key of a stream identifier (§IV-D).
func (mw *Middleware) locKey(sid string) dht.Key {
	return mw.cfg.Space.HashString("loc:" + sid)
}

// ExtractFeature computes the feature vector of a raw series of exactly
// WindowSize points, using the middleware's normalization — the same
// pipeline stream summaries go through, applied to a client's query
// sequence.
func (mw *Middleware) ExtractFeature(series []float64) (summary.Feature, error) {
	if len(series) != mw.cfg.WindowSize {
		return nil, fmt.Errorf("core: query series of %d points, want window size %d", len(series), mw.cfg.WindowSize)
	}
	sdft := newSeriesDFT(series, mw.cfg)
	return summary.FromCoeffs(sdft, mw.cfg.FeatureDims, mw.cfg.skipDC()), nil
}

// PostSimilarity poses a continuous similarity query (Q, radius, lifespan)
// at the given origin node, with Q given directly as a feature vector. It
// returns the query id results are tracked under.
func (mw *Middleware) PostSimilarity(origin dht.Key, f summary.Feature, radius float64, lifespan sim.Time) (query.ID, error) {
	if mw.dcs[origin] == nil {
		return 0, fmt.Errorf("core: unknown origin node %d", origin)
	}
	if len(f) != mw.cfg.FeatureDims {
		return 0, fmt.Errorf("core: feature of %d dims, want %d", len(f), mw.cfg.FeatureDims)
	}
	q := &query.Similarity{
		ID:       mw.newQueryID(),
		Origin:   origin,
		Feature:  f.Clone(),
		Radius:   radius,
		Norm:     mw.cfg.Norm,
		Posted:   mw.clk.Now(),
		Lifespan: lifespan,
	}
	if err := q.Validate(); err != nil {
		return 0, err
	}
	mw.col.CountEvent(metrics.EventQuery)
	lo, hi := mw.mapper.QueryRange(f.Routing(), radius)
	middle := mw.cfg.Space.Midpoint(lo, hi)
	msg := sized(&dht.Message{Kind: KindQuery, Payload: SimQuery{Q: q, MiddleKey: middle}})
	dht.SendRange(mw.net, origin, lo, hi, msg, mw.cfg.RangeMode)
	return q.ID, nil
}

// PostSimilaritySeries is PostSimilarity for a raw query sequence of
// WindowSize points: the feature vector is extracted first, exactly as
// §IV-E prescribes.
func (mw *Middleware) PostSimilaritySeries(origin dht.Key, series []float64, radius float64, lifespan sim.Time) (query.ID, error) {
	f, err := mw.ExtractFeature(series)
	if err != nil {
		return 0, err
	}
	return mw.PostSimilarity(origin, f, radius, lifespan)
}

// PostInnerProduct poses a continuous inner-product query at the origin
// node. The stream source is resolved through the location service (with
// client-side caching) and the subscription is delivered to it; the source
// pushes reconstructed values every push period.
func (mw *Middleware) PostInnerProduct(origin dht.Key, sid string, index []int, weights []float64, lifespan sim.Time) (query.ID, error) {
	dc := mw.dcs[origin]
	if dc == nil {
		return 0, fmt.Errorf("core: unknown origin node %d", origin)
	}
	q := &query.InnerProduct{
		ID:       mw.newQueryID(),
		Origin:   origin,
		StreamID: sid,
		Index:    append([]int(nil), index...),
		Weights:  append([]float64(nil), weights...),
		Posted:   mw.clk.Now(),
		Lifespan: lifespan,
	}
	if err := q.Validate(); err != nil {
		return 0, err
	}
	switch {
	case dc.streams[sid] != nil:
		// Locally sourced stream: subscribe directly.
		dc.registerIPSub(q)
	case hasKey(dc.locCache, sid):
		dc.sendIPSub(dc.locCache[sid], q)
	default:
		pending := dc.pendingIP[sid]
		dc.pendingIP[sid] = append(pending, q)
		if len(pending) == 0 {
			// First query for this stream: resolve the source.
			msg := sized(&dht.Message{Kind: KindLocGet, Payload: LocGet{StreamID: sid, Requester: origin}})
			mw.net.Send(origin, mw.locKey(sid), msg)
		}
	}
	return q.ID, nil
}

func hasKey(m map[string]dht.Key, k string) bool {
	_, ok := m[k]
	return ok
}

func (mw *Middleware) newQueryID() query.ID {
	mw.nextQueryID++
	return mw.nextQueryID
}

// deliverSimilarity records a response arriving at the client node.
func (mw *Middleware) deliverSimilarity(at dht.Key, p ResponseMsg) {
	mw.simResponse[p.QueryID]++
	var fresh []query.Match
	seen := mw.simSeen[p.QueryID]
	if seen == nil {
		seen = make(map[string]map[uint64]bool)
		mw.simSeen[p.QueryID] = seen
	}
	for _, m := range p.Matches {
		seqs := seen[m.StreamID]
		if seqs == nil {
			seqs = make(map[uint64]bool)
			seen[m.StreamID] = seqs
		}
		if seqs[m.Seq] {
			continue
		}
		seqs[m.Seq] = true
		fresh = append(fresh, m)
	}
	mw.simMatches[p.QueryID] = append(mw.simMatches[p.QueryID], fresh...)
	if mw.OnSimilarity != nil {
		mw.OnSimilarity(p.QueryID, fresh)
	}
	_ = at
}

// deliverIP records an inner-product value arriving at the client node.
func (mw *Middleware) deliverIP(at dht.Key, p IPResp) {
	mw.ipValues[p.QueryID] = append(mw.ipValues[p.QueryID], p.Value)
	if mw.OnInnerProduct != nil {
		mw.OnInnerProduct(p.QueryID, p.Value)
	}
	_ = at
}

// failIP marks inner-product queries as unresolvable (unknown stream id).
func (mw *Middleware) failIP(qs []*query.InnerProduct) {
	for _, q := range qs {
		mw.ipFailed[q.ID] = true
	}
}

// SimilarityMatches returns the deduplicated matches reported to the
// client so far.
func (mw *Middleware) SimilarityMatches(id query.ID) []query.Match {
	return append([]query.Match(nil), mw.simMatches[id]...)
}

// MatchedStreams returns the distinct stream ids reported for the query.
func (mw *Middleware) MatchedStreams(id query.ID) []string {
	seen := make(map[string]bool)
	var out []string
	for _, m := range mw.simMatches[id] {
		if !seen[m.StreamID] {
			seen[m.StreamID] = true
			out = append(out, m.StreamID)
		}
	}
	return out
}

// ResponseCount returns how many periodic responses (including empty ones)
// the client received for the query.
func (mw *Middleware) ResponseCount(id query.ID) int { return mw.simResponse[id] }

// InnerProductValues returns the periodic values received for the query.
func (mw *Middleware) InnerProductValues(id query.ID) []query.IPValue {
	return append([]query.IPValue(nil), mw.ipValues[id]...)
}

// InnerProductFailed reports whether the query could not be resolved.
func (mw *Middleware) InnerProductFailed(id query.ID) bool { return mw.ipFailed[id] }

// newSeriesDFT computes the first Coeffs normalized coefficients of a
// complete series in one shot (query-side feature extraction).
func newSeriesDFT(series []float64, cfg Config) []complex128 {
	return dsp.GoertzelBins(dsp.Normalize(series, cfg.Norm), cfg.Coeffs)
}
