package core

import (
	"testing"

	"streamdex/internal/dht"
	"streamdex/internal/sim"
	"streamdex/internal/summary"
)

// TestSubscriptionSurvivesCoveringNodeCrash scripts the churn scenario the
// pub/sub operator's soft-state design targets: a standing predicate is
// registered at the nodes covering its key range, every one of them (other
// than the origin) is crashed at once, and the ring heals through
// stabilization. The origin's periodic re-multicast must re-home the
// predicate on the nodes inheriting the vacated arc, and detections must
// keep flowing — provably from a node that held no registration before the
// crash.
func TestSubscriptionSurvivesCoveringNodeCrash(t *testing.T) {
	cfg := testConfig()
	eng, net, mw, ids := testCluster(t, 16, cfg, true)
	eng.RunFor(5 * sim.Second)

	// Narrow routing range (dim 0), permissive elsewhere: registered at a
	// small set of covering nodes but matched by plenty of summaries.
	origin := ids[0]
	lo := summary.Feature{-0.1, -1000, -1000}
	hi := summary.Feature{0.1, 1000, 1000}
	subID, err := mw.PostSubscription(origin, lo, hi, 600*sim.Second)
	if err != nil {
		t.Fatal(err)
	}
	eng.RunFor(3 * sim.Second)
	if len(mw.SubscriptionMatches(subID)) == 0 {
		t.Fatal("no detections before the crash; the workload should hit the predicate")
	}

	registered := func() map[dht.Key]bool {
		out := make(map[dht.Key]bool)
		for _, id := range ids {
			o := mw.DataCenter(id).opSub
			o.mu.RLock()
			_, ok := o.subs[subID]
			o.mu.RUnlock()
			if ok {
				out[id] = true
			}
		}
		return out
	}
	pre := registered()
	var victims []dht.Key
	for id := range pre {
		if id != origin {
			victims = append(victims, id)
		}
	}
	if len(victims) == 0 {
		t.Fatal("predicate registered only at its origin; widen the test range")
	}
	if len(victims) > 3 {
		t.Fatalf("predicate covers %d non-origin nodes; narrow the test range so the ring (succ-list 4) can absorb the crash", len(victims))
	}
	for _, v := range victims {
		net.Fail(v)
	}
	crashAt := eng.Now()
	eng.RunFor(12 * sim.Second)

	var fresh, reHomed int
	for _, m := range mw.SubscriptionMatches(subID) {
		if m.FoundAt <= crashAt {
			continue
		}
		fresh++
		if !pre[m.Node] {
			reHomed++
		}
	}
	if fresh == 0 {
		t.Fatal("no detections after the covering nodes crashed")
	}
	if reHomed == 0 {
		t.Fatalf("%d post-crash detections, all from pre-crash holders: the predicate never re-homed", fresh)
	}

	// The re-homed registration must live on a node that was not covering
	// the range before the crash.
	post := registered()
	newHolder := false
	for id := range post {
		if !pre[id] {
			newHolder = true
		}
	}
	if !newHolder {
		t.Fatalf("registrations after heal %v all predate the crash (pre %v)", keys(post), keys(pre))
	}
}

func keys(m map[dht.Key]bool) []dht.Key {
	out := make([]dht.Key, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
