package core

// ipOp is the continuous inner-product path (§IV-D) as a cqe.Operator:
// the location service (put/get/reply), subscriptions delivered to stream
// sources, and periodic reconstructed-value pushes.

import (
	"streamdex/internal/cqe"
	"streamdex/internal/dht"
	"streamdex/internal/sim"
	"streamdex/internal/summary"
)

type ipOp struct {
	dc *DataCenter
}

// Name implements cqe.Operator.
func (o *ipOp) Name() string { return "inner-product" }

// Kinds implements cqe.Operator.
func (o *ipOp) Kinds() []dht.Kind {
	return []dht.Kind{KindLocPut, KindLocGet, KindLocReply, KindIPSub, KindIPResp}
}

// Deliver implements cqe.Operator (loop context — all inner-product state
// is loop-confined).
func (o *ipOp) Deliver(h cqe.Host, msg *dht.Message) {
	dc := o.dc
	switch msg.Kind {
	case KindLocPut:
		p := msg.Payload.(LocPut)
		dc.locTable[p.StreamID] = p.Source
	case KindLocGet:
		dc.onLocGet(msg)
	case KindLocReply:
		dc.onLocReply(msg)
	case KindIPSub:
		dc.onIPSub(msg)
	case KindIPResp:
		dc.mw.deliverIP(dc.id, msg.Payload.(IPResp))
	}
}

// DeliverData implements cqe.Operator: nothing here is worker-safe.
func (o *ipOp) DeliverData(h cqe.Host, msg *dht.Message) bool { return false }

// OnMBR implements cqe.Operator: inner products watch raw streams, not
// summaries.
func (o *ipOp) OnMBR(h cqe.Host, b *summary.MBR) {}

// Tick implements cqe.Operator: sweep expired subscriptions, then push the
// periodic reconstructed values.
func (o *ipOp) Tick(h cqe.Host, now sim.Time) {
	dc := o.dc
	for id, st := range dc.ipSubs {
		if now >= st.q.Expiry() {
			delete(dc.ipSubs, id)
		}
	}
	dc.pushInnerProducts(now)
}

// OnRingChange implements cqe.Operator. Subscriptions live at stream
// sources, not at ring positions — churn does not move them.
func (o *ipOp) OnRingChange(h cqe.Host) {}
