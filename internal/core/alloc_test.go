package core

import (
	"testing"

	"streamdex/internal/query"
	"streamdex/internal/summary"
)

// TestAppendCandidatesZeroAllocs guards the query hot path: with a reused
// destination slice, a candidate walk over the sorted store — binary-search
// window, expiry filtering, exact MinDist — must not allocate. DataCenters
// keep a per-node scratch slice for exactly this reason.
func TestAppendCandidatesZeroAllocs(t *testing.T) {
	s := NewStore()
	for i := 0; i < 256; i++ {
		l1 := float64(i)/256 - 0.5
		s.Put(mbrAt("s", uint64(i), summary.Feature{l1, 0}, summary.Feature{l1 + 0.01, 0.1}, 0))
	}
	q := summary.Feature{0.1, 0.05}
	dst := make([]query.Match, 0, 64)
	dst = s.AppendCandidates(dst, q, 0.05, 0, 1)
	if len(dst) == 0 {
		t.Fatal("query should match some entries")
	}
	allocs := testing.AllocsPerRun(100, func() {
		dst = s.AppendCandidates(dst[:0], q, 0.05, 0, 1)
	})
	if allocs != 0 {
		t.Fatalf("AppendCandidates allocated %.1f objects per run, want 0", allocs)
	}
}
