package core

// Client-facing API of the continuous-query engine: posting standing
// subscriptions, windowed-aggregate queries and top-k monitors, and
// reading back their folded results — the CQE extension of the paper's
// "application view" (Fig. 5).

import (
	"fmt"
	"sort"

	"streamdex/internal/cqe"
	"streamdex/internal/dht"
	"streamdex/internal/query"
	"streamdex/internal/sim"
	"streamdex/internal/summary"
)

// PostSubscription registers a standing pub/sub predicate at the origin
// node: every MBR intersecting the rectangle [lo, hi] during the lifespan
// is pushed back to the origin. Returns the id detections are tracked
// under.
func (mw *Middleware) PostSubscription(origin dht.Key, lo, hi summary.Feature, lifespan sim.Time) (query.ID, error) {
	dc := mw.dcs[origin]
	if dc == nil {
		return 0, fmt.Errorf("core: unknown origin node %d", origin)
	}
	if len(lo) != mw.cfg.FeatureDims || len(hi) != mw.cfg.FeatureDims {
		return 0, fmt.Errorf("core: predicate corners of %d/%d dims, want %d", len(lo), len(hi), mw.cfg.FeatureDims)
	}
	p := &query.Predicate{
		ID:       mw.newQueryID(),
		Origin:   origin,
		Lo:       lo.Clone(),
		Hi:       hi.Clone(),
		Posted:   mw.clk.Now(),
		Lifespan: lifespan,
	}
	if err := p.Validate(); err != nil {
		return 0, err
	}
	dc.opSub.register(dc, p)
	return p.ID, nil
}

// CancelSubscription withdraws a subscription posted at the origin node.
func (mw *Middleware) CancelSubscription(origin dht.Key, id query.ID) error {
	dc := mw.dcs[origin]
	if dc == nil {
		return fmt.Errorf("core: unknown origin node %d", origin)
	}
	if !dc.opSub.cancel(dc, id) {
		return fmt.Errorf("core: subscription %d not registered at node %d", id, origin)
	}
	return nil
}

// SubscriptionMatches returns the deduplicated detections pushed to the
// subscriber so far.
func (mw *Middleware) SubscriptionMatches(id query.ID) []query.Match {
	return append([]query.Match(nil), mw.subMatches[id]...)
}

// SubscribedStreams returns the distinct stream ids detected for the
// subscription, sorted.
func (mw *Middleware) SubscribedStreams(id query.ID) []string {
	seen := make(map[string]bool)
	var out []string
	for _, m := range mw.subMatches[id] {
		if !seen[m.StreamID] {
			seen[m.StreamID] = true
			out = append(out, m.StreamID)
		}
	}
	sort.Strings(out)
	return out
}

// deliverSubMatch folds a covering node's detections into the client
// state, deduplicating per (stream, seq) — range replication makes
// several nodes detect the same MBR.
func (mw *Middleware) deliverSubMatch(p SubMatchMsg) {
	seen := mw.subSeen[p.SubID]
	if seen == nil {
		seen = make(map[string]map[uint64]bool)
		mw.subSeen[p.SubID] = seen
	}
	for _, m := range p.Matches {
		seqs := seen[m.StreamID]
		if seqs == nil {
			seqs = make(map[uint64]bool)
			seen[m.StreamID] = seqs
		}
		if seqs[m.Seq] {
			continue
		}
		seqs[m.Seq] = true
		mw.subMatches[p.SubID] = append(mw.subMatches[p.SubID], m)
	}
}

// PostAggregate poses a continuous windowed-aggregate query over the
// streams whose routing coordinate falls in [lo, hi]. Covering nodes push
// their per-stream window sketches every push period; the folded result
// is read with AggCount / AggQuantile / AggStreams.
func (mw *Middleware) PostAggregate(origin dht.Key, lo, hi float64, lifespan sim.Time) (query.ID, error) {
	dc := mw.dcs[origin]
	if dc == nil {
		return 0, fmt.Errorf("core: unknown origin node %d", origin)
	}
	q := &query.Aggregate{
		ID:       mw.newQueryID(),
		Origin:   origin,
		Lo:       lo,
		Hi:       hi,
		Posted:   mw.clk.Now(),
		Lifespan: lifespan,
	}
	if err := q.Validate(); err != nil {
		return 0, err
	}
	mw.aggFolds[q.ID] = cqe.NewSketchFold()
	dc.opAgg.register(dc, q)
	return q.ID, nil
}

// deliverAggReply folds a covering node's sketch report, keeping the
// latest publication per stream.
func (mw *Middleware) deliverAggReply(p AggReplyMsg) {
	fold := mw.aggFolds[p.QueryID]
	if fold == nil {
		return // expired or unknown query
	}
	for _, it := range p.Items {
		fold.Absorb(it.StreamID, it.Seq, it.Sketch)
	}
}

// AggStreams returns the distinct streams reporting into the aggregate,
// sorted.
func (mw *Middleware) AggStreams(id query.ID) []string {
	fold := mw.aggFolds[id]
	if fold == nil {
		return nil
	}
	return fold.Streams()
}

// AggCount returns the windowed count estimate across the aggregated
// streams, as of now.
func (mw *Middleware) AggCount(id query.ID) uint64 {
	fold := mw.aggFolds[id]
	if fold == nil {
		return 0
	}
	return fold.Count(mw.clk.Now())
}

// AggQuantile returns the phi-quantile estimate of the merged windowed
// value distribution, as of now. ok is false before any sketch arrived
// (or when reported sketches are not merge-compatible).
func (mw *Middleware) AggQuantile(id query.ID, phi float64) (v float64, ok bool) {
	fold := mw.aggFolds[id]
	if fold == nil {
		return 0, false
	}
	return fold.Quantile(mw.clk.Now(), phi)
}

// PostTopK poses a continuous top-k frequency monitor over the MBR
// publications whose routing coordinate falls in [lo, hi]. The current
// ranking is read with TopK.
func (mw *Middleware) PostTopK(origin dht.Key, k int, lo, hi float64, lifespan sim.Time) (query.ID, error) {
	dc := mw.dcs[origin]
	if dc == nil {
		return 0, fmt.Errorf("core: unknown origin node %d", origin)
	}
	q := &query.TopK{
		ID:       mw.newQueryID(),
		Origin:   origin,
		K:        k,
		Lo:       lo,
		Hi:       hi,
		Posted:   mw.clk.Now(),
		Lifespan: lifespan,
	}
	if err := q.Validate(); err != nil {
		return 0, err
	}
	mw.topkTables[q.ID] = cqe.NewTopKTable()
	mw.topkK[q.ID] = k
	dc.opTopK.register(dc, q)
	return q.ID, nil
}

// deliverTopKReport replaces the reporting node's frequency table at the
// monitoring client.
func (mw *Middleware) deliverTopKReport(p TopKReportMsg) {
	table := mw.topkTables[p.QueryID]
	if table == nil {
		return
	}
	table.Absorb(p.Node, p.Counts)
}

// TopK returns the monitor's current ranking: the k most frequently
// publishing streams with their summed per-node counts.
func (mw *Middleware) TopK(id query.ID) []cqe.StreamCount {
	table := mw.topkTables[id]
	if table == nil {
		return nil
	}
	return table.Top(mw.topkK[id])
}
