package core

import (
	"math"
	"testing"

	"streamdex/internal/chord"
	"streamdex/internal/dht"
	"streamdex/internal/metrics"
	"streamdex/internal/sim"
	"streamdex/internal/stream"
	"streamdex/internal/summary"
)

// testConfig shrinks the evaluation configuration so windows fill within a
// couple of simulated seconds.
func testConfig() Config {
	cfg := DefaultConfig()
	cfg.WindowSize = 32
	cfg.Coeffs = 3
	cfg.FeatureDims = 3
	cfg.Beta = 5
	cfg.MBRLifespan = 5 * sim.Second
	cfg.PushPeriod = sim.Second
	return cfg
}

// testCluster builds an N-node overlay with one random-walk stream per
// node (stream id "s<i>" at node ids[i]) and returns everything needed.
func testCluster(t *testing.T, n int, cfg Config, withMaintenance bool) (*sim.Engine, *chord.Network, *Middleware, []dht.Key) {
	t.Helper()
	eng := sim.NewEngine()
	ccfg := chord.Config{Space: cfg.Space, HopDelay: 50 * sim.Millisecond, SuccListLen: 4}
	if withMaintenance {
		ccfg.StabilizeEvery = 200 * sim.Millisecond
		ccfg.FixFingersEvery = 100 * sim.Millisecond
	}
	net := chord.New(eng, ccfg)
	ids := chord.SortKeys(chord.UniformIDs(cfg.Space, n))
	net.BuildStable(ids, nil)
	mw, err := New(net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	root := sim.NewRand(cfg.Seed)
	for i, id := range ids {
		rng := root.Fork("walk-" + string(rune('a'+i%26)) + string(rune('0'+i/26)))
		st := stream.Stream{
			ID:     streamName(i),
			Gen:    stream.DefaultRandomWalk(rng),
			Period: 100*sim.Millisecond + sim.Time(i%5)*20*sim.Millisecond,
		}
		if err := mw.DataCenter(id).RegisterStream(st); err != nil {
			t.Fatal(err)
		}
	}
	return eng, net, mw, ids
}

func streamName(i int) string {
	return "s" + string(rune('0'+i/10)) + string(rune('0'+i%10))
}

func TestMBRsStoredAtContentSuccessor(t *testing.T) {
	cfg := testConfig()
	eng, net, mw, ids := testCluster(t, 16, cfg, false)
	eng.RunFor(20 * sim.Second)

	total := 0
	for _, id := range ids {
		total += mw.DataCenter(id).Store().Len()
	}
	if total == 0 {
		t.Fatal("no MBRs stored anywhere after 20 s")
	}
	// Spot-check placement: every stored MBR must cover a key interval
	// that intersects its holder's responsibility.
	for _, id := range ids {
		dc := mw.DataCenter(id)
		for _, b := range dc.store.allEntries() {
			lo, hi := b.KeyRange(mw.Mapper())
			// The holder must cover some key in [lo,hi], or be the
			// MBR's own source (local copy). A node intersects the
			// arc iff it covers either boundary (successor(lo) and
			// successor(hi) both own part of it) or its identifier
			// lies inside [lo,hi].
			ok := net.Covers(id, lo) || net.Covers(id, hi) ||
				(uint64(id) >= uint64(lo) && uint64(id) <= uint64(hi))
			if !ok && !sourcesStream(dc, b.StreamID) {
				t.Fatalf("node %d holds MBR %v outside its arc [%d,%d]", id, b, lo, hi)
			}
		}
	}
}

func sourcesStream(dc *DataCenter, sid string) bool {
	_, ok := dc.streams[sid]
	return ok
}

func TestPlantedSimilarStreamIsFound(t *testing.T) {
	cfg := testConfig()
	eng, _, mw, ids := testCluster(t, 12, cfg, false)

	// Plant two identical streams at two different nodes: their features
	// coincide at all times, so each must be reported as similar to the
	// other's pattern.
	twinA := stream.Stream{ID: "twinA", Gen: stream.DefaultRandomWalk(sim.NewRand(777)), Period: 100 * sim.Millisecond}
	twinB := stream.Stream{ID: "twinB", Gen: stream.DefaultRandomWalk(sim.NewRand(777)), Period: 100 * sim.Millisecond}
	if err := mw.DataCenter(ids[0]).RegisterStream(twinA); err != nil {
		t.Fatal(err)
	}
	if err := mw.DataCenter(ids[5]).RegisterStream(twinB); err != nil {
		t.Fatal(err)
	}
	eng.RunFor(15 * sim.Second) // windows fill, MBRs circulate

	f := mw.DataCenter(ids[0]).StreamFeature("twinA")
	if f == nil {
		t.Fatal("twinA feature not ready")
	}
	qid, err := mw.PostSimilarity(ids[9], f, 0.15, 30*sim.Second)
	if err != nil {
		t.Fatal(err)
	}
	eng.RunFor(15 * sim.Second)

	matched := map[string]bool{}
	for _, sid := range mw.MatchedStreams(qid) {
		matched[sid] = true
	}
	if !matched["twinB"] {
		t.Fatalf("twinB not reported; matched = %v", mw.MatchedStreams(qid))
	}
	if !matched["twinA"] {
		t.Fatalf("twinA itself not reported; matched = %v", mw.MatchedStreams(qid))
	}
}

func TestNoFalseDismissals(t *testing.T) {
	// Every stream whose feature is well inside the query radius at post
	// time (with margin for drift) must be reported.
	cfg := testConfig()
	eng, _, mw, ids := testCluster(t, 20, cfg, false)
	eng.RunFor(15 * sim.Second)

	q := summary.Feature{0, 0, 0}
	radius := 0.4
	margin := 0.25
	var mustFind []string
	for i, id := range ids {
		f := mw.DataCenter(id).StreamFeature(streamName(i))
		if f == nil {
			t.Fatalf("stream %s window not full", streamName(i))
		}
		if f.Dist(q) <= radius-margin {
			mustFind = append(mustFind, streamName(i))
		}
	}
	if len(mustFind) == 0 {
		t.Skip("no stream close enough to the probe this seed; adjust seed")
	}
	qid, err := mw.PostSimilarity(ids[0], q, radius, 20*sim.Second)
	if err != nil {
		t.Fatal(err)
	}
	eng.RunFor(10 * sim.Second)
	matched := map[string]bool{}
	for _, sid := range mw.MatchedStreams(qid) {
		matched[sid] = true
	}
	for _, sid := range mustFind {
		if !matched[sid] {
			t.Errorf("stream %s inside radius not reported (false dismissal)", sid)
		}
	}
}

func TestResponsesArrivePeriodically(t *testing.T) {
	cfg := testConfig()
	eng, _, mw, ids := testCluster(t, 10, cfg, false)
	eng.RunFor(10 * sim.Second)

	qid, err := mw.PostSimilarity(ids[2], summary.Feature{0.1, 0, 0}, 0.1, 12*sim.Second)
	if err != nil {
		t.Fatal(err)
	}
	eng.RunFor(20 * sim.Second)
	// Lifespan 12 s with 1 s push period: expect on the order of 12
	// responses (allow slack for phase and propagation).
	got := mw.ResponseCount(qid)
	if got < 8 || got > 14 {
		t.Fatalf("responses = %d, want ~12 (1/s for 12s)", got)
	}
	// No responses after expiry.
	before := mw.ResponseCount(qid)
	eng.RunFor(10 * sim.Second)
	if mw.ResponseCount(qid) != before {
		t.Fatal("responses kept arriving after query expiry")
	}
}

func TestSubscriptionsExpire(t *testing.T) {
	cfg := testConfig()
	eng, _, mw, ids := testCluster(t, 10, cfg, false)
	eng.RunFor(8 * sim.Second)
	if _, err := mw.PostSimilarity(ids[0], summary.Feature{0, 0, 0}, 0.2, 5*sim.Second); err != nil {
		t.Fatal(err)
	}
	eng.RunFor(2 * sim.Second)
	subs := 0
	for _, id := range ids {
		subs += mw.DataCenter(id).SubCount()
	}
	if subs == 0 {
		t.Fatal("no subscriptions registered")
	}
	eng.RunFor(10 * sim.Second) // lifespan passed + sweep periods
	for _, id := range ids {
		if c := mw.DataCenter(id).SubCount(); c != 0 {
			t.Fatalf("node %d still holds %d subscriptions after expiry", id, c)
		}
		if len(mw.DataCenter(id).aggs) != 0 {
			t.Fatalf("node %d still holds aggregators after expiry", id)
		}
	}
}

func TestStoreBoundedByLifespan(t *testing.T) {
	cfg := testConfig()
	eng, _, mw, ids := testCluster(t, 10, cfg, false)
	eng.RunFor(30 * sim.Second)
	size1 := 0
	for _, id := range ids {
		size1 += mw.DataCenter(id).Store().Len()
	}
	eng.RunFor(30 * sim.Second)
	size2 := 0
	for _, id := range ids {
		size2 += mw.DataCenter(id).Store().Len()
	}
	// Soft state: the store reaches a steady state, it does not grow
	// without bound. Allow 50% slack for phase effects.
	if float64(size2) > 1.5*float64(size1)+5 {
		t.Fatalf("store grew from %d to %d; lifespan sweep not working", size1, size2)
	}
}

func TestInnerProductApproximatesAverage(t *testing.T) {
	cfg := testConfig()
	eng, _, mw, ids := testCluster(t, 10, cfg, false)
	eng.RunFor(10 * sim.Second)

	// Average of the most recent 8 window values of node 3's stream,
	// posted from node 7 (location service + remote subscription path).
	sid := streamName(3)
	idx := make([]int, 8)
	w := make([]float64, 8)
	for i := range idx {
		idx[i] = cfg.WindowSize - 8 + i
		w[i] = 1.0 / 8
	}
	qid, err := mw.PostInnerProduct(ids[7], sid, idx, w, 10*sim.Second)
	if err != nil {
		t.Fatal(err)
	}
	eng.RunFor(8 * sim.Second)

	vals := mw.InnerProductValues(qid)
	if len(vals) < 3 {
		t.Fatalf("inner-product pushes = %d, want several", len(vals))
	}
	// Ground truth: compare the last value against the exact average of
	// the source's current window. The reconstruction uses 3 of 17
	// coefficients of a smooth random walk, so demand agreement within
	// 15% of the window's value scale.
	window := mw.DataCenter(ids[3]).StreamWindow(sid)
	if window == nil {
		t.Fatal("source window unavailable")
	}
	var exact float64
	for i := cfg.WindowSize - 8; i < cfg.WindowSize; i++ {
		exact += window[i] / 8
	}
	got := vals[len(vals)-1].Value
	scale := math.Abs(exact) + 1
	if math.Abs(got-exact)/scale > 0.15 {
		t.Fatalf("approximate average %v vs exact %v", got, exact)
	}
	if !vals[0].Approx {
		t.Fatal("values must be flagged approximate")
	}
}

func TestInnerProductLocationCaching(t *testing.T) {
	cfg := testConfig()
	eng, _, mw, ids := testCluster(t, 10, cfg, false)
	eng.RunFor(8 * sim.Second)
	mw.Collector().Reset(eng.Now())

	sid := streamName(2)
	if _, err := mw.PostInnerProduct(ids[6], sid, []int{0}, []float64{1}, 5*sim.Second); err != nil {
		t.Fatal(err)
	}
	eng.RunFor(3 * sim.Second)
	rep1 := mw.Collector().Snapshot(eng.Now(), ids)
	loc1 := rep1.TotalByCategory[metrics.Location]
	if loc1 == 0 {
		t.Fatal("first inner-product query generated no location traffic")
	}
	// A second query for the same stream from the same origin must use
	// the cache: zero additional location messages.
	mw.Collector().Reset(eng.Now())
	if _, err := mw.PostInnerProduct(ids[6], sid, []int{1}, []float64{1}, 5*sim.Second); err != nil {
		t.Fatal(err)
	}
	eng.RunFor(3 * sim.Second)
	rep2 := mw.Collector().Snapshot(eng.Now(), ids)
	if rep2.TotalByCategory[metrics.Location] != 0 {
		t.Fatalf("cached resolution still sent %d location messages", rep2.TotalByCategory[metrics.Location])
	}
	if rep2.TotalByCategory[metrics.InnerProduct] == 0 {
		t.Fatal("second subscription sent no inner-product traffic")
	}
}

func TestInnerProductLocalStreamNoNetwork(t *testing.T) {
	cfg := testConfig()
	eng, _, mw, ids := testCluster(t, 8, cfg, false)
	eng.RunFor(8 * sim.Second)
	mw.Collector().Reset(eng.Now())
	// Query a stream at its own source node.
	sid := streamName(4)
	qid, err := mw.PostInnerProduct(ids[4], sid, []int{0}, []float64{1}, 5*sim.Second)
	if err != nil {
		t.Fatal(err)
	}
	eng.RunFor(4 * sim.Second)
	rep := mw.Collector().Snapshot(eng.Now(), ids)
	if rep.TotalByCategory[metrics.Location] != 0 || rep.TotalByCategory[metrics.InnerProduct] != 0 {
		t.Fatal("local subscription should produce no location or subscription traffic")
	}
	if len(mw.InnerProductValues(qid)) == 0 {
		t.Fatal("local subscription produced no values")
	}
}

func TestInnerProductUnknownStream(t *testing.T) {
	cfg := testConfig()
	eng, _, mw, ids := testCluster(t, 8, cfg, false)
	eng.RunFor(5 * sim.Second)
	qid, err := mw.PostInnerProduct(ids[0], "no-such-stream", []int{0}, []float64{1}, 5*sim.Second)
	if err != nil {
		t.Fatal(err)
	}
	eng.RunFor(3 * sim.Second)
	if !mw.InnerProductFailed(qid) {
		t.Fatal("query for unknown stream not marked failed")
	}
	if len(mw.InnerProductValues(qid)) != 0 {
		t.Fatal("values for unknown stream")
	}
}

func TestExtractFeatureMatchesStreamPipeline(t *testing.T) {
	cfg := testConfig()
	eng, _, mw, ids := testCluster(t, 8, cfg, false)
	eng.RunFor(10 * sim.Second)
	sid := streamName(1)
	dc := mw.DataCenter(ids[1])
	window := dc.StreamWindow(sid)
	want := dc.StreamFeature(sid)
	got, err := mw.ExtractFeature(window)
	if err != nil {
		t.Fatal(err)
	}
	if got.Dist(want) > 1e-6 {
		t.Fatalf("query-side feature %v != stream-side %v", got, want)
	}
}

func TestExtractFeatureWrongLength(t *testing.T) {
	cfg := testConfig()
	_, _, mw, _ := testCluster(t, 4, cfg, false)
	if _, err := mw.ExtractFeature(make([]float64, 5)); err == nil {
		t.Fatal("wrong-length series accepted")
	}
}

func TestPostValidationErrors(t *testing.T) {
	cfg := testConfig()
	_, _, mw, ids := testCluster(t, 4, cfg, false)
	if _, err := mw.PostSimilarity(12345, summary.Feature{0, 0, 0}, 0.1, sim.Second); err == nil {
		t.Fatal("unknown origin accepted")
	}
	if _, err := mw.PostSimilarity(ids[0], summary.Feature{0, 0}, 0.1, sim.Second); err == nil {
		t.Fatal("wrong dimensionality accepted")
	}
	if _, err := mw.PostSimilarity(ids[0], summary.Feature{0, 0, 0}, -1, sim.Second); err == nil {
		t.Fatal("negative radius accepted")
	}
	if _, err := mw.PostInnerProduct(ids[0], "s", nil, nil, sim.Second); err == nil {
		t.Fatal("empty index vector accepted")
	}
	if _, err := mw.PostInnerProduct(54321, "s", []int{0}, []float64{1}, sim.Second); err == nil {
		t.Fatal("unknown origin accepted for inner product")
	}
}

func TestQueryAfterNodeFailure(t *testing.T) {
	cfg := testConfig()
	eng, net, mw, ids := testCluster(t, 14, cfg, true)
	eng.RunFor(10 * sim.Second)

	// Crash two nodes; the ring heals through stabilization and queries
	// posted afterwards are still answered from surviving replicas.
	net.Fail(ids[3])
	net.Fail(ids[8])
	eng.RunFor(15 * sim.Second)

	origin := ids[0]
	qid, err := mw.PostSimilarity(origin, summary.Feature{0, 0, 0}, 0.5, 20*sim.Second)
	if err != nil {
		t.Fatal(err)
	}
	eng.RunFor(15 * sim.Second)
	if mw.ResponseCount(qid) == 0 {
		t.Fatal("no responses after node failures")
	}
	if len(mw.MatchedStreams(qid)) == 0 {
		t.Fatal("no matches after node failures despite wide radius")
	}
}

func TestDeterministicCounters(t *testing.T) {
	run := func() ([metrics.NumCategories]int64, [metrics.NumEventTypes]int64) {
		cfg := testConfig()
		eng, _, mw, ids := testCluster(t, 12, cfg, false)
		eng.RunFor(8 * sim.Second)
		if _, err := mw.PostSimilarity(ids[1], summary.Feature{0.05, 0, 0}, 0.2, 10*sim.Second); err != nil {
			t.Fatal(err)
		}
		eng.RunFor(10 * sim.Second)
		rep := mw.Collector().Snapshot(eng.Now(), ids)
		return rep.TotalByCategory, rep.Events
	}
	c1, e1 := run()
	c2, e2 := run()
	if c1 != c2 {
		t.Fatalf("non-deterministic category totals:\n%v\n%v", c1, c2)
	}
	if e1 != e2 {
		t.Fatalf("non-deterministic event counts: %v vs %v", e1, e2)
	}
}

func TestClassifierCategories(t *testing.T) {
	cl := classifier{}
	cases := []struct {
		msg  dht.Message
		from dht.Key
		want metrics.Category
	}{
		{dht.Message{Kind: KindMBR, Src: 5, Hops: 1}, 5, metrics.MBRSource},
		{dht.Message{Kind: KindMBR, Src: 5, Hops: 2}, 7, metrics.MBRTransit},
		{dht.Message{Kind: KindMBR, Src: 5, Hops: 4, Dir: 1}, 7, metrics.MBRRange},
		{dht.Message{Kind: KindQuery, Src: 5, Hops: 1}, 5, metrics.QueryInitial},
		{dht.Message{Kind: KindQuery, Src: 5, Hops: 3}, 9, metrics.QueryTransit},
		{dht.Message{Kind: KindQuery, Src: 5, Hops: 3, Dir: -1}, 9, metrics.QueryRange},
		{dht.Message{Kind: KindNotify, Src: 5, Hops: 1}, 5, metrics.NeighborNotify},
		{dht.Message{Kind: KindResponse, Src: 5, Hops: 1}, 5, metrics.ResponseClient},
		{dht.Message{Kind: KindResponse, Src: 5, Hops: 2}, 8, metrics.ResponseTransit},
		{dht.Message{Kind: KindLocGet, Src: 5, Hops: 1}, 5, metrics.Location},
		{dht.Message{Kind: KindIPSub, Src: 5, Hops: 1}, 5, metrics.InnerProduct},
		{dht.Message{Kind: 99, Src: 5, Hops: 1}, 5, metrics.Other},
	}
	for i, c := range cases {
		if got := cl.Classify(c.from, &c.msg); got != c.want {
			t.Errorf("case %d: Classify = %v, want %v", i, got, c.want)
		}
	}
}

func TestClassifierHopClasses(t *testing.T) {
	cl := classifier{}
	cases := []struct {
		msg  dht.Message
		want metrics.HopClass
	}{
		{dht.Message{Kind: KindMBR}, metrics.HopMBR},
		{dht.Message{Kind: KindMBR, Dir: 1}, metrics.HopMBRInternal},
		{dht.Message{Kind: KindQuery}, metrics.HopQuery},
		{dht.Message{Kind: KindQuery, Dir: -1}, metrics.HopQueryInternal},
		{dht.Message{Kind: KindResponse}, metrics.HopResponse},
		{dht.Message{Kind: KindIPResp}, metrics.HopResponse},
		{dht.Message{Kind: KindNotify}, metrics.HopOther},
	}
	for i, c := range cases {
		if got := cl.ClassifyHops(&c.msg); got != c.want {
			t.Errorf("case %d: ClassifyHops = %v, want %v", i, got, c.want)
		}
	}
}

func TestMiddlewareSpaceMismatch(t *testing.T) {
	eng := sim.NewEngine()
	net := chord.New(eng, chord.Config{Space: dht.NewSpace(16), SuccListLen: 2})
	net.BuildStable([]dht.Key{1, 100}, nil)
	cfg := testConfig() // m = 32
	if _, err := New(net, cfg); err == nil {
		t.Fatal("space mismatch accepted")
	}
}

func TestDuplicateStreamRejected(t *testing.T) {
	cfg := testConfig()
	_, _, mw, ids := testCluster(t, 4, cfg, false)
	dc := mw.DataCenter(ids[0])
	st := stream.Stream{ID: "dup", Gen: stream.DefaultRandomWalk(sim.NewRand(1)), Period: sim.Second}
	if err := dc.RegisterStream(st); err != nil {
		t.Fatal(err)
	}
	if err := dc.RegisterStream(st); err == nil {
		t.Fatal("duplicate stream accepted")
	}
}
