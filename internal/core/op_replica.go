package core

// repOp implements hot-range load balancing (Config.Replicas > 1):
//
//   - Replica tail: when an MBR's range multicast reaches its last natural
//     coverer, the summary walks Replicas-1 further ring successors as
//     KindReplica, so an MBR stored at node n_i is held by n_i..n_{i+R-1}.
//   - Soft-state republish: the origin re-multicasts each live MBR every
//     push period (and immediately on a ring change), so replica sets
//     re-home after churn within one period — the subscribe-op pattern.
//   - Load reports: each node gossips its recent data-plane message rate
//     (plus what it learned from its own successors) one hop to its ring
//     predecessor as KindLoad, giving every node an R-1-deep, bounded-
//     staleness view of its successors' load.
//   - Read balancing: the first coverer of a similarity query picks one of
//     the R replicas by power-of-two-choices over that view (pickOffset)
//     and the query then strides over the covering range, touching
//     ~1/R of the coverers (dht.ContinueRangeStrided).
//
// Everything is gated on Replicas > 1: at the default (0) the operator
// delivers nothing, ticks into an early return, and the historical message
// schedule — and the golden figure rows — are bitwise unchanged.

import (
	"sort"
	"sync"

	"streamdex/internal/cqe"
	"streamdex/internal/dht"
	"streamdex/internal/sim"
	"streamdex/internal/summary"
)

type repOp struct {
	dc *DataCenter
	r  int // Config.Replicas

	// mu guards the load view: workers read it in pickOffset while the
	// loop folds incoming KindLoad reports and the periodic rate sample.
	mu sync.Mutex
	// ownRate is this node's data-plane message rate (msgs/s) over the
	// last push period; succRates[i] is the rate learned for the (i+1)-th
	// successor, i+1 periods stale.
	ownRate   float64
	succRates []float64
	// lastDelivered is the delivered-counter snapshot of the previous
	// rate sample.
	lastDelivered int64
	lastSample    sim.Time

	// mineMu guards mine: ingest workers record freshly published MBRs
	// while the loop republishes them.
	mineMu sync.Mutex
	mine   map[string]*summary.MBR // stream id -> latest live MBR
}

func newRepOp(dc *DataCenter) *repOp {
	return &repOp{
		dc:   dc,
		r:    dc.mw.cfg.Replicas,
		mine: make(map[string]*summary.MBR),
	}
}

// Name implements cqe.Operator.
func (o *repOp) Name() string { return "replica" }

// Kinds implements cqe.Operator.
func (o *repOp) Kinds() []dht.Kind { return []dht.Kind{KindReplica, KindLoad} }

// Deliver implements cqe.Operator (loop context).
func (o *repOp) Deliver(h cqe.Host, msg *dht.Message) {
	switch msg.Kind {
	case KindReplica:
		o.onReplica(msg)
	case KindLoad:
		o.onLoad(msg)
	}
}

// DeliverData implements cqe.Operator: replica absorption is worker-safe
// (the store carries its own locks, forwarding routes against the
// lock-free ring view); load folds touch the shared view under its mutex,
// so they are worker-safe too.
func (o *repOp) DeliverData(h cqe.Host, msg *dht.Message) bool {
	switch msg.Kind {
	case KindReplica:
		o.onReplica(msg)
		return true
	case KindLoad:
		o.onLoad(msg)
		return true
	}
	return false
}

// onReplica stores a replica copy and keeps the tail walk going. The same
// admission gate as the natural ingest path applies: an overloaded node
// sheds the store operation but still forwards, so the rest of the tail is
// not starved by one hot node.
func (o *repOp) onReplica(msg *dht.Message) {
	p := msg.Payload.(ReplicaMsg)
	if p.MBR != nil && !p.MBR.Expired(o.dc.mw.clk.Now()) {
		if o.dc.admit() {
			o.dc.store.Put(p.MBR)
			o.dc.engine.OnMBR(o.dc, p.MBR)
		}
		if p.TTL > 1 {
			fwd := sized(&dht.Message{Kind: KindReplica, Src: msg.Src, Payload: ReplicaMsg{MBR: p.MBR, TTL: p.TTL - 1}})
			o.dc.mw.net.SendToSuccessor(o.dc.id, fwd)
		}
	}
}

// sendTail launches the replica tail from the last natural coverer of an
// MBR's range: Replicas-1 successor hops, each storing a copy.
func (o *repOp) sendTail(b *summary.MBR) {
	if o.r <= 1 {
		return
	}
	msg := sized(&dht.Message{Kind: KindReplica, Src: o.dc.id, Payload: ReplicaMsg{MBR: b, TTL: o.r - 1}})
	o.dc.mw.net.SendToSuccessor(o.dc.id, msg)
}

// OnMBR implements cqe.Operator: the replica walk observes stores through
// onReplica/sendTail, not through the per-MBR fan-out.
func (o *repOp) OnMBR(h cqe.Host, b *summary.MBR) {}

// onLoad folds a successor's load report into the local view: the sender
// is this node's direct successor, its Loads[0] is that successor's own
// rate and Loads[i] the rate i+1 hops down the list.
func (o *repOp) onLoad(msg *dht.Message) {
	p := msg.Payload.(LoadMsg)
	if len(p.Loads) == 0 {
		return
	}
	o.mu.Lock()
	n := o.r - 1
	if len(p.Loads) < n {
		n = len(p.Loads)
	}
	if cap(o.succRates) < n {
		o.succRates = make([]float64, n)
	}
	o.succRates = o.succRates[:n]
	copy(o.succRates, p.Loads[:n])
	o.mu.Unlock()
}

// noteLocal records a freshly published MBR for periodic republish. Called
// from publishMBR (possibly on an ingest worker).
func (o *repOp) noteLocal(b *summary.MBR) {
	o.mineMu.Lock()
	o.mine[b.StreamID] = b
	o.mineMu.Unlock()
}

// pickOffset chooses which of the R replicas of the covering range a query
// should land on: 0 for this node (the natural first coverer), k for its
// k-th successor. Power of two choices over the load view, with both
// candidate indices derived from the query id so concurrent workers need
// no shared randomness and reruns are deterministic.
func (o *repOp) pickOffset(qid uint64) int {
	if o.r <= 1 {
		return 0
	}
	h := qid * 0x9E3779B97F4A7C15
	i := int(h % uint64(o.r))
	j := int((h >> 32) % uint64(o.r))
	if i == j {
		return i
	}
	o.mu.Lock()
	li, lj := o.rateAt(i), o.rateAt(j)
	o.mu.Unlock()
	if lj < li {
		return j
	}
	return i
}

// rateAt returns the viewed load of replica offset k (0 = self). Unknown
// entries read as 0 — an unreported node is assumed idle, which errs
// toward spreading. Callers hold mu.
func (o *repOp) rateAt(k int) float64 {
	if k == 0 {
		return o.ownRate
	}
	if k-1 < len(o.succRates) {
		return o.succRates[k-1]
	}
	return 0
}

// Tick implements cqe.Operator: sample the local delivery rate, gossip it
// (with the successor view shifted one hop) to the predecessor, and
// republish this node's live MBRs so replica sets re-home after churn.
func (o *repOp) Tick(h cqe.Host, now sim.Time) {
	if o.r <= 1 {
		return
	}
	delivered := o.dc.delivered.Load()
	o.mu.Lock()
	if o.lastSample > 0 && now > o.lastSample {
		o.ownRate = float64(delivered-o.lastDelivered) / (float64(now-o.lastSample) / float64(sim.Second))
	}
	o.lastDelivered = delivered
	o.lastSample = now
	loads := make([]float64, 1, o.r-1+1)
	loads[0] = o.ownRate
	if o.r > 2 {
		n := o.r - 2
		if n > len(o.succRates) {
			n = len(o.succRates)
		}
		loads = append(loads, o.succRates[:n]...)
	}
	o.mu.Unlock()
	report := sized(&dht.Message{Kind: KindLoad, Src: o.dc.id, SentAt: now, Payload: LoadMsg{Loads: loads}})
	o.dc.mw.net.SendToPredecessor(o.dc.id, report)

	o.republish(h, now)
}

// OnRingChange implements cqe.Operator: republish immediately so replicas
// re-home with at most a stabilization round of staleness instead of
// waiting out the push period.
func (o *repOp) OnRingChange(h cqe.Host) {
	if o.r <= 1 {
		return
	}
	o.republish(h, h.Now())
}

// republish re-multicasts every live locally sourced MBR over its key
// range. Receivers re-store (idempotent under the consumer-side
// stream/seq dedup rules) and the range-end node re-launches the tail, so
// nodes that newly cover part of a range after churn converge within one
// period.
func (o *repOp) republish(h cqe.Host, now sim.Time) {
	o.mineMu.Lock()
	var live []*summary.MBR
	for sid, b := range o.mine {
		if b.Expired(now) {
			delete(o.mine, sid)
			continue
		}
		live = append(live, b)
	}
	o.mineMu.Unlock()
	// Deterministic send order: map iteration order must not leak into the
	// simulator's event schedule.
	sort.Slice(live, func(i, j int) bool { return live[i].StreamID < live[j].StreamID })
	for _, b := range live {
		lo, hi := b.KeyRange(o.dc.mw.mapper)
		h.SendRange(lo, hi, &dht.Message{Kind: KindMBR, Payload: MBRUpdate{MBR: b}})
	}
}
