package core

// aggOp implements ECM-style windowed aggregates: every locally sourced
// stream maintains an exponential-histogram sketch of its raw values
// (Config.Sketches), published over the key range of each finished MBR so
// the nodes holding a stream's summary also hold its sketch. A windowed
// aggregate query registers at the nodes covering a routing-coordinate
// range; each covering node pushes the matching sketches to the querying
// node every period, where per-stream deduplication (highest sequence
// wins) and sketch merging produce windowed counts and quantiles.

import (
	"sort"
	"sync"

	"streamdex/internal/cqe"
	"streamdex/internal/dht"
	"streamdex/internal/query"
	"streamdex/internal/sim"
	"streamdex/internal/summary"
)

// sketchEntry is the latest sketch a node holds for one stream.
type sketchEntry struct {
	seq    uint64
	expiry sim.Time
	lo, hi float64
	sk     *summary.Sketch
}

type aggOp struct {
	dc *DataCenter

	// mu guards sketches: KindSketch is worker-absorbable on the live
	// transport while the loop sweeps and reports.
	mu       sync.Mutex
	sketches map[string]*sketchEntry

	// aggs are the standing aggregate queries covering this node;
	// loop-confined (KindAggQuery is not absorbed on workers).
	aggs map[query.ID]*query.Aggregate
	// mine are the aggregate queries this node originated. Loop-confined.
	mine map[query.ID]*query.Aggregate
}

func newAggOp(dc *DataCenter) *aggOp {
	return &aggOp{
		dc:       dc,
		sketches: make(map[string]*sketchEntry),
		aggs:     make(map[query.ID]*query.Aggregate),
		mine:     make(map[query.ID]*query.Aggregate),
	}
}

// Name implements cqe.Operator.
func (o *aggOp) Name() string { return "aggregate" }

// Kinds implements cqe.Operator.
func (o *aggOp) Kinds() []dht.Kind { return []dht.Kind{KindSketch, KindAggQuery, KindAggReply} }

// Deliver implements cqe.Operator (loop context).
func (o *aggOp) Deliver(h cqe.Host, msg *dht.Message) {
	switch msg.Kind {
	case KindSketch:
		o.onSketch(h, msg)
	case KindAggQuery:
		o.onAggQuery(h, msg)
	case KindAggReply:
		o.dc.mw.deliverAggReply(msg.Payload.(AggReplyMsg))
	}
}

// DeliverData implements cqe.Operator: sketch absorption is worker-safe
// (own lock, replace-wholesale semantics); query registration and reply
// folding are loop state.
func (o *aggOp) DeliverData(h cqe.Host, msg *dht.Message) bool {
	if msg.Kind == KindSketch {
		o.onSketch(h, msg)
		return true
	}
	return false
}

// onSketch absorbs a replicated sketch, keeping the latest publication per
// stream, and keeps the range multicast going.
func (o *aggOp) onSketch(h cqe.Host, msg *dht.Message) {
	p := msg.Payload.(SketchUpdate)
	if p.Sketch != nil && h.Now() < sim.Time(p.Expiry) {
		o.absorb(p)
	}
	h.ContinueRange(msg)
}

// absorb installs the update unless a newer publication for the stream is
// already held. Sketches are immutable once published, so entries alias
// the payload safely.
func (o *aggOp) absorb(p SketchUpdate) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if e := o.sketches[p.StreamID]; e == nil || p.Seq >= e.seq {
		o.sketches[p.StreamID] = &sketchEntry{
			seq: p.Seq, expiry: sim.Time(p.Expiry), lo: p.Lo, hi: p.Hi, sk: p.Sketch,
		}
	}
}

// onAggQuery registers a standing aggregate query, replies immediately
// with the sketches already held, and keeps the range multicast going.
func (o *aggOp) onAggQuery(h cqe.Host, msg *dht.Message) {
	p := msg.Payload.(AggQueryMsg)
	if q := p.Q; q != nil && h.Now() < q.Expiry() {
		if _, known := o.aggs[q.ID]; !known {
			o.aggs[q.ID] = q
			o.report(h, q)
		}
	}
	h.ContinueRange(msg)
}

// report pushes every held sketch overlapping the query's coordinate
// range to the querying node, sorted by stream id for determinism.
func (o *aggOp) report(h cqe.Host, q *query.Aggregate) {
	o.mu.Lock()
	items := make([]StreamSketch, 0, len(o.sketches))
	for sid, e := range o.sketches {
		if e.hi < q.Lo || e.lo > q.Hi {
			continue
		}
		items = append(items, StreamSketch{StreamID: sid, Seq: e.seq, Sketch: e.sk})
	}
	o.mu.Unlock()
	if len(items) == 0 {
		return
	}
	sort.Slice(items, func(i, j int) bool { return items[i].StreamID < items[j].StreamID })
	payload := AggReplyMsg{QueryID: q.ID, Items: items}
	if q.Origin == o.dc.id {
		o.dc.mw.deliverAggReply(payload)
		return
	}
	h.Send(q.Origin, &dht.Message{Kind: KindAggReply, Payload: payload})
}

// publishLocal publishes the sketch snapshot of a locally sourced stream
// alongside the MBR that just closed: stored locally (like the summary,
// §IV-A) and replicated over the MBR's key range. sk must be a snapshot
// the stream pipeline no longer mutates.
func (o *aggOp) publishLocal(sid string, b *summary.MBR, sk *summary.Sketch) {
	now := o.dc.Now()
	u := SketchUpdate{
		StreamID: sid,
		Seq:      b.Seq,
		Expiry:   int64(now + sk.Window),
		Lo:       b.Lo[0],
		Hi:       b.Hi[0],
		Sketch:   sk,
	}
	o.absorb(u)
	lo, hi := b.KeyRange(o.dc.mw.mapper)
	o.dc.SendRange(lo, hi, &dht.Message{Kind: KindSketch, Payload: u})
}

// OnMBR implements cqe.Operator: sketches ride the ingest path, not the
// per-MBR hook.
func (o *aggOp) OnMBR(h cqe.Host, b *summary.MBR) {}

// Tick implements cqe.Operator: sweep expired sketches and registrations,
// push the periodic sketch reports, and refresh this node's own standing
// queries.
func (o *aggOp) Tick(h cqe.Host, now sim.Time) {
	o.mu.Lock()
	for sid, e := range o.sketches {
		if now >= e.expiry {
			delete(o.sketches, sid)
		}
	}
	o.mu.Unlock()
	for id, q := range o.aggs {
		if now >= q.Expiry() {
			delete(o.aggs, id)
			continue
		}
		o.report(h, q)
	}
	for id, q := range o.mine {
		if now >= q.Expiry() {
			delete(o.mine, id)
			continue
		}
		o.multicast(h, q)
	}
}

// OnRingChange implements cqe.Operator: re-home immediately.
func (o *aggOp) OnRingChange(h cqe.Host) {
	now := h.Now()
	for _, q := range o.mine {
		if now < q.Expiry() {
			o.multicast(h, q)
		}
	}
}

func (o *aggOp) multicast(h cqe.Host, q *query.Aggregate) {
	lo, hi := o.dc.mw.mapper.Range(q.Lo, q.Hi)
	h.SendRange(lo, hi, &dht.Message{Kind: KindAggQuery, Payload: AggQueryMsg{Q: q}})
}

// register originates a standing aggregate query from this node.
func (o *aggOp) register(h cqe.Host, q *query.Aggregate) {
	o.mine[q.ID] = q
	o.multicast(h, q)
}
