package core

import (
	"testing"

	"streamdex/internal/chord"
	"streamdex/internal/dht"
	"streamdex/internal/dsp"
	"streamdex/internal/metrics"
	"streamdex/internal/sim"
	"streamdex/internal/stream"
	"streamdex/internal/summary"
)

// Focused behavior tests beyond the main integration suite: range-multicast
// mode, normalization mode, notify relaying, and post-deployment joins.

func TestBidirectionalModeEndToEnd(t *testing.T) {
	cfg := testConfig()
	cfg.RangeMode = dht.RangeBidirectional
	eng, _, mw, ids := testCluster(t, 16, cfg, false)

	twinA := stream.Stream{ID: "twinA", Gen: stream.DefaultRandomWalk(sim.NewRand(55)), Period: 100 * sim.Millisecond}
	twinB := stream.Stream{ID: "twinB", Gen: stream.DefaultRandomWalk(sim.NewRand(55)), Period: 100 * sim.Millisecond}
	if err := mw.DataCenter(ids[1]).RegisterStream(twinA); err != nil {
		t.Fatal(err)
	}
	if err := mw.DataCenter(ids[9]).RegisterStream(twinB); err != nil {
		t.Fatal(err)
	}
	eng.RunFor(12 * sim.Second)
	f := mw.DataCenter(ids[1]).StreamFeature("twinA")
	qid, err := mw.PostSimilarity(ids[4], f, 0.15, 20*sim.Second)
	if err != nil {
		t.Fatal(err)
	}
	eng.RunFor(12 * sim.Second)
	found := map[string]bool{}
	for _, sid := range mw.MatchedStreams(qid) {
		found[sid] = true
	}
	if !found["twinB"] {
		t.Fatalf("twin not found in bidirectional mode: %v", mw.MatchedStreams(qid))
	}
	// Bidirectional continuation legs must exist in both ring
	// directions: Dir=-1 legs only occur in this mode.
	rep := mw.Collector().Snapshot(eng.Now(), ids)
	if rep.TotalByCategory[metrics.QueryRange]+rep.TotalByCategory[metrics.MBRRange] == 0 {
		t.Fatal("no range continuation traffic observed")
	}
}

func TestUnitNormModeEndToEnd(t *testing.T) {
	cfg := testConfig()
	cfg.Norm = dsp.UnitNorm
	cfg.FeatureDims = 3 // includes the DC coordinate under unit norm
	eng, _, mw, ids := testCluster(t, 12, cfg, false)

	// Plant a periodic pattern stream; under unit-norm subsequence
	// matching, a query with the same shape AND scale profile matches.
	gen := func() stream.Generator { return stream.NewSine(nil, 5, 16, 20, 0) }
	st := stream.Stream{ID: "pattern", Gen: gen(), Period: 100 * sim.Millisecond}
	if err := mw.DataCenter(ids[2]).RegisterStream(st); err != nil {
		t.Fatal(err)
	}
	eng.RunFor(10 * sim.Second)

	series := make([]float64, cfg.WindowSize)
	g := gen()
	for i := range series {
		series[i] = g.Next()
	}
	qid, err := mw.PostSimilaritySeries(ids[7], series, 0.25, 20*sim.Second)
	if err != nil {
		t.Fatal(err)
	}
	eng.RunFor(12 * sim.Second)
	found := false
	for _, sid := range mw.MatchedStreams(qid) {
		if sid == "pattern" {
			found = true
		}
	}
	if !found {
		t.Fatalf("unit-norm pattern not matched: %v", mw.MatchedStreams(qid))
	}
}

func TestNotifyRelayReachesDistantMiddle(t *testing.T) {
	// A candidate detected at the far end of a wide query range must
	// reach the middle node through successive neighbor pushes, one hop
	// per period.
	cfg := testConfig()
	eng, net, mw, ids := testCluster(t, 16, cfg, false)
	eng.RunFor(12 * sim.Second)

	// A very wide query: radius 0.9 covers most of the ring, so range
	// ends are many hops from the middle.
	qid, err := mw.PostSimilarity(ids[0], summary.Feature{0, 0, 0}, 0.9, 40*sim.Second)
	if err != nil {
		t.Fatal(err)
	}
	eng.RunFor(30 * sim.Second)
	if len(mw.SimilarityMatches(qid)) == 0 {
		t.Fatal("wide query produced no matches despite covering most of the feature space")
	}
	// Matches must include candidates detected at nodes that do NOT
	// cover the middle key (i.e. they traveled via relay).
	lo, hi := mw.Mapper().QueryRange(0, 0.9)
	middle := cfg.Space.Midpoint(lo, hi)
	sawRemote := false
	for _, m := range mw.SimilarityMatches(qid) {
		if !net.Covers(m.Node, middle) {
			sawRemote = true
			break
		}
	}
	if !sawRemote {
		t.Fatal("all matches originated at the middle node; relay path unexercised")
	}
}

func TestJoinAfterDeploymentParticipates(t *testing.T) {
	// A node joining a running system is attached to the middleware and
	// starts covering content.
	cfg := testConfig()
	eng, net, mw, ids := testCluster(t, 10, cfg, true)
	eng.RunFor(8 * sim.Second)

	newID := cfg.Space.HashString("latecomer")
	if _, err := net.Join(newID, nil, ids[0]); err != nil {
		t.Fatal(err)
	}
	dc := mw.AttachNode(newID)
	if dc == nil {
		t.Fatal("attach failed")
	}
	st := stream.Stream{ID: "late-stream", Gen: stream.DefaultRandomWalk(sim.NewRand(77)), Period: 100 * sim.Millisecond}
	if err := dc.RegisterStream(st); err != nil {
		t.Fatal(err)
	}
	eng.RunFor(25 * sim.Second) // stabilize + window fill + MBRs flow

	// The latecomer must now hold index state (MBRs routed to its arc)
	// or at least source its own summaries.
	if dc.Store().Len() == 0 {
		t.Fatal("latecomer holds no index state after joining")
	}
	// And a query against its stream must be answerable.
	f := dc.StreamFeature("late-stream")
	if f == nil {
		t.Fatal("latecomer stream window never filled")
	}
	qid, err := mw.PostSimilarity(ids[3], f, 0.3, 20*sim.Second)
	if err != nil {
		t.Fatal(err)
	}
	eng.RunFor(12 * sim.Second)
	found := false
	for _, sid := range mw.MatchedStreams(qid) {
		if sid == "late-stream" {
			found = true
		}
	}
	if !found {
		t.Fatalf("latecomer's stream not found: %v", mw.MatchedStreams(qid))
	}
}

func TestMessagesCarryWireSizes(t *testing.T) {
	cfg := testConfig()
	eng, net, mw, ids := testCluster(t, 10, cfg, false)
	var sized, unsized int
	net.SetObserver(obsCheck{onTransmit: func(msg *dht.Message) {
		if msg.Bytes > 0 {
			sized++
		} else {
			unsized++
		}
	}})
	eng.RunFor(10 * sim.Second)
	if _, err := mw.PostSimilarity(ids[0], summary.Feature{0, 0, 0}, 0.2, 5*sim.Second); err != nil {
		t.Fatal(err)
	}
	eng.RunFor(5 * sim.Second)
	if sized == 0 {
		t.Fatal("no sized messages observed")
	}
	if unsized > 0 {
		t.Fatalf("%d middleware messages lack wire sizes", unsized)
	}
}

type obsCheck struct {
	onTransmit func(*dht.Message)
}

func (o obsCheck) OnTransmit(from, to dht.Key, msg *dht.Message) { o.onTransmit(msg) }
func (o obsCheck) OnDeliver(at dht.Key, msg *dht.Message)        {}

// Guard against accidental import cycle breaks in the test helpers.
var _ = chord.SortKeys
