package core

// Hand-packed wire codecs (wire codec v2) for the nine middleware payload
// kinds. Each codec writes the fields of its payload with the wire
// package's primitives — varints for ids, counts and timestamps, fixed
// 8-byte words for floats, length-prefixed strings — so a payload costs
// exactly its content, with no per-message type descriptors. The layouts
// are documented field-by-field in DESIGN.md ("Wire format v2"); changing
// one is a wire-protocol break and must bump the codec tag.
//
// Decoders validate every length against the remaining bytes (the wire
// Reader enforces this) and never alias the input buffer, so the transport
// can reuse its read buffer across frames.

import (
	"fmt"

	"streamdex/internal/dht"
	"streamdex/internal/dsp"
	"streamdex/internal/query"
	"streamdex/internal/sim"
	"streamdex/internal/summary"
	"streamdex/internal/wire"
)

// Packed payload codec tags. One byte on the wire after the envelope;
// both ends of a connection must agree, so these values are protocol, not
// implementation detail: never renumber, only append.
const (
	tagMBRUpdate uint8 = iota + 1
	tagSimQuery
	tagNotifyBatch
	tagResponseMsg
	tagLocPut
	tagLocGet
	tagLocReply
	tagIPSub
	tagIPResp
)

func init() {
	wire.RegisterPackedPayload(tagMBRUpdate, MBRUpdate{}, codecFuncs{encMBRUpdate, decMBRUpdate, decMBRUpdateArena})
	wire.RegisterPackedPayload(tagSimQuery, SimQuery{}, codecFuncs{encSimQuery, decSimQuery, decSimQueryArena})
	wire.RegisterPackedPayload(tagNotifyBatch, NotifyBatch{}, codecFuncs{enc: encNotifyBatch, dec: decNotifyBatch})
	wire.RegisterPackedPayload(tagResponseMsg, ResponseMsg{}, codecFuncs{enc: encResponseMsg, dec: decResponseMsg})
	wire.RegisterPackedPayload(tagLocPut, LocPut{}, codecFuncs{enc: encLocPut, dec: decLocPut})
	wire.RegisterPackedPayload(tagLocGet, LocGet{}, codecFuncs{enc: encLocGet, dec: decLocGet})
	wire.RegisterPackedPayload(tagLocReply, LocReply{}, codecFuncs{enc: encLocReply, dec: decLocReply})
	wire.RegisterPackedPayload(tagIPSub, IPSub{}, codecFuncs{enc: encIPSub, dec: decIPSub})
	wire.RegisterPackedPayload(tagIPResp, IPResp{}, codecFuncs{enc: encIPResp, dec: decIPResp})
}

// codecFuncs adapts an encode/decode function pair to wire.PayloadCodec,
// with an optional arena-carving decoder (wire.ArenaDecoder) for the
// data-plane kinds whose decode rate justifies one.
type codecFuncs struct {
	enc  func(dst []byte, p any) ([]byte, error)
	dec  func(data []byte) (any, error)
	decA func(data []byte, a *wire.Arena) (any, error)
}

func (c codecFuncs) Append(dst []byte, p any) ([]byte, error) { return c.enc(dst, p) }
func (c codecFuncs) Decode(data []byte) (any, error)          { return c.dec(data) }

func (c codecFuncs) DecodeArena(data []byte, a *wire.Arena) (any, error) {
	if c.decA == nil {
		return c.dec(data)
	}
	return c.decA(data, a)
}

// coreSlabs is the core-owned extension slab hung off a decode arena
// (wire.Arena.Ext): bump-carved blocks of the fixed-size structs the
// data-plane kinds decode into. Like the arena's own chunks they are
// carved forward and never reused, so decoded objects may live as long as
// they like (MBRs sit in the store for BSPAN, queries for their lifespan).
type coreSlabs struct {
	mbrs []summary.MBR
	sims []query.Similarity
}

const coreSlabChunk = 256

func slabsOf(a *wire.Arena) *coreSlabs {
	s, _ := a.Ext.(*coreSlabs)
	if s == nil {
		s = &coreSlabs{}
		a.Ext = s
	}
	return s
}

func (s *coreSlabs) mbr(a *wire.Arena) *summary.MBR {
	a.Stats().Carves.Add(1)
	if len(s.mbrs) == 0 {
		s.mbrs = make([]summary.MBR, coreSlabChunk)
		a.Stats().Refills.Add(1)
	}
	b := &s.mbrs[0]
	s.mbrs = s.mbrs[1:]
	return b
}

func (s *coreSlabs) sim(a *wire.Arena) *query.Similarity {
	a.Stats().Carves.Add(1)
	if len(s.sims) == 0 {
		s.sims = make([]query.Similarity, coreSlabChunk)
		a.Stats().Refills.Add(1)
	}
	q := &s.sims[0]
	s.sims = s.sims[1:]
	return q
}

// errType reports a payload handed to the wrong codec — only possible
// through a registration bug, but cheap to defend against.
func errType(want string, got any) error {
	return fmt.Errorf("core: codec for %s got %T", want, got)
}

// --- KindMBR: MBRUpdate ---
// present(bool) | streamID | seq(uvar) | count(var) | created(var) |
// expiry(var) | lo(floats) | hi(floats)

func encMBRUpdate(dst []byte, p any) ([]byte, error) {
	u, ok := p.(MBRUpdate)
	if !ok {
		return nil, errType("MBRUpdate", p)
	}
	if u.MBR == nil {
		return wire.AppendBool(dst, false), nil
	}
	b := u.MBR
	dst = wire.AppendBool(dst, true)
	dst = wire.AppendString(dst, b.StreamID)
	dst = wire.AppendUvarint(dst, b.Seq)
	dst = wire.AppendVarint(dst, int64(b.Count))
	dst = wire.AppendVarint(dst, int64(b.Created))
	dst = wire.AppendVarint(dst, int64(b.Expiry))
	dst = wire.AppendFloats(dst, b.Lo)
	dst = wire.AppendFloats(dst, b.Hi)
	return dst, nil
}

func decMBRUpdate(data []byte) (any, error) {
	r := wire.NewReader(data)
	if !r.Bool() {
		if err := r.Done(); err != nil {
			return nil, err
		}
		return MBRUpdate{}, nil
	}
	b := &summary.MBR{}
	b.StreamID = r.String()
	b.Seq = r.Uvarint()
	b.Count = int(r.Varint())
	b.Created = sim.Time(r.Varint())
	b.Expiry = sim.Time(r.Varint())
	b.Lo = summary.Feature(r.Floats())
	b.Hi = summary.Feature(r.Floats())
	if err := r.Done(); err != nil {
		return nil, err
	}
	if len(b.Lo) != len(b.Hi) {
		return nil, fmt.Errorf("core: MBR with %d-dim lo, %d-dim hi", len(b.Lo), len(b.Hi))
	}
	return MBRUpdate{MBR: b}, nil
}

// decMBRUpdateArena is decMBRUpdate carving the rectangle, its corner
// slices and (interned) stream id out of the arena — the hot ingest path.
func decMBRUpdateArena(data []byte, a *wire.Arena) (any, error) {
	r := wire.NewReader(data)
	if !r.Bool() {
		if err := r.Done(); err != nil {
			return nil, err
		}
		return MBRUpdate{}, nil
	}
	b := slabsOf(a).mbr(a)
	b.StreamID = r.StringArena(a)
	b.Seq = r.Uvarint()
	b.Count = int(r.Varint())
	b.Created = sim.Time(r.Varint())
	b.Expiry = sim.Time(r.Varint())
	b.Lo = summary.Feature(r.FloatsArena(a))
	b.Hi = summary.Feature(r.FloatsArena(a))
	if err := r.Done(); err != nil {
		return nil, err
	}
	if len(b.Lo) != len(b.Hi) {
		return nil, fmt.Errorf("core: MBR with %d-dim lo, %d-dim hi", len(b.Lo), len(b.Hi))
	}
	return MBRUpdate{MBR: b}, nil
}

// --- KindQuery: SimQuery ---
// middleKey(uvar) | present(bool) | id(uvar) | origin(uvar) |
// feature(floats) | radius(f64) | norm(var) | posted(var) | lifespan(var)

func encSimQuery(dst []byte, p any) ([]byte, error) {
	u, ok := p.(SimQuery)
	if !ok {
		return nil, errType("SimQuery", p)
	}
	dst = wire.AppendUvarint(dst, uint64(u.MiddleKey))
	if u.Q == nil {
		return wire.AppendBool(dst, false), nil
	}
	q := u.Q
	dst = wire.AppendBool(dst, true)
	dst = wire.AppendUvarint(dst, uint64(q.ID))
	dst = wire.AppendUvarint(dst, uint64(q.Origin))
	dst = wire.AppendFloats(dst, q.Feature)
	dst = wire.AppendFloat64(dst, q.Radius)
	dst = wire.AppendVarint(dst, int64(q.Norm))
	dst = wire.AppendVarint(dst, int64(q.Posted))
	dst = wire.AppendVarint(dst, int64(q.Lifespan))
	return dst, nil
}

func decSimQuery(data []byte) (any, error) {
	r := wire.NewReader(data)
	u := SimQuery{MiddleKey: dht.Key(r.Uvarint())}
	if !r.Bool() {
		if err := r.Done(); err != nil {
			return nil, err
		}
		return u, nil
	}
	q := &query.Similarity{}
	q.ID = query.ID(r.Uvarint())
	q.Origin = dht.Key(r.Uvarint())
	q.Feature = summary.Feature(r.Floats())
	q.Radius = r.Float64()
	q.Norm = dsp.Mode(r.Varint())
	q.Posted = sim.Time(r.Varint())
	q.Lifespan = sim.Time(r.Varint())
	if err := r.Done(); err != nil {
		return nil, err
	}
	u.Q = q
	return u, nil
}

// decSimQueryArena is decSimQuery carving the query and its feature vector
// out of the arena.
func decSimQueryArena(data []byte, a *wire.Arena) (any, error) {
	r := wire.NewReader(data)
	u := SimQuery{MiddleKey: dht.Key(r.Uvarint())}
	if !r.Bool() {
		if err := r.Done(); err != nil {
			return nil, err
		}
		return u, nil
	}
	q := slabsOf(a).sim(a)
	q.ID = query.ID(r.Uvarint())
	q.Origin = dht.Key(r.Uvarint())
	q.Feature = summary.Feature(r.FloatsArena(a))
	q.Radius = r.Float64()
	q.Norm = dsp.Mode(r.Varint())
	q.Posted = sim.Time(r.Varint())
	q.Lifespan = sim.Time(r.Varint())
	if err := r.Done(); err != nil {
		return nil, err
	}
	u.Q = q
	return u, nil
}

// --- matches, shared by KindNotify and KindResponse ---
// count(uvar), then per match:
// streamID | seq(uvar) | distLB(f64) | foundAt(var) | node(uvar)

func appendMatches(dst []byte, ms []query.Match) []byte {
	dst = wire.AppendUvarint(dst, uint64(len(ms)))
	for i := range ms {
		m := &ms[i]
		dst = wire.AppendString(dst, m.StreamID)
		dst = wire.AppendUvarint(dst, m.Seq)
		dst = wire.AppendFloat64(dst, m.DistLB)
		dst = wire.AppendVarint(dst, int64(m.FoundAt))
		dst = wire.AppendUvarint(dst, uint64(m.Node))
	}
	return dst
}

func readMatches(r *wire.Reader) []query.Match {
	n := r.Uvarint()
	if r.Err() != nil || n == 0 {
		return nil
	}
	// Every match costs at least one byte per field on the wire, so a
	// count beyond the remaining bytes is corrupt — reject before
	// allocating.
	if n > uint64(r.Len()) {
		r.Failf("core: %d matches with %d bytes remaining", n, r.Len())
		return nil
	}
	out := make([]query.Match, n)
	for i := range out {
		m := &out[i]
		m.StreamID = r.String()
		m.Seq = r.Uvarint()
		m.DistLB = r.Float64()
		m.FoundAt = sim.Time(r.Varint())
		m.Node = dht.Key(r.Uvarint())
	}
	if r.Err() != nil {
		return nil
	}
	return out
}

// --- KindNotify: NotifyBatch ---
// count(uvar), then per item:
// queryID(uvar) | middleKey(uvar) | clientKey(uvar) | expiry(var) | matches

func encNotifyBatch(dst []byte, p any) ([]byte, error) {
	u, ok := p.(NotifyBatch)
	if !ok {
		return nil, errType("NotifyBatch", p)
	}
	dst = wire.AppendUvarint(dst, uint64(len(u.Items)))
	for i := range u.Items {
		it := &u.Items[i]
		dst = wire.AppendUvarint(dst, uint64(it.QueryID))
		dst = wire.AppendUvarint(dst, uint64(it.MiddleKey))
		dst = wire.AppendUvarint(dst, uint64(it.ClientKey))
		dst = wire.AppendVarint(dst, it.Expiry)
		dst = appendMatches(dst, it.Matches)
	}
	return dst, nil
}

func decNotifyBatch(data []byte) (any, error) {
	r := wire.NewReader(data)
	n := r.Uvarint()
	var items []NotifyItem
	if r.Err() == nil && n > 0 {
		if n > uint64(r.Len()) {
			r.Failf("core: %d notify items with %d bytes remaining", n, r.Len())
		} else {
			items = make([]NotifyItem, n)
			for i := range items {
				it := &items[i]
				it.QueryID = query.ID(r.Uvarint())
				it.MiddleKey = dht.Key(r.Uvarint())
				it.ClientKey = dht.Key(r.Uvarint())
				it.Expiry = r.Varint()
				it.Matches = readMatches(&r)
			}
		}
	}
	if err := r.Done(); err != nil {
		return nil, err
	}
	return NotifyBatch{Items: items}, nil
}

// --- KindResponse: ResponseMsg ---
// queryID(uvar) | matches

func encResponseMsg(dst []byte, p any) ([]byte, error) {
	u, ok := p.(ResponseMsg)
	if !ok {
		return nil, errType("ResponseMsg", p)
	}
	dst = wire.AppendUvarint(dst, uint64(u.QueryID))
	return appendMatches(dst, u.Matches), nil
}

func decResponseMsg(data []byte) (any, error) {
	r := wire.NewReader(data)
	u := ResponseMsg{QueryID: query.ID(r.Uvarint())}
	u.Matches = readMatches(&r)
	if err := r.Done(); err != nil {
		return nil, err
	}
	return u, nil
}

// --- KindLocPut / KindLocGet / KindLocReply ---

func encLocPut(dst []byte, p any) ([]byte, error) {
	u, ok := p.(LocPut)
	if !ok {
		return nil, errType("LocPut", p)
	}
	dst = wire.AppendString(dst, u.StreamID)
	return wire.AppendUvarint(dst, uint64(u.Source)), nil
}

func decLocPut(data []byte) (any, error) {
	r := wire.NewReader(data)
	u := LocPut{StreamID: r.String(), Source: dht.Key(r.Uvarint())}
	if err := r.Done(); err != nil {
		return nil, err
	}
	return u, nil
}

func encLocGet(dst []byte, p any) ([]byte, error) {
	u, ok := p.(LocGet)
	if !ok {
		return nil, errType("LocGet", p)
	}
	dst = wire.AppendString(dst, u.StreamID)
	return wire.AppendUvarint(dst, uint64(u.Requester)), nil
}

func decLocGet(data []byte) (any, error) {
	r := wire.NewReader(data)
	u := LocGet{StreamID: r.String(), Requester: dht.Key(r.Uvarint())}
	if err := r.Done(); err != nil {
		return nil, err
	}
	return u, nil
}

func encLocReply(dst []byte, p any) ([]byte, error) {
	u, ok := p.(LocReply)
	if !ok {
		return nil, errType("LocReply", p)
	}
	dst = wire.AppendString(dst, u.StreamID)
	dst = wire.AppendUvarint(dst, uint64(u.Source))
	return wire.AppendBool(dst, u.Found), nil
}

func decLocReply(data []byte) (any, error) {
	r := wire.NewReader(data)
	u := LocReply{StreamID: r.String(), Source: dht.Key(r.Uvarint()), Found: r.Bool()}
	if err := r.Done(); err != nil {
		return nil, err
	}
	return u, nil
}

// --- KindIPSub: IPSub ---
// present(bool) | id(uvar) | origin(uvar) | streamID | index(ints) |
// weights(floats) | posted(var) | lifespan(var)

func encIPSub(dst []byte, p any) ([]byte, error) {
	u, ok := p.(IPSub)
	if !ok {
		return nil, errType("IPSub", p)
	}
	if u.Q == nil {
		return wire.AppendBool(dst, false), nil
	}
	q := u.Q
	dst = wire.AppendBool(dst, true)
	dst = wire.AppendUvarint(dst, uint64(q.ID))
	dst = wire.AppendUvarint(dst, uint64(q.Origin))
	dst = wire.AppendString(dst, q.StreamID)
	dst = wire.AppendInts(dst, q.Index)
	dst = wire.AppendFloats(dst, q.Weights)
	dst = wire.AppendVarint(dst, int64(q.Posted))
	dst = wire.AppendVarint(dst, int64(q.Lifespan))
	return dst, nil
}

func decIPSub(data []byte) (any, error) {
	r := wire.NewReader(data)
	if !r.Bool() {
		if err := r.Done(); err != nil {
			return nil, err
		}
		return IPSub{}, nil
	}
	q := &query.InnerProduct{}
	q.ID = query.ID(r.Uvarint())
	q.Origin = dht.Key(r.Uvarint())
	q.StreamID = r.String()
	q.Index = r.Ints()
	q.Weights = r.Floats()
	q.Posted = sim.Time(r.Varint())
	q.Lifespan = sim.Time(r.Varint())
	if err := r.Done(); err != nil {
		return nil, err
	}
	return IPSub{Q: q}, nil
}

// --- KindIPResp: IPResp ---
// queryID(uvar) | value(f64) | at(var) | approx(bool)

func encIPResp(dst []byte, p any) ([]byte, error) {
	u, ok := p.(IPResp)
	if !ok {
		return nil, errType("IPResp", p)
	}
	dst = wire.AppendUvarint(dst, uint64(u.QueryID))
	dst = wire.AppendFloat64(dst, u.Value.Value)
	dst = wire.AppendVarint(dst, int64(u.Value.At))
	return wire.AppendBool(dst, u.Value.Approx), nil
}

func decIPResp(data []byte) (any, error) {
	r := wire.NewReader(data)
	u := IPResp{QueryID: query.ID(r.Uvarint())}
	u.Value.Value = r.Float64()
	u.Value.At = sim.Time(r.Varint())
	u.Value.Approx = r.Bool()
	if err := r.Done(); err != nil {
		return nil, err
	}
	return u, nil
}
