package core

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"streamdex/internal/query"
	"streamdex/internal/sim"
	"streamdex/internal/summary"
)

// sortMatches orders a match set canonically for comparison.
func sortMatches(ms []query.Match) {
	sort.Slice(ms, func(i, j int) bool {
		if ms[i].StreamID != ms[j].StreamID {
			return ms[i].StreamID < ms[j].StreamID
		}
		return ms[i].Seq < ms[j].Seq
	})
}

// TestShardedStoreMatchesSingleShard: the sharded store must report exactly
// the candidate set of the single-shard store over an identical entry
// population, for many random queries — the shard partition is a pure
// performance transform.
func TestShardedStoreMatchesSingleShard(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	oracle := NewStore()
	sharded := NewShardedStore(8)
	for i := 0; i < 2000; i++ {
		l1 := rng.Float64()*3 - 1.5
		w := rng.Float64() * 0.2
		expiry := sim.Time(0)
		if rng.Intn(4) == 0 {
			expiry = sim.Time(1 + rng.Intn(100))
		}
		b := mbrAt(fmt.Sprintf("s%d", i%37), uint64(i), summary.Feature{l1, rng.Float64()},
			summary.Feature{l1 + w, rng.Float64() + 1}, expiry)
		oracle.Put(b)
		sharded.Put(b)
	}
	for trial := 0; trial < 200; trial++ {
		q := summary.Feature{rng.Float64()*3 - 1.5, rng.Float64()}
		r := rng.Float64() * 0.5
		now := sim.Time(rng.Intn(120))
		got := sharded.Candidates(q, r, now, 1)
		want := oracle.Candidates(q, r, now, 1)
		sortMatches(got)
		sortMatches(want)
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("trial %d (q=%v r=%v now=%v): sharded %d matches, oracle %d\n%v\n%v",
				trial, q, r, now, len(got), len(want), got, want)
		}
	}
}

// TestShardedStoreConcurrentOracle hammers one sharded store with
// concurrent Put / AppendCandidates / Sweep interleavings (run under -race
// by CI) and afterwards checks the surviving contents against a sequential
// single-shard oracle fed the same entries.
func TestShardedStoreConcurrentOracle(t *testing.T) {
	const (
		writers   = 4
		readers   = 4
		perWriter = 500
	)
	s := NewShardedStore(8)

	// Pre-generate each writer's entries so the oracle can replay them.
	entries := make([][]*summary.MBR, writers)
	for w := range entries {
		rng := rand.New(rand.NewSource(int64(100 + w)))
		entries[w] = make([]*summary.MBR, perWriter)
		for i := range entries[w] {
			l1 := rng.Float64()*2 - 1
			width := rng.Float64() * 0.1
			expiry := sim.Time(0)
			if rng.Intn(3) == 0 {
				expiry = sim.Time(1 + rng.Intn(50)) // expires mid-run
			}
			entries[w][i] = mbrAt(fmt.Sprintf("w%d", w), uint64(i),
				summary.Feature{l1, 0}, summary.Feature{l1 + width, 0.1}, expiry)
		}
	}

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i, b := range entries[w] {
				s.Put(b)
				if i%100 == 99 {
					s.Sweep(sim.Time(i / 10))
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(900 + r)))
			dst := make([]query.Match, 0, 256)
			for i := 0; i < 400; i++ {
				q := summary.Feature{rng.Float64()*2 - 1, 0.05}
				dst = s.AppendCandidates(dst[:0], q, 0.2, sim.Time(rng.Intn(60)), 1)
				for _, m := range dst {
					if m.StreamID == "" {
						t.Error("torn match read")
						return
					}
				}
			}
		}(r)
	}
	wg.Wait()

	// Sequential oracle: same entries, single shard, one final sweep at a
	// time past every mid-run expiry.
	oracle := NewStore()
	for _, batch := range entries {
		for _, b := range batch {
			oracle.Put(b)
		}
	}
	const now = 100 * sim.Time(1)
	oracle.Sweep(now)
	s.Sweep(now)
	if got, want := s.Len(), oracle.Len(); got != want {
		t.Fatalf("after concurrent run: %d entries, oracle has %d", got, want)
	}
	// Candidate sets must agree too.
	for trial := 0; trial < 50; trial++ {
		q := summary.Feature{float64(trial)/25 - 1, 0.05}
		got := s.Candidates(q, 0.15, now, 1)
		want := oracle.Candidates(q, 0.15, now, 1)
		sortMatches(got)
		sortMatches(want)
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("trial %d: candidate sets diverged:\n%v\n%v", trial, got, want)
		}
	}
}

// TestShardWidthBoundStaysLocal is the stale-width regression test: a wide
// MBR must inflate only its own shard's scan band, and once it expires and
// that shard is swept, the shard's width bound must re-tighten so the band
// shrinks back — under the old store-global bound, one long-gone wide MBR
// kept every future walk wide until the next full sweep re-tightened it.
func TestShardWidthBoundStaysLocal(t *testing.T) {
	s := NewShardedStore(4)
	// With bandWidth 0.25 and 4 shards: l1 in [0, 0.25) -> shard 0,
	// [0.25, 0.5) -> shard 1.
	wideShard := s.shardOf(0.1)
	narrowShard := s.shardOf(0.3)
	if wideShard == narrowShard {
		t.Fatalf("test geometry broken: both bands map to shard %d", wideShard)
	}
	// A very wide rectangle in shard 0, expiring at t=1s.
	s.Put(mbrAt("wide", 0, summary.Feature{0.1, 0}, summary.Feature{2.1, 0}, sim.Second))
	// A dense strip of narrow entries in shard 1.
	for i := 0; i < 100; i++ {
		l1 := 0.25 + float64(i)*0.0025 // [0.25, 0.5)
		s.Put(mbrAt("narrow", uint64(1+i), summary.Feature{l1, 0}, summary.Feature{l1 + 0.001, 0}, 0))
	}
	if w := s.shardWidth(wideShard); w < 1.9 {
		t.Fatalf("wide shard width bound = %v, want ~2", w)
	}
	if w := s.shardWidth(narrowShard); w > 0.01 {
		t.Fatalf("narrow shard width bound = %v, polluted by the wide MBR", w)
	}

	// A tight query inside the narrow strip: the wide MBR in the other
	// shard must not inflate the scanned band. Band is [q1-r-width, q1+r]
	// ~ 0.02 wide -> ~8 strip entries, not all 100.
	_, before := s.Stats()
	got := s.Candidates(summary.Feature{0.375, 0}, 0.01, 2*sim.Second, 1)
	_, after := s.Stats()
	if len(got) == 0 {
		t.Fatal("query matched nothing")
	}
	if scanned := after - before; scanned > 20 {
		t.Fatalf("narrow-band query scanned %d entries; the wide shard's bound leaked", scanned)
	}

	// The wide MBR has expired: a shard-local sweep must re-tighten the
	// bound even though no other shard was touched.
	s.SweepShard(wideShard, 2*sim.Second)
	if w := s.shardWidth(wideShard); w != 0 {
		t.Fatalf("wide shard width bound = %v after local sweep, want 0", w)
	}
}

// TestShardedStoreZeroAllocWalk extends the alloc guard to the sharded
// configuration: a multi-shard candidate walk with a reused destination
// must stay allocation-free.
func TestShardedStoreZeroAllocWalk(t *testing.T) {
	s := NewShardedStore(8)
	for i := 0; i < 512; i++ {
		l1 := float64(i)/256 - 1
		s.Put(mbrAt("s", uint64(i), summary.Feature{l1, 0}, summary.Feature{l1 + 0.01, 0.1}, 0))
	}
	q := summary.Feature{0.1, 0.05}
	dst := make([]query.Match, 0, 64)
	dst = s.AppendCandidates(dst, q, 0.05, 0, 1)
	if len(dst) == 0 {
		t.Fatal("query should match some entries")
	}
	allocs := testing.AllocsPerRun(100, func() {
		dst = s.AppendCandidates(dst[:0], q, 0.05, 0, 1)
	})
	if allocs != 0 {
		t.Fatalf("sharded AppendCandidates allocated %.1f objects per run, want 0", allocs)
	}
}
