package core

// Packed codecs for the load-balancing payload kinds (PR 8): the replica
// walk riding the covering range's successor tail and the per-node load
// reports feeding the power-of-two-choices read balancer. Tags continue
// after the continuous-query-engine block (23-29).

import (
	"fmt"

	"streamdex/internal/sim"
	"streamdex/internal/summary"
	"streamdex/internal/wire"
)

func errDimMismatch(lo, hi int) error {
	return fmt.Errorf("core: MBR with %d-dim lo, %d-dim hi", lo, hi)
}

const (
	tagReplicaMsg uint8 = iota + 30
	tagLoadMsg
)

func init() {
	wire.RegisterPackedPayload(tagReplicaMsg, ReplicaMsg{}, codecFuncs{encReplicaMsg, decReplicaMsg, decReplicaMsgArena})
	wire.RegisterPackedPayload(tagLoadMsg, LoadMsg{}, codecFuncs{enc: encLoadMsg, dec: decLoadMsg})
}

// --- KindReplica: ReplicaMsg ---
// present(bool) | streamID | seq(uvar) | count(var) | created(var) |
// expiry(var) | lo(floats) | hi(floats) | ttl(var)

func encReplicaMsg(dst []byte, p any) ([]byte, error) {
	u, ok := p.(ReplicaMsg)
	if !ok {
		return nil, errType("ReplicaMsg", p)
	}
	if u.MBR == nil {
		dst = wire.AppendBool(dst, false)
		return wire.AppendVarint(dst, int64(u.TTL)), nil
	}
	b := u.MBR
	dst = wire.AppendBool(dst, true)
	dst = wire.AppendString(dst, b.StreamID)
	dst = wire.AppendUvarint(dst, b.Seq)
	dst = wire.AppendVarint(dst, int64(b.Count))
	dst = wire.AppendVarint(dst, int64(b.Created))
	dst = wire.AppendVarint(dst, int64(b.Expiry))
	dst = wire.AppendFloats(dst, b.Lo)
	dst = wire.AppendFloats(dst, b.Hi)
	return wire.AppendVarint(dst, int64(u.TTL)), nil
}

func readReplicaMBR(r *wire.Reader, b *summary.MBR, a *wire.Arena) {
	if a != nil {
		b.StreamID = r.StringArena(a)
	} else {
		b.StreamID = r.String()
	}
	b.Seq = r.Uvarint()
	b.Count = int(r.Varint())
	b.Created = sim.Time(r.Varint())
	b.Expiry = sim.Time(r.Varint())
	if a != nil {
		b.Lo = summary.Feature(r.FloatsArena(a))
		b.Hi = summary.Feature(r.FloatsArena(a))
	} else {
		b.Lo = summary.Feature(r.Floats())
		b.Hi = summary.Feature(r.Floats())
	}
}

func decReplicaMsg(data []byte) (any, error) {
	r := wire.NewReader(data)
	if !r.Bool() {
		u := ReplicaMsg{TTL: int(r.Varint())}
		if err := r.Done(); err != nil {
			return nil, err
		}
		return u, nil
	}
	b := &summary.MBR{}
	readReplicaMBR(&r, b, nil)
	u := ReplicaMsg{MBR: b, TTL: int(r.Varint())}
	if err := r.Done(); err != nil {
		return nil, err
	}
	if len(b.Lo) != len(b.Hi) {
		return nil, errDimMismatch(len(b.Lo), len(b.Hi))
	}
	return u, nil
}

// decReplicaMsgArena is decReplicaMsg carving the rectangle out of the
// arena — replica copies sit in the store as long as primaries do.
func decReplicaMsgArena(data []byte, a *wire.Arena) (any, error) {
	r := wire.NewReader(data)
	if !r.Bool() {
		u := ReplicaMsg{TTL: int(r.Varint())}
		if err := r.Done(); err != nil {
			return nil, err
		}
		return u, nil
	}
	b := slabsOf(a).mbr(a)
	readReplicaMBR(&r, b, a)
	u := ReplicaMsg{MBR: b, TTL: int(r.Varint())}
	if err := r.Done(); err != nil {
		return nil, err
	}
	if len(b.Lo) != len(b.Hi) {
		return nil, errDimMismatch(len(b.Lo), len(b.Hi))
	}
	return u, nil
}

// --- KindLoad: LoadMsg ---
// loads(floats)

func encLoadMsg(dst []byte, p any) ([]byte, error) {
	u, ok := p.(LoadMsg)
	if !ok {
		return nil, errType("LoadMsg", p)
	}
	return wire.AppendFloats(dst, u.Loads), nil
}

func decLoadMsg(data []byte) (any, error) {
	r := wire.NewReader(data)
	u := LoadMsg{Loads: r.Floats()}
	if err := r.Done(); err != nil {
		return nil, err
	}
	return u, nil
}
