package core

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"streamdex/internal/dht"
	"streamdex/internal/query"
	"streamdex/internal/sim"
	"streamdex/internal/summary"
)

// Store is the per-node index partition: the MBR summaries this data center
// covers by content. Entries are soft state with a lifespan (BSPAN) "in
// order to prevent cluttering of storage space and to eliminate query
// responses that contain stale information" (§V).
//
// The store is sharded by an L₁ band partition so the live node's data
// plane can run it from many goroutines at once: entry shard =
// floor(L₁/bandWidth) mod S, each shard independently sorted ascending by
// the first-coefficient lower corner L₁ and guarded by its own RWMutex.
// A similarity query (Q, r) can only match MBRs whose first-coefficient
// interval [L₁, H₁] overlaps [q₁−r, q₁+r] — the same Fourier-locality fact
// Eq. 6 routes on — so Candidates binary-searches each shard's sorted order
// under a read lock and walks only the overlapping band. Each shard keeps
// its own maxWidth (an upper bound on H₁−L₁ over its live entries),
// turning the one-sided sort key into a conservative two-sided window; the
// per-shard bound is re-tightened by that shard's sweep, so one wide MBR
// never inflates the scanned band of the other shards (and stops inflating
// its own as soon as the shard is swept).
//
// Concurrency contract: Put and AppendCandidates may be called from any
// goroutine. Queries take only read locks; Put's O(n) memmove locks a
// single shard, shrinking both the critical section and the move to
// O(n/S). The simulator constructs single-shard stores and calls
// everything from its event loop, paying one uncontended lock per
// operation.
type Store struct {
	shards    []storeShard
	bandWidth float64

	// Cumulative data-plane counters (atomic; surfaced via the node's
	// STATS output and asserted by the stale-width regression test).
	puts    atomic.Int64
	scanned atomic.Int64 // entries visited by candidate walks
}

// storeShard is one independently locked L₁ band of the store.
type storeShard struct {
	mu       sync.RWMutex
	entries  []*summary.MBR // sorted ascending by Lo[0]
	maxWidth float64        // upper bound on Hi[0]-Lo[0]; tightened on Sweep
}

// defaultBandWidth is the L₁ stripe width of the shard partition. Features
// are normalized, so first coefficients live in roughly [-1, 1]; a 0.25
// stripe spreads a typical workload over all shards while keeping a
// radius-sized query band inside a handful of them.
const defaultBandWidth = 0.25

// NewStore returns an empty single-shard store — the simulator's
// configuration, behaviorally identical to the historical unsharded store.
func NewStore() *Store {
	return NewShardedStore(1)
}

// NewShardedStore returns an empty store with the given number of L₁-band
// shards (values < 1 are treated as 1).
func NewShardedStore(shards int) *Store {
	if shards < 1 {
		shards = 1
	}
	return &Store{
		shards:    make([]storeShard, shards),
		bandWidth: defaultBandWidth,
	}
}

// Shards returns the shard count.
func (s *Store) Shards() int { return len(s.shards) }

// shardOf maps a first-coefficient lower corner to its shard.
func (s *Store) shardOf(l1 float64) int {
	if len(s.shards) == 1 {
		return 0
	}
	band := int(math.Floor(l1 / s.bandWidth))
	idx := band % len(s.shards)
	if idx < 0 {
		idx += len(s.shards)
	}
	return idx
}

// Len returns the number of MBRs held (lazily dropped expired entries may
// linger until a Candidates walk or Sweep touches them).
func (s *Store) Len() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		n += len(sh.entries)
		sh.mu.RUnlock()
	}
	return n
}

// Stats reports cumulative store activity: entries inserted and entries
// visited by candidate walks. The scanned/put ratio exposes how well the
// sorted-band pruning and the per-shard width bounds are working.
func (s *Store) Stats() (puts, scanned int64) {
	return s.puts.Load(), s.scanned.Load()
}

// Put inserts an MBR at its sorted position within its L₁-band shard.
func (s *Store) Put(b *summary.MBR) {
	l1 := b.Lo[0]
	sh := &s.shards[s.shardOf(l1)]
	sh.mu.Lock()
	i := sort.Search(len(sh.entries), func(i int) bool { return sh.entries[i].Lo[0] > l1 })
	sh.entries = append(sh.entries, nil)
	copy(sh.entries[i+1:], sh.entries[i:])
	sh.entries[i] = b
	if w := b.Hi[0] - b.Lo[0]; w > sh.maxWidth {
		sh.maxWidth = w
	}
	sh.mu.Unlock()
	s.puts.Add(1)
}

// Sweep drops expired MBRs and re-tightens each shard's width bound; it
// returns how many entries were removed. Each shard is swept under its own
// lock — there is no store-wide pause.
func (s *Store) Sweep(now sim.Time) int {
	removed := 0
	for i := range s.shards {
		removed += s.sweepShard(&s.shards[i], now)
	}
	return removed
}

// SweepShard sweeps a single shard (identified by index), recomputing its
// width bound; it returns how many entries were removed. Callers may use
// it to spread sweep cost over time on huge stores.
func (s *Store) SweepShard(i int, now sim.Time) int {
	return s.sweepShard(&s.shards[i], now)
}

func (s *Store) sweepShard(sh *storeShard, now sim.Time) int {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	kept := sh.entries[:0]
	width := 0.0
	for _, b := range sh.entries {
		if b.Expired(now) {
			continue
		}
		if w := b.Hi[0] - b.Lo[0]; w > width {
			width = w
		}
		kept = append(kept, b)
	}
	removed := len(sh.entries) - len(kept)
	for i := len(kept); i < len(sh.entries); i++ {
		sh.entries[i] = nil
	}
	sh.entries = kept
	sh.maxWidth = width
	return removed
}

// Candidates scans the store for MBRs whose minimum distance to the query
// feature is within the radius — the no-false-dismissal candidate test.
func (s *Store) Candidates(q summary.Feature, radius float64, now sim.Time, node dht.Key) []query.Match {
	return s.AppendCandidates(nil, q, radius, now, node)
}

// AppendCandidates is Candidates appending into dst, for callers that reuse
// a scratch buffer across queries. It takes only read locks, so any number
// of walks proceed in parallel with each other; shards where the walk
// encountered expired entries are compacted afterwards under a write lock,
// so long-lived nodes do not rescan dead entries while waiting for the
// next Sweep.
func (s *Store) AppendCandidates(dst []query.Match, q summary.Feature, radius float64, now sim.Time, node dht.Key) []query.Match {
	q1 := q[0]
	visited := int64(0)
	for i := range s.shards {
		sh := &s.shards[i]
		var expired bool
		dst, visited, expired = sh.appendCandidates(dst, visited, q, q1, radius, now, node)
		if expired {
			sh.compactBand(q1, radius, now)
		}
	}
	if visited > 0 {
		s.scanned.Add(visited)
	}
	return dst
}

// appendCandidates walks one shard's overlapping band under its read lock.
// It reports whether any expired entry was seen, so the caller can compact.
func (sh *storeShard) appendCandidates(dst []query.Match, visited int64, q summary.Feature, q1, radius float64, now sim.Time, node dht.Key) ([]query.Match, int64, bool) {
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	if len(sh.entries) == 0 {
		return dst, visited, false
	}
	// Only entries with Lo[0] in [q1-r-maxWidth, q1+r] can have a
	// first-coefficient interval overlapping [q1-r, q1+r].
	lo := q1 - radius - sh.maxWidth
	hi := q1 + radius
	start := sort.Search(len(sh.entries), func(i int) bool { return sh.entries[i].Lo[0] >= lo })
	sawExpired := false
	for j := start; j < len(sh.entries); j++ {
		b := sh.entries[j]
		if b.Lo[0] > hi {
			break
		}
		visited++
		if b.Expired(now) {
			sawExpired = true
			continue
		}
		if b.Hi[0] >= q1-radius { // cheap interval pre-test before MinDist
			if d := b.MinDist(q); d <= radius {
				dst = append(dst, query.Match{
					StreamID: b.StreamID,
					Seq:      b.Seq,
					DistLB:   d,
					FoundAt:  now,
					Node:     node,
				})
			}
		}
	}
	return dst, visited, sawExpired
}

// compactBand re-walks the band a query just scanned under the write lock
// and drops the expired entries it contains, in place. It runs only when a
// read walk actually saw expired entries, which is rare between sweeps, so
// queries stay read-parallel in steady state.
func (sh *storeShard) compactBand(q1, radius float64, now sim.Time) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	lo := q1 - radius - sh.maxWidth
	hi := q1 + radius
	start := sort.Search(len(sh.entries), func(i int) bool { return sh.entries[i].Lo[0] >= lo })
	w := start
	j := start
	for ; j < len(sh.entries); j++ {
		b := sh.entries[j]
		if b.Lo[0] > hi {
			break
		}
		if b.Expired(now) {
			continue // dropped: not copied back
		}
		sh.entries[w] = b
		w++
	}
	if w != j {
		n := copy(sh.entries[w:], sh.entries[j:])
		for k := w + n; k < len(sh.entries); k++ {
			sh.entries[k] = nil
		}
		sh.entries = sh.entries[:w+n]
	}
}

// shardWidth returns shard i's current width bound (tests).
func (s *Store) shardWidth(i int) float64 {
	sh := &s.shards[i]
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return sh.maxWidth
}

// allEntries returns a copy of every shard's entries (tests).
func (s *Store) allEntries() []*summary.MBR {
	var out []*summary.MBR
	for i := range s.shards {
		out = append(out, s.shardEntries(i)...)
	}
	return out
}

// shardEntries returns a copy of shard i's entry slice (tests).
func (s *Store) shardEntries(i int) []*summary.MBR {
	sh := &s.shards[i]
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return append([]*summary.MBR(nil), sh.entries...)
}

// MatchMBR tests a single, just-arrived MBR against a query feature.
func MatchMBR(b *summary.MBR, q summary.Feature, radius float64) (float64, bool) {
	d := b.MinDist(q)
	return d, d <= radius
}

// simSub is one similarity subscription registered at a covering node. Its
// detection state (seen, pending) is guarded by mu: on the live node new
// MBRs are matched against it from data-plane workers while the run loop
// flushes its pending candidates each push period. The query itself and
// the middle key are immutable after construction.
type simSub struct {
	q         *query.Similarity
	middleKey dht.Key

	mu sync.Mutex
	// seen deduplicates candidates per (stream, seq) so a re-stored or
	// re-matched MBR is reported once by this node.
	seen map[string]map[uint64]bool
	// pending are candidates detected since the last push-period flush.
	pending []query.Match
}

func newSimSub(q *query.Similarity, middle dht.Key) *simSub {
	return &simSub{q: q, middleKey: middle, seen: make(map[string]map[uint64]bool)}
}

// add records a candidate unless it was already reported.
func (s *simSub) add(m query.Match) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	seqs := s.seen[m.StreamID]
	if seqs == nil {
		seqs = make(map[uint64]bool)
		s.seen[m.StreamID] = seqs
	}
	if seqs[m.Seq] {
		return false
	}
	seqs[m.Seq] = true
	s.pending = append(s.pending, m)
	return true
}

// addAll records a batch of candidates.
func (s *simSub) addAll(ms []query.Match) {
	for _, m := range ms {
		s.add(m)
	}
}

// takePending returns and clears the pending candidates.
func (s *simSub) takePending() []query.Match {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := s.pending
	s.pending = nil
	return out
}

// aggregator is the middle-node state of one similarity query: it absorbs
// candidates funneled along the ring and periodically pushes them to the
// client (§IV-F). Aggregators are run-loop-confined even on the live node
// (notify absorption and response pushes are control-plane work).
type aggregator struct {
	queryID query.ID
	client  dht.Key
	expiry  sim.Time
	// seen deduplicates across the whole range (several nodes may store
	// replicas of the same MBR and report it independently).
	seen    map[string]map[uint64]bool
	pending []query.Match
}

func newAggregator(id query.ID, client dht.Key, expiry sim.Time) *aggregator {
	return &aggregator{queryID: id, client: client, expiry: expiry, seen: make(map[string]map[uint64]bool)}
}

func (a *aggregator) absorb(ms []query.Match) {
	for _, m := range ms {
		seqs := a.seen[m.StreamID]
		if seqs == nil {
			seqs = make(map[uint64]bool)
			a.seen[m.StreamID] = seqs
		}
		if seqs[m.Seq] {
			continue
		}
		seqs[m.Seq] = true
		a.pending = append(a.pending, m)
	}
}

func (a *aggregator) takePending() []query.Match {
	out := a.pending
	a.pending = nil
	return out
}

// ipSubState is one inner-product subscription at the stream's source.
type ipSubState struct {
	q *query.InnerProduct
}
