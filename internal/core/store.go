package core

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"streamdex/internal/dht"
	"streamdex/internal/query"
	"streamdex/internal/sim"
	"streamdex/internal/summary"
)

// Store is the per-node index partition: the MBR summaries this data center
// covers by content. Entries are soft state with a lifespan (BSPAN) "in
// order to prevent cluttering of storage space and to eliminate query
// responses that contain stale information" (§V).
//
// The store is sharded by an L₁ band partition so the live node's data
// plane can run it from many goroutines at once: entry shard =
// floor(L₁/bandWidth) mod S. Within a shard the index is published as an
// immutable snapshot behind an atomic pointer — the same trick the Chord
// protocol machine uses for its routing View — so candidate walks are
// lock-free: a reader loads the current snapshot pointer (acquire), walks
// it, and never blocks a writer or another reader. Writers (Put, Sweep,
// band compaction) serialize on a per-shard mutation mutex, build the next
// snapshot copy-on-write, bump its epoch, and publish it with an atomic
// store (release).
//
// A snapshot is laid out structure-of-arrays: flat []float64 slices carry
// the first-coefficient bounds (lo1/hi1), an []sim.Time slice the expiries,
// and — when every entry shares one dimensionality — a flattened corner
// array, with a parallel []*summary.MBR id slice consulted only when an
// entry actually matches. A similarity query (Q, r) can only match MBRs
// whose first-coefficient interval [L₁, H₁] overlaps [q₁−r, q₁+r] — the
// same Fourier-locality fact Eq. 6 routes on — so the walk binary-searches
// the sorted base for the overlapping band and scans it branch-light over
// the flat arrays, touching no per-entry pointers until a match is found.
//
// To keep Put cheap, a snapshot is a sorted base plus a small unsorted
// tail of at most tailMax recent inserts. Put appends to the tail —
// in place when the shared backing arrays have room (older snapshots only
// ever see their shorter prefix), copy-on-write otherwise — and merges the
// tail into the base when it fills, so the O(n) re-sort cost is paid once
// per tailMax inserts instead of on every one.
//
// The simulator's store (NewStore) instead runs in exclusive mode: its
// event loop is single-threaded, so immutability buys nothing and
// copy-on-write would charge every virtual-time figure run real
// allocation churn. An exclusive store mutates its snapshot in place —
// the historical sorted insert-after-equals memmove over the same SoA
// arrays — which keeps the walk order (and golden figure rows) bitwise
// identical to the historical store at the historical cost.
//
// Concurrency contract: on stores from NewShardedStore, Put and
// AppendCandidates may be called from any goroutine. Steady-state walks
// acquire no locks and perform no allocations (beyond growing the
// caller's destination slice); only when a walk observes expired entries
// does it take the shard's writer mutex afterwards to compact them out,
// mirroring the historical lazy-expiry behavior. Stores from NewStore
// are confined to one goroutine at a time by contract.
type Store struct {
	shards    []storeShard
	bandWidth float64
	tailMax   int
	// exclusive marks a single-goroutine store (NewStore): Put mutates the
	// snapshot in place instead of copy-on-write publishing.
	exclusive bool

	// Cumulative data-plane counters (atomic; surfaced via the node's
	// STATS output and asserted by the stale-width regression test).
	puts    atomic.Int64
	scanned atomic.Int64 // entries visited by candidate walks

	// Snapshot-protocol counters (SnapStats).
	epochs    atomic.Int64 // snapshot publications across all shards
	cowCopied atomic.Int64 // entries copied while building new snapshots
	merges    atomic.Int64 // tail-into-base merges
}

// storeShard is one independently mutated L₁ band of the store. snap is
// the current immutable snapshot; mu serializes writers only.
type storeShard struct {
	mu   sync.Mutex
	snap atomic.Pointer[shardSnap]
}

// shardSnap is one immutable published snapshot of a shard. All slices are
// frozen at publication: readers walk them without synchronization. The
// tail backing arrays are append-shared across consecutive snapshots — a
// writer may extend them past this snapshot's length, never within it.
type shardSnap struct {
	// Sorted base, ascending by lo1 (ties in insertion order).
	lo1, hi1 []float64
	exp      []sim.Time
	crd      []float64 // flattened corners [lo…, hi…] per entry; nil if dims mixed
	refs     []*summary.MBR

	// Unsorted tail of recent inserts, bounded by Store.tailMax.
	tLo1, tHi1 []float64
	tExp       []sim.Time
	tCrd       []float64
	tRefs      []*summary.MBR

	dims     int     // uniform dimensionality; 0 = mixed, -1 = empty
	maxWidth float64 // upper bound on Hi[0]-Lo[0]; tightened on Sweep
	epoch    uint64  // bumped on every publication of this shard
}

// SnapStats reports the snapshot protocol's cumulative activity.
type SnapStats struct {
	// Epochs counts snapshot publications summed over all shards — every
	// Put, Sweep and expiry compaction bumps it by one per shard touched.
	Epochs int64
	// CowCopied counts entries copied while building new snapshots
	// (tail copy-on-write, merges, sweeps, compactions). The ratio to
	// Epochs exposes how well the append-in-place fast path is working.
	CowCopied int64
	// Merges counts tail-into-base merge publications.
	Merges int64
}

// defaultBandWidth is the L₁ stripe width of the shard partition. Features
// are normalized, so first coefficients live in roughly [-1, 1]; a 0.25
// stripe spreads a typical workload over all shards while keeping a
// radius-sized query band inside a handful of them.
const defaultBandWidth = 0.25

// storeTailMax bounds the unsorted tail of a live shard snapshot. The
// trade is tail-scan work on reads against merge (and its allocation/GC)
// work on writes: a walk skips an out-of-band tail entry on two flat
// float64 compares, so even a full tail costs well under a microsecond,
// while every doubling of the tail halves the copy-on-write merge volume.
// 256 keeps the scan trivial and the write amplification ~n/256.
const storeTailMax = 256

// emptySnap is the shared initial snapshot of every shard.
var emptySnap = &shardSnap{dims: -1}

// NewStore returns an empty single-shard store — the simulator's
// configuration, behaviorally identical to the historical unsharded store:
// exclusive mode inserts in place with no insert tail, so the walk order
// is exactly the historical sorted insertion order. The caller must
// confine the store to one goroutine at a time; concurrent data planes
// use NewShardedStore.
func NewStore() *Store {
	s := newStore(1)
	s.tailMax = 0
	s.exclusive = true
	// An exclusive store mutates its snapshot, so it must not share the
	// global emptySnap.
	s.shards[0].snap.Store(&shardSnap{dims: -1})
	return s
}

// NewShardedStore returns an empty store with the given number of L₁-band
// shards (values < 1 are treated as 1), configured for the live data
// plane: snapshots carry an unsorted insert tail so Put stays cheap.
func NewShardedStore(shards int) *Store {
	return newStore(shards)
}

func newStore(shards int) *Store {
	if shards < 1 {
		shards = 1
	}
	s := &Store{
		shards:    make([]storeShard, shards),
		bandWidth: defaultBandWidth,
		tailMax:   storeTailMax,
	}
	for i := range s.shards {
		s.shards[i].snap.Store(emptySnap)
	}
	return s
}

// Shards returns the shard count.
func (s *Store) Shards() int { return len(s.shards) }

// shardOf maps a first-coefficient lower corner to its shard.
func (s *Store) shardOf(l1 float64) int {
	if len(s.shards) == 1 {
		return 0
	}
	band := int(math.Floor(l1 / s.bandWidth))
	idx := band % len(s.shards)
	if idx < 0 {
		idx += len(s.shards)
	}
	return idx
}

// Len returns the number of MBRs held (lazily dropped expired entries may
// linger until a Candidates walk or Sweep touches them). Lock-free.
func (s *Store) Len() int {
	n := 0
	for i := range s.shards {
		p := s.shards[i].snap.Load()
		n += len(p.lo1) + len(p.tLo1)
	}
	return n
}

// Stats reports cumulative store activity: entries inserted and entries
// visited by candidate walks. The scanned/put ratio exposes how well the
// sorted-band pruning and the per-shard width bounds are working.
func (s *Store) Stats() (puts, scanned int64) {
	return s.puts.Load(), s.scanned.Load()
}

// SnapStats reports the snapshot protocol's cumulative counters.
func (s *Store) SnapStats() SnapStats {
	return SnapStats{
		Epochs:    s.epochs.Load(),
		CowCopied: s.cowCopied.Load(),
		Merges:    s.merges.Load(),
	}
}

// ShardEpoch returns shard i's current snapshot epoch (tests, stats).
func (s *Store) ShardEpoch(i int) uint64 {
	return s.shards[i].snap.Load().epoch
}

// foldDims combines a snapshot dims state with one entry's dimensionality.
func foldDims(dims, k int) int {
	switch {
	case dims == -1:
		return k
	case dims == k:
		return dims
	default:
		return 0
	}
}

// appendCorners appends b's corners to dst in flat [lo…, hi…] layout.
func appendCorners(dst []float64, b *summary.MBR) []float64 {
	dst = append(dst, b.Lo...)
	return append(dst, b.Hi...)
}

// Put inserts an MBR into its L₁-band shard and publishes the new
// snapshot before returning, so a candidate walk that starts after Put
// returns is guaranteed to see the entry (the ordering fence the
// handleQuery/publishMBR protocol relies on).
func (s *Store) Put(b *summary.MBR) {
	l1 := b.Lo[0]
	sh := &s.shards[s.shardOf(l1)]
	sh.mu.Lock()
	cur := sh.snap.Load()
	dims := foldDims(cur.dims, len(b.Lo))
	switch {
	case s.exclusive:
		s.insertInPlace(cur, b, dims)
	case len(cur.tLo1) < s.tailMax && !(dims == 0 && cur.dims > 0):
		sh.snap.Store(s.tailAppend(cur, b, dims))
	default:
		sh.snap.Store(s.mergePut(cur, b, dims))
	}
	sh.mu.Unlock()
	s.puts.Add(1)
}

// tailAppend publishes cur plus b appended to the insert tail. When the
// shared tail backing arrays have spare capacity the new entry is written
// in place past every published snapshot's length — older snapshots only
// ever read their own shorter prefix — otherwise the tail is copied into
// fresh arrays sized for tailMax entries.
func (s *Store) tailAppend(cur *shardSnap, b *summary.MBR, dims int) *shardSnap {
	next := &shardSnap{
		lo1: cur.lo1, hi1: cur.hi1, exp: cur.exp, crd: cur.crd, refs: cur.refs,
		dims:     dims,
		maxWidth: cur.maxWidth,
		epoch:    cur.epoch + 1,
	}
	if w := b.Hi[0] - b.Lo[0]; w > next.maxWidth {
		next.maxWidth = w
	}
	n := len(cur.tLo1)
	flat := dims > 0 && (n == 0 || cur.tCrd != nil)
	inPlace := n < cap(cur.tLo1)
	if inPlace && flat && (n+1)*2*dims > cap(cur.tCrd) {
		inPlace = false
	}
	if inPlace {
		// In-place append on the shared backing: the write lands past
		// every published snapshot's length, so no reader can see it
		// until this snapshot is published.
		next.tLo1 = append(cur.tLo1, b.Lo[0])
		next.tHi1 = append(cur.tHi1, b.Hi[0])
		next.tExp = append(cur.tExp, b.Expiry)
		next.tRefs = append(cur.tRefs, b)
		if flat {
			next.tCrd = appendCorners(cur.tCrd, b)
		}
		s.epochs.Add(1)
		return next
	}
	// Copy-on-write into fresh backing with room for a full tail.
	next.tLo1 = append(make([]float64, 0, s.tailMax), cur.tLo1...)
	next.tHi1 = append(make([]float64, 0, s.tailMax), cur.tHi1...)
	next.tExp = append(make([]sim.Time, 0, s.tailMax), cur.tExp...)
	next.tRefs = append(make([]*summary.MBR, 0, s.tailMax), cur.tRefs...)
	next.tLo1 = append(next.tLo1, b.Lo[0])
	next.tHi1 = append(next.tHi1, b.Hi[0])
	next.tExp = append(next.tExp, b.Expiry)
	next.tRefs = append(next.tRefs, b)
	if flat {
		next.tCrd = appendCorners(append(make([]float64, 0, s.tailMax*2*dims), cur.tCrd...), b)
	}
	s.cowCopied.Add(int64(n))
	s.epochs.Add(1)
	return next
}

// mergePut merges cur's base, tail and the new entry b into one sorted
// base, reproducing the historical insertion order: ascending lo1, with an
// insert landing after every existing entry of equal lo1. The base is
// already sorted, so only the bounded tail is sorted (stably, preserving
// insertion order on equal keys) before a linear two-run merge — the
// amortized cost per put is O(n/tailMax) bulk copies, not a re-sort.
func (s *Store) mergePut(cur *shardSnap, b *summary.MBR, dims int) *shardSnap {
	var next *shardSnap
	if dims > 0 && (len(cur.refs) == 0 || cur.crd != nil) && (len(cur.tRefs) == 0 || cur.tCrd != nil) {
		// Uniform dims with flat corners everywhere: merge the SoA arrays
		// directly, bulk-copying base segments between tail insertions.
		next = s.mergeFlat(cur, b, dims)
	} else {
		// Mixed dims: rebuild through the entry pointers.
		tail := make([]*summary.MBR, 0, len(cur.tRefs)+1)
		tail = append(tail, cur.tRefs...)
		tail = append(tail, b)
		sort.SliceStable(tail, func(i, j int) bool { return tail[i].Lo[0] < tail[j].Lo[0] })
		next = buildSnap(mergeRuns(cur.refs, tail), dims, s.tailMax)
	}
	next.maxWidth = cur.maxWidth
	if w := b.Hi[0] - b.Lo[0]; w > next.maxWidth {
		next.maxWidth = w
	}
	next.epoch = cur.epoch + 1
	s.cowCopied.Add(int64(len(next.refs)))
	s.merges.Add(1)
	s.epochs.Add(1)
	return next
}

// mergeFlat merges the bounded tail plus b into the sorted base by
// copying whole SoA segments: the base splits into at most tail+1 runs at
// the insertion points, and every copy is a bulk memmove of flat arrays —
// no per-entry pointer chasing. All entries share dims k and carry flat
// corners. Order on equal lo1 is insert-after-equals: a tail entry lands
// after every base entry of equal key (all of which predate it) and after
// earlier-inserted tail entries (the stable order sort).
func (s *Store) mergeFlat(cur *shardSnap, b *summary.MBR, k int) *shardSnap {
	nt := len(cur.tRefs)
	lo1At := func(i int) float64 {
		if i == nt {
			return b.Lo[0]
		}
		return cur.tLo1[i]
	}
	order := make([]int, nt+1)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(i, j int) bool { return lo1At(order[i]) < lo1At(order[j]) })

	n := len(cur.lo1)
	total := n + nt + 1
	next := &shardSnap{
		lo1:  make([]float64, 0, total),
		hi1:  make([]float64, 0, total),
		exp:  make([]sim.Time, 0, total),
		crd:  make([]float64, 0, total*2*k),
		refs: make([]*summary.MBR, 0, total),
		dims: k,
	}
	copyBase := func(lo, hi int) {
		next.lo1 = append(next.lo1, cur.lo1[lo:hi]...)
		next.hi1 = append(next.hi1, cur.hi1[lo:hi]...)
		next.exp = append(next.exp, cur.exp[lo:hi]...)
		next.crd = append(next.crd, cur.crd[lo*2*k:hi*2*k]...)
		next.refs = append(next.refs, cur.refs[lo:hi]...)
	}
	pos := 0
	for _, ti := range order {
		key := lo1At(ti)
		cut := pos + sort.Search(n-pos, func(j int) bool { return cur.lo1[pos+j] > key })
		copyBase(pos, cut)
		pos = cut
		if ti == nt {
			next.lo1 = append(next.lo1, b.Lo[0])
			next.hi1 = append(next.hi1, b.Hi[0])
			next.exp = append(next.exp, b.Expiry)
			next.crd = appendCorners(next.crd, b)
			next.refs = append(next.refs, b)
		} else {
			next.lo1 = append(next.lo1, cur.tLo1[ti])
			next.hi1 = append(next.hi1, cur.tHi1[ti])
			next.exp = append(next.exp, cur.tExp[ti])
			next.crd = append(next.crd, cur.tCrd[ti*2*k:(ti+1)*2*k]...)
			next.refs = append(next.refs, cur.tRefs[ti])
		}
	}
	copyBase(pos, n)
	if s.tailMax > 0 {
		next.tLo1 = make([]float64, 0, s.tailMax)
		next.tHi1 = make([]float64, 0, s.tailMax)
		next.tExp = make([]sim.Time, 0, s.tailMax)
		next.tRefs = make([]*summary.MBR, 0, s.tailMax)
		next.tCrd = make([]float64, 0, s.tailMax*2*k)
	}
	return next
}

// insertAt opens a gap at index i and writes v, growing s by one.
func insertAt[T any](s []T, i int, v T) []T {
	var zero T
	s = append(s, zero)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

// insertInPlace mutates an exclusive store's snapshot directly: the
// historical sorted insert-after-equals memmove, applied to the SoA
// arrays. No copy-on-write, no tail — the snapshot pointer never changes,
// only its epoch. Reachable only from NewStore stores, whose contract
// confines all access to one goroutine at a time.
func (s *Store) insertInPlace(cur *shardSnap, b *summary.MBR, dims int) {
	n := len(cur.lo1)
	key := b.Lo[0]
	i := sort.Search(n, func(j int) bool { return cur.lo1[j] > key })
	cur.lo1 = insertAt(cur.lo1, i, key)
	cur.hi1 = insertAt(cur.hi1, i, b.Hi[0])
	cur.exp = insertAt(cur.exp, i, b.Expiry)
	cur.refs = insertAt(cur.refs, i, b)
	if dims > 0 && (n == 0 || cur.crd != nil) {
		k := dims
		// Grow by one corner block, shift the suffix, write b's corners.
		cur.crd = append(cur.crd, b.Lo...)
		cur.crd = append(cur.crd, b.Hi...)
		copy(cur.crd[(i+1)*2*k:], cur.crd[i*2*k:n*2*k])
		copy(cur.crd[i*2*k:], b.Lo)
		copy(cur.crd[i*2*k+k:], b.Hi)
	} else {
		cur.crd = nil // mixed dims: walks fall back to the entry pointers
	}
	cur.dims = dims
	if w := b.Hi[0] - b.Lo[0]; w > cur.maxWidth {
		cur.maxWidth = w
	}
	cur.epoch++
	s.epochs.Add(1)
}

// filterInPlace compacts an exclusive snapshot's arrays, dropping entries
// for which drop returns true, and reports how many were removed. The
// caller owns dims/maxWidth/epoch bookkeeping.
func filterInPlace(cur *shardSnap, drop func(*summary.MBR) bool) int {
	n := len(cur.refs)
	k := 0 // corner stride; 0 when there is no flat corner array
	if cur.crd != nil && cur.dims > 0 {
		k = 2 * cur.dims
	}
	w := 0
	for i := 0; i < n; i++ {
		b := cur.refs[i]
		if drop(b) {
			continue
		}
		if w != i {
			cur.lo1[w], cur.hi1[w], cur.exp[w], cur.refs[w] = cur.lo1[i], cur.hi1[i], cur.exp[i], b
			if k > 0 {
				copy(cur.crd[w*k:(w+1)*k], cur.crd[i*k:(i+1)*k])
			}
		}
		w++
	}
	clear(cur.refs[w:n]) // release dropped entries to the GC
	cur.lo1, cur.hi1, cur.exp, cur.refs = cur.lo1[:w], cur.hi1[:w], cur.exp[:w], cur.refs[:w]
	if k > 0 {
		cur.crd = cur.crd[:w*k]
	}
	return n - w
}

// gatherEntries collects cur's entries in walk order (base, then tail in
// insertion order), appending b if non-nil.
func gatherEntries(cur *shardSnap, b *summary.MBR) []*summary.MBR {
	entries := make([]*summary.MBR, 0, len(cur.refs)+len(cur.tRefs)+1)
	entries = append(entries, cur.refs...)
	entries = append(entries, cur.tRefs...)
	if b != nil {
		entries = append(entries, b)
	}
	return entries
}

// mergeRuns merges two lo1-sorted runs, taking from base on equal keys so
// base entries precede tail entries of the same lo1 — together with the
// tail's stable insertion-order sort this reproduces the historical
// insert-after-equals sort.Search order.
func mergeRuns(base, tail []*summary.MBR) []*summary.MBR {
	if len(tail) == 0 {
		return append(make([]*summary.MBR, 0, len(base)), base...)
	}
	out := make([]*summary.MBR, 0, len(base)+len(tail))
	i, j := 0, 0
	for i < len(base) && j < len(tail) {
		if base[i].Lo[0] <= tail[j].Lo[0] {
			out = append(out, base[i])
			i++
		} else {
			out = append(out, tail[j])
			j++
		}
	}
	out = append(out, base[i:]...)
	return append(out, tail[j:]...)
}

// buildSnap lays lo1-sorted entries out as a sorted-base snapshot with an
// empty tail.
func buildSnap(entries []*summary.MBR, dims, tailMax int) *shardSnap {
	n := len(entries)
	next := &shardSnap{
		lo1:  make([]float64, n),
		hi1:  make([]float64, n),
		exp:  make([]sim.Time, n),
		refs: entries,
		dims: dims,
	}
	if n == 0 {
		next.dims = -1
		next.refs = nil
	}
	if dims > 0 && n > 0 {
		next.crd = make([]float64, 0, n*2*dims)
	}
	for i, e := range entries {
		next.lo1[i] = e.Lo[0]
		next.hi1[i] = e.Hi[0]
		next.exp[i] = e.Expiry
		if next.crd != nil {
			next.crd = appendCorners(next.crd, e)
		}
	}
	if tailMax > 0 && n > 0 {
		next.tLo1 = make([]float64, 0, tailMax)
		next.tHi1 = make([]float64, 0, tailMax)
		next.tExp = make([]sim.Time, 0, tailMax)
		next.tRefs = make([]*summary.MBR, 0, tailMax)
		if dims > 0 {
			next.tCrd = make([]float64, 0, tailMax*2*dims)
		}
	}
	return next
}

// Sweep drops expired MBRs, re-tightens each shard's width bound and
// merges the insert tail into the base; it returns how many entries were
// removed. Each shard is rebuilt under its own writer mutex — walks in
// flight keep reading the previous snapshot, there is no store-wide pause.
func (s *Store) Sweep(now sim.Time) int {
	removed := 0
	for i := range s.shards {
		removed += s.sweepShard(&s.shards[i], now)
	}
	return removed
}

// SweepShard sweeps a single shard (identified by index), recomputing its
// width bound; it returns how many entries were removed. Callers may use
// it to spread sweep cost over time on huge stores.
func (s *Store) SweepShard(i int, now sim.Time) int {
	return s.sweepShard(&s.shards[i], now)
}

func (s *Store) sweepShard(sh *storeShard, now sim.Time) int {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	cur := sh.snap.Load()
	dims := -1
	width := 0.0
	if s.exclusive {
		// Exclusive stores (no tail) filter their arrays in place.
		removed := filterInPlace(cur, func(b *summary.MBR) bool {
			if b.Expired(now) {
				return true
			}
			dims = foldDims(dims, len(b.Lo))
			if w := b.Hi[0] - b.Lo[0]; w > width {
				width = w
			}
			return false
		})
		cur.dims = dims
		cur.maxWidth = width
		cur.epoch++
		s.epochs.Add(1)
		return removed
	}
	keep := func(dst []*summary.MBR, src []*summary.MBR) []*summary.MBR {
		for _, b := range src {
			if b.Expired(now) {
				continue
			}
			dims = foldDims(dims, len(b.Lo))
			if w := b.Hi[0] - b.Lo[0]; w > width {
				width = w
			}
			dst = append(dst, b)
		}
		return dst
	}
	// Filter the sorted base and the insertion-order tail separately:
	// dropping entries preserves each run's order, so one tail sort plus a
	// linear merge rebuilds the sorted base.
	keptBase := keep(make([]*summary.MBR, 0, len(cur.refs)), cur.refs)
	keptTail := keep(make([]*summary.MBR, 0, len(cur.tRefs)), cur.tRefs)
	sort.SliceStable(keptTail, func(i, j int) bool { return keptTail[i].Lo[0] < keptTail[j].Lo[0] })
	kept := mergeRuns(keptBase, keptTail)
	removed := len(cur.refs) + len(cur.tRefs) - len(kept)
	next := buildSnap(kept, dims, s.tailMax)
	next.maxWidth = width
	next.epoch = cur.epoch + 1
	sh.snap.Store(next)
	s.cowCopied.Add(int64(len(kept)))
	s.epochs.Add(1)
	return removed
}

// Candidates scans the store for MBRs whose minimum distance to the query
// feature is within the radius — the no-false-dismissal candidate test.
func (s *Store) Candidates(q summary.Feature, radius float64, now sim.Time, node dht.Key) []query.Match {
	return s.AppendCandidates(nil, q, radius, now, node)
}

// AppendCandidates is Candidates appending into dst, for callers that reuse
// a scratch buffer across queries. The walk itself is lock-free: it loads
// each shard's current snapshot with one atomic pointer read and scans the
// flat arrays, so any number of walks proceed in parallel with each other
// and with writers. Shards where the walk encountered expired entries are
// compacted afterwards under the writer mutex, so long-lived nodes do not
// rescan dead entries while waiting for the next Sweep.
func (s *Store) AppendCandidates(dst []query.Match, q summary.Feature, radius float64, now sim.Time, node dht.Key) []query.Match {
	q1 := q[0]
	visited := int64(0)
	for i := range s.shards {
		sh := &s.shards[i]
		p := sh.snap.Load()
		var expired bool
		dst, visited, expired = p.appendCandidates(dst, visited, q, q1, radius, now, node)
		if expired {
			s.compactBand(sh, q1, radius, now)
		}
	}
	if visited > 0 {
		s.scanned.Add(visited)
	}
	return dst
}

// minDistFlat is summary.MBR.MinDist over a flat [lo…, hi…] corner block,
// kept operation-for-operation identical so flat and pointer walks produce
// bitwise-equal distances.
func minDistFlat(crd []float64, q summary.Feature, k int) float64 {
	var sum float64
	for d := 0; d < k; d++ {
		switch {
		case q[d] < crd[d]:
			diff := crd[d] - q[d]
			sum += diff * diff
		case q[d] > crd[k+d]:
			diff := q[d] - crd[k+d]
			sum += diff * diff
		}
	}
	return math.Sqrt(sum)
}

// appendCandidates walks one snapshot's overlapping band without locks.
// It reports whether any expired entry was seen, so the caller can compact.
func (p *shardSnap) appendCandidates(dst []query.Match, visited int64, q summary.Feature, q1, radius float64, now sim.Time, node dht.Key) ([]query.Match, int64, bool) {
	if len(p.lo1) == 0 && len(p.tLo1) == 0 {
		return dst, visited, false
	}
	// Only entries with Lo[0] in [q1-r-maxWidth, q1+r] can have a
	// first-coefficient interval overlapping [q1-r, q1+r].
	lo := q1 - radius - p.maxWidth
	hi := q1 + radius
	qlo := q1 - radius
	k := p.dims
	flat := k == len(q) && p.crd != nil
	sawExpired := false

	start := sort.Search(len(p.lo1), func(i int) bool { return p.lo1[i] >= lo })
	for j := start; j < len(p.lo1); j++ {
		if p.lo1[j] > hi {
			break
		}
		visited++
		if e := p.exp[j]; e != 0 && now >= e {
			sawExpired = true
			continue
		}
		if p.hi1[j] >= qlo { // cheap interval pre-test before MinDist
			var d float64
			if flat {
				d = minDistFlat(p.crd[j*2*k:(j+1)*2*k], q, k)
			} else {
				d = p.refs[j].MinDist(q)
			}
			if d <= radius {
				b := p.refs[j]
				dst = append(dst, query.Match{
					StreamID: b.StreamID,
					Seq:      b.Seq,
					DistLB:   d,
					FoundAt:  now,
					Node:     node,
				})
			}
		}
	}

	tflat := k == len(q) && p.tCrd != nil
	for j := 0; j < len(p.tLo1); j++ {
		l1 := p.tLo1[j]
		if l1 < lo || l1 > hi {
			continue
		}
		visited++
		if e := p.tExp[j]; e != 0 && now >= e {
			sawExpired = true
			continue
		}
		if p.tHi1[j] >= qlo {
			var d float64
			if tflat {
				d = minDistFlat(p.tCrd[j*2*k:(j+1)*2*k], q, k)
			} else {
				d = p.tRefs[j].MinDist(q)
			}
			if d <= radius {
				b := p.tRefs[j]
				dst = append(dst, query.Match{
					StreamID: b.StreamID,
					Seq:      b.Seq,
					DistLB:   d,
					FoundAt:  now,
					Node:     node,
				})
			}
		}
	}
	return dst, visited, sawExpired
}

// compactBand rebuilds the shard without the expired entries of the band a
// query just scanned, under the writer mutex. It runs only when a walk
// actually saw expired entries, which is rare between sweeps, so
// steady-state walks never touch the mutex.
func (s *Store) compactBand(sh *storeShard, q1, radius float64, now sim.Time) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	cur := sh.snap.Load()
	lo := q1 - radius - cur.maxWidth
	hi := q1 + radius
	inBandExpired := func(b *summary.MBR) bool {
		l1 := b.Lo[0]
		return l1 >= lo && l1 <= hi && b.Expired(now)
	}
	if s.exclusive {
		if removed := filterInPlace(cur, inBandExpired); removed > 0 {
			if len(cur.refs) == 0 {
				cur.dims = -1
			}
			cur.epoch++
			s.epochs.Add(1)
		}
		return
	}
	dropped := 0
	for _, b := range cur.refs {
		if inBandExpired(b) {
			dropped++
		}
	}
	for _, b := range cur.tRefs {
		if inBandExpired(b) {
			dropped++
		}
	}
	if dropped == 0 {
		return // another walk already compacted this band
	}
	next := &shardSnap{
		dims:     cur.dims,
		maxWidth: cur.maxWidth,
		epoch:    cur.epoch + 1,
	}
	n := len(cur.refs) - dropped // upper bound; tail survivors counted below
	if n < 0 {
		n = 0
	}
	next.lo1 = make([]float64, 0, n)
	next.hi1 = make([]float64, 0, n)
	next.exp = make([]sim.Time, 0, n)
	next.refs = make([]*summary.MBR, 0, n)
	if cur.crd != nil && cur.dims > 0 {
		next.crd = make([]float64, 0, n*2*cur.dims)
	}
	for i, b := range cur.refs {
		if inBandExpired(b) {
			continue
		}
		next.lo1 = append(next.lo1, cur.lo1[i])
		next.hi1 = append(next.hi1, cur.hi1[i])
		next.exp = append(next.exp, cur.exp[i])
		next.refs = append(next.refs, b)
		if next.crd != nil {
			next.crd = appendCorners(next.crd, b)
		}
	}
	if s.tailMax > 0 {
		next.tLo1 = make([]float64, 0, s.tailMax)
		next.tHi1 = make([]float64, 0, s.tailMax)
		next.tExp = make([]sim.Time, 0, s.tailMax)
		next.tRefs = make([]*summary.MBR, 0, s.tailMax)
		if cur.dims > 0 {
			next.tCrd = make([]float64, 0, s.tailMax*2*cur.dims)
		}
		for i, b := range cur.tRefs {
			if inBandExpired(b) {
				continue
			}
			next.tLo1 = append(next.tLo1, cur.tLo1[i])
			next.tHi1 = append(next.tHi1, cur.tHi1[i])
			next.tExp = append(next.tExp, cur.tExp[i])
			next.tRefs = append(next.tRefs, b)
			if next.tCrd != nil && cur.tCrd != nil {
				next.tCrd = appendCorners(next.tCrd, b)
			}
		}
		if len(next.tRefs) > 0 && next.tCrd != nil && cur.tCrd == nil {
			// Mixed provenance: tail had no corner array to copy from.
			next.tCrd = nil
		}
	}
	if len(next.refs) == 0 && len(next.tRefs) == 0 {
		next.dims = -1
	}
	sh.snap.Store(next)
	s.cowCopied.Add(int64(len(next.refs) + len(next.tRefs)))
	s.epochs.Add(1)
}

// shardWidth returns shard i's current width bound (tests).
func (s *Store) shardWidth(i int) float64 {
	return s.shards[i].snap.Load().maxWidth
}

// allEntries returns a copy of every shard's entries (tests).
func (s *Store) allEntries() []*summary.MBR {
	var out []*summary.MBR
	for i := range s.shards {
		out = append(out, s.shardEntries(i)...)
	}
	return out
}

// shardEntries returns a copy of shard i's entries in walk order: sorted
// base first, then the insert tail in insertion order (tests).
func (s *Store) shardEntries(i int) []*summary.MBR {
	return gatherEntries(s.shards[i].snap.Load(), nil)
}

// MatchMBR tests a single, just-arrived MBR against a query feature.
func MatchMBR(b *summary.MBR, q summary.Feature, radius float64) (float64, bool) {
	d := b.MinDist(q)
	return d, d <= radius
}

// simSub is one similarity subscription registered at a covering node. Its
// detection state (seen, pending) is guarded by mu: on the live node new
// MBRs are matched against it from data-plane workers while the run loop
// flushes its pending candidates each push period. The query itself and
// the middle key are immutable after construction.
type simSub struct {
	q         *query.Similarity
	middleKey dht.Key

	mu sync.Mutex
	// seen deduplicates candidates per (stream, seq) so a re-stored or
	// re-matched MBR is reported once by this node.
	seen map[string]map[uint64]bool
	// pending are candidates detected since the last push-period flush.
	pending []query.Match
}

func newSimSub(q *query.Similarity, middle dht.Key) *simSub {
	return &simSub{q: q, middleKey: middle, seen: make(map[string]map[uint64]bool)}
}

// add records a candidate unless it was already reported.
func (s *simSub) add(m query.Match) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	seqs := s.seen[m.StreamID]
	if seqs == nil {
		seqs = make(map[uint64]bool)
		s.seen[m.StreamID] = seqs
	}
	if seqs[m.Seq] {
		return false
	}
	seqs[m.Seq] = true
	s.pending = append(s.pending, m)
	return true
}

// addAll records a batch of candidates.
func (s *simSub) addAll(ms []query.Match) {
	for _, m := range ms {
		s.add(m)
	}
}

// takePending returns and clears the pending candidates.
func (s *simSub) takePending() []query.Match {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := s.pending
	s.pending = nil
	return out
}

// aggregator is the middle-node state of one similarity query: it absorbs
// candidates funneled along the ring and periodically pushes them to the
// client (§IV-F). Aggregators are run-loop-confined even on the live node
// (notify absorption and response pushes are control-plane work).
type aggregator struct {
	queryID query.ID
	client  dht.Key
	expiry  sim.Time
	// seen deduplicates across the whole range (several nodes may store
	// replicas of the same MBR and report it independently).
	seen    map[string]map[uint64]bool
	pending []query.Match
}

func newAggregator(id query.ID, client dht.Key, expiry sim.Time) *aggregator {
	return &aggregator{queryID: id, client: client, expiry: expiry, seen: make(map[string]map[uint64]bool)}
}

func (a *aggregator) absorb(ms []query.Match) {
	for _, m := range ms {
		seqs := a.seen[m.StreamID]
		if seqs == nil {
			seqs = make(map[uint64]bool)
			a.seen[m.StreamID] = seqs
		}
		if seqs[m.Seq] {
			continue
		}
		seqs[m.Seq] = true
		a.pending = append(a.pending, m)
	}
}

func (a *aggregator) takePending() []query.Match {
	out := a.pending
	a.pending = nil
	return out
}

// ipSubState is one inner-product subscription at the stream's source.
type ipSubState struct {
	q *query.InnerProduct
}

// AppendOverlapping appends a match for every live stored MBR whose
// rectangle intersects [lo, hi] — the store walk behind standing pub/sub
// predicates. Like AppendCandidates it is lock-free: each shard's snapshot
// is loaded with one atomic read and scanned flat, with the same
// L₁ band pruning (an entry can only overlap if its first-coefficient
// interval does).
func (s *Store) AppendOverlapping(dst []query.Match, lo, hi summary.Feature, now sim.Time, node dht.Key) []query.Match {
	l1lo, l1hi := lo[0], hi[0]
	visited := int64(0)
	for i := range s.shards {
		p := s.shards[i].snap.Load()
		if len(p.lo1) == 0 && len(p.tLo1) == 0 {
			continue
		}
		from := l1lo - p.maxWidth
		start := sort.Search(len(p.lo1), func(j int) bool { return p.lo1[j] >= from })
		for j := start; j < len(p.lo1); j++ {
			if p.lo1[j] > l1hi {
				break
			}
			visited++
			if e := p.exp[j]; e != 0 && now >= e {
				continue
			}
			if b := p.refs[j]; rectOverlaps(b, lo, hi) {
				dst = append(dst, query.Match{StreamID: b.StreamID, Seq: b.Seq, FoundAt: now, Node: node})
			}
		}
		for j := 0; j < len(p.tLo1); j++ {
			l1 := p.tLo1[j]
			if l1 < from || l1 > l1hi {
				continue
			}
			visited++
			if e := p.tExp[j]; e != 0 && now >= e {
				continue
			}
			if b := p.tRefs[j]; rectOverlaps(b, lo, hi) {
				dst = append(dst, query.Match{StreamID: b.StreamID, Seq: b.Seq, FoundAt: now, Node: node})
			}
		}
	}
	if visited > 0 {
		s.scanned.Add(visited)
	}
	return dst
}

// rectOverlaps reports whether the MBR intersects the rectangle [lo, hi].
func rectOverlaps(b *summary.MBR, lo, hi summary.Feature) bool {
	if len(lo) != len(b.Lo) {
		return false
	}
	for d := range lo {
		if b.Hi[d] < lo[d] || b.Lo[d] > hi[d] {
			return false
		}
	}
	return true
}
