package core

import (
	"streamdex/internal/dht"
	"streamdex/internal/query"
	"streamdex/internal/sim"
	"streamdex/internal/summary"
)

// Store is the per-node index partition: the MBR summaries this data center
// covers by content. Entries are soft state with a lifespan (BSPAN) "in
// order to prevent cluttering of storage space and to eliminate query
// responses that contain stale information" (§V).
type Store struct {
	byStream map[string][]*summary.MBR
	count    int
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{byStream: make(map[string][]*summary.MBR)}
}

// Len returns the number of live MBRs held.
func (s *Store) Len() int { return s.count }

// Put inserts an MBR.
func (s *Store) Put(b *summary.MBR) {
	s.byStream[b.StreamID] = append(s.byStream[b.StreamID], b)
	s.count++
}

// Sweep drops expired MBRs; it returns how many were removed.
func (s *Store) Sweep(now sim.Time) int {
	removed := 0
	for sid, list := range s.byStream {
		kept := list[:0]
		for _, b := range list {
			if b.Expired(now) {
				removed++
				continue
			}
			kept = append(kept, b)
		}
		if len(kept) == 0 {
			delete(s.byStream, sid)
		} else {
			s.byStream[sid] = kept
		}
	}
	s.count -= removed
	return removed
}

// Candidates scans the store for MBRs whose minimum distance to the query
// feature is within the radius — the no-false-dismissal candidate test.
// Expired entries are skipped.
func (s *Store) Candidates(q summary.Feature, radius float64, now sim.Time, node dht.Key) []query.Match {
	var out []query.Match
	for _, list := range s.byStream {
		for _, b := range list {
			if b.Expired(now) {
				continue
			}
			if d := b.MinDist(q); d <= radius {
				out = append(out, query.Match{
					StreamID: b.StreamID,
					Seq:      b.Seq,
					DistLB:   d,
					FoundAt:  now,
					Node:     node,
				})
			}
		}
	}
	return out
}

// MatchMBR tests a single, just-arrived MBR against a query feature.
func MatchMBR(b *summary.MBR, q summary.Feature, radius float64) (float64, bool) {
	d := b.MinDist(q)
	return d, d <= radius
}

// simSub is one similarity subscription registered at a covering node.
type simSub struct {
	q         *query.Similarity
	middleKey dht.Key
	// seen deduplicates candidates per (stream, seq) so a re-stored or
	// re-matched MBR is reported once by this node.
	seen map[string]map[uint64]bool
	// pending are candidates detected since the last push-period flush.
	pending []query.Match
}

func newSimSub(q *query.Similarity, middle dht.Key) *simSub {
	return &simSub{q: q, middleKey: middle, seen: make(map[string]map[uint64]bool)}
}

// add records a candidate unless it was already reported.
func (s *simSub) add(m query.Match) bool {
	seqs := s.seen[m.StreamID]
	if seqs == nil {
		seqs = make(map[uint64]bool)
		s.seen[m.StreamID] = seqs
	}
	if seqs[m.Seq] {
		return false
	}
	seqs[m.Seq] = true
	s.pending = append(s.pending, m)
	return true
}

// takePending returns and clears the pending candidates.
func (s *simSub) takePending() []query.Match {
	out := s.pending
	s.pending = nil
	return out
}

// aggregator is the middle-node state of one similarity query: it absorbs
// candidates funneled along the ring and periodically pushes them to the
// client (§IV-F).
type aggregator struct {
	queryID query.ID
	client  dht.Key
	expiry  sim.Time
	// seen deduplicates across the whole range (several nodes may store
	// replicas of the same MBR and report it independently).
	seen    map[string]map[uint64]bool
	pending []query.Match
}

func newAggregator(id query.ID, client dht.Key, expiry sim.Time) *aggregator {
	return &aggregator{queryID: id, client: client, expiry: expiry, seen: make(map[string]map[uint64]bool)}
}

func (a *aggregator) absorb(ms []query.Match) {
	for _, m := range ms {
		seqs := a.seen[m.StreamID]
		if seqs == nil {
			seqs = make(map[uint64]bool)
			a.seen[m.StreamID] = seqs
		}
		if seqs[m.Seq] {
			continue
		}
		seqs[m.Seq] = true
		a.pending = append(a.pending, m)
	}
}

func (a *aggregator) takePending() []query.Match {
	out := a.pending
	a.pending = nil
	return out
}

// ipSubState is one inner-product subscription at the stream's source.
type ipSubState struct {
	q *query.InnerProduct
}
