package core

import (
	"sort"

	"streamdex/internal/dht"
	"streamdex/internal/query"
	"streamdex/internal/sim"
	"streamdex/internal/summary"
)

// Store is the per-node index partition: the MBR summaries this data center
// covers by content. Entries are soft state with a lifespan (BSPAN) "in
// order to prevent cluttering of storage space and to eliminate query
// responses that contain stale information" (§V).
//
// Entries are kept sorted by the first-coefficient lower corner L₁. A
// similarity query (Q, r) can only match MBRs whose first-coefficient
// interval [L₁, H₁] overlaps [q₁−r, q₁+r] — the same Fourier-locality fact
// Eq. 6 routes on — so Candidates binary-searches into the sorted order and
// walks only the overlapping band instead of scanning every entry. maxWidth
// (an upper bound on H₁−L₁ over live entries) turns the one-sided sort key
// into a conservative two-sided window.
type Store struct {
	entries  []*summary.MBR // sorted ascending by Lo[0]
	maxWidth float64        // upper bound on Hi[0]-Lo[0]; tightened on Sweep
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{}
}

// Len returns the number of MBRs held (lazily dropped expired entries may
// linger until a Candidates walk or Sweep touches them).
func (s *Store) Len() int { return len(s.entries) }

// Put inserts an MBR at its sorted position.
func (s *Store) Put(b *summary.MBR) {
	l1 := b.Lo[0]
	i := sort.Search(len(s.entries), func(i int) bool { return s.entries[i].Lo[0] > l1 })
	s.entries = append(s.entries, nil)
	copy(s.entries[i+1:], s.entries[i:])
	s.entries[i] = b
	if w := b.Hi[0] - b.Lo[0]; w > s.maxWidth {
		s.maxWidth = w
	}
}

// Sweep drops expired MBRs and re-tightens the width bound; it returns how
// many entries were removed.
func (s *Store) Sweep(now sim.Time) int {
	kept := s.entries[:0]
	width := 0.0
	for _, b := range s.entries {
		if b.Expired(now) {
			continue
		}
		if w := b.Hi[0] - b.Lo[0]; w > width {
			width = w
		}
		kept = append(kept, b)
	}
	removed := len(s.entries) - len(kept)
	for i := len(kept); i < len(s.entries); i++ {
		s.entries[i] = nil
	}
	s.entries = kept
	s.maxWidth = width
	return removed
}

// Candidates scans the store for MBRs whose minimum distance to the query
// feature is within the radius — the no-false-dismissal candidate test.
// Expired entries encountered during the walk are dropped in place, so
// long-lived nodes do not rescan dead entries while waiting for the next
// Sweep.
func (s *Store) Candidates(q summary.Feature, radius float64, now sim.Time, node dht.Key) []query.Match {
	return s.AppendCandidates(nil, q, radius, now, node)
}

// AppendCandidates is Candidates appending into dst, for callers that reuse
// a scratch buffer across queries.
func (s *Store) AppendCandidates(dst []query.Match, q summary.Feature, radius float64, now sim.Time, node dht.Key) []query.Match {
	if len(s.entries) == 0 {
		return dst
	}
	q1 := q[0]
	// Only entries with Lo[0] in [q1-r-maxWidth, q1+r] can have a
	// first-coefficient interval overlapping [q1-r, q1+r].
	lo := q1 - radius - s.maxWidth
	hi := q1 + radius
	start := sort.Search(len(s.entries), func(i int) bool { return s.entries[i].Lo[0] >= lo })
	w := start // write cursor for in-place expiry compaction
	j := start
	for ; j < len(s.entries); j++ {
		b := s.entries[j]
		if b.Lo[0] > hi {
			break
		}
		if b.Expired(now) {
			continue // dropped: not copied back
		}
		if b.Hi[0] >= q1-radius { // cheap interval pre-test before MinDist
			if d := b.MinDist(q); d <= radius {
				dst = append(dst, query.Match{
					StreamID: b.StreamID,
					Seq:      b.Seq,
					DistLB:   d,
					FoundAt:  now,
					Node:     node,
				})
			}
		}
		s.entries[w] = b
		w++
	}
	if w != j {
		n := copy(s.entries[w:], s.entries[j:])
		for k := w + n; k < len(s.entries); k++ {
			s.entries[k] = nil
		}
		s.entries = s.entries[:w+n]
	}
	return dst
}

// MatchMBR tests a single, just-arrived MBR against a query feature.
func MatchMBR(b *summary.MBR, q summary.Feature, radius float64) (float64, bool) {
	d := b.MinDist(q)
	return d, d <= radius
}

// simSub is one similarity subscription registered at a covering node.
type simSub struct {
	q         *query.Similarity
	middleKey dht.Key
	// seen deduplicates candidates per (stream, seq) so a re-stored or
	// re-matched MBR is reported once by this node.
	seen map[string]map[uint64]bool
	// pending are candidates detected since the last push-period flush.
	pending []query.Match
}

func newSimSub(q *query.Similarity, middle dht.Key) *simSub {
	return &simSub{q: q, middleKey: middle, seen: make(map[string]map[uint64]bool)}
}

// add records a candidate unless it was already reported.
func (s *simSub) add(m query.Match) bool {
	seqs := s.seen[m.StreamID]
	if seqs == nil {
		seqs = make(map[uint64]bool)
		s.seen[m.StreamID] = seqs
	}
	if seqs[m.Seq] {
		return false
	}
	seqs[m.Seq] = true
	s.pending = append(s.pending, m)
	return true
}

// takePending returns and clears the pending candidates.
func (s *simSub) takePending() []query.Match {
	out := s.pending
	s.pending = nil
	return out
}

// aggregator is the middle-node state of one similarity query: it absorbs
// candidates funneled along the ring and periodically pushes them to the
// client (§IV-F).
type aggregator struct {
	queryID query.ID
	client  dht.Key
	expiry  sim.Time
	// seen deduplicates across the whole range (several nodes may store
	// replicas of the same MBR and report it independently).
	seen    map[string]map[uint64]bool
	pending []query.Match
}

func newAggregator(id query.ID, client dht.Key, expiry sim.Time) *aggregator {
	return &aggregator{queryID: id, client: client, expiry: expiry, seen: make(map[string]map[uint64]bool)}
}

func (a *aggregator) absorb(ms []query.Match) {
	for _, m := range ms {
		seqs := a.seen[m.StreamID]
		if seqs == nil {
			seqs = make(map[uint64]bool)
			a.seen[m.StreamID] = seqs
		}
		if seqs[m.Seq] {
			continue
		}
		seqs[m.Seq] = true
		a.pending = append(a.pending, m)
	}
}

func (a *aggregator) takePending() []query.Match {
	out := a.pending
	a.pending = nil
	return out
}

// ipSubState is one inner-product subscription at the stream's source.
type ipSubState struct {
	q *query.InnerProduct
}
