// Package core implements the paper's primary contribution: the adaptive
// and scalable middleware for distributed data-stream indexing on top of a
// content-based routing substrate (§IV).
//
// Each node of the overlay runs a DataCenter (a sensor proxy / base
// station). The middleware offers the application view of the paper's
// Figure 5:
//
//   - post new stream data values (one-time update(summary, stream)),
//   - subscribe continuous similarity queries (one-time subscribe(pattern),
//     periodic push_similarity_info),
//   - subscribe continuous inner-product queries (one-time
//     subscribe(inner_product), periodic push_inner_product_info).
//
// Under the hood it computes incremental DFT summaries per stream, batches
// them into MBRs, routes the MBRs by content (mapping function h, Eq. 6),
// replicates them over their key range, disseminates similarity queries to
// the range [h(q1-r), h(q1+r)], matches queries against stored MBRs with
// the lower-bounding MINDIST test, funnels candidates along the ring to the
// range's middle node, and pushes aggregated responses to clients — plus
// the location-service path for inner-product queries (§IV-D).
package core

import (
	"fmt"

	"streamdex/internal/dht"
	"streamdex/internal/dsp"
	"streamdex/internal/sim"
)

// Config collects the middleware parameters. The defaults reproduce the
// evaluation configuration of §V (Table I).
type Config struct {
	// Space is the identifier universe shared with the routing substrate.
	Space dht.Space

	// WindowSize is the sliding-window length w of every stream.
	WindowSize int
	// Coeffs is how many leading DFT coefficients each stream summary
	// retains (including the DC term).
	Coeffs int
	// FeatureDims is the dimensionality of the unit feature space the
	// index works in (real/imaginary parts unpacked; Fig. 3(b) uses 3).
	FeatureDims int
	// Norm is the stream normalization: ZNorm for correlation-style
	// similarity (the default), UnitNorm for subsequence matching.
	Norm dsp.Mode

	// Beta is the MBR batching factor: every Beta consecutive feature
	// vectors form one MBR (§IV-G).
	Beta int

	// MBRLifespan (BSPAN) is how long stored MBRs live before removal.
	MBRLifespan sim.Time
	// PushPeriod (NPER) is the period of all periodic exchanges:
	// neighbor similarity notifications, response pushes to clients, and
	// inner-product result pushes.
	PushPeriod sim.Time

	// RangeMode selects sequential or bidirectional range multicast
	// (§IV-C).
	RangeMode dht.RangeMode

	// Seed drives all middleware-internal randomness (tick staggering).
	Seed int64

	// StoreShards is the number of independently mutated L₁-band shards the
	// per-node MBR store is split into on substrates with a concurrent data
	// plane; live nodes set it to a multiple of the core count so workers
	// index and match in parallel. The simulator ignores it: its
	// single-threaded event loop uses the exclusive in-place store, which
	// reproduces the historical walk order (and golden figure rows) exactly.
	StoreShards int

	// Sketches enables the continuous-query engine's windowed aggregates:
	// every locally sourced stream maintains an ECM-style exponential-
	// histogram sketch of its raw values, published over the key range of
	// each finished MBR. Off by default — sketch traffic only flows for
	// deployments that opt in, so the paper's evaluation workloads are
	// unchanged.
	Sketches bool
	// SketchWindow is the sliding-window span of the sketches (defaults to
	// MBRLifespan when zero: the same soft-state horizon as the MBRs).
	SketchWindow sim.Time
	// SketchK is the exponential-histogram error parameter (at most K+1
	// buckets per size class; defaults to 4, ~25% relative error).
	SketchK int
	// SketchBands is how many equal-width value sub-ranges of
	// [SketchLo, SketchHi) the quantile bank tracks (defaults to 8).
	SketchBands int
	// SketchLo and SketchHi delimit the raw-value range the quantile bank
	// buckets (defaults to [0, 1000): the bounded random-walk range of the
	// workload generator). Out-of-range values clamp into the edge bands.
	SketchLo, SketchHi float64

	// Replicas is the hot-range replication factor: every stored MBR is
	// additionally walked down Replicas-1 ring successors of each natural
	// coverer, point queries stride over the covering range and pick one
	// replica by power-of-two-choices over gossiped load reports, and
	// origins republish their live MBRs each push period so replica sets
	// re-home after churn. Values <= 1 disable the machinery entirely
	// (the default): no replica traffic, no load gossip, and the exact
	// historical message schedule — golden figure rows are bitwise
	// unchanged.
	Replicas int

	// AdmitRate and AdmitBurst parameterize per-node admission control on
	// data-plane ingest: a token bucket refilled at AdmitRate tokens/s
	// with capacity AdmitBurst, charged one token per MBR/replica store
	// operation. When the bucket is empty the store operation is shed
	// (counted in metrics.DataPlane.AdmitShed) while forwarding still
	// proceeds, so overload degrades to bounded staleness on the
	// overloaded node instead of unbounded queue growth. AdmitRate <= 0
	// disables admission control (the default).
	AdmitRate  float64
	AdmitBurst float64
}

// sketchParams returns the effective sketch parameterization with defaults
// applied.
func (c Config) sketchParams() (window sim.Time, k, bands int, lo, hi float64) {
	window = c.SketchWindow
	if window <= 0 {
		window = c.MBRLifespan
	}
	k = c.SketchK
	if k < 1 {
		k = 4
	}
	bands = c.SketchBands
	if bands < 1 {
		bands = 8
	}
	lo, hi = c.SketchLo, c.SketchHi
	if !(lo < hi) {
		lo, hi = 0, 1000
	}
	return window, k, bands, lo, hi
}

// DefaultConfig returns the Table I configuration: BSPAN 5 s, NPER 2 s, a
// 32-bit ring, 4096-point windows summarized by 3 complex coefficients
// unpacked into 3 feature dimensions, z-normalization, batching factor 25,
// and sequential range multicast.
//
// The window/batch combination reproduces the paper's regime: one MBR per
// stream per ~5 s (matching BSPAN) whose key range covers only a couple of
// nodes even at N = 500 ("our mechanism of MBR creation generated MBRs
// with relatively small ranges so that the contribution of component b)
// is negligible"). Consecutive features of a 4096-point sliding window
// drift slowly, which is exactly the Fourier locality the batching
// exploits; the incremental DFT keeps per-item cost O(k) regardless of the
// window length.
func DefaultConfig() Config {
	return Config{
		Space:       dht.NewSpace(32),
		WindowSize:  4096,
		Coeffs:      3,
		FeatureDims: 3,
		Norm:        dsp.ZNorm,
		Beta:        25,
		MBRLifespan: 5 * sim.Second,
		PushPeriod:  2 * sim.Second,
		RangeMode:   dht.RangeSequential,
		Seed:        1,
	}
}

// Validate reports a configuration error, if any.
func (c Config) Validate() error {
	if c.Space.M == 0 {
		return fmt.Errorf("core: config without identifier space")
	}
	if c.WindowSize <= 1 {
		return fmt.Errorf("core: window size %d", c.WindowSize)
	}
	if c.Coeffs < 1 || c.Coeffs > c.WindowSize/2 {
		return fmt.Errorf("core: %d coefficients for window %d", c.Coeffs, c.WindowSize)
	}
	usable := 2 * c.Coeffs
	if c.Norm == dsp.ZNorm {
		usable = 2 * (c.Coeffs - 1) // DC is dropped
	}
	if c.FeatureDims < 1 || c.FeatureDims > usable {
		return fmt.Errorf("core: %d feature dims from %d usable coordinates", c.FeatureDims, usable)
	}
	if c.Beta < 1 {
		return fmt.Errorf("core: batching factor %d", c.Beta)
	}
	if c.MBRLifespan <= 0 || c.PushPeriod <= 0 {
		return fmt.Errorf("core: non-positive lifespan/period")
	}
	if c.Replicas < 0 {
		return fmt.Errorf("core: negative replication factor %d", c.Replicas)
	}
	if c.AdmitRate > 0 && c.AdmitBurst <= 0 {
		return fmt.Errorf("core: admission rate %g with non-positive burst %g", c.AdmitRate, c.AdmitBurst)
	}
	return nil
}

// skipDC reports whether feature extraction drops the DC coefficient
// (z-normalized streams have X_0 = 0 identically).
func (c Config) skipDC() bool { return c.Norm == dsp.ZNorm }
