package core

// subOp implements standing pub/sub predicates over the MBR index: a
// client registers a feature-space rectangle at every node covering its
// key range; covering nodes match each arriving MBR against the
// registered predicates and push detections back to the subscriber as
// data-plane frames once per push period.
//
// Soft state and churn: registrations expire with their lifespan, and the
// origin re-multicasts its own standing predicates every push period —
// plus immediately when the substrate reports a neighborhood change — so
// a node that newly covers part of the range after churn picks the
// predicate up within one period (its fresh registration walks the local
// store, recovering MBRs that arrived while it was uncovered).

import (
	"sync"
	"sync/atomic"

	"streamdex/internal/cqe"
	"streamdex/internal/dht"
	"streamdex/internal/query"
	"streamdex/internal/sim"
	"streamdex/internal/summary"
)

// standingSub is one registered predicate at a covering node.
type standingSub struct {
	p *query.Predicate

	mu sync.Mutex
	// seen deduplicates detections per (stream, seq): the walk at
	// registration time and the per-MBR path may see the same summary, and
	// range replication re-stores summaries.
	seen    map[string]map[uint64]bool
	pending []query.Match
}

func newStandingSub(p *query.Predicate) *standingSub {
	return &standingSub{p: p, seen: make(map[string]map[uint64]bool)}
}

// add records a detection unless already reported.
func (s *standingSub) add(m query.Match) {
	s.mu.Lock()
	defer s.mu.Unlock()
	seqs := s.seen[m.StreamID]
	if seqs == nil {
		seqs = make(map[uint64]bool)
		s.seen[m.StreamID] = seqs
	}
	if seqs[m.Seq] {
		return
	}
	seqs[m.Seq] = true
	s.pending = append(s.pending, m)
}

func (s *standingSub) addAll(ms []query.Match) {
	for _, m := range ms {
		s.add(m)
	}
}

// takePending drains the detections accumulated since the last push.
func (s *standingSub) takePending() []query.Match {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := s.pending
	s.pending = nil
	return out
}

type subOp struct {
	dc *DataCenter

	// mu guards subs: workers register predicates and match MBRs against
	// them while the loop sweeps and pushes. n mirrors len(subs) so the
	// per-MBR hook costs one atomic load when no predicate is registered.
	mu   sync.RWMutex
	subs map[query.ID]*standingSub
	n    atomic.Int32

	// mine are the predicates this node originated, keyed for periodic
	// refresh. Loop-confined.
	mine map[query.ID]*query.Predicate
}

func newSubOp(dc *DataCenter) *subOp {
	return &subOp{
		dc:   dc,
		subs: make(map[query.ID]*standingSub),
		mine: make(map[query.ID]*query.Predicate),
	}
}

// StandingSubCount reports the number of standing predicate
// subscriptions registered at this node. Safe from any goroutine.
func (dc *DataCenter) StandingSubCount() int { return int(dc.opSub.n.Load()) }

// Name implements cqe.Operator.
func (o *subOp) Name() string { return "subscribe" }

// Kinds implements cqe.Operator.
func (o *subOp) Kinds() []dht.Kind { return []dht.Kind{KindSub, KindSubMatch} }

// Deliver implements cqe.Operator (loop context).
func (o *subOp) Deliver(h cqe.Host, msg *dht.Message) {
	switch msg.Kind {
	case KindSub:
		o.onSub(h, msg)
	case KindSubMatch:
		p := msg.Payload.(SubMatchMsg)
		o.dc.mw.deliverSubMatch(p)
	}
}

// DeliverData implements cqe.Operator: registration is worker-safe (the
// table carries its own lock, the store walk is lock-free); match pushes
// land in loop-confined client state.
func (o *subOp) DeliverData(h cqe.Host, msg *dht.Message) bool {
	if msg.Kind == KindSub {
		o.onSub(h, msg)
		return true
	}
	return false
}

// onSub registers (or cancels) a predicate and keeps the range multicast
// going.
//
// Ordering fence (same as handleQuery): the predicate is registered
// *before* the store walk, and publishers insert into the store *before*
// the engine's per-MBR fan-out. Any MBR concurrent with the registration
// is seen at least once — by the walk if its Put completed first, by the
// publisher's OnMBR otherwise — and counted at most once through the
// (stream, seq) dedup.
func (o *subOp) onSub(h cqe.Host, msg *dht.Message) {
	p := msg.Payload.(SubMsg)
	if p.P != nil {
		if p.Cancel {
			o.remove(p.P.ID)
		} else if now := h.Now(); now < p.P.Expiry() {
			o.mu.Lock()
			sub := o.subs[p.P.ID]
			fresh := sub == nil
			if fresh {
				sub = newStandingSub(p.P)
				o.subs[p.P.ID] = sub
				o.n.Store(int32(len(o.subs)))
			}
			o.mu.Unlock()
			if fresh {
				sub.addAll(o.dc.store.AppendOverlapping(nil, p.P.Lo, p.P.Hi, now, o.dc.id))
			}
		}
	}
	h.ContinueRange(msg)
}

func (o *subOp) remove(id query.ID) {
	o.mu.Lock()
	delete(o.subs, id)
	o.n.Store(int32(len(o.subs)))
	o.mu.Unlock()
}

// OnMBR implements cqe.Operator: test the new summary against every
// registered predicate. Runs on workers; the atomic short-circuit keeps
// the hook free for the (default) deployment with no subscriptions.
func (o *subOp) OnMBR(h cqe.Host, b *summary.MBR) {
	if o.n.Load() == 0 {
		return
	}
	now := h.Now()
	o.mu.RLock()
	defer o.mu.RUnlock()
	for _, sub := range o.subs {
		if now >= sub.p.Expiry() {
			continue
		}
		if rectOverlaps(b, sub.p.Lo, sub.p.Hi) {
			sub.add(query.Match{StreamID: b.StreamID, Seq: b.Seq, FoundAt: now, Node: o.dc.id})
		}
	}
}

// Tick implements cqe.Operator: sweep expired registrations, push pending
// detections to their subscribers, and refresh this node's own standing
// predicates.
func (o *subOp) Tick(h cqe.Host, now sim.Time) {
	type push struct {
		origin dht.Key
		p      SubMatchMsg
	}
	var pushes []push
	o.mu.Lock()
	for id, sub := range o.subs {
		if now >= sub.p.Expiry() {
			delete(o.subs, id)
			continue
		}
		if pending := sub.takePending(); len(pending) > 0 {
			pushes = append(pushes, push{sub.p.Origin, SubMatchMsg{SubID: id, Matches: pending}})
		}
	}
	o.n.Store(int32(len(o.subs)))
	o.mu.Unlock()
	for _, ps := range pushes {
		if ps.origin == o.dc.id {
			o.dc.mw.deliverSubMatch(ps.p)
			continue
		}
		h.Send(ps.origin, &dht.Message{Kind: KindSubMatch, Payload: ps.p})
	}
	for id, p := range o.mine {
		if now >= p.Expiry() {
			delete(o.mine, id)
			continue
		}
		o.multicast(h, p, false)
	}
}

// OnRingChange implements cqe.Operator: re-home immediately instead of
// waiting out the push period, so a subscription survives the crash of an
// adjacent covering node with at most a stabilization round of downtime.
func (o *subOp) OnRingChange(h cqe.Host) {
	now := h.Now()
	for _, p := range o.mine {
		if now < p.Expiry() {
			o.multicast(h, p, false)
		}
	}
}

// multicast sends the registration (or cancellation) over the predicate's
// key range.
func (o *subOp) multicast(h cqe.Host, p *query.Predicate, cancel bool) {
	lo, hi := p.KeyRange(o.dc.mw.mapper)
	h.SendRange(lo, hi, &dht.Message{Kind: KindSub, Payload: SubMsg{P: p, Cancel: cancel}})
}

// register originates a standing predicate from this node (loop context).
func (o *subOp) register(h cqe.Host, p *query.Predicate) {
	o.mine[p.ID] = p
	o.multicast(h, p, false)
}

// cancel withdraws a predicate this node originated.
func (o *subOp) cancel(h cqe.Host, id query.ID) bool {
	p := o.mine[id]
	if p == nil {
		return false
	}
	delete(o.mine, id)
	o.multicast(h, p, true)
	o.remove(id) // the origin may itself cover part of the range
	return true
}
