package core

// simOp is the continuous similarity-query path (§IV-E/F) expressed as a
// cqe.Operator: query dissemination, per-MBR matching, the periodic
// neighbor funnel toward middle nodes, and response pushes. The mechanics
// stay on DataCenter (they predate the engine); the operator is the
// dispatch surface.

import (
	"streamdex/internal/cqe"
	"streamdex/internal/dht"
	"streamdex/internal/sim"
	"streamdex/internal/summary"
)

type simOp struct {
	dc *DataCenter
}

// Name implements cqe.Operator.
func (o *simOp) Name() string { return "similarity" }

// Kinds implements cqe.Operator.
func (o *simOp) Kinds() []dht.Kind { return []dht.Kind{KindQuery, KindNotify, KindResponse} }

// Deliver implements cqe.Operator (loop context).
func (o *simOp) Deliver(h cqe.Host, msg *dht.Message) {
	switch msg.Kind {
	case KindQuery:
		o.dc.handleQuery(msg, true)
	case KindNotify:
		o.dc.onNotify(msg)
	case KindResponse:
		o.dc.mw.deliverSimilarity(o.dc.id, msg.Payload.(ResponseMsg))
	}
}

// DeliverData implements cqe.Operator: query evaluation is worker-safe
// (the ordering fence in handleQuery), the control kinds are not.
func (o *simOp) DeliverData(h cqe.Host, msg *dht.Message) bool {
	if msg.Kind == KindQuery {
		o.dc.handleQuery(msg, false)
		return true
	}
	return false
}

// OnMBR implements cqe.Operator: match the new summary against every
// registered subscription (worker-safe; see matchNewMBR).
func (o *simOp) OnMBR(h cqe.Host, b *summary.MBR) { o.dc.matchNewMBR(b) }

// Tick implements cqe.Operator: the similarity slice of the historical
// periodTick — sweep subscriptions and aggregators, funnel detected
// similarities one ring hop, push aggregated responses to clients.
func (o *simOp) Tick(h cqe.Host, now sim.Time) {
	dc := o.dc
	dc.subMu.Lock()
	for id, sub := range dc.subs {
		if now >= sub.q.Expiry() {
			delete(dc.subs, id)
		}
	}
	dc.subMu.Unlock()
	for id, agg := range dc.aggs {
		if now >= agg.expiry {
			delete(dc.aggs, id)
		}
	}
	dc.flushNotifies(now)
	dc.pushResponses(now)
}

// OnRingChange implements cqe.Operator. Similarity soft state already
// survives churn adaptively (absorbOrRelay re-creates aggregators from
// notify items), so no eager action is needed.
func (o *simOp) OnRingChange(h cqe.Host) {}
