package core

import (
	"testing"

	"streamdex/internal/dht"
	"streamdex/internal/sim"
	"streamdex/internal/summary"
)

// holdersOf returns the set of live nodes whose stores hold a non-expired
// MBR of the given stream.
func holdersOf(mw *Middleware, ids []dht.Key, stream string, now sim.Time) map[dht.Key]bool {
	out := make(map[dht.Key]bool)
	for _, id := range ids {
		for _, b := range mw.DataCenter(id).store.allEntries() {
			if b.StreamID == stream && !b.Expired(now) {
				out[id] = true
				break
			}
		}
	}
	return out
}

// TestQueriesSurvivePrimaryCovererCrash scripts the churn scenario the
// covering-range replication targets: a hot key's natural first coverer —
// the node every un-replicated query for that key lands on — is crashed,
// and point queries posted right after must keep answering from the
// surviving replicas while the ring heals and the origin's republish
// re-homes the range. Extends the TestSubscriptionSurvivesCoveringNodeCrash
// pattern to the MBR read path.
func TestQueriesSurvivePrimaryCovererCrash(t *testing.T) {
	cfg := testConfig()
	cfg.Replicas = 3
	eng, net, mw, ids := testCluster(t, 16, cfg, true)
	eng.RunFor(10 * sim.Second) // windows fill, MBRs + replica tails circulate

	// succOf finds a key's natural first coverer on the (sorted) ring.
	succOf := func(k dht.Key) dht.Key {
		for _, id := range ids {
			if id >= k {
				return id
			}
		}
		return ids[0]
	}

	// Pick a hot stream whose primary coverer is a third node: not the
	// stream's own source (crashing that would stop fresh publishes and
	// test routing, not replication) and not the query origin.
	origin := ids[0]
	var target string
	var primary dht.Key
	for i, id := range ids {
		f := mw.DataCenter(id).StreamFeature(streamName(i))
		if f == nil {
			continue
		}
		lo, _ := mw.Mapper().QueryRange(f.Routing(), 0.15)
		if p := succOf(lo); p != id && p != origin {
			target, primary = streamName(i), p
			break
		}
	}
	if target == "" {
		t.Fatal("no stream with a distinct primary coverer this seed; adjust seed")
	}

	// The replica invariant before any churn: the hot stream's summary is
	// held beyond its natural coverer — the tail put it on the coverer's
	// successors.
	pre := holdersOf(mw, ids, target, eng.Now())
	if len(pre) < cfg.Replicas {
		t.Fatalf("stream %s held by %d nodes before the crash, want >= %d (replica tail missing)",
			target, len(pre), cfg.Replicas)
	}
	if !pre[primary] {
		t.Fatalf("primary coverer %d does not hold stream %s; holder set %v", primary, target, keys(pre))
	}

	// Sanity: the hot key answers before the crash.
	var f summary.Feature
	for i, id := range ids {
		if streamName(i) == target {
			f = mw.DataCenter(id).StreamFeature(target)
		}
	}
	if f == nil {
		t.Fatalf("stream %s feature not ready", target)
	}
	q1, err := mw.PostSimilarity(origin, f, 0.15, 5*sim.Second)
	if err != nil {
		t.Fatal(err)
	}
	eng.RunFor(3 * sim.Second)
	found := false
	for _, sid := range mw.MatchedStreams(q1) {
		if sid == target {
			found = true
		}
	}
	if !found {
		t.Fatalf("stream %s not matched before the crash; matched = %v", target, mw.MatchedStreams(q1))
	}

	// Crash the primary coverer and query again immediately: the strided
	// read path must answer from a surviving replica.
	net.Fail(primary)
	eng.RunFor(2 * sim.Second)
	q2, err := mw.PostSimilarity(origin, f, 0.15, 8*sim.Second)
	if err != nil {
		t.Fatal(err)
	}
	eng.RunFor(6 * sim.Second)
	found = false
	for _, sid := range mw.MatchedStreams(q2) {
		if sid == target {
			found = true
		}
	}
	if !found {
		t.Fatalf("stream %s not matched after its primary coverer crashed; matched = %v",
			target, mw.MatchedStreams(q2))
	}

	// Re-homing: after stabilization and a few push periods the replica
	// set must be back at full strength without the dead primary — the
	// republished range walked the healed ring and re-launched its tail,
	// so fresh summaries have Replicas live holders again. (A brand-new
	// holder is not required: the node inheriting the vacated arc was
	// usually already carrying a tail copy — that is the point of the
	// tail.)
	post := holdersOf(mw, ids, target, eng.Now())
	for id := range post {
		if !net.Alive(id) {
			delete(post, id) // a dead node's store is unreachable
		}
	}
	if len(post) < cfg.Replicas {
		t.Fatalf("stream %s held by %d live nodes after the crash, want >= %d (replica set never regenerated); holders %v",
			target, len(post), cfg.Replicas, keys(post))
	}
}
