package core

import (
	"math"
	"testing"

	"streamdex/internal/query"
	"streamdex/internal/sim"
	"streamdex/internal/summary"
)

func mbrAt(sid string, seq uint64, lo, hi summary.Feature, expiry sim.Time) *summary.MBR {
	b := summary.NewMBR(sid, seq, lo)
	b.Extend(hi)
	b.Expiry = expiry
	return b
}

func TestStorePutSweep(t *testing.T) {
	s := NewStore()
	s.Put(mbrAt("a", 0, summary.Feature{0}, summary.Feature{0.1}, 5*sim.Second))
	s.Put(mbrAt("a", 1, summary.Feature{0}, summary.Feature{0.1}, 10*sim.Second))
	s.Put(mbrAt("b", 0, summary.Feature{0.5}, summary.Feature{0.6}, 5*sim.Second))
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	if removed := s.Sweep(5 * sim.Second); removed != 2 {
		t.Fatalf("Sweep removed %d, want 2", removed)
	}
	if s.Len() != 1 {
		t.Fatalf("Len after sweep = %d", s.Len())
	}
	if left := s.shardEntries(0); len(left) != 1 || left[0].StreamID != "a" || left[0].Seq != 1 {
		t.Fatalf("surviving entry = %v", left)
	}
}

func TestStoreSortedByFirstCoefficient(t *testing.T) {
	s := NewStore()
	for _, l1 := range []float64{0.5, -0.2, 0.9, 0.1, -0.7, 0.1} {
		s.Put(mbrAt("s", uint64(s.Len()), summary.Feature{l1}, summary.Feature{l1 + 0.05}, 0))
	}
	entries := s.shardEntries(0)
	for i := 1; i < len(entries); i++ {
		if entries[i-1].Lo[0] > entries[i].Lo[0] {
			t.Fatalf("entries out of order at %d: %v > %v", i, entries[i-1].Lo[0], entries[i].Lo[0])
		}
	}
	// A query radius only reaches entries whose L1 interval overlaps it.
	got := s.Candidates(summary.Feature{0.1}, 0.05, 0, 7)
	if len(got) != 2 {
		t.Fatalf("candidates = %v, want the two entries at L1=0.1", got)
	}
}

func TestStoreCandidatesDropsExpiredInPlace(t *testing.T) {
	s := NewStore()
	// Five entries near the query point, three of which expire at 1s.
	s.Put(mbrAt("live1", 0, summary.Feature{0.10}, summary.Feature{0.12}, 0))
	s.Put(mbrAt("dead1", 1, summary.Feature{0.11}, summary.Feature{0.13}, sim.Second))
	s.Put(mbrAt("dead2", 2, summary.Feature{0.12}, summary.Feature{0.14}, sim.Second))
	s.Put(mbrAt("live2", 3, summary.Feature{0.13}, summary.Feature{0.15}, 0))
	s.Put(mbrAt("dead3", 4, summary.Feature{0.14}, summary.Feature{0.16}, sim.Second))
	// One far entry outside the walk, also expired: stays until Sweep.
	s.Put(mbrAt("deadFar", 5, summary.Feature{0.9}, summary.Feature{0.95}, sim.Second))

	got := s.Candidates(summary.Feature{0.12}, 0.05, 2*sim.Second, 1)
	if len(got) != 2 {
		t.Fatalf("candidates = %v, want live1+live2", got)
	}
	// The walk must have dropped the three expired entries it touched —
	// storage shrinks without an explicit Sweep.
	if s.Len() != 3 {
		t.Fatalf("Len after candidate walk = %d, want 3 (expired dropped in place)", s.Len())
	}
	entries := s.shardEntries(0)
	for i := 1; i < len(entries); i++ {
		if entries[i-1].Lo[0] > entries[i].Lo[0] {
			t.Fatalf("compaction broke sort order: %v", entries)
		}
	}
	// The untouched far entry goes on the next sweep.
	if removed := s.Sweep(2 * sim.Second); removed != 1 {
		t.Fatalf("Sweep removed %d, want 1", removed)
	}
	if s.Len() != 2 {
		t.Fatalf("Len after sweep = %d", s.Len())
	}
}

func TestStoreWidthBoundCoversWideMBRs(t *testing.T) {
	s := NewStore()
	// A wide rectangle whose Lo[0] is far below the query window but whose
	// interval still overlaps it: the maxWidth bound must keep it visible.
	s.Put(mbrAt("wide", 0, summary.Feature{-0.8}, summary.Feature{0.5}, 0))
	s.Put(mbrAt("narrow", 1, summary.Feature{0.4}, summary.Feature{0.45}, 0))
	got := s.Candidates(summary.Feature{0.42}, 0.05, 0, 1)
	if len(got) != 2 {
		t.Fatalf("candidates = %v, want wide+narrow", got)
	}
}

func TestStoreCandidates(t *testing.T) {
	s := NewStore()
	s.Put(mbrAt("near", 3, summary.Feature{0.1}, summary.Feature{0.15}, 0))
	s.Put(mbrAt("far", 1, summary.Feature{0.8}, summary.Feature{0.9}, 0))
	s.Put(mbrAt("expired", 2, summary.Feature{0.1}, summary.Feature{0.12}, sim.Second))
	got := s.Candidates(summary.Feature{0.12}, 0.05, 2*sim.Second, 42)
	if len(got) != 1 {
		t.Fatalf("candidates = %v, want only 'near'", got)
	}
	m := got[0]
	if m.StreamID != "near" || m.Seq != 3 || m.Node != 42 || m.FoundAt != 2*sim.Second {
		t.Fatalf("match = %+v", m)
	}
	if m.DistLB != 0 {
		t.Fatalf("DistLB = %v, query point inside MBR", m.DistLB)
	}
}

func TestSimSubDedup(t *testing.T) {
	q := &query.Similarity{ID: 1, Lifespan: sim.Second}
	sub := newSimSub(q, 0)
	m := query.Match{StreamID: "s", Seq: 7}
	if !sub.add(m) {
		t.Fatal("first add rejected")
	}
	if sub.add(m) {
		t.Fatal("duplicate accepted")
	}
	if !sub.add(query.Match{StreamID: "s", Seq: 8}) {
		t.Fatal("new seq rejected")
	}
	got := sub.takePending()
	if len(got) != 2 {
		t.Fatalf("pending = %d", len(got))
	}
	if len(sub.takePending()) != 0 {
		t.Fatal("takePending did not clear")
	}
}

func TestAggregatorDedupAcrossNodes(t *testing.T) {
	a := newAggregator(1, 9, 100*sim.Second)
	a.absorb([]query.Match{{StreamID: "s", Seq: 1, Node: 10}})
	a.absorb([]query.Match{{StreamID: "s", Seq: 1, Node: 11}}) // replica reported by another node
	a.absorb([]query.Match{{StreamID: "s", Seq: 2, Node: 11}})
	got := a.takePending()
	if len(got) != 2 {
		t.Fatalf("aggregated = %d, want 2 (replica dedup)", len(got))
	}
}

func TestMatchMBR(t *testing.T) {
	b := mbrAt("s", 0, summary.Feature{0.2, 0}, summary.Feature{0.3, 0.1}, 0)
	if _, ok := MatchMBR(b, summary.Feature{0.25, 0.05}, 0.01); !ok {
		t.Fatal("inside point did not match")
	}
	if _, ok := MatchMBR(b, summary.Feature{0.9, 0.9}, 0.1); ok {
		t.Fatal("far point matched")
	}
	d, ok := MatchMBR(b, summary.Feature{0.4, 0.05}, 0.1+1e-9)
	if !ok || math.Abs(d-0.1) > 1e-9 {
		t.Fatalf("boundary match d=%v ok=%v", d, ok)
	}
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []func(c *Config){
		func(c *Config) { c.Space.M = 0 },
		func(c *Config) { c.WindowSize = 1 },
		func(c *Config) { c.Coeffs = 0 },
		func(c *Config) { c.Coeffs = c.WindowSize },
		func(c *Config) { c.FeatureDims = 0 },
		func(c *Config) { c.FeatureDims = 99 },
		func(c *Config) { c.Beta = 0 },
		func(c *Config) { c.MBRLifespan = 0 },
		func(c *Config) { c.PushPeriod = 0 },
	}
	for i, mut := range bad {
		c := DefaultConfig()
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestConfigFeatureDimsZNormBudget(t *testing.T) {
	// With ZNorm and 3 coefficients, the DC term is dropped: 4 usable
	// coordinates remain.
	c := DefaultConfig()
	c.FeatureDims = 4
	if err := c.Validate(); err != nil {
		t.Fatalf("4 dims should fit: %v", err)
	}
	c.FeatureDims = 5
	if err := c.Validate(); err == nil {
		t.Fatal("5 dims should not fit 2 non-DC coefficients")
	}
}
