package metrics

// Ring counts one node's control-plane maintenance activity. The routing
// machines (internal/chord/protocol, internal/koorde) increment these as
// they run; they quantify how hard the overlay is working to stay
// converged — near-zero misses/rotations on a quiet ring, bursts under
// churn — and surface through the adidas-node query API (RINGSTATS) for
// live clusters.
type Ring struct {
	// Machine names the routing substrate the counters belong to
	// ("chord", "koorde"), so a RINGSTATS reader knows which machine
	// family's semantics apply (FingerRepairs counts de Bruijn pointer
	// repairs on Koorde).
	Machine string
	// StabilizeRounds is the number of stabilize ticks executed.
	StabilizeRounds uint64
	// StabilizeMisses counts rounds in which the successor did not answer
	// the previous round's probe.
	StabilizeMisses uint64
	// SuccRotations counts successor-list head rotations after
	// MissThreshold consecutive misses (a presumed-dead successor).
	SuccRotations uint64
	// PredDrops counts predecessor pointers cleared after MissThreshold
	// consecutive unanswered pings.
	PredDrops uint64
	// FingerRepairs counts finger-table entries whose value changed (or
	// were first populated) by the fix-fingers task.
	FingerRepairs uint64
	// StaleFindResps counts FindResp messages whose lookup token was no
	// longer pending — expired, superseded by a retry, or duplicated —
	// and which were therefore discarded instead of installed.
	StaleFindResps uint64
	// FindDrops counts FindReq messages rejected for an exhausted TTL or
	// for lack of a usable next hop.
	FindDrops uint64
}
