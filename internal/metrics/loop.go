package metrics

import "streamdex/internal/clock"

// Loop is a snapshot of a live node's run-loop task-queue health: how many
// tasks were posted, how deep the queue is now and at its worst, and how
// often (and for how long) Post callers were parked on a full queue. It is
// the control-plane saturation signal: a rising HighWater or nonzero
// BlockedNs means decoded frames and timer callbacks are arriving faster
// than the single protocol goroutine can retire them, which is exactly the
// pressure the data-plane worker pool exists to take off the loop.
//
// Loop is an alias for clock.LoopStats (the clock package owns the run loop
// and therefore the counters; metrics re-exports the type so observability
// consumers — STATS output, dashboards — need only this package).
type Loop = clock.LoopStats
