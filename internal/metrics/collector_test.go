package metrics

import (
	"math"
	"testing"

	"streamdex/internal/dht"
	"streamdex/internal/sim"
)

// kindClassifier treats msg.Kind as the Category directly and Dir != 0 as
// "internal" for hop classification — a minimal stand-in for the
// middleware's classifier.
type kindClassifier struct{}

func (kindClassifier) Classify(from dht.Key, msg *dht.Message) Category {
	return Category(msg.Kind)
}

func (kindClassifier) ClassifyHops(msg *dht.Message) HopClass {
	if msg.Dir != 0 {
		return HopQueryInternal
	}
	return HopQuery
}

func TestCollectorLoadAccounting(t *testing.T) {
	c := NewCollector(kindClassifier{})
	c.Reset(0)
	msg := &dht.Message{Kind: dht.Kind(MBRSource)}
	// Two transmissions: 1 -> 2 -> 3.
	c.OnTransmit(1, 2, msg)
	c.OnTransmit(2, 3, msg)
	rep := c.Snapshot(10*sim.Second, []dht.Key{1, 2, 3})
	// Node 1 sent 1, node 2 sent 1 + received 1, node 3 received 1:
	// total 4 message endpoints over 3 nodes over 10 s.
	wantAvg := 4.0 / 10.0 / 3.0
	if math.Abs(rep.LoadByCategory[MBRSource]-wantAvg) > 1e-12 {
		t.Fatalf("avg load = %v, want %v", rep.LoadByCategory[MBRSource], wantAvg)
	}
	if math.Abs(rep.NodeLoad[2]-0.2) > 1e-12 {
		t.Fatalf("node 2 load = %v, want 0.2", rep.NodeLoad[2])
	}
	if rep.TotalByCategory[MBRSource] != 2 {
		t.Fatalf("raw transmissions = %d, want 2", rep.TotalByCategory[MBRSource])
	}
}

func TestCollectorHopStats(t *testing.T) {
	c := NewCollector(kindClassifier{})
	c.Reset(0)
	c.OnDeliver(1, &dht.Message{Hops: 3})
	c.OnDeliver(1, &dht.Message{Hops: 5})
	c.OnDeliver(1, &dht.Message{Hops: 7, Dir: 1})
	rep := c.Snapshot(sim.Second, []dht.Key{1})
	if rep.HopMean[HopQuery] != 4 {
		t.Fatalf("mean hops = %v, want 4", rep.HopMean[HopQuery])
	}
	if rep.HopMax[HopQuery] != 5 || rep.HopCount[HopQuery] != 2 {
		t.Fatalf("max/count = %d/%d", rep.HopMax[HopQuery], rep.HopCount[HopQuery])
	}
	if rep.HopMean[HopQueryInternal] != 7 {
		t.Fatalf("internal mean = %v", rep.HopMean[HopQueryInternal])
	}
}

func TestCollectorEventsAndOverhead(t *testing.T) {
	c := NewCollector(kindClassifier{})
	c.Reset(0)
	for i := 0; i < 4; i++ {
		c.CountEvent(EventMBR)
	}
	msg := &dht.Message{Kind: dht.Kind(MBRTransit)}
	for i := 0; i < 10; i++ {
		c.OnTransmit(1, 2, msg)
	}
	rep := c.Snapshot(sim.Second, []dht.Key{1, 2})
	if got := rep.Overhead(MBRTransit, EventMBR); got != 2.5 {
		t.Fatalf("overhead = %v, want 2.5", got)
	}
	if got := rep.Overhead(MBRTransit, EventQuery); got != 0 {
		t.Fatalf("overhead with zero events = %v, want 0", got)
	}
	if c.Events(EventMBR) != 4 {
		t.Fatalf("Events = %d", c.Events(EventMBR))
	}
}

func TestCollectorReset(t *testing.T) {
	c := NewCollector(kindClassifier{})
	c.Reset(0)
	c.OnTransmit(1, 2, &dht.Message{})
	c.CountEvent(EventQuery)
	c.OnDeliver(2, &dht.Message{Hops: 9})
	c.Reset(5 * sim.Second)
	rep := c.Snapshot(15*sim.Second, []dht.Key{1, 2})
	if rep.TotalLoad != 0 || rep.Events[EventQuery] != 0 || rep.HopCount[HopQuery] != 0 {
		t.Fatal("Reset did not clear counters")
	}
	if rep.Duration != 10*sim.Second {
		t.Fatalf("duration = %v, want 10s", rep.Duration)
	}
}

func TestLoadDistribution(t *testing.T) {
	r := &Report{NodeLoad: map[dht.Key]float64{
		1: 1, 2: 2, 3: 3, 4: 4, 5: 10,
	}}
	bounds, counts := r.LoadDistribution(5)
	if len(bounds) != 5 || len(counts) != 5 {
		t.Fatal("wrong bucket count")
	}
	if bounds[4] != 10 {
		t.Fatalf("top bound = %v, want 10", bounds[4])
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != 5 {
		t.Fatalf("histogram holds %d nodes, want 5", total)
	}
	if counts[4] != 1 {
		t.Fatalf("top bucket = %d, want 1 (the outlier)", counts[4])
	}
}

func TestLoadDistributionAllZero(t *testing.T) {
	r := &Report{NodeLoad: map[dht.Key]float64{1: 0, 2: 0}}
	_, counts := r.LoadDistribution(4)
	if counts[0] != 2 {
		t.Fatalf("zero loads should fall into the first bucket: %v", counts)
	}
}

func TestLoadQuantilesAndMax(t *testing.T) {
	r := &Report{NodeLoad: map[dht.Key]float64{}}
	for i := 1; i <= 100; i++ {
		r.NodeLoad[dht.Key(i)] = float64(i)
	}
	qs := r.LoadQuantiles(0, 0.5, 1)
	if qs[0] != 1 || qs[2] != 100 {
		t.Fatalf("quantiles = %v", qs)
	}
	if qs[1] < 45 || qs[1] > 55 {
		t.Fatalf("median = %v", qs[1])
	}
	id, l := r.MaxLoadNode()
	if id != 100 || l != 100 {
		t.Fatalf("max = (%d,%v)", id, l)
	}
}

func TestEmptySnapshot(t *testing.T) {
	c := NewCollector(kindClassifier{})
	c.Reset(0)
	rep := c.Snapshot(0, nil)
	if rep.TotalLoad != 0 || rep.Nodes != 0 {
		t.Fatal("empty snapshot not zero")
	}
}

func TestCategoryStrings(t *testing.T) {
	for c := Category(0); c < NumCategories; c++ {
		if c.String() == "" {
			t.Fatalf("category %d has empty name", c)
		}
	}
	for h := HopClass(0); h < NumHopClasses; h++ {
		if h.String() == "" {
			t.Fatalf("hop class %d has empty name", h)
		}
	}
	for e := EventType(0); e < NumEventTypes; e++ {
		if e.String() == "" {
			t.Fatalf("event type %d has empty name", e)
		}
	}
}

func TestCollectorByteAccounting(t *testing.T) {
	c := NewCollector(kindClassifier{})
	c.Reset(0)
	msg := &dht.Message{Kind: dht.Kind(MBRSource), Bytes: 100}
	c.OnTransmit(1, 2, msg)
	c.OnTransmit(2, 3, msg)
	unsized := &dht.Message{Kind: dht.Kind(MBRSource)}
	c.OnTransmit(1, 3, unsized)
	rep := c.Snapshot(10*sim.Second, []dht.Key{1, 2, 3})
	if rep.BytesByCategory[MBRSource] != 200 {
		t.Fatalf("BytesByCategory = %d, want 200", rep.BytesByCategory[MBRSource])
	}
	// 2 transmissions x 100 B, each counted at both endpoints -> 400 B
	// total over 3 nodes over 10 s.
	want := 400.0 / 10 / 3
	if math.Abs(rep.BandwidthPerNode-want) > 1e-9 {
		t.Fatalf("BandwidthPerNode = %v, want %v", rep.BandwidthPerNode, want)
	}
}

// noNaN fails the test if v is NaN or infinite.
func noNaN(t *testing.T, name string, v float64) {
	t.Helper()
	if math.IsNaN(v) || math.IsInf(v, 0) {
		t.Fatalf("%s = %v, want a finite number", name, v)
	}
}

func TestSnapshotZeroIntervalIsAllZeros(t *testing.T) {
	c := NewCollector(kindClassifier{})
	c.Reset(5 * sim.Second)
	msg := &dht.Message{Kind: dht.Kind(MBRSource), Bytes: 64}
	c.OnTransmit(1, 2, msg)
	nodes := []dht.Key{1, 2, 3}

	// Zero-length and backwards measurement intervals: every rate must
	// come back zero, never NaN/Inf, and NodeLoad must still carry one
	// entry per node.
	for _, now := range []sim.Time{5 * sim.Second, 4 * sim.Second} {
		rep := c.Snapshot(now, nodes)
		noNaN(t, "TotalLoad", rep.TotalLoad)
		noNaN(t, "BandwidthPerNode", rep.BandwidthPerNode)
		if rep.TotalLoad != 0 || rep.BandwidthPerNode != 0 {
			t.Fatalf("zero-interval snapshot has non-zero rates: %v, %v", rep.TotalLoad, rep.BandwidthPerNode)
		}
		if len(rep.NodeLoad) != len(nodes) {
			t.Fatalf("NodeLoad has %d entries, want %d", len(rep.NodeLoad), len(nodes))
		}
		for id, l := range rep.NodeLoad {
			noNaN(t, "NodeLoad", l)
			if l != 0 {
				t.Fatalf("node %d load = %v, want 0", id, l)
			}
		}
		// Raw counters are interval-independent and must survive the guard.
		if rep.TotalByCategory[MBRSource] != 1 || rep.BytesByCategory[MBRSource] != 64 {
			t.Fatalf("raw counters lost in degenerate snapshot: %+v", rep.TotalByCategory)
		}
	}
}

func TestSnapshotNoNodesIsAllZeros(t *testing.T) {
	c := NewCollector(kindClassifier{})
	c.Reset(0)
	rep := c.Snapshot(10*sim.Second, nil)
	noNaN(t, "TotalLoad", rep.TotalLoad)
	noNaN(t, "BandwidthPerNode", rep.BandwidthPerNode)
	if len(rep.NodeLoad) != 0 {
		t.Fatalf("NodeLoad has %d entries for an empty node set", len(rep.NodeLoad))
	}
	qs := rep.LoadQuantiles(0, 0.5, 1)
	for i, q := range qs {
		noNaN(t, "LoadQuantiles", q)
		if q != 0 {
			t.Fatalf("quantile %d = %v on an empty report, want 0", i, q)
		}
	}
}

func TestLoadQuantilesEmptyReport(t *testing.T) {
	r := &Report{NodeLoad: map[dht.Key]float64{}}
	got := r.LoadQuantiles(0, 0.25, 0.5, 0.99, 1)
	if len(got) != 5 {
		t.Fatalf("got %d quantiles, want 5", len(got))
	}
	for i, q := range got {
		noNaN(t, "LoadQuantiles", q)
		if q != 0 {
			t.Fatalf("quantile %d = %v on an empty NodeLoad, want 0", i, q)
		}
	}
}

func TestGini(t *testing.T) {
	cases := []struct {
		name  string
		loads []float64
		want  float64
	}{
		{"empty", nil, 0},
		{"single", []float64{5}, 0},
		{"all equal", []float64{3, 3, 3, 3}, 0},
		{"all zero", []float64{0, 0, 0}, 0},
		{"one hot", []float64{0, 0, 0, 1}, 0.75}, // (n-1)/n
		{"linear ramp", []float64{1, 2, 3, 4}, 0.25},
		{"order independent", []float64{4, 1, 3, 2}, 0.25},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := Gini(tc.loads)
			if math.Abs(got-tc.want) > 1e-12 {
				t.Fatalf("Gini(%v) = %v, want %v", tc.loads, got, tc.want)
			}
		})
	}
}

func TestGiniDoesNotMutateInput(t *testing.T) {
	loads := []float64{4, 1, 3, 2}
	Gini(loads)
	want := []float64{4, 1, 3, 2}
	for i := range loads {
		if loads[i] != want[i] {
			t.Fatalf("input mutated: %v", loads)
		}
	}
}
