// Package metrics implements the message accounting of the paper's
// evaluation (§V): per-node send/receive counters broken into the exact
// traffic components of Figures 6(a) and 7, per-node load distributions
// (Fig. 6(b)), hop statistics per message class (Fig. 8), and input-event
// counters used to normalize message overhead per event.
package metrics

import "fmt"

// Category is the fine-grained traffic class of one network transmission.
// The categories mirror the legends of the paper's figures:
//
//	Fig. 6(a) load components        Fig. 7 overhead components
//	a) MBRSource                     MBRRange      (per MBR event)
//	b) MBRRange                      MBRTransit    (per MBR event)
//	c) MBRTransit                    QueryRange    (per query event)
//	d) QueryInitial+QueryRange+      QueryTransit  (per query event)
//	   QueryTransit ("all query")    NeighborNotify(per response event)
//	e) ResponseClient                ResponseTransit(per response event)
//	f) NeighborNotify
//	g) ResponseTransit
type Category int

// Traffic categories.
const (
	// MBRSource: the first transmission of an MBR update by the stream's
	// own data center.
	MBRSource Category = iota
	// MBRRange: continuation legs replicating an MBR over the nodes of
	// its key range (§IV-G).
	MBRRange
	// MBRTransit: MBR messages forwarded by intermediate nodes on the
	// overlay route from the source to the storing node.
	MBRTransit
	// QueryInitial: the first transmission of a similarity query by the
	// posing node.
	QueryInitial
	// QueryRange: continuation legs replicating a query over the nodes
	// covered by its radius (§IV-E).
	QueryRange
	// QueryTransit: query messages forwarded by intermediate nodes.
	QueryTransit
	// ResponseClient: response messages originated by the aggregating
	// (middle) node toward the client.
	ResponseClient
	// ResponseTransit: response messages forwarded by intermediate nodes.
	ResponseTransit
	// NeighborNotify: periodic information exchange about detected
	// similarities between neighbor nodes in a query range (§IV-F).
	NeighborNotify
	// Location: location-service traffic for inner-product queries
	// (put/get/reply, §IV-D).
	Location
	// InnerProduct: inner-product subscriptions and periodic result
	// pushes.
	InnerProduct
	// Sketch: windowed-sketch publications, aggregate-query registrations
	// and periodic sketch reports of the continuous-query engine.
	Sketch
	// Subscription: standing pub/sub predicate registrations and match
	// pushes.
	Subscription
	// TopKFreq: top-k monitor registrations and frequency-table reports.
	TopKFreq
	// Replica: MBR replica-publish messages walked along the covering
	// range's successor tail and their soft-state republications.
	Replica
	// LoadReport: per-node load reports gossiped to ring predecessors for
	// the replica-aware read balancer.
	LoadReport
	// Other: anything unclassified.
	Other

	// NumCategories is the number of traffic categories.
	NumCategories
)

// String implements fmt.Stringer.
func (c Category) String() string {
	switch c {
	case MBRSource:
		return "mbr-source"
	case MBRRange:
		return "mbr-range"
	case MBRTransit:
		return "mbr-transit"
	case QueryInitial:
		return "query"
	case QueryRange:
		return "query-range"
	case QueryTransit:
		return "query-transit"
	case ResponseClient:
		return "response"
	case ResponseTransit:
		return "response-transit"
	case NeighborNotify:
		return "neighbor-notify"
	case Location:
		return "location"
	case InnerProduct:
		return "inner-product"
	case Sketch:
		return "sketch"
	case Subscription:
		return "subscription"
	case TopKFreq:
		return "top-k"
	case Replica:
		return "replica"
	case LoadReport:
		return "load-report"
	case Other:
		return "other"
	default:
		return fmt.Sprintf("category(%d)", int(c))
	}
}

// HopClass groups delivered messages for the hop-count analysis of Fig. 8.
type HopClass int

// Hop classes, matching the figure's legend.
const (
	HopMBR           HopClass = iota // MBR routed from source to the first range node
	HopMBRInternal                   // MBR continuation legs within the range
	HopQuery                         // query routed from client to the range
	HopQueryInternal                 // query continuation legs within the range
	HopResponse                      // responses routed back to the client
	HopOther

	NumHopClasses
)

// String implements fmt.Stringer.
func (h HopClass) String() string {
	switch h {
	case HopMBR:
		return "mbr"
	case HopMBRInternal:
		return "mbr-internal"
	case HopQuery:
		return "query"
	case HopQueryInternal:
		return "query-internal"
	case HopResponse:
		return "response"
	case HopOther:
		return "other"
	default:
		return fmt.Sprintf("hopclass(%d)", int(h))
	}
}

// EventType identifies input events the system handles; Fig. 7 reports the
// number of extra messages the system sends per event of each type.
type EventType int

// Input event types.
const (
	EventMBR      EventType = iota // a new MBR produced by a stream source
	EventQuery                     // a new client query posted
	EventResponse                  // a periodic response pushed to a client

	NumEventTypes
)

// String implements fmt.Stringer.
func (e EventType) String() string {
	switch e {
	case EventMBR:
		return "mbr"
	case EventQuery:
		return "query"
	case EventResponse:
		return "response"
	default:
		return fmt.Sprintf("event(%d)", int(e))
	}
}
