package metrics

// DataPlane is a point-in-time snapshot of the live node's read-path
// counters: the MBR store's epoch-published snapshots, the decode arenas
// feeding zero-copy unmarshalling, and the optional UDP datagram plane.
// The collector cannot gather these itself — they live in layers above it
// (core's store, the transport's arenas and sockets) — so the node
// assembles one from its components and hands it to whoever reports
// (the STATS command, benchmarks, tests). All fields are cumulative since
// node start; subtract two snapshots for an interval.
type DataPlane struct {
	// Store snapshot lifecycle: published epochs, entries copied by
	// copy-on-write tail appends, and sorted-base merges.
	StoreEpochs    int64
	StoreCowCopied int64
	StoreMerges    int64

	// Decode arenas: chunk carve requests, chunk refills (each refill is
	// one real heap allocation amortized over a chunk of carves), and
	// stream-id intern table hits/misses.
	ArenaCarves       int64
	ArenaRefills      int64
	ArenaInternHits   int64
	ArenaInternMisses int64

	// UDP datagram plane (zero when running TCP-only).
	UDPSent     int64
	UDPRecv     int64
	UDPFallback int64

	// AdmitShed counts data-plane ingest messages dropped by the
	// admission-control token bucket (zero when admission is off). Sheds
	// degrade soft-state freshness, not correctness: the next republish
	// cycle repairs the gap.
	AdmitShed int64
}

// ArenaHitRate is the fraction of arena carves served from an existing
// chunk without touching the heap — the pool hit rate. 1.0 with no
// traffic (nothing missed), approaches 1 as chunks amortize.
func (d DataPlane) ArenaHitRate() float64 {
	if d.ArenaCarves == 0 {
		return 1
	}
	return 1 - float64(d.ArenaRefills)/float64(d.ArenaCarves)
}

// Sub returns the counter deltas d - prev, for turning two cumulative
// snapshots into an interval measurement.
func (d DataPlane) Sub(prev DataPlane) DataPlane {
	return DataPlane{
		StoreEpochs:       d.StoreEpochs - prev.StoreEpochs,
		StoreCowCopied:    d.StoreCowCopied - prev.StoreCowCopied,
		StoreMerges:       d.StoreMerges - prev.StoreMerges,
		ArenaCarves:       d.ArenaCarves - prev.ArenaCarves,
		ArenaRefills:      d.ArenaRefills - prev.ArenaRefills,
		ArenaInternHits:   d.ArenaInternHits - prev.ArenaInternHits,
		ArenaInternMisses: d.ArenaInternMisses - prev.ArenaInternMisses,
		UDPSent:           d.UDPSent - prev.UDPSent,
		UDPRecv:           d.UDPRecv - prev.UDPRecv,
		UDPFallback:       d.UDPFallback - prev.UDPFallback,
		AdmitShed:         d.AdmitShed - prev.AdmitShed,
	}
}
