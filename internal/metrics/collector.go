package metrics

import (
	"sort"
	"sync/atomic"

	"streamdex/internal/dht"
	"streamdex/internal/sim"
)

// Classifier maps one network transmission or delivery to a traffic
// category and hop class. The middleware supplies it (it owns the message
// kinds); the collector stays independent of the application protocol.
type Classifier interface {
	// Classify categorizes a transmission leaving node from.
	Classify(from dht.Key, msg *dht.Message) Category
	// ClassifyHops assigns the hop class of a delivered message.
	ClassifyHops(msg *dht.Message) HopClass
}

// Collector implements dht.Observer and accumulates all evaluation
// statistics. It is reset after warm-up so measurements cover a steady
// -state interval only, as in the paper's methodology.
type Collector struct {
	classify Classifier

	start sim.Time

	send map[dht.Key]*[NumCategories]int64
	recv map[dht.Key]*[NumCategories]int64

	totalByCat [NumCategories]int64
	// bytesByCat accumulates wire bytes per category (one count per
	// transmission, using the message's stamped size).
	bytesByCat [NumCategories]int64
	nodeBytes  map[dht.Key]int64

	hopSum   [NumHopClasses]int64
	hopCount [NumHopClasses]int64
	hopMax   [NumHopClasses]int

	// events is atomic: on the live node, CountEvent is called from
	// data-plane workers concurrently with the run loop. Everything else in
	// the collector is serialized by its caller (the simulator's event loop,
	// or the transport's locked observer wrapper).
	events [NumEventTypes]atomic.Int64
}

// NewCollector creates a collector with the given classifier.
func NewCollector(c Classifier) *Collector {
	col := &Collector{classify: c}
	col.resetMaps()
	return col
}

func (c *Collector) resetMaps() {
	c.send = make(map[dht.Key]*[NumCategories]int64)
	c.recv = make(map[dht.Key]*[NumCategories]int64)
	c.nodeBytes = make(map[dht.Key]int64)
}

// Reset clears all counters and marks the start of the measurement
// interval.
func (c *Collector) Reset(now sim.Time) {
	c.start = now
	c.resetMaps()
	c.totalByCat = [NumCategories]int64{}
	c.bytesByCat = [NumCategories]int64{}
	c.hopSum = [NumHopClasses]int64{}
	c.hopCount = [NumHopClasses]int64{}
	c.hopMax = [NumHopClasses]int{}
	for i := range c.events {
		c.events[i].Store(0)
	}
}

func counters(m map[dht.Key]*[NumCategories]int64, id dht.Key) *[NumCategories]int64 {
	if v, ok := m[id]; ok {
		return v
	}
	v := new([NumCategories]int64)
	m[id] = v
	return v
}

// OnTransmit implements dht.Observer: one network traversal counts as a
// send at the sender and a receive at the receiver ("the average number of
// messages that an individual node sends or receives per second").
func (c *Collector) OnTransmit(from, to dht.Key, msg *dht.Message) {
	cat := c.classify.Classify(from, msg)
	counters(c.send, from)[cat]++
	counters(c.recv, to)[cat]++
	c.totalByCat[cat]++
	if msg.Bytes > 0 {
		c.bytesByCat[cat] += int64(msg.Bytes)
		c.nodeBytes[from] += int64(msg.Bytes)
		c.nodeBytes[to] += int64(msg.Bytes)
	}
}

// OnDeliver implements dht.Observer: records the cumulative hop count of
// the delivered message under its hop class.
func (c *Collector) OnDeliver(at dht.Key, msg *dht.Message) {
	h := c.classify.ClassifyHops(msg)
	c.hopSum[h] += int64(msg.Hops)
	c.hopCount[h]++
	if msg.Hops > c.hopMax[h] {
		c.hopMax[h] = msg.Hops
	}
}

// CountEvent records one application input event (new MBR, new query, or a
// response push). Safe from any goroutine.
func (c *Collector) CountEvent(e EventType) { c.events[e].Add(1) }

// Events returns the number of recorded events of the given type.
func (c *Collector) Events(e EventType) int64 { return c.events[e].Load() }

// Report is an immutable snapshot of the collected statistics.
type Report struct {
	// Duration is the measurement interval length.
	Duration sim.Time
	// Nodes is the node population the averages are taken over.
	Nodes int

	// LoadByCategory is the average per-node, per-second rate of messages
	// sent or received, by category (Fig. 6(a)).
	LoadByCategory [NumCategories]float64
	// TotalLoad is the sum over categories.
	TotalLoad float64
	// NodeLoad is each node's total (send+recv) message rate per second
	// (Fig. 6(b)).
	NodeLoad map[dht.Key]float64

	// TotalByCategory is the raw number of transmissions per category.
	TotalByCategory [NumCategories]int64
	// BytesByCategory is the wire volume per category over the interval.
	BytesByCategory [NumCategories]int64
	// BandwidthPerNode is the average bytes per second each node sends
	// or receives.
	BandwidthPerNode float64

	// Events holds input-event counts by type.
	Events [NumEventTypes]int64

	// EngineEvents is the total number of simulator events executed to
	// produce this report (warm-up included). Filled by the workload
	// harness, not the collector; benchmark tooling divides it by wall
	// time to report simulated events per second.
	EngineEvents uint64

	// OverheadPerEvent is transmissions of a category divided by the
	// number of events of the associated type (Fig. 7), filled by
	// Overhead().
	// HopMean/HopMax summarize delivered-message hop counts per class
	// (Fig. 8).
	HopMean  [NumHopClasses]float64
	HopMax   [NumHopClasses]int
	HopCount [NumHopClasses]int64
}

// Snapshot builds a report for the interval [Reset, now] over the given
// node population. Nodes without traffic contribute zero load.
func (c *Collector) Snapshot(now sim.Time, nodes []dht.Key) *Report {
	dur := now - c.start
	r := &Report{
		Duration: dur,
		Nodes:    len(nodes),
		NodeLoad: make(map[dht.Key]float64, len(nodes)),
	}
	for i := range c.events {
		r.Events[i] = c.events[i].Load()
	}
	secs := dur.Seconds()
	if secs <= 0 || len(nodes) == 0 {
		// Degenerate snapshot: a zero-length (or backwards) measurement
		// interval, or no live nodes. Every rate is defined as zero —
		// never NaN or ±Inf from a division by zero — and NodeLoad still
		// carries one entry per requested node so lookups and quantiles
		// over the report behave uniformly.
		for _, id := range nodes {
			r.NodeLoad[id] = 0
		}
		r.TotalByCategory = c.totalByCat
		r.BytesByCategory = c.bytesByCat
		return r
	}
	var catTotals [NumCategories]int64
	for _, id := range nodes {
		var nodeTotal int64
		if s := c.send[id]; s != nil {
			for cat, v := range s {
				catTotals[cat] += v
				nodeTotal += v
			}
		}
		if rv := c.recv[id]; rv != nil {
			for cat, v := range rv {
				catTotals[cat] += v
				nodeTotal += v
			}
		}
		r.NodeLoad[id] = float64(nodeTotal) / secs
	}
	for cat := range catTotals {
		r.LoadByCategory[cat] = float64(catTotals[cat]) / secs / float64(len(nodes))
		r.TotalLoad += r.LoadByCategory[cat]
	}
	r.TotalByCategory = c.totalByCat
	r.BytesByCategory = c.bytesByCat
	var totalBytes int64
	for _, id := range nodes {
		totalBytes += c.nodeBytes[id]
	}
	r.BandwidthPerNode = float64(totalBytes) / secs / float64(len(nodes))
	for h := 0; h < int(NumHopClasses); h++ {
		if c.hopCount[h] > 0 {
			r.HopMean[h] = float64(c.hopSum[h]) / float64(c.hopCount[h])
		}
		r.HopMax[h] = c.hopMax[h]
		r.HopCount[h] = c.hopCount[h]
	}
	return r
}

// Overhead returns the number of transmissions in category cat per input
// event of type ev — the efficiency measure of Fig. 7. It returns 0 when
// no events of the type occurred.
func (r *Report) Overhead(cat Category, ev EventType) float64 {
	if r.Events[ev] == 0 {
		return 0
	}
	return float64(r.TotalByCategory[cat]) / float64(r.Events[ev])
}

// LoadDistribution bins the per-node loads into a histogram with the given
// number of equal-width buckets over [0, max load]; it returns the bucket
// upper bounds and counts (Fig. 6(b)).
func (r *Report) LoadDistribution(buckets int) (bounds []float64, counts []int) {
	if buckets <= 0 {
		panic("metrics: non-positive bucket count")
	}
	loads := make([]float64, 0, len(r.NodeLoad))
	var max float64
	for _, l := range r.NodeLoad {
		loads = append(loads, l)
		if l > max {
			max = l
		}
	}
	bounds = make([]float64, buckets)
	counts = make([]int, buckets)
	if max == 0 {
		for i := range bounds {
			bounds[i] = float64(i + 1)
		}
		counts[0] = len(loads)
		return bounds, counts
	}
	width := max / float64(buckets)
	for i := range bounds {
		bounds[i] = width * float64(i+1)
	}
	for _, l := range loads {
		idx := int(l / width)
		if idx >= buckets {
			idx = buckets - 1
		}
		counts[idx]++
	}
	return bounds, counts
}

// LoadQuantiles returns the q-quantiles (e.g. 0.5, 0.9, 0.99) of per-node
// load, used to check the distribution is not heavy-tailed.
func (r *Report) LoadQuantiles(qs ...float64) []float64 {
	loads := make([]float64, 0, len(r.NodeLoad))
	for _, l := range r.NodeLoad {
		loads = append(loads, l)
	}
	sort.Float64s(loads)
	out := make([]float64, len(qs))
	if len(loads) == 0 {
		return out
	}
	for i, q := range qs {
		if q < 0 || q > 1 {
			panic("metrics: quantile outside [0,1]")
		}
		idx := int(q * float64(len(loads)-1))
		out[i] = loads[idx]
	}
	return out
}

// MaxLoadNode returns the most loaded node and its rate.
func (r *Report) MaxLoadNode() (dht.Key, float64) {
	var bestID dht.Key
	best := -1.0
	for id, l := range r.NodeLoad {
		if l > best {
			best, bestID = l, id
		}
	}
	return bestID, best
}

// Gini returns the Gini coefficient of the load sample: 0 for a perfectly
// flat distribution, approaching 1 as the load concentrates on one node.
// The load-skew experiment reports it alongside p99/mean as a single-number
// inequality summary. Empty or all-zero samples yield 0.
func Gini(loads []float64) float64 {
	n := len(loads)
	if n == 0 {
		return 0
	}
	sorted := make([]float64, n)
	copy(sorted, loads)
	sort.Float64s(sorted)
	var sum, weighted float64
	for i, l := range sorted {
		sum += l
		weighted += float64(i+1) * l
	}
	if sum == 0 {
		return 0
	}
	// G = (2*Σ i*x_i)/(n*Σ x_i) - (n+1)/n, with x ascending and i 1-based.
	return 2*weighted/(float64(n)*sum) - float64(n+1)/float64(n)
}
