package metrics

import "testing"

func TestDataPlaneArenaHitRate(t *testing.T) {
	cases := []struct {
		carves, refills int64
		want            float64
	}{
		{0, 0, 1},
		{100, 0, 1},
		{100, 1, 0.99},
		{100, 100, 0},
	}
	for _, tc := range cases {
		d := DataPlane{ArenaCarves: tc.carves, ArenaRefills: tc.refills}
		if got := d.ArenaHitRate(); got != tc.want {
			t.Errorf("hit rate with %d carves / %d refills = %v, want %v",
				tc.carves, tc.refills, got, tc.want)
		}
	}
}

func TestDataPlaneSub(t *testing.T) {
	now := DataPlane{
		StoreEpochs: 10, StoreCowCopied: 20, StoreMerges: 3,
		ArenaCarves: 100, ArenaRefills: 2, ArenaInternHits: 50, ArenaInternMisses: 5,
		UDPSent: 7, UDPRecv: 6, UDPFallback: 1, AdmitShed: 9,
	}
	prev := DataPlane{
		StoreEpochs: 4, StoreCowCopied: 8, StoreMerges: 1,
		ArenaCarves: 40, ArenaRefills: 1, ArenaInternHits: 20, ArenaInternMisses: 2,
		UDPSent: 3, UDPRecv: 2, UDPFallback: 0, AdmitShed: 4,
	}
	want := DataPlane{
		StoreEpochs: 6, StoreCowCopied: 12, StoreMerges: 2,
		ArenaCarves: 60, ArenaRefills: 1, ArenaInternHits: 30, ArenaInternMisses: 3,
		UDPSent: 4, UDPRecv: 4, UDPFallback: 1, AdmitShed: 5,
	}
	if got := now.Sub(prev); got != want {
		t.Fatalf("Sub = %+v, want %+v", got, want)
	}
}
