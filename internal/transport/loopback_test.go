package transport_test

import (
	"fmt"
	"sort"
	"testing"
	"time"

	"streamdex/internal/chord"
	"streamdex/internal/core"
	"streamdex/internal/dht"
	"streamdex/internal/query"
	"streamdex/internal/sim"
	"streamdex/internal/stream"
	"streamdex/internal/summary"
	"streamdex/internal/transport"
)

// The loopback integration test: boot a real cluster of TCP nodes on
// ephemeral 127.0.0.1 ports, run the full middleware on it (streams,
// MBR publication, a similarity query, the notify/response cycle), and
// check the client's matched-stream set against the simulator running the
// identical configuration.
//
// The workload is engineered so the matched set is a function of the data
// alone, never of timing: every stream is a noiseless sinusoid whose
// period divides the window size, so its feature vector rotates on a
// circle of constant norm as the window slides. "In-band" streams
// (period = window) put all their energy in DFT bin 1 — retained — giving
// a feature norm far above the query radius at every instant; "out-of-band"
// streams (period = window/4) put it in bin 4 — discarded — giving a
// feature that is identically zero. A query for the zero vector with an
// in-between radius therefore matches exactly the out-of-band streams, on
// the simulator and on the sockets alike, regardless of scheduling.

const (
	nNodes   = 5
	nStreams = 6
)

func clusterConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.WindowSize = 16
	cfg.Coeffs = 3
	cfg.FeatureDims = 4 // 2*(Coeffs-1) under ZNorm
	cfg.Beta = 2
	cfg.MBRLifespan = 60 * sim.Second
	cfg.PushPeriod = 250 * sim.Millisecond
	cfg.Seed = 7
	return cfg
}

// nodeIDs spreads the nodes evenly over the 32-bit ring.
func nodeIDs(space dht.Space) []dht.Key {
	ids := make([]dht.Key, nNodes)
	for i := range ids {
		ids[i] = space.Wrap(dht.Key(uint64(i)*space.Size()/nNodes + 12345))
	}
	return ids
}

// clusterStreams builds the test workload: stream i lives on node i%nNodes;
// odd streams are out-of-band (they must match), even ones in-band.
func clusterStreams() []stream.Stream {
	out := make([]stream.Stream, nStreams)
	for i := range out {
		period := 16.0 // in-band: all energy in retained bin 1
		if i%2 == 1 {
			period = 4.0 // out-of-band: all energy in discarded bin 4
		}
		out[i] = stream.Stream{
			ID:     fmt.Sprintf("s%d", i),
			Gen:    stream.NewSine(nil, 3, period, 10, 0),
			Period: 20 * sim.Millisecond,
		}
	}
	return out
}

func wantMatched() []string {
	var want []string
	for i := 0; i < nStreams; i++ {
		if i%2 == 1 {
			want = append(want, fmt.Sprintf("s%d", i))
		}
	}
	return want
}

// simMatchedStreams runs the workload on the simulator and returns the
// sorted matched-stream set of the query.
func simMatchedStreams(t *testing.T, cfg core.Config) []string {
	t.Helper()
	eng := sim.NewEngine()
	net := chord.New(eng, chord.Config{
		Space:       cfg.Space,
		HopDelay:    50 * sim.Millisecond,
		SuccListLen: 4,
	})
	ids := nodeIDs(cfg.Space)
	sorted := append([]dht.Key(nil), ids...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	net.BuildStable(sorted, nil)
	mw, err := core.New(net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, st := range clusterStreams() {
		if err := mw.DataCenter(ids[i%nNodes]).RegisterStream(st); err != nil {
			t.Fatal(err)
		}
	}
	// Let windows fill and MBRs publish, then query.
	eng.RunFor(2 * sim.Second)
	zero := make(summary.Feature, cfg.FeatureDims)
	qid, err := mw.PostSimilarity(ids[0], zero, 0.3, 60*sim.Second)
	if err != nil {
		t.Fatal(err)
	}
	eng.RunFor(10 * sim.Second)
	got := mw.MatchedStreams(qid)
	sort.Strings(got)
	return got
}

// liveCluster boots nNodes transport nodes, joins them into one ring and
// waits for convergence. Each node carries its own middleware.
func liveCluster(t *testing.T, cfg core.Config) ([]*transport.Node, []*core.Middleware) {
	t.Helper()
	ids := nodeIDs(cfg.Space)
	nodes := make([]*transport.Node, nNodes)
	for i, id := range ids {
		tc := transport.DefaultConfig(id, "127.0.0.1:0")
		tc.Space = cfg.Space
		tc.StabilizeEvery = 50_000 // 50 ms: converge fast in a test
		tc.FixFingersEvery = 50_000
		tc.SuccListLen = 4
		n, err := transport.New(tc)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(n.Close)
		nodes[i] = n
	}
	nodes[0].Create()
	for _, n := range nodes[1:] {
		if err := n.Join(nodes[0].Addr(), 10*time.Second); err != nil {
			t.Fatal(err)
		}
	}
	waitRingConverged(t, nodes, ids)

	mws := make([]*core.Middleware, nNodes)
	for i, n := range nodes {
		var err error
		n.Do(func() { mws[i], err = core.New(n, cfg) })
		if err != nil {
			t.Fatal(err)
		}
	}
	return nodes, mws
}

// waitRingConverged polls until every node's successor and predecessor
// match the ideal ring over ids. Takes testing.TB so the loopback
// throughput benchmark shares it.
func waitRingConverged(t testing.TB, nodes []*transport.Node, ids []dht.Key) {
	t.Helper()
	sorted := append([]dht.Key(nil), ids...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	pos := make(map[dht.Key]int, len(sorted))
	for i, id := range sorted {
		pos[id] = i
	}
	deadline := time.Now().Add(15 * time.Second)
	for {
		converged := true
		for _, n := range nodes {
			info := n.Ring()
			i := pos[info.Self.ID]
			wantSucc := sorted[(i+1)%len(sorted)]
			wantPred := sorted[(i+len(sorted)-1)%len(sorted)]
			if len(info.SuccList) == 0 || info.SuccList[0].ID != wantSucc ||
				info.Pred == nil || info.Pred.ID != wantPred {
				converged = false
				break
			}
		}
		if converged {
			return
		}
		if time.Now().After(deadline) {
			for _, n := range nodes {
				t.Logf("ring state: %+v", n.Ring())
			}
			t.Fatal("ring did not converge within 15s")
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestLoopbackClusterMatchesSimulator(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second wall-clock integration test")
	}
	cfg := clusterConfig()

	simSet := simMatchedStreams(t, cfg)
	want := wantMatched()
	if fmt.Sprint(simSet) != fmt.Sprint(want) {
		t.Fatalf("simulator matched %v, want %v (workload invariant broken)", simSet, want)
	}

	nodes, mws := liveCluster(t, cfg)
	ids := nodeIDs(cfg.Space)

	// Register the same streams on the same nodes.
	for i, st := range clusterStreams() {
		idx := i % nNodes
		var err error
		nodes[idx].Do(func() {
			err = mws[idx].DataCenter(ids[idx]).RegisterStream(st)
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	// Windows fill in WindowSize*Period = 320 ms; leave margin.
	time.Sleep(1 * time.Second)

	// Post the same query at the same origin node.
	var qid query.ID
	var qerr error
	zero := make(summary.Feature, cfg.FeatureDims)
	nodes[0].Do(func() {
		qid, qerr = mws[0].PostSimilarity(ids[0], zero, 0.3, 60*sim.Second)
	})
	if qerr != nil {
		t.Fatal(qerr)
	}

	// Matches relay one ring hop per push period toward the middle node,
	// then flow back to the client; poll until the live set equals the
	// simulator's or time runs out.
	deadline := time.Now().Add(20 * time.Second)
	var got []string
	for {
		nodes[0].Do(func() { got = mws[0].MatchedStreams(qid) })
		sort.Strings(got)
		if fmt.Sprint(got) == fmt.Sprint(simSet) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("live cluster matched %v, simulator matched %v", got, simSet)
		}
		time.Sleep(100 * time.Millisecond)
	}

	// The client must also have received periodic responses (the paper's
	// continuous-query contract), not a single burst.
	var responses int
	nodes[0].Do(func() { responses = mws[0].ResponseCount(qid) })
	if responses == 0 {
		t.Error("client saw matches but no periodic responses were counted")
	}

	// No node should have dropped data-plane traffic in a healthy run.
	for i, n := range nodes {
		if d := n.Dropped(); d > 0 {
			t.Logf("node %d dropped %d frames (non-fatal: early-route races)", i, d)
		}
	}
}

// TestRingConvergence is the cheap smoke version: five nodes, no
// middleware, just ring formation.
func TestRingConvergence(t *testing.T) {
	space := dht.NewSpace(16)
	ids := []dht.Key{100, 9000, 21000, 40000, 61000}
	nodes := make([]*transport.Node, len(ids))
	for i, id := range ids {
		tc := transport.DefaultConfig(id, "127.0.0.1:0")
		tc.Space = space
		tc.StabilizeEvery = 30_000
		tc.FixFingersEvery = 30_000
		n, err := transport.New(tc)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(n.Close)
		nodes[i] = n
	}
	nodes[0].Create()
	for _, n := range nodes[1:] {
		if err := n.Join(nodes[0].Addr(), 10*time.Second); err != nil {
			t.Fatal(err)
		}
	}
	waitRingConverged(t, nodes, ids)
}
