// Package transport runs the middleware's content-based routing substrate
// on real TCP sockets: every node is one OS process with a listener, a set
// of outbound peer connections, and a wall-clock event loop. It implements
// the same dht.Substrate contract as the simulated Chord and Pastry
// overlays, so the entire middleware (package core) runs on it unchanged —
// the portability the paper claims for "virtually any existing
// content-based routing implementation", demonstrated live.
//
// Architecture:
//
//   - Message plane: length-prefixed frames (frame.go). Application and
//     ring-maintenance messages alike travel as wire.Marshal bodies —
//     fixed 45-byte envelope plus hand-packed payload (wire codec v2; gob
//     only for unregistered types). Frames are built in pooled buffers, so
//     the steady-state encode path is allocation-free.
//   - Connections: unidirectional. A node accepts inbound connections
//     read-only and dials outbound connections write-only (peer.go), with
//     bounded queues, write coalescing (one vectored write per burst) and
//     jittered exponential-backoff redial, so no connection-identity
//     handshake is needed.
//   - Concurrency: all protocol and application state is confined to the
//     node's clock.Wall loop. Reader goroutines only decode bytes and post
//     closures; writer goroutines only drain their queue. The middleware's
//     single-threaded simulation code therefore runs unmodified.
//   - Ring: successor/predecessor pointers and fingers are maintained by
//     the shared Chord protocol state machine (internal/chord/protocol) —
//     the same code the simulator runs — adapted to sockets in ring.go.
package transport

import (
	"fmt"
	"net"
	"sync/atomic"

	"streamdex/internal/chord/protocol"
	"streamdex/internal/clock"
	"streamdex/internal/dht"
	"streamdex/internal/sim"
	"streamdex/internal/wire"
)

// Ref identifies a remote node: its ring identifier and dial address. It
// is the protocol package's ref type — the transport routes control sends
// by Addr, the simulator by ID.
type Ref = protocol.Ref

// Config parameterizes one transport node.
type Config struct {
	// ID is the node's ring identifier (wrapped into Space).
	ID dht.Key
	// Listen is the TCP listen address, e.g. "127.0.0.1:0".
	Listen string
	// Space is the identifier universe; must match the middleware's.
	Space dht.Space
	// StabilizeEvery is the wall period (in sim.Time units, microseconds)
	// of the stabilize/notify/check-predecessor maintenance task.
	StabilizeEvery int64
	// FixFingersEvery is the period of finger repair (one entry per
	// firing); zero disables fingers (routing falls back to successors).
	FixFingersEvery int64
	// SuccListLen is the successor-list length (failure tolerance).
	SuccListLen int
	// QueueLen bounds each peer's outbound frame queue.
	QueueLen int
	// MaxHops drops routed messages that exceed it (routing-loop guard).
	MaxHops int
}

// DefaultConfig returns production-shaped defaults for the given identity.
func DefaultConfig(id dht.Key, listen string) Config {
	return Config{
		ID:              id,
		Listen:          listen,
		Space:           dht.NewSpace(32),
		StabilizeEvery:  500_000, // 500 ms
		FixFingersEvery: 250_000, // 250 ms
		SuccListLen:     8,
		QueueLen:        512,
		MaxHops:         255,
	}
}

// Node is one live overlay node. It implements dht.Substrate for the
// single identifier it hosts: NodeIDs() is [ID] — each process runs its
// own middleware instance, unlike the simulator where one Substrate value
// carries the whole overlay.
type Node struct {
	cfg   Config
	space dht.Space
	self  Ref

	clk *clock.Wall
	ln  net.Listener

	peers *peerSet

	// ring is the node's control-plane state machine — the same code the
	// simulator drives through its event engine. Loop-confined.
	ring *protocol.Machine

	// Application attachment — loop-confined.
	app dht.App
	obs dht.Observer

	dropped atomic.Int64
	closed  atomic.Bool
	accDone chan struct{}
}

// New creates a node, binds its listener and starts its event loop. The
// node is not yet part of any ring: call Create for the first node of a
// cluster or Join to enter through a bootstrap address.
func New(cfg Config) (*Node, error) {
	if cfg.Space.M == 0 {
		return nil, fmt.Errorf("transport: config without identifier space")
	}
	if cfg.SuccListLen <= 0 {
		cfg.SuccListLen = 8
	}
	if cfg.QueueLen <= 0 {
		cfg.QueueLen = 512
	}
	if cfg.MaxHops <= 0 {
		cfg.MaxHops = 255
	}
	if cfg.StabilizeEvery <= 0 {
		return nil, fmt.Errorf("transport: non-positive stabilize period")
	}
	ln, err := net.Listen("tcp", cfg.Listen)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", cfg.Listen, err)
	}
	n := &Node{
		cfg:     cfg,
		space:   cfg.Space,
		self:    Ref{ID: cfg.Space.Wrap(cfg.ID), Addr: ln.Addr().String()},
		clk:     clock.NewWall(),
		ln:      ln,
		app:     dht.AppFunc(func(dht.Key, *dht.Message) {}),
		obs:     dht.NopObserver{},
		accDone: make(chan struct{}),
	}
	n.peers = newPeerSet(cfg.QueueLen, func() { n.dropped.Add(1) })
	n.ring = protocol.New(protocol.Config{
		Space:           cfg.Space,
		SuccListLen:     cfg.SuccListLen,
		StabilizeEvery:  sim.Time(cfg.StabilizeEvery),
		FixFingersEvery: sim.Time(cfg.FixFingersEvery),
	}, n.self, n.clk, n.sendRing)
	go n.acceptLoop()
	return n, nil
}

// Self returns the node's identity and resolved listen address.
func (n *Node) Self() Ref { return n.self }

// Addr returns the resolved listen address (useful with ":0" listeners).
func (n *Node) Addr() string { return n.self.Addr }

// Do runs fn on the node's event loop and waits for it — the only safe way
// to touch the node's middleware from outside the loop.
func (n *Node) Do(fn func()) { n.clk.Do(fn) }

// Close shuts the node down: listener, maintenance, peers, loop.
func (n *Node) Close() {
	if !n.closed.CompareAndSwap(false, true) {
		return
	}
	n.ln.Close()
	<-n.accDone
	n.clk.Do(n.ring.Stop)
	n.peers.close()
	n.clk.Close()
}

// --- dht.Substrate ---

// Clock implements dht.Substrate.
func (n *Node) Clock() clock.Clock { return n.clk }

// Space implements dht.Network.
func (n *Node) Space() dht.Space { return n.space }

// SetApp implements dht.Substrate. Loop context required (call inside Do).
func (n *Node) SetApp(id dht.Key, app dht.App) {
	if id != n.self.ID || app == nil {
		return
	}
	n.app = app
}

// SetObserver implements dht.Substrate. Loop context required.
func (n *Node) SetObserver(o dht.Observer) {
	if o == nil {
		n.obs = dht.NopObserver{}
		return
	}
	n.obs = o
}

// NodeIDs implements dht.Substrate: the identifiers this process hosts.
func (n *Node) NodeIDs() []dht.Key { return []dht.Key{n.self.ID} }

// Alive implements dht.Substrate.
func (n *Node) Alive(id dht.Key) bool { return id == n.self.ID && !n.closed.Load() }

// Dropped implements dht.Substrate: frames lost to full queues, dead
// peers, missing neighbors or hop-limit violations.
func (n *Node) Dropped() int64 { return n.dropped.Load() }

// Send implements dht.Network: route msg toward the node covering key.
// Loop context required.
func (n *Node) Send(from dht.Key, key dht.Key, msg *dht.Message) {
	msg.Src = from
	msg.Key = n.space.Wrap(key)
	msg.Hops = 0
	msg.SentAt = n.clk.Now()
	n.route(msg)
}

// Forward implements dht.Network: continue routing an in-flight message,
// preserving hop count and origin. Loop context required.
func (n *Node) Forward(from dht.Key, key dht.Key, msg *dht.Message) {
	msg.Key = n.space.Wrap(key)
	n.route(msg)
}

// route executes one routing step at this node: deliver locally when the
// key is covered, otherwise transmit to the best next hop.
func (n *Node) route(msg *dht.Message) {
	if n.covers(msg.Key) {
		n.obs.OnDeliver(n.self.ID, msg)
		n.app.Deliver(n.self.ID, msg)
		return
	}
	if msg.Hops >= n.cfg.MaxHops {
		n.dropped.Add(1)
		return
	}
	next, ok := n.nextHop(msg.Key)
	if !ok || next.ID == n.self.ID {
		n.dropped.Add(1)
		return
	}
	n.transmitApp(next, msg, frameRouted)
}

// SendToSuccessor implements dht.Network: one hop clockwise. Loop context.
func (n *Node) SendToSuccessor(from dht.Key, msg *dht.Message) {
	succ, ok := n.successor()
	if !ok || succ.ID == n.self.ID {
		n.dropped.Add(1)
		return
	}
	n.transmitApp(succ, msg, frameDirect)
}

// SendToPredecessor implements dht.Network: one hop counter-clockwise.
func (n *Node) SendToPredecessor(from dht.Key, msg *dht.Message) {
	pred, ok := n.ring.Predecessor()
	if !ok || pred.ID == n.self.ID {
		n.dropped.Add(1)
		return
	}
	n.transmitApp(pred, msg, frameDirect)
}

// Covers implements dht.Network. Only answerable for the hosted node.
func (n *Node) Covers(id dht.Key, key dht.Key) bool {
	return id == n.self.ID && n.covers(n.space.Wrap(key))
}

// covers reports whether this node is the successor node of key: key in
// (pred, self]. With no predecessor yet the node conservatively covers
// only its own identifier, exactly like the simulated Chord node (both
// delegate to the shared machine).
func (n *Node) covers(key dht.Key) bool { return n.ring.Covers(key) }

// successor returns the head of the successor list.
func (n *Node) successor() (Ref, bool) { return n.ring.Successor() }

// nextHop picks the forwarding target for key: the successor when key lies
// in (self, succ], otherwise the closest preceding node known from fingers
// and the successor list.
func (n *Node) nextHop(key dht.Key) (Ref, bool) { return n.ring.NextHop(key) }

// transmitApp encodes msg straight into a pooled frame buffer and hands it
// to the peer writer, which recycles the buffer once the bytes are on the
// socket — the steady-state encode path performs no allocations. The hop
// counter is incremented before encoding so it travels with the frame,
// mirroring the simulator's transmit; the observer is charged the wire
// body length (envelope + payload), exactly what Sizeof charges the
// simulator for the same payload.
func (n *Node) transmitApp(to Ref, msg *dht.Message, typ byte) {
	msg.Hops++
	f := newFrame(typ)
	body, err := wire.AppendMarshal(f.b, msg)
	if err != nil {
		f.recycle()
		n.dropped.Add(1)
		return
	}
	f.b = body
	f.finish()
	msg.Bytes = len(f.b) - frameOverhead
	n.obs.OnTransmit(n.self.ID, to.ID, msg)
	n.peers.send(to.Addr, f)
}

// WriteStats reports cumulative data-plane writer activity: frames fully
// written to sockets and the vectored write calls (writev batches) that
// carried them. frames/flushes is the write-coalescing factor.
func (n *Node) WriteStats() (frames, flushes int64) {
	return n.peers.stats.frames.Load(), n.peers.stats.flushes.Load()
}

// --- inbound ---

func (n *Node) acceptLoop() {
	defer close(n.accDone)
	for {
		conn, err := n.ln.Accept()
		if err != nil {
			return // listener closed
		}
		go n.readLoop(conn)
	}
}

// readLoop decodes frames off one inbound connection and posts their
// handling to the event loop. Decoding happens off-loop (it builds fresh
// objects, no shared state); all interpretation happens on-loop. The
// reader reuses one buffered reader and one body buffer for the whole
// connection — decoders copy what they keep, so the buffer is free again
// by the next frame.
func (n *Node) readLoop(conn net.Conn) {
	defer conn.Close()
	fr := newFrameReader(conn)
	for {
		typ, body, err := fr.next()
		if err != nil {
			return
		}
		switch typ {
		case frameRouted, frameDirect:
			msg, err := wire.Unmarshal(body)
			if err != nil {
				n.dropped.Add(1)
				continue
			}
			direct := typ == frameDirect
			if !n.clk.Post(func() { n.onAppFrame(msg, direct) }) {
				n.dropped.Add(1)
			}
		case frameControl:
			msg, err := wire.Unmarshal(body)
			if err != nil || msg.Kind != protocol.KindRing {
				n.dropped.Add(1)
				continue
			}
			payload := msg.Payload
			if !n.clk.Post(func() { n.ring.Handle(payload) }) {
				n.dropped.Add(1)
			}
		default:
			// Unknown frame type: skip (forward compatibility).
		}
	}
}

// onAppFrame continues routing (routed frames) or delivers to the local
// application (direct neighbor frames). Runs on the loop.
func (n *Node) onAppFrame(msg *dht.Message, direct bool) {
	if direct {
		n.obs.OnDeliver(n.self.ID, msg)
		n.app.Deliver(n.self.ID, msg)
		return
	}
	n.route(msg)
}

// RingInfo is a snapshot of the node's ring pointers, for diagnostics and
// convergence checks.
type RingInfo struct {
	Self     Ref
	Pred     *Ref
	SuccList []Ref
	Fingers  int // populated finger entries
}

// Ring returns a consistent snapshot of the ring state.
func (n *Node) Ring() RingInfo {
	var info RingInfo
	n.clk.Do(func() {
		info.Self = n.self
		if p, ok := n.ring.Predecessor(); ok {
			info.Pred = &p
		}
		info.SuccList = n.ring.SuccessorList()
		info.Fingers = n.ring.FingerCount()
	})
	return info
}
