// Package transport runs the middleware's content-based routing substrate
// on real TCP sockets: every node is one OS process with a listener, a set
// of outbound peer connections, and a wall-clock event loop. It implements
// the same dht.Substrate contract as the simulated Chord and Pastry
// overlays, so the entire middleware (package core) runs on it unchanged —
// the portability the paper claims for "virtually any existing
// content-based routing implementation", demonstrated live.
//
// Architecture:
//
//   - Message plane: length-prefixed frames (frame.go). Application and
//     ring-maintenance messages alike travel as wire.Marshal bodies —
//     fixed 45-byte envelope plus hand-packed payload (wire codec v2; gob
//     only for unregistered types). Frames are built in pooled buffers, so
//     the steady-state encode path is allocation-free.
//   - Connections: unidirectional. A node accepts inbound connections
//     read-only and dials outbound connections write-only (peer.go), with
//     bounded queues, write coalescing (one vectored write per burst) and
//     jittered exponential-backoff redial, so no connection-identity
//     handshake is needed.
//   - Concurrency: all protocol and application state is confined to the
//     node's clock.Wall loop. Reader goroutines only decode bytes and post
//     closures; writer goroutines only drain their queue. The middleware's
//     single-threaded simulation code therefore runs unmodified.
//   - Ring: successor/predecessor pointers and fingers are maintained by
//     the shared Chord protocol state machine (internal/chord/protocol) —
//     the same code the simulator runs — adapted to sockets in ring.go.
package transport

import (
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"

	// Registers the default "chord" machine (and its wire codecs) with the
	// overlay registry.
	_ "streamdex/internal/chord/protocol"
	"streamdex/internal/clock"
	"streamdex/internal/dht"
	"streamdex/internal/overlay"
	"streamdex/internal/sim"
	"streamdex/internal/wire"
)

// Ref identifies a remote node: its ring identifier and dial address. It
// is the overlay package's ref type — the transport routes control sends
// by Addr, the simulator by ID.
type Ref = overlay.Ref

// Config parameterizes one transport node.
type Config struct {
	// ID is the node's ring identifier (wrapped into Space).
	ID dht.Key
	// Listen is the TCP listen address, e.g. "127.0.0.1:0".
	Listen string
	// Space is the identifier universe; must match the middleware's.
	Space dht.Space
	// StabilizeEvery is the wall period (in sim.Time units, microseconds)
	// of the stabilize/notify/check-predecessor maintenance task.
	StabilizeEvery int64
	// FixFingersEvery is the period of finger repair (one entry per
	// firing); zero disables fingers (routing falls back to successors).
	FixFingersEvery int64
	// SuccListLen is the successor-list length (failure tolerance).
	SuccListLen int
	// QueueLen bounds each peer's outbound frame queue.
	QueueLen int
	// MaxHops drops routed messages that exceed it (routing-loop guard).
	MaxHops int
	// Workers sizes the data-plane worker pool that decoded data frames fan
	// out to: 0 means GOMAXPROCS, negative disables the pool entirely (all
	// frames post to the run loop, the pre-pool behavior).
	Workers int
	// PoolQueueLen bounds the worker pool's task queue (0 → 64 per worker).
	PoolQueueLen int
	// UDP enables the fire-and-forget datagram plane (udp.go): a UDP
	// socket bound to the TCP listener's port, used for frames whose kind
	// appears in DatagramKinds and that fit in one datagram.
	UDP bool
	// DatagramKinds nominates the message kinds eligible for datagram
	// transport. Only loss-tolerant soft state belongs here (the
	// middleware nominates KindMBR); everything else stays on TCP.
	DatagramKinds []dht.Kind
	// Machine selects the routing machine from the overlay registry
	// ("chord", "koorde"). Empty means "chord", the historical default.
	// All nodes of one cluster must run the same machine: the control
	// plane's message kinds are per-family.
	Machine string
}

// DefaultConfig returns production-shaped defaults for the given identity.
func DefaultConfig(id dht.Key, listen string) Config {
	return Config{
		ID:              id,
		Listen:          listen,
		Space:           dht.NewSpace(32),
		StabilizeEvery:  500_000, // 500 ms
		FixFingersEvery: 250_000, // 250 ms
		SuccListLen:     8,
		QueueLen:        512,
		MaxHops:         255,
	}
}

// Node is one live overlay node. It implements dht.Substrate for the
// single identifier it hosts: NodeIDs() is [ID] — each process runs its
// own middleware instance, unlike the simulator where one Substrate value
// carries the whole overlay.
type Node struct {
	cfg   Config
	space dht.Space
	self  Ref

	clk *clock.Wall
	ln  net.Listener

	peers *peerSet

	// ring is the node's control-plane state machine — the same code the
	// simulator drives through its event engine. Which machine family it
	// is comes from Config.Machine. Its mutators are loop-confined;
	// routing reads go through the lock-free published View.
	ring overlay.Machine

	// pool is the data-plane executor decoded data frames fan out to; nil
	// when Config.Workers < 0 (everything posts to the loop).
	pool *workerPool

	// udp is the optional datagram plane (udp.go); nil unless Config.UDP.
	// udpKinds is frozen at construction, read lock-free by senders.
	udp      *udpPlane
	udpKinds map[dht.Kind]bool

	// Application attachment. Stored atomically (boxed, so differing
	// concrete types are fine) because data-plane workers read them
	// concurrently with the loop installing them.
	app atomic.Value // appBox
	obs atomic.Value // obsBox

	// arenaStats aggregates decode-arena activity across every reader's
	// arena (and the UDP read loop's).
	arenaStats wire.ArenaStats

	dropped atomic.Int64
	closed  atomic.Bool
	accDone chan struct{}
}

type appBox struct{ app dht.App }
type obsBox struct{ obs dht.Observer }

func (n *Node) loadApp() dht.App       { return n.app.Load().(appBox).app }
func (n *Node) observer() dht.Observer { return n.obs.Load().(obsBox).obs }

// lockedObserver serializes observer callbacks: the metrics collector is a
// plain single-threaded accumulator, but with a worker pool OnTransmit and
// OnDeliver fire from many goroutines.
type lockedObserver struct {
	mu    sync.Mutex
	inner dht.Observer
}

func (o *lockedObserver) OnTransmit(from, to dht.Key, msg *dht.Message) {
	o.mu.Lock()
	o.inner.OnTransmit(from, to, msg)
	o.mu.Unlock()
}

func (o *lockedObserver) OnDeliver(at dht.Key, msg *dht.Message) {
	o.mu.Lock()
	o.inner.OnDeliver(at, msg)
	o.mu.Unlock()
}

// New creates a node, binds its listener and starts its event loop. The
// node is not yet part of any ring: call Create for the first node of a
// cluster or Join to enter through a bootstrap address.
func New(cfg Config) (*Node, error) {
	if cfg.Space.M == 0 {
		return nil, fmt.Errorf("transport: config without identifier space")
	}
	if cfg.SuccListLen <= 0 {
		cfg.SuccListLen = 8
	}
	if cfg.QueueLen <= 0 {
		cfg.QueueLen = 512
	}
	if cfg.MaxHops <= 0 {
		cfg.MaxHops = 255
	}
	if cfg.StabilizeEvery <= 0 {
		return nil, fmt.Errorf("transport: non-positive stabilize period")
	}
	ln, err := net.Listen("tcp", cfg.Listen)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", cfg.Listen, err)
	}
	n := &Node{
		cfg:     cfg,
		space:   cfg.Space,
		self:    Ref{ID: cfg.Space.Wrap(cfg.ID), Addr: ln.Addr().String()},
		clk:     clock.NewWall(),
		ln:      ln,
		accDone: make(chan struct{}),
	}
	n.app.Store(appBox{dht.AppFunc(func(dht.Key, *dht.Message) {})})
	n.obs.Store(obsBox{dht.NopObserver{}})
	if cfg.Workers >= 0 {
		n.pool = newWorkerPool(cfg.Workers, cfg.PoolQueueLen)
	}
	n.peers = newPeerSet(cfg.QueueLen, func() { n.dropped.Add(1) })
	machine := cfg.Machine
	if machine == "" {
		machine = "chord"
	}
	fac, ok := overlay.Lookup(machine)
	if !ok {
		ln.Close()
		return nil, fmt.Errorf("transport: unknown routing machine %q (registered: %s)",
			machine, strings.Join(overlay.Names(), ", "))
	}
	n.ring = fac.New(overlay.Config{
		Space:           cfg.Space,
		SuccListLen:     cfg.SuccListLen,
		StabilizeEvery:  sim.Time(cfg.StabilizeEvery),
		FixFingersEvery: sim.Time(cfg.FixFingersEvery),
	}, n.self, n.clk, n.sendRing)
	// The datagram plane starts last: its receive loop routes through the
	// ring view, so every field above must be published before the first
	// datagram can arrive.
	if cfg.UDP {
		n.udpKinds = make(map[dht.Kind]bool, len(cfg.DatagramKinds))
		for _, k := range cfg.DatagramKinds {
			n.udpKinds[k] = true
		}
		if err := n.startUDP(); err != nil {
			ln.Close()
			return nil, fmt.Errorf("transport: udp on %s: %w", n.self.Addr, err)
		}
	}
	go n.acceptLoop()
	return n, nil
}

// Self returns the node's identity and resolved listen address.
func (n *Node) Self() Ref { return n.self }

// Addr returns the resolved listen address (useful with ":0" listeners).
func (n *Node) Addr() string { return n.self.Addr }

// Do runs fn on the node's event loop and waits for it — the only safe way
// to touch the node's middleware from outside the loop.
func (n *Node) Do(fn func()) { n.clk.Do(fn) }

// Close shuts the node down: listener, maintenance, peers, loop.
func (n *Node) Close() {
	if !n.closed.CompareAndSwap(false, true) {
		return
	}
	n.ln.Close()
	<-n.accDone
	n.stopUDP()
	if n.pool != nil {
		// Drain the data plane first: in-flight workers may still post to
		// the loop or transmit to peers, both of which are still up.
		n.pool.close()
	}
	n.clk.Do(n.ring.Stop)
	n.peers.close()
	n.clk.Close()
}

// --- dht.Substrate ---

// Clock implements dht.Substrate.
func (n *Node) Clock() clock.Clock { return n.clk }

// Space implements dht.Network.
func (n *Node) Space() dht.Space { return n.space }

// SetApp implements dht.Substrate.
func (n *Node) SetApp(id dht.Key, app dht.App) {
	if id != n.self.ID || app == nil {
		return
	}
	n.app.Store(appBox{app})
}

// SetObserver implements dht.Substrate. With a worker pool the observer is
// wrapped so its callbacks stay serialized (the collector is a plain
// accumulator).
func (n *Node) SetObserver(o dht.Observer) {
	if o == nil {
		n.obs.Store(obsBox{dht.NopObserver{}})
		return
	}
	if n.pool != nil {
		o = &lockedObserver{inner: o}
	}
	n.obs.Store(obsBox{o})
}

// WatchNeighbors implements dht.NeighborWatcher: fn fires on the run loop
// whenever the ring machine publishes a view with a changed predecessor or
// first successor. Loop context required (the middleware installs it from
// AttachNode, which runs under Do).
func (n *Node) WatchNeighbors(id dht.Key, fn func()) {
	if id != n.self.ID {
		return
	}
	n.ring.SetNeighborWatch(fn)
}

// DataPool implements dht.PoolProvider: the executor the application may
// use for its own data-plane work (ingest ticks). Nil when the pool is
// disabled.
func (n *Node) DataPool() dht.Pool {
	if n.pool == nil {
		return nil
	}
	return n.pool
}

// LoopStats reports the run loop's task-queue health.
func (n *Node) LoopStats() clock.LoopStats { return n.clk.LoopStats() }

// PoolStats reports the data-plane pool's counters (zero value when the
// pool is disabled).
func (n *Node) PoolStats() PoolStats {
	if n.pool == nil {
		return PoolStats{}
	}
	return n.pool.stats()
}

// NodeIDs implements dht.Substrate: the identifiers this process hosts.
func (n *Node) NodeIDs() []dht.Key { return []dht.Key{n.self.ID} }

// Alive implements dht.Substrate.
func (n *Node) Alive(id dht.Key) bool { return id == n.self.ID && !n.closed.Load() }

// Dropped implements dht.Substrate: frames lost to full queues, dead
// peers, missing neighbors or hop-limit violations.
func (n *Node) Dropped() int64 { return n.dropped.Load() }

// Send implements dht.Network: route msg toward the node covering key.
// Loop context required.
func (n *Node) Send(from dht.Key, key dht.Key, msg *dht.Message) {
	msg.Src = from
	msg.Key = n.space.Wrap(key)
	msg.Hops = 0
	msg.SentAt = n.clk.Now()
	n.route(msg)
}

// Forward implements dht.Network: continue routing an in-flight message,
// preserving hop count and origin. Loop context required.
func (n *Node) Forward(from dht.Key, key dht.Key, msg *dht.Message) {
	msg.Key = n.space.Wrap(key)
	n.route(msg)
}

// route executes one routing step at this node: deliver locally when the
// key is covered, otherwise transmit to the best next hop. Loop context.
func (n *Node) route(msg *dht.Message) { n.routeFrom(msg, true) }

// routeFrom is route parameterized by caller context: onLoop is true on
// the run loop (application sends), false on a pool worker (inbound
// frames). Routing decisions read the ring's published View in both cases,
// so loop and workers route identically; only local delivery differs.
func (n *Node) routeFrom(msg *dht.Message, onLoop bool) {
	if n.covers(msg.Key) {
		n.deliver(msg, onLoop)
		return
	}
	if msg.Hops >= n.cfg.MaxHops {
		n.dropped.Add(1)
		return
	}
	next, ok := n.nextHop(msg.Key)
	if !ok || next.ID == n.self.ID {
		n.dropped.Add(1)
		return
	}
	n.transmitApp(next, msg, frameRouted)
}

// deliver hands msg to the local application. On the loop it calls Deliver
// inline, exactly as before the pool existed. On a worker it first offers
// the message to the app's concurrent path (dht.ConcurrentApp); messages
// the app wants serialized fall back to a loop post.
func (n *Node) deliver(msg *dht.Message, onLoop bool) {
	n.observer().OnDeliver(n.self.ID, msg)
	app := n.loadApp()
	if onLoop {
		app.Deliver(n.self.ID, msg)
		return
	}
	if ca, ok := app.(dht.ConcurrentApp); ok && ca.DeliverData(n.self.ID, msg) {
		return
	}
	if !n.clk.Post(func() { app.Deliver(n.self.ID, msg) }) {
		n.dropped.Add(1)
	}
}

// SendToSuccessor implements dht.Network: one hop clockwise. Loop context.
func (n *Node) SendToSuccessor(from dht.Key, msg *dht.Message) {
	succ, ok := n.successor()
	if !ok || succ.ID == n.self.ID {
		n.dropped.Add(1)
		return
	}
	n.transmitApp(succ, msg, frameDirect)
}

// SendToPredecessor implements dht.Network: one hop counter-clockwise.
func (n *Node) SendToPredecessor(from dht.Key, msg *dht.Message) {
	pred, ok := n.ring.View().Predecessor()
	if !ok || pred.ID == n.self.ID {
		n.dropped.Add(1)
		return
	}
	n.transmitApp(pred, msg, frameDirect)
}

// Covers implements dht.Network. Only answerable for the hosted node.
func (n *Node) Covers(id dht.Key, key dht.Key) bool {
	return id == n.self.ID && n.covers(n.space.Wrap(key))
}

// Successors implements dht.RingNeighbors: up to count successors of the
// hosted node from the ring's published View, nearest first, stopping at
// the first self-reference (small rings wrap). Lock-free; safe from pool
// workers.
func (n *Node) Successors(id dht.Key, count int) []dht.Key {
	if id != n.self.ID || count <= 0 {
		return nil
	}
	out := make([]dht.Key, 0, count)
	for _, ref := range n.ring.View().SuccRefs() {
		if ref.ID == n.self.ID {
			break
		}
		out = append(out, ref.ID)
		if len(out) == count {
			break
		}
	}
	return out
}

// SendToNode implements dht.RingNeighbors: one direct traversal to a ring
// neighbor known from the successor list. If the view shifted and the
// target is no longer listed, the message is routed toward the target's
// own identifier instead — one extra hop beats a drop for the replica-
// aware query handoff this serves.
func (n *Node) SendToNode(from, to dht.Key, msg *dht.Message) {
	if to == n.self.ID {
		n.dropped.Add(1)
		return
	}
	for _, ref := range n.ring.View().SuccRefs() {
		if ref.ID == to {
			n.transmitApp(ref, msg, frameDirect)
			return
		}
	}
	msg.Key = n.space.Wrap(to)
	n.routeFrom(msg, false)
}

// covers reports whether this node is the successor node of key: key in
// (pred, self]. With no predecessor yet the node conservatively covers
// only its own identifier, exactly like the simulated Chord node. All
// routing reads go through the machine's published View — lock-free, safe
// from pool workers, and on the loop always exactly the machine's current
// state (the machine republishes synchronously after every mutation).
func (n *Node) covers(key dht.Key) bool { return n.ring.View().Covers(key) }

// successor returns the head of the successor list.
func (n *Node) successor() (Ref, bool) { return n.ring.View().Successor() }

// nextHop picks the forwarding target for key: the successor when key lies
// in (self, succ], otherwise the closest preceding node known from fingers
// and the successor list.
func (n *Node) nextHop(key dht.Key) (Ref, bool) { return n.ring.View().NextHop(key) }

// transmitApp encodes msg straight into a pooled frame buffer and hands it
// to the peer writer, which recycles the buffer once the bytes are on the
// socket — the steady-state encode path performs no allocations. The hop
// counter is incremented before encoding so it travels with the frame,
// mirroring the simulator's transmit; the observer is charged the wire
// body length (envelope + payload), exactly what Sizeof charges the
// simulator for the same payload.
func (n *Node) transmitApp(to Ref, msg *dht.Message, typ byte) {
	msg.Hops++
	f := newFrame(typ)
	body, err := wire.AppendMarshal(f.b, msg)
	if err != nil {
		f.recycle()
		n.dropped.Add(1)
		return
	}
	f.b = body
	f.finish()
	msg.Bytes = len(f.b) - frameOverhead
	n.observer().OnTransmit(n.self.ID, to.ID, msg)
	if n.datagramEligible(msg.Kind) && n.sendDatagram(to, f) {
		return
	}
	n.peers.send(to.Addr, f)
}

// WriteStats reports cumulative data-plane writer activity: frames fully
// written to sockets and the vectored write calls (writev batches) that
// carried them. frames/flushes is the write-coalescing factor.
func (n *Node) WriteStats() (frames, flushes int64) {
	return n.peers.stats.frames.Load(), n.peers.stats.flushes.Load()
}

// ArenaStats reports the decode arenas' cumulative carve/refill and
// string-intern counters, aggregated over all reader loops.
func (n *Node) ArenaStats() wire.ArenaStatsSnapshot { return n.arenaStats.Load() }

// --- inbound ---

func (n *Node) acceptLoop() {
	defer close(n.accDone)
	for {
		conn, err := n.ln.Accept()
		if err != nil {
			return // listener closed
		}
		go n.readLoop(conn)
	}
}

// readLoop decodes frames off one inbound connection and posts their
// handling to the event loop. Decoding happens off-loop (it builds fresh
// objects, no shared state); all interpretation happens on-loop. The
// reader reuses one buffered reader and one body buffer for the whole
// connection — decoders copy what they keep, so the buffer is free again
// by the next frame. Data-plane decodes carve their objects out of a
// per-connection arena (wire.UnmarshalArena): bump-pointer copies into
// chunked storage instead of per-frame heap objects, retiring the
// per-frame body-copy allocations while keeping the no-aliasing contract.
func (n *Node) readLoop(conn net.Conn) {
	defer conn.Close()
	fr := newFrameReader(conn)
	ar := wire.NewArena(&n.arenaStats)
	for {
		typ, body, err := fr.next()
		if err != nil {
			return
		}
		switch typ {
		case frameRouted, frameDirect:
			msg, err := wire.UnmarshalArena(body, ar)
			if err != nil {
				n.dropped.Add(1)
				continue
			}
			direct := typ == frameDirect
			if n.pool != nil {
				// Data plane: fan the frame out to a worker. Submit blocks
				// when the pool is saturated, which parks this reader — TCP
				// backpressure toward the sender, never a silent drop.
				if !n.pool.Submit(func() { n.onDataFrame(msg, direct) }) {
					n.dropped.Add(1)
				}
				continue
			}
			if !n.clk.Post(func() { n.onAppFrame(msg, direct) }) {
				n.dropped.Add(1)
			}
		case frameControl:
			msg, err := wire.Unmarshal(body)
			if err != nil || msg.Kind != overlay.KindRing {
				n.dropped.Add(1)
				continue
			}
			payload := msg.Payload
			if !n.clk.Post(func() { n.ring.Handle(payload) }) {
				n.dropped.Add(1)
			}
		default:
			// Unknown frame type: skip (forward compatibility).
		}
	}
}

// onAppFrame continues routing (routed frames) or delivers to the local
// application (direct neighbor frames). Runs on the loop (pool disabled).
func (n *Node) onAppFrame(msg *dht.Message, direct bool) {
	if direct {
		n.deliver(msg, true)
		return
	}
	n.routeFrom(msg, true)
}

// onDataFrame is onAppFrame's pool-worker twin: same routing step, but
// local delivery goes through the app's concurrent path (or a loop post
// for message kinds the app keeps serialized).
func (n *Node) onDataFrame(msg *dht.Message, direct bool) {
	if direct {
		n.deliver(msg, false)
		return
	}
	n.routeFrom(msg, false)
}

// RingInfo is a snapshot of the node's ring pointers, for diagnostics and
// convergence checks.
type RingInfo struct {
	Self     Ref
	Pred     *Ref
	SuccList []Ref
	Fingers  int // populated finger entries
}

// Ring returns a consistent snapshot of the ring state.
func (n *Node) Ring() RingInfo {
	var info RingInfo
	n.clk.Do(func() {
		info.Self = n.self
		if p, ok := n.ring.Predecessor(); ok {
			info.Pred = &p
		}
		info.SuccList = n.ring.SuccessorList()
		info.Fingers = n.ring.LonglinkCount()
	})
	return info
}
