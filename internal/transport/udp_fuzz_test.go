package transport

import (
	"testing"

	"streamdex/internal/core"
	"streamdex/internal/cqe"
	"streamdex/internal/dht"
	"streamdex/internal/koorde"
	"streamdex/internal/overlay"
	"streamdex/internal/query"
	"streamdex/internal/sim"
	"streamdex/internal/summary"
	"streamdex/internal/wire"
)

// fuzzSeedMessages covers every packed data-plane payload kind — the
// original nine, the seven continuous-query-engine codecs, and the two
// load-balancing codecs (replica tail, load gossip) — so the fuzzer
// starts from well-formed frames of each and mutates from there.
func fuzzSeedMessages() []*dht.Message {
	mbr := &summary.MBR{
		Lo: summary.Feature{0.1, -0.2, 0.3}, Hi: summary.Feature{0.2, -0.1, 0.4},
		StreamID: "fuzz-stream", Seq: 9, Count: 25, Created: 100, Expiry: 5_000_100,
	}
	match := query.Match{StreamID: "fuzz-stream", Seq: 3, DistLB: 0.5, FoundAt: 7, Node: 11}
	sk := summary.NewSketch(5_000_000, 2, 3, 0, 90)
	for i := 0; i < 30; i++ {
		sk.Add(sim.Time(i)*100_000, float64(i*3))
	}
	return []*dht.Message{
		{Kind: core.KindMBR, Key: 1, Src: 2, Payload: core.MBRUpdate{MBR: mbr}},
		{Kind: core.KindQuery, Key: 1, Src: 2, Payload: core.SimQuery{
			MiddleKey: 42,
			Q: &query.Similarity{ID: 5, Origin: 2, Feature: summary.Feature{0.5, 0.25},
				Radius: 0.1, Posted: 1, Lifespan: 1000},
		}},
		{Kind: core.KindNotify, Key: 1, Src: 2, Payload: core.NotifyBatch{
			Items: []core.NotifyItem{{QueryID: 5, MiddleKey: 42, ClientKey: 2,
				Expiry: 9999, Matches: []query.Match{match}}},
		}},
		{Kind: core.KindResponse, Key: 1, Src: 2, Payload: core.ResponseMsg{
			QueryID: 5, Matches: []query.Match{match},
		}},
		{Kind: core.KindLocPut, Key: 1, Src: 2, Payload: core.LocPut{StreamID: "fuzz-stream", Source: 2}},
		{Kind: core.KindLocGet, Key: 1, Src: 2, Payload: core.LocGet{StreamID: "fuzz-stream", Requester: 2}},
		{Kind: core.KindLocReply, Key: 1, Src: 2, Payload: core.LocReply{
			StreamID: "fuzz-stream", Source: 2, Found: true,
		}},
		{Kind: core.KindIPSub, Key: 1, Src: 2, Payload: core.IPSub{
			Q: &query.InnerProduct{ID: 6, Origin: 2, StreamID: "fuzz-stream",
				Index: []int{0, 2}, Weights: []float64{0.5, -0.5}, Posted: 1, Lifespan: 1000},
		}},
		{Kind: core.KindIPResp, Key: 1, Src: 2, Payload: core.IPResp{
			QueryID: 6, Value: query.IPValue{Value: 1.5, At: 9, Approx: true},
		}},
		{Kind: core.KindSketch, Key: 1, Src: 2, Payload: core.SketchUpdate{
			StreamID: "fuzz-stream", Seq: 9, Expiry: 9_000_000, Lo: 0.1, Hi: 0.2, Sketch: sk,
		}},
		{Kind: core.KindSub, Key: 1, Src: 2, Payload: core.SubMsg{
			P: &query.Predicate{ID: 7, Origin: 2, Lo: summary.Feature{-0.2, -0.1},
				Hi: summary.Feature{0.2, 0.1}, Posted: 1, Lifespan: 1000},
		}},
		{Kind: core.KindSubMatch, Key: 1, Src: 2, Payload: core.SubMatchMsg{
			SubID: 7, Matches: []query.Match{match},
		}},
		{Kind: core.KindAggQuery, Key: 1, Src: 2, Payload: core.AggQueryMsg{
			Q: &query.Aggregate{ID: 8, Origin: 2, Lo: -0.4, Hi: 0.4, Posted: 1, Lifespan: 1000},
		}},
		{Kind: core.KindAggReply, Key: 1, Src: 2, Payload: core.AggReplyMsg{
			QueryID: 8, Items: []core.StreamSketch{{StreamID: "fuzz-stream", Seq: 9, Sketch: sk}},
		}},
		{Kind: core.KindTopK, Key: 1, Src: 2, Payload: core.TopKMsg{
			Q: &query.TopK{ID: 9, Origin: 2, K: 3, Lo: -0.5, Hi: 0.5, Posted: 1, Lifespan: 1000},
		}},
		{Kind: core.KindTopKReport, Key: 1, Src: 2, Payload: core.TopKReportMsg{
			QueryID: 9, Node: 1, Counts: []cqe.StreamCount{{StreamID: "fuzz-stream", Count: 12}},
		}},
		{Kind: core.KindReplica, Key: 1, Src: 2, Payload: core.ReplicaMsg{MBR: mbr, TTL: 2}},
		{Kind: core.KindLoad, Key: 1, Src: 2, Payload: core.LoadMsg{Loads: []float64{7.5, 1.25}}},
		// Koorde control payloads. Control frames never travel UDP, but the
		// datagram dispatcher must reject (not trust) whatever arrives, so
		// the corpus seeds every registered codec, walk state included.
		{Kind: overlay.KindRing, Key: 1, Src: 2, Payload: koorde.KFindReq{
			From: kref(2), Token: 3, Target: 77, TTL: 64, ReplyTo: kref(2), Shift: koorde.ShiftNone,
		}},
		{Kind: overlay.KindRing, Key: 1, Src: 2, Payload: koorde.KFindReq{
			From: kref(2), Token: 3, Target: 77, TTL: 60, ReplyTo: kref(2), I: 4_123, Shift: 1,
		}},
		{Kind: overlay.KindRing, Key: 2, Src: 1, Payload: koorde.KFindResp{
			From: kref(1), Token: 3, Succ: kref(80),
		}},
		{Kind: overlay.KindRing, Key: 1, Src: 2, Payload: koorde.KStabReq{From: kref(2)}},
		{Kind: overlay.KindRing, Key: 1, Src: 2, Payload: koorde.KStabReq{
			From: kref(2), Chain: true, Image: 32,
		}},
		{Kind: overlay.KindRing, Key: 2, Src: 1, Payload: koorde.KStabResp{
			From: kref(1), HasPred: true, Pred: kref(2), SuccList: []overlay.Ref{kref(2), kref(80)},
		}},
		{Kind: overlay.KindRing, Key: 2, Src: 1, Payload: koorde.KStabResp{
			From: kref(1), HasPred: true, Pred: kref(2), Chain: true, Image: 32,
			SuccList: []overlay.Ref{kref(2), kref(80)},
		}},
		// A split leg of a tree multicast: the Mode==3 envelope encoding
		// with the de Bruijn walk-state extension.
		{Kind: core.KindMBR, Key: 1, Src: 2, RangeStart: 1, RangeEnd: 200,
			HasRange: true, Mode: dht.RangeTree, Split: true, SplitImg: 48, SplitShift: 2,
			Payload: core.MBRUpdate{MBR: mbr}},
		{Kind: overlay.KindRing, Key: 1, Src: 2, Payload: koorde.KNotify{From: kref(2)}},
		{Kind: overlay.KindRing, Key: 1, Src: 2, Payload: koorde.KPingReq{From: kref(2)}},
		{Kind: overlay.KindRing, Key: 2, Src: 1, Payload: koorde.KPingResp{From: kref(1)}},
		{Kind: overlay.KindRing, Key: 1, Src: 2, Payload: koorde.KDListReq{From: kref(2)}},
		{Kind: overlay.KindRing, Key: 2, Src: 1, Payload: koorde.KDListResp{
			From: kref(1), HasPred: true, Pred: kref(80), SuccList: []overlay.Ref{kref(2)},
		}},
	}
}

// kref builds an addressed overlay node reference for the koorde seeds.
func kref(id dht.Key) overlay.Ref {
	return overlay.Ref{ID: id, Addr: "127.0.0.1:7002"}
}

// FuzzDatagramDecode drives the exact UDP receive path — frame-type
// dispatch, arena unmarshal, pool hand-off — on one live node with
// arbitrary datagram bytes. The invariant is simply "never panic, never
// corrupt": malformed datagrams must be rejected (return false) or decode
// into a well-formed message; either way the node stays up.
func FuzzDatagramDecode(f *testing.F) {
	cfg := DefaultConfig(1, "127.0.0.1:0")
	cfg.Space = dht.NewSpace(16)
	n, err := New(cfg)
	if err != nil {
		f.Fatal(err)
	}
	f.Cleanup(n.Close)

	for _, msg := range fuzzSeedMessages() {
		body, err := wire.Marshal(msg)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(append([]byte{frameRouted}, body...))
		f.Add(append([]byte{frameDirect}, body...))
	}
	f.Add([]byte{frameControl, 1, 2, 3}) // control never travels UDP: rejected
	f.Add([]byte{0})
	f.Add([]byte{frameRouted})

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return // a zero-size datagram never reaches dispatch
		}
		ar := wire.NewArena(nil)
		n.dispatchDatagram(data[0], data[1:], ar)
	})
}
