package transport

import (
	"fmt"
	"testing"

	"streamdex/internal/chord"
	"streamdex/internal/chord/protocol"
	"streamdex/internal/dht"
	"streamdex/internal/metrics"
	"streamdex/internal/overlay"
	"streamdex/internal/sim"
)

// TestControlPlaneParitySimVsLive is the one-control-plane acceptance test:
// a simulated Chord node and a live transport node are two adapters around
// the same protocol machine, so when both start from the identical ring
// snapshot and consume the identical control-message trace, they must make
// bit-for-bit identical successor decisions — predecessor, successor list,
// next-hop choice and key coverage — after every single message.
//
// Neither machine runs maintenance here (no tickers are started); the trace
// is the only input, so any divergence is a real decision difference
// between the substrates, not scheduling noise.
func TestControlPlaneParitySimVsLive(t *testing.T) {
	space := dht.NewSpace(16)
	ids := []dht.Key{100, 9000, 21000, 40000, 61000}

	// Simulated side: a converged 5-node ring; we adopt the middle node's
	// machine. The engine is never run, so the trace below is its sole
	// stimulus.
	eng := sim.NewEngine()
	net := chord.New(eng, chord.Config{Space: space, HopDelay: sim.Millisecond, SuccListLen: 4})
	net.BuildStable(ids, nil)
	simM := net.Node(ids[2]).Protocol()

	// Live side: one real transport node with the same identifier, given
	// the same ring snapshot. Maintenance is configured but never started
	// (InstallRing does not start tickers), so it too sees only the trace.
	node, err := New(Config{
		ID: ids[2], Listen: "127.0.0.1:0", Space: space,
		StabilizeEvery: 500_000, FixFingersEvery: 250_000, SuccListLen: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()

	var pred *protocol.Ref
	if p, ok := simM.Predecessor(); ok {
		pp := p
		pred = &pp
	}
	succList := simM.SuccessorList()
	fingers := make([]protocol.Ref, 0, space.M)
	for i := 0; i < int(space.M); i++ {
		f, ok := simM.Finger(i)
		if !ok {
			t.Fatalf("sim finger %d unpopulated after BuildStable", i)
		}
		fingers = append(fingers, f)
	}
	node.Do(func() { node.ring.InstallRing(pred, succList, fingers) })

	// Deterministic trace over ring-member refs: lookups (including TTL
	// exhaustion), stale find answers, stabilize exchanges (some from the
	// actual successor, some from bystanders), notifies and pings.
	members := make([]protocol.Ref, len(ids))
	for i, id := range ids {
		members[i] = protocol.Ref{ID: id}
	}
	rnd := uint64(0x9e3779b97f4a7c15)
	next := func(n uint64) uint64 {
		rnd = rnd*6364136223846793005 + 1442695040888963407
		return (rnd >> 33) % n
	}
	var trace []any
	for i := 0; i < 200; i++ {
		switch next(6) {
		case 0:
			trace = append(trace, protocol.FindReq{
				From: members[next(5)], Token: 1000 + uint64(i),
				Target: dht.Key(next(1 << 16)), TTL: int(next(8)), ReplyTo: members[next(5)],
			})
		case 1:
			trace = append(trace, protocol.FindResp{From: members[next(5)], Token: next(2000), Succ: members[next(5)]})
		case 2:
			trace = append(trace, protocol.StabReq{From: members[next(5)]})
		case 3:
			sr := protocol.StabResp{
				From:     members[next(5)],
				SuccList: []protocol.Ref{members[next(5)], members[next(5)], members[next(5)]},
			}
			if next(2) == 0 {
				sr.HasPred, sr.Pred = true, members[next(5)]
			}
			trace = append(trace, sr)
		case 4:
			trace = append(trace, protocol.Notify{From: members[next(5)]})
		case 5:
			if next(2) == 0 {
				trace = append(trace, protocol.PingReq{From: members[next(5)]})
			} else {
				trace = append(trace, protocol.PingResp{From: members[next(5)]})
			}
		}
	}

	probes := []dht.Key{0, 101, 8999, 9000, 21000, 21001, 39999, 52000, 61001, 65535}
	type snap struct{ pred, succ, hops, covers string }
	take := func(m overlay.Machine) snap {
		var s snap
		if p, ok := m.Predecessor(); ok {
			s.pred = fmt.Sprint(p.ID)
		}
		for _, r := range m.SuccessorList() {
			s.succ += fmt.Sprint(r.ID, ",")
		}
		for _, k := range probes {
			if h, ok := m.NextHop(k); ok {
				s.hops += fmt.Sprint(h.ID, ",")
			} else {
				s.hops += "-,"
			}
			s.covers += fmt.Sprint(m.Covers(k), ",")
		}
		return s
	}

	for i, msg := range trace {
		simM.Handle(msg)
		var liveSnap snap
		m := msg
		node.Do(func() {
			node.ring.Handle(m)
			liveSnap = take(node.ring)
		})
		if simSnap := take(simM); simSnap != liveSnap {
			t.Fatalf("divergence after message %d (%T):\n sim  %+v\n live %+v", i, msg, simSnap, liveSnap)
		}
	}

	// The maintenance counters the trace exercised must agree too.
	var liveStats metrics.Ring
	node.Do(func() { liveStats = node.ring.Stats() })
	if simStats := simM.Stats(); simStats != liveStats {
		t.Fatalf("stats diverged:\n sim  %+v\n live %+v", simStats, liveStats)
	}
	if liveStats.StaleFindResps == 0 || liveStats.FindDrops == 0 {
		t.Fatalf("trace failed to exercise stale answers and TTL drops: %+v", liveStats)
	}
}
