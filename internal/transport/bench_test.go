// Loopback throughput benchmark for the live transport: two real TCP
// nodes on 127.0.0.1, one pumping MBR-update messages at the other's
// identifier as fast as the event loop accepts them. Reported extras:
//
//	frames/write — write-coalescing factor: frames carried per vectored
//	               write call (writev). >1 means the writer batched, i.e.
//	               fewer syscalls than frames.
//	frames/sec   — delivered application messages per wall second.
//
// Run with:
//
//	go test -run '^$' -bench LoopbackThroughput -benchmem ./internal/transport
package transport_test

import (
	"sync/atomic"
	"testing"
	"time"

	"streamdex/internal/core"
	"streamdex/internal/dht"
	"streamdex/internal/summary"
	"streamdex/internal/transport"
)

func BenchmarkLoopbackThroughput(b *testing.B) {
	space := dht.NewSpace(16)
	ids := []dht.Key{10_000, 40_000}
	nodes := make([]*transport.Node, len(ids))
	for i, id := range ids {
		tc := transport.DefaultConfig(id, "127.0.0.1:0")
		tc.Space = space
		tc.StabilizeEvery = 50_000
		tc.FixFingersEvery = 50_000
		tc.QueueLen = 4096
		n, err := transport.New(tc)
		if err != nil {
			b.Fatal(err)
		}
		defer n.Close()
		nodes[i] = n
	}
	nodes[0].Create()
	if err := nodes[1].Join(nodes[0].Addr(), 10*time.Second); err != nil {
		b.Fatal(err)
	}
	waitRingConverged(b, nodes, ids)

	var delivered atomic.Int64
	nodes[1].Do(func() {
		nodes[1].SetApp(ids[1], dht.AppFunc(func(dht.Key, *dht.Message) {
			delivered.Add(1)
		}))
	})

	// A realistic data-plane message: one 4-dim MBR summary update.
	mbr := summary.NewMBR("bench-stream", 1, summary.Feature{0.1, -0.2, 0.3, 0.05})
	mbr.Extend(summary.Feature{0.15, -0.1, 0.25, 0.0})
	mbr.Created = 1_000_000
	mbr.Expiry = 6_000_000
	payload := core.MBRUpdate{MBR: mbr}

	const chunk = 256
	sent := 0
	start := time.Now()
	b.ResetTimer()
	for sent < b.N {
		k := min(chunk, b.N-sent)
		nodes[0].Do(func() {
			for i := 0; i < k; i++ {
				msg := &dht.Message{Kind: core.KindMBR, Payload: payload}
				nodes[0].Send(ids[0], ids[1], msg)
			}
		})
		sent += k
		// Backpressure: never let more than one chunk race the writer, so
		// the bounded peer queue cannot overflow into drops.
		for delivered.Load()+totalDropped(nodes) < int64(sent) {
			time.Sleep(50 * time.Microsecond)
		}
	}
	b.StopTimer()
	if d := totalDropped(nodes); d > 0 {
		b.Logf("dropped %d of %d frames", d, sent)
	}
	frames, flushes := nodes[0].WriteStats()
	if flushes > 0 {
		b.ReportMetric(float64(frames)/float64(flushes), "frames/write")
	}
	if el := time.Since(start).Seconds(); el > 0 {
		b.ReportMetric(float64(delivered.Load())/el, "frames/sec")
	}
}

func totalDropped(nodes []*transport.Node) int64 {
	var d int64
	for _, n := range nodes {
		d += n.Dropped()
	}
	return d
}
