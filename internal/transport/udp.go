package transport

// Optional UDP datagram plane for fire-and-forget publishes.
//
// The paper's MBR replication is soft state: every rectangle is re-derived
// from the stream within beta vectors and expires after BSPAN anyway, so a
// lost publish costs a transient recall dip, not correctness — exactly the
// trade Kademlia makes by running its whole protocol over UDP. With -udp
// enabled, frames whose message kind the application nominated as
// datagram-eligible (adidas-node nominates KindMBR) and that fit in one
// MTU-safe datagram skip the TCP stream entirely: no queue, no head-of-
// line blocking behind large query responses, no writev scheduling — one
// sendto per publish. Everything else — ring control, queries, notifies,
// responses, oversized MBRs — stays on TCP, where loss would hurt.
//
// A datagram is the TCP frame minus the length prefix:
//
//	1 byte frame type | wire.Marshal body
//
// and is received on the same port the node's TCP listener is bound to, so
// a peer's dial address identifies both planes. The receive loop decodes
// into a per-loop arena (UnmarshalArena) like any TCP reader; decoded
// objects never alias the packet buffer, and the read path applies the
// kernel's natural backpressure: if the data-plane pool is saturated the
// loop parks and excess datagrams die in the socket buffer — the designed
// loss mode, counted by the kernel, never a corrupted frame.

import (
	"net"
	"sync"
	"sync/atomic"

	"streamdex/internal/dht"
	"streamdex/internal/wire"
)

// maxDatagramBody caps the frame body (type byte + wire body) a node will
// send as one datagram: conservative single-MTU payload so the kernel
// never fragments. Larger eligible frames silently fall back to TCP.
const maxDatagramBody = 1400

// udpPlane is the node's datagram side: one socket bound to the TCP
// listener's port, a resolved-address cache keyed by dial address, and
// delivery counters.
type udpPlane struct {
	conn  *net.UDPConn
	addrs sync.Map // string dial addr -> *net.UDPAddr

	sent     atomic.Int64 // datagrams written
	recv     atomic.Int64 // datagrams received and dispatched
	fallback atomic.Int64 // eligible frames sent over TCP (size/resolve)

	done chan struct{}
}

// UDPStats reports the datagram plane's counters (zeros when disabled):
// datagrams sent, received, and eligible frames that fell back to TCP.
func (n *Node) UDPStats() (sent, recv, fallback int64) {
	if n.udp == nil {
		return 0, 0, 0
	}
	return n.udp.sent.Load(), n.udp.recv.Load(), n.udp.fallback.Load()
}

// startUDP binds the datagram socket to the node's resolved listen port
// and starts the receive loop.
func (n *Node) startUDP() error {
	addr, err := net.ResolveUDPAddr("udp", n.self.Addr)
	if err != nil {
		return err
	}
	conn, err := net.ListenUDP("udp", addr)
	if err != nil {
		return err
	}
	n.udp = &udpPlane{conn: conn, done: make(chan struct{})}
	go n.udpReadLoop()
	return nil
}

// stopUDP closes the socket and waits for the receive loop to exit.
func (n *Node) stopUDP() {
	if n.udp == nil {
		return
	}
	n.udp.conn.Close()
	<-n.udp.done
}

// datagramEligible reports whether a frame of this kind may travel as a
// datagram (the application nominated the kind and UDP is up).
func (n *Node) datagramEligible(kind dht.Kind) bool {
	return n.udp != nil && n.udpKinds[kind]
}

// sendDatagram attempts to put an encoded frame on the wire as one
// datagram: f.b is the pooled TCP frame (length prefix + type + body); the
// datagram drops the 4-byte length prefix. Returns false — caller falls
// back to TCP — when the body exceeds the MTU budget or the address does
// not resolve. The frame buffer is recycled on success.
func (n *Node) sendDatagram(to Ref, f *frameBuf) bool {
	body := f.b[4:] // type byte + wire body
	if len(body) > maxDatagramBody {
		n.udp.fallback.Add(1)
		return false
	}
	var addr *net.UDPAddr
	if v, ok := n.udp.addrs.Load(to.Addr); ok {
		addr = v.(*net.UDPAddr)
	} else {
		resolved, err := net.ResolveUDPAddr("udp", to.Addr)
		if err != nil {
			n.udp.fallback.Add(1)
			return false
		}
		n.udp.addrs.Store(to.Addr, resolved)
		addr = resolved
	}
	// Fire and forget: a send error (e.g. ICMP-reported unreachable) is
	// indistinguishable from in-flight loss for soft state; don't retry
	// over TCP, the next publish supersedes this one anyway.
	n.udp.conn.WriteToUDP(body, addr)
	n.udp.sent.Add(1)
	f.recycle()
	return true
}

// udpReadLoop receives datagrams and dispatches them exactly like a TCP
// reader dispatches frames: decode off-loop into a per-loop arena, then
// hand data frames to the worker pool (or the run loop).
func (n *Node) udpReadLoop() {
	defer close(n.udp.done)
	buf := make([]byte, 64<<10)
	ar := wire.NewArena(&n.arenaStats)
	for {
		sz, _, err := n.udp.conn.ReadFromUDP(buf)
		if err != nil {
			return // socket closed
		}
		if sz < 1 {
			continue
		}
		if n.dispatchDatagram(buf[0], buf[1:sz], ar) {
			n.udp.recv.Add(1)
		} else {
			n.dropped.Add(1)
		}
	}
}

// dispatchDatagram decodes and routes one datagram body. Split out (and
// returning success) so the fuzz harness can drive the exact receive path
// without a socket.
func (n *Node) dispatchDatagram(typ byte, body []byte, ar *wire.Arena) bool {
	switch typ {
	case frameRouted, frameDirect:
		msg, err := wire.UnmarshalArena(body, ar)
		if err != nil {
			return false
		}
		direct := typ == frameDirect
		if n.pool != nil {
			return n.pool.Submit(func() { n.onDataFrame(msg, direct) })
		}
		return n.clk.Post(func() { n.onAppFrame(msg, direct) })
	default:
		// Control frames never travel over UDP (loss there would stall
		// ring convergence); unknown types are skipped like on TCP.
		return false
	}
}
