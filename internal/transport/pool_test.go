package transport

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestPoolRunsEverything checks every submitted task executes exactly once
// across all workers.
func TestPoolRunsEverything(t *testing.T) {
	p := newWorkerPool(4, 8)
	var ran atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 1000; i++ {
		wg.Add(1)
		if !p.Submit(func() { ran.Add(1); wg.Done() }) {
			t.Fatal("Submit refused on an open pool")
		}
	}
	wg.Wait()
	if ran.Load() != 1000 {
		t.Fatalf("ran %d tasks, want 1000", ran.Load())
	}
	s := p.stats()
	if s.Submitted != 1000 || s.Workers != 4 {
		t.Fatalf("stats = %+v", s)
	}
	p.close()
	if p.Submit(func() {}) || p.TrySubmit(func() {}) {
		t.Fatal("submit accepted after close")
	}
}

// TestPoolBackpressure saturates the queue and checks Submit parks (and is
// counted) while TrySubmit fails fast.
func TestPoolBackpressure(t *testing.T) {
	p := newWorkerPool(1, 2)
	defer p.close()

	gate := make(chan struct{})
	parked := make(chan struct{})
	p.Submit(func() { close(parked); <-gate })
	<-parked
	// Fill the 2-slot queue.
	p.Submit(func() {})
	p.Submit(func() {})

	if p.TrySubmit(func() {}) {
		t.Fatal("TrySubmit succeeded on a full queue")
	}
	if got := p.stats().Inline; got != 1 {
		t.Fatalf("Inline = %d, want 1", got)
	}

	unblocked := make(chan struct{})
	go func() {
		p.Submit(func() {})
		close(unblocked)
	}()
	deadline := time.After(2 * time.Second)
	for p.stats().BlockedSubs == 0 {
		select {
		case <-deadline:
			t.Fatal("overflow Submit never counted as blocked")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	select {
	case <-unblocked:
		t.Fatal("Submit returned while the queue was still full")
	default:
	}
	close(gate)
	<-unblocked
	for p.stats().BlockedNanos == 0 {
		select {
		case <-deadline:
			t.Fatal("BlockedNanos never charged")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	if s := p.stats(); s.HighWater != 2 {
		t.Fatalf("HighWater = %d, want 2", s.HighWater)
	}
}

// TestPoolCloseDrains: tasks queued before close still run.
func TestPoolCloseDrains(t *testing.T) {
	p := newWorkerPool(1, 16)
	var ran atomic.Int64
	gate := make(chan struct{})
	parked := make(chan struct{})
	p.Submit(func() { close(parked); <-gate })
	<-parked
	for i := 0; i < 10; i++ {
		p.Submit(func() { ran.Add(1) })
	}
	done := make(chan struct{})
	go func() { p.close(); close(done) }()
	close(gate)
	<-done
	if ran.Load() != 10 {
		t.Fatalf("close drained %d queued tasks, want 10", ran.Load())
	}
}
