package transport

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Stream framing: every frame on a connection is
//
//	uint32 big-endian body length | 1 byte frame type | body
//
// The type byte distinguishes the data plane from the control plane:
//
//   - frameRouted / frameDirect carry a wire.Marshal-encoded dht.Message.
//     A routed frame is addressed to a key and keeps hopping until it
//     reaches the covering node; a direct frame is for the receiving
//     neighbor itself (the SendToSuccessor/SendToPredecessor primitives).
//   - frameControl carries a gob-encoded control record (ring
//     maintenance: find/stabilize/notify/ping).
//
// The length prefix covers the type byte plus body, so a reader can skip
// frames of unknown type without understanding them.
const (
	frameRouted byte = iota + 1
	frameDirect
	frameControl
)

// maxFrameBytes bounds a single frame so a corrupt or hostile length
// prefix cannot make a reader allocate unboundedly.
const maxFrameBytes = 16 << 20

// appendFrame encodes one frame into a fresh byte slice ready for a single
// net.Conn write.
func appendFrame(typ byte, body []byte) []byte {
	out := make([]byte, 4+1+len(body))
	binary.BigEndian.PutUint32(out, uint32(1+len(body)))
	out[4] = typ
	copy(out[5:], body)
	return out
}

// readFrame reads one frame, returning its type and body.
func readFrame(r io.Reader) (byte, []byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n < 1 {
		return 0, nil, fmt.Errorf("transport: empty frame")
	}
	if n > maxFrameBytes {
		return 0, nil, fmt.Errorf("transport: frame of %d bytes exceeds limit", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return 0, nil, err
	}
	return buf[0], buf[1:], nil
}
