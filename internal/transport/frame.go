package transport

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"sync"
)

// Stream framing: every frame on a connection is
//
//	uint32 big-endian body length | 1 byte frame type | body
//
// The type byte distinguishes the data plane from the control plane:
//
//   - frameRouted / frameDirect carry a wire.Marshal-encoded dht.Message.
//     A routed frame is addressed to a key and keeps hopping until it
//     reaches the covering node; a direct frame is for the receiving
//     neighbor itself (the SendToSuccessor/SendToPredecessor primitives).
//   - frameControl also carries a wire.Marshal-encoded dht.Message, whose
//     payload is one of the protocol package's ring-maintenance messages
//     (find/stabilize/notify/ping) under protocol.KindRing, packed by the
//     codec-v2 registry like any other payload.
//
// The length prefix covers the type byte plus body, so a reader can skip
// frames of unknown type without understanding them.
const (
	frameRouted byte = iota + 1
	frameDirect
	frameControl
)

// frameOverhead is the per-frame cost of the stream framing itself: the
// 4-byte length prefix plus the type byte. Everything after it is the
// wire.Marshal body whose length the bandwidth observers charge.
const frameOverhead = 5

// maxFrameBytes bounds a single frame so a corrupt or hostile length
// prefix cannot make a reader allocate unboundedly.
const maxFrameBytes = 16 << 20

// maxPooledFrame caps the capacity a recycled frame buffer may pin in the
// pool; the rare oversized frame is allocated and released normally.
const maxPooledFrame = 64 << 10

// frameBuf is one encoded frame in a pooled buffer. The send path is
// allocation-free in steady state: transmitApp takes a frameBuf from the
// pool, appends the prefix and the wire body in place, and the peer writer
// recycles it once the bytes are on the socket (or dropped).
type frameBuf struct {
	b []byte
}

var framePool = sync.Pool{New: func() any { return new(frameBuf) }}

// newFrame returns a pooled buffer primed with the 5-byte frame prefix
// (length placeholder + type). Append the body to f.b, then call finish.
func newFrame(typ byte) *frameBuf {
	f := framePool.Get().(*frameBuf)
	f.b = append(f.b[:0], 0, 0, 0, 0, typ)
	return f
}

// finish fills in the length prefix once the body is complete.
func (f *frameBuf) finish() {
	binary.BigEndian.PutUint32(f.b, uint32(len(f.b)-4))
}

// recycle returns the buffer to the pool for the next frame.
func (f *frameBuf) recycle() {
	if cap(f.b) > maxPooledFrame {
		f.b = nil
	}
	framePool.Put(f)
}

// frameReader decodes frames off one inbound connection, buffering reads
// (one syscall typically yields many coalesced frames, matching the writer
// side) and reusing a single body buffer across frames. The body returned
// by next is valid only until the following next call — decoders must copy
// anything they keep, which wire.Unmarshal and decodeControl both guarantee.
type frameReader struct {
	r   *bufio.Reader
	buf []byte
}

func newFrameReader(conn io.Reader) *frameReader {
	return &frameReader{r: bufio.NewReaderSize(conn, 32<<10)}
}

// next reads one frame, returning its type and body.
func (fr *frameReader) next() (byte, []byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(fr.r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n < 1 {
		return 0, nil, fmt.Errorf("transport: empty frame")
	}
	if n > maxFrameBytes {
		return 0, nil, fmt.Errorf("transport: frame of %d bytes exceeds limit", n)
	}
	if cap(fr.buf) < int(n) {
		fr.buf = make([]byte, n)
	}
	buf := fr.buf[:n]
	if _, err := io.ReadFull(fr.r, buf); err != nil {
		return 0, nil, err
	}
	return buf[0], buf[1:], nil
}
