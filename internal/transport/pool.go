package transport

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// workerPool is the node's data-plane executor: a fixed set of worker
// goroutines draining one bounded task queue. Decoded data frames (MBR
// publishes, query evaluations) and ingest ticks run here so the run loop
// stays a pure control plane.
//
// Backpressure policy: the queue is bounded. Submit (used by socket read
// loops) blocks until a slot frees — parking the reader stops reading the
// TCP connection, which propagates pressure to the sender's bounded write
// queue and ultimately drops at the sender, exactly like a slow consumer
// today. TrySubmit (used by loop callers that must never block) fails fast
// and the caller runs the task inline. Nothing is silently dropped; every
// stall is counted.
type workerPool struct {
	tasks chan func()
	quit  chan struct{}
	wg    sync.WaitGroup

	workers int
	closed  atomic.Bool

	submitted    atomic.Int64 // tasks accepted (Submit + TrySubmit)
	inline       atomic.Int64 // TrySubmit rejections (caller ran inline)
	highWater    atomic.Int64 // max queue depth observed at enqueue
	blockedSubs  atomic.Int64 // Submit calls that found the queue full
	blockedNanos atomic.Int64 // total ns Submit callers spent parked
}

// PoolStats is a snapshot of the data-plane pool's health, surfaced
// through the node STATS output next to the run loop's LoopStats.
type PoolStats struct {
	Workers      int
	Depth        int   // tasks queued right now
	HighWater    int   // max queue depth observed
	Submitted    int64 // tasks executed on the pool
	Inline       int64 // TrySubmit fallbacks run on the caller
	BlockedSubs  int64 // Submits that had to park
	BlockedNanos int64 // total ns parked
}

// newWorkerPool starts workers goroutines (0 → GOMAXPROCS) behind a queue
// of queueLen slots (0 → 64 per worker).
func newWorkerPool(workers, queueLen int) *workerPool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if queueLen <= 0 {
		queueLen = 64 * workers
	}
	p := &workerPool{
		tasks:   make(chan func(), queueLen),
		quit:    make(chan struct{}),
		workers: workers,
	}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.run()
	}
	return p
}

func (p *workerPool) run() {
	defer p.wg.Done()
	for {
		select {
		case fn := <-p.tasks:
			fn()
		case <-p.quit:
			// Drain what is already queued — in-flight data frames finish
			// rather than vanish — then exit.
			for {
				select {
				case fn := <-p.tasks:
					fn()
				default:
					return
				}
			}
		}
	}
}

// Submit implements dht.Pool: enqueue, parking on a full queue.
func (p *workerPool) Submit(fn func()) bool {
	if p.closed.Load() {
		return false
	}
	select {
	case p.tasks <- fn:
		p.noteEnqueued()
		return true
	case <-p.quit:
		return false
	default:
	}
	p.blockedSubs.Add(1)
	start := time.Now()
	defer func() { p.blockedNanos.Add(time.Since(start).Nanoseconds()) }()
	select {
	case p.tasks <- fn:
		p.noteEnqueued()
		return true
	case <-p.quit:
		return false
	}
}

// TrySubmit implements dht.Pool: enqueue only without blocking.
func (p *workerPool) TrySubmit(fn func()) bool {
	if p.closed.Load() {
		return false
	}
	select {
	case p.tasks <- fn:
		p.noteEnqueued()
		return true
	default:
		p.inline.Add(1)
		return false
	}
}

// Workers implements dht.Pool.
func (p *workerPool) Workers() int { return p.workers }

func (p *workerPool) noteEnqueued() {
	p.submitted.Add(1)
	depth := int64(len(p.tasks))
	for {
		hw := p.highWater.Load()
		if depth <= hw || p.highWater.CompareAndSwap(hw, depth) {
			return
		}
	}
}

// stats snapshots the counters.
func (p *workerPool) stats() PoolStats {
	return PoolStats{
		Workers:      p.workers,
		Depth:        len(p.tasks),
		HighWater:    int(p.highWater.Load()),
		Submitted:    p.submitted.Load(),
		Inline:       p.inline.Load(),
		BlockedSubs:  p.blockedSubs.Load(),
		BlockedNanos: p.blockedNanos.Load(),
	}
}

// close drains: new submissions are refused, parked Submit callers are
// released, queued tasks finish, then the workers exit. Idempotent.
func (p *workerPool) close() {
	if p.closed.Swap(true) {
		return
	}
	close(p.quit)
	p.wg.Wait()
}
