package transport

import (
	"math/rand"
	"testing"
	"time"
)

// TestBackoffBounds pins the reconnect-delay policy: base*2^n capped at
// backoffMax, uniformly jittered in [d/2, d). The jitter keeps a cohort
// of peers reconnecting to the same dead node from thundering in phase;
// the cap keeps a long outage from pushing redial latency past seconds.
func TestBackoffBounds(t *testing.T) {
	p := &peer{rng: rand.New(rand.NewSource(1))}
	for failures := 0; failures <= 20; failures++ {
		want := backoffBase << uint(min(failures, 10))
		if want > backoffMax {
			want = backoffMax
		}
		for i := 0; i < 200; i++ {
			d := p.backoff(failures)
			if d < want/2 || d >= want {
				t.Fatalf("backoff(%d) = %v, want in [%v, %v)", failures, d, want/2, want)
			}
		}
	}
}

// TestBackoffCapped checks the shift can't overflow past the cap for
// absurd failure counts.
func TestBackoffCapped(t *testing.T) {
	p := &peer{rng: rand.New(rand.NewSource(2))}
	for _, failures := range []int{11, 63, 1 << 20} {
		if d := p.backoff(failures); d >= backoffMax {
			t.Errorf("backoff(%d) = %v, want < %v", failures, d, backoffMax)
		}
	}
}

// TestBackoffJitterVaries ensures per-peer rngs actually jitter: two
// peers with different sources should not produce identical delay
// sequences (the point of dropping the global math/rand lock was not to
// also drop the jitter).
func TestBackoffJitterVaries(t *testing.T) {
	a := &peer{rng: rand.New(rand.NewSource(3))}
	b := &peer{rng: rand.New(rand.NewSource(4))}
	same := true
	var seqA, seqB []time.Duration
	for i := 0; i < 16; i++ {
		da, db := a.backoff(5), b.backoff(5)
		seqA, seqB = append(seqA, da), append(seqB, db)
		if da != db {
			same = false
		}
	}
	if same {
		t.Fatalf("two differently-seeded peers produced identical backoff sequences: %v vs %v", seqA, seqB)
	}
}
