// Integration test of the optional UDP datagram plane: two real nodes,
// MBR publishes riding datagrams while ring control and everything else
// stays on TCP.
package transport_test

import (
	"runtime"
	"testing"
	"time"

	"streamdex/internal/core"
	"streamdex/internal/dht"
	"streamdex/internal/sim"
	"streamdex/internal/summary"
	"streamdex/internal/transport"
)

func TestUDPLoopbackIngest(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second wall-clock integration test")
	}
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)

	space := dht.NewSpace(16)
	ids := []dht.Key{10_000, 40_000}
	nodes := make([]*transport.Node, len(ids))
	for i, id := range ids {
		tc := transport.DefaultConfig(id, "127.0.0.1:0")
		tc.Space = space
		tc.QueueLen = 4096
		tc.Workers = 2
		tc.UDP = true
		tc.DatagramKinds = []dht.Kind{core.KindMBR}
		n, err := transport.New(tc)
		if err != nil {
			t.Fatal(err)
		}
		defer n.Close()
		nodes[i] = n
	}
	// Ring formation runs entirely over TCP: datagrams carry only the
	// nominated data kind, so join/stabilize must converge as always.
	nodes[0].Create()
	if err := nodes[1].Join(nodes[0].Addr(), 10*time.Second); err != nil {
		t.Fatal(err)
	}
	waitRingConverged(t, nodes, ids)

	ccfg := core.DefaultConfig()
	ccfg.Space = space
	ccfg.StoreShards = 4
	mws := make([]*core.Middleware, len(nodes))
	for i, n := range nodes {
		var err error
		n.Do(func() { mws[i], err = core.New(n, ccfg) })
		if err != nil {
			t.Fatal(err)
		}
	}

	// Publish MBRs at the receiver's identifier. Datagram delivery is
	// fire-and-forget — loss under socket-buffer overflow is the designed
	// trade — so the assertion is loss-tolerant: at least 80% of the
	// publishes must be indexed. On loopback, actual loss is rare.
	const nFrames = 500
	target := mws[1].DataCenter(ids[1])
	basePuts, _ := target.Store().Stats()
	for lo := 0; lo < nFrames; lo += 100 {
		k := 100
		lo := lo
		nodes[0].Do(func() {
			for i := 0; i < k; i++ {
				f := summary.Feature{0.25, -0.5, 0.75}
				b := summary.NewMBR("udp-smoke", uint64(lo+i), f)
				b.Expiry = sim.Time(1) << 60
				msg := &dht.Message{Kind: core.KindMBR, Payload: core.MBRUpdate{MBR: b}}
				nodes[0].Send(ids[0], ids[1], msg)
			}
		})
		time.Sleep(5 * time.Millisecond) // let the socket buffer drain
	}
	waitFor(t, 15*time.Second, "80% of UDP publishes to be indexed", func() bool {
		puts, _ := target.Store().Stats()
		return puts-basePuts >= nFrames*8/10
	})

	sent, _, fallback := nodes[0].UDPStats()
	if sent == 0 {
		t.Fatal("sender put no MBR publishes on the datagram plane")
	}
	_, recv, _ := nodes[1].UDPStats()
	if recv == 0 {
		t.Fatal("receiver dispatched no datagrams")
	}
	// Every publish fits one MTU and both addresses resolve, so nothing
	// eligible should have fallen back to TCP.
	if fallback != 0 {
		t.Fatalf("%d eligible frames fell back to TCP", fallback)
	}
	t.Logf("udp: sent=%d recv=%d (loss %.1f%%)", sent, recv,
		100*(1-float64(recv)/float64(sent)))
}
