package transport

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"time"

	"streamdex/internal/clock"
	"streamdex/internal/dht"
	"streamdex/internal/sim"
)

// Ring maintenance over messages.
//
// The simulator's control plane reads peer state directly through
// liveness-checked accessors; over sockets every exchange becomes an
// asynchronous request/response pair:
//
//   - findReq/findResp: locate the successor node of a key. The request is
//     greedily routed along the ring; the holder of the key answers
//     directly to the requester's address. Used by Join and finger repair.
//   - stabReq/stabResp: Chord's stabilize. The successor reports its
//     predecessor and successor list; the requester adopts a closer
//     successor when one appears and then notifies.
//   - notifyMsg: "I might be your predecessor."
//   - pingReq/pingResp: predecessor liveness probe.
//
// Failure detection is deadline-free: a stabilize round that brings no
// response before the next tick counts as a miss, and missThreshold
// consecutive misses rotate the successor list (or clear the predecessor).

type ctlOp uint8

const (
	opFindReq ctlOp = iota + 1
	opFindResp
	opStabReq
	opStabResp
	opNotify
	opPingReq
	opPingResp
)

// control is the single gob-encoded record all maintenance traffic uses; a
// union keeps the codec trivial and the op dispatch flat.
type control struct {
	Op    ctlOp
	From  Ref // sender (identity + reply address)
	Token uint64

	// findReq
	Target  dht.Key
	TTL     int
	ReplyTo Ref

	// findResp
	Succ Ref

	// stabResp
	HasPred  bool
	Pred     Ref
	SuccList []Ref
}

func encodeControl(c *control) []byte {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(c); err != nil {
		panic(fmt.Sprintf("transport: encoding control op %d: %v", c.Op, err))
	}
	return buf.Bytes()
}

func decodeControl(body []byte) (*control, error) {
	var c control
	if err := gob.NewDecoder(bytes.NewReader(body)).Decode(&c); err != nil {
		return nil, err
	}
	return &c, nil
}

// sendControl frames and enqueues a control record toward addr. Control
// records ride the same pooled frame buffers as the data plane, so they
// coalesce into the writer's vectored flushes too.
func (n *Node) sendControl(addr string, c *control) {
	c.From = n.self
	f := newFrame(frameControl)
	f.b = append(f.b, encodeControl(c)...)
	f.finish()
	n.peers.send(addr, f)
}

// missThreshold is how many consecutive unanswered maintenance rounds a
// neighbor survives before being presumed dead.
const missThreshold = 3

// findTTL bounds the greedy routing of a findReq.
const findTTL = 64

// pendingFind tracks an outstanding successor lookup.
type pendingFind struct {
	onResp func(Ref)
	timer  clock.Timer
}

// Create bootstraps a brand-new one-node ring.
func (n *Node) Create() {
	n.clk.Do(func() {
		n.succList = []Ref{n.self}
		p := n.self
		n.pred = &p
		n.startMaintenance()
	})
}

// Join enters an existing ring through the node at bootstrapAddr: it asks
// the ring for the successor of its own identifier, adopts it, and lets
// stabilization acquire the rest (predecessor, successor list, fingers).
// It blocks until the successor is known or the timeout elapses.
func (n *Node) Join(bootstrapAddr string, timeout time.Duration) error {
	found := make(chan Ref, 1)
	deadline := time.Now().Add(timeout)
	attempt := func() {
		n.clk.Do(func() {
			tok := n.newToken()
			n.pendFind[tok] = &pendingFind{
				onResp: func(succ Ref) {
					select {
					case found <- succ:
					default:
					}
				},
				// Cleaned up by expireFind; the channel retry below drives
				// the actual re-send.
				timer: n.clk.Schedule(sim.Time(2*time.Second/time.Microsecond), func() { delete(n.pendFind, tok) }),
			}
			n.sendControl(bootstrapAddr, &control{
				Op: opFindReq, Token: tok, Target: n.self.ID, TTL: findTTL, ReplyTo: n.self,
			})
		})
	}
	for {
		attempt()
		select {
		case succ := <-found:
			n.clk.Do(func() {
				if succ.ID == n.self.ID {
					succ = n.self
				}
				n.succList = []Ref{succ}
				n.pred = nil
				n.startMaintenance()
			})
			return nil
		case <-time.After(500 * time.Millisecond):
			if time.Now().After(deadline) {
				return fmt.Errorf("transport: join via %s timed out after %v", bootstrapAddr, timeout)
			}
		}
	}
}

// startMaintenance launches the periodic stabilize and fix-fingers tasks.
// Loop context required; idempotent.
func (n *Node) startMaintenance() {
	if len(n.tickers) > 0 {
		return
	}
	stab := n.clk.EveryAfter(sim.Time(n.cfg.StabilizeEvery), sim.Time(n.cfg.StabilizeEvery), n.stabilizeTick)
	n.tickers = append(n.tickers, stab)
	if n.cfg.FixFingersEvery > 0 {
		fix := n.clk.EveryAfter(sim.Time(n.cfg.FixFingersEvery), sim.Time(n.cfg.FixFingersEvery), n.fixNextFinger)
		n.tickers = append(n.tickers, fix)
	}
}

// stabilizeTick runs one maintenance round: account the previous round's
// (non-)responses, then probe the successor and the predecessor.
func (n *Node) stabilizeTick() {
	// Successor accounting.
	succ, ok := n.successor()
	if ok && succ.ID != n.self.ID {
		if n.stabSeen {
			n.stabMisses = 0
		} else {
			n.stabMisses++
			if n.stabMisses >= missThreshold {
				// Presume the successor dead: rotate the list.
				n.stabMisses = 0
				if len(n.succList) > 1 {
					n.succList = n.succList[1:]
				} else if n.pred != nil && n.pred.ID != n.self.ID {
					n.succList = []Ref{*n.pred}
				} else {
					n.succList = []Ref{n.self}
				}
				succ, _ = n.successor()
			}
		}
	}
	n.stabSeen = false

	// Predecessor accounting.
	if n.pred != nil && n.pred.ID != n.self.ID {
		if n.predSeen {
			n.predMisses = 0
		} else {
			n.predMisses++
			if n.predMisses >= missThreshold {
				n.pred = nil
				n.predMisses = 0
			}
		}
	}
	n.predSeen = false

	if !ok {
		return // not in a ring yet (join still in flight)
	}
	if succ.ID == n.self.ID {
		// Ring bootstrap: while the successor is still ourselves, the
		// first node that notified us becomes our successor — this is how
		// a one-node ring grows, exactly as in the simulated protocol.
		if n.pred != nil && n.pred.ID != n.self.ID {
			n.succList = []Ref{*n.pred}
			succ = n.succList[0]
		} else {
			return // genuinely alone
		}
	}
	n.sendControl(succ.Addr, &control{Op: opStabReq})
	if n.pred != nil && n.pred.ID != n.self.ID {
		n.sendControl(n.pred.Addr, &control{Op: opPingReq})
	}
}

// fixNextFinger refreshes one finger-table entry per firing.
func (n *Node) fixNextFinger() {
	i := n.nextFing
	n.nextFing = (n.nextFing + 1) % len(n.finger)
	target := n.space.Add(n.self.ID, 1<<uint(i))
	n.findSuccessor(target, func(succ Ref) {
		if succ.ID == n.self.ID {
			n.finger[i] = nil // self entries add nothing to routing
			return
		}
		r := succ
		n.finger[i] = &r
	})
}

// findSuccessor resolves the successor node of key and calls onResp on the
// loop. Unanswered lookups expire silently.
func (n *Node) findSuccessor(key dht.Key, onResp func(Ref)) {
	tok := n.newToken()
	pf := &pendingFind{onResp: onResp}
	pf.timer = n.clk.Schedule(sim.Time(n.cfg.StabilizeEvery)*missThreshold, func() {
		delete(n.pendFind, tok)
	})
	n.pendFind[tok] = pf
	n.handleFindReq(&control{Op: opFindReq, Token: tok, Target: key, TTL: findTTL, ReplyTo: n.self})
}

func (n *Node) newToken() uint64 {
	n.nextToken++
	return n.nextToken
}

// onControl dispatches a decoded control record. Runs on the loop.
func (n *Node) onControl(c *control) {
	switch c.Op {
	case opFindReq:
		n.handleFindReq(c)
	case opFindResp:
		if pf := n.pendFind[c.Token]; pf != nil {
			delete(n.pendFind, c.Token)
			pf.timer.Cancel()
			pf.onResp(c.Succ)
		}
	case opStabReq:
		resp := &control{Op: opStabResp, SuccList: append([]Ref(nil), n.succList...)}
		if n.pred != nil {
			resp.HasPred, resp.Pred = true, *n.pred
		}
		n.sendControl(c.From.Addr, resp)
		// The requester believes we are its successor: that makes it a
		// predecessor candidate even before its explicit notify arrives.
		n.considerPredecessor(c.From)
	case opStabResp:
		n.handleStabResp(c)
	case opNotify:
		n.considerPredecessor(c.From)
	case opPingReq:
		n.sendControl(c.From.Addr, &control{Op: opPingResp})
	case opPingResp:
		if n.pred != nil && c.From.ID == n.pred.ID {
			n.predSeen = true
		}
	}
}

// handleFindReq answers a successor lookup when this node covers the
// target, otherwise forwards it greedily.
func (n *Node) handleFindReq(c *control) {
	succ, ok := n.successor()
	if !ok {
		return // not in a ring yet
	}
	// Standard Chord find_successor: if the target lies in (self, succ],
	// the successor is the answer.
	if succ.ID == n.self.ID || n.space.BetweenIncl(c.Target, n.self.ID, succ.ID) {
		answer := succ
		if succ.ID == n.self.ID {
			answer = n.self
		}
		if c.ReplyTo.ID == n.self.ID {
			// Local lookup resolved locally.
			if pf := n.pendFind[c.Token]; pf != nil {
				delete(n.pendFind, c.Token)
				pf.timer.Cancel()
				pf.onResp(answer)
			}
			return
		}
		n.sendControl(c.ReplyTo.Addr, &control{Op: opFindResp, Token: c.Token, Succ: answer})
		return
	}
	if c.TTL <= 1 {
		n.dropped.Add(1)
		return
	}
	next, ok := n.nextHop(c.Target)
	if !ok || next.ID == n.self.ID {
		n.dropped.Add(1)
		return
	}
	fwd := *c
	fwd.TTL--
	n.sendControl(next.Addr, &fwd)
}

// handleStabResp applies the successor's view: adopt a closer successor
// when its predecessor sits between us, refresh the successor list, then
// notify.
func (n *Node) handleStabResp(c *control) {
	succ, ok := n.successor()
	if !ok || c.From.ID != succ.ID {
		return // stale response from a node no longer our successor
	}
	n.stabSeen = true
	if c.HasPred && c.Pred.ID != n.self.ID && n.space.Between(c.Pred.ID, n.self.ID, succ.ID) {
		succ = c.Pred
	}
	// Rebuild the list: adopted successor first, then its successor list
	// with ourselves trimmed out.
	list := make([]Ref, 0, n.cfg.SuccListLen)
	list = append(list, succ)
	for _, r := range c.SuccList {
		if r.ID == n.self.ID {
			break
		}
		dup := false
		for _, have := range list {
			if have.ID == r.ID {
				dup = true
				break
			}
		}
		if !dup {
			list = append(list, r)
		}
		if len(list) == n.cfg.SuccListLen {
			break
		}
	}
	n.succList = list
	n.sendControl(succ.Addr, &control{Op: opNotify})
}

// considerPredecessor applies Chord's notify rule.
func (n *Node) considerPredecessor(p Ref) {
	if p.ID == n.self.ID {
		return
	}
	if n.pred == nil || n.pred.ID == n.self.ID || n.space.Between(p.ID, n.pred.ID, n.self.ID) {
		r := p
		n.pred = &r
		n.predSeen = true
		n.predMisses = 0
	}
}
