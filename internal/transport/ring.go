package transport

import (
	"fmt"
	"time"

	"streamdex/internal/dht"
	"streamdex/internal/metrics"
	"streamdex/internal/overlay"
	"streamdex/internal/wire"
)

// Ring maintenance adapter.
//
// The control plane itself — join, find_successor routing,
// stabilize/notify, successor-list rotation, long-link repair,
// predecessor liveness — lives in the shared routing machine selected by
// Config.Machine (internal/chord/protocol or internal/koorde), the exact
// code the simulator drives through its event engine. This file only
// adapts it to sockets: outgoing (dest, message) pairs are framed with
// the packed wire codec v2 and handed to the peer writers; inbound
// control frames are decoded off-loop and fed to Machine.Handle on the
// loop. There is no transport-private control record (the old gob
// `control` union is gone): what travels is the machine family's own
// message types under overlay.KindRing, so the bytes charged to the
// simulator's observer for a maintenance message are the bytes a live
// socket carries.

// Create bootstraps a brand-new one-node ring.
func (n *Node) Create() {
	n.clk.Do(n.ring.Create)
}

// Join enters an existing ring through the node at bootstrapAddr: it asks
// the ring for the successor of its own identifier, adopts it, and lets
// stabilization acquire the rest (predecessor, successor list, fingers).
// The machine retries unanswered lookups itself (invalidating superseded
// tokens); Join blocks until the successor is known or the timeout
// elapses.
func (n *Node) Join(bootstrapAddr string, timeout time.Duration) error {
	found := make(chan Ref, 1)
	n.clk.Do(func() {
		n.ring.Join(Ref{Addr: bootstrapAddr}, func(succ Ref) {
			select {
			case found <- succ:
			default:
			}
		})
	})
	select {
	case <-found:
		return nil
	case <-time.After(timeout):
		n.clk.Do(n.ring.AbandonJoin)
		return fmt.Errorf("transport: join via %s timed out after %v", bootstrapAddr, timeout)
	}
}

// sendRing frames one control-plane message toward to and enqueues it.
// Control frames ride the same pooled frame buffers as the data plane, so
// they coalesce into the writer's vectored flushes too. Loop context (the
// machine invokes it synchronously from Handle and timer callbacks).
func (n *Node) sendRing(to Ref, payload any) {
	if to.Addr == "" {
		// Ref learned without an address (possible only through harness
		// injection, never through decoded frames): nowhere to dial.
		return
	}
	msg := &dht.Message{
		Kind:    overlay.KindRing,
		Key:     to.ID,
		Src:     n.self.ID,
		Payload: payload,
		Hops:    1,
		SentAt:  n.clk.Now(),
	}
	f := newFrame(frameControl)
	body, err := wire.AppendMarshal(f.b, msg)
	if err != nil {
		f.recycle()
		n.dropped.Add(1)
		return
	}
	f.b = body
	f.finish()
	msg.Bytes = len(f.b) - frameOverhead
	n.observer().OnTransmit(n.self.ID, to.ID, msg)
	n.peers.send(to.Addr, f)
}

// RingStats returns a snapshot of the node's control-plane maintenance
// counters.
func (n *Node) RingStats() metrics.Ring {
	var s metrics.Ring
	n.clk.Do(func() { s = n.ring.Stats() })
	return s
}
