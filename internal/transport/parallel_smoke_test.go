// GOMAXPROCS=4 smoke test of the concurrent data plane: two real TCP
// nodes, the receiver running the full middleware with a sharded store,
// matching a pumped MBR stream against live similarity subscriptions on
// its worker pool. Asserts delivery completeness (no drops, every publish
// indexed) and that the data frames actually ran on the pool — on any
// host, including single-core CI, where oversubscribed GOMAXPROCS still
// exercises every lock and fence, just without the speedup.
//
// scripts/ci.sh runs this under -race with GOMAXPROCS=4 explicitly.
package transport_test

import (
	"bytes"
	"math/rand"
	"runtime"
	"runtime/pprof"
	"strings"
	"testing"
	"time"

	"streamdex/internal/core"
	"streamdex/internal/dht"
	"streamdex/internal/query"
	"streamdex/internal/sim"
	"streamdex/internal/summary"
	"streamdex/internal/transport"
)

func TestParallelLoopbackSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second wall-clock integration test")
	}
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)

	// Record every lock-contention event while the test runs: the match
	// walk is asserted lock-free below by grepping the mutex profile.
	prevMutex := runtime.SetMutexProfileFraction(1)
	defer runtime.SetMutexProfileFraction(prevMutex)

	space := dht.NewSpace(16)
	ids := []dht.Key{10_000, 40_000}
	nodes := make([]*transport.Node, len(ids))
	for i, id := range ids {
		tc := transport.DefaultConfig(id, "127.0.0.1:0")
		tc.Space = space
		tc.QueueLen = 4096
		tc.Workers = 4
		n, err := transport.New(tc)
		if err != nil {
			t.Fatal(err)
		}
		defer n.Close()
		nodes[i] = n
	}
	nodes[0].Create()
	if err := nodes[1].Join(nodes[0].Addr(), 10*time.Second); err != nil {
		t.Fatal(err)
	}
	waitRingConverged(t, nodes, ids)

	ccfg := core.DefaultConfig()
	ccfg.Space = space
	ccfg.StoreShards = 8
	mws := make([]*core.Middleware, len(nodes))
	for i, n := range nodes {
		var err error
		n.Do(func() { mws[i], err = core.New(n, ccfg) })
		if err != nil {
			t.Fatal(err)
		}
	}

	// Subscriptions for the receiver's workers to match against.
	rng := rand.New(rand.NewSource(7))
	const nQueries = 8
	for q := 0; q < nQueries; q++ {
		f := summary.Feature{rng.Float64()*2 - 1, rng.Float64()*2 - 1, rng.Float64()*2 - 1}
		var err error
		nodes[1].Do(func() {
			_, err = mws[1].PostSimilarity(ids[1], f, 0.25, sim.Time(1)<<50)
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 10*time.Second, "subscriptions to register", func() bool {
		subs := 0
		for i := range nodes {
			subs += mws[i].DataCenter(ids[i]).SubCount()
		}
		return subs >= nQueries
	})

	// Pump MBR publishes at the receiver's identifier, chunked so the
	// bounded peer queue cannot overflow into drops.
	const nFrames = 2000
	target := mws[1].DataCenter(ids[1])
	basePuts, _ := target.Store().Stats()

	// Hammer the lock-free match walk concurrently with ingest for the
	// whole pump: these walks must never block on a shard mutex, which the
	// mutex profile verifies after the fact. None of the pumped MBRs ever
	// expire, so the compact-on-expired writer path stays silent too.
	stopMatch := make(chan struct{})
	matchWalks := make(chan int64, 1)
	go func() {
		var scratch []query.Match
		var walks int64
		probe := summary.Feature{0, 0, 0}
		for {
			select {
			case <-stopMatch:
				matchWalks <- walks
				return
			default:
			}
			scratch = target.Store().AppendCandidates(scratch[:0], probe, 0.25, 1, ids[1])
			walks++
		}
	}()

	sent := 0
	for sent < nFrames {
		k := 256
		if nFrames-sent < k {
			k = nFrames - sent
		}
		lo := sent
		nodes[0].Do(func() {
			for i := 0; i < k; i++ {
				f := summary.Feature{rng.Float64()*2 - 1, rng.Float64()*2 - 1, rng.Float64()*2 - 1}
				b := summary.NewMBR("smoke", uint64(lo+i), f)
				b.Expiry = sim.Time(1) << 60
				msg := &dht.Message{Kind: core.KindMBR, Payload: core.MBRUpdate{MBR: b}}
				nodes[0].Send(ids[0], ids[1], msg)
			}
		})
		sent += k
		waitFor(t, 10*time.Second, "chunk to be indexed", func() bool {
			puts, _ := target.Store().Stats()
			return puts-basePuts >= int64(sent)
		})
	}

	puts, _ := target.Store().Stats()
	if got := puts - basePuts; got != nFrames {
		t.Fatalf("receiver indexed %d publishes, want %d", got, nFrames)
	}
	if d := nodes[0].Dropped() + nodes[1].Dropped(); d != 0 {
		t.Fatalf("%d frames dropped", d)
	}
	ps := nodes[1].PoolStats()
	if ps.Workers != 4 {
		t.Fatalf("receiver pool has %d workers, want 4", ps.Workers)
	}
	if ps.Submitted < nFrames {
		t.Fatalf("pool ran %d tasks, want at least the %d data frames", ps.Submitted, nFrames)
	}

	close(stopMatch)
	if walks := <-matchWalks; walks == 0 {
		t.Fatal("match goroutine never completed a walk")
	}

	// The walk is lock-free: no AppendCandidates (or its compact helper)
	// frame may appear in the contention profile, no matter how hard the
	// writers hammered the store meanwhile.
	var buf bytes.Buffer
	if err := pprof.Lookup("mutex").WriteTo(&buf, 1); err != nil {
		t.Fatal(err)
	}
	prof := buf.String()
	for _, frame := range []string{"AppendCandidates", "appendCandidates", "compactBand"} {
		if strings.Contains(prof, frame) {
			t.Fatalf("mutex profile shows lock contention on the match walk (%s):\n%s", frame, prof)
		}
	}

	// Every Put publishes a snapshot epoch; the receiver decoded every
	// frame through its connection arena, so carves amortize to a high
	// pool hit rate and the shared stream id interns after the first miss.
	if ss := target.Store().SnapStats(); ss.Epochs < nFrames {
		t.Fatalf("store published %d epochs, want at least the %d puts", ss.Epochs, nFrames)
	}
	as := nodes[1].ArenaStats()
	if as.Carves == 0 {
		t.Fatal("receiver decoded no frames through arenas")
	}
	if hr := as.HitRate(); hr < 0.9 {
		t.Fatalf("arena pool hit rate %.3f, want >= 0.9 (stats %+v)", hr, as)
	}
	if as.InternHits == 0 {
		t.Fatal("shared stream id never hit the intern table")
	}
}

// waitFor polls cond until true or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}
